// Shared rig builders and formatting helpers for the per-figure benchmark
// harnesses. Every bench prints the paper-style rows with TextTable and a
// short "paper vs measured" note; EXPERIMENTS.md records the outcomes.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/chem/library.h"
#include "src/core/runtime.h"
#include "src/emu/simulator.h"
#include "src/hw/microcontroller.h"
#include "src/util/table.h"

namespace sdb {
namespace bench {

// A self-owning runtime rig: microcontroller + runtime with stable addresses.
class Rig {
 public:
  explicit Rig(std::vector<Cell> cells, uint64_t seed = 1234)
      : micro_(MakeDefaultMicrocontroller(std::move(cells), seed)), runtime_(&micro_) {}

  SdbMicrocontroller& micro() { return micro_; }
  SdbRuntime& runtime() { return runtime_; }

 private:
  SdbMicrocontroller micro_;
  SdbRuntime runtime_;
};

// The fast-charge + high-energy tablet pack of §5.1 (8000 mAh total split
// by `fast_fraction` of capacity to the fast-charging battery).
inline std::vector<Cell> MakeFastChargeScenarioCells(double fast_fraction,
                                                     double initial_soc = 0.0) {
  std::vector<Cell> cells;
  double total_mah = 8000.0;
  double fast_mah = total_mah * fast_fraction;
  double he_mah = total_mah - fast_mah;
  if (fast_mah > 0.0) {
    cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(fast_mah)), initial_soc);
  }
  if (he_mah > 0.0) {
    cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(he_mah)), initial_soc);
  }
  return cells;
}

// The smart-watch pack of §5.2: 200 mAh rigid Li-ion + 200 mAh bendable.
inline std::vector<Cell> MakeWatchScenarioCells(double initial_soc = 1.0) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeWatchLiIon(MilliAmpHours(200.0)), initial_soc);
  cells.emplace_back(MakeType4Bendable(MilliAmpHours(200.0)), initial_soc);
  return cells;
}

// The 2-in-1 pack of §5.3: two equal traditional Li-ion batteries.
inline std::vector<Cell> MakeTwoInOneCells(double initial_soc = 1.0) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeTwoInOneInternal(MilliAmpHours(4000.0)), initial_soc);
  cells.emplace_back(MakeTwoInOneExternal(MilliAmpHours(4000.0)), initial_soc);
  return cells;
}

inline void PrintNote(const std::string& note) { std::cout << "  note: " << note << "\n"; }

}  // namespace bench
}  // namespace sdb

#endif  // BENCH_BENCH_COMMON_H_

// Shared rig builders and formatting helpers for the per-figure benchmark
// harnesses. Every bench prints the paper-style rows with TextTable and a
// short "paper vs measured" note; EXPERIMENTS.md records the outcomes.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/chem/library.h"
#include "src/core/runtime.h"
#include "src/core/telemetry.h"
#include "src/emu/simulator.h"
#include "src/hw/microcontroller.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace sdb {
namespace bench {

// A self-owning runtime rig: microcontroller + runtime with stable addresses.
class Rig {
 public:
  explicit Rig(std::vector<Cell> cells, uint64_t seed = 1234)
      : micro_(MakeDefaultMicrocontroller(std::move(cells), seed)), runtime_(&micro_) {}

  SdbMicrocontroller& micro() { return micro_; }
  SdbRuntime& runtime() { return runtime_; }

 private:
  SdbMicrocontroller micro_;
  SdbRuntime runtime_;
};

// The fast-charge + high-energy tablet pack of §5.1 (8000 mAh total split
// by `fast_fraction` of capacity to the fast-charging battery).
inline std::vector<Cell> MakeFastChargeScenarioCells(double fast_fraction,
                                                     double initial_soc = 0.0) {
  std::vector<Cell> cells;
  double total_mah = 8000.0;
  double fast_mah = total_mah * fast_fraction;
  double he_mah = total_mah - fast_mah;
  if (fast_mah > 0.0) {
    cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(fast_mah)), initial_soc);
  }
  if (he_mah > 0.0) {
    cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(he_mah)), initial_soc);
  }
  return cells;
}

// The smart-watch pack of §5.2: 200 mAh rigid Li-ion + 200 mAh bendable.
inline std::vector<Cell> MakeWatchScenarioCells(double initial_soc = 1.0) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeWatchLiIon(MilliAmpHours(200.0)), initial_soc);
  cells.emplace_back(MakeType4Bendable(MilliAmpHours(200.0)), initial_soc);
  return cells;
}

// The 2-in-1 pack of §5.3: two equal traditional Li-ion batteries.
inline std::vector<Cell> MakeTwoInOneCells(double initial_soc = 1.0) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeTwoInOneInternal(MilliAmpHours(4000.0)), initial_soc);
  cells.emplace_back(MakeTwoInOneExternal(MilliAmpHours(4000.0)), initial_soc);
  return cells;
}

inline void PrintNote(const std::string& note) { std::cout << "  note: " << note << "\n"; }

// Worker count for the sweep harnesses: `--jobs N` flag, else the
// SDB_THREADS env override, else hardware concurrency (via the pool's
// resolution rules). Unknown flags are ignored so every bench keeps
// accepting its other arguments (today: none).
inline int ParseJobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      int n = std::atoi(argv[i + 1]);
      if (n > 0) {
        return n;
      }
    }
  }
  return ThreadPool::DefaultThreadCount();
}

// ParallelFor that also lands in the global SweepCounters, so bench sweeps
// show up in the telemetry dump alongside RunMonteCarlo's own records.
inline void SweepParallelFor(ThreadPool* pool, int64_t n,
                             const std::function<void(int64_t)>& fn) {
  obs::Stopwatch stopwatch;
  Duration wait_before = pool != nullptr ? pool->stats().worker_wait : Seconds(0.0);
  ParallelFor(pool, n, fn);
  Duration wait_after = pool != nullptr ? pool->stats().worker_wait : Seconds(0.0);
  SweepCounters::Global().RecordSweep(static_cast<uint64_t>(n), static_cast<uint64_t>(n),
                                      wait_after - wait_before,
                                      Seconds(stopwatch.ElapsedSeconds()));
}

// Dumps the engine counters accumulated so far (tasks, pool wait, wall
// clock) so sweep speedups show up in the bench output itself.
inline void PrintSweepTelemetry(std::ostream& os, int jobs) {
  SweepCounterSnapshot snap = SweepCounters::Global().Snapshot();
  os << "  sweep engine: " << jobs << " jobs, " << snap.sweeps << " sweeps, "
     << snap.runs_executed << " runs in " << snap.tasks_executed << " shard tasks; wall "
     << TextTable::Num(snap.wall.value(), 2) << " s, worker wait "
     << TextTable::Num(snap.worker_wait.value(), 2) << " s\n";
}

// `--metrics-out PATH` flag: where to dump the process-wide metrics
// registry as JSON when the bench exits (empty = don't).
inline std::string ParseMetricsOut(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      return argv[i + 1];
    }
  }
  return "";
}

// Writes MetricsRegistry::Global() as JSON; no-op on an empty path. Call at
// the end of main so the snapshot covers the whole bench.
inline int WriteMetricsJson(const std::string& path) {
  if (path.empty()) {
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return 1;
  }
  out << obs::MetricsRegistry::Global().ToJson() << "\n";
  std::cout << "  metrics written to " << path << "\n";
  return 0;
}

}  // namespace bench
}  // namespace sdb

#endif  // BENCH_BENCH_COMMON_H_

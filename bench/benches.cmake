# Benchmark harnesses: one binary per paper table/figure, emitted into
# build/bench/ (kept free of CMake bookkeeping so `for b in build/bench/*`
# runs them all).
function(sdb_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE sdb_os sdb_emu sdb_core sdb_hw sdb_chem sdb_util)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  # Smoke-test every harness so the figure generators cannot bit-rot.
  add_test(NAME smoke_${name} COMMAND ${name})
endfunction()

sdb_bench(bench_table1_characteristics)
sdb_bench(bench_table2_tradeoffs)
sdb_bench(bench_fig1a_radar)
sdb_bench(bench_fig1b_longevity)
sdb_bench(bench_fig1c_heatloss)
sdb_bench(bench_fig6_hw_micro)
sdb_bench(bench_fig8_battery_curves)
sdb_bench(bench_fig10_model_validation)
sdb_bench(bench_fig11_fastcharge)
sdb_bench(bench_fig12_turbo)
sdb_bench(bench_fig13_smartwatch)
sdb_bench(bench_fig14_twoin1)
sdb_bench(bench_ablations)

sdb_bench(bench_policy_overhead)
target_link_libraries(bench_policy_overhead PRIVATE benchmark::benchmark)
set_tests_properties(smoke_bench_policy_overhead PROPERTIES ENVIRONMENT
  "BENCHMARK_BENCHMARK_MIN_TIME=0.01")
# Keep the perf smoke test quick.
set_property(TEST smoke_bench_policy_overhead PROPERTY TIMEOUT 120)

sdb_bench(bench_optimal_vs_myopic)
sdb_bench(bench_monte_carlo)
sdb_bench(bench_weekly_wear)

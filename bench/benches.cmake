# Benchmark harnesses: one binary per paper table/figure, emitted into
# build/bench/ (kept free of CMake bookkeeping so `for b in build/bench/*`
# runs them all).

# Machine-readable BENCH_*.json report writer, shared by the harnesses and
# unit-tested from tests/bench/.
add_library(sdb_bench_report STATIC ${CMAKE_SOURCE_DIR}/bench/bench_report.cc)
target_link_libraries(sdb_bench_report PUBLIC sdb_util)

function(sdb_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE sdb_os sdb_emu sdb_core sdb_hw sdb_chem sdb_util
    sdb_bench_report)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  # Smoke-test every harness so the figure generators cannot bit-rot.
  add_test(NAME smoke_${name} COMMAND ${name})
endfunction()

sdb_bench(bench_table1_characteristics)
sdb_bench(bench_table2_tradeoffs)
sdb_bench(bench_fig1a_radar)
sdb_bench(bench_fig1b_longevity)
sdb_bench(bench_fig1c_heatloss)
sdb_bench(bench_fig6_hw_micro)
sdb_bench(bench_fig8_battery_curves)
sdb_bench(bench_fig10_model_validation)
sdb_bench(bench_fig11_fastcharge)
sdb_bench(bench_fig12_turbo)
sdb_bench(bench_fig13_smartwatch)
sdb_bench(bench_fig14_twoin1)
sdb_bench(bench_ablations)

sdb_bench(bench_policy_overhead)
target_link_libraries(bench_policy_overhead PRIVATE benchmark::benchmark)
set_tests_properties(smoke_bench_policy_overhead PROPERTIES ENVIRONMENT
  "BENCHMARK_BENCHMARK_MIN_TIME=0.01")
# Keep the perf smoke test quick.
set_property(TEST smoke_bench_policy_overhead PROPERTY TIMEOUT 120)

sdb_bench(bench_optimal_vs_myopic)
sdb_bench(bench_monte_carlo)
sdb_bench(bench_weekly_wear)
sdb_bench(bench_scenario_packs)

# The MC bench doubles as the report-schema smoke: a tiny run emits
# BENCH_monte_carlo.json, then the CI checker validates the schema (no
# baseline gate here — perf gating runs in the perf-smoke CI job, where the
# build is not sanitizer-skewed). Fixtures order the pair.
add_test(NAME bench_monte_carlo_json
  COMMAND bench_monte_carlo --runs 2 --reps 1 --lanes 64 --steps 200
          --bench-out ${CMAKE_BINARY_DIR}/bench/BENCH_monte_carlo.json)
set_tests_properties(bench_monte_carlo_json PROPERTIES FIXTURES_SETUP bench_mc_json)
add_test(NAME bench_monte_carlo_json_schema
  COMMAND python3 ${CMAKE_SOURCE_DIR}/tools/ci/check_bench_json.py
          ${CMAKE_BINARY_DIR}/bench/BENCH_monte_carlo.json --schema-only)
set_tests_properties(bench_monte_carlo_json_schema PROPERTIES FIXTURES_REQUIRED bench_mc_json)

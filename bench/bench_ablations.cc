// Ablations over the design choices DESIGN.md calls out:
//   (1) the RBL delta-correction horizon (0 == classic 1/R split),
//   (2) the discharging directive parameter sweep (CCB <-> RBL blend),
//   (3) fuel-gauge quantisation/noise sensitivity,
//   (4) ChargeOneFromAnother efficiency vs transfer power.
// Each sweep's settings are independent simulations, so they run on a
// shared pool (--jobs N / SDB_THREADS); rows are collected into
// index-keyed slots and printed in sweep order, keeping the output
// byte-identical to the serial harness.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/emu/workload.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

struct WatchRun {
  double life_h = 0.0;
  double losses_j = 0.0;
};

// A demanding watch day: heavy tracking load that sweeps both cells through
// their steep low-SoC resistance region, where the policy split matters.
WatchRun RunWatch(double directive, Duration delta_horizon, FuelGaugeConfig gauge,
                  uint64_t seed) {
  std::vector<Cell> cells = bench::MakeWatchScenarioCells(1.0);
  BatteryPack pack;
  for (auto& c : cells) {
    pack.AddCell(std::move(c));
  }
  SdbMicrocontroller micro(std::move(pack), DischargeCircuitConfig{}, ChargeCircuitConfig{},
                           gauge, seed);
  RuntimeConfig config;
  config.rbl.delta_horizon = delta_horizon;
  SdbRuntime runtime(&micro, config);
  runtime.SetDischargingDirective(directive);
  SimConfig sim_config;
  sim_config.tick = Seconds(5.0);
  sim_config.runtime_period = Minutes(2.0);
  Simulator sim(&runtime, sim_config);
  SimResult r = sim.Run(PowerTrace::Constant(Watts(0.30), Hours(24.0)));
  WatchRun out;
  out.life_h = r.first_shortfall.has_value() ? ToHours(*r.first_shortfall) : ToHours(r.elapsed);
  out.losses_j = r.TotalLoss().value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  ThreadPool pool(jobs);

  PrintBanner(std::cout, "Ablation 1: RBL delta-correction horizon (0.3 W tracking load)");
  {
    const std::vector<double> horizons = {0.0, 60.0, 600.0, Hours(1.0).value()};
    std::vector<WatchRun> runs(horizons.size());
    bench::SweepParallelFor(&pool, static_cast<int64_t>(horizons.size()), [&](int64_t i) {
      runs[i] = RunWatch(1.0, Seconds(horizons[i]), FuelGaugeConfig{}, 91);
    });
    TextTable table({"horizon (s)", "battery life (h)", "total losses (J)"});
    for (size_t i = 0; i < horizons.size(); ++i) {
      table.AddRow({TextTable::Num(horizons[i], 0), TextTable::Num(runs[i].life_h, 3),
                    TextTable::Num(runs[i].losses_j, 1)});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "horizon 0 is the classic instantaneous 1/R split; the delta term shifts "
        "load off the battery whose DCIR will grow as it drains.");
  }

  PrintBanner(std::cout, "Ablation 2: discharging directive sweep (RBL weight)");
  {
    const std::vector<double> directives = {0.0, 0.25, 0.5, 0.75, 1.0};
    std::vector<WatchRun> runs(directives.size());
    bench::SweepParallelFor(&pool, static_cast<int64_t>(directives.size()), [&](int64_t i) {
      runs[i] = RunWatch(directives[i], Seconds(600.0), FuelGaugeConfig{}, 92);
    });
    TextTable table({"directive", "battery life (h)", "total losses (J)"});
    for (size_t i = 0; i < directives.size(); ++i) {
      table.AddRow({TextTable::Num(directives[i], 2), TextTable::Num(runs[i].life_h, 3),
                    TextTable::Num(runs[i].losses_j, 1)});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "on this sustained load the even CCB split wins end-to-end: RBL's "
        "instantaneously-optimal split drains the efficient battery into its "
        "steep low-SoC resistance region early, while spreading the load keeps "
        "both cells in the flat part of the DCIR curve — exactly the "
        "instantaneous-vs-global gap the paper's §3.3 warns about (and what the "
        "delta horizon in ablation 1 partially recovers).");
  }

  PrintBanner(std::cout, "Ablation 3: fuel-gauge error sensitivity");
  {
    struct GaugeSpec {
      double noise_a;
      double drift;
    };
    const std::vector<GaugeSpec> specs = {
        {0.0, 0.0}, {0.0005, 0.0}, {0.005, 0.0}, {0.0005, 0.01}, {0.005, 0.05}};
    std::vector<WatchRun> runs(specs.size());
    bench::SweepParallelFor(&pool, static_cast<int64_t>(specs.size()), [&](int64_t i) {
      FuelGaugeConfig gauge;
      gauge.current_noise = Amps(specs[i].noise_a);
      gauge.soc_drift_per_hour = specs[i].drift;
      runs[i] = RunWatch(1.0, Seconds(600.0), gauge, 93);
    });
    TextTable table({"noise (mA, 1 sigma)", "drift (%/h)", "battery life (h)", "losses (J)"});
    for (size_t i = 0; i < specs.size(); ++i) {
      table.AddRow({TextTable::Num(1000.0 * specs[i].noise_a, 1),
                    TextTable::Num(100.0 * specs[i].drift, 1),
                    TextTable::Num(runs[i].life_h, 3), TextTable::Num(runs[i].losses_j, 1)});
    }
    table.Print(std::cout);
    bench::PrintNote("the policies tolerate realistic gauge error; only gross drift moves the result.");
  }

  PrintBanner(std::cout, "Ablation 4: battery-to-battery transfer efficiency");
  {
    const std::vector<double> watts = {1.0, 2.0, 5.0, 10.0, 15.0};
    std::vector<double> efficiency(watts.size(), 0.0);
    bench::SweepParallelFor(&pool, static_cast<int64_t>(watts.size()), [&](int64_t i) {
      bench::Rig rig(bench::MakeTwoInOneCells(1.0), 94);
      rig.micro().mutable_pack().cell(1).set_soc(0.2);
      double moved = 0.0, drawn = 0.0;
      (void)rig.micro().ChargeOneFromAnother(0, 1, Watts(watts[i]), Minutes(20.0));
      for (int k = 0; k < 1200 && rig.micro().transfer_active(); ++k) {
        MicroTick tick = rig.micro().Step(Watts(0.0), Watts(0.0), Seconds(1.0));
        moved += tick.transfer.moved.value();
        drawn += tick.transfer.drawn.value();
      }
      efficiency[i] = 100.0 * moved / drawn;
    });
    TextTable table({"transfer power (W)", "end-to-end efficiency (%)"});
    for (size_t i = 0; i < watts.size(); ++i) {
      table.AddRow({TextTable::Num(watts[i], 1), TextTable::Num(efficiency[i], 1)});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "two regulator stages plus cell losses: why §5.3's charge-through design "
        "wastes energy relative to simultaneous draw.");
  }
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

// Figure 10: validating the 4-parameter Thevenin model. The paper drives
// physical cells on Arbin/Maccor cyclers at 0.2/0.5/0.7 A and compares the
// measured terminal voltage against the model, reporting 97.5% accuracy.
// Here the "experiment" is the higher-order reference cell (2 RC branches,
// OCV hysteresis, Peukert capacity, current-dependent resistance).
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/chem/reference_cell.h"
#include "src/chem/thevenin.h"

int main() {
  using namespace sdb;
  PrintBanner(std::cout, "Figure 10: Thevenin model vs reference 'experiment'");

  TextTable table({"battery", "current (A)", "samples", "mean |err| (mV)", "accuracy (%)"});

  struct Subject {
    const char* label;
    BatteryParams params;
  };
  Subject subjects[] = {
      {"Type 2", MakeType2Standard(MilliAmpHours(2500.0))},
      {"Type 3", MakeType3FastCharge(MilliAmpHours(2500.0))},
  };
  double overall_err = 0.0;
  int overall_samples = 0;
  for (Subject& subject : subjects) {
  BatteryParams& params = subject.params;
  for (double current : {0.2, 0.5, 0.7}) {
    ReferenceCell reference(&params, ReferenceCellConfig{}, 1.0);
    TheveninModel model(&params, 1.0);
    double err_sum = 0.0;
    double rel_sum = 0.0;
    int samples = 0;
    while (reference.soc() > 0.03 && model.soc() > 0.03) {
      Voltage v_ref = reference.StepWithCurrent(Amps(current), Seconds(30.0));
      StepResult r =
          model.StepWithCurrent(Amps(current), Seconds(30.0), params.nominal_capacity);
      double err = std::fabs(r.terminal_voltage.value() - v_ref.value());
      err_sum += err;
      rel_sum += err / v_ref.value();
      ++samples;
    }
    overall_err += rel_sum;
    overall_samples += samples;
    table.AddRow({subject.label, TextTable::Num(current, 1), std::to_string(samples),
                  TextTable::Num(1000.0 * err_sum / samples, 1),
                  TextTable::Num(100.0 * (1.0 - rel_sum / samples), 2)});
  }
  }
  table.Print(std::cout);
  std::cout << "  overall model accuracy: "
            << TextTable::Num(100.0 * (1.0 - overall_err / overall_samples), 2) << "%\n";
  sdb::bench::PrintNote("paper: 'our model is 97.5% accurate' across 0.2/0.5/0.7 A discharges.");
  return 0;
}

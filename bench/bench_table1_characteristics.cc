// Table 1: battery characteristics across the library — the axes the paper
// lists (energy capacity, volume, mass, rates, densities, cost, cycle
// count, internal resistance, bend radius), instantiated for all 15
// modeled batteries.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace sdb;
  PrintBanner(std::cout, "Table 1: battery characteristics (15-battery library)");

  TextTable table({"name", "chemistry", "mAh", "Wh", "vol(ml)", "mass(g)", "Wh/l", "Wh/kg",
                   "$/Wh", "maxDis(C)", "maxChg(C)", "cycles", "R@50%(ohm)", "bend(mm)"});
  for (const BatteryParams& p : MakeBatteryLibrary()) {
    double wh = ToWattHours(p.NominalEnergy());
    double cap_ah = ToAmpHours(p.nominal_capacity);
    table.AddRow({
        p.name,
        std::string(ChemistryName(p.chemistry)),
        TextTable::Num(ToMilliAmpHours(p.nominal_capacity), 0),
        TextTable::Num(wh, 2),
        TextTable::Num(ToLitres(p.volume) * 1000.0, 1),
        TextTable::Num(p.mass.value() * 1000.0, 1),
        TextTable::Num(p.EnergyDensityWhPerLitre(), 0),
        TextTable::Num(p.EnergyDensityWhPerKg(), 0),
        TextTable::Num(p.cost_usd / wh, 2),
        TextTable::Num(p.max_discharge_current.value() / cap_ah, 1),
        TextTable::Num(p.max_charge_current.value() / cap_ah, 1),
        TextTable::Num(p.rated_cycle_count, 0),
        TextTable::Num(p.dcir_vs_soc.Evaluate(0.5), 3),
        TextTable::Num(p.bend_radius_mm, 0),
    });
  }
  table.Print(std::cout);
  sdb::bench::PrintNote(
      "paper Table 1 lists the characteristic axes; this table instantiates them "
      "for the synthetic stand-ins of the 15 batteries characterised in §4.3.");
  return 0;
}

// Figure 11: the energy-density / charge-speed / longevity tradeoff of
// combining a fast-charging battery with a high energy-density battery
// (§5.1). Three configurations meet the same 8000 mAh budget:
//   * "no fast"  — 100% high energy-density (two HE cells),
//   * "SDB 50%"  — half fast-charging, half high energy-density,
//   * "all fast" — 100% fast-charging cells.
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "src/util/check.h"
#include "src/chem/aging.h"

namespace {

using namespace sdb;

// (b) Charge the pack from empty at a generous wall supply; record minutes
// to reach each percentage of total nominal capacity.
std::map<int, double> ChargeTimeCurve(double fast_fraction, uint64_t seed) {
  bench::Rig rig(bench::MakeFastChargeScenarioCells(fast_fraction, 0.0), seed);
  rig.runtime().SetChargingDirective(1.0);  // Charge as fast as possible.

  double total_cap = 0.0;
  for (size_t i = 0; i < rig.micro().battery_count(); ++i) {
    total_cap += rig.micro().pack().cell(i).params().nominal_capacity.value();
  }

  std::map<int, double> minutes_at_pct;
  const double kTick = 5.0;
  double t = 0.0;
  int next_pct = 15;
  double next_replan = 0.0;
  while (t < Hours(4.0).value() && next_pct <= 85) {
    if (t >= next_replan) {
      SDB_CHECK(rig.runtime().Update(Watts(0.0), Watts(60.0)).ok());
      next_replan = t + 30.0;
    }
    rig.micro().Step(Watts(0.0), Watts(60.0), Seconds(kTick));
    t += kTick;
    double stored = 0.0;
    for (size_t i = 0; i < rig.micro().battery_count(); ++i) {
      const Cell& cell = rig.micro().pack().cell(i);
      stored += cell.soc() * cell.params().nominal_capacity.value();
    }
    while (next_pct <= 85 && stored / total_cap >= next_pct / 100.0) {
      minutes_at_pct[next_pct] = t / 60.0;
      next_pct += 5;
    }
  }
  return minutes_at_pct;
}

// (c) Longevity after 1000 cycles: each cell is cycled at the charge rate
// its configuration uses (fast cells at 3C; HE cells slow-charged at 0.2C).
double PackLongevityAfter1000Cycles(double fast_fraction) {
  std::vector<Cell> cells = bench::MakeFastChargeScenarioCells(fast_fraction, 0.0);
  double weighted = 0.0;
  double total_cap = 0.0;
  for (const Cell& cell : cells) {
    const BatteryParams& p = cell.params();
    AgingModel aging(&p);
    double c_rate = p.chemistry == Chemistry::kType3FastCharge ? 3.0 : 0.2;
    for (int cycle = 0; cycle < 1000; ++cycle) {
      double dose = 0.8 * p.nominal_capacity.value() * aging.capacity_factor();
      aging.RecordCharge(Coulombs(dose), p.CRate(c_rate));
    }
    weighted += aging.longevity_percent() * p.nominal_capacity.value();
    total_cap += p.nominal_capacity.value();
  }
  return weighted / total_cap;
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Figure 11(a): energy density vs % fast-charging capacity");
  {
    TextTable table({"config", "Wh/l (effective)"});
    for (double f : {0.0, 0.5, 1.0}) {
      std::vector<Cell> cells = bench::MakeFastChargeScenarioCells(f, 0.0);
      double wh = 0.0, litres = 0.0;
      for (const Cell& cell : cells) {
        const BatteryParams& p = cell.params();
        bool swollen = p.chemistry == Chemistry::kType3FastCharge;
        wh += ToWattHours(p.NominalEnergy());
        litres += ToWattHours(p.NominalEnergy()) / p.EnergyDensityWhPerLitre(swollen);
      }
      table.AddRow({TextTable::Num(100.0 * f, 0) + "% fast", TextTable::Num(wh / litres, 0)});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "paper: ~595 Wh/l (0%), 545-555 Wh/l (50%), 500-510 Wh/l effective (100%, "
        "including fast-charge swelling).");
  }

  PrintBanner(std::cout, "Figure 11(b): charging time (minutes) vs % charged");
  {
    auto traditional = ChargeTimeCurve(0.0, 1);
    auto sdb50 = ChargeTimeCurve(0.5, 2);
    auto fast = ChargeTimeCurve(1.0, 3);
    TextTable table({"% charged", "traditional", "SDB (50%)", "fast-charging"});
    for (int pct = 15; pct <= 85; pct += 5) {
      auto cell = [&](std::map<int, double>& m) {
        return m.count(pct) ? TextTable::Num(m[pct], 1) : std::string("-");
      };
      table.AddRow({std::to_string(pct), cell(traditional), cell(sdb50), cell(fast)});
    }
    table.Print(std::cout);
    if (sdb50.count(40) && traditional.count(40)) {
      std::cout << "  time to 40% charge: SDB " << TextTable::Num(sdb50[40], 1)
                << " min vs traditional " << TextTable::Num(traditional[40], 1)
                << " min (speedup " << TextTable::Num(traditional[40] / sdb50[40], 1)
                << "x)\n";
    }
    bench::PrintNote(
        "paper: the 50% SDB config reaches 40% charge about 3x faster than the "
        "traditional battery while giving up <7% energy capacity.");
  }

  PrintBanner(std::cout, "Figure 11(c): longevity after 1000 cycles");
  {
    TextTable table({"config", "capacity remaining (%)"});
    table.AddRow({"All fast-charging battery", TextTable::Num(PackLongevityAfter1000Cycles(1.0), 1)});
    table.AddRow({"SDB (50/50)", TextTable::Num(PackLongevityAfter1000Cycles(0.5), 1)});
    table.AddRow({"No fast-charging battery", TextTable::Num(PackLongevityAfter1000Cycles(0.0), 1)});
    table.Print(std::cout);
    bench::PrintNote(
        "paper: ~78 (all fast, -22%), middle ground for SDB, ~90 (no fast, -10%).");
  }
  return 0;
}

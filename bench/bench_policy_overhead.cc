// Policy compute overhead (google-benchmark): the paper argues the SDB
// Runtime can live in the OS because its decisions run at coarse time
// steps; this bench shows a full re-plan costs microseconds even for
// many-battery packs.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/allocator.h"
#include "src/core/ccb_policy.h"
#include "src/core/rbl_policy.h"

namespace {

using namespace sdb;

std::vector<Cell> MakeCells(int n) {
  std::vector<Cell> cells;
  for (int i = 0; i < n; ++i) {
    cells.emplace_back(MakeType2Standard(MilliAmpHours(2000.0 + 500.0 * (i % 4)), i % 8),
                       0.3 + 0.6 * (i % 3) / 2.0);
  }
  return cells;
}

BatteryViews MakeViews(int n) {
  bench::Rig rig(MakeCells(n), 7);
  return rig.runtime().BuildViews();
}

void BM_RuntimeUpdate(benchmark::State& state) {
  bench::Rig rig(MakeCells(static_cast<int>(state.range(0))), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.runtime().Update(Watts(8.0), Watts(0.0)));
  }
}
BENCHMARK(BM_RuntimeUpdate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RblDischargeAllocate(benchmark::State& state) {
  BatteryViews views = MakeViews(static_cast<int>(state.range(0)));
  RblDischargePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Allocate(views, Watts(8.0)));
  }
}
BENCHMARK(BM_RblDischargeAllocate)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_CcbDischargeAllocate(benchmark::State& state) {
  BatteryViews views = MakeViews(static_cast<int>(state.range(0)));
  CcbDischargePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Allocate(views, Watts(8.0)));
  }
}
BENCHMARK(BM_CcbDischargeAllocate)->Arg(2)->Arg(8)->Arg(64);

void BM_MarginalCostAllocator(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  MarginalCostProblem problem;
  for (int i = 0; i < n; ++i) {
    problem.resistance.push_back(Ohms(0.02 + 0.01 * (i % 5)));
    problem.dcir_growth.push_back(ResistancePerCharge(1e-6 * (i % 3)));
    problem.current_cap.push_back(Amps(4.0));
  }
  problem.total_current = Amps(n * 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMarginalCostAllocation(problem));
  }
}
BENCHMARK(BM_MarginalCostAllocator)->Arg(2)->Arg(8)->Arg(64)->Arg(256);

void BM_MicroStep(benchmark::State& state) {
  bench::Rig rig(MakeCells(static_cast<int>(state.range(0))), 7);
  (void)rig.runtime().Update(Watts(6.0), Watts(0.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.micro().Step(Watts(6.0), Watts(0.0), Seconds(1.0)));
  }
}
BENCHMARK(BM_MicroStep)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

// Hand-rolled BENCHMARK_MAIN: our `--metrics-out PATH` flag must be stripped
// before benchmark::Initialize (which rejects flags it doesn't know).
int main(int argc, char** argv) {
  std::string metrics_out;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sdb::bench::WriteMetricsJson(metrics_out);
}

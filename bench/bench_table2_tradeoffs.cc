// Table 2: the three tradeoffs that drive SDB policies, quantified on the
// same battery models the policies run against:
//   (1) charge power vs longevity,
//   (2) discharge power vs longevity,
//   (3) discharge power vs battery life (I^2 R losses).
#include <iostream>

#include "bench/bench_common.h"
#include "src/chem/aging.h"

namespace {

using namespace sdb;

// Capacity remaining after 500 cycles charged at the given C-rate.
double LongevityAtChargeRate(double c_rate) {
  BatteryParams params = MakeType2Standard(MilliAmpHours(3000.0));
  AgingModel aging(&params);
  for (int cycle = 0; cycle < 500; ++cycle) {
    double dose = 0.8 * params.nominal_capacity.value() * aging.capacity_factor();
    aging.RecordCharge(Coulombs(dose), params.CRate(c_rate));
  }
  return aging.longevity_percent();
}

// Single-charge energy delivered when draining at the given C-rate, as a
// fraction of the 0.1C reference.
double DeliveredEnergyFraction(double c_rate) {
  auto drain = [](double rate) {
    Cell cell(MakeType2Standard(MilliAmpHours(3000.0)), 1.0);
    double delivered = 0.0;
    while (!cell.IsEmpty(1e-3)) {
      StepResult r = cell.StepDischargeCurrent(cell.params().CRate(rate), Seconds(20.0));
      delivered += r.energy_at_terminals.value();
      if (r.current.value() <= 0.0) {
        break;
      }
    }
    return delivered;
  };
  return drain(c_rate) / drain(0.1);
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Table 2(1): charge power vs longevity (500 cycles)");
  {
    TextTable table({"charge rate (C)", "full-charge time (min, CC phase)", "capacity left (%)"});
    for (double c : {0.1, 0.2, 0.35, 0.5, 0.7}) {  // 0.7C is the Type 2 datasheet limit.
      table.AddRow({TextTable::Num(c, 1), TextTable::Num(60.0 / c, 0),
                    TextTable::Num(LongevityAtChargeRate(c), 1)});
    }
    table.Print(std::cout);
    bench::PrintNote("higher charge rate -> faster charging but faster crack formation.");
  }

  PrintBanner(std::cout, "Table 2(2): discharge power vs longevity");
  {
    // Discharge stress enters through the recharge that follows: draining at
    // high C forces proportionally high-current recharges in fast-turnaround
    // duty cycles. Reported via the same fade law on the implied currents.
    TextTable table({"duty cycle", "implied recharge rate (C)", "capacity left (%)"});
    struct Row {
      const char* name;
      double c;
    } rows[] = {{"overnight recharge", 0.2}, {"lunch-break top-up", 0.5}, {"rapid turnaround", 0.7}};
    for (const auto& r : rows) {
      table.AddRow({r.name, TextTable::Num(r.c, 1), TextTable::Num(LongevityAtChargeRate(r.c), 1)});
    }
    table.Print(std::cout);
    bench::PrintNote("supporting high-current workloads shortens cycle life.");
  }

  PrintBanner(std::cout, "Table 2(3): discharge power vs battery life (DCIR losses)");
  {
    TextTable table({"discharge rate (C)", "energy delivered (% of 0.1C)"});
    for (double c : {0.25, 0.5, 1.0, 1.5, 2.0}) {
      table.AddRow({TextTable::Num(c, 2), TextTable::Num(100.0 * DeliveredEnergyFraction(c), 1)});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "losses are proportional to the square of the current: doubling the rate "
        "more than doubles the wasted energy.");
  }
  return 0;
}

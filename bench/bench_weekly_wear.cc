// Two months of daily cycling under different directive parameters: the
// longevity half of the directive tradeoff (Table 2 / §3.3), measured end
// to end through the full stack. RBL-heavy settings squeeze more life out
// of each day; CCB-heavy settings balance wear so the pack's weakest
// battery ages slower.
// The three directive settings are independent 60-day simulations, so they
// run on a shared pool (--jobs N / SDB_THREADS) with rows printed in
// setting order.
#include <iostream>
#include <iterator>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

struct WearOutcome {
  double wear0_pct;
  double wear1_pct;
  double capacity0_pct;
  double capacity1_pct;
  double ccb;
  double mean_daily_life_h;
  double total_loss_kj;
};

WearOutcome RunSixtyDays(double discharge_directive, double charge_directive, uint64_t seed) {
  // Unequal rated cycle lives make wear balancing meaningful.
  std::vector<Cell> cells;
  BatteryParams a = MakeFastChargeTablet(MilliAmpHours(4000.0));
  a.rated_cycle_count = 500.0;
  BatteryParams b = MakeHighEnergyTablet(MilliAmpHours(4000.0));
  b.rated_cycle_count = 1200.0;
  cells.emplace_back(std::move(a), 1.0);
  cells.emplace_back(std::move(b), 1.0);
  bench::Rig rig(std::move(cells), seed);
  rig.runtime().SetDischargingDirective(discharge_directive);
  rig.runtime().SetChargingDirective(charge_directive);

  SimConfig config;
  config.tick = Seconds(15.0);
  config.runtime_period = Minutes(10.0);
  Simulator sim(&rig.runtime(), config);

  double life_sum = 0.0;
  double loss_sum = 0.0;
  const int kDays = 60;
  for (int day = 0; day < kDays; ++day) {
    SimResult use = sim.Run(PowerTrace::Constant(Watts(12.0), Hours(6.0)));
    life_sum += use.first_shortfall.has_value() ? ToHours(*use.first_shortfall)
                                                : ToHours(use.elapsed);
    loss_sum += use.TotalLoss().value();
    // Scarce nightly recharge (a 20 W brick for 2.5 h): the charge split
    // matters because not everyone can fill up.
    SimResult charge = sim.RunChargeOnly(Watts(20.0), Hours(2.5));
    loss_sum += charge.TotalLoss().value();
  }

  WearOutcome outcome;
  const BatteryPack& pack = rig.micro().pack();
  outcome.capacity0_pct = 100.0 * pack.cell(0).aging().capacity_factor();
  outcome.capacity1_pct = 100.0 * pack.cell(1).aging().capacity_factor();
  double wear0 = pack.cell(0).aging().wear_ratio();
  double wear1 = pack.cell(1).aging().wear_ratio();
  outcome.wear0_pct = 100.0 * wear0;
  outcome.wear1_pct = 100.0 * wear1;
  double lo = std::max(1e-3, std::min(wear0, wear1));
  outcome.ccb = std::max(wear0, wear1) / lo;
  outcome.mean_daily_life_h = life_sum / kDays;
  outcome.total_loss_kj = loss_sum / 1000.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  PrintBanner(std::cout,
              "Sixty days of daily cycling: directive parameters vs wear and daily life");
  TextTable table({"directives (dis/chg)", "mean daily life (h)", "cap A (%)", "cap B (%)",
                   "wear A (%)", "wear B (%)", "CCB", "losses (kJ)"});
  struct Setting {
    const char* label;
    double discharge;
    double charge;
  } settings[] = {
      {"RBL-heavy (1.0/1.0)", 1.0, 1.0},
      {"balanced (0.5/0.5)", 0.5, 0.5},
      {"CCB-heavy (0.0/0.0)", 0.0, 0.0},
  };
  const int64_t kSettings = static_cast<int64_t>(std::size(settings));
  WearOutcome outcomes[std::size(settings)];
  ThreadPool pool(jobs);
  sdb::obs::Stopwatch stopwatch;
  sdb::bench::SweepParallelFor(&pool, kSettings, [&](int64_t i) {
    outcomes[i] = RunSixtyDays(settings[i].discharge, settings[i].charge, 2024);
  });
  double sweep_wall_s = stopwatch.ElapsedSeconds();
  for (int64_t i = 0; i < kSettings; ++i) {
    const WearOutcome& o = outcomes[i];
    table.AddRow({settings[i].label, TextTable::Num(o.mean_daily_life_h, 2),
                  TextTable::Num(o.capacity0_pct, 2), TextTable::Num(o.capacity1_pct, 2),
                  TextTable::Num(o.wear0_pct, 1), TextTable::Num(o.wear1_pct, 1),
                  TextTable::Num(o.ccb, 2), TextTable::Num(o.total_loss_kj, 1)});
  }
  table.Print(std::cout);
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  sdb::bench::PrintNote(
      "the paper's central policy tension, end to end: RBL-heavy settings win "
      "daily battery life, CCB-heavy settings protect the short-lived "
      "battery's cycle budget (lower wear A, CCB near 1) at a cost per day — "
      "exactly why the OS must own the directive parameters.");
  sdb::bench::BenchReport report;
  report.bench = "weekly_wear";
  report.git_sha = sdb::bench::GitShaFromEnv();
  report.jobs = jobs;
  report.runs = static_cast<int>(kSettings);
  report.reps = 1;
  report.wall_s = sweep_wall_s;
  const char* prefixes[] = {"rbl_heavy", "balanced", "ccb_heavy"};
  for (int64_t i = 0; i < kSettings; ++i) {
    report.AddMetric(std::string(prefixes[i]) + "_life_h", outcomes[i].mean_daily_life_h);
    report.AddMetric(std::string(prefixes[i]) + "_ccb", outcomes[i].ccb);
  }
  sdb::Status wrote = sdb::bench::WriteBenchReport(report, sdb::bench::ParseBenchOut(argc, argv));
  if (!wrote.ok()) {
    std::cerr << wrote.message() << "\n";
    return 1;
  }
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

// Figure 14: 2-in-1 battery management (§5.3). A detachable with a 4000 mAh
// internal battery and a 4000 mAh keyboard-base battery, across ten
// application workloads. Two strategies:
//   baseline — the external battery only charges the internal one (the
//              charge-through design shipping products use),
//   SDB      — draw power simultaneously from both batteries in the
//              loss-minimising proportion.
// Reported: battery-life improvement % of SDB over the baseline.
#include <iostream>

#include "bench/bench_common.h"
#include "src/emu/workload.h"

namespace {

using namespace sdb;

// Loops the workload trace until the pack can no longer serve it; returns
// hours of battery life.
double SdbLifeHours(const PowerTrace& workload, uint64_t seed) {
  bench::Rig rig(bench::MakeTwoInOneCells(1.0), seed);
  rig.runtime().SetDischargingDirective(1.0);
  SimConfig config;
  config.tick = Seconds(2.0);
  config.runtime_period = Seconds(60.0);
  Simulator sim(&rig.runtime(), config);
  double t = 0.0;
  for (int loop = 0; loop < 64; ++loop) {
    SimResult r = sim.Run(workload);
    t += ToHours(r.elapsed);
    if (r.first_shortfall.has_value()) {
      return t;
    }
  }
  return t;
}

double ChargeThroughLifeHours(const PowerTrace& workload, uint64_t seed) {
  bench::Rig rig(bench::MakeTwoInOneCells(1.0), seed);
  // All load comes from the internal battery; the external battery
  // continuously recharges it through the transfer path.
  (void)rig.micro().SetDischargeRatios({1.0, 0.0});
  const double kTransferW = 24.0;
  (void)rig.micro().ChargeOneFromAnother(1, 0, Watts(kTransferW), Hours(100.0));
  const double kTick = 2.0;
  double t = 0.0;
  double horizon = workload.TotalDuration().value();
  while (t < 64.0 * horizon) {
    Power load = workload.Sample(Seconds(std::fmod(t, horizon)));
    MicroTick tick = rig.micro().Step(load, Watts(0.0), Seconds(kTick));
    t += kTick;
    if (tick.discharge.shortfall && load.value() > 0.0) {
      break;
    }
    // Keep the transfer alive while the external battery has charge and the
    // internal battery has room.
    if (!rig.micro().transfer_active() && !rig.micro().pack().cell(1).IsEmpty() &&
        !rig.micro().pack().cell(0).IsFull()) {
      (void)rig.micro().ChargeOneFromAnother(1, 0, Watts(kTransferW), Hours(100.0));
    }
  }
  return ToHours(Seconds(t));
}

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Figure 14: 2-in-1 battery-life improvement, simultaneous draw vs charge-through");

  TextTable table({"workload", "charge-through (h)", "SDB parallel (h)", "improvement (%)"});
  double worst = 1e9, best = 0.0;
  for (const NamedWorkload& w : MakeTwoInOneWorkloads()) {
    double base_h = ChargeThroughLifeHours(w.trace, 81);
    double sdb_h = SdbLifeHours(w.trace, 82);
    double improvement = 100.0 * (sdb_h - base_h) / base_h;
    worst = std::min(worst, improvement);
    best = std::max(best, improvement);
    table.AddRow({w.name, TextTable::Num(base_h, 2), TextTable::Num(sdb_h, 2),
                  TextTable::Num(improvement, 1)});
  }
  table.Print(std::cout);
  std::cout << "  improvement range: " << TextTable::Num(worst, 1) << "% .. "
            << TextTable::Num(best, 1) << "%\n";
  sdb::bench::PrintNote(
      "paper: drawing power simultaneously from both batteries yields ~15-23% more "
      "battery life (headline 22%) than charging the internal battery from the "
      "external one.");
  return 0;
}

// Scenario-pack sweep: one capped run per registered pack (ROADMAP item 5),
// plus an expansion-throughput measurement for the fuzz loop, whose cost per
// case is one expansion + one sim. Packs are independent simulations, so
// they run on a shared pool (--jobs N / SDB_THREADS); rows are collected in
// registry order so the table (and the BENCH json) stays byte-stable.
//
// Defaults stay smoke-fast: every pack's load is clipped to --cap-min
// simulated minutes (30 by default) so the ctest smoke finishes in seconds
// while `--cap-min 1440` reproduces the full-day figures.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/emu/scenario_pack.h"
#include "src/emu/trace_io.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

struct PackRun {
  std::string name;
  size_t cells = 0;
  double envelope_w = 0.0;
  double served_h = 0.0;   // Lifetime inside the cap (shortfall or elapsed).
  double loss_j = 0.0;
  double delivered_j = 0.0;
};

// Clips the spec's load (and horizon) to `cap` so full-week packs still
// finish inside a smoke-test budget. Partial segments are split exactly, so
// the clipped trace's energy is the prefix integral of the original.
ScenarioSpec ClipScenario(ScenarioSpec spec, Duration cap) {
  PowerTrace clipped;
  Duration acc = Seconds(0.0);
  for (const auto& segment : spec.load.segments()) {
    Duration remaining = cap - acc;
    if (remaining.value() <= 0.0) {
      break;
    }
    Duration take = segment.duration.value() <= remaining.value() ? segment.duration : remaining;
    clipped.Append(take, segment.power);
    acc = acc + take;
  }
  spec.load = clipped;
  if (spec.sim.max_duration.value() > cap.value()) {
    spec.sim.max_duration = cap;
  }
  return spec;
}

PackRun RunOnePack(const ScenarioPack& pack, Duration cap, uint64_t seed) {
  ScenarioSpec spec = ClipScenario(ExpandScenario(pack.name, {}, seed).value(), cap);
  SimResult result = RunScenario(spec);
  PackRun run;
  run.name = pack.name;
  run.cells = spec.batteries.size();
  run.envelope_w = spec.envelope.value();
  run.served_h = result.first_shortfall.has_value() ? ToHours(*result.first_shortfall)
                                                    : ToHours(result.elapsed);
  run.loss_j = result.TotalLoss().value();
  run.delivered_j = result.delivered.value();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  int reps = sdb::bench::ParseIntFlag(argc, argv, "reps", 3);
  int cap_min = sdb::bench::ParseIntFlag(argc, argv, "cap-min", 30);
  const Duration cap = Minutes(static_cast<double>(cap_min));
  const uint64_t kSeed = 2026;

  const std::vector<ScenarioPack>& packs = ScenarioPacks();
  const int64_t n = static_cast<int64_t>(packs.size());

  // Expansion throughput: the fuzzer pays one expansion per sampled case, so
  // this is the fixed overhead in every fuzz case's budget. Min-of-reps over
  // a full registry sweep; the CSV format forces the trace to materialize.
  size_t trace_bytes = 0;
  double expand_wall_s = sdb::bench::MinOfReps(reps, [&] {
    obs::Stopwatch stopwatch;
    trace_bytes = 0;
    for (const ScenarioPack& pack : packs) {
      ScenarioSpec spec = ExpandScenario(pack.name, {}, kSeed).value();
      trace_bytes += FormatPowerTraceCsv(spec.load).size();
    }
    return stopwatch.ElapsedSeconds();
  });
  double expansions_per_s = expand_wall_s > 0.0 ? static_cast<double>(n) / expand_wall_s : 0.0;

  PrintBanner(std::cout, "Scenario packs: capped run per registered family");
  std::vector<PackRun> runs(packs.size());
  ThreadPool pool(jobs);
  sdb::obs::Stopwatch stopwatch;
  sdb::bench::SweepParallelFor(&pool, n, [&](int64_t i) {
    runs[static_cast<size_t>(i)] = RunOnePack(packs[static_cast<size_t>(i)], cap, kSeed);
  });
  double sweep_wall_s = stopwatch.ElapsedSeconds();

  TextTable table({"pack", "cells", "envelope (W)", "served (h)", "delivered (kJ)",
                   "losses (J)"});
  for (const PackRun& run : runs) {
    table.AddRow({run.name, TextTable::Num(static_cast<double>(run.cells), 0),
                  TextTable::Num(run.envelope_w, 2), TextTable::Num(run.served_h, 3),
                  TextTable::Num(run.delivered_j / 1000.0, 3),
                  TextTable::Num(run.loss_j, 1)});
  }
  table.Print(std::cout);
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  sdb::bench::PrintNote(
      "every registered pack expands and serves its load inside the cap (" +
      std::to_string(cap_min) + " min); expansion costs ~" +
      TextTable::Num(1e3 * expand_wall_s / static_cast<double>(n), 3) +
      " ms per pack, the fixed overhead of each fuzz case.");

  sdb::bench::BenchReport report;
  report.bench = "scenario_packs";
  report.git_sha = sdb::bench::GitShaFromEnv();
  report.jobs = jobs;
  report.runs = static_cast<int>(n);
  report.reps = reps;
  report.wall_s = sweep_wall_s;
  report.AddMetric("expansions_per_s", expansions_per_s);
  report.AddMetric("trace_csv_bytes", static_cast<double>(trace_bytes));
  for (const PackRun& run : runs) {
    report.AddMetric(run.name + "_served_h", run.served_h);
    report.AddMetric(run.name + "_loss_j", run.loss_j);
  }
  sdb::Status wrote = sdb::bench::WriteBenchReport(report, sdb::bench::ParseBenchOut(argc, argv));
  if (!wrote.ok()) {
    std::cerr << wrote.message() << "\n";
    return 1;
  }
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

// Figure 6: SDB hardware microbenchmarks, reproduced against the circuit
// models calibrated to the prototype:
//   (a) discharge-circuit power loss % vs discharge power (0.1-10 W),
//   (b) proportion-setting error % vs share setting (1-99%),
//   (c) charging efficiency as % of the charger chip's typical efficiency
//       vs charging current (0.8-2.2 A),
//   (d) charging-current setpoint error % vs setpoint (0.2-2.0 A).
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "src/hw/charge_circuit.h"
#include "src/hw/discharge_circuit.h"
#include "src/hw/switching_sim.h"

namespace {

// Measures the realised share against the setting by stepping a fresh
// two-battery pack once, like probing the prototype with a multimeter.
double MeasureShareErrorPercent(double setting, uint64_t seed) {
  using namespace sdb;
  BatteryPack pack;
  pack.AddCell(Cell(MakeType2Standard(MilliAmpHours(3000.0), 0), 1.0));
  pack.AddCell(Cell(MakeType2Standard(MilliAmpHours(3000.0), 1), 1.0));
  SdbDischargeCircuit circuit((DischargeCircuitConfig()), seed);
  DischargeTick tick = circuit.Step(pack, {setting, 1.0 - setting}, Watts(4.0), Seconds(1.0));
  return 100.0 * std::fabs(tick.realised_shares[0] - setting) / setting;
}

}  // namespace

int main() {
  using namespace sdb;

  PrintBanner(std::cout, "Figure 6(a): discharge circuit power loss vs load");
  {
    SdbDischargeCircuit circuit((DischargeCircuitConfig()), 1);
    TextTable table({"load (W)", "loss (%)"});
    for (double p : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
      double loss = circuit.CircuitLossAt(Watts(p), Volts(3.7)).value();
      table.AddRow({TextTable::Num(p, 1), TextTable::Num(100.0 * loss / p, 2)});
    }
    table.Print(std::cout);
    bench::PrintNote("paper: ~1% at light loads rising to ~1.6% at 10 W.");
  }

  PrintBanner(std::cout, "Figure 6(b): proportion setting error");
  {
    TextTable table({"setting (%)", "mean error (%)", "max error (%)"});
    for (double s : {0.01, 0.05, 0.10, 0.20, 0.50, 0.80, 0.95, 0.99}) {
      double sum = 0.0;
      double worst = 0.0;
      const int kTrials = 32;
      for (int t = 0; t < kTrials; ++t) {
        double err = MeasureShareErrorPercent(s, 100 + t);
        sum += err;
        worst = std::max(worst, err);
      }
      table.AddRow({TextTable::Num(100.0 * s, 0), TextTable::Num(sum / kTrials, 3),
                    TextTable::Num(worst, 3)});
    }
    table.Print(std::cout);
    bench::PrintNote("paper: < 0.6% across the whole setting range.");
  }

  PrintBanner(std::cout, "Figure 6(c): charging efficiency (% of chip's typical)");
  {
    std::vector<const BatteryParams*> params;
    BatteryParams p0 = MakeType2Standard(MilliAmpHours(3000.0));
    params.push_back(&p0);
    SdbChargeCircuit circuit((ChargeCircuitConfig()), params, 2);
    TextTable table({"current (A)", "efficiency (% of typical)"});
    for (double a : {0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2}) {
      double ratio = circuit.EfficiencyVsTypical(Amps(a), Volts(3.7));
      table.AddRow({TextTable::Num(a, 1), TextTable::Num(100.0 * ratio, 1)});
    }
    table.Print(std::cout);
    bench::PrintNote("paper: near-typical at light loads, ~94% at high charging currents.");
  }

  PrintBanner(std::cout, "Figure 6(d): charging current setpoint error");
  {
    std::vector<const BatteryParams*> params;
    BatteryParams p0 = MakeType2Standard(MilliAmpHours(3000.0));
    params.push_back(&p0);
    SdbChargeCircuit circuit((ChargeCircuitConfig()), params, 3);
    TextTable table({"setpoint (A)", "error envelope (%)"});
    for (double a = 0.2; a <= 2.01; a += 0.2) {
      table.AddRow({TextTable::Num(a, 1),
                    TextTable::Num(100.0 * circuit.SetpointErrorEnvelope(Amps(a)), 3)});
    }
    table.Print(std::cout);
    bench::PrintNote("paper: at or below 0.5%, worst at low currents.");
  }
  PrintBanner(std::cout, "Waveform-level validation (the paper's LTSPICE runs, §3.2.1)");
  {
    std::vector<SwitchingSource> sources = {{Volts(3.9), MilliOhms(35.0)},
                                            {Volts(3.7), MilliOhms(55.0)}};
    TextTable table({"share setting", "realised share", "ripple (mV pp)", "settle (us)",
                     "regulated"});
    for (double share : {0.2, 0.5, 0.8}) {
      auto sim = RunSwitchingSim(sources, {share, 1.0 - share}, Ohms(2.0), Seconds(10e-3));
      if (!sim.ok()) {
        std::cout << "  sim error: " << sim.status().ToString() << "\n";
        continue;
      }
      table.AddRow({TextTable::Num(share, 2), TextTable::Num(sim->realised_shares[0], 3),
                    TextTable::Num(1000.0 * sim->ripple_pp.value(), 2),
                    TextTable::Num(1e6 * sim->settling_time.value(), 0),
                    sim->regulated ? "yes" : "NO"});
    }
    table.Print(std::cout);
    bench::PrintNote(
        "packet-level weighted round-robin at 500 kHz holds the rail within "
        "millivolts while the per-battery energy split tracks the setting — "
        "the correctness/stability/responsiveness claim of §3.2.1.");
  }
  return 0;
}

// Monte-Carlo policy comparison: the Fig. 13 conclusion with spread. Each
// policy runs the smart-watch day across many jittered workload seeds
// (different check timings, burst powers, run intensity); mean, spread and
// worst case are reported per policy.
#include <iostream>

#include "bench/bench_common.h"
#include "src/emu/monte_carlo.h"
#include "src/emu/workload.h"
#include "src/util/histogram.h"

namespace {

using namespace sdb;

MonteCarloResult RunPolicy(double directive, bool hint, int runs) {
  ScenarioFn scenario = [directive, hint](uint64_t seed) {
    bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
    rig.runtime().SetDischargingDirective(directive);
    if (hint) {
      rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
    }
    SmartwatchDayConfig day;
    day.seed = seed;  // Vary the workload itself, not just measurement noise.
    SimConfig config;
    config.tick = Seconds(10.0);
    config.runtime_period = Minutes(10.0);
    Simulator sim(&rig.runtime(), config);
    return sim.Run(MakeSmartwatchDayTrace(day));
  };
  return RunMonteCarlo(scenario, runs, /*base_seed=*/1000);
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Monte-Carlo: smart-watch day across 24 workload seeds");

  const int kRuns = 24;
  struct Row {
    const char* name;
    MonteCarloResult result;
  };
  Row rows[] = {
      {"Reserve (hint)", RunPolicy(1.0, true, kRuns)},
      {"RBL-Discharge", RunPolicy(1.0, false, kRuns)},
      {"Blend 0.5", RunPolicy(0.5, false, kRuns)},
      {"CCB even split", RunPolicy(0.0, false, kRuns)},
  };

  TextTable table({"policy", "life mean (h)", "life sigma (h)", "life min (h)",
                   "loss mean (J)", "shortfall runs"});
  for (const Row& row : rows) {
    table.AddRow({row.name, TextTable::Num(row.result.battery_life_h.mean(), 2),
                  TextTable::Num(row.result.battery_life_h.stddev(), 2),
                  TextTable::Num(row.result.battery_life_h.min(), 2),
                  TextTable::Num(row.result.total_loss_j.mean(), 1),
                  std::to_string(row.result.shortfall_runs) + "/" +
                      std::to_string(row.result.runs)});
  }
  table.Print(std::cout);

  // Distribution of the hinted policy's battery life across seeds.
  {
    Histogram hist(11.0, 12.5, 6);
    ScenarioFn scenario = [](uint64_t seed) {
      bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
      rig.runtime().SetDischargingDirective(1.0);
      rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
      SmartwatchDayConfig day;
      day.seed = seed;
      SimConfig config;
      config.tick = Seconds(10.0);
      config.runtime_period = Minutes(10.0);
      Simulator sim(&rig.runtime(), config);
      return sim.Run(MakeSmartwatchDayTrace(day));
    };
    for (int r = 0; r < kRuns; ++r) {
      SimResult result = scenario(1000 + r);
      hist.Add(result.first_shortfall.has_value() ? ToHours(*result.first_shortfall)
                                                  : ToHours(result.elapsed));
    }
    std::cout << "Reserve-policy battery-life histogram (hours):\n";
    for (int b = 0; b < hist.bins(); ++b) {
      std::cout << "  [" << TextTable::Num(hist.BinLow(b), 2) << ", "
                << TextTable::Num(hist.BinLow(b) + 0.25, 2) << ")  "
                << std::string(hist.BinCount(b), '#') << "\n";
    }
  }
  sdb::bench::PrintNote(
      "the Fig. 13 ordering holds in expectation, not just on one trace: the "
      "hinted policy leads on mean and worst-case battery life.");
  return 0;
}

// Monte-Carlo policy comparison: the Fig. 13 conclusion with spread. Each
// policy runs the smart-watch day across many jittered workload seeds
// (different check timings, burst powers, run intensity); mean, spread and
// worst case are reported per policy.
//
// Also the perf harness for the batched SoA kernel (DESIGN.md §12): a
// kernel-throughput section steps --lanes cells for --steps ticks through
// CellLanes::AdvanceBatch and through per-object Cell calls, asserts the
// two end states are bit-identical, and reports both rates. Timing is
// min-of-reps (check_overhead.py doctrine).
//
// Flags: --runs N (default 24), --jobs N (default SDB_THREADS / hardware),
// --reps N (default 3), --lanes N (default 256), --steps N (default 2000),
// --bench-out PATH (write BENCH_monte_carlo.json), --speedup (time one
// sweep serially and with --jobs workers and print the ratio — the engine's
// determinism means both produce identical stats).
#include <cstring>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/chem/soa_kernel.h"
#include "src/emu/monte_carlo.h"
#include "src/emu/workload.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/histogram.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

ScenarioFn MakeWatchScenario(double directive, bool hint) {
  return [directive, hint](uint64_t seed) {
    bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
    rig.runtime().SetDischargingDirective(directive);
    if (hint) {
      rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
    }
    SmartwatchDayConfig day;
    day.seed = seed;  // Vary the workload itself, not just measurement noise.
    SimConfig config;
    config.tick = Seconds(10.0);
    config.runtime_period = Minutes(10.0);
    Simulator sim(&rig.runtime(), config);
    return sim.Run(MakeSmartwatchDayTrace(day));
  };
}

MonteCarloResult RunPolicy(double directive, bool hint, int runs, int jobs) {
  MonteCarloOptions options;
  options.base_seed = 1000;
  options.jobs = jobs;
  return RunMonteCarlo(MakeWatchScenario(directive, hint), runs, options);
}

double TimeSweep(int runs, int jobs) {
  sdb::obs::Stopwatch stopwatch;
  (void)RunPolicy(1.0, true, runs, jobs);
  return stopwatch.ElapsedSeconds();
}

// ---- Kernel-throughput microbench ----------------------------------------

// Mixed pack for the lane benchmark: half smart-watch cells, half
// fast-charge tablet cells, all at 90% so both charge and discharge stay in
// the unclamped regime for most of the run (clamped tails are fine — both
// paths clamp identically).
std::vector<Cell> MakeKernelCells(int lanes) {
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    if (i % 2 == 0) {
      cells.emplace_back(MakeWatchLiIon(MilliAmpHours(200.0)), 0.9);
    } else {
      cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(3000.0)), 0.9);
    }
  }
  return cells;
}

// Deterministic per-lane, per-tick load: mostly discharge with a charge
// tick every 4th step, magnitudes staggered across lanes so neighbouring
// lanes take different curve segments.
soa::LaneRequest KernelRequest(int lane, int step) {
  double scale = (lane % 2 == 0) ? 0.25 : 3.0;  // watch vs tablet watts
  double wobble = 1.0 + 0.1 * static_cast<double>((lane + step) % 7);
  if ((step & 3) == 3) {
    return {soa::LaneOp::kChargePower, scale * wobble};
  }
  return {soa::LaneOp::kDischargePower, scale * wobble};
}

// End-state digest: plain sum of SoC and temperature across lanes. Both
// paths execute the same soa::StepLaneOnce sequence per lane, so the sums
// must match bit-for-bit, not just approximately.
double BatchChecksum(const soa::CellLanes& lanes) {
  double sum = 0.0;
  for (size_t i = 0; i < lanes.size(); ++i) {
    sum += lanes.soc(i) + lanes.temperature_k(i);
  }
  return sum;
}

double ScalarChecksum(const std::vector<Cell>& cells) {
  double sum = 0.0;
  for (const Cell& cell : cells) {
    sum += cell.soc() + cell.thermal().temperature().value();
  }
  return sum;
}

double RunKernelBatch(int lanes, int steps, double* checksum) {
  std::vector<Cell> cells = MakeKernelCells(lanes);
  soa::CellLanes batch;
  for (const Cell& cell : cells) {
    batch.AddLane(cell);
  }
  obs::Stopwatch stopwatch;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < lanes; ++i) {
      soa::LaneRequest req = KernelRequest(i, t);
      batch.SetRequest(static_cast<size_t>(i), req.op, req.magnitude);
    }
    batch.AdvanceBatch(1.0);
  }
  double wall = stopwatch.ElapsedSeconds();
  *checksum = BatchChecksum(batch);
  return wall;
}

double RunKernelScalar(int lanes, int steps, double* checksum) {
  std::vector<Cell> cells = MakeKernelCells(lanes);
  obs::Stopwatch stopwatch;
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < lanes; ++i) {
      soa::LaneRequest req = KernelRequest(i, t);
      Cell& cell = cells[static_cast<size_t>(i)];
      if (req.op == soa::LaneOp::kChargePower) {
        (void)cell.StepChargePower(Watts(req.magnitude), Seconds(1.0));
      } else {
        (void)cell.StepDischargePower(Watts(req.magnitude), Seconds(1.0));
      }
    }
  }
  double wall = stopwatch.ElapsedSeconds();
  *checksum = ScalarChecksum(cells);
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  int runs = sdb::bench::ParseIntFlag(argc, argv, "runs", 24);
  int reps = sdb::bench::ParseIntFlag(argc, argv, "reps", 3);
  int lanes = sdb::bench::ParseIntFlag(argc, argv, "lanes", 256);
  int steps = sdb::bench::ParseIntFlag(argc, argv, "steps", 2000);
  bool speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup") == 0) {
      speedup = true;
    }
  }

  PrintBanner(std::cout, "Monte-Carlo: smart-watch day across " + std::to_string(runs) +
                             " workload seeds (" + std::to_string(jobs) + " jobs)");

  struct Row {
    const char* name;
    MonteCarloResult result;
  };
  Row rows[] = {
      {"Reserve (hint)", RunPolicy(1.0, true, runs, jobs)},
      {"RBL-Discharge", RunPolicy(1.0, false, runs, jobs)},
      {"Blend 0.5", RunPolicy(0.5, false, runs, jobs)},
      {"CCB even split", RunPolicy(0.0, false, runs, jobs)},
  };

  TextTable table({"policy", "life mean (h)", "life sigma (h)", "life min (h)",
                   "loss mean (J)", "shortfall runs"});
  for (const Row& row : rows) {
    table.AddRow({row.name, TextTable::Num(row.result.battery_life_h.mean(), 2),
                  TextTable::Num(row.result.battery_life_h.stddev(), 2),
                  TextTable::Num(row.result.battery_life_h.min(), 2),
                  TextTable::Num(row.result.total_loss_j.mean(), 1),
                  std::to_string(row.result.shortfall_runs) + "/" +
                      std::to_string(row.result.runs)});
  }
  table.Print(std::cout);

  // Distribution of the hinted policy's battery life across seeds. The
  // parallel phase only computes per-seed lives; the histogram is filled in
  // seed order afterwards so its contents stay independent of `jobs`.
  {
    Histogram hist(11.0, 12.5, 6);
    ScenarioFn scenario = MakeWatchScenario(1.0, true);
    std::vector<double> lives(static_cast<size_t>(runs), 0.0);
    ThreadPool pool(jobs);
    bench::SweepParallelFor(&pool, runs, [&](int64_t r) {
      SimResult result = scenario(1000 + static_cast<uint64_t>(r));
      lives[static_cast<size_t>(r)] =
          result.first_shortfall.has_value() ? ToHours(*result.first_shortfall)
                                             : ToHours(result.elapsed);
    });
    for (double life : lives) {
      hist.Add(life);
    }
    std::cout << "Reserve-policy battery-life histogram (hours):\n";
    for (int b = 0; b < hist.bins(); ++b) {
      std::cout << "  [" << TextTable::Num(hist.BinLow(b), 2) << ", "
                << TextTable::Num(hist.BinLow(b) + 0.25, 2) << ")  "
                << std::string(hist.BinCount(b), '#') << "\n";
    }
  }

  // ---- SoA kernel throughput (min-of-reps, checksum-checked) -------------
  double batch_checksum = 0.0;
  double scalar_checksum = 0.0;
  double batch_s = sdb::bench::MinOfReps(
      reps, [&] { return RunKernelBatch(lanes, steps, &batch_checksum); });
  double scalar_s = sdb::bench::MinOfReps(
      reps, [&] { return RunKernelScalar(lanes, steps, &scalar_checksum); });
  // The facade and the batch share soa::StepLaneOnce; anything but bitwise
  // equality here means the kernel drifted from the scalar path.
  SDB_CHECK(batch_checksum == scalar_checksum);
  double kernel_steps = static_cast<double>(lanes) * static_cast<double>(steps);
  double batch_rate = batch_s > 0.0 ? kernel_steps / batch_s : 0.0;
  double scalar_rate = scalar_s > 0.0 ? kernel_steps / scalar_s : 0.0;
  double batch_speedup = scalar_s > 0.0 && batch_s > 0.0 ? scalar_s / batch_s : 0.0;
  std::cout << "SoA kernel throughput (" << lanes << " lanes x " << steps
            << " steps, min of " << reps << " reps):\n"
            << "  batch  " << TextTable::Num(batch_rate / 1e6, 2) << " M cell-steps/s ("
            << TextTable::Num(batch_s, 3) << " s)\n"
            << "  scalar " << TextTable::Num(scalar_rate / 1e6, 2) << " M cell-steps/s ("
            << TextTable::Num(scalar_s, 3) << " s)\n"
            << "  speedup " << TextTable::Num(batch_speedup, 2)
            << "x, checksum " << TextTable::Num(batch_checksum, 6) << " (bit-identical)\n";

  // ---- MC sweep wall clock (min-of-reps on the hinted policy) ------------
  MonteCarloResult timed;
  double mc_wall_s = sdb::bench::MinOfReps(reps, [&] {
    sdb::obs::Stopwatch stopwatch;
    timed = RunPolicy(1.0, true, runs, jobs);
    return stopwatch.ElapsedSeconds();
  });
  double mc_rate = mc_wall_s > 0.0 ? static_cast<double>(timed.cell_steps) / mc_wall_s : 0.0;
  std::cout << "MC sweep: " << TextTable::Num(mc_wall_s, 3) << " s min-of-" << reps
            << " (" << TextTable::Num(mc_rate / 1e6, 2) << " M cell-steps/s through the "
            << "full rig)\n";

  if (speedup) {
    double serial_s = TimeSweep(runs, /*jobs=*/1);
    double parallel_s = TimeSweep(runs, jobs);
    std::cout << "Sweep wall clock: serial " << TextTable::Num(serial_s, 2) << " s, " << jobs
              << " jobs " << TextTable::Num(parallel_s, 2) << " s  ("
              << TextTable::Num(serial_s / parallel_s, 2) << "x)\n";
  }
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  sdb::bench::PrintNote(
      "the Fig. 13 ordering holds in expectation, not just on one trace: the "
      "hinted policy leads on mean and worst-case battery life.");

  sdb::bench::BenchReport report;
  report.bench = "monte_carlo";
  report.git_sha = sdb::bench::GitShaFromEnv();
  report.jobs = jobs;
  report.runs = runs;
  report.reps = reps;
  report.wall_s = mc_wall_s;
  report.AddMetric("cell_steps_per_s", batch_rate);
  report.AddMetric("scalar_cell_steps_per_s", scalar_rate);
  report.AddMetric("batch_speedup", batch_speedup);
  report.AddMetric("kernel_lanes", static_cast<double>(lanes));
  report.AddMetric("kernel_steps", static_cast<double>(steps));
  report.AddMetric("kernel_checksum", batch_checksum);
  report.AddMetric("mc_cell_steps_per_s", mc_rate);
  report.AddMetric("mc_wall_s", mc_wall_s);
  sdb::Status wrote = sdb::bench::WriteBenchReport(report, sdb::bench::ParseBenchOut(argc, argv));
  if (!wrote.ok()) {
    std::cerr << wrote.message() << "\n";
    return 1;
  }
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

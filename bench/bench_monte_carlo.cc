// Monte-Carlo policy comparison: the Fig. 13 conclusion with spread. Each
// policy runs the smart-watch day across many jittered workload seeds
// (different check timings, burst powers, run intensity); mean, spread and
// worst case are reported per policy.
//
// Flags: --runs N (default 24), --jobs N (default SDB_THREADS / hardware),
// --speedup (time one sweep serially and with --jobs workers and print the
// ratio — the engine's determinism means both produce identical stats).
#include <cstring>
#include <iostream>

#include "bench/bench_common.h"
#include "src/emu/monte_carlo.h"
#include "src/emu/workload.h"
#include "src/obs/trace.h"
#include "src/util/histogram.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

ScenarioFn MakeWatchScenario(double directive, bool hint) {
  return [directive, hint](uint64_t seed) {
    bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
    rig.runtime().SetDischargingDirective(directive);
    if (hint) {
      rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
    }
    SmartwatchDayConfig day;
    day.seed = seed;  // Vary the workload itself, not just measurement noise.
    SimConfig config;
    config.tick = Seconds(10.0);
    config.runtime_period = Minutes(10.0);
    Simulator sim(&rig.runtime(), config);
    return sim.Run(MakeSmartwatchDayTrace(day));
  };
}

MonteCarloResult RunPolicy(double directive, bool hint, int runs, int jobs) {
  MonteCarloOptions options;
  options.base_seed = 1000;
  options.jobs = jobs;
  return RunMonteCarlo(MakeWatchScenario(directive, hint), runs, options);
}

double TimeSweep(int runs, int jobs) {
  sdb::obs::Stopwatch stopwatch;
  (void)RunPolicy(1.0, true, runs, jobs);
  return stopwatch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  int runs = 24;
  bool speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      speedup = true;
    }
  }

  PrintBanner(std::cout, "Monte-Carlo: smart-watch day across " + std::to_string(runs) +
                             " workload seeds (" + std::to_string(jobs) + " jobs)");

  struct Row {
    const char* name;
    MonteCarloResult result;
  };
  Row rows[] = {
      {"Reserve (hint)", RunPolicy(1.0, true, runs, jobs)},
      {"RBL-Discharge", RunPolicy(1.0, false, runs, jobs)},
      {"Blend 0.5", RunPolicy(0.5, false, runs, jobs)},
      {"CCB even split", RunPolicy(0.0, false, runs, jobs)},
  };

  TextTable table({"policy", "life mean (h)", "life sigma (h)", "life min (h)",
                   "loss mean (J)", "shortfall runs"});
  for (const Row& row : rows) {
    table.AddRow({row.name, TextTable::Num(row.result.battery_life_h.mean(), 2),
                  TextTable::Num(row.result.battery_life_h.stddev(), 2),
                  TextTable::Num(row.result.battery_life_h.min(), 2),
                  TextTable::Num(row.result.total_loss_j.mean(), 1),
                  std::to_string(row.result.shortfall_runs) + "/" +
                      std::to_string(row.result.runs)});
  }
  table.Print(std::cout);

  // Distribution of the hinted policy's battery life across seeds. The
  // parallel phase only computes per-seed lives; the histogram is filled in
  // seed order afterwards so its contents stay independent of `jobs`.
  {
    Histogram hist(11.0, 12.5, 6);
    ScenarioFn scenario = MakeWatchScenario(1.0, true);
    std::vector<double> lives(static_cast<size_t>(runs), 0.0);
    ThreadPool pool(jobs);
    bench::SweepParallelFor(&pool, runs, [&](int64_t r) {
      SimResult result = scenario(1000 + static_cast<uint64_t>(r));
      lives[static_cast<size_t>(r)] =
          result.first_shortfall.has_value() ? ToHours(*result.first_shortfall)
                                             : ToHours(result.elapsed);
    });
    for (double life : lives) {
      hist.Add(life);
    }
    std::cout << "Reserve-policy battery-life histogram (hours):\n";
    for (int b = 0; b < hist.bins(); ++b) {
      std::cout << "  [" << TextTable::Num(hist.BinLow(b), 2) << ", "
                << TextTable::Num(hist.BinLow(b) + 0.25, 2) << ")  "
                << std::string(hist.BinCount(b), '#') << "\n";
    }
  }

  if (speedup) {
    double serial_s = TimeSweep(runs, /*jobs=*/1);
    double parallel_s = TimeSweep(runs, jobs);
    std::cout << "Sweep wall clock: serial " << TextTable::Num(serial_s, 2) << " s, " << jobs
              << " jobs " << TextTable::Num(parallel_s, 2) << " s  ("
              << TextTable::Num(serial_s / parallel_s, 2) << "x)\n";
  }
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  sdb::bench::PrintNote(
      "the Fig. 13 ordering holds in expectation, not just on one trace: the "
      "hinted policy leads on mean and worst-case battery life.");
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

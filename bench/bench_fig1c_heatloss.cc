// Figure 1(c): discharging rate vs lost energy. Internal heat loss % as a
// function of the C-rate used to drain Type 2 / Type 3 / Type 4 batteries.
#include <iostream>

#include "bench/bench_common.h"
#include "src/chem/thermal.h"

int main() {
  using namespace sdb;
  PrintBanner(std::cout, "Figure 1(c): internal heat loss (%) vs discharge C-rate");

  // Same-capacity samples of each chemistry so the separator is the only
  // difference, mirroring the paper's comparison.
  BatteryParams t2 = MakeType2Standard(MilliAmpHours(2500.0));
  BatteryParams t3 = MakeType3FastCharge(MilliAmpHours(2500.0));
  BatteryParams t4 = MakeType4Bendable(MilliAmpHours(2500.0));

  TextTable table({"C-rate", "Type 2 (%)", "Type 3 (%)", "Type 4 (%)"});
  for (double c : {0.05, 0.10, 0.25, 0.50, 0.75, 1.00, 1.25, 1.50, 1.75, 2.00}) {
    table.AddRow({TextTable::Num(c, 2), TextTable::Num(HeatLossPercentAtCRate(t2, c), 2),
                  TextTable::Num(HeatLossPercentAtCRate(t3, c), 2),
                  TextTable::Num(HeatLossPercentAtCRate(t4, c), 2)});
  }
  table.Print(std::cout);
  sdb::bench::PrintNote(
      "paper shape: Type 4 (ceramic separator) dominates, reaching ~30% at 2C, "
      "while Type 2/3 stay single-digit.");
  return 0;
}

// Figure 1(b): charging rate affects longevity. A Type 2 cell is cycled
// 600 times at 0.5 / 0.7 / 1.0 A charge current; capacity after N cycles
// is reported every 50 cycles (the paper's y-axis spans 75-105%).
#include <iostream>

#include "bench/bench_common.h"
#include "src/chem/aging.h"

int main() {
  using namespace sdb;
  PrintBanner(std::cout, "Figure 1(b): capacity after N cycles vs charging current");

  const double kCurrents[] = {0.5, 0.7, 1.0};
  BatteryParams params = MakeType2Standard(MilliAmpHours(2000.0));

  std::vector<AgingModel> models;
  for (size_t i = 0; i < std::size(kCurrents); ++i) {
    models.emplace_back(&params);
  }

  TextTable table({"cycles", "0.5A (%)", "0.7A (%)", "1.0A (%)"});
  table.AddRow({"0", "100.0", "100.0", "100.0"});
  for (int cycle = 1; cycle <= 600; ++cycle) {
    for (size_t i = 0; i < models.size(); ++i) {
      double dose = 0.8 * params.nominal_capacity.value() * models[i].capacity_factor();
      models[i].RecordCharge(Coulombs(dose), Amps(kCurrents[i]));
    }
    if (cycle % 50 == 0) {
      table.AddRow({std::to_string(cycle), TextTable::Num(models[0].longevity_percent(), 1),
                    TextTable::Num(models[1].longevity_percent(), 1),
                    TextTable::Num(models[2].longevity_percent(), 1)});
    }
  }
  table.Print(std::cout);
  sdb::bench::PrintNote(
      "paper shape: monotone fade, clearly faster at higher charge current "
      "(roughly 95/90/80% bands after 600 cycles).");
  return 0;
}

#include "bench/bench_report.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/obs/event.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sdb {
namespace bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double v) {
  // JSON has no Inf/NaN literals; a bench metric that produced one is a bug
  // worth surfacing as 0 plus an obviously-wrong report, not invalid JSON.
  if (!std::isfinite(v)) {
    return "0";
  }
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

BenchBuildInfo BuildInfoFromEnv() {
  BenchBuildInfo info;
  const char* threads = std::getenv("SDB_THREADS");
  if (threads != nullptr && threads[0] != '\0') {
    int n = std::atoi(threads);
    if (n > 0) {
      info.sdb_threads = n;
    }
  }
  info.tracing = SDB_TRACING != 0;
  info.journal = SDB_JOURNAL != 0;
  return info;
}

void BenchReport::AddMetric(const std::string& name, double value) {
  for (auto& [existing, v] : metrics) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

double BenchReport::Metric(const std::string& name, double fallback) const {
  for (const auto& [existing, v] : metrics) {
    if (existing == name) {
      return v;
    }
  }
  return fallback;
}

std::string ToJson(const BenchReport& report) {
  std::ostringstream os;
  os << "{\"bench\":\"" << JsonEscape(report.bench) << "\""
     << ",\"git_sha\":\"" << JsonEscape(report.git_sha) << "\""
     << ",\"jobs\":" << report.jobs << ",\"runs\":" << report.runs
     << ",\"reps\":" << report.reps << ",\"wall_s\":" << JsonNumber(report.wall_s)
     << ",\"build\":{\"sdb_threads\":" << report.build.sdb_threads
     << ",\"tracing\":" << (report.build.tracing ? 1 : 0)
     << ",\"journal\":" << (report.build.journal ? 1 : 0) << "}"
     << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : report.metrics) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << JsonNumber(value);
    first = false;
  }
  os << "}}";
  return os.str();
}

Status WriteBenchReport(const BenchReport& report, const std::string& path) {
  if (path.empty()) {
    return Status::Ok();
  }
  std::ofstream out(path);
  if (!out) {
    return UnavailableError("cannot open bench report path: " + path);
  }
  out << ToJson(report) << "\n";
  if (!out) {
    return UnavailableError("short write to bench report path: " + path);
  }
  return Status::Ok();
}

double MinOfReps(int reps, const std::function<double()>& timed_run) {
  SDB_CHECK(timed_run != nullptr);
  if (reps < 1) {
    reps = 1;
  }
  double best = timed_run();
  for (int r = 1; r < reps; ++r) {
    best = std::min(best, timed_run());
  }
  return best;
}

std::string GitShaFromEnv() {
  for (const char* var : {"SDB_GIT_SHA", "GITHUB_SHA"}) {
    const char* sha = std::getenv(var);
    if (sha != nullptr && sha[0] != '\0') {
      return sha;
    }
  }
  return "unknown";
}

std::string ParseBenchOut(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-out") == 0) {
      return argv[i + 1];
    }
  }
  return "";
}

int ParseIntFlag(int argc, char** argv, const std::string& name, int fallback) {
  std::string flag = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) {
      int n = std::atoi(argv[i + 1]);
      if (n > 0) {
        return n;
      }
    }
  }
  return fallback;
}

}  // namespace bench
}  // namespace sdb

// Figure 12: performance priority levels. A 2-in-1 pairs its traditional
// high-energy battery with a high power-density battery; the OS chooses
// between three levels:
//   Low    — high power-density battery disabled, CPU at the long-term limit,
//   Medium — both batteries, peak = burst limit,
//   High   — maximum possible power from both batteries (protection limit).
// For a network-bottlenecked and a CPU/GPU-bottlenecked task mix, latency
// and device energy (including battery losses) are reported relative to Low.
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/check.h"
#include "src/os/cpu_model.h"
#include "src/os/task.h"

namespace {

using namespace sdb;

struct LevelResult {
  double latency_s = 0.0;
  double energy_j = 0.0;  // Chemical energy drawn from the batteries.
};

// Runs every task in the mix at the given perf level against a fresh
// two-battery rig, replaying the CPU power profile through the SDB stack so
// battery losses are included.
LevelResult RunMix(const std::vector<Task>& tasks, PerfLevel level, uint64_t seed) {
  CpuModel cpu;
  LevelResult result;
  for (const Task& task : tasks) {
    std::vector<Cell> cells;
    cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), 1.0);
    cells.emplace_back(MakeType3FastCharge(MilliAmpHours(4000.0)), 1.0);  // High power density.
    bench::Rig rig(std::move(cells), seed);
    rig.runtime().SetDischargingDirective(1.0);
    if (level == PerfLevel::kLow) {
      // High power-density battery disabled.
      (void)rig.micro().SetDischargeRatios({1.0, 0.0});
    }

    // Battery peak capability at this level.
    double he_peak = rig.micro().pack().cell(0).MaxDischargePower().value();
    double hp_peak = rig.micro().pack().cell(1).MaxDischargePower().value();
    double battery_peak = level == PerfLevel::kLow ? he_peak
                          : level == PerfLevel::kMedium ? 2.0 * he_peak
                                                        : he_peak + hp_peak;
    // The battery system also sets the *sustained* ceiling: past the burst
    // budget the package falls back to what the batteries can keep feeding.
    TaskRun run = cpu.Execute(task, cpu.PowerCapFor(level, Watts(battery_peak)),
                              Watts(battery_peak));
    result.latency_s += run.latency.value();

    // Replay the profile against the batteries to capture resistive losses.
    double e0 = rig.micro().pack().TotalRemainingEnergy().value();
    double t = 0.0;
    double horizon = run.power_profile.TotalDuration().value();
    bool replanned = false;
    while (t < horizon) {
      if (level != PerfLevel::kLow && !replanned) {
        SDB_CHECK(rig.runtime().Update(run.power_profile.Sample(Seconds(t)), Watts(0.0)).ok());
        replanned = true;
      }
      rig.micro().Step(run.power_profile.Sample(Seconds(t)), Watts(0.0), Seconds(1.0));
      t += 1.0;
    }
    result.energy_j += e0 - rig.micro().pack().TotalRemainingEnergy().value();
  }
  return result;
}

void PrintComparison(const char* mix_name, const std::vector<Task>& tasks) {
  LevelResult low = RunMix(tasks, PerfLevel::kLow, 61);
  LevelResult medium = RunMix(tasks, PerfLevel::kMedium, 62);
  LevelResult high = RunMix(tasks, PerfLevel::kHigh, 63);

  TextTable table({"level", "latency (s)", "latency (rel)", "energy (J)", "energy (rel)"});
  auto row = [&](const char* name, const LevelResult& r) {
    table.AddRow({name, TextTable::Num(r.latency_s, 1),
                  TextTable::Num(r.latency_s / low.latency_s, 2), TextTable::Num(r.energy_j, 0),
                  TextTable::Num(r.energy_j / low.energy_j, 2)});
  };
  row("Low", low);
  row("Medium", medium);
  row("High", high);
  std::cout << mix_name << "\n";
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Figure 12: latency & energy per performance priority level");
  PrintComparison("Network-bottlenecked task mix:", MakeNetworkBoundTasks());
  PrintComparison("CPU/GPU-bottlenecked task mix:", MakeComputeBoundTasks());

  // Why the high power-density battery matters at all: without it, the CPU
  // may *enter* the protection level but cannot stay there past the burst
  // budget — the sustained cap collapses to what one battery feeds.
  {
    CpuModel cpu;
    // A long job (a full software rebuild) that runs far past the 3-minute
    // burst window — the case where sustained turbo actually matters.
    Task rebuild{"full-rebuild", 2000.0, 0.0};
    Power cap = cpu.config().protection_limit;
    double throttled =
        cpu.Execute(rebuild, cap, cpu.config().long_term_limit).latency.value();
    double sustained = cpu.Execute(rebuild, cap, cap).latency.value();
    std::cout << "Burst-budget effect on a long compute job at the High level:\n"
              << "  traditional battery (falls back to long-term after 3 min): "
              << TextTable::Num(throttled, 1) << " s\n"
              << "  with high power-density battery (sustained turbo):        "
              << TextTable::Num(sustained, 1) << " s ("
              << TextTable::Num(100.0 * (1.0 - sustained / throttled), 1)
              << "% faster)\n\n";
  }
  bench::PrintNote(
      "paper shape: network-bound work gains no latency but spends up to ~20.6% "
      "more energy at higher levels; compute-bound work gains ~26% on benchmark "
      "scores (lower latency) at the high level.");
  return 0;
}

// Figure 8(b)/(c): the emulator's battery characteristic curves — open
// circuit potential vs state of charge for five batteries, and internal
// resistance vs state of charge for eight batteries (log-spanning
// 0.01-10 ohm across the library).
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace sdb;
  std::vector<BatteryParams> lib = MakeBatteryLibrary();

  PrintBanner(std::cout, "Figure 8(b): open circuit potential vs state of charge");
  {
    // Five representative batteries, as the paper plots.
    const size_t kPick[] = {0, 2, 4, 12, 14};
    std::vector<std::string> header = {"SoC (%)"};
    for (size_t idx : kPick) {
      header.push_back(lib[idx].name);
    }
    TextTable table(header);
    for (int soc_pct = 0; soc_pct <= 100; soc_pct += 10) {
      std::vector<std::string> row = {std::to_string(soc_pct)};
      for (size_t idx : kPick) {
        row.push_back(TextTable::Num(lib[idx].ocv_vs_soc.Evaluate(soc_pct / 100.0), 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    bench::PrintNote("paper shape: OCP rises monotonically with SoC, 2.7-4.3 V span.");
  }

  PrintBanner(std::cout, "Figure 8(c): internal resistance vs state of charge");
  {
    // Eight batteries spanning the resistance decades.
    const size_t kPick[] = {0, 1, 2, 4, 6, 8, 12, 13};
    std::vector<std::string> header = {"SoC (%)"};
    for (size_t idx : kPick) {
      header.push_back(lib[idx].name);
    }
    TextTable table(header);
    for (int soc_pct = 0; soc_pct <= 100; soc_pct += 10) {
      std::vector<std::string> row = {std::to_string(soc_pct)};
      for (size_t idx : kPick) {
        row.push_back(TextTable::Num(lib[idx].dcir_vs_soc.Evaluate(soc_pct / 100.0), 4));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    bench::PrintNote(
        "paper shape: resistance falls as SoC rises, steeply below 10% SoC; the "
        "library spans ~0.01 ohm (power cells) to ohm-scale (bendable watch cells).");
  }
  return 0;
}

// Machine-readable bench reports: every perf-bearing harness can emit a
// small BENCH_<name>.json next to its human-readable table so CI (and the
// checked-in baselines under bench/baselines/) can gate on throughput
// without scraping stdout. The schema is deliberately flat:
//
//   {"bench": "monte_carlo", "git_sha": "...", "jobs": 8, "runs": 24,
//    "reps": 3, "wall_s": 0.7,
//    "build": {"sdb_threads": 0, "tracing": 1, "journal": 1},
//    "metrics": {"cell_steps_per_s": 4.2e7, ...}}
//
// Timing doctrine (same as tools `check_overhead.py`): report the MINIMUM
// wall time across reps, never the mean — the minimum is the run least
// disturbed by the machine, and every other rep only adds noise on top.
#ifndef BENCH_BENCH_REPORT_H_
#define BENCH_BENCH_REPORT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace sdb {
namespace bench {

// The build/runtime configuration the numbers were measured under,
// serialized as the report's top-level "build" object so a report diff
// surfaces apples-vs-oranges comparisons (journal-on vs journal-off bench,
// SDB_THREADS cap) immediately instead of as an unexplained perf delta.
struct BenchBuildInfo {
  int sdb_threads = 0;    // SDB_THREADS env (0 = unset, hardware decides).
  bool tracing = false;   // Span tracing compiled in (SDB_TRACING)?
  bool journal = false;   // Flight-recorder journal compiled in (SDB_JOURNAL)?
};

// The environment + compile-time flags of the calling binary.
BenchBuildInfo BuildInfoFromEnv();

struct BenchReport {
  std::string bench;              // Short bench id, e.g. "monte_carlo".
  std::string git_sha = "unknown";
  int jobs = 1;
  int runs = 0;                   // Scenario seeds per sweep (bench-defined).
  int reps = 0;                   // Timing repetitions folded by min-of-reps.
  double wall_s = 0.0;            // Headline min-of-reps wall time.
  BenchBuildInfo build = BuildInfoFromEnv();
  // Named scalar metrics, serialized in insertion order so reports diff
  // cleanly. Use AddMetric; duplicate names overwrite in place.
  std::vector<std::pair<std::string, double>> metrics;

  void AddMetric(const std::string& name, double value);
  // Returns the metric value, or `fallback` when absent.
  double Metric(const std::string& name, double fallback = 0.0) const;
};

// Serializes the report as a single-line JSON object (schema above).
std::string ToJson(const BenchReport& report);

// Writes ToJson(report) + newline to `path`. Empty path is a no-op (Ok).
Status WriteBenchReport(const BenchReport& report, const std::string& path);

// Runs `timed_run` `reps` times and returns the minimum of the returned
// wall times. `reps` is clamped to at least 1.
double MinOfReps(int reps, const std::function<double()>& timed_run);

// Build identifier for the report: SDB_GIT_SHA env, else GITHUB_SHA, else
// "unknown". Benches run from tarballs must still produce valid reports.
std::string GitShaFromEnv();

// `--bench-out PATH` flag: where to write the BENCH_*.json (empty = don't).
std::string ParseBenchOut(int argc, char** argv);

// Generic `--<name> N` integer flag with a default (ignores junk / missing).
int ParseIntFlag(int argc, char** argv, const std::string& name, int fallback);

}  // namespace bench
}  // namespace sdb

#endif  // BENCH_BENCH_REPORT_H_

// Figure 1(a): the radar chart comparing four Li-ion chemistries on six
// axes (power density, energy density, affordability, longevity,
// efficiency, form-factor flexibility). Printed as 0-10 scores per axis.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace sdb;
  PrintBanner(std::cout, "Figure 1(a): Li-ion chemistries compared (0-10 per axis)");

  struct Entry {
    const char* label;
    BatteryParams params;
  };
  Entry entries[] = {
      {"Type 1 (LiFePO4, high-density separator)", MakeType1PowerCell(MilliAmpHours(1500.0))},
      {"Type 2 (CoO2, high-density separator)", MakeType2Standard(MilliAmpHours(3000.0))},
      {"Type 3 (CoO2, low-density separator)", MakeType3FastCharge(MilliAmpHours(3000.0))},
      {"Type 4 (CoO2, ceramic separator)", MakeType4Bendable(MilliAmpHours(350.0), 1)},
  };

  TextTable table({"chemistry", "power", "energy", "afford", "longev", "effic", "flex"});
  for (const Entry& e : entries) {
    ChemistryAxisScores s = ScoreAxes(e.params);
    table.AddRow({e.label, TextTable::Num(s.power_density, 1), TextTable::Num(s.energy_density, 1),
                  TextTable::Num(s.affordability, 1), TextTable::Num(s.longevity, 1),
                  TextTable::Num(s.efficiency, 1),
                  TextTable::Num(s.form_factor_flexibility, 1)});
  }
  table.Print(std::cout);
  sdb::bench::PrintNote(
      "expected shape: Type 1 leads on power/longevity, Type 2 on energy/efficiency, "
      "Type 3 trades energy for power, Type 4 alone scores on flexibility.");
  return 0;
}

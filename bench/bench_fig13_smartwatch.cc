// Figure 13: the smart-watch day (§5.2). A 200 mAh rigid Li-ion battery is
// augmented with a 200 mAh bendable battery; the user checks messages all
// day and goes for a run at hour 9. Two discharge policies are compared:
//   Policy 1 — minimise instantaneous losses (pure RBL-Discharge),
//   Policy 2 — preserve the efficient Li-ion battery for the expected run
//              (RBL-Discharge + workload hint).
// The bench prints hour-by-hour load energy and losses, plus depletion
// times — the annotations the paper's figure carries.
//
// The two policy runs are independent simulations, so they execute on a
// shared pool (--jobs N / SDB_THREADS).
#include <iostream>

#include "bench/bench_common.h"
#include "bench/bench_report.h"
#include "src/emu/workload.h"
#include "src/util/thread_pool.h"

namespace {

using namespace sdb;

struct PolicyOutcome {
  SimResult result;
  std::vector<std::string> depletion_notes;
};

PolicyOutcome RunPolicy(bool preserve_liion, uint64_t seed) {
  bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
  rig.runtime().SetDischargingDirective(1.0);
  if (preserve_liion) {
    rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
  }
  SmartwatchDayConfig day;
  SimConfig config;
  config.tick = Seconds(5.0);
  config.runtime_period = Minutes(5.0);
  config.stop_on_shortfall = false;  // Keep accounting for the whole day.
  Simulator sim(&rig.runtime(), config);
  PolicyOutcome outcome;
  outcome.result = sim.Run(MakeSmartwatchDayTrace(day));
  const char* names[] = {"Li-ion", "bendable"};
  for (size_t i = 0; i < outcome.result.depletion_time.size(); ++i) {
    if (outcome.result.depletion_time[i].has_value()) {
      outcome.depletion_notes.push_back(
          std::string(names[i]) + " discharged completely at hour " +
          TextTable::Num(ToHours(*outcome.result.depletion_time[i]), 1));
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = sdb::bench::ParseJobs(argc, argv);
  PrintBanner(std::cout, "Figure 13: smart-watch day, per-hour energy and policy losses");

  PolicyOutcome outcomes[2];
  ThreadPool pool(jobs);
  sdb::obs::Stopwatch stopwatch;
  sdb::bench::SweepParallelFor(&pool, 2, [&](int64_t i) {
    outcomes[i] = RunPolicy(/*preserve_liion=*/i == 1, 71);
  });
  double sweep_wall_s = stopwatch.ElapsedSeconds();
  PolicyOutcome& p1 = outcomes[0];
  PolicyOutcome& p2 = outcomes[1];

  TextTable table({"hour", "load energy (J)", "P1 losses (J)", "P2 losses (J)"});
  size_t hours = std::max(p1.result.hourly.size(), p2.result.hourly.size());
  for (size_t h = 0; h < hours && h < 24; ++h) {
    auto losses = [&](const PolicyOutcome& p) {
      if (h >= p.result.hourly.size()) {
        return std::string("-");
      }
      return TextTable::Num(
          p.result.hourly[h].battery_loss.value() + p.result.hourly[h].circuit_loss.value(), 2);
    };
    std::string load = h < p1.result.hourly.size()
                           ? TextTable::Num(p1.result.hourly[h].load_energy.value(), 1)
                           : "-";
    table.AddRow({std::to_string(h + 1), load, losses(p1), losses(p2)});
  }
  table.Print(std::cout);

  std::cout << "\nPolicy 1 (minimise instantaneous losses):\n";
  for (const auto& note : p1.depletion_notes) {
    std::cout << "  " << note << "\n";
  }
  auto life = [](const PolicyOutcome& p) {
    return p.result.first_shortfall.has_value() ? ToHours(*p.result.first_shortfall)
                                                : ToHours(p.result.elapsed);
  };
  std::cout << "  device battery life: " << TextTable::Num(life(p1), 2) << " h, total losses "
            << TextTable::Num(p1.result.TotalLoss().value(), 1) << " J\n";

  std::cout << "Policy 2 (preserve Li-ion for the hour-9 run):\n";
  for (const auto& note : p2.depletion_notes) {
    std::cout << "  " << note << "\n";
  }
  std::cout << "  device battery life: " << TextTable::Num(life(p2), 2) << " h, total losses "
            << TextTable::Num(p2.result.TotalLoss().value(), 1) << " J\n";
  std::cout << "  battery life improvement: " << TextTable::Num(life(p2) - life(p1), 2)
            << " h\n";
  sdb::bench::PrintSweepTelemetry(std::cout, jobs);
  sdb::bench::PrintNote(
      "paper: the preserve-Li-ion policy minimises total losses and lives over an "
      "hour longer (19.2 h vs 18 h); without the run, policy 1 would win.");
  sdb::bench::BenchReport report;
  report.bench = "fig13_smartwatch";
  report.git_sha = sdb::bench::GitShaFromEnv();
  report.jobs = jobs;
  report.runs = 2;
  report.reps = 1;
  report.wall_s = sweep_wall_s;
  report.AddMetric("p1_life_h", life(p1));
  report.AddMetric("p2_life_h", life(p2));
  report.AddMetric("p1_total_loss_j", p1.result.TotalLoss().value());
  report.AddMetric("p2_total_loss_j", p2.result.TotalLoss().value());
  report.AddMetric("life_improvement_h", life(p2) - life(p1));
  sdb::Status wrote = sdb::bench::WriteBenchReport(report, sdb::bench::ParseBenchOut(argc, argv));
  if (!wrote.ok()) {
    std::cerr << wrote.message() << "\n";
    return 1;
  }
  return sdb::bench::WriteMetricsJson(sdb::bench::ParseMetricsOut(argc, argv));
}

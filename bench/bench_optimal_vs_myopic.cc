// The price of myopia: the paper concedes its RBL algorithms are optimal
// "only in an instantaneous sense" and that future knowledge could beat
// them (§3.3). This bench quantifies that gap on the smart-watch day:
//   * the offline DP plan (full future knowledge, src/core/optimizer),
//   * the RBL-Discharge heuristic (instantaneous loss minimisation),
//   * the CCB even split,
//   * the workload-hint reserve policy (partial future knowledge),
// each replayed against the full emulator.
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/mpc_policy.h"
#include "src/core/optimizer.h"
#include "src/emu/workload.h"

namespace {

using namespace sdb;

PowerTrace WatchDay() {
  SmartwatchDayConfig day;
  return MakeSmartwatchDayTrace(day);
}

struct Outcome {
  double life_h;
  double losses_j;
};

Outcome RunHeuristic(double directive, bool hint, uint64_t seed) {
  bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
  rig.runtime().SetDischargingDirective(directive);
  if (hint) {
    rig.runtime().SetWorkloadHint(WorkloadHint{Hours(9.0), Watts(0.70), Hours(1.0)});
  }
  SimConfig config;
  config.tick = Seconds(5.0);
  config.runtime_period = Minutes(5.0);
  config.stop_on_shortfall = false;
  Simulator sim(&rig.runtime(), config);
  SimResult r = sim.Run(WatchDay());
  double life = r.first_shortfall.has_value() ? ToHours(*r.first_shortfall) : ToHours(r.elapsed);
  return Outcome{life, r.TotalLoss().value()};
}

// Replays the DP share schedule against the full emulator by programming
// the microcontroller's discharge ratios directly at every planning step.
Outcome ReplayPlan(const PlanResult& plan, uint64_t seed) {
  bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
  PowerTrace trace = WatchDay();
  const double kTick = 5.0;
  double t = 0.0;
  double horizon = trace.TotalDuration().value();
  std::optional<double> first_shortfall;
  double losses = 0.0;
  while (t < horizon) {
    size_t step = static_cast<size_t>(t / plan.step.value());
    double share = step < plan.share_schedule.size() ? plan.share_schedule[step] : 0.5;
    (void)rig.micro().SetDischargeRatios({share, 1.0 - share});
    Power load = trace.Sample(Seconds(t));
    MicroTick tick = rig.micro().Step(load, Watts(0.0), Seconds(kTick));
    losses += tick.discharge.battery_loss.value() + tick.discharge.circuit_loss.value();
    t += kTick;
    if (tick.discharge.shortfall && load.value() > 0.0 && !first_shortfall.has_value()) {
      first_shortfall = t;
    }
  }
  double life = ToHours(Seconds(first_shortfall.value_or(t)));
  return Outcome{life, losses};
}

// Runs the MPC policy online: oracle forecast over the remaining trace,
// 6-hour receding horizon, re-planned every 5 minutes.
Outcome RunMpc(const BatteryParams& liion, const BatteryParams& bendable, uint64_t seed) {
  bench::Rig rig(bench::MakeWatchScenarioCells(1.0), seed);
  PowerTrace trace = WatchDay();
  auto forecast = [&trace](Duration now, Duration horizon) {
    PowerTrace window;
    double t = now.value();
    double end = std::min(t + horizon.value(), trace.TotalDuration().value());
    while (t < end) {
      double seg = std::min(300.0, end - t);
      window.Append(Seconds(seg), trace.Sample(Seconds(t + seg / 2.0)));
      t += seg;
    }
    return window;
  };
  MpcDischargePolicy mpc(&liion, &bendable, forecast);

  const double kTick = 5.0;
  double t = 0.0;
  double horizon = trace.TotalDuration().value();
  double next_replan = 0.0;
  std::optional<double> first_shortfall;
  double losses = 0.0;
  while (t < horizon) {
    if (t >= next_replan) {
      BatteryViews views = rig.runtime().BuildViews();
      std::vector<double> d = mpc.Allocate(views, trace.Sample(Seconds(t)));
      (void)rig.micro().SetDischargeRatios(d);
      next_replan = t + 300.0;
    }
    Power load = trace.Sample(Seconds(t));
    MicroTick tick = rig.micro().Step(load, Watts(0.0), Seconds(kTick));
    losses += tick.discharge.battery_loss.value() + tick.discharge.circuit_loss.value();
    t += kTick;
    mpc.Advance(Seconds(kTick));
    if (tick.discharge.shortfall && load.value() > 0.0 && !first_shortfall.has_value()) {
      first_shortfall = t;
    }
  }
  double life = ToHours(Seconds(first_shortfall.value_or(t)));
  return Outcome{life, losses};
}

}  // namespace

int main() {
  PrintBanner(std::cout, "Price of myopia: offline-optimal vs heuristic discharge scheduling");

  BatteryParams liion = MakeWatchLiIon(MilliAmpHours(200.0));
  BatteryParams bendable = MakeType4Bendable(MilliAmpHours(200.0));
  PlanConfig plan_config;
  plan_config.soc_grid = 61;
  plan_config.action_grid = 21;
  plan_config.step = Minutes(5.0);
  PlanResult plan =
      PlanOptimalDischarge({&liion, 1.0}, {&bendable, 1.0}, WatchDay(), plan_config);

  Outcome dp = ReplayPlan(plan, 71);
  Outcome mpc = RunMpc(liion, bendable, 71);
  Outcome rbl = RunHeuristic(1.0, /*hint=*/false, 71);
  Outcome ccb = RunHeuristic(0.0, /*hint=*/false, 71);
  Outcome reserve = RunHeuristic(1.0, /*hint=*/true, 71);

  TextTable table({"scheduler", "knowledge", "battery life (h)", "total losses (J)"});
  table.AddRow({"DP offline plan", "entire future trace", TextTable::Num(dp.life_h, 2),
                TextTable::Num(dp.losses_j, 1)});
  table.AddRow({"MPC (6 h oracle forecast)", "receding-horizon DP",
                TextTable::Num(mpc.life_h, 2), TextTable::Num(mpc.losses_j, 1)});
  table.AddRow({"Reserve (workload hint)", "one predicted event", TextTable::Num(reserve.life_h, 2),
                TextTable::Num(reserve.losses_j, 1)});
  table.AddRow({"RBL-Discharge", "none (instantaneous)", TextTable::Num(rbl.life_h, 2),
                TextTable::Num(rbl.losses_j, 1)});
  table.AddRow({"CCB even split", "none", TextTable::Num(ccb.life_h, 2),
                TextTable::Num(ccb.losses_j, 1)});
  table.Print(std::cout);

  std::cout << "  planner predicted: "
            << TextTable::Num(ToHours(plan.serviced), 2) << " h serviced, "
            << TextTable::Num(plan.predicted_loss.value(), 1) << " J loss (planning model)\n";
  std::cout << "  myopia gap (DP vs RBL): " << TextTable::Num(dp.life_h - rbl.life_h, 2)
            << " h\n";
  sdb::bench::PrintNote(
      "the paper's §3.3 in numbers: knowing the future beats instantaneous "
      "optimality; a single workload hint recovers most of the gap.");
  return 0;
}

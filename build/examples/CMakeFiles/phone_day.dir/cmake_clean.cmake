file(REMOVE_RECURSE
  "CMakeFiles/phone_day.dir/phone_day.cpp.o"
  "CMakeFiles/phone_day.dir/phone_day.cpp.o.d"
  "phone_day"
  "phone_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

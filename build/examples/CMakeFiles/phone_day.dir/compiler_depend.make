# Empty compiler generated dependencies file for phone_day.
# This may be replaced when dependencies are built.

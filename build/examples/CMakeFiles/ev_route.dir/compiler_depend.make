# Empty compiler generated dependencies file for ev_route.
# This may be replaced when dependencies are built.

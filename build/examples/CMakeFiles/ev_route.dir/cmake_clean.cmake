file(REMOVE_RECURSE
  "CMakeFiles/ev_route.dir/ev_route.cpp.o"
  "CMakeFiles/ev_route.dir/ev_route.cpp.o.d"
  "ev_route"
  "ev_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/detachable_2in1.dir/detachable_2in1.cpp.o"
  "CMakeFiles/detachable_2in1.dir/detachable_2in1.cpp.o.d"
  "detachable_2in1"
  "detachable_2in1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detachable_2in1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for detachable_2in1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tablet_fast_charge.dir/tablet_fast_charge.cpp.o"
  "CMakeFiles/tablet_fast_charge.dir/tablet_fast_charge.cpp.o.d"
  "tablet_fast_charge"
  "tablet_fast_charge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablet_fast_charge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

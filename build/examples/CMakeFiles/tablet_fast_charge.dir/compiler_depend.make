# Empty compiler generated dependencies file for tablet_fast_charge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drone_pack.dir/drone_pack.cpp.o"
  "CMakeFiles/drone_pack.dir/drone_pack.cpp.o.d"
  "drone_pack"
  "drone_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

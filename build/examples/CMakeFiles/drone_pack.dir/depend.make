# Empty dependencies file for drone_pack.
# This may be replaced when dependencies are built.

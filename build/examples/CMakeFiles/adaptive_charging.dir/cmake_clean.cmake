file(REMOVE_RECURSE
  "CMakeFiles/adaptive_charging.dir/adaptive_charging.cpp.o"
  "CMakeFiles/adaptive_charging.dir/adaptive_charging.cpp.o.d"
  "adaptive_charging"
  "adaptive_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adaptive_charging.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for smartwatch_day.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smartwatch_day.dir/smartwatch_day.cpp.o"
  "CMakeFiles/smartwatch_day.dir/smartwatch_day.cpp.o.d"
  "smartwatch_day"
  "smartwatch_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartwatch_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sdb_trace.dir/trace.cc.o"
  "CMakeFiles/sdb_trace.dir/trace.cc.o.d"
  "CMakeFiles/sdb_trace.dir/trace_io.cc.o"
  "CMakeFiles/sdb_trace.dir/trace_io.cc.o.d"
  "libsdb_trace.a"
  "libsdb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

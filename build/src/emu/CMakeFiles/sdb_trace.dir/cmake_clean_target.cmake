file(REMOVE_RECURSE
  "libsdb_trace.a"
)

# Empty compiler generated dependencies file for sdb_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdb_emu.dir/device.cc.o"
  "CMakeFiles/sdb_emu.dir/device.cc.o.d"
  "CMakeFiles/sdb_emu.dir/monte_carlo.cc.o"
  "CMakeFiles/sdb_emu.dir/monte_carlo.cc.o.d"
  "CMakeFiles/sdb_emu.dir/simulator.cc.o"
  "CMakeFiles/sdb_emu.dir/simulator.cc.o.d"
  "CMakeFiles/sdb_emu.dir/workload.cc.o"
  "CMakeFiles/sdb_emu.dir/workload.cc.o.d"
  "libsdb_emu.a"
  "libsdb_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

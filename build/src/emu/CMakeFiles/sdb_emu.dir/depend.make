# Empty dependencies file for sdb_emu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsdb_emu.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/aging.cc" "src/chem/CMakeFiles/sdb_chem.dir/aging.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/aging.cc.o.d"
  "/root/repo/src/chem/battery_params.cc" "src/chem/CMakeFiles/sdb_chem.dir/battery_params.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/battery_params.cc.o.d"
  "/root/repo/src/chem/cell.cc" "src/chem/CMakeFiles/sdb_chem.dir/cell.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/cell.cc.o.d"
  "/root/repo/src/chem/library.cc" "src/chem/CMakeFiles/sdb_chem.dir/library.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/library.cc.o.d"
  "/root/repo/src/chem/pack.cc" "src/chem/CMakeFiles/sdb_chem.dir/pack.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/pack.cc.o.d"
  "/root/repo/src/chem/reference_cell.cc" "src/chem/CMakeFiles/sdb_chem.dir/reference_cell.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/reference_cell.cc.o.d"
  "/root/repo/src/chem/soc_estimator.cc" "src/chem/CMakeFiles/sdb_chem.dir/soc_estimator.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/soc_estimator.cc.o.d"
  "/root/repo/src/chem/thermal.cc" "src/chem/CMakeFiles/sdb_chem.dir/thermal.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/thermal.cc.o.d"
  "/root/repo/src/chem/thevenin.cc" "src/chem/CMakeFiles/sdb_chem.dir/thevenin.cc.o" "gcc" "src/chem/CMakeFiles/sdb_chem.dir/thevenin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

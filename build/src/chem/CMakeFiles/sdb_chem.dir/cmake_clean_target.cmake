file(REMOVE_RECURSE
  "libsdb_chem.a"
)

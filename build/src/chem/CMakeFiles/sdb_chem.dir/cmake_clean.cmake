file(REMOVE_RECURSE
  "CMakeFiles/sdb_chem.dir/aging.cc.o"
  "CMakeFiles/sdb_chem.dir/aging.cc.o.d"
  "CMakeFiles/sdb_chem.dir/battery_params.cc.o"
  "CMakeFiles/sdb_chem.dir/battery_params.cc.o.d"
  "CMakeFiles/sdb_chem.dir/cell.cc.o"
  "CMakeFiles/sdb_chem.dir/cell.cc.o.d"
  "CMakeFiles/sdb_chem.dir/library.cc.o"
  "CMakeFiles/sdb_chem.dir/library.cc.o.d"
  "CMakeFiles/sdb_chem.dir/pack.cc.o"
  "CMakeFiles/sdb_chem.dir/pack.cc.o.d"
  "CMakeFiles/sdb_chem.dir/reference_cell.cc.o"
  "CMakeFiles/sdb_chem.dir/reference_cell.cc.o.d"
  "CMakeFiles/sdb_chem.dir/soc_estimator.cc.o"
  "CMakeFiles/sdb_chem.dir/soc_estimator.cc.o.d"
  "CMakeFiles/sdb_chem.dir/thermal.cc.o"
  "CMakeFiles/sdb_chem.dir/thermal.cc.o.d"
  "CMakeFiles/sdb_chem.dir/thevenin.cc.o"
  "CMakeFiles/sdb_chem.dir/thevenin.cc.o.d"
  "libsdb_chem.a"
  "libsdb_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

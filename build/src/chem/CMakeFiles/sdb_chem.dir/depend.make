# Empty dependencies file for sdb_chem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdb_util.dir/curve.cc.o"
  "CMakeFiles/sdb_util.dir/curve.cc.o.d"
  "CMakeFiles/sdb_util.dir/logging.cc.o"
  "CMakeFiles/sdb_util.dir/logging.cc.o.d"
  "CMakeFiles/sdb_util.dir/numeric.cc.o"
  "CMakeFiles/sdb_util.dir/numeric.cc.o.d"
  "CMakeFiles/sdb_util.dir/rng.cc.o"
  "CMakeFiles/sdb_util.dir/rng.cc.o.d"
  "CMakeFiles/sdb_util.dir/status.cc.o"
  "CMakeFiles/sdb_util.dir/status.cc.o.d"
  "CMakeFiles/sdb_util.dir/table.cc.o"
  "CMakeFiles/sdb_util.dir/table.cc.o.d"
  "libsdb_util.a"
  "libsdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

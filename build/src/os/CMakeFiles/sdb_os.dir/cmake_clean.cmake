file(REMOVE_RECURSE
  "CMakeFiles/sdb_os.dir/battery_service.cc.o"
  "CMakeFiles/sdb_os.dir/battery_service.cc.o.d"
  "CMakeFiles/sdb_os.dir/cpu_model.cc.o"
  "CMakeFiles/sdb_os.dir/cpu_model.cc.o.d"
  "CMakeFiles/sdb_os.dir/power_manager.cc.o"
  "CMakeFiles/sdb_os.dir/power_manager.cc.o.d"
  "CMakeFiles/sdb_os.dir/predictor.cc.o"
  "CMakeFiles/sdb_os.dir/predictor.cc.o.d"
  "CMakeFiles/sdb_os.dir/task.cc.o"
  "CMakeFiles/sdb_os.dir/task.cc.o.d"
  "CMakeFiles/sdb_os.dir/workload_classifier.cc.o"
  "CMakeFiles/sdb_os.dir/workload_classifier.cc.o.d"
  "libsdb_os.a"
  "libsdb_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsdb_os.a"
)

# Empty dependencies file for sdb_os.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/battery_service.cc" "src/os/CMakeFiles/sdb_os.dir/battery_service.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/battery_service.cc.o.d"
  "/root/repo/src/os/cpu_model.cc" "src/os/CMakeFiles/sdb_os.dir/cpu_model.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/cpu_model.cc.o.d"
  "/root/repo/src/os/power_manager.cc" "src/os/CMakeFiles/sdb_os.dir/power_manager.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/power_manager.cc.o.d"
  "/root/repo/src/os/predictor.cc" "src/os/CMakeFiles/sdb_os.dir/predictor.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/predictor.cc.o.d"
  "/root/repo/src/os/task.cc" "src/os/CMakeFiles/sdb_os.dir/task.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/task.cc.o.d"
  "/root/repo/src/os/workload_classifier.cc" "src/os/CMakeFiles/sdb_os.dir/workload_classifier.cc.o" "gcc" "src/os/CMakeFiles/sdb_os.dir/workload_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sdb_core.dir/allocator.cc.o"
  "CMakeFiles/sdb_core.dir/allocator.cc.o.d"
  "CMakeFiles/sdb_core.dir/blended_policy.cc.o"
  "CMakeFiles/sdb_core.dir/blended_policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/ccb_policy.cc.o"
  "CMakeFiles/sdb_core.dir/ccb_policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/charge_planner.cc.o"
  "CMakeFiles/sdb_core.dir/charge_planner.cc.o.d"
  "CMakeFiles/sdb_core.dir/metrics.cc.o"
  "CMakeFiles/sdb_core.dir/metrics.cc.o.d"
  "CMakeFiles/sdb_core.dir/mpc_policy.cc.o"
  "CMakeFiles/sdb_core.dir/mpc_policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/optimizer.cc.o"
  "CMakeFiles/sdb_core.dir/optimizer.cc.o.d"
  "CMakeFiles/sdb_core.dir/policy.cc.o"
  "CMakeFiles/sdb_core.dir/policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/policy_db.cc.o"
  "CMakeFiles/sdb_core.dir/policy_db.cc.o.d"
  "CMakeFiles/sdb_core.dir/rbl_policy.cc.o"
  "CMakeFiles/sdb_core.dir/rbl_policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/runtime.cc.o"
  "CMakeFiles/sdb_core.dir/runtime.cc.o.d"
  "CMakeFiles/sdb_core.dir/schedule_policy.cc.o"
  "CMakeFiles/sdb_core.dir/schedule_policy.cc.o.d"
  "CMakeFiles/sdb_core.dir/telemetry.cc.o"
  "CMakeFiles/sdb_core.dir/telemetry.cc.o.d"
  "CMakeFiles/sdb_core.dir/workload_aware.cc.o"
  "CMakeFiles/sdb_core.dir/workload_aware.cc.o.d"
  "libsdb_core.a"
  "libsdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cc" "src/core/CMakeFiles/sdb_core.dir/allocator.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/allocator.cc.o.d"
  "/root/repo/src/core/blended_policy.cc" "src/core/CMakeFiles/sdb_core.dir/blended_policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/blended_policy.cc.o.d"
  "/root/repo/src/core/ccb_policy.cc" "src/core/CMakeFiles/sdb_core.dir/ccb_policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/ccb_policy.cc.o.d"
  "/root/repo/src/core/charge_planner.cc" "src/core/CMakeFiles/sdb_core.dir/charge_planner.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/charge_planner.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/sdb_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/mpc_policy.cc" "src/core/CMakeFiles/sdb_core.dir/mpc_policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/mpc_policy.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/sdb_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/sdb_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/policy.cc.o.d"
  "/root/repo/src/core/policy_db.cc" "src/core/CMakeFiles/sdb_core.dir/policy_db.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/policy_db.cc.o.d"
  "/root/repo/src/core/rbl_policy.cc" "src/core/CMakeFiles/sdb_core.dir/rbl_policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/rbl_policy.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/sdb_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/schedule_policy.cc" "src/core/CMakeFiles/sdb_core.dir/schedule_policy.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/schedule_policy.cc.o.d"
  "/root/repo/src/core/telemetry.cc" "src/core/CMakeFiles/sdb_core.dir/telemetry.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/telemetry.cc.o.d"
  "/root/repo/src/core/workload_aware.cc" "src/core/CMakeFiles/sdb_core.dir/workload_aware.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/workload_aware.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

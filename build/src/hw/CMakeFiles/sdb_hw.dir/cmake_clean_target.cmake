file(REMOVE_RECURSE
  "libsdb_hw.a"
)

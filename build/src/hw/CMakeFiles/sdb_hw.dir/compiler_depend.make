# Empty compiler generated dependencies file for sdb_hw.
# This may be replaced when dependencies are built.

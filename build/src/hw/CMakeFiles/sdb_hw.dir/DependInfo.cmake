
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/acpi.cc" "src/hw/CMakeFiles/sdb_hw.dir/acpi.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/acpi.cc.o.d"
  "/root/repo/src/hw/charge_circuit.cc" "src/hw/CMakeFiles/sdb_hw.dir/charge_circuit.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/charge_circuit.cc.o.d"
  "/root/repo/src/hw/charge_profile.cc" "src/hw/CMakeFiles/sdb_hw.dir/charge_profile.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/charge_profile.cc.o.d"
  "/root/repo/src/hw/command_link.cc" "src/hw/CMakeFiles/sdb_hw.dir/command_link.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/command_link.cc.o.d"
  "/root/repo/src/hw/discharge_circuit.cc" "src/hw/CMakeFiles/sdb_hw.dir/discharge_circuit.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/discharge_circuit.cc.o.d"
  "/root/repo/src/hw/fuel_gauge.cc" "src/hw/CMakeFiles/sdb_hw.dir/fuel_gauge.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/fuel_gauge.cc.o.d"
  "/root/repo/src/hw/microcontroller.cc" "src/hw/CMakeFiles/sdb_hw.dir/microcontroller.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/microcontroller.cc.o.d"
  "/root/repo/src/hw/pmic.cc" "src/hw/CMakeFiles/sdb_hw.dir/pmic.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/pmic.cc.o.d"
  "/root/repo/src/hw/regulator.cc" "src/hw/CMakeFiles/sdb_hw.dir/regulator.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/regulator.cc.o.d"
  "/root/repo/src/hw/safety.cc" "src/hw/CMakeFiles/sdb_hw.dir/safety.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/safety.cc.o.d"
  "/root/repo/src/hw/switching_sim.cc" "src/hw/CMakeFiles/sdb_hw.dir/switching_sim.cc.o" "gcc" "src/hw/CMakeFiles/sdb_hw.dir/switching_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

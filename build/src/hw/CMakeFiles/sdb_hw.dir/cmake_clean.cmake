file(REMOVE_RECURSE
  "CMakeFiles/sdb_hw.dir/acpi.cc.o"
  "CMakeFiles/sdb_hw.dir/acpi.cc.o.d"
  "CMakeFiles/sdb_hw.dir/charge_circuit.cc.o"
  "CMakeFiles/sdb_hw.dir/charge_circuit.cc.o.d"
  "CMakeFiles/sdb_hw.dir/charge_profile.cc.o"
  "CMakeFiles/sdb_hw.dir/charge_profile.cc.o.d"
  "CMakeFiles/sdb_hw.dir/command_link.cc.o"
  "CMakeFiles/sdb_hw.dir/command_link.cc.o.d"
  "CMakeFiles/sdb_hw.dir/discharge_circuit.cc.o"
  "CMakeFiles/sdb_hw.dir/discharge_circuit.cc.o.d"
  "CMakeFiles/sdb_hw.dir/fuel_gauge.cc.o"
  "CMakeFiles/sdb_hw.dir/fuel_gauge.cc.o.d"
  "CMakeFiles/sdb_hw.dir/microcontroller.cc.o"
  "CMakeFiles/sdb_hw.dir/microcontroller.cc.o.d"
  "CMakeFiles/sdb_hw.dir/pmic.cc.o"
  "CMakeFiles/sdb_hw.dir/pmic.cc.o.d"
  "CMakeFiles/sdb_hw.dir/regulator.cc.o"
  "CMakeFiles/sdb_hw.dir/regulator.cc.o.d"
  "CMakeFiles/sdb_hw.dir/safety.cc.o"
  "CMakeFiles/sdb_hw.dir/safety.cc.o.d"
  "CMakeFiles/sdb_hw.dir/switching_sim.cc.o"
  "CMakeFiles/sdb_hw.dir/switching_sim.cc.o.d"
  "libsdb_hw.a"
  "libsdb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

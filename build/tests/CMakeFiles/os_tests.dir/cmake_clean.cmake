file(REMOVE_RECURSE
  "CMakeFiles/os_tests.dir/os/battery_service_test.cc.o"
  "CMakeFiles/os_tests.dir/os/battery_service_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/cpu_model_test.cc.o"
  "CMakeFiles/os_tests.dir/os/cpu_model_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/power_manager_test.cc.o"
  "CMakeFiles/os_tests.dir/os/power_manager_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/predictor_test.cc.o"
  "CMakeFiles/os_tests.dir/os/predictor_test.cc.o.d"
  "CMakeFiles/os_tests.dir/os/workload_classifier_test.cc.o"
  "CMakeFiles/os_tests.dir/os/workload_classifier_test.cc.o.d"
  "os_tests"
  "os_tests.pdb"
  "os_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

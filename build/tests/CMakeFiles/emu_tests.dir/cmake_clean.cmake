file(REMOVE_RECURSE
  "CMakeFiles/emu_tests.dir/emu/device_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/device_test.cc.o.d"
  "CMakeFiles/emu_tests.dir/emu/monte_carlo_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/monte_carlo_test.cc.o.d"
  "CMakeFiles/emu_tests.dir/emu/simulator_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/simulator_test.cc.o.d"
  "CMakeFiles/emu_tests.dir/emu/trace_io_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/trace_io_test.cc.o.d"
  "CMakeFiles/emu_tests.dir/emu/trace_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/trace_test.cc.o.d"
  "CMakeFiles/emu_tests.dir/emu/workload_test.cc.o"
  "CMakeFiles/emu_tests.dir/emu/workload_test.cc.o.d"
  "emu_tests"
  "emu_tests.pdb"
  "emu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

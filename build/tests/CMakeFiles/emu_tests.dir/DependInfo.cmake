
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/emu/device_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/device_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/device_test.cc.o.d"
  "/root/repo/tests/emu/monte_carlo_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/monte_carlo_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/monte_carlo_test.cc.o.d"
  "/root/repo/tests/emu/simulator_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/simulator_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/simulator_test.cc.o.d"
  "/root/repo/tests/emu/trace_io_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/trace_io_test.cc.o.d"
  "/root/repo/tests/emu/trace_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/trace_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/trace_test.cc.o.d"
  "/root/repo/tests/emu/workload_test.cc" "tests/CMakeFiles/emu_tests.dir/emu/workload_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/emu/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for emu_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw/acpi_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/acpi_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/charge_circuit_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/charge_circuit_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/charge_profile_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/charge_profile_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/circuit_edge_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/circuit_edge_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/command_link_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/command_link_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/discharge_circuit_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/discharge_circuit_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/fuel_gauge_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/fuel_gauge_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/microcontroller_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/microcontroller_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/pmic_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/pmic_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/regulator_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/regulator_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/safety_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/safety_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/hw/switching_sim_test.cc.o"
  "CMakeFiles/hw_tests.dir/hw/switching_sim_test.cc.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/acpi_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/acpi_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/acpi_test.cc.o.d"
  "/root/repo/tests/hw/charge_circuit_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/charge_circuit_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/charge_circuit_test.cc.o.d"
  "/root/repo/tests/hw/charge_profile_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/charge_profile_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/charge_profile_test.cc.o.d"
  "/root/repo/tests/hw/circuit_edge_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/circuit_edge_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/circuit_edge_test.cc.o.d"
  "/root/repo/tests/hw/command_link_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/command_link_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/command_link_test.cc.o.d"
  "/root/repo/tests/hw/discharge_circuit_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/discharge_circuit_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/discharge_circuit_test.cc.o.d"
  "/root/repo/tests/hw/fuel_gauge_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/fuel_gauge_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/fuel_gauge_test.cc.o.d"
  "/root/repo/tests/hw/microcontroller_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/microcontroller_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/microcontroller_test.cc.o.d"
  "/root/repo/tests/hw/pmic_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/pmic_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/pmic_test.cc.o.d"
  "/root/repo/tests/hw/regulator_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/regulator_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/regulator_test.cc.o.d"
  "/root/repo/tests/hw/safety_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/safety_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/safety_test.cc.o.d"
  "/root/repo/tests/hw/switching_sim_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/switching_sim_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/switching_sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cc.o"
  "CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/allocator_test.cc.o"
  "CMakeFiles/core_tests.dir/core/allocator_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/charge_planner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/charge_planner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mpc_policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mpc_policy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/optimizer3_test.cc.o"
  "CMakeFiles/core_tests.dir/core/optimizer3_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/optimizer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/optimizer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/policies_test.cc.o"
  "CMakeFiles/core_tests.dir/core/policies_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/policy_db_test.cc.o"
  "CMakeFiles/core_tests.dir/core/policy_db_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/runtime_test.cc.o"
  "CMakeFiles/core_tests.dir/core/runtime_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/schedule_policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/schedule_policy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/telemetry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/telemetry_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

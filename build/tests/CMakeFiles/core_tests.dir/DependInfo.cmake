
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/allocator_fuzz_test.cc" "tests/CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/allocator_fuzz_test.cc.o.d"
  "/root/repo/tests/core/allocator_test.cc" "tests/CMakeFiles/core_tests.dir/core/allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/allocator_test.cc.o.d"
  "/root/repo/tests/core/charge_planner_test.cc" "tests/CMakeFiles/core_tests.dir/core/charge_planner_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/charge_planner_test.cc.o.d"
  "/root/repo/tests/core/metrics_test.cc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cc.o.d"
  "/root/repo/tests/core/mpc_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/mpc_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mpc_policy_test.cc.o.d"
  "/root/repo/tests/core/optimizer3_test.cc" "tests/CMakeFiles/core_tests.dir/core/optimizer3_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimizer3_test.cc.o.d"
  "/root/repo/tests/core/optimizer_test.cc" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cc.o.d"
  "/root/repo/tests/core/policies_test.cc" "tests/CMakeFiles/core_tests.dir/core/policies_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policies_test.cc.o.d"
  "/root/repo/tests/core/policy_db_test.cc" "tests/CMakeFiles/core_tests.dir/core/policy_db_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_db_test.cc.o.d"
  "/root/repo/tests/core/runtime_test.cc" "tests/CMakeFiles/core_tests.dir/core/runtime_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/runtime_test.cc.o.d"
  "/root/repo/tests/core/schedule_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/schedule_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/schedule_policy_test.cc.o.d"
  "/root/repo/tests/core/telemetry_test.cc" "tests/CMakeFiles/core_tests.dir/core/telemetry_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/telemetry_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

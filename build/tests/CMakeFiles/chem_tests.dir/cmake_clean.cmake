file(REMOVE_RECURSE
  "CMakeFiles/chem_tests.dir/chem/aging_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/aging_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/battery_params_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/battery_params_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/calendar_aging_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/calendar_aging_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/cell_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/cell_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/library_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/library_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/pack_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/pack_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/reference_cell_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/reference_cell_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/soc_estimator_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/soc_estimator_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/thermal_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/thermal_test.cc.o.d"
  "CMakeFiles/chem_tests.dir/chem/thevenin_test.cc.o"
  "CMakeFiles/chem_tests.dir/chem/thevenin_test.cc.o.d"
  "chem_tests"
  "chem_tests.pdb"
  "chem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chem/aging_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/aging_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/aging_test.cc.o.d"
  "/root/repo/tests/chem/battery_params_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/battery_params_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/battery_params_test.cc.o.d"
  "/root/repo/tests/chem/calendar_aging_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/calendar_aging_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/calendar_aging_test.cc.o.d"
  "/root/repo/tests/chem/cell_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/cell_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/cell_test.cc.o.d"
  "/root/repo/tests/chem/library_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/library_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/library_test.cc.o.d"
  "/root/repo/tests/chem/pack_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/pack_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/pack_test.cc.o.d"
  "/root/repo/tests/chem/reference_cell_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/reference_cell_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/reference_cell_test.cc.o.d"
  "/root/repo/tests/chem/soc_estimator_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/soc_estimator_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/soc_estimator_test.cc.o.d"
  "/root/repo/tests/chem/thermal_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/thermal_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/thermal_test.cc.o.d"
  "/root/repo/tests/chem/thevenin_test.cc" "tests/CMakeFiles/chem_tests.dir/chem/thevenin_test.cc.o" "gcc" "tests/CMakeFiles/chem_tests.dir/chem/thevenin_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for chem_tests.
# This may be replaced when dependencies are built.

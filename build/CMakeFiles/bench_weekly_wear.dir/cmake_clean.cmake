file(REMOVE_RECURSE
  "CMakeFiles/bench_weekly_wear.dir/bench/bench_weekly_wear.cc.o"
  "CMakeFiles/bench_weekly_wear.dir/bench/bench_weekly_wear.cc.o.d"
  "bench/bench_weekly_wear"
  "bench/bench_weekly_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weekly_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

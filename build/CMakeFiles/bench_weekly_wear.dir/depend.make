# Empty dependencies file for bench_weekly_wear.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig1c_heatloss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_heatloss.dir/bench/bench_fig1c_heatloss.cc.o"
  "CMakeFiles/bench_fig1c_heatloss.dir/bench/bench_fig1c_heatloss.cc.o.d"
  "bench/bench_fig1c_heatloss"
  "bench/bench_fig1c_heatloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_heatloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_smartwatch.dir/bench/bench_fig13_smartwatch.cc.o"
  "CMakeFiles/bench_fig13_smartwatch.dir/bench/bench_fig13_smartwatch.cc.o.d"
  "bench/bench_fig13_smartwatch"
  "bench/bench_fig13_smartwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_smartwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig13_smartwatch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_vs_myopic.dir/bench/bench_optimal_vs_myopic.cc.o"
  "CMakeFiles/bench_optimal_vs_myopic.dir/bench/bench_optimal_vs_myopic.cc.o.d"
  "bench/bench_optimal_vs_myopic"
  "bench/bench_optimal_vs_myopic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_vs_myopic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1b_longevity.
# This may be replaced when dependencies are built.

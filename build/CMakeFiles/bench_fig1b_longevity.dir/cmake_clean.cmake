file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b_longevity.dir/bench/bench_fig1b_longevity.cc.o"
  "CMakeFiles/bench_fig1b_longevity.dir/bench/bench_fig1b_longevity.cc.o.d"
  "bench/bench_fig1b_longevity"
  "bench/bench_fig1b_longevity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_longevity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

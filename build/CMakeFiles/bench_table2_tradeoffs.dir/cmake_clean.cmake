file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tradeoffs.dir/bench/bench_table2_tradeoffs.cc.o"
  "CMakeFiles/bench_table2_tradeoffs.dir/bench/bench_table2_tradeoffs.cc.o.d"
  "bench/bench_table2_tradeoffs"
  "bench/bench_table2_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

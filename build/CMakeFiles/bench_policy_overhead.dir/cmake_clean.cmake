file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_overhead.dir/bench/bench_policy_overhead.cc.o"
  "CMakeFiles/bench_policy_overhead.dir/bench/bench_policy_overhead.cc.o.d"
  "bench/bench_policy_overhead"
  "bench/bench_policy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

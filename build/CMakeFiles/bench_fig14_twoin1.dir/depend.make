# Empty dependencies file for bench_fig14_twoin1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_twoin1.dir/bench/bench_fig14_twoin1.cc.o"
  "CMakeFiles/bench_fig14_twoin1.dir/bench/bench_fig14_twoin1.cc.o.d"
  "bench/bench_fig14_twoin1"
  "bench/bench_fig14_twoin1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_twoin1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

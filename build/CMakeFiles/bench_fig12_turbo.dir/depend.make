# Empty dependencies file for bench_fig12_turbo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_turbo.dir/bench/bench_fig12_turbo.cc.o"
  "CMakeFiles/bench_fig12_turbo.dir/bench/bench_fig12_turbo.cc.o.d"
  "bench/bench_fig12_turbo"
  "bench/bench_fig12_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig8_battery_curves.
# This may be replaced when dependencies are built.

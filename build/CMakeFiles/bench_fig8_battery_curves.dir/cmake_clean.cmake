file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_battery_curves.dir/bench/bench_fig8_battery_curves.cc.o"
  "CMakeFiles/bench_fig8_battery_curves.dir/bench/bench_fig8_battery_curves.cc.o.d"
  "bench/bench_fig8_battery_curves"
  "bench/bench_fig8_battery_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_battery_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

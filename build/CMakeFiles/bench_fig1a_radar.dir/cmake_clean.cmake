file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1a_radar.dir/bench/bench_fig1a_radar.cc.o"
  "CMakeFiles/bench_fig1a_radar.dir/bench/bench_fig1a_radar.cc.o.d"
  "bench/bench_fig1a_radar"
  "bench/bench_fig1a_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

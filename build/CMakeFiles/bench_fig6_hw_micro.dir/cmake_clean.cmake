file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hw_micro.dir/bench/bench_fig6_hw_micro.cc.o"
  "CMakeFiles/bench_fig6_hw_micro.dir/bench/bench_fig6_hw_micro.cc.o.d"
  "bench/bench_fig6_hw_micro"
  "bench/bench_fig6_hw_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hw_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

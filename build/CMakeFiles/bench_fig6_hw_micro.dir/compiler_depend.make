# Empty compiler generated dependencies file for bench_fig6_hw_micro.
# This may be replaced when dependencies are built.

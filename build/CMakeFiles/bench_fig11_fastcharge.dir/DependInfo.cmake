
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_fastcharge.cc" "CMakeFiles/bench_fig11_fastcharge.dir/bench/bench_fig11_fastcharge.cc.o" "gcc" "CMakeFiles/bench_fig11_fastcharge.dir/bench/bench_fig11_fastcharge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sdb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/sdb_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/sdb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fastcharge.dir/bench/bench_fig11_fastcharge.cc.o"
  "CMakeFiles/bench_fig11_fastcharge.dir/bench/bench_fig11_fastcharge.cc.o.d"
  "bench/bench_fig11_fastcharge"
  "bench/bench_fig11_fastcharge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fastcharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

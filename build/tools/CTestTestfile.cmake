# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sdbsim_list "/root/repo/build/tools/sdbsim" "list")
set_tests_properties(sdbsim_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_simulate "/root/repo/build/tools/sdbsim" "simulate" "--battery" "fast:3000" "--battery" "high-energy:3000" "--load-watts" "5" "--hours" "1" "--tick" "5")
set_tests_properties(sdbsim_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_plan_charge "/root/repo/build/tools/sdbsim" "plan-charge" "--battery" "high-energy:4000" "--soc" "0.3" "--deadline-hours" "6")
set_tests_properties(sdbsim_plan_charge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_rejects_unknown_battery "/root/repo/build/tools/sdbsim" "simulate" "--battery" "unobtainium" "--load-watts" "1" "--hours" "1")
set_tests_properties(sdbsim_rejects_unknown_battery PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_pack_file "/root/repo/build/tools/sdbsim" "simulate" "--pack" "/root/repo/build/test_pack.txt" "--load-watts" "4" "--hours" "1" "--tick" "5")
set_tests_properties(sdbsim_pack_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_trace_file "/root/repo/build/tools/sdbsim" "simulate" "--battery" "fast:3000" "--battery" "high-energy:3000" "--trace" "/root/repo/build/test_trace.csv" "--tick" "5")
set_tests_properties(sdbsim_trace_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sdbsim_plan_discharge "/root/repo/build/tools/sdbsim" "plan-discharge" "--battery" "watch:200" "--battery" "bendable:200" "--load-watts" "0.1" "--hours" "4")
set_tests_properties(sdbsim_plan_discharge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/sdbsim.dir/sdbsim.cc.o"
  "CMakeFiles/sdbsim.dir/sdbsim.cc.o.d"
  "sdbsim"
  "sdbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdbsim.
# This may be replaced when dependencies are built.

#include "src/chem/thermal.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {

ThermalModel::ThermalModel(double heat_capacity_j_per_k, double thermal_conductance_w_per_k,
                           Temperature ambient)
    : heat_capacity_(heat_capacity_j_per_k),
      conductance_(thermal_conductance_w_per_k),
      ambient_k_(ambient.value()) {
  SDB_CHECK(heat_capacity_ > 0.0);
  SDB_CHECK(conductance_ >= 0.0);
  state_.temp_k = ambient.value();
}

void ThermalModel::Step(Energy heat, Duration dt) {
  SDB_CHECK(dt.value() > 0.0);
  soa::ThermalParamsView view;
  view.heat_capacity_j_per_k = heat_capacity_;
  view.conductance_w_per_k = conductance_;
  view.ambient_k = ambient_k_;
  soa::ThermalStep(view, state_, heat.value(), dt.value());
}

void ThermalModel::ResetTemperature() { state_.temp_k = ambient_k_; }

double HeatLossPercentAtCRate(const BatteryParams& params, double c_rate, double soc) {
  SDB_CHECK(c_rate >= 0.0);
  double i = params.CRate(c_rate).value();
  double ocv = params.ocv_vs_soc.Evaluate(soc);
  double r_total = params.dcir_vs_soc.Evaluate(soc) + params.concentration_resistance.value();
  // Fraction of the chemical energy OCV*I dissipated as I^2*R heat.
  return 100.0 * i * r_total / ocv;
}

}  // namespace sdb

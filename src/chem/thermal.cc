#include "src/chem/thermal.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {

ThermalModel::ThermalModel(double heat_capacity_j_per_k, double thermal_conductance_w_per_k,
                           Temperature ambient)
    : heat_capacity_(heat_capacity_j_per_k),
      conductance_(thermal_conductance_w_per_k),
      ambient_k_(ambient.value()),
      temp_k_(ambient.value()) {
  SDB_CHECK(heat_capacity_ > 0.0);
  SDB_CHECK(conductance_ >= 0.0);
}

void ThermalModel::Step(Energy heat, Duration dt) {
  double dt_s = dt.value();
  SDB_CHECK(dt_s > 0.0);
  double heat_j = heat.value();
  if (heat_j > 0.0) {
    total_heat_j_ += heat_j;
  }
  // Exact solution of C dT/dt = P_heat - G (T - T_amb) for constant P_heat.
  double p_heat = heat_j / dt_s;
  if (conductance_ > 0.0) {
    double t_inf = ambient_k_ + p_heat / conductance_;
    double tau = heat_capacity_ / conductance_;
    temp_k_ = t_inf + (temp_k_ - t_inf) * std::exp(-dt_s / tau);
  } else {
    temp_k_ += heat_j / heat_capacity_;
  }
}

void ThermalModel::ResetTemperature() { temp_k_ = ambient_k_; }

double HeatLossPercentAtCRate(const BatteryParams& params, double c_rate, double soc) {
  SDB_CHECK(c_rate >= 0.0);
  double i = params.CRate(c_rate).value();
  double ocv = params.ocv_vs_soc.Evaluate(soc);
  double r_total = params.dcir_vs_soc.Evaluate(soc) + params.concentration_resistance.value();
  // Fraction of the chemical energy OCV*I dissipated as I^2*R heat.
  return 100.0 * i * r_total / ocv;
}

}  // namespace sdb

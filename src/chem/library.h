// The battery library: synthetic parameter sets standing in for the 15
// state-of-the-art mobile-device batteries the paper characterised on Arbin
// BT-2000 / Maccor 4200 cyclers (§4.3, Figure 9).
//
// Composition mirrors the paper: two Type 4 (bendable), two Type 3
// (fast-charge), eight Type 2 (standard CoO2) and three others (a Type 1
// power cell, a small watch Li-ion, a high-energy tablet cell). Scenario
// presets (§5) derive from these.
//
// Curve shapes are calibrated to the figures: OCP rises 2.7→4.3 V with SoC
// (Fig. 8b), DCIR falls steeply at low SoC and spans ~0.01–10 ohm across the
// library (Fig. 8c), fade constants reproduce Fig. 1(b) / Fig. 11(c), and
// the Type 2/3/4 resistances reproduce the Fig. 1(c) heat-loss ordering.
#ifndef SRC_CHEM_LIBRARY_H_
#define SRC_CHEM_LIBRARY_H_

#include <vector>

#include "src/chem/battery_params.h"

namespace sdb {

// --- Curve factories --------------------------------------------------------

// CoO2-style OCV curve scaled so that the 0%..100% swing spans
// [v_empty, v_full] (defaults match Fig. 8b: 2.80 V .. 4.18 V).
PiecewiseLinearCurve CoO2OcvCurve(double v_empty = 2.80, double v_full = 4.18);

// LiFePO4-style OCV curve: characteristically flat mid-range plateau.
PiecewiseLinearCurve LiFePO4OcvCurve();

// DCIR-vs-SoC curve with the Fig. 8c shape: `r_mid` ohms at 50% SoC,
// rising ~4x toward empty and dipping slightly toward full.
PiecewiseLinearCurve DcirCurve(double r_mid_ohm);

// --- Individual presets -----------------------------------------------------
// `capacity` scales the cell; curves and coefficients follow the chemistry.

BatteryParams MakeType1PowerCell(Charge capacity);    // LiFePO4 power-tool cell.
BatteryParams MakeType2Standard(Charge capacity, int variant = 0);  // Everyday CoO2.
BatteryParams MakeType3FastCharge(Charge capacity, int variant = 0);
BatteryParams MakeType4Bendable(Charge capacity, int variant = 0);

// Scenario cells used in §5.
BatteryParams MakeWatchLiIon(Charge capacity);       // Small rigid watch cell.
BatteryParams MakeHighEnergyTablet(Charge capacity); // 590-600 Wh/l, slow charge.
BatteryParams MakeFastChargeTablet(Charge capacity); // 530-540 Wh/l, 3C charge,
                                                     // swells to 500-510 effective.
BatteryParams MakeTwoInOneInternal(Charge capacity); // Tablet-side Li-ion.
BatteryParams MakeTwoInOneExternal(Charge capacity); // Keyboard-base Li-ion.

// Ni-MH ambient-sensor cell (PAPERS.md, arXiv 0802.3053): 1.2 V flat
// plateau, high self-discharge, tolerant of shallow duty-cycled bursts.
// Used by the scenario-pack registry, not part of MakeBatteryLibrary().
BatteryParams MakeNiMhAmbient(Charge capacity);

// The full 15-battery library in a stable order (indices are referenced by
// the Fig. 8 bench).
std::vector<BatteryParams> MakeBatteryLibrary();

}  // namespace sdb

#endif  // SRC_CHEM_LIBRARY_H_

// Static description of a battery: chemistry, electrical characteristic
// curves, physical properties and aging coefficients.
//
// These are the "manufacturer datasheet" inputs to the Thevenin cell model
// (paper §4.3, Figure 8) and to the policy layer (DCIR-vs-SoC curves drive
// the RBL algorithms). The paper characterised 15 physical batteries on
// Arbin/Maccor cyclers; src/chem/library.h provides the synthetic stand-ins.
#ifndef SRC_CHEM_BATTERY_PARAMS_H_
#define SRC_CHEM_BATTERY_PARAMS_H_

#include <string>

#include "src/util/curve.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// The four Li-ion variants of paper Figure 1(a), plus the scenario-specific
// chemistries used in §5.
enum class Chemistry {
  kType1HighPower,    // LiFePO4 cathode, high-density liquid polymer separator.
  kType2Standard,     // CoO2 cathode, high-density liquid polymer separator.
  kType3FastCharge,   // CoO2 cathode, low-density liquid polymer separator.
  kType4Bendable,     // CoO2 cathode, rubber-like solid ceramic separator.
  kNiMh,              // Nickel-metal-hydride, 1.2 V flat plateau (scenario packs).
};

std::string_view ChemistryName(Chemistry chemistry);

struct BatteryParams {
  std::string name;
  Chemistry chemistry = Chemistry::kType2Standard;

  // Electrical characteristics (paper Fig. 8).
  Charge nominal_capacity;                // Coulombs at 100% health.
  PiecewiseLinearCurve ocv_vs_soc;        // Open-circuit potential (V) vs SoC in [0,1].
  PiecewiseLinearCurve dcir_vs_soc;       // Internal resistance (ohm) vs SoC in [0,1].
  Resistance concentration_resistance;    // Thevenin R_c (fixed per battery).
  Capacitance plate_capacitance;          // Thevenin C_p (fixed per battery).

  // Operating limits.
  Current max_discharge_current;  // Sustained discharge limit.
  Current max_charge_current;     // Sustained charge limit (fast-charge ceiling).
  Voltage charge_cutoff_voltage;  // CV phase target (e.g. 4.2 V).

  // Aging (paper Fig. 1(b) and §5.1 cycle-count rule).
  double rated_cycle_count = 800.0;      // chi_i: tolerable cycles to the warranty threshold.
  double base_fade_per_cycle = 4.5e-5;   // Capacity fraction lost per cycle at low current.
  double fade_current_stress = 6.0;      // Quadratic stress coefficient on I/I_ref.
  Current fade_reference_current;        // I_ref for the stress term.
  double resistance_growth = 2.0;        // DCIR growth per unit capacity fade.
  // Calendar effects: idle self-discharge and shelf fade, quoted per month
  // (typical Li-ion: 2-3%/month leak, ~0.2%/month calendar fade at room
  // temperature).
  double self_discharge_per_month = 0.025;
  double calendar_fade_per_month = 0.002;
  // Cold-temperature derating: DCIR grows by this fraction per kelvin below
  // 25 C (ion mobility drops in the cold; ~2%/K is typical for Li-ion).
  double cold_resistance_per_k = 0.02;

  // Physical / economic characteristics (paper Table 1).
  Volume volume;
  Mass mass;
  double cost_usd = 0.0;
  double bend_radius_mm = 0.0;  // 0 == rigid.

  // Fast-charge swelling (paper §5.1): effective volumetric density drops
  // when the battery is routinely charged near its maximum rate.
  double fast_charge_swelling = 0.0;  // Fractional volume growth at max-rate charging.

  // Nominal voltage used for C-rate and Wh bookkeeping.
  Voltage nominal_voltage;

  // --- Derived helpers -----------------------------------------------------

  // The current corresponding to `c_rate` (1C empties the battery in 1 hour).
  Current CRate(double c_rate) const;

  // Nominal stored energy at 100% SoC and 100% health.
  Energy NominalEnergy() const;

  // Volumetric energy density in Wh/l, optionally after swelling.
  double EnergyDensityWhPerLitre(bool swollen = false) const;

  // Gravimetric energy density in Wh/kg.
  double EnergyDensityWhPerKg() const;

  // Validation: curves span [0,1], capacities/limits positive, etc.
  Status Validate() const;
};

// Normalised 0-10 scores on the six axes of paper Figure 1(a), computed from
// the params so the radar bench has a single source of truth.
struct ChemistryAxisScores {
  double power_density = 0.0;
  double energy_density = 0.0;
  double affordability = 0.0;
  double longevity = 0.0;
  double efficiency = 0.0;
  double form_factor_flexibility = 0.0;
};

ChemistryAxisScores ScoreAxes(const BatteryParams& params);

}  // namespace sdb

#endif  // SRC_CHEM_BATTERY_PARAMS_H_

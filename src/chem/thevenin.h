// The paper's battery model (Fig. 8a): a Thevenin equivalent circuit with
// four learned quantities — open-circuit potential OCV(SoC), internal
// resistance R0(SoC), concentration resistance R_c and plate capacitance
// C_p. Terminal voltage under load current I (discharge positive):
//
//   V_term = OCV(SoC) - I * R0(SoC) - V_rc
//   dV_rc/dt = (I - V_rc / R_c) / C_p
//
// The model integrates SoC by coulomb counting and supports both
// current-specified and power-specified steps (the latter solves the load
// quadratic; see DESIGN.md §5).
#ifndef SRC_CHEM_THEVENIN_H_
#define SRC_CHEM_THEVENIN_H_

#include "src/chem/battery_params.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// Outcome of one integration step.
struct StepResult {
  Current current;          // Actual current (discharge positive, charge negative).
  Voltage terminal_voltage; // At end of step.
  Energy energy_at_terminals;  // Delivered to (discharge, +) or absorbed from (charge, -) load.
  Energy energy_chemical;      // Removed from (+) or stored into (-) the chemistry.
  Energy energy_lost;          // Resistive heat (momentarily negative only while the
                               // RC element returns transient stored energy).
  bool limited = false;        // True if the request was clamped (empty/full/over-power).
};

// Dynamic electrical state of one cell. Aging is layered on top by
// sdb::Cell; this class treats capacity as externally supplied so the same
// solver serves both fresh and degraded cells.
class TheveninModel {
 public:
  // `params` must outlive the model and be valid (see BatteryParams::Validate).
  TheveninModel(const BatteryParams* params, double initial_soc);

  // State of charge in [0, 1].
  double soc() const { return soc_; }
  void set_soc(double soc);

  // Multiplier (>= 1) applied to the fresh DCIR curve; set by the aging
  // layer as capacity fades.
  double resistance_scale() const { return resistance_scale_; }
  void set_resistance_scale(double scale);

  // Voltage across the RC (concentration) element.
  Voltage rc_voltage() const { return Voltage(v_rc_); }

  Voltage OpenCircuitVoltage() const;
  Resistance InternalResistance() const;

  // d(DCIR)/d(SoC) at the current SoC — the delta_i of the RBL algorithms.
  double DcirSlope() const;

  // Terminal voltage if `current` were applied right now (no state change).
  Voltage TerminalVoltageAt(Current current) const;

  // Maximum instantaneous power the cell can source given OCV, V_rc and R0
  // (the peak of the P(I) parabola), ignoring the current limit.
  Power MaxDischargePower() const;

  // Integrates one step at fixed current. Positive current discharges.
  // The request is clamped when the cell would leave [0,1] SoC; the result
  // reports the realised current/energies. `capacity` is the cell's current
  // (possibly faded) full-charge capacity.
  StepResult StepWithCurrent(Current current, Duration dt, Charge capacity);

  // Integrates one step delivering `power` at the terminals (discharge).
  // Clamps to MaxDischargePower and to the params' discharge current limit.
  StepResult StepWithDischargePower(Power power, Duration dt, Charge capacity);

  // Integrates one step absorbing `power` at the terminals (charge).
  // Clamps to the params' charge current limit and to 100% SoC.
  StepResult StepWithChargePower(Power power, Duration dt, Charge capacity);

  const BatteryParams& params() const { return *params_; }

 private:
  // Shared integration core once the current has been decided.
  StepResult Integrate(double current_a, double dt_s, double capacity_c);

  const BatteryParams* params_;
  double soc_;
  double v_rc_ = 0.0;  // Volts.
  double resistance_scale_ = 1.0;
};

}  // namespace sdb

#endif  // SRC_CHEM_THEVENIN_H_

// The paper's battery model (Fig. 8a): a Thevenin equivalent circuit with
// four learned quantities — open-circuit potential OCV(SoC), internal
// resistance R0(SoC), concentration resistance R_c and plate capacitance
// C_p. Terminal voltage under load current I (discharge positive):
//
//   V_term = OCV(SoC) - I * R0(SoC) - V_rc
//   dV_rc/dt = (I - V_rc / R_c) / C_p
//
// The model integrates SoC by coulomb counting and supports both
// current-specified and power-specified steps (the latter solves the load
// quadratic; see DESIGN.md §5).
#ifndef SRC_CHEM_THEVENIN_H_
#define SRC_CHEM_THEVENIN_H_

#include "src/chem/battery_params.h"
#include "src/chem/soa_kernel.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// Outcome of one integration step.
struct StepResult {
  Current current;          // Actual current (discharge positive, charge negative).
  Voltage terminal_voltage; // At end of step.
  Energy energy_at_terminals;  // Delivered to (discharge, +) or absorbed from (charge, -) load.
  Energy energy_chemical;      // Removed from (+) or stored into (-) the chemistry.
  Energy energy_lost;          // Resistive heat (momentarily negative only while the
                               // RC element returns transient stored energy).
  bool limited = false;        // True if the request was clamped (empty/full/over-power).
};

// Wraps a kernel-layer result in the typed StepResult the rest of the repo
// consumes. Pure re-labelling; the doubles pass through untouched.
inline StepResult ToStepResult(const soa::RawStepResult& raw) {
  StepResult result;
  result.current = Amps(raw.current_a);
  result.terminal_voltage = Volts(raw.terminal_v);
  result.energy_at_terminals = Joules(raw.energy_terminals_j);
  result.energy_chemical = Joules(raw.energy_chemical_j);
  result.energy_lost = Joules(raw.energy_lost_j);
  result.limited = raw.limited;
  return result;
}

// Dynamic electrical state of one cell. Aging is layered on top by
// sdb::Cell; this class treats capacity as externally supplied so the same
// solver serves both fresh and degraded cells. The step methods are a
// single-lane facade over the soa kernel primitives (soa_kernel.h), so this
// class and CellLanes::AdvanceBatch produce bit-identical state.
class TheveninModel {
 public:
  // `params` must outlive the model and be valid (see BatteryParams::Validate).
  TheveninModel(const BatteryParams* params, double initial_soc);

  // State of charge in [0, 1].
  double soc() const { return state_.soc; }
  void set_soc(double soc);

  // Multiplier (>= 1) applied to the fresh DCIR curve; set by the aging
  // layer as capacity fades.
  double resistance_scale() const { return state_.resistance_scale; }
  void set_resistance_scale(double scale);

  // Voltage across the RC (concentration) element.
  Voltage rc_voltage() const { return Voltage(state_.v_rc_v); }

  Voltage OpenCircuitVoltage() const;
  Resistance InternalResistance() const;

  // d(DCIR)/d(SoC) at the current SoC — the delta_i of the RBL algorithms.
  double DcirSlope() const;

  // Terminal voltage if `current` were applied right now (no state change).
  Voltage TerminalVoltageAt(Current current) const;

  // Maximum instantaneous power the cell can source given OCV, V_rc and R0
  // (the peak of the P(I) parabola), ignoring the current limit.
  Power MaxDischargePower() const;

  // Integrates one step at fixed current. Positive current discharges.
  // The request is clamped when the cell would leave [0,1] SoC; the result
  // reports the realised current/energies. `capacity` is the cell's current
  // (possibly faded) full-charge capacity.
  StepResult StepWithCurrent(Current current, Duration dt, Charge capacity);

  // Integrates one step delivering `power` at the terminals (discharge).
  // Clamps to MaxDischargePower and to the params' discharge current limit.
  StepResult StepWithDischargePower(Power power, Duration dt, Charge capacity);

  // Integrates one step absorbing `power` at the terminals (charge).
  // Clamps to the params' charge current limit and to 100% SoC.
  StepResult StepWithChargePower(Power power, Duration dt, Charge capacity);

  const BatteryParams& params() const { return *params_; }

  // SoA-lane access for the Cell facade and gather/scatter (soa_kernel.h).
  soa::ElectricalState& kernel_state() { return state_; }
  const soa::ElectricalState& kernel_state() const { return state_; }

 private:
  const BatteryParams* params_;
  soa::ElectricalState state_;
};

}  // namespace sdb

#endif  // SRC_CHEM_THEVENIN_H_

#include "src/chem/thevenin.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

TheveninModel::TheveninModel(const BatteryParams* params, double initial_soc) : params_(params) {
  SDB_CHECK(params_ != nullptr);
  soc_ = Clamp(initial_soc, 0.0, 1.0);
}

void TheveninModel::set_soc(double soc) { soc_ = Clamp(soc, 0.0, 1.0); }

void TheveninModel::set_resistance_scale(double scale) {
  SDB_CHECK(scale > 0.0);
  resistance_scale_ = scale;
}

Voltage TheveninModel::OpenCircuitVoltage() const {
  return Volts(params_->ocv_vs_soc.Evaluate(soc_));
}

Resistance TheveninModel::InternalResistance() const {
  return Ohms(resistance_scale_ * params_->dcir_vs_soc.Evaluate(soc_));
}

double TheveninModel::DcirSlope() const {
  return resistance_scale_ * params_->dcir_vs_soc.Derivative(soc_);
}

Voltage TheveninModel::TerminalVoltageAt(Current current) const {
  double v = OpenCircuitVoltage().value() - current.value() * InternalResistance().value() - v_rc_;
  return Volts(v);
}

Power TheveninModel::MaxDischargePower() const {
  // P(I) = (E - R0*I) * I peaks at I = E / (2 R0) with P_max = E^2 / (4 R0).
  double e = OpenCircuitVoltage().value() - v_rc_;
  double r0 = InternalResistance().value();
  if (e <= 0.0) {
    return Watts(0.0);
  }
  return Watts(e * e / (4.0 * r0));
}

StepResult TheveninModel::Integrate(double current_a, double dt_s, double capacity_c) {
  SDB_DCHECK(dt_s > 0.0);
  SDB_DCHECK(capacity_c > 0.0);
  StepResult result;

  // Clamp so SoC stays within [0, 1] over the step.
  double max_discharge_a = soc_ * capacity_c / dt_s;
  double max_charge_a = (1.0 - soc_) * capacity_c / dt_s;
  double clamped = Clamp(current_a, -max_charge_a, max_discharge_a);
  if (clamped != current_a) {
    result.limited = true;
  }
  current_a = clamped;

  double ocv_start = params_->ocv_vs_soc.Evaluate(soc_);
  double r0 = resistance_scale_ * params_->dcir_vs_soc.Evaluate(soc_);
  double v_rc_start = v_rc_;

  // Exact update of the RC branch for constant current over the step.
  double rc = params_->concentration_resistance.value();
  double cp = params_->plate_capacitance.value();
  if (rc > 0.0) {
    double v_inf = current_a * rc;
    double tau = rc * cp;
    v_rc_ = v_inf + (v_rc_start - v_inf) * std::exp(-dt_s / tau);
  } else {
    v_rc_ = 0.0;
  }

  soc_ = Clamp(soc_ - current_a * dt_s / capacity_c, 0.0, 1.0);

  double ocv_end = params_->ocv_vs_soc.Evaluate(soc_);
  double ocv_avg = 0.5 * (ocv_start + ocv_end);
  double v_rc_avg = 0.5 * (v_rc_start + v_rc_);

  double e_chem = ocv_avg * current_a * dt_s;
  double e_loss = current_a * current_a * r0 * dt_s + current_a * v_rc_avg * dt_s;
  result.current = Amps(current_a);
  result.terminal_voltage = Volts(ocv_end - current_a * r0 - v_rc_);
  result.energy_chemical = Joules(e_chem);
  result.energy_lost = Joules(e_loss);
  result.energy_at_terminals = Joules(e_chem - e_loss);
  return result;
}

StepResult TheveninModel::StepWithCurrent(Current current, Duration dt, Charge capacity) {
  return Integrate(current.value(), dt.value(), capacity.value());
}

StepResult TheveninModel::StepWithDischargePower(Power power, Duration dt, Charge capacity) {
  SDB_DCHECK(power.value() >= 0.0);
  double e = OpenCircuitVoltage().value() - v_rc_;
  double r0 = InternalResistance().value();
  double i_req;
  bool limited = false;
  if (e <= 0.0) {
    i_req = 0.0;
    limited = power.value() > 0.0;
  } else {
    // Stable branch of R0*I^2 - E*I + P = 0 (the smaller root).
    QuadraticRoots roots = SolveQuadratic(r0, -e, power.value());
    if (roots.count == 0) {
      // Request exceeds the max-power point; deliver the most we can.
      i_req = e / (2.0 * r0);
      limited = true;
    } else {
      i_req = roots.lo;
    }
  }
  double i_max = params_->max_discharge_current.value();
  if (i_req > i_max) {
    i_req = i_max;
    limited = true;
  }
  StepResult result = Integrate(i_req, dt.value(), capacity.value());
  result.limited = result.limited || limited;
  return result;
}

StepResult TheveninModel::StepWithChargePower(Power power, Duration dt, Charge capacity) {
  SDB_DCHECK(power.value() >= 0.0);
  double e = OpenCircuitVoltage().value() - v_rc_;
  double r0 = InternalResistance().value();
  // Absorbed power P = (E + R0*J) * J for charge current J = -I > 0.
  QuadraticRoots roots = SolveQuadratic(r0, e, -power.value());
  double j = roots.count > 0 ? std::max(roots.hi, 0.0) : 0.0;
  bool limited = false;
  double j_max = params_->max_charge_current.value();
  if (j > j_max) {
    j = j_max;
    limited = true;
  }
  StepResult result = Integrate(-j, dt.value(), capacity.value());
  result.limited = result.limited || limited;
  return result;
}

}  // namespace sdb

#include "src/chem/thevenin.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

TheveninModel::TheveninModel(const BatteryParams* params, double initial_soc) : params_(params) {
  SDB_CHECK(params_ != nullptr);
  state_.soc = Clamp(initial_soc, 0.0, 1.0);
}

void TheveninModel::set_soc(double soc) { state_.soc = Clamp(soc, 0.0, 1.0); }

void TheveninModel::set_resistance_scale(double scale) {
  SDB_CHECK(scale > 0.0);
  state_.resistance_scale = scale;
}

Voltage TheveninModel::OpenCircuitVoltage() const {
  return Volts(params_->ocv_vs_soc.Evaluate(state_.soc));
}

Resistance TheveninModel::InternalResistance() const {
  return Ohms(state_.resistance_scale * params_->dcir_vs_soc.Evaluate(state_.soc));
}

double TheveninModel::DcirSlope() const {
  return state_.resistance_scale * params_->dcir_vs_soc.Derivative(state_.soc);
}

Voltage TheveninModel::TerminalVoltageAt(Current current) const {
  double v = OpenCircuitVoltage().value() - current.value() * InternalResistance().value() -
             state_.v_rc_v;
  return Volts(v);
}

Power TheveninModel::MaxDischargePower() const {
  // P(I) = (E - R0*I) * I peaks at I = E / (2 R0) with P_max = E^2 / (4 R0).
  double e = OpenCircuitVoltage().value() - state_.v_rc_v;
  double r0 = InternalResistance().value();
  if (e <= 0.0) {
    return Watts(0.0);
  }
  return Watts(e * e / (4.0 * r0));
}

StepResult TheveninModel::StepWithCurrent(Current current, Duration dt, Charge capacity) {
  soa::ElectricalParamsView view = soa::MakeElectricalParamsView(*params_);
  double ocv0 = view.ocv_curve->EvaluateHinted(state_.soc, &state_.ocv_hint);
  double r0 = state_.resistance_scale * view.dcir_curve->EvaluateHinted(state_.soc,
                                                                        &state_.dcir_hint);
  return ToStepResult(soa::ElectricalIntegrate(view, state_, current.value(), dt.value(),
                                               capacity.value(), ocv0, r0));
}

StepResult TheveninModel::StepWithDischargePower(Power power, Duration dt, Charge capacity) {
  SDB_DCHECK(power.value() >= 0.0);
  return ToStepResult(soa::ElectricalStep(soa::MakeElectricalParamsView(*params_), state_,
                                          soa::LaneOp::kDischargePower, power.value(), dt.value(),
                                          capacity.value()));
}

StepResult TheveninModel::StepWithChargePower(Power power, Duration dt, Charge capacity) {
  SDB_DCHECK(power.value() >= 0.0);
  return ToStepResult(soa::ElectricalStep(soa::MakeElectricalParamsView(*params_), state_,
                                          soa::LaneOp::kChargePower, power.value(), dt.value(),
                                          capacity.value()));
}

}  // namespace sdb

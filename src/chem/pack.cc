#include "src/chem/pack.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

void BatteryPack::AddCell(Cell cell) {
  cells_.push_back(std::move(cell));
  open_circuit_.push_back(false);
}

void BatteryPack::SetOpenCircuit(size_t i, bool open) {
  SDB_CHECK(i < open_circuit_.size());
  open_circuit_[i] = open;
}

bool BatteryPack::IsOpenCircuit(size_t i) const {
  SDB_CHECK(i < open_circuit_.size());
  return open_circuit_[i];
}

bool BatteryPack::AnyOpenCircuit() const {
  for (bool open : open_circuit_) {
    if (open) {
      return true;
    }
  }
  return false;
}

Cell& BatteryPack::cell(size_t i) {
  SDB_CHECK(i < cells_.size());
  return cells_[i];
}

const Cell& BatteryPack::cell(size_t i) const {
  SDB_CHECK(i < cells_.size());
  return cells_[i];
}

Charge BatteryPack::TotalRemainingCharge() const {
  Charge total = Coulombs(0.0);
  for (const auto& c : cells_) {
    total += c.RemainingCharge();
  }
  return total;
}

Energy BatteryPack::TotalRemainingEnergy() const {
  Energy total = Joules(0.0);
  for (const auto& c : cells_) {
    total += c.RemainingEnergy();
  }
  return total;
}

Energy BatteryPack::TotalLoss() const {
  Energy total = Joules(0.0);
  for (const auto& c : cells_) {
    total += c.total_loss();
  }
  return total;
}

bool BatteryPack::AllEmpty(double threshold) const {
  for (const auto& c : cells_) {
    if (!c.IsEmpty(threshold)) {
      return false;
    }
  }
  return true;
}

bool BatteryPack::AllFull(double threshold) const {
  for (const auto& c : cells_) {
    if (!c.IsFull(threshold)) {
      return false;
    }
  }
  return true;
}

void BatteryPack::StepLanes(const std::vector<soa::LaneRequest>& requests, Duration dt) {
  SDB_CHECK(requests.size() == cells_.size());
  if (lanes_.size() != cells_.size()) {
    lanes_ = soa::CellLanes();
    for (const Cell& c : cells_) {
      lanes_.AddLane(c);
    }
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (requests[i].op == soa::LaneOp::kIdle || open_circuit_[i]) {
      lanes_.SetRequest(i, soa::LaneOp::kIdle, 0.0);
      continue;
    }
    lanes_.SetRequest(i, requests[i].op, requests[i].magnitude);
    lanes_.Gather(i, cells_[i]);
  }
  lanes_.AdvanceBatch(dt.value());
  for (size_t i = 0; i < cells_.size(); ++i) {
    // Idle lanes were never gathered this call; leave the cell untouched,
    // exactly as the scalar loops leave unstepped cells alone.
    if (lanes_.request_op(i) != soa::LaneOp::kIdle) {
      lanes_.Scatter(i, &cells_[i]);
    }
  }
}

PackStepResult BatteryPack::StepParallelDischarge(Power power, Duration dt) {
  SDB_TRACE_SPAN("chem", "pack.step_parallel_discharge");
  SDB_CHECK(!cells_.empty());
  PackStepResult result;
  result.requested = power;
  result.cell_currents.assign(cells_.size(), Amps(0.0));

  // Collect live cells and their no-load voltages / resistances.
  struct Branch {
    size_t idx;
    double e;  // OCV - V_rc.
    double r;  // R0.
  };
  std::vector<Branch> branches;
  double e_max = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].IsEmpty() || open_circuit_[i]) {
      continue;
    }
    Branch b{i, cells_[i].NoLoadVoltage().value(), cells_[i].InternalResistance().value()};
    SDB_CHECK(b.r > 0.0);
    branches.push_back(b);
    e_max = std::max(e_max, b.e);
  }
  if (branches.empty() || e_max <= 0.0) {
    result.delivered = Watts(0.0);
    result.energy_lost = Joules(0.0);
    result.shortfall = power.value() > 0.0;
    return result;
  }

  // Power at shared bus voltage v: P(v) = v * sum_i max(0, (e_i - v)/r_i).
  auto bus_power = [&](double v) {
    double total_i = 0.0;
    for (const auto& b : branches) {
      total_i += std::max(0.0, (b.e - v) / b.r);
    }
    return v * total_i;
  };

  // P(v) is unimodal on [0, e_max]: locate the peak by ternary search, then
  // pick the efficient (high-voltage) root of P(v) == requested power.
  double lo = 0.0;
  double hi = e_max;
  for (int iter = 0; iter < 80; ++iter) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (bus_power(m1) < bus_power(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  double v_peak = 0.5 * (lo + hi);
  double p_peak = bus_power(v_peak);

  double p_req = power.value();
  double v_bus;
  if (p_req >= p_peak) {
    v_bus = v_peak;
    result.shortfall = p_req > p_peak * (1.0 + 1e-9);
  } else {
    auto root = Bisect([&](double v) { return bus_power(v) - p_req; }, v_peak, e_max);
    v_bus = root.ok() ? root.value() : v_peak;
  }

  double delivered_j = 0.0;
  double lost_j = 0.0;
  for (const auto& b : branches) {
    double i_a = std::max(0.0, (b.e - v_bus) / b.r);
    StepResult step = cells_[b.idx].StepDischargeCurrent(Amps(i_a), dt);
    result.cell_currents[b.idx] = step.current;
    delivered_j += step.energy_at_terminals.value();
    lost_j += step.energy_lost.value();
  }
  result.delivered = Watts(delivered_j / dt.value());
  result.energy_lost = Joules(lost_j);
  if (result.delivered.value() < p_req * 0.995) {
    result.shortfall = true;
  }
  return result;
}

PackStepResult BatteryPack::StepSeriesDischarge(Power power, Duration dt) {
  SDB_TRACE_SPAN("chem", "pack.step_series_discharge");
  SDB_CHECK(!cells_.empty());
  PackStepResult result;
  result.requested = power;
  result.cell_currents.assign(cells_.size(), Amps(0.0));

  double e_sum = 0.0;
  double r_sum = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (c.IsEmpty() || open_circuit_[i]) {
      // A series chain with a dead (or disconnected) cell cannot conduct.
      result.delivered = Watts(0.0);
      result.energy_lost = Joules(0.0);
      result.shortfall = power.value() > 0.0;
      return result;
    }
    e_sum += c.NoLoadVoltage().value();
    r_sum += c.InternalResistance().value();
  }

  double i_a;
  bool shortfall = false;
  QuadraticRoots roots = SolveQuadratic(r_sum, -e_sum, power.value());
  if (roots.count == 0) {
    i_a = e_sum / (2.0 * r_sum);  // Max-power point of the chain.
    shortfall = true;
  } else {
    i_a = std::max(0.0, roots.lo);
  }

  double delivered_j = 0.0;
  double lost_j = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    StepResult step = cells_[i].StepDischargeCurrent(Amps(i_a), dt);
    result.cell_currents[i] = step.current;
    delivered_j += step.energy_at_terminals.value();
    lost_j += step.energy_lost.value();
  }
  result.delivered = Watts(delivered_j / dt.value());
  result.energy_lost = Joules(lost_j);
  result.shortfall = shortfall || result.delivered.value() < power.value() * 0.995;
  return result;
}

PackStepResult BatteryPack::StepEitherOrDischarge(Power power, Duration dt) {
  SDB_TRACE_SPAN("chem", "pack.step_either_or_discharge");
  SDB_CHECK(!cells_.empty());
  PackStepResult result;
  result.requested = power;
  result.cell_currents.assign(cells_.size(), Amps(0.0));

  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].IsEmpty() || open_circuit_[i]) {
      continue;
    }
    StepResult step = cells_[i].StepDischargePower(power, dt);
    result.cell_currents[i] = step.current;
    result.delivered = Watts(step.energy_at_terminals.value() / dt.value());
    result.energy_lost = step.energy_lost;
    result.shortfall = step.limited;
    return result;
  }
  result.delivered = Watts(0.0);
  result.energy_lost = Joules(0.0);
  result.shortfall = power.value() > 0.0;
  return result;
}

}  // namespace sdb

#include "src/chem/reference_cell.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

ReferenceCell::ReferenceCell(const BatteryParams* params, ReferenceCellConfig config,
                             double initial_soc)
    : params_(params), config_(config) {
  SDB_CHECK(params_ != nullptr);
  soc_ = Clamp(initial_soc, 0.0, 1.0);
}

void ReferenceCell::set_soc(double soc) { soc_ = Clamp(soc, 0.0, 1.0); }

double ReferenceCell::EffectiveCapacity(double current_a) const {
  double cap = params_->nominal_capacity.value();
  double i_ref = params_->fade_reference_current.value();
  double mag = std::fabs(current_a);
  if (mag <= 0.0) {
    return cap;
  }
  // Peukert-like shrinkage relative to the reference current.
  double ratio = mag / i_ref;
  return cap / std::pow(ratio, config_.peukert_exponent - 1.0);
}

Voltage ReferenceCell::TerminalVoltage(Current current) const {
  double i = current.value();
  double ocv = params_->ocv_vs_soc.Evaluate(soc_) + hysteresis_state_;
  double r0 = params_->dcir_vs_soc.Evaluate(soc_) * (1.0 + config_.r_current_coeff * std::fabs(i));
  return Volts(ocv - i * r0 - v_fast_ - v_slow_);
}

Voltage ReferenceCell::StepWithCurrent(Current current, Duration dt) {
  double i = current.value();
  double dt_s = dt.value();
  SDB_CHECK(dt_s > 0.0);

  double rc_total = params_->concentration_resistance.value();
  double r_fast = rc_total * config_.fast_rc_fraction;
  double r_slow = rc_total * (1.0 - config_.fast_rc_fraction);

  auto relax = [&](double v, double r, double tau) {
    double v_inf = i * r;
    return v_inf + (v - v_inf) * std::exp(-dt_s / tau);
  };
  v_fast_ = relax(v_fast_, r_fast, config_.fast_tau_s);
  v_slow_ = relax(v_slow_, r_slow, config_.slow_tau_s);

  // Hysteresis relaxes toward the direction-dependent bound.
  double target = (i > 0.0) ? -config_.hysteresis_v : (i < 0.0 ? config_.hysteresis_v : 0.0);
  constexpr double kHysteresisTau = 300.0;
  hysteresis_state_ = target + (hysteresis_state_ - target) * std::exp(-dt_s / kHysteresisTau);

  soc_ = Clamp(soc_ - i * dt_s / EffectiveCapacity(i), 0.0, 1.0);
  return TerminalVoltage(current);
}

}  // namespace sdb

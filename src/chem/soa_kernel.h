// Structure-of-arrays batch kernel for the chem hot path (ROADMAP item 2).
//
// Every electro-chemical update in the repo funnels through the inline
// primitives below: the Thevenin electrical step, the cycle-counting aging
// update and the lumped thermal update all operate on raw doubles held in
// small per-subsystem state bundles. `chem::Cell` (and `TheveninModel` /
// `AgingModel` / `ThermalModel`) are thin facades that call the same
// primitives on their own single-lane state, while `CellLanes` packs many
// cells — or many Monte-Carlo scenario replicas — into densely packed lane
// arrays and advances all of them per `AdvanceBatch` call. Because facade
// and batch share one implementation, their outputs
// are bit-identical by construction (see DESIGN.md §12), which is what lets
// every pre-existing golden stay pinned while the sweep engine batches.
//
// Two deliberate micro-optimisations, both bit-exact:
//   * curve lookups use PiecewiseLinearCurve::EvaluateHinted with per-lane
//     segment hints (the segment is unique, so hit or miss yields the same
//     double);
//   * the RC and thermal exponential decay factors exp(-dt/tau) are
//     memoized per lane keyed on dt (tau is a per-cell constant), so the
//     cached value is exactly the double std::exp returned for those inputs.
#ifndef SRC_CHEM_SOA_KERNEL_H_
#define SRC_CHEM_SOA_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/chem/battery_params.h"
#include "src/util/check.h"
#include "src/util/curve.h"
#include "src/util/numeric.h"

namespace sdb {

class Cell;

namespace soa {

// Below this health the battery is end-of-life; fade stops compounding
// (shared with AgingModel::AdvanceCalendar).
inline constexpr double kMinCapacityFactor = 0.05;
// Paper §5.1: the cumulative charge counter trips at 80% of current capacity.
inline constexpr double kCycleThresholdFraction = 0.8;

// --- Per-subsystem state bundles -------------------------------------------
// These are the dynamic doubles of one lane (= one cell). The facade models
// own one bundle each; CellLanes stores one LaneState block per lane.

struct ElectricalState {
  double soc = 0.0;
  double v_rc_v = 0.0;             // RC (concentration) element voltage.
  double resistance_scale = 1.0;   // Aging x cold multiplier on fresh DCIR.
  // Segment hints for the OCV/DCIR curve lookups (stale values are safe).
  uint32_t ocv_hint = 0;
  uint32_t dcir_hint = 0;
  // Memoized exp(-dt / (R_c * C_p)) keyed on dt (tau is per-cell constant).
  double rc_decay_dt_s = 0.0;
  double rc_decay = 0.0;
  // Memoized OCV lookup keyed on the exact SoC it was evaluated at: a
  // step's starting OCV is the previous step's ending OCV, so the cache
  // hits every consecutive step. The curve is fixed for the lane's
  // lifetime, so the cache stays valid however soc changes (-1 never
  // matches a real SoC, which keeps the initial cache empty).
  double ocv_x = -1.0;
  double ocv_cache = 0.0;
};

struct AgingState {
  double capacity_factor = 1.0;
  double cycle_count = 0.0;
  double cumulative_charge_c = 0.0;  // Toward the next 80% threshold.
  // Charge-weighted current accumulator for the in-progress cycle.
  double weighted_current_sum = 0.0;
  double weighted_charge_sum = 0.0;
  double total_charge_in_c = 0.0;
  double total_charge_out_c = 0.0;
};

struct ThermalState {
  double temp_k = 0.0;
  double total_heat_j = 0.0;
  // Memoized exp(-dt / (C / G)) keyed on dt.
  double decay_dt_s = 0.0;
  double decay = 0.0;
};

// --- Per-subsystem parameter views -----------------------------------------
// Read-only unpacked parameters; built once per cell (the curves stay
// pointers into the cell's BatteryParams, whose address is stable).

struct ElectricalParamsView {
  const PiecewiseLinearCurve* ocv_curve = nullptr;
  const PiecewiseLinearCurve* dcir_curve = nullptr;
  double r_c_ohm = 0.0;  // Concentration resistance.
  double c_p_f = 0.0;    // Plate capacitance.
  double i_max_a = 0.0;  // Datasheet discharge current limit.
  double j_max_a = 0.0;  // Datasheet charge current limit.
};

struct AgingParamsView {
  double nominal_capacity_c = 0.0;
  double base_fade_per_cycle = 0.0;
  double fade_current_stress = 0.0;
  double fade_reference_current_a = 0.0;
  double resistance_growth = 0.0;
};

struct ThermalParamsView {
  double heat_capacity_j_per_k = 0.0;
  double conductance_w_per_k = 0.0;
  double ambient_k = 0.0;
};

// Everything StepLaneOnce needs to know about one cell.
struct LaneParams {
  ElectricalParamsView electrical;
  AgingParamsView aging;
  ThermalParamsView thermal;
  double cold_resistance_per_k = 0.0;
};

// Full dynamic state of one lane, for gather/scatter between a Cell and a
// CellLanes slot (Cell::ExportLaneState / ImportLaneState).
struct LaneState {
  ElectricalState electrical;
  AgingState aging;
  ThermalState thermal;
  double total_loss_j = 0.0;
};

// Raw-double mirror of StepResult (thevenin.h owns the typed version and
// the ToStepResult converter).
struct RawStepResult {
  double current_a = 0.0;
  double terminal_v = 0.0;
  double energy_terminals_j = 0.0;
  double energy_chemical_j = 0.0;
  double energy_lost_j = 0.0;
  bool limited = false;
};

// What a lane is asked to do this step. kIdle lanes are untouched — exactly
// like the scalar circuits, which never step a cell that was allocated
// nothing (or is disconnected by an open-circuit fault).
enum class LaneOp : uint8_t {
  kIdle = 0,
  kDischargePower,    // magnitude = watts at the terminals.
  kDischargeCurrent,  // magnitude = amps (clamped to the datasheet limit).
  kChargePower,       // magnitude = watts absorbed at the terminals.
  kChargeCurrent,     // magnitude = amps (clamped to the datasheet limit).
};

struct LaneRequest {
  LaneOp op = LaneOp::kIdle;
  double magnitude = 0.0;
};

// --- Parameter-view builders ------------------------------------------------

inline ElectricalParamsView MakeElectricalParamsView(const BatteryParams& params) {
  ElectricalParamsView view;
  view.ocv_curve = &params.ocv_vs_soc;
  view.dcir_curve = &params.dcir_vs_soc;
  view.r_c_ohm = params.concentration_resistance.value();
  view.c_p_f = params.plate_capacitance.value();
  view.i_max_a = params.max_discharge_current.value();
  view.j_max_a = params.max_charge_current.value();
  return view;
}

inline AgingParamsView MakeAgingParamsView(const BatteryParams& params) {
  AgingParamsView view;
  view.nominal_capacity_c = params.nominal_capacity.value();
  view.base_fade_per_cycle = params.base_fade_per_cycle;
  view.fade_current_stress = params.fade_current_stress;
  view.fade_reference_current_a = params.fade_reference_current.value();
  view.resistance_growth = params.resistance_growth;
  return view;
}

inline LaneParams MakeLaneParams(const BatteryParams& params, double heat_capacity_j_per_k,
                                 double conductance_w_per_k, double ambient_k) {
  LaneParams lane;
  lane.electrical = MakeElectricalParamsView(params);
  lane.aging = MakeAgingParamsView(params);
  lane.thermal.heat_capacity_j_per_k = heat_capacity_j_per_k;
  lane.thermal.conductance_w_per_k = conductance_w_per_k;
  lane.thermal.ambient_k = ambient_k;
  lane.cold_resistance_per_k = params.cold_resistance_per_k;
  return lane;
}

// --- Electrical primitives ---------------------------------------------------

// Memoized exp(-dt_s / tau): recomputes only when dt changes, returning the
// exact cached double otherwise.
inline double DecayFactor(double dt_s, double tau, double* cached_dt_s, double* cached) {
  if (dt_s != *cached_dt_s) {
    *cached_dt_s = dt_s;
    *cached = std::exp(-dt_s / tau);
  }
  return *cached;
}

// Integration core of TheveninModel::Integrate, bit for bit. `ocv_start`
// and `r0` are the curve values at the starting SoC (the callers already
// need them to pick the current, so they are passed in rather than
// re-evaluated — the scalar path computed the identical doubles twice).
inline RawStepResult ElectricalIntegrate(const ElectricalParamsView& p, ElectricalState& s,
                                         double current_a, double dt_s, double capacity_c,
                                         double ocv_start, double r0) {
  SDB_DCHECK(dt_s > 0.0);
  SDB_DCHECK(capacity_c > 0.0);
  RawStepResult result;

  // Clamp so SoC stays within [0, 1] over the step. Fast path: when the
  // charge moved this step is strictly inside both SoC bounds with a 1%
  // margin (orders of magnitude beyond rounding error), the clamp is
  // provably the identity, so the two bound divisions are skipped. Only
  // near-empty/near-full lanes pay for the exact bounds.
  double discharge_room_c = s.soc * capacity_c;
  double charge_room_c = (1.0 - s.soc) * capacity_c;
  double moved_c = current_a * dt_s;
  if (!(moved_c < 0.99 * discharge_room_c && -moved_c < 0.99 * charge_room_c)) {
    double max_discharge_a = discharge_room_c / dt_s;
    double max_charge_a = charge_room_c / dt_s;
    double clamped = Clamp(current_a, -max_charge_a, max_discharge_a);
    if (clamped != current_a) {
      result.limited = true;
    }
    current_a = clamped;
  }

  double v_rc_start = s.v_rc_v;

  // Exact update of the RC branch for constant current over the step.
  if (p.r_c_ohm > 0.0) {
    double v_inf = current_a * p.r_c_ohm;
    double tau = p.r_c_ohm * p.c_p_f;
    double decay = DecayFactor(dt_s, tau, &s.rc_decay_dt_s, &s.rc_decay);
    s.v_rc_v = v_inf + (v_rc_start - v_inf) * decay;
  } else {
    s.v_rc_v = 0.0;
  }

  s.soc = Clamp(s.soc - current_a * dt_s / capacity_c, 0.0, 1.0);

  double ocv_end = p.ocv_curve->EvaluateHinted(s.soc, &s.ocv_hint);
  s.ocv_x = s.soc;
  s.ocv_cache = ocv_end;
  double ocv_avg = 0.5 * (ocv_start + ocv_end);
  double v_rc_avg = 0.5 * (v_rc_start + s.v_rc_v);

  double e_chem = ocv_avg * current_a * dt_s;
  double e_loss = current_a * current_a * r0 * dt_s + current_a * v_rc_avg * dt_s;
  result.current_a = current_a;
  result.terminal_v = ocv_end - current_a * r0 - s.v_rc_v;
  result.energy_chemical_j = e_chem;
  result.energy_lost_j = e_loss;
  result.energy_terminals_j = e_chem - e_loss;
  return result;
}

// Current selection + integration for one electrical step. Mirrors
// TheveninModel::StepWithDischargePower / StepWithChargePower and the
// datasheet-limit clamps of Cell::Step{Discharge,Charge}Current.
inline RawStepResult ElectricalStep(const ElectricalParamsView& p, ElectricalState& s, LaneOp op,
                                    double magnitude, double dt_s, double capacity_c) {
  double ocv0 = (s.soc == s.ocv_x) ? s.ocv_cache
                                   : p.ocv_curve->EvaluateHinted(s.soc, &s.ocv_hint);
  double r0 = s.resistance_scale * p.dcir_curve->EvaluateHinted(s.soc, &s.dcir_hint);
  double current_a = 0.0;
  bool limited = false;
  switch (op) {
    case LaneOp::kDischargePower: {
      SDB_DCHECK(magnitude >= 0.0);
      double e = ocv0 - s.v_rc_v;
      if (e <= 0.0) {
        current_a = 0.0;
        limited = magnitude > 0.0;
      } else {
        // Stable branch of R0*I^2 - E*I + P = 0 (the smaller root).
        QuadraticRoots roots = SolveQuadratic(r0, -e, magnitude);
        if (roots.count == 0) {
          // Request exceeds the max-power point; deliver the most we can.
          current_a = e / (2.0 * r0);
          limited = true;
        } else {
          current_a = roots.lo;
        }
      }
      if (current_a > p.i_max_a) {
        current_a = p.i_max_a;
        limited = true;
      }
      break;
    }
    case LaneOp::kDischargeCurrent: {
      SDB_DCHECK(magnitude >= 0.0);
      current_a = std::min(magnitude, p.i_max_a);
      break;
    }
    case LaneOp::kChargePower: {
      SDB_DCHECK(magnitude >= 0.0);
      double e = ocv0 - s.v_rc_v;
      // Absorbed power P = (E + R0*J) * J for charge current J = -I > 0.
      QuadraticRoots roots = SolveQuadratic(r0, e, -magnitude);
      double j = roots.count > 0 ? std::max(roots.hi, 0.0) : 0.0;
      if (j > p.j_max_a) {
        j = p.j_max_a;
        limited = true;
      }
      current_a = -j;
      break;
    }
    case LaneOp::kChargeCurrent: {
      SDB_DCHECK(magnitude >= 0.0);
      current_a = -std::min(magnitude, p.j_max_a);
      break;
    }
    case LaneOp::kIdle:
      SDB_DCHECK(false);
      return RawStepResult{};
  }
  RawStepResult result = ElectricalIntegrate(p, s, current_a, dt_s, capacity_c, ocv0, r0);
  result.limited = result.limited || limited;
  return result;
}

// --- Aging primitives --------------------------------------------------------

inline double AgingResistanceFactor(const AgingParamsView& p, const AgingState& s) {
  return 1.0 + p.resistance_growth * (1.0 - s.capacity_factor);
}

// AgingModel::RecordCharge, bit for bit (including ApplyCycleFade).
inline void AgingRecordCharge(const AgingParamsView& p, AgingState& s, double dose_c,
                              double current_a) {
  double dose = dose_c;
  SDB_DCHECK(dose >= 0.0);
  s.total_charge_in_c += dose;
  double i_a = std::fabs(current_a);

  while (dose > 0.0) {
    double threshold = kCycleThresholdFraction * p.nominal_capacity_c * s.capacity_factor;
    double room = threshold - s.cumulative_charge_c;
    double step = std::min(dose, room);
    s.cumulative_charge_c += step;
    s.weighted_current_sum += i_a * step;
    s.weighted_charge_sum += step;
    dose -= step;
    if (s.cumulative_charge_c >= threshold) {
      double avg_current =
          s.weighted_charge_sum > 0.0 ? s.weighted_current_sum / s.weighted_charge_sum : i_a;
      double ratio = avg_current / p.fade_reference_current_a;
      double fade = p.base_fade_per_cycle * (1.0 + p.fade_current_stress * ratio * ratio);
      s.capacity_factor = std::max(kMinCapacityFactor, s.capacity_factor - fade);
      s.cycle_count += 1.0;
      s.cumulative_charge_c = 0.0;
      s.weighted_current_sum = 0.0;
      s.weighted_charge_sum = 0.0;
    }
  }
}

inline void AgingRecordDischarge(AgingState& s, double dose_c) {
  SDB_DCHECK(dose_c >= 0.0);
  s.total_charge_out_c += dose_c;
}

// --- Thermal primitives ------------------------------------------------------

// ThermalModel::Step, bit for bit (with the decay factor memoized).
inline void ThermalStep(const ThermalParamsView& p, ThermalState& s, double heat_j, double dt_s) {
  SDB_DCHECK(dt_s > 0.0);
  if (heat_j > 0.0) {
    s.total_heat_j += heat_j;
  }
  // Exact solution of C dT/dt = P_heat - G (T - T_amb) for constant P_heat.
  double p_heat = heat_j / dt_s;
  if (p.conductance_w_per_k > 0.0) {
    double t_inf = p.ambient_k + p_heat / p.conductance_w_per_k;
    double tau = p.heat_capacity_j_per_k / p.conductance_w_per_k;
    double decay = DecayFactor(dt_s, tau, &s.decay_dt_s, &s.decay);
    s.temp_k = t_inf + (s.temp_k - t_inf) * decay;
  } else {
    s.temp_k += heat_j / p.heat_capacity_j_per_k;
  }
}

// Cell::SyncAging's cold multiplier: DCIR grows with age and with cold.
inline double ColdResistanceMultiplier(double cold_resistance_per_k, double temp_k) {
  double cold = 1.0;
  double below_25 = 298.15 - temp_k;
  if (below_25 > 0.0) {
    cold += cold_resistance_per_k * below_25;
  }
  return cold;
}

// --- The full per-lane step --------------------------------------------------

// One complete cell step: SyncAging, electrical integration, then the
// aging/thermal/loss accounting — the exact op sequence of
// Cell::Step{Discharge,Charge}{Power,Current}. Both the Cell facade and
// CellLanes::AdvanceBatch run THIS function, which is the bit-identity
// invariant the differential suite pins.
inline RawStepResult StepLaneOnce(const LaneParams& p, ElectricalState& es, AgingState& as,
                                  ThermalState& ts, double& total_loss_j, LaneOp op,
                                  double magnitude, double dt_s) {
  es.resistance_scale = AgingResistanceFactor(p.aging, as) *
                        ColdResistanceMultiplier(p.cold_resistance_per_k, ts.temp_k);
  double capacity_c = p.aging.nominal_capacity_c * as.capacity_factor;
  RawStepResult result = ElectricalStep(p.electrical, es, op, magnitude, dt_s, capacity_c);

  // Account(): throughput into aging, loss into the ledger and the thermal
  // mass, then re-sync the resistance multiplier.
  double i = result.current_a;
  double moved_c = std::fabs(i) * dt_s;
  if (i < 0.0) {
    AgingRecordCharge(p.aging, as, moved_c, std::fabs(i));
  } else if (i > 0.0) {
    AgingRecordDischarge(as, moved_c);
  }
  total_loss_j += result.energy_lost_j;
  ThermalStep(p.thermal, ts, std::max(0.0, result.energy_lost_j), dt_s);
  es.resistance_scale = AgingResistanceFactor(p.aging, as) *
                        ColdResistanceMultiplier(p.cold_resistance_per_k, ts.temp_k);
  return result;
}

// --- Batch container ---------------------------------------------------------

// Flat lanes for a set of cells. State lives in one contiguous LaneState
// block per lane; parameters are unpacked once per lane. Usage per step:
// Gather (if the cells moved outside the batch), SetRequest per lane,
// AdvanceBatch, read result(i), Scatter back.
class CellLanes {
 public:
  // Appends a lane initialised from `cell` (params + dynamic state).
  // The cell's BatteryParams address must stay stable (it does: Cell holds
  // them behind a unique_ptr).
  size_t AddLane(const Cell& cell);

  // Copies the cell's dynamic state into lane `lane`.
  void Gather(size_t lane, const Cell& cell);
  // Writes lane `lane`'s state back into `cell`.
  void Scatter(size_t lane, Cell* cell) const;

  // Hot per-lane accessors are inline with debug-only bounds checks: they
  // run once per lane per tick inside the batch drivers.
  void SetRequest(size_t lane, LaneOp op, double magnitude) {
    SDB_DCHECK(lane < size());
    requests_[lane] = LaneRequest{op, magnitude};
  }
  // Resets every lane to kIdle.
  void ClearRequests();

  // Advances every non-idle lane by dt_s seconds. Idle lanes are untouched
  // (their result reads as all-zero). Lane order is 0..size()-1; lanes are
  // independent, so this matches stepping the cells one by one.
  void AdvanceBatch(double dt_s);

  size_t size() const { return params_.size(); }
  const RawStepResult& result(size_t lane) const {
    SDB_DCHECK(lane < size());
    return results_[lane];
  }
  LaneOp request_op(size_t lane) const {
    SDB_DCHECK(lane < size());
    return requests_[lane].op;
  }

  // State peeks (tests / telemetry).
  double soc(size_t lane) const {
    SDB_DCHECK(lane < size());
    return state_[lane].electrical.soc;
  }
  double temperature_k(size_t lane) const {
    SDB_DCHECK(lane < size());
    return state_[lane].thermal.temp_k;
  }

 private:
  std::vector<LaneParams> params_;
  // One contiguous state block per lane. A strict per-field SoA split was
  // measured SLOWER here: each step reads and writes nearly every field of
  // its lane, so one block (3 cache lines) beats ~20 parallel field
  // streams, and direct struct-member access lets the compiler keep the
  // lane in registers — reference bundles into parallel double arrays
  // would force it to assume any store aliases any later load. The batch
  // win comes from the dense request/result arrays and from stepping all
  // lanes in one call with no facade bookkeeping (see DESIGN.md §12).
  std::vector<LaneState> state_;
  std::vector<LaneRequest> requests_;
  std::vector<RawStepResult> results_;
};

// --- Process-wide switches & accounting -------------------------------------

// Batched pack stepping on/off (default on). The scalar per-cell loops stay
// behind this switch so differential tests can compare both paths; flipping
// it never changes results, only which code path produces them.
void SetBatchStepping(bool enabled);
bool BatchStepping();

// Total cell-steps executed process-wide (facade + batch), mirrored in the
// obs counter "sdb.chem.cell_steps". Relaxed; concurrent sweeps both count.
uint64_t TotalCellSteps();
// Internal: called by the facade (n=1) and AdvanceBatch (n=lanes stepped).
void AddCellSteps(uint64_t n);

}  // namespace soa
}  // namespace sdb

#endif  // SRC_CHEM_SOA_KERNEL_H_

// Higher-order reference cell model used to validate the 4-parameter
// Thevenin model (paper Fig. 10, "97.5% accurate").
//
// The paper compares the Thevenin model's terminal-voltage prediction
// against a physical cell driven by an Arbin/Maccor cycler. We have no
// cycler, so the reference is a richer electrochemical surrogate:
//   * two RC branches (fast surface + slow diffusion dynamics),
//   * OCV hysteresis between charge and discharge directions,
//   * rate-dependent usable capacity (a Peukert-like term),
//   * mild resistance nonlinearity in current.
// The Thevenin model fitted to the same battery is then evaluated against
// this surrogate exactly the way the paper evaluates against hardware.
#ifndef SRC_CHEM_REFERENCE_CELL_H_
#define SRC_CHEM_REFERENCE_CELL_H_

#include "src/chem/battery_params.h"
#include "src/util/units.h"

namespace sdb {

// Extra fidelity knobs layered on top of BatteryParams.
struct ReferenceCellConfig {
  double fast_rc_fraction = 0.6;   // Portion of R_c assigned to the fast branch.
  double fast_tau_s = 5.0;         // Fast branch time constant.
  double slow_tau_s = 300.0;       // Slow branch time constant.
  double hysteresis_v = 0.080;     // Half-width of the OCV hysteresis band.
  double peukert_exponent = 1.08;  // Usable capacity shrinks as I^(k-1).
  double r_current_coeff = 0.20;   // R0 grows by this fraction per amp.
};

class ReferenceCell {
 public:
  ReferenceCell(const BatteryParams* params, ReferenceCellConfig config, double initial_soc);

  // Advances one step at fixed current (discharge positive) and returns the
  // end-of-step terminal voltage.
  Voltage StepWithCurrent(Current current, Duration dt);

  Voltage TerminalVoltage(Current current) const;

  double soc() const { return soc_; }
  void set_soc(double soc);

 private:
  double EffectiveCapacity(double current_a) const;

  const BatteryParams* params_;
  ReferenceCellConfig config_;
  double soc_;
  double v_fast_ = 0.0;
  double v_slow_ = 0.0;
  // Hysteresis state drifts toward +h on discharge, -h on charge.
  double hysteresis_state_ = 0.0;
};

}  // namespace sdb

#endif  // SRC_CHEM_REFERENCE_CELL_H_

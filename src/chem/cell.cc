#include "src/chem/cell.h"

#include <cmath>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {
// Generic thermal lumped parameters: ~40 J/K and 0.5 W/K suit phone-scale
// cells; precise values only shift absolute temperatures, not energy flows.
constexpr double kHeatCapacityJPerK = 40.0;
constexpr double kConductanceWPerK = 0.5;
}  // namespace

Cell::Cell(BatteryParams params, double initial_soc)
    : params_(std::make_unique<BatteryParams>(std::move(params))),
      electrical_(params_.get(), initial_soc),
      aging_(params_.get()),
      thermal_(kHeatCapacityJPerK, kConductanceWPerK, Celsius(25.0)),
      lane_params_(soa::MakeLaneParams(*params_, kHeatCapacityJPerK, kConductanceWPerK,
                                       Celsius(25.0).value())) {
  ::sdb::Status valid = params_->Validate();
  SDB_CHECK(valid.ok());
}

Cell::Cell(Cell&& other) noexcept
    : params_(std::move(other.params_)),
      electrical_(other.electrical_),
      aging_(other.aging_),
      thermal_(other.thermal_),
      lane_params_(other.lane_params_),
      total_loss_j_(other.total_loss_j_) {}

Cell& Cell::operator=(Cell&& other) noexcept {
  params_ = std::move(other.params_);
  electrical_ = other.electrical_;
  aging_ = other.aging_;
  thermal_ = other.thermal_;
  lane_params_ = other.lane_params_;
  total_loss_j_ = other.total_loss_j_;
  return *this;
}

Charge Cell::EffectiveCapacity() const {
  return Charge(params_->nominal_capacity.value() * aging_.capacity_factor());
}

Charge Cell::RemainingCharge() const { return Charge(EffectiveCapacity().value() * soc()); }

Energy Cell::RemainingEnergy() const {
  // Integrate OCV(s) ds over [0, soc] scaled by capacity: the chemical
  // energy still extractable ignoring resistive losses.
  double cap = EffectiveCapacity().value();
  double s = soc();
  if (s <= 0.0) {
    return Joules(0.0);
  }
  constexpr int kPanels = 32;
  double sum = 0.0;
  double h = s / kPanels;
  for (int i = 0; i <= kPanels; ++i) {
    double weight = (i == 0 || i == kPanels) ? 0.5 : 1.0;
    sum += weight * params_->ocv_vs_soc.Evaluate(i * h);
  }
  return Joules(sum * h * cap);
}

Power Cell::MaxDischargePower() const {
  // The lower of the electrical max-power point and the current limit.
  double ocv = OpenCircuitVoltage().value();
  double i_max = params_->max_discharge_current.value();
  double r0 = InternalResistance().value();
  double p_limit = (ocv - i_max * r0) * i_max;
  double p_electrical = electrical_.MaxDischargePower().value();
  return Watts(std::max(0.0, std::min(p_limit, p_electrical)));
}

Power Cell::MaxChargePower() const {
  double ocv = OpenCircuitVoltage().value();
  double j_max = params_->max_charge_current.value();
  double r0 = InternalResistance().value();
  return Watts((ocv + j_max * r0) * j_max);
}

void Cell::AdvanceIdle(Duration dt) {
  SDB_CHECK(dt.value() >= 0.0);
  const double seconds_per_month = Days(30.0).value();
  double leak = params_->self_discharge_per_month * dt.value() / seconds_per_month;
  electrical_.set_soc(electrical_.soc() * (1.0 - leak));
  aging_.AdvanceCalendar(dt);
  SyncAging();
}

StepResult Cell::StepDischargePower(Power power, Duration dt) {
  SDB_TRACE_SPAN("chem", "cell.step_discharge_power");
  return RunLaneOp(soa::LaneOp::kDischargePower, power.value(), dt);
}

StepResult Cell::StepDischargeCurrent(Current current, Duration dt) {
  SDB_CHECK(current.value() >= 0.0);
  return RunLaneOp(soa::LaneOp::kDischargeCurrent, current.value(), dt);
}

StepResult Cell::StepChargePower(Power power, Duration dt) {
  SDB_TRACE_SPAN("chem", "cell.step_charge_power");
  return RunLaneOp(soa::LaneOp::kChargePower, power.value(), dt);
}

StepResult Cell::StepChargeCurrent(Current current, Duration dt) {
  SDB_CHECK(current.value() >= 0.0);
  return RunLaneOp(soa::LaneOp::kChargeCurrent, current.value(), dt);
}

StepResult Cell::RunLaneOp(soa::LaneOp op, double magnitude, Duration dt) {
  soa::RawStepResult raw =
      soa::StepLaneOnce(lane_params_, electrical_.kernel_state(), aging_.kernel_state(),
                        thermal_.kernel_state(), total_loss_j_, op, magnitude, dt.value());
  soa::AddCellSteps(1);
  return ToStepResult(raw);
}

void Cell::SyncAging() {
  // DCIR grows with age and with cold: both multiply the fresh curve.
  electrical_.set_resistance_scale(
      aging_.resistance_factor() *
      soa::ColdResistanceMultiplier(params_->cold_resistance_per_k,
                                    thermal_.temperature().value()));
}

soa::LaneState Cell::ExportLaneState() const {
  soa::LaneState state;
  state.electrical = electrical_.kernel_state();
  state.aging = aging_.kernel_state();
  state.thermal = thermal_.kernel_state();
  state.total_loss_j = total_loss_j_;
  return state;
}

void Cell::ImportLaneState(const soa::LaneState& state) {
  electrical_.kernel_state() = state.electrical;
  aging_.kernel_state() = state.aging;
  thermal_.kernel_state() = state.thermal;
  total_loss_j_ = state.total_loss_j;
}

CellStatus Cell::GetStatus() const {
  CellStatus status;
  status.name = params_->name;
  status.soc = soc();
  status.terminal_voltage = electrical_.TerminalVoltageAt(Amps(0.0));
  status.open_circuit_voltage = OpenCircuitVoltage();
  status.internal_resistance = InternalResistance();
  status.effective_capacity = EffectiveCapacity();
  status.capacity_factor = aging_.capacity_factor();
  status.cycle_count = aging_.cycle_count();
  status.wear_ratio = aging_.wear_ratio();
  status.temperature = thermal_.temperature();
  status.total_loss = total_loss();
  return status;
}

}  // namespace sdb

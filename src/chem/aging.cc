#include "src/chem/aging.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

AgingModel::AgingModel(const BatteryParams* params) : params_(params) {
  SDB_CHECK(params_ != nullptr);
}

void AgingModel::RecordCharge(Charge charge, Current current) {
  SDB_CHECK(charge.value() >= 0.0);
  soa::AgingRecordCharge(soa::MakeAgingParamsView(*params_), state_, charge.value(),
                         current.value());
}

void AgingModel::RecordDischarge(Charge charge, Current current) {
  (void)current;
  SDB_CHECK(charge.value() >= 0.0);
  soa::AgingRecordDischarge(state_, charge.value());
}

void AgingModel::AdvanceCalendar(Duration dt) {
  SDB_CHECK(dt.value() >= 0.0);
  const double seconds_per_month = Days(30.0).value();
  double fade = params_->calendar_fade_per_month * dt.value() / seconds_per_month;
  state_.capacity_factor = std::max(soa::kMinCapacityFactor, state_.capacity_factor - fade);
}

double AgingModel::partial_cycle_fraction() const {
  double threshold = soa::kCycleThresholdFraction * params_->nominal_capacity.value() *
                     state_.capacity_factor;
  return threshold > 0.0
             ? state_.cumulative_charge_c / threshold * soa::kCycleThresholdFraction
             : 0.0;
}

}  // namespace sdb

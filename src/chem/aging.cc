#include "src/chem/aging.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

namespace {
// Below this health the battery is considered end-of-life; fade stops
// compounding below it to keep long ablation runs numerically sane.
constexpr double kMinCapacityFactor = 0.05;
// Paper §5.1: the cumulative charge counter trips at 80% of current capacity.
constexpr double kCycleThresholdFraction = 0.8;
}  // namespace

AgingModel::AgingModel(const BatteryParams* params) : params_(params) {
  SDB_CHECK(params_ != nullptr);
}

void AgingModel::RecordCharge(Charge charge, Current current) {
  double dose = charge.value();
  SDB_CHECK(dose >= 0.0);
  total_charge_in_c_ += dose;
  double i_a = std::fabs(current.value());

  while (dose > 0.0) {
    double threshold =
        kCycleThresholdFraction * params_->nominal_capacity.value() * capacity_factor_;
    double room = threshold - cumulative_charge_c_;
    double step = std::min(dose, room);
    cumulative_charge_c_ += step;
    weighted_current_sum_ += i_a * step;
    weighted_charge_sum_ += step;
    dose -= step;
    if (cumulative_charge_c_ >= threshold) {
      double avg_current =
          weighted_charge_sum_ > 0.0 ? weighted_current_sum_ / weighted_charge_sum_ : i_a;
      ApplyCycleFade(avg_current);
      cycle_count_ += 1.0;
      cumulative_charge_c_ = 0.0;
      weighted_current_sum_ = 0.0;
      weighted_charge_sum_ = 0.0;
    }
  }
}

void AgingModel::RecordDischarge(Charge charge, Current current) {
  (void)current;
  SDB_CHECK(charge.value() >= 0.0);
  total_charge_out_c_ += charge.value();
}

void AgingModel::AdvanceCalendar(Duration dt) {
  SDB_CHECK(dt.value() >= 0.0);
  const double seconds_per_month = Days(30.0).value();
  double fade = params_->calendar_fade_per_month * dt.value() / seconds_per_month;
  capacity_factor_ = std::max(kMinCapacityFactor, capacity_factor_ - fade);
}

double AgingModel::partial_cycle_fraction() const {
  double threshold =
      kCycleThresholdFraction * params_->nominal_capacity.value() * capacity_factor_;
  return threshold > 0.0 ? cumulative_charge_c_ / threshold * kCycleThresholdFraction : 0.0;
}

void AgingModel::ApplyCycleFade(double i_a) {
  double ratio = i_a / params_->fade_reference_current.value();
  double fade =
      params_->base_fade_per_cycle * (1.0 + params_->fade_current_stress * ratio * ratio);
  capacity_factor_ = std::max(kMinCapacityFactor, capacity_factor_ - fade);
}

}  // namespace sdb

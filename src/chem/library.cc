#include "src/chem/library.h"

#include "src/util/check.h"

namespace sdb {

PiecewiseLinearCurve CoO2OcvCurve(double v_empty, double v_full) {
  SDB_CHECK(v_full > v_empty);
  // Normalised CoO2 discharge curve; y in [0,1] is rescaled to the span.
  static const std::pair<double, double> kShape[] = {
      {0.00, 0.000}, {0.05, 0.330}, {0.10, 0.470}, {0.20, 0.545}, {0.30, 0.595},
      {0.40, 0.632}, {0.50, 0.668}, {0.60, 0.705}, {0.70, 0.748}, {0.80, 0.805},
      {0.90, 0.885}, {1.00, 1.000}};
  std::vector<std::pair<double, double>> points;
  points.reserve(std::size(kShape));
  for (const auto& [x, y] : kShape) {
    points.emplace_back(x, v_empty + y * (v_full - v_empty));
  }
  auto curve = PiecewiseLinearCurve::Create(std::move(points));
  SDB_CHECK(curve.ok());
  return std::move(curve).value();
}

PiecewiseLinearCurve LiFePO4OcvCurve() {
  return PiecewiseLinearCurve::FromTable({{0.00, 2.90},
                                          {0.05, 3.12},
                                          {0.10, 3.20},
                                          {0.20, 3.26},
                                          {0.40, 3.29},
                                          {0.60, 3.31},
                                          {0.80, 3.34},
                                          {0.90, 3.37},
                                          {1.00, 3.48}});
}

PiecewiseLinearCurve DcirCurve(double r_mid_ohm) {
  SDB_CHECK(r_mid_ohm > 0.0);
  // Fig. 8c shape: resistance rises sharply as the battery empties.
  static const std::pair<double, double> kShape[] = {
      {0.00, 4.20}, {0.05, 2.60}, {0.10, 1.90}, {0.20, 1.40}, {0.30, 1.18},
      {0.40, 1.07}, {0.50, 1.00}, {0.60, 0.96}, {0.70, 0.93}, {0.80, 0.91},
      {0.90, 0.90}, {1.00, 0.89}};
  std::vector<std::pair<double, double>> points;
  points.reserve(std::size(kShape));
  for (const auto& [x, y] : kShape) {
    points.emplace_back(x, y * r_mid_ohm);
  }
  auto curve = PiecewiseLinearCurve::Create(std::move(points));
  SDB_CHECK(curve.ok());
  return std::move(curve).value();
}

namespace {

// Fills physical properties from volumetric/gravimetric densities and cost
// per Wh so every preset stays internally consistent.
void FillPhysical(BatteryParams& p, double wh_per_litre, double wh_per_kg, double usd_per_wh) {
  double wh = ToWattHours(p.NominalEnergy());
  p.volume = Litres(wh / wh_per_litre);
  p.mass = Kilograms(wh / wh_per_kg);
  p.cost_usd = usd_per_wh * wh;
}

// RC pair from a fraction of mid-SoC DCIR and a target time constant.
void FillRcPair(BatteryParams& p, double r_mid_ohm, double rc_fraction, double tau_s) {
  p.concentration_resistance = Ohms(r_mid_ohm * rc_fraction);
  p.plate_capacitance = Farads(tau_s / p.concentration_resistance.value());
}

}  // namespace

BatteryParams MakeType1PowerCell(Charge capacity) {
  BatteryParams p;
  p.name = "T1-PowerTool";
  p.chemistry = Chemistry::kType1HighPower;
  p.nominal_capacity = capacity;
  p.nominal_voltage = Volts(3.25);
  p.ocv_vs_soc = LiFePO4OcvCurve();
  double r_mid = 0.010 * (2.5 / ToAmpHours(capacity));  // 10 mOhm at 2.5 Ah scale.
  p.dcir_vs_soc = DcirCurve(r_mid);
  FillRcPair(p, r_mid, 0.30, 20.0);
  p.max_discharge_current = p.CRate(10.0);
  p.max_charge_current = p.CRate(4.0);
  p.charge_cutoff_voltage = Volts(3.60);
  p.rated_cycle_count = 2000.0;
  p.base_fade_per_cycle = 3.0e-5;
  p.fade_current_stress = 0.5;
  p.fade_reference_current = p.CRate(1.0);
  p.resistance_growth = 1.5;
  // Half the volumetric density of Type 2 (paper: double the volume for the
  // same capacity).
  FillPhysical(p, 290.0, 110.0, 0.25);
  return p;
}

BatteryParams MakeType2Standard(Charge capacity, int variant) {
  BatteryParams p;
  p.name = "T2-Standard-" + std::string(1, static_cast<char>('A' + variant));
  p.chemistry = Chemistry::kType2Standard;
  p.nominal_capacity = capacity;
  p.nominal_voltage = Volts(3.70);
  // Variants differ slightly in curve endpoints and resistance, as the
  // paper's eight Type 2 samples do.
  double v_full = 4.18 + 0.01 * (variant % 3);
  p.ocv_vs_soc = CoO2OcvCurve(2.80 - 0.02 * (variant % 2), v_full);
  double r_mid = (0.030 + 0.003 * (variant % 4)) * (2.5 / ToAmpHours(capacity));
  p.dcir_vs_soc = DcirCurve(r_mid);
  FillRcPair(p, r_mid, 0.35, 30.0);
  p.max_discharge_current = p.CRate(2.0);
  p.max_charge_current = p.CRate(0.7);
  p.charge_cutoff_voltage = Volts(4.20);
  p.rated_cycle_count = 800.0;
  // Calibrated to Fig. 1(b): 600 cycles at 0.25C/0.35C/0.5C charge end near
  // 92% / 88% / 81% of original capacity.
  p.base_fade_per_cycle = 8.0e-5;
  p.fade_current_stress = 12.0;
  p.fade_reference_current = p.CRate(1.0);
  p.resistance_growth = 2.0;
  FillPhysical(p, 590.0 + (variant % 4) * 3.0, 255.0, 0.30);
  return p;
}

BatteryParams MakeType3FastCharge(Charge capacity, int variant) {
  BatteryParams p;
  p.name = "T3-FastCharge-" + std::string(1, static_cast<char>('A' + variant));
  p.chemistry = Chemistry::kType3FastCharge;
  p.nominal_capacity = capacity;
  p.nominal_voltage = Volts(3.65);
  p.ocv_vs_soc = CoO2OcvCurve(2.75, 4.12 + 0.02 * variant);
  double r_mid = (0.016 + 0.004 * variant) * (2.5 / ToAmpHours(capacity));
  p.dcir_vs_soc = DcirCurve(r_mid);
  // The low-density separator keeps ohmic DCIR small (that is what buys the
  // 3C power) but concentration polarisation is high — Fig. 1(c) puts the
  // Type 3 heat-loss curve between Type 2 and Type 4.
  FillRcPair(p, r_mid, 2.5, 15.0);
  p.max_discharge_current = p.CRate(4.0);
  p.max_charge_current = p.CRate(3.0);
  p.charge_cutoff_voltage = Volts(4.20);
  p.rated_cycle_count = 700.0;
  // Designed for current: low stress coefficient, but fast charging still
  // costs ~22% capacity over 1000 cycles (Fig. 11c).
  p.base_fade_per_cycle = 6.0e-5;
  p.fade_current_stress = 0.30;
  p.fade_reference_current = p.CRate(1.0);
  p.resistance_growth = 2.0;
  // 530-540 Wh/l fresh; swells ~5.5% under routine max-rate charging,
  // landing at the paper's 500-510 Wh/l effective density.
  FillPhysical(p, 532.0 + 6.0 * variant, 235.0, 0.45);
  p.fast_charge_swelling = 0.055;
  return p;
}

BatteryParams MakeType4Bendable(Charge capacity, int variant) {
  BatteryParams p;
  p.name = "T4-Bendable-" + std::string(1, static_cast<char>('A' + variant));
  p.chemistry = Chemistry::kType4Bendable;
  p.nominal_capacity = capacity;
  p.nominal_voltage = Volts(3.65);
  p.ocv_vs_soc = CoO2OcvCurve(2.70, 4.10);
  // The rubber-like ceramic separator resists ion flow: ohm-scale DCIR at
  // watch capacities (top of the Fig. 8c band).
  // Calibrated so a 2C drain loses ~30% to heat (Fig. 1c's Type 4 curve).
  double r_mid = (1.80 + 0.60 * variant) * (0.2 / ToAmpHours(capacity));
  p.dcir_vs_soc = DcirCurve(r_mid);
  FillRcPair(p, r_mid, 0.50, 45.0);
  p.max_discharge_current = p.CRate(2.0);
  p.max_charge_current = p.CRate(0.3);
  p.charge_cutoff_voltage = Volts(4.15);
  p.rated_cycle_count = 500.0;
  p.base_fade_per_cycle = 1.6e-4;
  p.fade_current_stress = 8.0;
  p.fade_reference_current = p.CRate(1.0);
  p.resistance_growth = 2.5;
  FillPhysical(p, 350.0, 160.0, 0.90);
  p.bend_radius_mm = 12.0 + 4.0 * variant;
  return p;
}

BatteryParams MakeWatchLiIon(Charge capacity) {
  BatteryParams p = MakeType2Standard(capacity, 0);
  p.name = "Watch-LiIon";
  // Small cells carry proportionally higher DCIR (Fig. 8c upper cluster).
  double r_mid = 0.45 * (0.2 / ToAmpHours(capacity));
  p.dcir_vs_soc = DcirCurve(r_mid);
  FillRcPair(p, r_mid, 0.35, 25.0);
  FillPhysical(p, 600.0, 250.0, 0.40);
  return p;
}

BatteryParams MakeHighEnergyTablet(Charge capacity) {
  BatteryParams p = MakeType2Standard(capacity, 1);
  p.name = "HE-Tablet";
  FillPhysical(p, 595.0, 260.0, 0.32);
  p.rated_cycle_count = 1000.0;
  // Large-format tablet cells charge gently (0.5C) to protect longevity.
  p.max_charge_current = p.CRate(0.5);
  return p;
}

BatteryParams MakeFastChargeTablet(Charge capacity) {
  BatteryParams p = MakeType3FastCharge(capacity, 0);
  p.name = "FC-Tablet";
  FillPhysical(p, 535.0, 238.0, 0.45);
  p.fast_charge_swelling = 0.055;
  p.rated_cycle_count = 1000.0;
  return p;
}

BatteryParams MakeTwoInOneInternal(Charge capacity) {
  BatteryParams p = MakeType2Standard(capacity, 2);
  p.name = "2in1-Internal";
  return p;
}

BatteryParams MakeTwoInOneExternal(Charge capacity) {
  BatteryParams p = MakeType2Standard(capacity, 3);
  p.name = "2in1-External";
  return p;
}

BatteryParams MakeNiMhAmbient(Charge capacity) {
  BatteryParams p;
  p.name = "NiMH-Ambient";
  p.chemistry = Chemistry::kNiMh;
  p.nominal_capacity = capacity;
  p.nominal_voltage = Volts(1.20);
  // Ni-MH discharge signature: steep knee near empty, long 1.2 V plateau,
  // small rise toward full (arXiv 0802.3053 Fig. 2 shape).
  p.ocv_vs_soc = PiecewiseLinearCurve::FromTable({{0.00, 1.00},
                                                  {0.05, 1.14},
                                                  {0.10, 1.18},
                                                  {0.25, 1.21},
                                                  {0.50, 1.23},
                                                  {0.75, 1.26},
                                                  {0.90, 1.31},
                                                  {1.00, 1.45}});
  // Moderate DCIR at AA/AAA scale; same Fig. 8c empty-end rise.
  double r_mid = 0.080 * (0.5 / ToAmpHours(capacity));
  p.dcir_vs_soc = DcirCurve(r_mid);
  FillRcPair(p, r_mid, 0.60, 40.0);
  p.max_discharge_current = p.CRate(2.0);
  p.max_charge_current = p.CRate(0.5);
  p.charge_cutoff_voltage = Volts(1.45);
  p.rated_cycle_count = 500.0;
  p.base_fade_per_cycle = 1.2e-4;
  p.fade_current_stress = 4.0;
  p.fade_reference_current = p.CRate(0.5);
  p.resistance_growth = 2.0;
  // The chemistry's defining weakness for always-on nodes: ~20%/month
  // self-discharge at room temperature.
  p.self_discharge_per_month = 0.20;
  p.calendar_fade_per_month = 0.003;
  FillPhysical(p, 300.0, 95.0, 0.08);
  return p;
}

std::vector<BatteryParams> MakeBatteryLibrary() {
  std::vector<BatteryParams> lib;
  lib.reserve(15);
  // Two Type 4 (bendable), watch scale.
  lib.push_back(MakeType4Bendable(MilliAmpHours(200.0), 0));
  lib.push_back(MakeType4Bendable(MilliAmpHours(350.0), 1));
  // Two Type 3 (fast charge), phone/tablet scale.
  lib.push_back(MakeType3FastCharge(MilliAmpHours(3000.0), 0));
  lib.push_back(MakeType3FastCharge(MilliAmpHours(4000.0), 1));
  // Eight Type 2 (standard), assorted sizes.
  lib.push_back(MakeType2Standard(MilliAmpHours(2000.0), 0));
  lib.push_back(MakeType2Standard(MilliAmpHours(2500.0), 1));
  lib.push_back(MakeType2Standard(MilliAmpHours(3000.0), 2));
  lib.push_back(MakeType2Standard(MilliAmpHours(3500.0), 3));
  lib.push_back(MakeType2Standard(MilliAmpHours(4000.0), 4));
  lib.push_back(MakeType2Standard(MilliAmpHours(4500.0), 5));
  lib.push_back(MakeType2Standard(MilliAmpHours(5000.0), 6));
  lib.push_back(MakeType2Standard(MilliAmpHours(5500.0), 7));
  // Three others: power cell, watch cell, high-energy tablet cell.
  lib.push_back(MakeType1PowerCell(MilliAmpHours(1500.0)));
  lib.push_back(MakeWatchLiIon(MilliAmpHours(200.0)));
  lib.push_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)));
  for (const auto& params : lib) {
    SDB_CHECK(params.Validate().ok());
  }
  return lib;
}

}  // namespace sdb

// Kalman state-of-charge estimator.
//
// Coulomb counting drifts; OCV inversion is noisy under load and blind in
// flat regions of the OCV curve. This scalar Kalman filter fuses both, the
// approach of the adaptive-EKF Thevenin literature the paper builds its
// emulator on (§4.3, refs [8,19]):
//
//   predict:  soc -= I*dt/Q            (process noise grows with throughput)
//   correct:  soc_meas = OCV^{-1}(V_term + I*R(soc))   (measurement noise
//             scaled by sensor noise and the local OCV slope — a flat curve
//             makes voltage nearly uninformative and the gain collapses)
#ifndef SRC_CHEM_SOC_ESTIMATOR_H_
#define SRC_CHEM_SOC_ESTIMATOR_H_

#include "src/chem/battery_params.h"
#include "src/util/units.h"

namespace sdb {

struct SocEstimatorConfig {
  double initial_variance = 0.04;        // (20% 1-sigma initial uncertainty)^2.
  double process_noise_per_c = 1e-9;     // SoC variance added per coulomb moved.
  double voltage_noise_v = 0.010;        // Terminal-voltage sensor noise (1 sigma).
  // Skip the correction step when |I| exceeds this (the IR estimate gets
  // too uncertain under heavy load, like production gauges do).
  Current max_correction_current = Amps(3.0);
};

class SocEstimator {
 public:
  SocEstimator(const BatteryParams* params, SocEstimatorConfig config, double initial_soc);

  // One filter step with the measured current (discharge positive) and
  // terminal voltage over `dt`, against the battery's current full
  // capacity.
  void Update(Current current, Voltage terminal_voltage, Charge capacity, Duration dt);

  double soc() const { return soc_; }
  double variance() const { return variance_; }

 private:
  const BatteryParams* params_;
  SocEstimatorConfig config_;
  double soc_;
  double variance_;
};

}  // namespace sdb

#endif  // SRC_CHEM_SOC_ESTIMATOR_H_

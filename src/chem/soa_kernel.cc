#include "src/chem/soa_kernel.h"

#include <atomic>

#include "src/chem/cell.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace sdb {
namespace soa {

namespace {

std::atomic<bool> g_batch_stepping{true};

obs::Counter& CellStepCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("sdb.chem.cell_steps");
  return *counter;
}

}  // namespace

void SetBatchStepping(bool enabled) {
  g_batch_stepping.store(enabled, std::memory_order_relaxed);
}

bool BatchStepping() { return g_batch_stepping.load(std::memory_order_relaxed); }

uint64_t TotalCellSteps() { return CellStepCounter().value(); }

void AddCellSteps(uint64_t n) { CellStepCounter().Increment(n); }

size_t CellLanes::AddLane(const Cell& cell) {
  size_t lane = params_.size();
  params_.push_back(cell.lane_params());
  state_.push_back(LaneState{});
  requests_.push_back(LaneRequest{});
  results_.push_back(RawStepResult{});
  Gather(lane, cell);
  return lane;
}

void CellLanes::Gather(size_t lane, const Cell& cell) {
  SDB_CHECK(lane < size());
  state_[lane] = cell.ExportLaneState();
}

void CellLanes::Scatter(size_t lane, Cell* cell) const {
  SDB_CHECK(lane < size());
  SDB_CHECK(cell != nullptr);
  cell->ImportLaneState(state_[lane]);
}

void CellLanes::ClearRequests() {
  for (auto& r : requests_) {
    r = LaneRequest{};
  }
}

void CellLanes::AdvanceBatch(double dt_s) {
  const size_t n = size();
  uint64_t stepped = 0;
  for (size_t l = 0; l < n; ++l) {
    if (requests_[l].op == LaneOp::kIdle) {
      results_[l] = RawStepResult{};
      continue;
    }
    LaneState& s = state_[l];
    results_[l] = StepLaneOnce(params_[l], s.electrical, s.aging, s.thermal, s.total_loss_j,
                               requests_[l].op, requests_[l].magnitude, dt_s);
    ++stepped;
  }
  if (stepped > 0) {
    AddCellSteps(stepped);
  }
}

}  // namespace soa
}  // namespace sdb

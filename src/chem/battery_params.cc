#include "src/chem/battery_params.h"

#include <algorithm>
#include <cmath>

#include "src/util/numeric.h"

namespace sdb {

std::string_view ChemistryName(Chemistry chemistry) {
  switch (chemistry) {
    case Chemistry::kType1HighPower:
      return "Type1-LiFePO4-HighPower";
    case Chemistry::kType2Standard:
      return "Type2-CoO2-Standard";
    case Chemistry::kType3FastCharge:
      return "Type3-CoO2-FastCharge";
    case Chemistry::kType4Bendable:
      return "Type4-Ceramic-Bendable";
    case Chemistry::kNiMh:
      return "NiMH-Ambient";
  }
  return "Unknown";
}

Current BatteryParams::CRate(double c_rate) const {
  // 1C drains nominal capacity in one hour.
  return Amps(c_rate * ToAmpHours(nominal_capacity));
}

Energy BatteryParams::NominalEnergy() const {
  return Joules(nominal_voltage.value() * nominal_capacity.value());
}

double BatteryParams::EnergyDensityWhPerLitre(bool swollen) const {
  double litres = ToLitres(volume);
  if (swollen) {
    litres *= 1.0 + fast_charge_swelling;
  }
  return ToWattHours(NominalEnergy()) / litres;
}

double BatteryParams::EnergyDensityWhPerKg() const {
  return ToWattHours(NominalEnergy()) / mass.value();
}

Status BatteryParams::Validate() const {
  if (name.empty()) {
    return InvalidArgumentError("battery needs a name");
  }
  if (nominal_capacity.value() <= 0.0) {
    return InvalidArgumentError(name + ": capacity must be positive");
  }
  if (nominal_voltage.value() <= 0.0) {
    return InvalidArgumentError(name + ": nominal voltage must be positive");
  }
  if (ocv_vs_soc.points().size() < 2 || dcir_vs_soc.points().size() < 2) {
    return InvalidArgumentError(name + ": characteristic curves missing");
  }
  if (ocv_vs_soc.min_x() > 0.0 || ocv_vs_soc.max_x() < 1.0) {
    return InvalidArgumentError(name + ": OCV curve must span SoC [0,1]");
  }
  if (dcir_vs_soc.min_x() > 0.0 || dcir_vs_soc.max_x() < 1.0) {
    return InvalidArgumentError(name + ": DCIR curve must span SoC [0,1]");
  }
  if (!ocv_vs_soc.IsMonotoneIncreasing()) {
    // Paper Fig. 8(b): OCP increases with state of charge.
    return InvalidArgumentError(name + ": OCV curve must be non-decreasing in SoC");
  }
  if (dcir_vs_soc.min_y() <= 0.0) {
    return InvalidArgumentError(name + ": DCIR must be positive");
  }
  if (concentration_resistance.value() < 0.0 || plate_capacitance.value() <= 0.0) {
    return InvalidArgumentError(name + ": RC pair parameters invalid");
  }
  if (max_discharge_current.value() <= 0.0 || max_charge_current.value() <= 0.0) {
    return InvalidArgumentError(name + ": current limits must be positive");
  }
  if (rated_cycle_count <= 0.0) {
    return InvalidArgumentError(name + ": rated cycle count must be positive");
  }
  if (fade_reference_current.value() <= 0.0) {
    return InvalidArgumentError(name + ": fade reference current must be positive");
  }
  if (volume.value() <= 0.0 || mass.value() <= 0.0) {
    return InvalidArgumentError(name + ": physical dimensions must be positive");
  }
  return Status::Ok();
}

namespace {

// Maps `value` within [lo, hi] to a 0-10 score (clamped, optionally inverted).
double AxisScore(double value, double lo, double hi, bool invert = false) {
  double t = Clamp((value - lo) / (hi - lo), 0.0, 1.0);
  if (invert) {
    t = 1.0 - t;
  }
  return 10.0 * t;
}

}  // namespace

ChemistryAxisScores ScoreAxes(const BatteryParams& params) {
  ChemistryAxisScores scores;
  // Power density: sustained discharge C-rate capability.
  double discharge_c = params.max_discharge_current.value() /
                       Amps(ToAmpHours(params.nominal_capacity)).value();
  scores.power_density = AxisScore(discharge_c, 0.5, 10.0);
  // Energy density: Wh/l against the range the paper quotes (300-600).
  scores.energy_density = AxisScore(params.EnergyDensityWhPerLitre(), 250.0, 620.0);
  // Affordability: $/Wh, lower is better.
  double usd_per_wh = params.cost_usd / ToWattHours(params.NominalEnergy());
  scores.affordability = AxisScore(usd_per_wh, 0.1, 1.2, /*invert=*/true);
  // Longevity: rated cycle count.
  scores.longevity = AxisScore(params.rated_cycle_count, 300.0, 2500.0);
  // Efficiency: mid-SoC DCIR normalised by capacity (ohm * Ah), lower is better.
  double ohm_ah = params.dcir_vs_soc.Evaluate(0.5) * ToAmpHours(params.nominal_capacity);
  scores.efficiency = AxisScore(ohm_ah, 0.02, 0.6, /*invert=*/true);
  // Flexibility: bend radius (0 == rigid scores 0; smaller positive radius is better).
  if (params.bend_radius_mm <= 0.0) {
    scores.form_factor_flexibility = 0.0;
  } else {
    scores.form_factor_flexibility = AxisScore(params.bend_radius_mm, 5.0, 100.0, /*invert=*/true);
  }
  return scores;
}

}  // namespace sdb

// A complete battery cell: Thevenin electrical model + aging + thermal,
// driven by terminal-level charge/discharge requests. This is the unit the
// SDB hardware multiplexes and the unit the runtime's policies reason about.
#ifndef SRC_CHEM_CELL_H_
#define SRC_CHEM_CELL_H_

#include <memory>
#include <string>

#include "src/chem/aging.h"
#include "src/chem/battery_params.h"
#include "src/chem/soa_kernel.h"
#include "src/chem/thermal.h"
#include "src/chem/thevenin.h"
#include "src/util/units.h"

namespace sdb {

// Snapshot of everything the fuel gauge / runtime can observe about a cell.
struct CellStatus {
  std::string name;
  double soc = 0.0;
  Voltage terminal_voltage;
  Voltage open_circuit_voltage;
  Resistance internal_resistance;
  Charge effective_capacity;
  double capacity_factor = 1.0;
  double cycle_count = 0.0;
  double wear_ratio = 0.0;
  Temperature temperature;
  Energy total_loss;
};

class Cell {
 public:
  // Takes ownership of a copy of the params; `initial_soc` in [0, 1].
  Cell(BatteryParams params, double initial_soc);

  // Movable but not copyable (internal models hold pointers into params_).
  Cell(Cell&& other) noexcept;
  Cell& operator=(Cell&& other) noexcept;
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  // --- Stepping -------------------------------------------------------------
  // All step functions advance aging and thermal state and return the
  // realised electrical outcome (which may be clamped; see StepResult).

  StepResult StepDischargePower(Power power, Duration dt);

  // Advances idle time: self-discharge leaks SoC and calendar fade shaves
  // capacity, with no terminal current (the shelf/standby path).
  void AdvanceIdle(Duration dt);

  StepResult StepDischargeCurrent(Current current, Duration dt);
  StepResult StepChargePower(Power power, Duration dt);
  StepResult StepChargeCurrent(Current current, Duration dt);

  // --- Observers ------------------------------------------------------------

  double soc() const { return electrical_.soc(); }
  void set_soc(double soc) { electrical_.set_soc(soc); }

  // Current full-charge capacity after fade.
  Charge EffectiveCapacity() const;
  // Remaining extractable charge right now (SoC * effective capacity).
  Charge RemainingCharge() const;
  // Remaining chemical energy, integrating OCV over the remaining SoC range.
  Energy RemainingEnergy() const;

  Voltage OpenCircuitVoltage() const { return electrical_.OpenCircuitVoltage(); }
  // Terminal voltage with no load applied (OCV minus the RC transient).
  Voltage NoLoadVoltage() const { return electrical_.TerminalVoltageAt(Amps(0.0)); }
  Resistance InternalResistance() const { return electrical_.InternalResistance(); }
  double DcirSlope() const { return electrical_.DcirSlope(); }
  Power MaxDischargePower() const;
  Power MaxChargePower() const;

  bool IsEmpty(double threshold = 1e-4) const { return soc() <= threshold; }
  bool IsFull(double threshold = 1.0 - 1e-4) const { return soc() >= threshold; }

  CellStatus GetStatus() const;

  const BatteryParams& params() const { return *params_; }
  const AgingModel& aging() const { return aging_; }
  const ThermalModel& thermal() const { return thermal_; }
  // Fault injection for tests and thermal-derating experiments.
  ThermalModel& mutable_thermal() { return thermal_; }

  // Cumulative resistive losses across the cell's lifetime.
  Energy total_loss() const { return Joules(total_loss_j_); }

  // --- SoA kernel access (soa_kernel.h) -------------------------------------
  // The step methods above are a single-lane facade over soa::StepLaneOnce;
  // these hooks let CellLanes gather/scatter the same state, so batch and
  // facade stepping are bit-identical and round-trips are lossless.
  const soa::LaneParams& lane_params() const { return lane_params_; }
  soa::LaneState ExportLaneState() const;
  void ImportLaneState(const soa::LaneState& state);

 private:
  // One facade step through the shared kernel (SyncAging + electrical step
  // + accounting, exactly as StepLaneOnce orders them).
  StepResult RunLaneOp(soa::LaneOp op, double magnitude, Duration dt);
  // Re-syncs the electrical model's resistance multiplier from aging.
  void SyncAging();

  std::unique_ptr<BatteryParams> params_;  // Stable address for sub-models.
  TheveninModel electrical_;
  AgingModel aging_;
  ThermalModel thermal_;
  soa::LaneParams lane_params_;  // Curve pointers target *params_ (stable).
  double total_loss_j_ = 0.0;
};

}  // namespace sdb

#endif  // SRC_CHEM_CELL_H_

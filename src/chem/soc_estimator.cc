#include "src/chem/soc_estimator.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

SocEstimator::SocEstimator(const BatteryParams* params, SocEstimatorConfig config,
                           double initial_soc)
    : params_(params), config_(config) {
  SDB_CHECK(params_ != nullptr);
  SDB_CHECK(config_.initial_variance > 0.0);
  soc_ = Clamp(initial_soc, 0.0, 1.0);
  variance_ = config_.initial_variance;
}

void SocEstimator::Update(Current current, Voltage terminal_voltage, Charge capacity,
                          Duration dt) {
  double i = current.value();
  double dt_s = dt.value();
  double cap = capacity.value();
  SDB_CHECK(dt_s > 0.0);
  SDB_CHECK(cap > 0.0);

  // --- Predict: coulomb counting with throughput-scaled process noise.
  soc_ = Clamp(soc_ - i * dt_s / cap, 0.0, 1.0);
  variance_ += config_.process_noise_per_c * std::fabs(i) * dt_s;

  // --- Correct: invert the OCV curve through the IR model.
  if (std::fabs(i) > config_.max_correction_current.value()) {
    return;
  }
  double r0 = params_->dcir_vs_soc.Evaluate(soc_);
  double ocv_inferred = terminal_voltage.value() + i * r0;
  StatusOr<double> soc_meas = params_->ocv_vs_soc.SolveForX(
      Clamp(ocv_inferred, params_->ocv_vs_soc.min_y(), params_->ocv_vs_soc.max_y()));
  if (!soc_meas.ok()) {
    return;
  }

  // Measurement variance in SoC units: sensor noise divided by the local
  // OCV slope (V per SoC). A flat curve makes the measurement useless.
  double slope = params_->ocv_vs_soc.Derivative(soc_);
  constexpr double kMinSlope = 1e-3;
  if (slope < kMinSlope) {
    slope = kMinSlope;
  }
  double sigma_soc = config_.voltage_noise_v / slope;
  double r_meas = sigma_soc * sigma_soc;

  double gain = variance_ / (variance_ + r_meas);
  soc_ = Clamp(soc_ + gain * (*soc_meas - soc_), 0.0, 1.0);
  variance_ *= 1.0 - gain;
}

}  // namespace sdb

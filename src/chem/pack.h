// Battery packs: collections of cells plus the *traditional* (non-SDB)
// interconnection baselines the paper compares against (§1, §6):
//   * parallel chains — cells share a terminal voltage, currents split
//     inversely with internal resistance, no software control;
//   * series chains — cells carry identical current, voltages add;
//   * either/or switching — exactly one battery powers the load at a time.
// The SDB hardware (src/hw) replaces these with per-cell power ratios.
#ifndef SRC_CHEM_PACK_H_
#define SRC_CHEM_PACK_H_

#include <vector>

#include "src/chem/cell.h"
#include "src/chem/soa_kernel.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// Outcome of a pack-level step.
struct PackStepResult {
  Power delivered;            // Power that reached the load.
  Power requested;            // What the load asked for.
  Energy energy_lost;         // Total resistive loss across cells this step.
  std::vector<Current> cell_currents;
  bool shortfall = false;     // True when the pack could not meet the request.
};

// A set of heterogeneous cells. Connection semantics are supplied by the
// step functions; the container itself is topology-agnostic.
class BatteryPack {
 public:
  BatteryPack() = default;

  void AddCell(Cell cell);

  size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }
  Cell& cell(size_t i);
  const Cell& cell(size_t i) const;

  // Aggregate observers.
  Charge TotalRemainingCharge() const;
  Energy TotalRemainingEnergy() const;
  Energy TotalLoss() const;
  bool AllEmpty(double threshold = 1e-4) const;
  bool AllFull(double threshold = 1.0 - 1e-4) const;

  // Open-circuit dropout (fault injection): an open battery is electrically
  // disconnected — it neither sources nor accepts power — until the flag
  // clears. The hw layer drives these from its FaultInjector; chem stays
  // free of hw dependencies by holding plain flags.
  void SetOpenCircuit(size_t i, bool open);
  bool IsOpenCircuit(size_t i) const;
  bool AnyOpenCircuit() const;

  // --- SDB batched stepping --------------------------------------------------

  // Steps every cell through the SoA kernel in one AdvanceBatch call: lane i
  // of `requests` drives cell i. Open-circuit cells are forced to kIdle (no
  // current flows into a disconnected lane) regardless of the request,
  // mirroring the scalar circuits, which never step a disconnected cell.
  // Idle lanes are untouched. Bit-identical to calling the cells' Step*
  // methods in index order (they share one kernel; DESIGN.md §12). Results
  // stay readable via lane_result(i) until the next StepLanes call.
  void StepLanes(const std::vector<soa::LaneRequest>& requests, Duration dt);
  const soa::RawStepResult& lane_result(size_t i) const { return lanes_.result(i); }

  // --- Traditional interconnect baselines -----------------------------------

  // Parallel chain: solves the shared terminal voltage V such that the cell
  // currents (OCV_i - V_rc_i - V)/R0_i sum to the load current implied by
  // `power`, then steps every cell at its share. Cells at 0% SoC drop out.
  PackStepResult StepParallelDischarge(Power power, Duration dt);

  // Series chain: one current flows through every cell; the chain voltage is
  // the sum of terminal voltages. Discharge ends when any cell empties.
  PackStepResult StepSeriesDischarge(Power power, Duration dt);

  // Either/or switching: the lowest-index non-empty cell carries the whole
  // load (how pre-SDB multi-battery products behave, §6).
  PackStepResult StepEitherOrDischarge(Power power, Duration dt);

 private:
  std::vector<Cell> cells_;
  std::vector<bool> open_circuit_;
  // Lazily (re)built scratch lanes for StepLanes. Dynamic cell state is
  // re-gathered every call (cells also move through scalar paths); keeping
  // the container avoids re-unpacking parameters each tick.
  soa::CellLanes lanes_;
};

}  // namespace sdb

#endif  // SRC_CHEM_PACK_H_

// Battery aging: cycle counting and capacity fade.
//
// Cycle counting follows the paper's §5.1 rule: a cumulative-charge counter
// accumulates charged coulombs; every time it crosses 80% of the *current*
// capacity, the cycle count increments and the counter resets. Each counted
// cycle removes capacity according to a current-stress model calibrated to
// paper Figure 1(b): fade per cycle grows quadratically with the charge
// current relative to a chemistry-specific reference,
//
//   fade(I) = base_fade * (1 + stress * (I / I_ref)^2).
//
// DCIR grows in proportion to lost capacity (ion-blocking cracks raise the
// separator/electrode resistance, paper §2.1).
#ifndef SRC_CHEM_AGING_H_
#define SRC_CHEM_AGING_H_

#include "src/chem/battery_params.h"
#include "src/chem/soa_kernel.h"
#include "src/util/units.h"

namespace sdb {

// Facade over the soa kernel's aging primitives (soa_kernel.h): throughput
// recording delegates to the same inline code the batch lanes run.
class AgingModel {
 public:
  explicit AgingModel(const BatteryParams* params);

  // Records `charge` coulombs pushed into the battery at magnitude `current`.
  // May increment the cycle count (possibly several times for a large dose).
  void RecordCharge(Charge charge, Current current);

  // Discharge throughput is tracked for statistics; under the paper's rule it
  // does not advance the cycle counter directly.
  void RecordDischarge(Charge charge, Current current);

  // Calendar aging: shelf fade for `dt` of elapsed time, independent of
  // throughput.
  void AdvanceCalendar(Duration dt);

  // Fraction of original capacity still available, in (0, 1].
  double capacity_factor() const { return state_.capacity_factor; }

  // Multiplier on the fresh DCIR curve, >= 1.
  double resistance_factor() const {
    return 1.0 + params_->resistance_growth * (1.0 - state_.capacity_factor);
  }

  // Completed charge cycles (paper's cc_i).
  double cycle_count() const { return state_.cycle_count; }

  // Wear ratio lambda_i = cc_i / chi_i (paper §3.3).
  double wear_ratio() const { return state_.cycle_count / params_->rated_cycle_count; }

  // Cumulative charged fraction toward the next cycle increment, in [0, 0.8).
  double partial_cycle_fraction() const;

  // Lifetime throughput statistics (coulombs).
  Charge total_charge_in() const { return Charge(state_.total_charge_in_c); }
  Charge total_charge_out() const { return Charge(state_.total_charge_out_c); }

  // Longevity score as the paper reports it: % of original capacity.
  double longevity_percent() const { return 100.0 * state_.capacity_factor; }

  const BatteryParams& params() const { return *params_; }

  // SoA-lane access for the Cell facade and gather/scatter (soa_kernel.h).
  soa::AgingState& kernel_state() { return state_; }
  const soa::AgingState& kernel_state() const { return state_; }

 private:
  const BatteryParams* params_;
  soa::AgingState state_;
};

}  // namespace sdb

#endif  // SRC_CHEM_AGING_H_

// Lumped thermal model and the heat-loss accounting behind paper Fig. 1(c).
//
// Resistive losses heat the cell; a single thermal mass with a conductance
// to ambient integrates temperature. The quantity the paper plots —
// "internal heat loss %" at a given discharge C-rate — is the fraction of
// chemical energy dissipated in R0 + R_c at that steady current.
#ifndef SRC_CHEM_THERMAL_H_
#define SRC_CHEM_THERMAL_H_

#include "src/chem/battery_params.h"
#include "src/chem/soa_kernel.h"
#include "src/util/units.h"

namespace sdb {

// Facade over the soa kernel's thermal primitive (soa_kernel.h): Step runs
// the same inline code the batch lanes run.
class ThermalModel {
 public:
  // heat_capacity: J/K of the cell; thermal_conductance: W/K to ambient.
  ThermalModel(double heat_capacity_j_per_k, double thermal_conductance_w_per_k,
               Temperature ambient);

  // Integrates one step with `heat` joules of resistive dissipation.
  void Step(Energy heat, Duration dt);

  Temperature temperature() const { return Temperature(state_.temp_k); }
  Temperature ambient() const { return Temperature(ambient_k_); }

  double heat_capacity_j_per_k() const { return heat_capacity_; }
  double conductance_w_per_k() const { return conductance_; }

  // Total heat absorbed so far.
  Energy total_heat() const { return Joules(state_.total_heat_j); }

  void ResetTemperature();

  // Test/fault-injection hook: force the cell temperature.
  void set_temperature(Temperature t) { state_.temp_k = t.value(); }

  // SoA-lane access for the Cell facade and gather/scatter (soa_kernel.h).
  soa::ThermalState& kernel_state() { return state_; }
  const soa::ThermalState& kernel_state() const { return state_; }

 private:
  double heat_capacity_;
  double conductance_;
  double ambient_k_;
  soa::ThermalState state_;
};

// Steady-state internal heat-loss percentage when the battery described by
// `params` (at `soc`, 100% health) is drained at `c_rate` — the y-axis of
// paper Figure 1(c). Loss% = I*(R0+Rc)/OCV * 100 at the implied current.
double HeatLossPercentAtCRate(const BatteryParams& params, double c_rate, double soc = 0.5);

}  // namespace sdb

#endif  // SRC_CHEM_THERMAL_H_

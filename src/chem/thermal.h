// Lumped thermal model and the heat-loss accounting behind paper Fig. 1(c).
//
// Resistive losses heat the cell; a single thermal mass with a conductance
// to ambient integrates temperature. The quantity the paper plots —
// "internal heat loss %" at a given discharge C-rate — is the fraction of
// chemical energy dissipated in R0 + R_c at that steady current.
#ifndef SRC_CHEM_THERMAL_H_
#define SRC_CHEM_THERMAL_H_

#include "src/chem/battery_params.h"
#include "src/util/units.h"

namespace sdb {

class ThermalModel {
 public:
  // heat_capacity: J/K of the cell; thermal_conductance: W/K to ambient.
  ThermalModel(double heat_capacity_j_per_k, double thermal_conductance_w_per_k,
               Temperature ambient);

  // Integrates one step with `heat` joules of resistive dissipation.
  void Step(Energy heat, Duration dt);

  Temperature temperature() const { return Temperature(temp_k_); }
  Temperature ambient() const { return Temperature(ambient_k_); }

  // Total heat absorbed so far.
  Energy total_heat() const { return Joules(total_heat_j_); }

  void ResetTemperature();

  // Test/fault-injection hook: force the cell temperature.
  void set_temperature(Temperature t) { temp_k_ = t.value(); }

 private:
  double heat_capacity_;
  double conductance_;
  double ambient_k_;
  double temp_k_;
  double total_heat_j_ = 0.0;
};

// Steady-state internal heat-loss percentage when the battery described by
// `params` (at `soc`, 100% health) is drained at `c_rate` — the y-axis of
// paper Figure 1(c). Loss% = I*(R0+Rc)/OCV * 100 at the implied current.
double HeatLossPercentAtCRate(const BatteryParams& params, double c_rate, double soc = 0.5);

}  // namespace sdb

#endif  // SRC_CHEM_THERMAL_H_

#include "src/os/battery_service.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

BatteryService::BatteryService(SdbRuntime* runtime, BatteryServiceConfig config)
    : runtime_(runtime), config_(config) {
  SDB_CHECK(runtime_ != nullptr);
  SDB_CHECK(config_.load_ewma_alpha > 0.0 && config_.load_ewma_alpha <= 1.0);
}

void BatteryService::Observe(Power net_load, Duration dt) {
  SDB_CHECK(dt.value() > 0.0);
  charging_ = net_load.value() < 0.0;
  Power magnitude = Abs(net_load);
  if (!has_load_sample_) {
    load_ewma_ = magnitude;
    has_load_sample_ = true;
  } else {
    load_ewma_ += (magnitude - load_ewma_) * config_.load_ewma_alpha;
  }
}

double BatteryService::StoredFraction() const {
  BatteryViews views = runtime_->BuildViews();
  Charge stored;
  Charge total;
  for (const BatteryView& v : views) {
    stored += v.capacity * v.soc;
    total += v.capacity;
  }
  return total.value() > 0.0 ? Ratio(stored, total) : 0.0;
}

BatteryReadout BatteryService::Read() const {
  BatteryReadout readout;
  double fraction = StoredFraction();
  readout.raw_fraction = fraction;

  // Hysteresis: move the displayed percentage only when the raw value has
  // clearly left the shown bucket.
  int raw_percent = static_cast<int>(std::lround(fraction * 100.0));
  if (shown_percent_ < 0) {
    shown_percent_ = raw_percent;
  } else {
    double shown_fraction = shown_percent_ / 100.0;
    if (std::fabs(fraction - shown_fraction) > 0.01 + config_.display_hysteresis) {
      shown_percent_ = raw_percent;
    }
  }
  readout.percent = shown_percent_;

  if (has_load_sample_ && load_ewma_.value() > 1e-6) {
    BatteryViews views = runtime_->BuildViews();
    if (charging_) {
      Energy missing;
      for (const BatteryView& v : views) {
        missing += v.capacity * v.ocv * (1.0 - v.soc);
      }
      readout.time_to_full = missing / load_ewma_;
    } else {
      Energy remaining;
      for (const BatteryView& v : views) {
        remaining += v.remaining_energy;
      }
      readout.time_to_empty = remaining / load_ewma_;
    }
  }
  return readout;
}

StatusOr<ChargePlan> BatteryService::ScheduleAdaptiveCharge(Duration until_unplug,
                                                            double target_soc) {
  BatteryViews views = runtime_->BuildViews();
  std::vector<ChargeGoal> goals;
  goals.reserve(views.size());
  for (const BatteryView& v : views) {
    ChargeGoal goal;
    goal.params = &runtime_->microcontroller()->pack().cell(v.index).params();
    goal.current_soc = v.soc;
    goal.target_soc = Clamp(target_soc, v.soc, 1.0);
    goals.push_back(goal);
  }
  StatusOr<ChargePlan> plan = PlanCharge(goals, until_unplug, config_.planner);
  if (!plan.ok()) {
    return plan;
  }

  // Translate the plan's aggressiveness into the charging directive: the
  // fraction of max rate the bottleneck battery must run at.
  double aggressiveness = 0.0;
  for (size_t i = 0; i < plan->entries.size(); ++i) {
    const BatteryParams& p = *goals[i].params;
    double max_rate = p.max_charge_current.value() /
                      Amps(ToAmpHours(p.nominal_capacity)).value();
    if (max_rate > 0.0) {
      aggressiveness = std::max(aggressiveness, plan->entries[i].c_rate / max_rate);
    }
  }
  runtime_->SetChargingDirective(aggressiveness);
  return plan;
}

}  // namespace sdb

// User-schedule predictor (paper §5.2/§7): "mobile OSes that are aware of a
// user's day-to-day schedule may be able to provide better battery life" —
// the OS learns when high-power workloads (a run, an evening gaming
// session) tend to happen and hands the SDB Runtime a WorkloadHint ahead of
// time. Stands in for the Siri/Cortana/Google Now integration the paper
// describes as future work.
#ifndef SRC_OS_PREDICTOR_H_
#define SRC_OS_PREDICTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/workload_aware.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// Learned schedule state for checkpoint/restore: the observed-day count and
// the 24 per-hour recurrence accumulators, flattened into parallel vectors
// (wire-friendly; always exactly 24 entries).
struct PredictorState {
  int64_t days = 0;
  std::vector<int64_t> high_days;
  std::vector<double> power_sum_w;
};

struct PredictorConfig {
  // How far ahead a predicted event produces a hint.
  Duration lookahead = Hours(12.0);
  // Fraction of observed days an hour must exceed the power threshold in
  // before it is treated as a recurring high-power slot.
  double recurrence_threshold = 0.5;
  // Mean hourly power above which an hour counts as "high power".
  Power high_power_threshold = Watts(0.5);
};

class UserSchedulePredictor {
 public:
  explicit UserSchedulePredictor(PredictorConfig config = {});

  // Feeds one observed day: 24 mean-power samples, one per hour.
  void ObserveDay(const std::vector<Power>& hourly_mean_power);

  // Number of days observed so far.
  int days_observed() const { return days_; }

  // The hint for the next predicted high-power slot after `time_of_day`
  // (wrapping past midnight), or nullopt if nothing recurring is known.
  std::optional<WorkloadHint> PredictNext(Duration time_of_day) const;

  // Recurring high-power hours learned so far (0-23).
  std::vector<int> RecurringHours() const;

  // Checkpoint/restore of the learned schedule. Restore rejects vectors not
  // sized for 24 hours.
  PredictorState SaveState() const;
  [[nodiscard]] Status RestoreState(const PredictorState& state);

 private:
  PredictorConfig config_;
  int days_ = 0;
  // Per hour: how many observed days exceeded the threshold, and the mean
  // power on those days.
  struct HourStats {
    int high_days = 0;
    Power power_sum;
  };
  HourStats hours_[24] = {};
};

}  // namespace sdb

#endif  // SRC_OS_PREDICTOR_H_

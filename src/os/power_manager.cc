#include "src/os/power_manager.h"

#include "src/util/check.h"

namespace sdb {

OsPowerManager::OsPowerManager(SdbRuntime* runtime, PolicyDatabase db,
                               UserSchedulePredictor* predictor)
    : runtime_(runtime), db_(std::move(db)), predictor_(predictor), situation_("interactive") {
  SDB_CHECK(runtime_ != nullptr);
  auto params = db_.Lookup(situation_);
  if (params.ok()) {
    runtime_->SetDirectives(*params);
  }
}

Status OsPowerManager::SetSituation(const std::string& situation) {
  StatusOr<DirectiveParameters> params = db_.Lookup(situation);
  if (!params.ok()) {
    return params.status();
  }
  situation_ = situation;
  runtime_->SetDirectives(*params);
  return Status::Ok();
}

PerfLevel OsPowerManager::ChoosePerfLevel(const Task& task) const {
  return task.NetworkBound() ? PerfLevel::kLow : PerfLevel::kHigh;
}

void OsPowerManager::ObservePower(Power power) {
  classifier_.Observe(power);
  std::string suggested = classifier_.SuggestedSituation();
  if (suggested == situation_) {
    pending_count_ = 0;
    return;
  }
  if (suggested == pending_situation_) {
    ++pending_count_;
  } else {
    pending_situation_ = suggested;
    pending_count_ = 1;
  }
  if (pending_count_ >= debounce_ && db_.Contains(suggested)) {
    (void)SetSituation(suggested);
    pending_count_ = 0;
  }
}

void OsPowerManager::PollPredictor(Duration time_of_day) {
  if (predictor_ == nullptr) {
    return;
  }
  runtime_->SetWorkloadHint(predictor_->PredictNext(time_of_day));
}

}  // namespace sdb

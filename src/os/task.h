// Task model for the Fig. 12 experiment: the two extreme users the paper
// contrasts — one running network-facing applications (email, browsing,
// calls) and one hammering CPU/GPU (gaming, development). A task is compute
// cycles plus non-overlappable network wait.
#ifndef SRC_OS_TASK_H_
#define SRC_OS_TASK_H_

#include <string>
#include <vector>

namespace sdb {

struct Task {
  std::string name;
  double compute_gcycles = 0.0;   // CPU work.
  double network_seconds = 0.0;   // Time blocked on the network.

  // A task is network-bottlenecked when its network wait dominates its
  // compute time at nominal (2 GHz) frequency.
  bool NetworkBound() const { return network_seconds > compute_gcycles / 2.0; }
};

// The network-facing user's mix: email sync, browsing, social feeds,
// audio/video calls.
std::vector<Task> MakeNetworkBoundTasks();

// The local-compute user's mix: integer/floating benchmarks, rendering,
// fractals, GPU compute (the PassMark/3DMark-style kernels the paper cites).
std::vector<Task> MakeComputeBoundTasks();

}  // namespace sdb

#endif  // SRC_OS_TASK_H_

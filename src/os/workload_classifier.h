// Online workload classification: the paper's runtime "monitors the
// applications, the charging and discharging behavior of the users, and
// accordingly sets policies" (§3.1). This component watches the recent
// power draw and classifies the device's current regime; the power manager
// maps the regime to a policy-database situation without anyone having to
// announce what they are doing.
#ifndef SRC_OS_WORKLOAD_CLASSIFIER_H_
#define SRC_OS_WORKLOAD_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/util/ring_buffer.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

enum class WorkloadClass {
  kIdle,         // Standby-level draw.
  kInteractive,  // Bursty medium draw (browsing, messaging).
  kSustained,    // Flat high draw (video, navigation, games).
  kPeak,         // Near the platform's power ceiling (turbo, GPS tracking).
};

std::string_view WorkloadClassName(WorkloadClass klass);

struct WorkloadClassifierConfig {
  size_t window = 60;             // Samples retained.
  Power idle_threshold = Watts(0.5);
  Power sustained_threshold = Watts(6.0);
  Power peak_threshold = Watts(18.0);
  // Coefficient-of-variation above which a medium draw counts as bursty
  // (interactive) rather than sustained.
  double burstiness_cv = 0.5;
};

class WorkloadClassifier {
 public:
  explicit WorkloadClassifier(WorkloadClassifierConfig config = {});

  // Feeds one observed power sample.
  void Observe(Power power);

  // Classification over the retained window (kIdle until samples arrive).
  WorkloadClass Classify() const;

  // Window statistics backing the classification.
  Power MeanPower() const;
  double PowerCv() const;  // Coefficient of variation (stddev / mean).

  size_t samples() const { return window_.size(); }

  // The policy-database situation this regime maps to (see
  // MakeDefaultPolicyDatabase): idle -> "overnight"-style wear protection,
  // interactive -> "interactive", sustained -> "low-battery" stretching,
  // peak -> "performance".
  std::string SuggestedSituation() const;

  // Checkpoint/restore of the rolling window: samples in watts, oldest
  // first. Restore rejects more samples than the configured window holds.
  std::vector<double> SaveState() const;
  [[nodiscard]] Status RestoreState(const std::vector<double>& samples_w);

 private:
  WorkloadClassifierConfig config_;
  RingBuffer<double> window_;
};

}  // namespace sdb

#endif  // SRC_OS_WORKLOAD_CLASSIFIER_H_

#include "src/os/predictor.h"

#include <string>

#include "src/util/check.h"

namespace sdb {

UserSchedulePredictor::UserSchedulePredictor(PredictorConfig config) : config_(config) {
  SDB_CHECK(config_.recurrence_threshold > 0.0 && config_.recurrence_threshold <= 1.0);
}

void UserSchedulePredictor::ObserveDay(const std::vector<Power>& hourly_mean_power) {
  SDB_CHECK(hourly_mean_power.size() == 24);
  ++days_;
  for (int h = 0; h < 24; ++h) {
    if (hourly_mean_power[h] >= config_.high_power_threshold) {
      hours_[h].high_days += 1;
      hours_[h].power_sum += hourly_mean_power[h];
    }
  }
}

std::vector<int> UserSchedulePredictor::RecurringHours() const {
  std::vector<int> recurring;
  if (days_ == 0) {
    return recurring;
  }
  for (int h = 0; h < 24; ++h) {
    double fraction = static_cast<double>(hours_[h].high_days) / days_;
    if (fraction >= config_.recurrence_threshold) {
      recurring.push_back(h);
    }
  }
  return recurring;
}

PredictorState UserSchedulePredictor::SaveState() const {
  PredictorState state;
  state.days = days_;
  state.high_days.reserve(24);
  state.power_sum_w.reserve(24);
  for (int h = 0; h < 24; ++h) {
    state.high_days.push_back(hours_[h].high_days);
    state.power_sum_w.push_back(hours_[h].power_sum.value());
  }
  return state;
}

Status UserSchedulePredictor::RestoreState(const PredictorState& state) {
  if (state.high_days.size() != 24 || state.power_sum_w.size() != 24) {
    return InvalidArgumentError("predictor: snapshot must carry exactly 24 hour slots, got " +
                                std::to_string(state.high_days.size()));
  }
  days_ = static_cast<int>(state.days);
  for (int h = 0; h < 24; ++h) {
    hours_[h].high_days = static_cast<int>(state.high_days[h]);
    hours_[h].power_sum = Watts(state.power_sum_w[h]);
  }
  return Status::Ok();
}

std::optional<WorkloadHint> UserSchedulePredictor::PredictNext(Duration time_of_day) const {
  std::vector<int> recurring = RecurringHours();
  if (recurring.empty()) {
    return std::nullopt;
  }
  double now_h = ToHours(time_of_day);
  // Find the next recurring hour at or after `now_h`, wrapping daily.
  double best_delta = 48.0;
  int best_hour = -1;
  for (int h : recurring) {
    double delta = h - now_h;
    if (delta < 0.0) {
      delta += 24.0;
    }
    if (delta < best_delta) {
      best_delta = delta;
      best_hour = h;
    }
  }
  if (best_hour < 0 || Hours(best_delta) > config_.lookahead) {
    return std::nullopt;
  }
  Power mean_power =
      hours_[best_hour].high_days > 0
          ? hours_[best_hour].power_sum / static_cast<double>(hours_[best_hour].high_days)
          : config_.high_power_threshold;
  WorkloadHint hint;
  hint.time_until = Hours(best_delta);
  hint.expected_power = mean_power;
  hint.duration = Hours(1.0);
  return hint;
}

}  // namespace sdb

// CPU power-state model (paper §5.1, "Discharging Behavior"): modern Intel
// CPUs expose three active power levels — a long-term system limit, a burst
// limit (up to ~3 minutes) and a battery-protection limit entered only for
// milliseconds unless the battery can sustain it. Pairing a high
// power-density battery with the traditional one lets the OS unlock the
// protection level for sustained turbo.
//
// The model maps a power cap to a clock frequency with a sub-linear
// (voltage-scaling-limited) law and executes tasks against it, producing
// latency, CPU energy, and the power profile to replay against batteries.
#ifndef SRC_OS_CPU_MODEL_H_
#define SRC_OS_CPU_MODEL_H_

#include "src/emu/trace.h"
#include "src/os/task.h"
#include "src/util/units.h"

namespace sdb {

// Fig. 12's three performance priority levels.
enum class PerfLevel {
  kLow,     // High power-density battery disabled; CPU told less power.
  kMedium,  // Both batteries enabled, peak = 2x the high-energy battery's peak.
  kHigh,    // CPU may draw maximum possible power from both batteries.
};

std::string_view PerfLevelName(PerfLevel level);

struct CpuConfig {
  Power platform_idle = Watts(2.0);   // Display + rest of platform.
  Power network_active = Watts(2.2);  // Radio while a task waits on network.
  Power long_term_limit = Watts(15.0);
  Power burst_limit = Watts(25.0);
  Power protection_limit = Watts(38.0);
  Duration burst_budget = Minutes(3.0);  // Max time at burst before thermals.
  // Frequency curve anchor: `ref_freq` at `ref_cpu_power`.
  Frequency ref_freq = GigaHertz(2.0);
  Power ref_cpu_power = Watts(10.0);
  // f ∝ P^exponent; ~1/4 reflects diminishing returns past nominal voltage.
  double freq_exponent = 0.25;
};

struct TaskRun {
  Duration latency;
  Energy energy;           // Platform + CPU energy at the device level.
  PowerTrace power_profile;  // What the batteries see.
  Frequency frequency;       // Realised clock (lowest segment when throttled).
};

class CpuModel {
 public:
  explicit CpuModel(CpuConfig config = {});

  // Clock frequency when the CPU package may draw `cpu_power`.
  Frequency FrequencyAt(Power cpu_power) const;

  // The package power cap for a perf level, given what the battery system
  // can actually sustain (`battery_peak`). Low ignores the high-power
  // battery entirely; High uses everything available.
  Power PowerCapFor(PerfLevel level, Power battery_peak) const;

  // Executes a task under a device-level power cap: the CPU phase runs at
  // (cap - idle) package power, network waits draw radio power. When
  // `sustained_cap` is lower than `device_power_cap`, the cap only holds for
  // the burst budget (~3 minutes, §5.1) and the remainder of the compute
  // phase falls back to the sustained level — the regime a weak battery
  // forces, and exactly what pairing in a high power-density battery lifts.
  TaskRun Execute(const Task& task, Power device_power_cap) const;
  TaskRun Execute(const Task& task, Power device_power_cap, Power sustained_cap) const;

  const CpuConfig& config() const { return config_; }

 private:
  CpuConfig config_;
};

}  // namespace sdb

#endif  // SRC_OS_CPU_MODEL_H_

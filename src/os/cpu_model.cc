#include "src/os/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

std::string_view PerfLevelName(PerfLevel level) {
  switch (level) {
    case PerfLevel::kLow:
      return "Low";
    case PerfLevel::kMedium:
      return "Medium";
    case PerfLevel::kHigh:
      return "High";
  }
  return "Unknown";
}

CpuModel::CpuModel(CpuConfig config) : config_(config) {
  SDB_CHECK(config_.ref_freq.value() > 0.0);
  SDB_CHECK(config_.ref_cpu_power.value() > 0.0);
  SDB_CHECK(config_.freq_exponent > 0.0 && config_.freq_exponent <= 1.0);
}

Frequency CpuModel::FrequencyAt(Power cpu_power) const {
  double p = std::max(cpu_power.value(), 0.1);
  return config_.ref_freq *
         std::pow(p / config_.ref_cpu_power.value(), config_.freq_exponent);
}

Power CpuModel::PowerCapFor(PerfLevel level, Power battery_peak) const {
  double peak = battery_peak.value();
  switch (level) {
    case PerfLevel::kLow:
      // High power-density battery disabled; the CPU is informed of the
      // decreased power capacity and stays at the long-term limit.
      return Watts(std::min(config_.long_term_limit.value(), peak));
    case PerfLevel::kMedium:
      return Watts(std::min(config_.burst_limit.value(), peak));
    case PerfLevel::kHigh:
      return Watts(std::min(config_.protection_limit.value(), peak));
  }
  return config_.long_term_limit;
}

TaskRun CpuModel::Execute(const Task& task, Power device_power_cap) const {
  return Execute(task, device_power_cap, device_power_cap);
}

TaskRun CpuModel::Execute(const Task& task, Power device_power_cap, Power sustained_cap) const {
  TaskRun run;
  double idle_w = config_.platform_idle.value();
  double cpu_w = std::max(device_power_cap.value() - idle_w, 1.0);
  double freq = ToGigaHertz(FrequencyAt(Watts(cpu_w)));
  run.frequency = GigaHertz(freq);

  double cpu_time_s = task.compute_gcycles / freq;
  // Burst-budget throttling: past the budget the package falls back to the
  // sustained level and the remaining cycles run slower.
  double sustained_w = std::max(std::min(sustained_cap.value(), device_power_cap.value()) -
                                    idle_w,
                                1.0);
  if (cpu_time_s > config_.burst_budget.value() && sustained_w < cpu_w) {
    double burst_s = config_.burst_budget.value();
    double cycles_done = burst_s * freq;
    double freq_sustained = ToGigaHertz(FrequencyAt(Watts(sustained_w)));
    double remaining_s = std::max(0.0, task.compute_gcycles - cycles_done) / freq_sustained;
    // Rebuild the compute phase as burst + sustained segments.
    run.frequency = GigaHertz(freq_sustained);
    double network_s2 = task.network_seconds;
    constexpr double kOverlap2 = 0.25;
    double total_cpu_s = burst_s + remaining_s;
    double overlapped2 = std::min(total_cpu_s, network_s2 * kOverlap2);
    double latency_s2 = network_s2 + total_cpu_s - overlapped2;
    run.latency = Seconds(latency_s2);
    run.power_profile.Append(Seconds(burst_s), Watts(idle_w + cpu_w));
    if (remaining_s > 0.0) {
      run.power_profile.Append(Seconds(remaining_s), Watts(idle_w + sustained_w));
    }
    double wait_s2 = latency_s2 - total_cpu_s;
    if (wait_s2 > 0.0) {
      run.power_profile.Append(Seconds(wait_s2),
                               Watts(idle_w + config_.network_active.value()));
    }
    run.energy = run.power_profile.TotalEnergy();
    return run;
  }
  double network_s = task.network_seconds;
  // The network phase cannot be accelerated; compute overlaps with at most
  // a small fraction of it (pipelined requests).
  constexpr double kOverlap = 0.25;
  double overlapped = std::min(cpu_time_s, network_s * kOverlap);
  double latency_s = network_s + cpu_time_s - overlapped;
  run.latency = Seconds(latency_s);

  // Power profile: the CPU phase runs flat-out at the cap, the rest of the
  // task draws idle + radio.
  double wait_s = latency_s - cpu_time_s;
  if (cpu_time_s > 0.0) {
    run.power_profile.Append(Seconds(cpu_time_s), Watts(idle_w + cpu_w));
  }
  if (wait_s > 0.0) {
    run.power_profile.Append(Seconds(wait_s),
                             Watts(idle_w + config_.network_active.value()));
  }
  run.energy = run.power_profile.TotalEnergy();
  return run;
}

}  // namespace sdb

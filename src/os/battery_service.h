// The user-facing battery service: the OS component that turns raw SDB
// state into what people and applications actually consume — a stable
// percentage, time-to-empty / time-to-full estimates — and that schedules
// *adaptive charging* (finish charging right before the predicted unplug,
// as gently as the deadline allows; the §7 "smart assistant" behaviour).
#ifndef SRC_OS_BATTERY_SERVICE_H_
#define SRC_OS_BATTERY_SERVICE_H_

#include <optional>

#include "src/core/charge_planner.h"
#include "src/core/runtime.h"
#include "src/util/units.h"

namespace sdb {

struct BatteryServiceConfig {
  // Display percentage only moves when the underlying value crosses the
  // shown value by this much (hysteresis against gauge jitter).
  double display_hysteresis = 0.005;
  // Smoothing factor for the load EWMA behind time-to-empty.
  double load_ewma_alpha = 0.1;
  // Charge rate ladder handed to the charge planner.
  ChargePlannerConfig planner;
};

struct BatteryReadout {
  int percent = 0;                      // Stable display percentage.
  double raw_fraction = 0.0;            // Unfiltered stored fraction.
  std::optional<Duration> time_to_empty;  // Present when discharging.
  std::optional<Duration> time_to_full;   // Present when charging.
};

class BatteryService {
 public:
  // `runtime` must outlive the service.
  BatteryService(SdbRuntime* runtime, BatteryServiceConfig config = {});

  // Feed one observation period: the net power the device drew from (+) or
  // pushed into (-) the pack over `dt`.
  void Observe(Power net_load, Duration dt);

  BatteryReadout Read() const;

  // Plans charging so the pack reaches `target_soc` by `until_unplug`,
  // programming the runtime's charging directive accordingly: gentle when
  // there is slack, aggressive when the deadline is tight. Returns the plan.
  StatusOr<ChargePlan> ScheduleAdaptiveCharge(Duration until_unplug, double target_soc = 1.0);

 private:
  double StoredFraction() const;

  SdbRuntime* runtime_;
  BatteryServiceConfig config_;
  Power load_ewma_;
  bool has_load_sample_ = false;
  bool charging_ = false;
  mutable int shown_percent_ = -1;
};

}  // namespace sdb

#endif  // SRC_OS_BATTERY_SERVICE_H_

#include "src/os/workload_classifier.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {

std::string_view WorkloadClassName(WorkloadClass klass) {
  switch (klass) {
    case WorkloadClass::kIdle:
      return "idle";
    case WorkloadClass::kInteractive:
      return "interactive";
    case WorkloadClass::kSustained:
      return "sustained";
    case WorkloadClass::kPeak:
      return "peak";
  }
  return "unknown";
}

WorkloadClassifier::WorkloadClassifier(WorkloadClassifierConfig config)
    : config_(config), window_(config.window) {
  SDB_CHECK(config_.idle_threshold.value() >= 0.0);
  SDB_CHECK(config_.sustained_threshold.value() > config_.idle_threshold.value());
  SDB_CHECK(config_.peak_threshold.value() > config_.sustained_threshold.value());
}

void WorkloadClassifier::Observe(Power power) {
  SDB_CHECK(power.value() >= 0.0);
  window_.Push(power.value());
}

Power WorkloadClassifier::MeanPower() const {
  if (window_.empty()) {
    return Watts(0.0);
  }
  return Watts(Mean(window_));
}

double WorkloadClassifier::PowerCv() const {
  if (window_.size() < 2) {
    return 0.0;
  }
  double mean = MeanPower().value();
  if (mean <= 0.0) {
    return 0.0;
  }
  double sq = 0.0;
  for (size_t i = 0; i < window_.size(); ++i) {
    double d = window_.At(i) - mean;
    sq += d * d;
  }
  double stddev = std::sqrt(sq / static_cast<double>(window_.size() - 1));
  return stddev / mean;
}

WorkloadClass WorkloadClassifier::Classify() const {
  double mean = MeanPower().value();
  if (mean >= config_.peak_threshold.value()) {
    return WorkloadClass::kPeak;
  }
  if (mean < config_.idle_threshold.value()) {
    return WorkloadClass::kIdle;
  }
  if (mean >= config_.sustained_threshold.value() && PowerCv() < config_.burstiness_cv) {
    return WorkloadClass::kSustained;
  }
  return WorkloadClass::kInteractive;
}

std::vector<double> WorkloadClassifier::SaveState() const {
  std::vector<double> samples;
  samples.reserve(window_.size());
  for (size_t i = 0; i < window_.size(); ++i) {
    samples.push_back(window_.At(i));
  }
  return samples;
}

Status WorkloadClassifier::RestoreState(const std::vector<double>& samples_w) {
  if (samples_w.size() > window_.capacity()) {
    return InvalidArgumentError("workload classifier: snapshot carries " +
                                std::to_string(samples_w.size()) + " samples, window holds " +
                                std::to_string(window_.capacity()));
  }
  window_.Clear();
  for (double w : samples_w) {
    window_.Push(w);
  }
  return Status::Ok();
}

std::string WorkloadClassifier::SuggestedSituation() const {
  switch (Classify()) {
    case WorkloadClass::kIdle:
      return "overnight";
    case WorkloadClass::kInteractive:
      return "interactive";
    case WorkloadClass::kSustained:
      return "low-battery";
    case WorkloadClass::kPeak:
      return "performance";
  }
  return "interactive";
}

}  // namespace sdb

#include "src/os/task.h"

namespace sdb {

std::vector<Task> MakeNetworkBoundTasks() {
  return {
      {"email-sync", 1.5, 8.0},
      {"web-browsing", 4.0, 12.0},
      {"social-feed", 2.5, 10.0},
      {"audio-call", 3.0, 60.0},
      {"video-call", 12.0, 60.0},
      {"cloud-backup", 2.0, 45.0},
  };
}

std::vector<Task> MakeComputeBoundTasks() {
  return {
      {"integer-math", 180.0, 0.0},
      {"floating-math", 220.0, 0.0},
      {"rendering", 300.0, 0.5},
      {"fractals", 260.0, 0.0},
      {"gpu-compute", 340.0, 0.5},
      {"code-compile", 240.0, 1.0},
  };
}

}  // namespace sdb

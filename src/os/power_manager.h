// The OS power manager (paper Fig. 5): the component that "conveys power
// requirements" and "sets policies" — it translates what the OS knows
// (active workload class, charging context, learned user schedule) into the
// SDB Runtime's directive parameters, workload hints and CPU perf levels.
#ifndef SRC_OS_POWER_MANAGER_H_
#define SRC_OS_POWER_MANAGER_H_

#include <string>

#include "src/core/policy_db.h"
#include "src/core/runtime.h"
#include "src/os/cpu_model.h"
#include "src/os/predictor.h"
#include "src/os/workload_classifier.h"

namespace sdb {

class OsPowerManager {
 public:
  // `runtime` must outlive the manager; `predictor` may be null (no learned
  // schedule).
  OsPowerManager(SdbRuntime* runtime, PolicyDatabase db, UserSchedulePredictor* predictor);

  // Applies a named situation from the policy database to the runtime.
  Status SetSituation(const std::string& situation);
  const std::string& current_situation() const { return situation_; }

  // Chooses the perf level for a task class: compute-bound work gets High
  // (turbo pays off), network-bound work gets Low (turbo wastes energy) —
  // the dynamic selection §5.1 argues for over any fixed level.
  PerfLevel ChoosePerfLevel(const Task& task) const;

  // Polls the predictor at the given time of day and forwards any hint for
  // an upcoming high-power slot to the runtime.
  void PollPredictor(Duration time_of_day);

  // Feeds the observed device power into the workload classifier and, when
  // the classified regime changes, switches the active situation — the
  // self-tuning loop the paper's runtime overview describes (§3.1).
  // The regime must persist for `debounce` consecutive observations before
  // the situation switches (no thrash on bursty workloads).
  void ObservePower(Power power);
  const WorkloadClassifier& classifier() const { return classifier_; }
  void set_situation_debounce(int observations) { debounce_ = observations; }

  SdbRuntime* runtime() { return runtime_; }

 private:
  SdbRuntime* runtime_;
  PolicyDatabase db_;
  UserSchedulePredictor* predictor_;
  std::string situation_;
  WorkloadClassifier classifier_;
  int debounce_ = 60;
  int pending_count_ = 0;
  std::string pending_situation_;
};

}  // namespace sdb

#endif  // SRC_OS_POWER_MANAGER_H_

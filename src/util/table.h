// Text-table and CSV emission for the benchmark harnesses.
//
// Every bench binary regenerating a paper table/figure prints its rows with
// TextTable (aligned, human-readable) and can also dump CSV for plotting.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sdb {

// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  // Formats a double with the given precision (fixed notation).
  static std::string Num(double value, int precision = 3);

  // Renders with a separator line under the header.
  void Print(std::ostream& os) const;

  // Renders as CSV (comma-separated, no quoting; values must not contain ',').
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner used by bench binaries:  == title ==
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace sdb

#endif  // SRC_UTIL_TABLE_H_

// Numeric helpers: root finding, quadratic solving, clamping, tolerant
// comparisons. Used by the electrical solver and the Lagrangian policy
// allocators.
#ifndef SRC_UTIL_NUMERIC_H_
#define SRC_UTIL_NUMERIC_H_

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/util/status.h"

namespace sdb {

// Approximate equality with combined absolute/relative tolerance.
bool AlmostEqual(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9);

// Clamps x into [lo, hi]; aborts if lo > hi. Inline: called on the
// per-cell-step hot path (src/chem/soa_kernel.h).
inline double Clamp(double x, double lo, double hi) {
  SDB_CHECK(lo <= hi);
  return std::min(std::max(x, lo), hi);
}

// Linear interpolation: a + t * (b - a).
inline double Lerp(double a, double b, double t) { return a + t * (b - a); }

// Solutions of a*x^2 + b*x + c = 0.
struct QuadraticRoots {
  int count = 0;  // 0, 1, or 2 real roots.
  double lo = 0.0;
  double hi = 0.0;
};

// Solves the quadratic; handles the degenerate linear case (a == 0). Roots
// are ordered lo <= hi. Inline: this sits on the per-cell-step hot path of
// the SoA kernel (src/chem/soa_kernel.h).
inline QuadraticRoots SolveQuadratic(double a, double b, double c) {
  QuadraticRoots roots;
  if (a == 0.0) {
    if (b == 0.0) {
      return roots;  // Constant equation: no roots (or all x; callers treat as none).
    }
    roots.count = 1;
    roots.lo = roots.hi = -c / b;
    return roots;
  }
  double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) {
    return roots;
  }
  if (disc == 0.0) {
    roots.count = 1;
    roots.lo = roots.hi = -b / (2.0 * a);
    return roots;
  }
  // Numerically stable form: compute the larger-magnitude root first.
  double sq = std::sqrt(disc);
  double q = -0.5 * (b + std::copysign(sq, b));
  double r1 = q / a;
  double r2 = (q != 0.0) ? c / q : -b / a - r1;
  roots.count = 2;
  roots.lo = std::min(r1, r2);
  roots.hi = std::max(r1, r2);
  return roots;
}

// Finds x in [lo, hi] with f(x) == 0 by bisection. Requires f(lo) and f(hi)
// to bracket the root (opposite signs or one endpoint exactly zero).
StatusOr<double> Bisect(const std::function<double(double)>& f, double lo, double hi,
                        double tol = 1e-10, int max_iters = 200);

// Finds the x in [lo, hi] where the monotone non-decreasing function g
// first reaches `target`, by bisection on g(x) - target.
StatusOr<double> SolveMonotone(const std::function<double(double)>& g, double target, double lo,
                               double hi, double tol = 1e-10, int max_iters = 200);

// Trapezoidal integration of f over [lo, hi] with n >= 1 panels.
double IntegrateTrapezoid(const std::function<double(double)>& f, double lo, double hi, int n);

}  // namespace sdb

#endif  // SRC_UTIL_NUMERIC_H_

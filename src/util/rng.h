// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (measurement noise, workload
// jitter) draws from an explicitly-seeded Xoshiro256** instance so that all
// experiments are bit-for-bit reproducible across runs and platforms.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace sdb {

// Complete serializable Rng state: the Xoshiro words plus the Box-Muller
// pair cache. Restoring this mid-stream resumes the exact draw sequence,
// which the checkpoint subsystem relies on for bit-identical warm restarts.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

// Xoshiro256** by Blackman & Vigna — small, fast, good statistical quality.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (deterministic pair caching).
  double NextGaussian();

  // Gaussian with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Snapshot / restore of the full generator state (checkpointing).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sdb

#endif  // SRC_UTIL_RNG_H_

#include "src/util/numeric.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  double diff = std::fabs(a - b);
  if (diff <= abs_tol) {
    return true;
  }
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

StatusOr<double> Bisect(const std::function<double(double)>& f, double lo, double hi, double tol,
                        int max_iters) {
  if (!(lo <= hi)) {
    return InvalidArgumentError("bisect: lo > hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) {
    return lo;
  }
  if (fhi == 0.0) {
    return hi;
  }
  if ((flo > 0.0) == (fhi > 0.0)) {
    return FailedPreconditionError("bisect: endpoints do not bracket a root");
  }
  double a = lo;
  double b = hi;
  for (int i = 0; i < max_iters && (b - a) > tol; ++i) {
    double mid = 0.5 * (a + b);
    double fmid = f(mid);
    if (fmid == 0.0) {
      return mid;
    }
    if ((fmid > 0.0) == (flo > 0.0)) {
      a = mid;
      flo = fmid;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

StatusOr<double> SolveMonotone(const std::function<double(double)>& g, double target, double lo,
                               double hi, double tol, int max_iters) {
  return Bisect([&](double x) { return g(x) - target; }, lo, hi, tol, max_iters);
}

double IntegrateTrapezoid(const std::function<double(double)>& f, double lo, double hi, int n) {
  SDB_CHECK(n >= 1);
  SDB_CHECK(hi >= lo);
  double h = (hi - lo) / n;
  double sum = 0.5 * (f(lo) + f(hi));
  for (int i = 1; i < n; ++i) {
    sum += f(lo + i * h);
  }
  return sum * h;
}

}  // namespace sdb

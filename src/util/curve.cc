#include "src/util/curve.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

StatusOr<PiecewiseLinearCurve> PiecewiseLinearCurve::Create(
    std::vector<std::pair<double, double>> points) {
  if (points.size() < 2) {
    return InvalidArgumentError("curve needs at least two points");
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (!(points[i].first > points[i - 1].first)) {
      return InvalidArgumentError("curve x values must be strictly increasing");
    }
  }
  for (const auto& [x, y] : points) {
    if (!std::isfinite(x) || !std::isfinite(y)) {
      return InvalidArgumentError("curve points must be finite");
    }
  }
  return PiecewiseLinearCurve(std::move(points));
}

PiecewiseLinearCurve PiecewiseLinearCurve::FromTable(
    std::initializer_list<std::pair<double, double>> points) {
  auto curve = Create(std::vector<std::pair<double, double>>(points));
  SDB_CHECK(curve.ok());
  return std::move(curve).value();
}

size_t PiecewiseLinearCurve::SegmentIndex(double x) const {
  SDB_DCHECK(points_.size() >= 2);
  // First point with px > x; the segment starts one before it.
  auto it = std::upper_bound(points_.begin(), points_.end(), x,
                             [](double value, const auto& p) { return value < p.first; });
  if (it == points_.begin()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(it - points_.begin()) - 1;
  return std::min(idx, points_.size() - 2);
}

double PiecewiseLinearCurve::Evaluate(double x) const {
  SDB_CHECK(points_.size() >= 2);
  if (x <= points_.front().first) {
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    return points_.back().second;
  }
  size_t i = SegmentIndex(x);
  const auto& [x0, y0] = points_[i];
  const auto& [x1, y1] = points_[i + 1];
  double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinearCurve::Derivative(double x) const {
  SDB_CHECK(points_.size() >= 2);
  size_t i = SegmentIndex(x);
  const auto& [x0, y0] = points_[i];
  const auto& [x1, y1] = points_[i + 1];
  return (y1 - y0) / (x1 - x0);
}

bool PiecewiseLinearCurve::IsMonotoneIncreasing() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].second < points_[i - 1].second) {
      return false;
    }
  }
  return true;
}

bool PiecewiseLinearCurve::IsMonotoneDecreasing() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].second > points_[i - 1].second) {
      return false;
    }
  }
  return true;
}

StatusOr<double> PiecewiseLinearCurve::SolveForX(double y) const {
  bool increasing = IsMonotoneIncreasing();
  bool decreasing = IsMonotoneDecreasing();
  if (!increasing && !decreasing) {
    return FailedPreconditionError("inverse lookup requires a monotone curve");
  }
  double lo = min_y();
  double hi = max_y();
  if (y < lo || y > hi) {
    return OutOfRangeError("y outside curve range");
  }
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    double y0 = points_[i].second;
    double y1 = points_[i + 1].second;
    double seg_lo = std::min(y0, y1);
    double seg_hi = std::max(y0, y1);
    if (y >= seg_lo && y <= seg_hi) {
      if (y1 == y0) {
        return points_[i].first;
      }
      double t = (y - y0) / (y1 - y0);
      return points_[i].first + t * (points_[i + 1].first - points_[i].first);
    }
  }
  return InternalError("inverse lookup failed to locate segment");
}

double PiecewiseLinearCurve::min_x() const {
  SDB_CHECK(!points_.empty());
  return points_.front().first;
}

double PiecewiseLinearCurve::max_x() const {
  SDB_CHECK(!points_.empty());
  return points_.back().first;
}

double PiecewiseLinearCurve::min_y() const {
  SDB_CHECK(!points_.empty());
  double m = points_.front().second;
  for (const auto& p : points_) {
    m = std::min(m, p.second);
  }
  return m;
}

double PiecewiseLinearCurve::max_y() const {
  SDB_CHECK(!points_.empty());
  double m = points_.front().second;
  for (const auto& p : points_) {
    m = std::max(m, p.second);
  }
  return m;
}

PiecewiseLinearCurve PiecewiseLinearCurve::ScaledY(double factor) const {
  std::vector<std::pair<double, double>> scaled = points_;
  for (auto& [x, y] : scaled) {
    y *= factor;
  }
  return PiecewiseLinearCurve(std::move(scaled));
}

PiecewiseLinearCurve PiecewiseLinearCurve::ShiftedY(double offset) const {
  std::vector<std::pair<double, double>> shifted = points_;
  for (auto& [x, y] : shifted) {
    y += offset;
  }
  return PiecewiseLinearCurve(std::move(shifted));
}

}  // namespace sdb

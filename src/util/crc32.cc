#include "src/util/crc32.h"

namespace sdb {
namespace {

// 256-entry table for the reflected polynomial 0xEDB88320, built once.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace sdb

// A small fixed-size worker pool with a bounded task queue, plus the
// ParallelFor helper the sweep engines are built on. Deliberately
// work-stealing-free: tasks run in submission order per worker, which keeps
// scheduling simple and makes wait time a meaningful telemetry signal.
//
// Worker count resolution (ThreadPool::DefaultThreadCount):
//   1. the SDB_THREADS environment variable, if set and positive,
//   2. std::thread::hardware_concurrency(),
//   3. 1 as the last resort.
//
// Determinism contract: the pool never reorders results — callers that need
// reproducible output (e.g. RunMonteCarlo) write into pre-sized slots keyed
// by task index and reduce in index order afterwards, so the outcome is
// independent of which worker ran which task.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/units.h"

namespace sdb {

class ThreadPool {
 public:
  // Aggregate counters for observability; snapshot via stats().
  struct Stats {
    uint64_t tasks_executed = 0;
    Duration worker_wait;   // Time workers spent blocked on an empty queue.
    Duration submit_block;  // Time submitters spent blocked on a full queue.
  };

  // `threads` <= 0 means DefaultThreadCount(). The queue holds at most
  // `queue_capacity` pending tasks; Submit blocks once it is full
  // (backpressure instead of unbounded memory growth).
  explicit ThreadPool(int threads = 0, size_t queue_capacity = 1024);

  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; blocks while the queue is full. Tasks must not throw —
  // use ParallelFor (which captures exceptions) for fallible work.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is in flight.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }
  Stats stats() const;

  // SDB_THREADS override, else hardware concurrency, else 1.
  static int DefaultThreadCount();

  // True when the calling thread is one of this pool's workers (or any
  // pool's worker) — used to run nested parallel loops inline.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;    // Queue became non-empty (or stopping).
  std::condition_variable space_ready_;   // Queue dropped below capacity.
  std::condition_variable idle_;          // Queue empty and nothing in flight.
  std::deque<std::function<void()>> queue_;
  size_t queue_capacity_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for every i in [0, n) across the pool and blocks until all
// iterations finish. If any iteration throws, the first exception (in
// iteration order) is rethrown in the caller after the loop drains.
//
// Runs inline — preserving exception semantics — when `pool` is null, has a
// single worker, n <= 1, or the caller is itself a pool worker (nested
// ParallelFor would otherwise deadlock waiting for its own thread).
void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace sdb

#endif  // SRC_UTIL_THREAD_POOL_H_

#include "src/util/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sdb {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  SDB_CHECK(queue_capacity_ > 0);
  int n = threads > 0 ? threads : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SDB_CHECK(task != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  SDB_CHECK(!stopping_);
  if (queue_.size() >= queue_capacity_) {
    obs::Stopwatch blocked;
    space_ready_.wait(lock, [this] { return queue_.size() < queue_capacity_ || stopping_; });
    stats_.submit_block += Seconds(blocked.ElapsedSeconds());
    SDB_CHECK(!stopping_);
  }
  queue_.push_back(std::move(task));
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SDB_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      // Shut down only once the queue is drained: queued work always runs.
      if (stopping_) {
        return;
      }
      obs::Stopwatch idle;
      task_ready_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      stats_.worker_wait += Seconds(idle.ElapsedSeconds());
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    space_ready_.notify_one();
    lock.unlock();
    task();
    lock.lock();
    ++stats_.tasks_executed;
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) {
      idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn) {
  SDB_CHECK(n >= 0);
  if (n == 0) {
    return;
  }
  if (pool == nullptr || pool->thread_count() <= 1 || n == 1 || ThreadPool::InWorkerThread()) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  struct LoopState {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining;
    // First exception in iteration order; later ones are dropped.
    int64_t error_index = -1;
    std::exception_ptr error;
  };
  LoopState state;
  state.remaining = n;

  for (int64_t i = 0; i < n; ++i) {
    pool->Submit([i, &state, &fn] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(state.mu);
      if (error && (state.error_index < 0 || i < state.error_index)) {
        state.error_index = i;
        state.error = error;
      }
      if (--state.remaining == 0) {
        state.done.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.error) {
    std::rethrow_exception(state.error);
  }
}

}  // namespace sdb

// Piecewise-linear curves over double, the workhorse for battery
// characteristic tables (OCV vs SoC, DCIR vs SoC, fade vs cycle count, ...).
#ifndef SRC_UTIL_CURVE_H_
#define SRC_UTIL_CURVE_H_

#include <initializer_list>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace sdb {

// A piecewise-linear function y = f(x) defined by sample points with
// strictly increasing x. Evaluation outside the sampled range clamps to the
// end values (batteries saturate; they do not extrapolate).
class PiecewiseLinearCurve {
 public:
  PiecewiseLinearCurve() = default;

  // Builds a curve from (x, y) samples. Returns an error unless there are at
  // least two points and x is strictly increasing.
  static StatusOr<PiecewiseLinearCurve> Create(std::vector<std::pair<double, double>> points);

  // Convenience for compile-time tables; aborts on invalid input.
  static PiecewiseLinearCurve FromTable(
      std::initializer_list<std::pair<double, double>> points);

  // Linear interpolation with end-clamping.
  double Evaluate(double x) const;

  // Slope dy/dx of the segment containing x (end segments for out-of-range x).
  double Derivative(double x) const;

  // Inverse lookup: smallest x with f(x) == y. Requires the curve to be
  // monotone (either direction); returns an error otherwise or when y is
  // outside the curve's range.
  StatusOr<double> SolveForX(double y) const;

  bool IsMonotoneIncreasing() const;
  bool IsMonotoneDecreasing() const;

  double min_x() const;
  double max_x() const;
  double min_y() const;
  double max_y() const;

  const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Returns a curve whose y values are scaled by `factor`.
  PiecewiseLinearCurve ScaledY(double factor) const;
  // Returns a curve shifted vertically by `offset`.
  PiecewiseLinearCurve ShiftedY(double offset) const;

 private:
  explicit PiecewiseLinearCurve(std::vector<std::pair<double, double>> points)
      : points_(std::move(points)) {}

  // Index of the segment [i, i+1] containing x (clamped to valid segments).
  size_t SegmentIndex(double x) const;

  std::vector<std::pair<double, double>> points_;
};

}  // namespace sdb

#endif  // SRC_UTIL_CURVE_H_

// Piecewise-linear curves over double, the workhorse for battery
// characteristic tables (OCV vs SoC, DCIR vs SoC, fade vs cycle count, ...).
#ifndef SRC_UTIL_CURVE_H_
#define SRC_UTIL_CURVE_H_

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/status.h"

namespace sdb {

// A piecewise-linear function y = f(x) defined by sample points with
// strictly increasing x. Evaluation outside the sampled range clamps to the
// end values (batteries saturate; they do not extrapolate).
class PiecewiseLinearCurve {
 public:
  PiecewiseLinearCurve() = default;

  // Builds a curve from (x, y) samples. Returns an error unless there are at
  // least two points and x is strictly increasing.
  static StatusOr<PiecewiseLinearCurve> Create(std::vector<std::pair<double, double>> points);

  // Convenience for compile-time tables; aborts on invalid input.
  static PiecewiseLinearCurve FromTable(
      std::initializer_list<std::pair<double, double>> points);

  // Linear interpolation with end-clamping.
  double Evaluate(double x) const;

  // Evaluate with a caller-held segment hint. Bit-identical to Evaluate():
  // the containing segment (points_[i].x <= x < points_[i+1].x) is unique,
  // and the interpolation expression is the same — only the segment *search*
  // is skipped when the hint still holds, which is the common case for SoC
  // moving a fraction of a segment per step. Any stale hint value is safe
  // (it is range-clamped and falls back to the binary search on a miss).
  double EvaluateHinted(double x, uint32_t* hint) const {
    SDB_DCHECK(points_.size() >= 2);
    if (x <= points_.front().first) {
      return points_.front().second;
    }
    if (x >= points_.back().first) {
      return points_.back().second;
    }
    size_t i = *hint;
    const size_t last_segment = points_.size() - 2;
    if (i > last_segment || !(points_[i].first <= x && x < points_[i + 1].first)) {
      i = SegmentIndex(x);
      *hint = static_cast<uint32_t>(i);
    }
    const auto& [x0, y0] = points_[i];
    const auto& [x1, y1] = points_[i + 1];
    double t = (x - x0) / (x1 - x0);
    return y0 + t * (y1 - y0);
  }

  // Slope dy/dx of the segment containing x (end segments for out-of-range x).
  double Derivative(double x) const;

  // Inverse lookup: smallest x with f(x) == y. Requires the curve to be
  // monotone (either direction); returns an error otherwise or when y is
  // outside the curve's range.
  StatusOr<double> SolveForX(double y) const;

  bool IsMonotoneIncreasing() const;
  bool IsMonotoneDecreasing() const;

  double min_x() const;
  double max_x() const;
  double min_y() const;
  double max_y() const;

  const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Returns a curve whose y values are scaled by `factor`.
  PiecewiseLinearCurve ScaledY(double factor) const;
  // Returns a curve shifted vertically by `offset`.
  PiecewiseLinearCurve ShiftedY(double offset) const;

 private:
  explicit PiecewiseLinearCurve(std::vector<std::pair<double, double>> points)
      : points_(std::move(points)) {}

  // Index of the segment [i, i+1] containing x (clamped to valid segments).
  size_t SegmentIndex(double x) const;

  std::vector<std::pair<double, double>> points_;
};

}  // namespace sdb

#endif  // SRC_UTIL_CURVE_H_

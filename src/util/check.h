// Lightweight assertion macros for invariant checking.
//
// Library code in this project does not throw on programming errors; it
// aborts with a message. Recoverable errors are reported through
// sdb::Status / sdb::StatusOr (see src/util/status.h).
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sdb {

// Called (at most once) on the way into abort() when an SDB_CHECK fails, so
// a harness can flush a flight-recorder bundle before the process dies. The
// handler must not assume the process is in a sane state.
using CheckFailureHandler = void (*)(const char* expr, const char* file, int line);

namespace check_internal {

inline std::atomic<CheckFailureHandler>& FailureHandlerSlot() {
  static std::atomic<CheckFailureHandler> slot{nullptr};
  return slot;
}

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  // Claim the handler before invoking it so a check failing *inside* the
  // handler cannot recurse.
  CheckFailureHandler handler = FailureHandlerSlot().exchange(nullptr);
  if (handler != nullptr) {
    handler(expr, file, line);
  }
  std::abort();
}

}  // namespace check_internal

// Installs (or, with nullptr, removes) the process-wide failure handler.
inline void SetCheckFailureHandler(CheckFailureHandler handler) {
  check_internal::FailureHandlerSlot().store(handler);
}

}  // namespace sdb

// Always-on invariant check. Prefer this over <cassert> so release builds
// keep the guard rails that protect physical-model invariants.
#define SDB_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::sdb::check_internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                                \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define SDB_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SDB_DCHECK(expr) SDB_CHECK(expr)
#endif

#endif  // SRC_UTIL_CHECK_H_

#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace sdb {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) {
    return;
  }
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
}

}  // namespace log_internal
}  // namespace sdb

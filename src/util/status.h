// Error propagation without exceptions: Status and StatusOr<T>.
//
// Modeled after the absl::Status idiom but self-contained. Functions that
// can fail for reasons the caller may want to handle return Status (or
// StatusOr<T> when they also produce a value). Programming errors abort via
// SDB_CHECK instead.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/util/check.h"

namespace sdb {

// Broad error taxonomy; keep in sync with StatusCodeName().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the OK path. [[nodiscard]]
// on the type makes every function returning Status by value a must-check
// API: dropping the return is a compile error under -Werror and lint rule
// R7 (DESIGN.md "Static-analysis doctrine").
class [[nodiscard]] Status {
 public:
  // Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    SDB_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

// A value or an error. Access to the value when holding an error aborts.
// [[nodiscard]] for the same reason as Status: an ignored StatusOr is an
// ignored error (exactly the silently-dropped path fixed in the runtime's
// Update, see CHANGES.md PR 3).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from value and from error status, mirroring absl.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    SDB_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(rep_);
  }

  const T& value() const& {
    SDB_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    SDB_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    SDB_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const { return ok() ? std::get<T>(rep_) : std::move(fallback); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates an error status from an expression that yields Status.
#define SDB_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::sdb::Status sdb_status_tmp = (expr); \
    if (!sdb_status_tmp.ok()) {            \
      return sdb_status_tmp;               \
    }                                      \
  } while (0)

}  // namespace sdb

#endif  // SRC_UTIL_STATUS_H_

// Streaming statistics accumulator (count/mean/variance/min/max via
// Welford's algorithm) plus a fixed-bin histogram. Used by the Monte-Carlo
// harness and run statistics.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace sdb {

class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) {
      min_ = x;
    }
    if (count_ == 1 || x > max_) {
      max_ = x;
    }
  }

  // Folds `other` into this accumulator (Chan et al. pairwise update).
  // Merging shard accumulators in a fixed order yields the same result
  // regardless of how many threads produced them — the basis of the
  // parallel Monte-Carlo determinism guarantee.
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
  }

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1); zero for fewer than two samples.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    SDB_CHECK(count_ > 0);
    return min_;
  }
  double max() const {
    SDB_CHECK(count_ > 0);
    return max_;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-range, equal-width bins; out-of-range samples clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    SDB_CHECK(hi > lo);
    SDB_CHECK(bins > 0);
  }

  void Add(double x) {
    stats_.Add(x);
    double t = (x - lo_) / (hi_ - lo_);
    int bin = static_cast<int>(t * static_cast<double>(counts_.size()));
    if (bin < 0) {
      bin = 0;
    }
    if (bin >= static_cast<int>(counts_.size())) {
      bin = static_cast<int>(counts_.size()) - 1;
    }
    ++counts_[bin];
  }

  // Folds `other` into this histogram; bin layouts must match exactly.
  void Merge(const Histogram& other) {
    SDB_CHECK(lo_ == other.lo_ && hi_ == other.hi_);
    SDB_CHECK(counts_.size() == other.counts_.size());
    for (size_t b = 0; b < counts_.size(); ++b) {
      counts_[b] += other.counts_[b];
    }
    stats_.Merge(other.stats_);
  }

  size_t BinCount(int bin) const {
    SDB_CHECK(bin >= 0 && bin < static_cast<int>(counts_.size()));
    return counts_[bin];
  }
  double BinLow(int bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }
  int bins() const { return static_cast<int>(counts_.size()); }
  const RunningStats& stats() const { return stats_; }

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  RunningStats stats_;
};

}  // namespace sdb

#endif  // SRC_UTIL_HISTOGRAM_H_

// Minimal leveled logging to stderr. Default level is kWarning so library
// users see problems but simulations stay quiet; tests and examples may
// raise verbosity.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace sdb

#define SDB_LOG(level) \
  ::sdb::log_internal::LogMessage(::sdb::LogLevel::k##level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_

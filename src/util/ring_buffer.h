// Fixed-capacity ring buffer used for rolling windows of telemetry
// (recent power draw, recent losses) in the runtime and the predictor.
#ifndef SRC_UTIL_RING_BUFFER_H_
#define SRC_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "src/util/check.h"

namespace sdb {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : data_(capacity) { SDB_CHECK(capacity > 0); }

  // Appends, evicting the oldest element when full.
  void Push(T value) {
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) {
      ++size_;
    }
  }

  // Element i counted from the oldest retained element (0 == oldest).
  const T& At(size_t i) const {
    SDB_CHECK(i < size_);
    size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  // Most recently pushed element.
  const T& Back() const {
    SDB_CHECK(size_ > 0);
    return At(size_ - 1);
  }

  size_t size() const { return size_; }
  size_t capacity() const { return data_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == data_.size(); }

  void Clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> data_;
  size_t head_ = 0;
  size_t size_ = 0;
};

// Mean of the retained elements (requires arithmetic T and non-empty buffer).
template <typename T>
double Mean(const RingBuffer<T>& buf) {
  SDB_CHECK(!buf.empty());
  double sum = 0.0;
  for (size_t i = 0; i < buf.size(); ++i) {
    sum += static_cast<double>(buf.At(i));
  }
  return sum / static_cast<double>(buf.size());
}

}  // namespace sdb

#endif  // SRC_UTIL_RING_BUFFER_H_

// Compile-time dimensional analysis for the physical quantities used
// throughout the battery models.
//
// A Quantity carries exponents over the SI base dimensions we need
// (length, mass, time, current, temperature) and a double magnitude in
// coherent SI units (m, kg, s, A, K). Mixing incompatible dimensions is a
// compile error; multiplying/dividing produces the correctly-derived type.
//
//   sdb::Voltage v = sdb::Volts(3.7);
//   sdb::Current i = sdb::Amps(1.2);
//   sdb::Power p = v * i;                 // Watts
//   sdb::Energy e = p * sdb::Seconds(60); // Joules
//
// Public APIs use these types; numeric kernels may unwrap with .value()
// once at function entry.
#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

#include <cassert>
#include <cmath>
#include <compare>

namespace sdb {

// Exponents over (length, mass, time, current, temperature).
template <int L, int M, int T, int I, int K>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  // Magnitude in coherent SI units.
  constexpr double value() const { return value_; }

  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity operator+(Quantity other) const { return Quantity(value_ + other.value_); }
  constexpr Quantity operator-(Quantity other) const { return Quantity(value_ - other.value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity operator*(double scalar) const { return Quantity(value_ * scalar); }
  // Dividing by zero is a caller bug (asserted in !NDEBUG builds; Release
  // keeps IEEE inf/nan semantics). Guard or clamp the denominator first.
  constexpr Quantity operator/(double scalar) const {
    assert(scalar != 0.0 && "Quantity::operator/: zero scalar denominator");
    return Quantity(value_ / scalar);
  }
  constexpr Quantity& operator*=(double scalar) {
    value_ *= scalar;
    return *this;
  }
  constexpr Quantity& operator/=(double scalar) {
    assert(scalar != 0.0 && "Quantity::operator/=: zero scalar denominator");
    value_ /= scalar;
    return *this;
  }

  constexpr auto operator<=>(const Quantity&) const = default;

 private:
  double value_ = 0.0;
};

template <int L, int M, int T, int I, int K>
constexpr Quantity<L, M, T, I, K> operator*(double scalar, Quantity<L, M, T, I, K> q) {
  return q * scalar;
}

template <int L1, int M1, int T1, int I1, int K1, int L2, int M2, int T2, int I2, int K2>
constexpr Quantity<L1 + L2, M1 + M2, T1 + T2, I1 + I2, K1 + K2> operator*(
    Quantity<L1, M1, T1, I1, K1> a, Quantity<L2, M2, T2, I2, K2> b) {
  return Quantity<L1 + L2, M1 + M2, T1 + T2, I1 + I2, K1 + K2>(a.value() * b.value());
}

// Dividing by a zero-magnitude quantity (empty capacity, zero duration, ...)
// is a caller bug: asserted in !NDEBUG builds, IEEE inf/nan in Release.
// Callers that can legitimately see a zero denominator (e.g. an empty
// battery's capacity) must guard before dividing.
template <int L1, int M1, int T1, int I1, int K1, int L2, int M2, int T2, int I2, int K2>
constexpr Quantity<L1 - L2, M1 - M2, T1 - T2, I1 - I2, K1 - K2> operator/(
    Quantity<L1, M1, T1, I1, K1> a, Quantity<L2, M2, T2, I2, K2> b) {
  assert(b.value() != 0.0 && "Quantity operator/: zero-magnitude denominator");
  return Quantity<L1 - L2, M1 - M2, T1 - T2, I1 - I2, K1 - K2>(a.value() / b.value());
}

// Dividing two like-dimensioned quantities yields a plain ratio. A zero
// denominator is asserted in !NDEBUG builds (inf/nan in Release) — guard at
// the call site when the denominator can be empty/zero.
template <int L, int M, int T, int I, int K>
constexpr double Ratio(Quantity<L, M, T, I, K> a, Quantity<L, M, T, I, K> b) {
  assert(b.value() != 0.0 && "Ratio: zero-magnitude denominator");
  return a.value() / b.value();
}

//                       L   M   T   I   K
using Dimensionless = Quantity<0, 0, 0, 0, 0>;
using Duration = Quantity<0, 0, 1, 0, 0>;       // seconds
using Current = Quantity<0, 0, 0, 1, 0>;        // amperes
using Charge = Quantity<0, 0, 1, 1, 0>;         // coulombs
using Voltage = Quantity<2, 1, -3, -1, 0>;      // volts
using Resistance = Quantity<2, 1, -3, -2, 0>;   // ohms
using Capacitance = Quantity<-2, -1, 4, 2, 0>;  // farads
using Power = Quantity<2, 1, -3, 0, 0>;         // watts
using Energy = Quantity<2, 1, -2, 0, 0>;        // joules
using Temperature = Quantity<0, 0, 0, 0, 1>;    // kelvin
using Mass = Quantity<0, 1, 0, 0, 0>;           // kilograms
using Volume = Quantity<3, 0, 0, 0, 0>;         // cubic metres
using Frequency = Quantity<0, 0, -1, 0, 0>;     // hertz
using Inductance = Quantity<2, 1, -2, -2, 0>;   // henries

// DCIR growth per coulomb drawn — the delta_i of the paper's RBL derivation
// (ohms per coulomb), produced by Resistance / Charge.
using ResistancePerCharge = Quantity<2, 1, -4, -3, 0>;

// Factory helpers in the units people actually quote.
constexpr Duration Seconds(double s) { return Duration(s); }
constexpr Duration Minutes(double m) { return Duration(m * 60.0); }
constexpr Duration Hours(double h) { return Duration(h * 3600.0); }
constexpr Duration Days(double d) { return Duration(d * 86400.0); }
constexpr Current Amps(double a) { return Current(a); }
constexpr Current MilliAmps(double ma) { return Current(ma * 1e-3); }
constexpr Charge Coulombs(double c) { return Charge(c); }
constexpr Charge AmpHours(double ah) { return Charge(ah * 3600.0); }
constexpr Charge MilliAmpHours(double mah) { return Charge(mah * 3.6); }
constexpr Voltage Volts(double v) { return Voltage(v); }
constexpr Voltage MilliVolts(double mv) { return Voltage(mv * 1e-3); }
constexpr Resistance Ohms(double o) { return Resistance(o); }
constexpr Resistance MilliOhms(double mo) { return Resistance(mo * 1e-3); }
constexpr Capacitance Farads(double f) { return Capacitance(f); }
constexpr Power Watts(double w) { return Power(w); }
constexpr Power MilliWatts(double mw) { return Power(mw * 1e-3); }
constexpr Energy Joules(double j) { return Energy(j); }
constexpr Energy WattHours(double wh) { return Energy(wh * 3600.0); }
constexpr Temperature Kelvin(double k) { return Temperature(k); }
constexpr Temperature Celsius(double c) { return Temperature(c + 273.15); }
constexpr Mass Kilograms(double kg) { return Mass(kg); }
constexpr Mass Grams(double g) { return Mass(g * 1e-3); }
constexpr Volume Litres(double l) { return Volume(l * 1e-3); }
constexpr Volume CubicMillimetres(double mm3) { return Volume(mm3 * 1e-9); }
constexpr Frequency Hertz(double hz) { return Frequency(hz); }
constexpr Frequency KiloHertz(double khz) { return Frequency(khz * 1e3); }
constexpr Frequency GigaHertz(double ghz) { return Frequency(ghz * 1e9); }
constexpr Inductance Henries(double h) { return Inductance(h); }
constexpr Inductance MicroHenries(double uh) { return Inductance(uh * 1e-6); }

// Readbacks in quoted units.
constexpr double ToHours(Duration d) { return d.value() / 3600.0; }
constexpr double ToMinutes(Duration d) { return d.value() / 60.0; }
constexpr double ToMilliAmpHours(Charge q) { return q.value() / 3.6; }
constexpr double ToAmpHours(Charge q) { return q.value() / 3600.0; }
constexpr double ToWattHours(Energy e) { return e.value() / 3600.0; }
constexpr double ToCelsius(Temperature t) { return t.value() - 273.15; }
constexpr double ToLitres(Volume v) { return v.value() * 1e3; }
constexpr double ToGigaHertz(Frequency f) { return f.value() / 1e9; }

// Energy density in Wh/l — the unit the paper quotes in Figure 11(a).
constexpr double WattHoursPerLitre(Energy e, Volume v) { return ToWattHours(e) / ToLitres(v); }

template <int L, int M, int T, int I, int K>
constexpr Quantity<L, M, T, I, K> Abs(Quantity<L, M, T, I, K> q) {
  return q.value() < 0 ? -q : q;
}

template <int L, int M, int T, int I, int K>
constexpr Quantity<L, M, T, I, K> Min(Quantity<L, M, T, I, K> a, Quantity<L, M, T, I, K> b) {
  return a < b ? a : b;
}

template <int L, int M, int T, int I, int K>
constexpr Quantity<L, M, T, I, K> Max(Quantity<L, M, T, I, K> a, Quantity<L, M, T, I, K> b) {
  return a > b ? a : b;
}

}  // namespace sdb

#endif  // SRC_UTIL_UNITS_H_

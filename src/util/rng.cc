#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {
namespace {

// SplitMix64 seeds the Xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SDB_DCHECK(hi >= lo);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; reject the measure-zero u1 == 0 case.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  cached_gaussian_ = mag * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

uint64_t Rng::NextBounded(uint64_t bound) {
  SDB_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) {
    s.state[i] = state_[i];
  }
  s.has_cached_gaussian = has_cached_gaussian_;
  s.cached_gaussian = cached_gaussian_;
  return s;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = state.state[i];
  }
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace sdb

// Seeded scenario fuzzer (ROADMAP item 5): samples pack × parameter ×
// directive × FaultPlan × crash-schedule × directive-flip combinations from
// one master seed, plays each case through a full recovery-enabled rig, and
// checks a set of oracles:
//
//   1. the soak harness's per-tick invariants (SoC in range, faulted
//      batteries carry no current, cycle counts monotone),
//   2. the energy ledger balances over the run,
//   3. the safety supervisor never trips on a fault-free load that stays
//      inside the pack envelope and never commands any single battery past
//      its own envelope,
//   4. no sampled policy loses more than a configured fraction of lifetime
//      against a small panel of alternative directives on the fault-free
//      twin of the case (the cross-policy regression oracle), and
//   5. a case that carries a crash schedule (DESIGN.md §16) is replayed
//      with checkpointing on, killed at the scheduled barriers — tearing
//      the checkpoint write it interrupts — warm-restarted from the last
//      good A/B slot, and must finish bit-identical to the never-crashed
//      run (the crash-equivalence oracle).
//
// Fault plans can land inside the charge phase (a dedicated stream aims one
// charge-relevant fault at a supply-active window when the scenario has
// one), and directive flips re-aim the policy mid-run, targeted at the
// CoolDown/Probing recovery window right after a fault clears.
//
// A failing case is shrunk greedily (drop fault/crash/flip events, revert
// parameter overrides, snap directives to neutral) to a minimal
// still-failing case and serialized as a one-line reproducer; a corpus of
// such lines replays deterministically (same master seed ⇒ same
// fingerprints at any --jobs).
#ifndef SRC_EMU_FUZZ_H_
#define SRC_EMU_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/policy_db.h"
#include "src/emu/crash.h"
#include "src/emu/scenario_pack.h"
#include "src/hw/fault.h"
#include "src/obs/event.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

struct FuzzConfig {
  uint64_t master_seed = 1;
  int cases = 20;
  // Worker threads: 1 = serial, 0 = auto (SDB_THREADS / hardware).
  int jobs = 1;
  // Packs to sample from; empty means every registered pack.
  std::vector<std::string> packs;
  // Chance a sampled case carries a random fault plan.
  double fault_probability = 0.5;
  int max_fault_events = 3;
  // Chance a sampled case carries a seeded crash schedule (oracle 5), and
  // how many deaths it may hold. Sampled from a dedicated salted stream, so
  // turning the dimension off leaves every other draw untouched.
  double crash_probability = 0.35;
  int max_crash_events = 2;
  // Checkpoint cadence for the crash-equivalence twin of a crashing case.
  Duration crash_checkpoint_period = Minutes(5.0);
  // Chance a sampled case flips the policy directives mid-run (aimed at the
  // CoolDown/Probing window after a fault clears, when the case has faults).
  double flip_probability = 0.4;
  int max_directive_flips = 2;
  // Oracle 4: fail when the sampled directives' lifetime falls more than
  // this fraction short of the best panel policy on the fault-free run.
  // Zero demands the sampled policy match the panel optimum exactly.
  double max_lifetime_loss_fraction = 0.25;
  // Oracle 2 tolerance: |drawn - accounted| <= max(2 J, drawn * frac).
  double energy_tolerance_fraction = 0.03;
  // Per-run horizon cap: long packs are truncated here so a fuzz sweep
  // stays fast. Applied identically to every run of a case.
  Duration horizon_cap = Hours(2.0);
  bool shrink = true;
  // Oracle evaluations the shrinker may spend per failing case.
  int shrink_budget = 48;
};

// One mid-run policy re-aim: at `time` the runtime's directives are
// replaced wholesale (the OS changing its mind about the battery doctrine
// while the pack may still be recovering from a fault).
struct DirectiveFlip {
  Duration time;
  double discharging = 0.5;
  double charging = 0.5;
};

// One sampled (or replayed) scenario: everything needed to re-run it.
struct FuzzCase {
  std::string pack;
  PackParams overrides;  // Only the explicitly overridden knobs.
  uint64_t seed = 0;     // Drives expansion jitter and rig noise.
  DirectiveParameters directives;
  FaultPlan faults;      // Empty = fault-free case.
  // Crash schedule for oracle 5; empty = the crash twin is never run.
  std::vector<CrashEvent> crashes;
  // Mid-run directive flips, applied (in time order) to the main run and
  // its crash twin alike.
  std::vector<DirectiveFlip> flips;
};

struct FuzzViolation {
  std::string oracle;  // Short tag: "soc-range", "ledger", "safety-trip", ...
  std::string detail;
  Duration time;
};

struct FuzzCaseReport {
  FuzzCase sampled;                     // As drawn from the master seed.
  std::vector<FuzzViolation> violations;
  bool failed = false;
  // One-line reproducer for the (shrunk, when shrinking is on) case.
  std::string reproducer;
  int shrink_steps = 0;                 // Accepted reductions.
  uint64_t fingerprint = 0;
  // Flight-recorder journal of the failing run (fault windows, safety trips,
  // oracle verdicts, ...): the shrunk case when shrinking reduced it, else
  // the sampled case, so the journal narrates what the reproducer replays.
  // Deterministic per case; NOT part of the fingerprint.
  std::vector<obs::JournalEvent> journal;
};

struct FuzzReport {
  std::vector<FuzzCaseReport> cases;
  uint64_t failures = 0;
  uint64_t fingerprint = 0;  // Index-ordered merge of case digests.

  bool ok() const { return failures == 0; }
};

// --- Reproducer lines --------------------------------------------------------

// Serializes a case as one line of space-separated key=value tokens
// (doubles printed with %.17g so Parse(Format(c)) round-trips exactly):
//   pack=ev-burst seed=7 dch=0.5 chg=0.5 p:hours=2
//       fseed=7 fault=open-circuit:120:300:1:0:1
//       crash=mid-checkpoint-write:truncate:1800 flip=2400:0.2:0.8
std::string FormatFuzzCase(const FuzzCase& fuzz_case);
StatusOr<FuzzCase> ParseFuzzCase(const std::string& line);

// A corpus is reproducer lines separated by newlines; '#' comments and
// blank lines are skipped on parse.
std::string FormatFuzzCorpus(const std::vector<FuzzCase>& cases);
StatusOr<std::vector<FuzzCase>> ParseFuzzCorpus(const std::string& text);

// --- Single-case machinery ---------------------------------------------------

// Deterministically draws case `index` of a sweep: pure function of
// (config packs/fault knobs, case_seed).
FuzzCase SampleFuzzCase(const FuzzConfig& config, uint64_t case_seed);

// Runs every oracle against one case. Empty result = case passes. When
// `journal` is non-null the run is played under a private flight-recorder
// journal whose snapshot lands in `*journal`; either way the evaluation is
// hermetic — it never emits into a journal installed by the caller.
std::vector<FuzzViolation> EvaluateFuzzCase(
    const FuzzCase& fuzz_case, const FuzzConfig& config,
    std::vector<obs::JournalEvent>* journal = nullptr);

// Greedy shrink against an arbitrary failure predicate (`fails` must be
// true for `fuzz_case` itself). Tries, to a fixpoint or until `budget`
// predicate evaluations are spent: dropping fault, crash and flip events
// one at a time, reverting parameter overrides to pack defaults, then
// snapping directives to 0.5. Returns the smallest still-failing case found.
FuzzCase ShrinkFuzzCaseWith(const FuzzCase& fuzz_case,
                            const std::function<bool(const FuzzCase&)>& fails,
                            int budget, int* steps = nullptr);

// Shrink against the real oracle suite.
FuzzCase ShrinkFuzzCase(const FuzzCase& fuzz_case, const FuzzConfig& config,
                        int* steps = nullptr);

// --- The sweep ---------------------------------------------------------------

// Samples and evaluates `config.cases` cases (case k from master_seed + k),
// shrinking failures when configured. Rejects unknown pack names in
// `config.packs` with InvalidArgument. Bit-identical for any `jobs`.
StatusOr<FuzzReport> RunFuzz(const FuzzConfig& config);

// Replays an explicit case list through the oracles (the --replay path).
FuzzReport ReplayFuzzCases(const std::vector<FuzzCase>& cases,
                           const FuzzConfig& config);

}  // namespace sdb

#endif  // SRC_EMU_FUZZ_H_

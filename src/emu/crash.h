// Crash-recovery soak harness (DESIGN.md §16): seeded crash schedules —
// simulated process death at named kill points inside the driver loop,
// optionally tearing the checkpoint write it interrupts — played against
// the same 4-battery recovery rig the fault soak uses, with a warm restart
// after every death: rebuild the rig from config + seeds, load the last
// good A/B snapshot, complete the boot-count resync handshake, reconcile
// drift, and Resume() the driver loop.
//
// Oracle: the crash-and-restore run must finish with a SimResult
// bit-identical to the never-crashed twin of the same rig (resync and boot
// counters legitimately differ and are not part of SimResult). Torn writes
// must always be detected (CRC/version) and recovered from the alternate
// slot — a silent load of corrupt state is a violation, not a tolerance.
//
// Determinism doctrine mirrors the soak: schedule k derives everything from
// base_seed + k, results land in per-index slots, so the report fingerprint
// is bit-identical for any --jobs value.
#ifndef SRC_EMU_CRASH_H_
#define SRC_EMU_CRASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/emu/simulator.h"
#include "src/obs/event.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// How a mid-checkpoint-write death damages the snapshot image (applied to
// the encoded bytes after the CRC is stamped, before the device write —
// exactly what a power cut mid-write produces).
enum class TornWriteKind {
  kNone,       // The write completed before the power cut.
  kTruncate,   // Tail of the image never hit the device.
  kZeroRange,  // A middle extent was never flushed (reads back as zeros).
  kBitFlip,    // A single bit landed wrong.
};

std::string_view TornWriteKindName(TornWriteKind kind);

// One scheduled death. `torn` only applies at kMidCheckpointWrite (the two
// allocate barriers kill between writes, so there is nothing to tear);
// a mid-write event fires at the first checkpoint at or after `time`.
struct CrashEvent {
  Duration time;
  CrashBarrier barrier = CrashBarrier::kPreAllocate;
  TornWriteKind torn = TornWriteKind::kNone;
};

// Seed-keyed crash schedule: events sorted by time, fired strictly in
// order (an event already fired never re-fires on the resumed run).
struct CrashPlan {
  uint64_t seed = 0;
  std::vector<CrashEvent> events;
};

// Pure function of the arguments — same seed, same plan. 1..max_crashes
// events, all inside [5%, 90%] of the horizon.
CrashPlan MakeRandomCrashPlan(uint64_t seed, Duration horizon, int max_crashes);

struct CrashConfig {
  uint64_t base_seed = 1;
  int schedules = 10;          // Independent randomized crash schedules.
  Duration horizon = Hours(2.0);
  Duration tick = Seconds(10.0);
  Duration runtime_period = Minutes(10.0);
  Duration checkpoint_period = Minutes(5.0);
  Power load = Watts(6.0);
  int max_faults = 4;          // Fault events riding along: 1..max_faults.
  int max_crashes = 3;         // Crash events per schedule: 1..max_crashes.
  // Worker threads: 1 = serial, 0 = auto (SDB_THREADS / hardware).
  int jobs = 1;
};

// One oracle breach, with enough context to replay the schedule.
struct CrashViolation {
  uint64_t seed = 0;
  std::string check;   // Short tag, e.g. "result-divergence" or "restore".
  std::string detail;
};

// Outcome of one randomized crash schedule.
struct CrashScheduleReport {
  uint64_t seed = 0;
  int planned_crashes = 0;   // Events in the generated plan.
  int crashes_fired = 0;     // Deaths that actually hit inside the horizon.
  int warm_restarts = 0;     // Restores from a snapshot.
  int cold_restarts = 0;     // No restorable snapshot (earliest-write torn).
  int torn_writes = 0;       // Mid-write deaths that mutated the image.
  int corrupt_slots = 0;     // Present-but-invalid slots seen at restore.
  int slot_fallbacks = 0;    // Restores that used the alternate slot.
  uint64_t drift_fields = 0; // Checkpoint-vs-hardware fields reconciled.
  bool resynced = false;     // At least one boot-count handshake completed.
  bool completed = false;    // The final run covered the full horizon.
  bool identical = false;    // Final SimResult bit-identical to baseline.
  std::vector<CrashViolation> violations;
  uint64_t fingerprint = 0;  // Bit-exact digest of this schedule's result.
  // Flight-recorder journal of the crashing run (checkpoint saves,
  // corruption detections, restores, resyncs, ...). Deterministic per seed;
  // NOT part of the fingerprint.
  std::vector<obs::JournalEvent> journal;
};

struct CrashReport {
  std::vector<CrashScheduleReport> schedules;
  uint64_t total_violations = 0;
  uint64_t fingerprint = 0;  // Index-ordered merge of schedule digests.

  bool ok() const { return total_violations == 0; }
};

// Runs `config.schedules` randomized crash schedules, each against a
// never-crashed baseline of the same rig, and checks the oracle above.
CrashReport RunCrashSoak(const CrashConfig& config);

// --- Torn-write corpus ------------------------------------------------------

// The config digest the committed corpus snapshots are stamped with
// (tools/ci/make_torn_corpus.py embeds the same constant).
inline constexpr uint64_t kTornCorpusDigest = 0xC0DE50AB0B5EEDULL;

// Verdict for one corpus case directory (snap.a + snap.b).
struct CorpusCaseResult {
  std::string name;        // Case directory basename.
  bool detected = false;   // The damaged slot was rejected (CRC/schema).
  bool recovered = false;  // A valid snapshot was still loaded.
  std::string detail;      // Error/diagnostic summary for the report.

  bool ok() const { return detected && recovered; }
};

// Walks `corpus_dir` (every subdirectory holding a snap.a/snap.b pair, in
// sorted order) through CheckpointStore::LoadLastGood and checks that every
// damaged slot is detected and every case still recovers from the alternate
// slot. An empty or missing corpus is an error, not a silent pass.
StatusOr<std::vector<CorpusCaseResult>> ValidateTornCorpus(
    const std::string& corpus_dir);

// --- Exposed for tests and the fuzzer ---------------------------------------

// Applies `kind`'s damage to an encoded snapshot image, deterministically
// per (kind, seed). Shared by the crash soak and the scenario fuzzer's
// crash-equivalence oracle.
void ApplyTornWrite(TornWriteKind kind, uint64_t seed, std::vector<uint8_t>& bytes);

// kSectionSimLoop codec: the driver-loop resume point, including the full
// partial SimResult. Decode is truncation-checked (kInvalidArgument).
std::vector<uint8_t> EncodeSimLoopState(const SimLoopState& state);
StatusOr<SimLoopState> DecodeSimLoopState(const std::vector<uint8_t>& bytes);

// Bit-exact SimResult comparison (the crash oracle). Returns an empty
// string when identical, else a description of the first divergent field.
// The `crashed` flag is excluded — the final resumed run reports crashed ==
// false just like the baseline, but intermediate results do not.
std::string DescribeSimResultDivergence(const SimResult& baseline,
                                        const SimResult& restored);

}  // namespace sdb

#endif  // SRC_EMU_CRASH_H_

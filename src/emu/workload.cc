#include "src/emu/workload.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

PowerTrace MakeSmartwatchDayTrace(const SmartwatchDayConfig& config) {
  SDB_CHECK(config.checks_per_hour >= 0);
  SDB_CHECK(config.run_start_hour >= 0.0 && config.run_start_hour < 24.0);
  Rng rng(config.seed);
  PowerTrace trace;

  double run_start_s = Hours(config.run_start_hour).value();
  double run_end_s = run_start_s + config.run_duration.value();

  // Build minute-resolution segments over 24 hours.
  const double kStep = 60.0;
  const int kMinutes = 24 * 60;
  // Pre-place message checks: `checks_per_hour` per hour at jittered minutes.
  std::vector<double> check_power(kMinutes, 0.0);
  for (int hour = 0; hour < 24; ++hour) {
    for (int k = 0; k < config.checks_per_hour; ++k) {
      int minute = hour * 60 + static_cast<int>(rng.NextBounded(60));
      double burst = config.check.value() * (1.0 + rng.Uniform(-config.jitter, config.jitter));
      double fraction = std::min(1.0, config.check_duration.value() / kStep);
      check_power[minute] = std::max(check_power[minute], burst * fraction);
    }
  }
  for (int m = 0; m < kMinutes; ++m) {
    double t0 = m * kStep;
    double p = config.idle.value() + check_power[m];
    if (t0 >= run_start_s && t0 < run_end_s) {
      p += config.run.value() * (1.0 + rng.Uniform(-config.jitter / 2.0, config.jitter / 2.0));
    }
    trace.Append(Seconds(kStep), Watts(p));
  }
  return trace;
}

namespace {

// Alternates active power with short idle dips, the texture of real app
// sessions; `hours` of content at minute granularity.
PowerTrace MakeAppTrace(double active_w, double idle_w, double duty, double hours, Rng& rng) {
  PowerTrace trace;
  int minutes = static_cast<int>(hours * 60.0);
  for (int m = 0; m < minutes; ++m) {
    bool active = rng.NextDouble() < duty;
    double p = active ? active_w * (1.0 + rng.Uniform(-0.1, 0.1)) : idle_w;
    trace.Append(Seconds(60.0), Watts(p));
  }
  return trace;
}

}  // namespace

std::vector<NamedWorkload> MakeTwoInOneWorkloads(uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedWorkload> workloads;
  struct Spec {
    const char* name;
    double active_w;
    double duty;
    double hours;
  };
  // Representative 2-in-1 application mixes (Fig. 14's x-axis).
  const Spec kSpecs[] = {
      {"email", 8.0, 0.70, 4.0},        {"browsing", 10.0, 0.80, 4.0},
      {"video-playback", 11.0, 0.95, 3.0}, {"office", 9.0, 0.75, 4.0},
      {"video-call", 12.0, 0.90, 2.0},  {"music", 7.0, 0.90, 5.0},
      {"photo-edit", 14.0, 0.80, 2.5},  {"gaming", 18.0, 0.90, 2.0},
      {"software-build", 20.0, 0.85, 1.5}, {"mixed-day", 10.0, 0.75, 5.0},
  };
  const double kIdleW = 3.0;
  for (const Spec& spec : kSpecs) {
    workloads.push_back(
        NamedWorkload{spec.name, MakeAppTrace(spec.active_w, kIdleW, spec.duty, spec.hours, rng)});
  }
  return workloads;
}

PowerTrace MakeBurstyTrace(Power baseline, Power burst, double burst_fraction, Duration total,
                           Duration segment, uint64_t seed) {
  SDB_CHECK(burst_fraction >= 0.0 && burst_fraction <= 1.0);
  SDB_CHECK(segment.value() > 0.0);
  Rng rng(seed);
  PowerTrace trace;
  double elapsed = 0.0;
  while (elapsed < total.value()) {
    bool bursting = rng.NextDouble() < burst_fraction;
    trace.Append(segment, bursting ? burst : baseline);
    elapsed += segment.value();
  }
  return trace;
}

PowerTrace MakePhoneDayTrace(uint64_t seed) {
  Rng rng(seed);
  PowerTrace trace;
  // 16 waking hours: standby with screen sessions and one long call.
  for (int hour = 0; hour < 16; ++hour) {
    for (int slot = 0; slot < 12; ++slot) {  // 5-minute slots.
      double p = 0.04;                       // Standby.
      double roll = rng.NextDouble();
      if (hour == 11 && slot < 6) {
        p = 2.6;  // Midday video call.
      } else if (roll < 0.25) {
        p = 1.2 * (1.0 + rng.Uniform(-0.2, 0.2));  // Screen-on session.
      } else if (roll < 0.35) {
        p = 0.5;  // Background sync.
      }
      trace.Append(Minutes(5.0), Watts(p));
    }
  }
  return trace;
}

PowerTrace MakeDroneFlightTrace(Duration flight, uint64_t seed) {
  SDB_CHECK(flight.value() > 0.0);
  Rng rng(seed);
  PowerTrace trace;
  // Takeoff: 15 s at peak power.
  trace.Append(Seconds(15.0), Watts(24.0));
  double cruise_s = std::max(0.0, flight.value() - 30.0);
  double elapsed = 0.0;
  while (elapsed < cruise_s) {
    double seg = std::min(10.0, cruise_s - elapsed);
    // Cruise with gust corrections.
    double p = 12.0 * (1.0 + rng.Uniform(-0.1, 0.1));
    if (rng.NextDouble() < 0.15) {
      p += 8.0;  // Gust correction burst.
    }
    trace.Append(Seconds(seg), Watts(p));
    elapsed += seg;
  }
  // Landing burst.
  trace.Append(Seconds(15.0), Watts(20.0));
  return trace;
}

PowerTrace MakeSmartGlassesDayTrace(uint64_t seed) {
  Rng rng(seed);
  PowerTrace trace;
  for (int minute = 0; minute < 12 * 60; ++minute) {
    double p = 0.03;  // Sensors + standby.
    double roll = rng.NextDouble();
    if (roll < 0.08) {
      p = 0.9;  // Camera capture burst.
    } else if (roll < 0.30) {
      p = 0.25;  // Heads-up display session.
    }
    trace.Append(Minutes(1.0), Watts(p));
  }
  return trace;
}

}  // namespace sdb

// Device presets: the three instrumented platforms of paper §4.3 — a Core
// i5 2-in-1 tablet, a Snapdragon 800 phone and a Snapdragon 200 watch —
// assembled as complete SDB stacks (cells + circuits + microcontroller +
// runtime + policy database + battery service) ready to drive with a trace.
#ifndef SRC_EMU_DEVICE_H_
#define SRC_EMU_DEVICE_H_

#include <memory>
#include <string>

#include "src/core/runtime.h"
#include "src/os/battery_service.h"
#include "src/os/cpu_model.h"
#include "src/os/power_manager.h"

namespace sdb {

// A fully-wired SDB device. Owns every layer; components keep stable
// addresses for the lifetime of the Device (heap-allocated internals).
class Device {
 public:
  Device(std::string name, std::vector<Cell> cells, CpuConfig cpu_config, uint64_t seed);

  // Non-copyable, non-movable: components hold pointers into each other.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }
  SdbMicrocontroller& micro() { return *micro_; }
  SdbRuntime& runtime() { return *runtime_; }
  OsPowerManager& power_manager() { return *power_manager_; }
  BatteryService& battery_service() { return *battery_service_; }
  const CpuModel& cpu() const { return cpu_; }

  // Total stored fraction across the pack (capacity-weighted).
  double StoredFraction() const;

 private:
  std::string name_;
  std::unique_ptr<SdbMicrocontroller> micro_;
  std::unique_ptr<SdbRuntime> runtime_;
  std::unique_ptr<OsPowerManager> power_manager_;
  std::unique_ptr<BatteryService> battery_service_;
  CpuModel cpu_;
};

// §4.3's "2-in-1 development device with Intel Core i5": fast-charge +
// high-energy tablet cells, desktop-class turbo limits.
std::unique_ptr<Device> MakeTabletDevice(double initial_soc = 1.0, uint64_t seed = 101);

// §4.3's "Qualcomm development device with Snapdragon 800 chipset": a single
// phone cell plus a small fast-charge companion, phone-scale power levels.
std::unique_ptr<Device> MakePhoneDevice(double initial_soc = 1.0, uint64_t seed = 102);

// §4.3's "Snapdragon 200 development board" watch: rigid Li-ion + bendable
// strap battery, milliwatt-scale CPU.
std::unique_ptr<Device> MakeWatchDevice(double initial_soc = 1.0, uint64_t seed = 103);

}  // namespace sdb

#endif  // SRC_EMU_DEVICE_H_

#include "src/emu/device.h"

#include "src/chem/library.h"
#include "src/util/check.h"

namespace sdb {

Device::Device(std::string name, std::vector<Cell> cells, CpuConfig cpu_config, uint64_t seed)
    : name_(std::move(name)), cpu_(cpu_config) {
  SDB_CHECK(!cells.empty());
  BatteryPack pack;
  for (auto& cell : cells) {
    pack.AddCell(std::move(cell));
  }
  micro_ = std::make_unique<SdbMicrocontroller>(std::move(pack), DischargeCircuitConfig{},
                                                ChargeCircuitConfig{}, FuelGaugeConfig{}, seed);
  runtime_ = std::make_unique<SdbRuntime>(micro_.get());
  power_manager_ = std::make_unique<OsPowerManager>(runtime_.get(), MakeDefaultPolicyDatabase(),
                                                    nullptr);
  battery_service_ = std::make_unique<BatteryService>(runtime_.get());
}

double Device::StoredFraction() const {
  double stored = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < micro_->battery_count(); ++i) {
    const Cell& cell = micro_->pack().cell(i);
    stored += cell.soc() * cell.params().nominal_capacity.value();
    total += cell.params().nominal_capacity.value();
  }
  return total > 0.0 ? stored / total : 0.0;
}

std::unique_ptr<Device> MakeTabletDevice(double initial_soc, uint64_t seed) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(4000.0)), initial_soc);
  cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), initial_soc);
  CpuConfig cpu;  // Defaults model the Core i5 class (15/25/38 W levels).
  return std::make_unique<Device>("tablet-2in1", std::move(cells), cpu, seed);
}

std::unique_ptr<Device> MakePhoneDevice(double initial_soc, uint64_t seed) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeType2Standard(MilliAmpHours(2800.0), 2), initial_soc);
  cells.emplace_back(MakeType3FastCharge(MilliAmpHours(1200.0), 0), initial_soc);
  CpuConfig cpu;
  cpu.platform_idle = Watts(0.25);
  cpu.network_active = Watts(0.8);
  cpu.long_term_limit = Watts(2.5);   // Snapdragon 800 class.
  cpu.burst_limit = Watts(4.5);
  cpu.protection_limit = Watts(6.5);
  cpu.ref_freq = GigaHertz(2.3);
  cpu.ref_cpu_power = Watts(2.0);
  return std::make_unique<Device>("phone-sd800", std::move(cells), cpu, seed);
}

std::unique_ptr<Device> MakeWatchDevice(double initial_soc, uint64_t seed) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeWatchLiIon(MilliAmpHours(200.0)), initial_soc);
  cells.emplace_back(MakeType4Bendable(MilliAmpHours(200.0)), initial_soc);
  CpuConfig cpu;
  cpu.platform_idle = Watts(0.015);
  cpu.network_active = Watts(0.12);
  cpu.long_term_limit = Watts(0.25);  // Snapdragon 200 class.
  cpu.burst_limit = Watts(0.5);
  cpu.protection_limit = Watts(0.9);
  cpu.ref_freq = GigaHertz(1.2);
  cpu.ref_cpu_power = Watts(0.2);
  return std::make_unique<Device>("watch-sd200", std::move(cells), cpu, seed);
}

}  // namespace sdb

// Scenario packs: named, parameterized workload families (ROADMAP item 5,
// grown the way ydb's `workload` CLI grows load suites). A pack is a small
// typed parameter surface (each knob declared with a default, a valid range
// and a one-line description) plus an expander that turns resolved
// parameters + a seed into a complete, runnable ScenarioSpec: batteries,
// initial SoC, load/supply traces, SimConfig and policy directives.
//
// Registered families:
//   * the paper's §5 consumer devices, re-registered (smartwatch-day,
//     fastcharge-tablet, phone-day),
//   * an Ni-MH ambient-sensor node (PAPERS.md, arXiv 0802.3053),
//   * a dual-battery energy-harvesting duty cycle (arXiv 1801.03813),
//   * an EV-like high-C burst profile, and
//   * a laptop/2-in-1 docking week with mains supply during work hours.
//
// Determinism doctrine: expansion is a pure function of (pack, resolved
// params, seed). All jitter draws from one Rng seeded from those inputs, so
// equal seeds give bit-identical specs and Monte-Carlo sweeps over a pack
// stay bit-identical at any --jobs value. Any pack's synthetic load can be
// substituted by an external CSV power trace (src/emu/trace_io.h) without
// touching the rest of the expansion.
#ifndef SRC_EMU_SCENARIO_PACK_H_
#define SRC_EMU_SCENARIO_PACK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/chem/battery_params.h"
#include "src/chem/cell.h"
#include "src/core/policy_db.h"
#include "src/emu/simulator.h"
#include "src/emu/trace.h"
#include "src/util/status.h"

namespace sdb {

// One tunable knob of a pack. Values are plain doubles; the name carries
// the unit (e.g. "burst_mw", "dock_hours") and the description spells it
// out. Overrides outside [min_value, max_value] are rejected.
struct PackParamSpec {
  std::string name;
  double default_value = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::string description;
};

// Resolved parameter assignment: every declared knob present exactly once.
// Ordered map so iteration (and anything hashed from it) is deterministic.
using PackParams = std::map<std::string, double>;

// A fully expanded scenario, ready to assemble into a rig. Cells are
// move-only, so the spec carries BatteryParams + SoC and rigs construct
// fresh cells per run (BuildScenarioCells).
struct ScenarioSpec {
  std::string pack;                  // Originating pack name.
  uint64_t seed = 0;
  std::vector<BatteryParams> batteries;
  std::vector<double> initial_soc;   // Parallel to `batteries`.
  PowerTrace load;
  PowerTrace supply;                 // Empty = always on battery.
  SimConfig sim;                     // Tick/period/horizon; faults left empty.
  DirectiveParameters directives;
  // Largest sustained load the pack's cells can serve with margin; the
  // fuzzer's safety oracle only applies to loads inside this envelope.
  Power envelope;
};

struct ScenarioPack {
  std::string name;
  std::string description;
  std::vector<PackParamSpec> params;
  // Expander contract: `resolved` contains every declared param (validated
  // by ResolvePackParams) and the result depends on (resolved, seed) alone.
  ScenarioSpec (*expand)(const PackParams& resolved, uint64_t seed);
};

// The registry, in stable registration order (CLI listings, fuzz sampling
// and bench sweeps all iterate it; order changes reshuffle fuzz corpora).
const std::vector<ScenarioPack>& ScenarioPacks();

// Lookup by name; nullptr when unknown.
const ScenarioPack* FindScenarioPack(std::string_view name);

// Merges `overrides` over the pack's defaults. Rejects unknown parameter
// names (listing the valid ones) and out-of-range values (quoting the
// allowed range) with InvalidArgument.
StatusOr<PackParams> ResolvePackParams(const ScenarioPack& pack,
                                       const PackParams& overrides);

// One-call expansion: resolve + expand. When `load_override` is non-null
// its trace replaces the pack's synthetic load (the external-trace
// substitution path); the sim horizon follows the substituted trace.
StatusOr<ScenarioSpec> ExpandScenario(const std::string& pack_name,
                                      const PackParams& overrides, uint64_t seed,
                                      const PowerTrace* load_override = nullptr);

// Fresh cells for one run of the spec.
std::vector<Cell> BuildScenarioCells(const ScenarioSpec& spec);

// Convenience driver: assembles the default rig (microcontroller + runtime
// with the spec's directives) and plays the spec's load/supply through it.
// `seed_salt` perturbs the rig seed for Monte-Carlo sweeps.
SimResult RunScenario(const ScenarioSpec& spec, uint64_t seed_salt = 0);

}  // namespace sdb

#endif  // SRC_EMU_SCENARIO_PACK_H_

// Synthetic workload generators standing in for the paper's instrumented
// devices (§4.3: a Core i5 2-in-1, a Snapdragon 800 phone and a Snapdragon
// 200 watch, each measured at 100 Hz). Each generator produces a power
// trace with the structure the corresponding scenario in §5 relies on.
#ifndef SRC_EMU_WORKLOAD_H_
#define SRC_EMU_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/emu/trace.h"
#include "src/util/rng.h"

namespace sdb {

// --- Smart watch (paper §5.2, Fig. 13) --------------------------------------

struct SmartwatchDayConfig {
  Power idle = Watts(0.050);        // Always-on display + sensors.
  Power check = Watts(0.15);        // Screen-on message checking burst.
  Duration check_duration = Seconds(45.0);
  int checks_per_hour = 6;          // "spends the entire day checking messages".
  Power run = Watts(0.70);          // GPS + HR tracking while running.
  double run_start_hour = 9.0;      // Fig. 13: the run starts at hour 9.
  Duration run_duration = Hours(1.0);
  uint64_t seed = 7;
  double jitter = 0.15;             // Relative jitter on burst power/timing.
};

// A 24-hour watch day: idle baseline, periodic message-check bursts and one
// high-power run.
PowerTrace MakeSmartwatchDayTrace(const SmartwatchDayConfig& config);

// --- 2-in-1 application workloads (paper §5.3, Fig. 14) ---------------------

struct NamedWorkload {
  std::string name;
  PowerTrace trace;
};

// The application mix a 2-in-1 runs: mail/browse/video/office through
// gaming and software builds; each is a multi-hour trace with idle gaps.
std::vector<NamedWorkload> MakeTwoInOneWorkloads(uint64_t seed = 11);

// --- Generic synthetic traces ------------------------------------------------

// Bursty trace: baseline power with exponential-ish bursts, for property
// tests and ablations.
PowerTrace MakeBurstyTrace(Power baseline, Power burst, double burst_fraction,
                           Duration total, Duration segment, uint64_t seed);

// Phone-style day: screen sessions, standby, a video call.
PowerTrace MakePhoneDayTrace(uint64_t seed = 23);

// --- §8 future-work devices ---------------------------------------------------

// Drone sortie: takeoff burst, cruise, gusty corrections, landing burst —
// sustained high power with sharp peaks (scaled to bench-size cells).
PowerTrace MakeDroneFlightTrace(Duration flight, uint64_t seed = 29);

// Smart-glasses day: display+camera bursts over a tiny idle baseline.
PowerTrace MakeSmartGlassesDayTrace(uint64_t seed = 31);

}  // namespace sdb

#endif  // SRC_EMU_WORKLOAD_H_

// Monte-Carlo evaluation harness: runs a scenario across many seeded
// workload variations and reports distributional statistics, so policy
// comparisons (Fig. 13-style claims) come with spread, not just a single
// trace. Everything stays deterministic given the base seed.
//
// Parallel execution model: the seed range is cut into fixed-size shards
// (kMonteCarloShardSize seeds each, independent of the worker count). Each
// shard accumulates its RunningStats serially in seed order; shard
// accumulators are then merged in shard order with RunningStats::Merge.
// Because both the shard boundaries and the merge order are functions of
// `runs` alone, the result is bit-identical for any `jobs` value — 1 worker
// and 64 workers produce the same doubles.
#ifndef SRC_EMU_MONTE_CARLO_H_
#define SRC_EMU_MONTE_CARLO_H_

#include <functional>

#include "src/emu/simulator.h"
#include "src/util/histogram.h"

namespace sdb {

struct MonteCarloResult {
  RunningStats battery_life_h;
  RunningStats total_loss_j;
  RunningStats delivered_j;
  int shortfall_runs = 0;  // Runs that hit a shortfall before the trace ended.
  int runs = 0;
  // Throughput accounting for the sweep window (from the process-wide
  // "sdb.chem.cell_steps" counter): kernel cell-steps executed during the
  // sweep and the resulting rate. Concurrent sweeps in other threads would
  // both be counted; the bench harnesses run one sweep at a time.
  uint64_t cell_steps = 0;
  double cell_steps_per_s = 0.0;
};

// One experiment instance: given a per-run seed, build the rig + trace and
// run it, returning the SimResult. The callback owns all state; the harness
// only aggregates. Under jobs > 1 the callback is invoked concurrently, so
// it must not touch shared mutable state.
using ScenarioFn = std::function<SimResult(uint64_t seed)>;

// Seeds per shard task. Fixed so the reduction tree never depends on the
// worker count (see the determinism note above); small enough that a
// 4-thread pool load-balances a 24-run sweep.
inline constexpr int kMonteCarloShardSize = 4;

struct MonteCarloOptions {
  uint64_t base_seed = 1;
  // Worker threads: 1 = serial in the calling thread; 0 = auto
  // (SDB_THREADS env override, else hardware concurrency).
  int jobs = 1;
};

// Runs `scenario` for seeds base_seed .. base_seed + runs - 1.
MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs,
                               const MonteCarloOptions& options);

// Serial-compatible shorthand (jobs = 1).
MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs, uint64_t base_seed = 1);

}  // namespace sdb

#endif  // SRC_EMU_MONTE_CARLO_H_

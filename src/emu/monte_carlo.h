// Monte-Carlo evaluation harness: runs a scenario across many seeded
// workload variations and reports distributional statistics, so policy
// comparisons (Fig. 13-style claims) come with spread, not just a single
// trace. Everything stays deterministic given the base seed.
#ifndef SRC_EMU_MONTE_CARLO_H_
#define SRC_EMU_MONTE_CARLO_H_

#include <functional>

#include "src/emu/simulator.h"
#include "src/util/histogram.h"

namespace sdb {

struct MonteCarloResult {
  RunningStats battery_life_h;
  RunningStats total_loss_j;
  RunningStats delivered_j;
  int shortfall_runs = 0;  // Runs that hit a shortfall before the trace ended.
  int runs = 0;
};

// One experiment instance: given a per-run seed, build the rig + trace and
// run it, returning the SimResult. The callback owns all state; the harness
// only aggregates.
using ScenarioFn = std::function<SimResult(uint64_t seed)>;

// Runs `scenario` for seeds base_seed .. base_seed + runs - 1.
MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs, uint64_t base_seed = 1);

}  // namespace sdb

#endif  // SRC_EMU_MONTE_CARLO_H_

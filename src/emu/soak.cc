#include "src/emu/soak.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <optional>

#include "src/chem/library.h"
#include "src/core/runtime.h"
#include "src/emu/simulator.h"
#include "src/hw/command_link.h"
#include "src/hw/safety.h"
#include "src/util/thread_pool.h"

namespace sdb {

namespace {

constexpr int kSoakBatteries = 4;
constexpr size_t kMaxViolationsPerSchedule = 16;

// Every schedule derives its rig seeds from the schedule seed alone, so a
// report line ("seed 17 violated X") is all that is needed to replay it.
constexpr uint64_t kMicroSeedSalt = 0x50AB0B5EEDULL;

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

float ReadF32(const uint8_t* data) {
  float value;
  std::memcpy(&value, data, sizeof(value));
  return value;
}

bool IsLinkWide(FaultClass kind) {
  return kind == FaultClass::kLinkTimeout || kind == FaultClass::kLinkCorruptReply ||
         kind == FaultClass::kMicroCrash || kind == FaultClass::kMicroBrownout;
}

// Lifecycle doctrine for the soak rig: recovery on, with dwell times short
// enough that a trip near the last fault window still completes its
// cool-down + probe inside the remaining horizon.
RecoveryConfig SoakRecovery() {
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.base_dwell = Minutes(3.0);
  recovery.dwell_backoff = 2.0;
  recovery.max_dwell = Minutes(12.0);
  recovery.probe_duration = Minutes(2.0);
  return recovery;
}

// Everything one rig run produces, copied out before the rig is torn down.
struct RigOutcome {
  bool completed = false;
  std::vector<double> final_shares;
  std::vector<double> final_soc;
  Energy delivered;
  bool recovered = false;
  uint64_t trips = 0;
  uint64_t recoveries = 0;
  uint64_t reboots = 0;
  uint64_t resyncs = 0;
  uint64_t replayed_commands = 0;
};

// Builds the 4-battery tablet rig (recovery-enabled supervisor + command
// link + ramping runtime), plays the constant load for the horizon and —
// when `report` is given — checks the per-tick invariants and the energy
// ledger, recording breaches. `plan == nullptr` runs the never-faulted
// baseline on the identical rig.
RigOutcome RunRig(const SoakConfig& config, uint64_t seed, const FaultPlan* plan,
                  SoakScheduleReport* report) {
  std::vector<Cell> cells;
  cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), 0.8);
  SdbMicrocontroller micro =
      MakeDefaultMicrocontroller(std::move(cells), kMicroSeedSalt ^ seed);

  std::vector<SafetyLimits> limits;
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    limits.push_back(DeriveLimits(micro.pack().cell(i).params()));
  }
  SafetySupervisor safety(limits, SoakRecovery());
  micro.AttachSafety(&safety);

  // Install before wiring the link so the client can attach the injector
  // that lives for the whole run (SimConfig.faults stays empty).
  if (plan != nullptr) {
    micro.InstallFaults(*plan);
  }

  Duration sim_now = Seconds(0.0);
  SdbRuntime* runtime_ptr = nullptr;  // Filled in once the runtime exists.
  auto add_violation = [&](Duration at, const char* tag, std::string detail) {
    if (report == nullptr) {
      return;
    }
    // Every breach lands in the journal (the ring out-sizes the violation
    // cap, so dropped violations stay visible in a post-mortem bundle).
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, at.value(), -1, tag, detail);
    if (report->violations.size() >= kMaxViolationsPerSchedule) {
      ++report->violations_dropped;
      return;
    }
    report->violations.push_back(SoakViolation{seed, at, tag, std::move(detail)});
  };

  CommandLinkServer server(&micro);
  FrameDecoder audit_decoder;
  CommandLinkClient client([&](const std::vector<uint8_t>& bytes) {
    // Invariant 3, audited at the wire: a ratio-programming frame must
    // carry a (near-)zero share for every battery the runtime has
    // quarantined at the moment the frame is sent.
    if (report != nullptr && runtime_ptr != nullptr) {
      std::vector<Frame> frames;
      audit_decoder.Feed(bytes, frames);
      for (const Frame& frame : frames) {
        if (frame.type != MessageType::kSetDischargeRatios &&
            frame.type != MessageType::kSetChargeRatios) {
          continue;
        }
        const std::vector<bool>& excluded = runtime_ptr->excluded_batteries();
        // Mutating payloads carry a 2-byte sequence prefix before the f32s.
        for (size_t i = 0; 2 + (i + 1) * 4 <= frame.payload.size(); ++i) {
          if (i < excluded.size() && excluded[i] &&
              ReadF32(frame.payload.data() + 2 + i * 4) > 1e-6f) {
            add_violation(sim_now, "quarantine-share",
                          "battery " + std::to_string(i) +
                              " excluded but programmed share " +
                              std::to_string(ReadF32(frame.payload.data() + 2 + i * 4)));
          }
        }
      }
    }
    return server.Receive(bytes);
  });
  client.AttachFaultInjector(micro.fault_injector());

  RuntimeConfig runtime_config;
  runtime_config.reintegration_horizon = Minutes(10.0);
  SdbRuntime runtime(&micro, runtime_config);
  runtime.AttachLink(&client);
  runtime_ptr = &runtime;

  // Per-tick invariant state.
  std::vector<bool> prev_faulted(micro.battery_count(), false);
  std::vector<double> prev_cycles(micro.battery_count(), 0.0);
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    prev_cycles[i] = micro.pack().cell(i).aging().cycle_count();
  }

  SimConfig sim_config;
  sim_config.tick = config.tick;
  sim_config.runtime_period = config.runtime_period;
  sim_config.stop_on_shortfall = false;
  sim_config.on_tick = [&](const MicroTick& tick, Duration now) {
    sim_now = now;
    if (report == nullptr) {
      return;
    }
    for (size_t i = 0; i < micro.battery_count(); ++i) {
      const Cell& cell = micro.pack().cell(i);
      // Invariant 1: ground-truth SoC stays finite and in [0, 1].
      double soc = cell.soc();
      if (!std::isfinite(soc) || soc < 0.0 || soc > 1.0) {
        add_violation(now, "soc-range",
                      "battery " + std::to_string(i) + " soc " + std::to_string(soc));
      }
      // Invariant 4: cycle counts never run backwards.
      double cycles = cell.aging().cycle_count();
      if (cycles + 1e-12 < prev_cycles[i]) {
        add_violation(now, "cycle-monotone",
                      "battery " + std::to_string(i) + " cycles " +
                          std::to_string(cycles) + " < " + std::to_string(prev_cycles[i]));
      }
      prev_cycles[i] = cycles;
      // Invariant 2: a battery that entered this tick safety-faulted must
      // have been masked out of both circuits.
      if (prev_faulted[i]) {
        double discharge_a = i < tick.discharge.currents.size()
                                 ? std::fabs(tick.discharge.currents[i].value())
                                 : 0.0;
        double charge_a = i < tick.charge.currents.size()
                              ? std::fabs(tick.charge.currents[i].value())
                              : 0.0;
        if (discharge_a > 1e-9 || charge_a > 1e-9) {
          add_violation(now, "faulted-current",
                        "battery " + std::to_string(i) + " carried " +
                            std::to_string(std::max(discharge_a, charge_a)) +
                            " A while faulted");
        }
      }
      prev_faulted[i] = safety.IsFaulted(i);
    }
  };

  double e0 = micro.pack().TotalRemainingEnergy().value();
  Simulator sim(&runtime, sim_config);
  SimResult result = sim.Run(PowerTrace::Constant(config.load, config.horizon));
  double e1 = micro.pack().TotalRemainingEnergy().value();

  RigOutcome outcome;
  outcome.completed =
      result.elapsed.value() >= config.horizon.value() - config.tick.value();
  if (!outcome.completed) {
    add_violation(result.elapsed, "incomplete",
                  "run stopped at " + std::to_string(result.elapsed.value()) + " s");
  }

  // Invariant 5: the energy ledger balances over the whole run.
  if (report != nullptr) {
    double drawn = e0 - e1;
    double accounted = result.delivered.value() + result.TotalLoss().value();
    double tolerance = std::max(2.0, drawn * config.energy_tolerance_fraction);
    if (!std::isfinite(accounted) || std::fabs(drawn - accounted) > tolerance) {
      add_violation(result.elapsed, "ledger",
                    "drawn " + std::to_string(drawn) + " J vs accounted " +
                        std::to_string(accounted) + " J");
    }
  }

  outcome.final_shares = runtime.last_discharge_ratios();
  outcome.final_soc = result.final_soc;
  outcome.delivered = result.delivered;
  outcome.recovered = !safety.AnyUnhealthy() && !runtime.degraded() &&
                      !micro.awaiting_resync() && !micro.in_reset();
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    outcome.trips += safety.trip_count(i);
    outcome.recoveries += safety.recovery_count(i);
  }
  if (micro.fault_injector() != nullptr) {
    outcome.reboots = micro.fault_injector()->micro_reboots();
  }
  outcome.resyncs = runtime.resilience().resyncs;
  outcome.replayed_commands = server.replayed_commands();
  return outcome;
}

SoakScheduleReport RunOneSchedule(const SoakConfig& config, uint64_t seed) {
  // Hermetic: the schedule never emits into a journal installed by the
  // caller (the --flight-out process journal when a slot runs inline), so
  // what an outer journal holds cannot depend on work distribution.
  obs::JournalScope silence(nullptr);
  SoakScheduleReport report;
  report.seed = seed;
  FaultPlan plan =
      MakeRandomFaultPlan(seed, kSoakBatteries, config.horizon, config.max_events);
  report.events = static_cast<int>(plan.events.size());

  // The never-faulted twin of the same rig gives the steady-state
  // allocation the faulted run must converge back to (invariant 6).
  RigOutcome baseline = RunRig(config, seed, nullptr, nullptr);
  // The faulted run records into a per-schedule journal; each schedule runs
  // start-to-finish on one worker thread, so the captured event sequence is
  // independent of the --jobs value.
  obs::EventJournal journal;
  obs::JournalScope journal_scope(&journal);
  RigOutcome faulted = RunRig(config, seed, &plan, &report);

  report.completed = faulted.completed;
  report.recovered = faulted.recovered;
  report.trips = faulted.trips;
  report.recoveries = faulted.recoveries;
  report.reboots = faulted.reboots;
  report.resyncs = faulted.resyncs;
  report.replayed_commands = faulted.replayed_commands;

  for (size_t i = 0;
       i < faulted.final_shares.size() && i < baseline.final_shares.size(); ++i) {
    report.max_share_delta =
        std::max(report.max_share_delta,
                 std::fabs(faulted.final_shares[i] - baseline.final_shares[i]));
  }
  if (!faulted.recovered) {
    report.violations.push_back(SoakViolation{
        seed, config.horizon, "no-recovery",
        "supervisor/runtime/controller still unhealthy at end of horizon"});
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, config.horizon.value(), -1,
                      "no-recovery", report.violations.back().detail);
  } else if (report.max_share_delta > config.convergence_tolerance) {
    report.violations.push_back(SoakViolation{
        seed, config.horizon, "convergence",
        "max share delta " + std::to_string(report.max_share_delta) + " vs baseline"});
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, config.horizon.value(), -1,
                      "convergence", report.violations.back().detail);
  }
  report.journal = journal.Snapshot();

  uint64_t h = MixU64(0, seed);
  h = MixU64(h, static_cast<uint64_t>(report.events));
  h = MixU64(h, report.completed ? 1 : 0);
  h = MixU64(h, report.recovered ? 1 : 0);
  h = MixU64(h, report.trips);
  h = MixU64(h, report.recoveries);
  h = MixU64(h, report.reboots);
  h = MixU64(h, report.resyncs);
  h = MixU64(h, report.replayed_commands);
  h = MixU64(h, static_cast<uint64_t>(report.violations.size()) +
                    report.violations_dropped);
  h = MixDouble(h, report.max_share_delta);
  h = MixDouble(h, faulted.delivered.value());
  for (double soc : faulted.final_soc) {
    h = MixDouble(h, soc);
  }
  for (double share : faulted.final_shares) {
    h = MixDouble(h, share);
  }
  report.fingerprint = h;
  return report;
}

}  // namespace

FaultPlan MakeRandomFaultPlan(uint64_t seed, int batteries, Duration horizon,
                              int max_events) {
  SDB_CHECK(batteries > 0);
  SDB_CHECK(max_events > 0);
  SDB_CHECK(horizon.value() > 0.0);
  // Distinct stream from the injector's (which re-mixes plan.seed itself).
  Rng rng(seed ^ 0x5C4EDD1E5EEDULL);
  const FaultClass kinds[] = {
      FaultClass::kLinkTimeout,       FaultClass::kLinkCorruptReply,
      FaultClass::kGaugeBias,         FaultClass::kGaugeNoise,
      FaultClass::kGaugeStuck,        FaultClass::kRegulatorCollapse,
      FaultClass::kOpenCircuit,       FaultClass::kThermalTrip,
      FaultClass::kMicroCrash,        FaultClass::kMicroBrownout,
  };
  FaultPlan plan;
  plan.seed = seed;
  const int count = 1 + static_cast<int>(rng.NextBounded(max_events));
  for (int k = 0; k < count; ++k) {
    FaultEvent event;
    event.kind = kinds[rng.NextBounded(std::size(kinds))];
    // Every window closes by 70% of the horizon so the recovery lifecycle
    // and the reintegration ramp can finish before the convergence check.
    const double start = horizon.value() * rng.Uniform(0.05, 0.45);
    const double length = horizon.value() * rng.Uniform(0.03, 0.20);
    event.start = Seconds(start);
    event.end = Seconds(std::min(start + length, horizon.value() * 0.7));
    event.battery =
        IsLinkWide(event.kind) ? -1 : static_cast<int>(rng.NextBounded(batteries));
    switch (event.kind) {
      case FaultClass::kGaugeBias:
        event.magnitude = rng.Uniform(-0.3, 0.3);
        break;
      case FaultClass::kGaugeNoise:
        event.magnitude = rng.Uniform(5.0, 25.0);
        break;
      case FaultClass::kRegulatorCollapse:
        event.magnitude = rng.Uniform(0.5, 0.9);
        break;
      case FaultClass::kThermalTrip:
        event.magnitude = Celsius(rng.Uniform(62.0, 75.0)).value();
        break;
      default:
        event.magnitude = 0.0;
        break;
    }
    event.probability = (event.kind == FaultClass::kLinkTimeout ||
                         event.kind == FaultClass::kLinkCorruptReply)
                            ? rng.Uniform(0.3, 1.0)
                            : 1.0;
    plan.Add(event);
  }
  return plan;
}

SoakReport RunSoak(const SoakConfig& config) {
  SDB_CHECK(config.schedules > 0);
  SoakReport report;
  report.schedules.resize(config.schedules);

  // Index-slot determinism: schedule k writes only slot k, and everything
  // inside RunOneSchedule depends on (config, base_seed + k) alone, so any
  // worker count produces the same bytes.
  std::optional<ThreadPool> pool;
  if (config.jobs != 1) {
    pool.emplace(config.jobs);
  }
  std::vector<SoakScheduleReport>& slots = report.schedules;
  const SoakConfig& cfg = config;
  ParallelFor(pool.has_value() ? &*pool : nullptr, config.schedules,
              [&slots, &cfg](int64_t index) {
                slots[index] =
                    RunOneSchedule(cfg, cfg.base_seed + static_cast<uint64_t>(index));
              });

  uint64_t h = 0;
  for (const SoakScheduleReport& schedule : report.schedules) {
    report.total_violations +=
        schedule.violations.size() + schedule.violations_dropped;
    h = MixU64(h, schedule.fingerprint);
  }
  report.fingerprint = h;
  return report;
}

}  // namespace sdb

#include "src/emu/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "src/core/runtime.h"
#include "src/emu/simulator.h"
#include "src/emu/soak.h"
#include "src/hw/command_link.h"
#include "src/hw/microcontroller.h"
#include "src/hw/safety.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace sdb {

namespace {

constexpr size_t kMaxViolationsPerCase = 16;
constexpr uint64_t kSampleSalt = 0xF022BAD5EEDULL;
constexpr uint64_t kFaultSalt = 0xFA17F1A6ULL;
constexpr uint64_t kRigSalt = 0x2165EEDULL;

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  // FNV-1a; folded into the fingerprint via MixU64.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h = (h ^ c) * 0x100000001B3ULL;
  }
  return h;
}

std::string FormatG17(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

const FaultClass kAllFaultClasses[] = {
    FaultClass::kLinkTimeout,       FaultClass::kLinkCorruptReply,
    FaultClass::kGaugeBias,         FaultClass::kGaugeNoise,
    FaultClass::kGaugeStuck,        FaultClass::kRegulatorCollapse,
    FaultClass::kOpenCircuit,       FaultClass::kThermalTrip,
    FaultClass::kMicroCrash,        FaultClass::kMicroBrownout,
};

bool ParseFaultClass(const std::string& name, FaultClass* out) {
  for (FaultClass kind : kAllFaultClasses) {
    if (FaultClassName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// The fuzz rig's recovery doctrine matches the soak harness: recovery on,
// dwells short enough to complete inside a capped horizon.
RecoveryConfig FuzzRecovery() {
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.base_dwell = Minutes(3.0);
  recovery.dwell_backoff = 2.0;
  recovery.max_dwell = Minutes(12.0);
  recovery.probe_duration = Minutes(2.0);
  return recovery;
}

SimConfig CappedSimConfig(const ScenarioSpec& spec, const FuzzConfig& config) {
  SimConfig sim = spec.sim;
  sim.max_duration = Seconds(
      std::min(sim.max_duration.value(), config.horizon_cap.value()));
  sim.stop_on_shortfall = false;
  return sim;
}

// One fault-free policy run of the spec under explicit directives; returns
// the achieved lifetime (first shortfall, or the whole run when the load
// was always served).
Duration PolicyLifetime(const ScenarioSpec& spec, DirectiveParameters directives,
                        const FuzzConfig& config) {
  SdbMicrocontroller micro =
      MakeDefaultMicrocontroller(BuildScenarioCells(spec), spec.seed ^ kRigSalt);
  RuntimeConfig runtime_config;
  runtime_config.directives = directives;
  SdbRuntime runtime(&micro, runtime_config);
  Simulator sim(&runtime, CappedSimConfig(spec, config));
  SimResult result = sim.Run(spec.load, spec.supply);
  return result.first_shortfall.value_or(result.elapsed);
}

}  // namespace

// --- Reproducer lines --------------------------------------------------------

std::string FormatFuzzCase(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << "pack=" << fuzz_case.pack << " seed=" << fuzz_case.seed
     << " dch=" << FormatG17(fuzz_case.directives.discharging)
     << " chg=" << FormatG17(fuzz_case.directives.charging);
  for (const auto& [name, value] : fuzz_case.overrides) {
    os << " p:" << name << "=" << FormatG17(value);
  }
  if (!fuzz_case.faults.empty()) {
    os << " fseed=" << fuzz_case.faults.seed;
    for (const FaultEvent& event : fuzz_case.faults.events) {
      os << " fault=" << FaultClassName(event.kind) << ":"
         << FormatG17(event.start.value()) << ":" << FormatG17(event.end.value())
         << ":" << event.battery << ":" << FormatG17(event.magnitude) << ":"
         << FormatG17(event.probability);
    }
  }
  return os.str();
}

StatusOr<FuzzCase> ParseFuzzCase(const std::string& line) {
  FuzzCase fuzz_case;
  bool saw_pack = false;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("reproducer token without '=': '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "pack") {
      if (value.empty()) {
        return InvalidArgumentError("empty pack name");
      }
      fuzz_case.pack = value;
      saw_pack = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &fuzz_case.seed)) {
        return InvalidArgumentError("bad seed '" + value + "'");
      }
    } else if (key == "dch") {
      if (!ParseDouble(value, &fuzz_case.directives.discharging)) {
        return InvalidArgumentError("bad dch '" + value + "'");
      }
    } else if (key == "chg") {
      if (!ParseDouble(value, &fuzz_case.directives.charging)) {
        return InvalidArgumentError("bad chg '" + value + "'");
      }
    } else if (key == "fseed") {
      if (!ParseU64(value, &fuzz_case.faults.seed)) {
        return InvalidArgumentError("bad fseed '" + value + "'");
      }
    } else if (key.rfind("p:", 0) == 0) {
      double parsed = 0.0;
      if (!ParseDouble(value, &parsed)) {
        return InvalidArgumentError("bad parameter value '" + token + "'");
      }
      fuzz_case.overrides[key.substr(2)] = parsed;
    } else if (key == "fault") {
      const std::vector<std::string> parts = SplitOn(value, ':');
      if (parts.size() != 6) {
        return InvalidArgumentError(
            "fault wants kind:start:end:battery:mag:prob, got '" + value + "'");
      }
      FaultEvent event;
      double start = 0.0;
      double end = 0.0;
      double battery = 0.0;
      if (!ParseFaultClass(parts[0], &event.kind)) {
        return InvalidArgumentError("unknown fault kind '" + parts[0] + "'");
      }
      if (!ParseDouble(parts[1], &start) || !ParseDouble(parts[2], &end) ||
          !ParseDouble(parts[3], &battery) ||
          !ParseDouble(parts[4], &event.magnitude) ||
          !ParseDouble(parts[5], &event.probability)) {
        return InvalidArgumentError("bad fault numbers in '" + value + "'");
      }
      event.start = Seconds(start);
      event.end = Seconds(end);
      event.battery = static_cast<int>(battery);
      fuzz_case.faults.Add(event);
    } else {
      return InvalidArgumentError("unknown reproducer key '" + key + "'");
    }
  }
  if (!saw_pack) {
    return InvalidArgumentError("reproducer line has no pack= token");
  }
  return fuzz_case;
}

std::string FormatFuzzCorpus(const std::vector<FuzzCase>& cases) {
  std::ostringstream os;
  os << "# sdb fuzz corpus: one reproducer per line (sdbsim fuzz --replay)\n";
  for (const FuzzCase& fuzz_case : cases) {
    os << FormatFuzzCase(fuzz_case) << "\n";
  }
  return os.str();
}

StatusOr<std::vector<FuzzCase>> ParseFuzzCorpus(const std::string& text) {
  std::vector<FuzzCase> cases;
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    StatusOr<FuzzCase> parsed = ParseFuzzCase(line);
    if (!parsed.ok()) {
      return InvalidArgumentError("corpus line " + std::to_string(line_number) +
                                  ": " + std::string(parsed.status().message()));
    }
    cases.push_back(*std::move(parsed));
  }
  return cases;
}

// --- Sampling ----------------------------------------------------------------

FuzzCase SampleFuzzCase(const FuzzConfig& config, uint64_t case_seed) {
  Rng rng(case_seed ^ kSampleSalt);
  std::vector<std::string> names = config.packs;
  if (names.empty()) {
    for (const ScenarioPack& pack : ScenarioPacks()) {
      names.push_back(pack.name);
    }
  }
  FuzzCase fuzz_case;
  fuzz_case.pack = names[rng.NextBounded(names.size())];
  fuzz_case.seed = case_seed;
  const ScenarioPack* pack = FindScenarioPack(fuzz_case.pack);
  SDB_CHECK(pack != nullptr);
  // Each knob is overridden with probability 0.4; the rest stay at pack
  // defaults so shrinking has something to revert toward.
  for (const PackParamSpec& spec : pack->params) {
    const bool override_it = rng.NextDouble() < 0.4;
    const double value = rng.Uniform(spec.min_value, spec.max_value);
    if (override_it) {
      fuzz_case.overrides[spec.name] = value;
    }
  }
  fuzz_case.directives.discharging = rng.Uniform(0.05, 0.95);
  fuzz_case.directives.charging = rng.Uniform(0.05, 0.95);
  if (rng.NextDouble() < config.fault_probability) {
    StatusOr<ScenarioSpec> spec =
        ExpandScenario(fuzz_case.pack, fuzz_case.overrides, fuzz_case.seed);
    SDB_CHECK(spec.ok());  // Sampled overrides are in-range by construction.
    const Duration horizon =
        Seconds(std::min(spec->sim.max_duration.value(), config.horizon_cap.value()));
    fuzz_case.faults =
        MakeRandomFaultPlan(case_seed ^ kFaultSalt,
                            static_cast<int>(spec->batteries.size()), horizon,
                            std::max(1, config.max_fault_events));
  }
  return fuzz_case;
}

// --- Oracles -----------------------------------------------------------------

std::vector<FuzzViolation> EvaluateFuzzCase(
    const FuzzCase& fuzz_case, const FuzzConfig& config,
    std::vector<obs::JournalEvent>* journal) {
  // Hermetic journaling: the case plays under its own journal (or none at
  // all), never the caller's — shrink evaluations stay silent under an
  // installed process journal, and a captured journal holds exactly this
  // case's events regardless of which worker thread ran it.
  obs::EventJournal local_journal;
  obs::JournalScope journal_scope(journal != nullptr ? &local_journal : nullptr);
  std::vector<FuzzViolation> violations;
  uint64_t dropped = 0;
  auto add = [&](Duration at, const char* oracle, std::string detail) {
    if (violations.size() >= kMaxViolationsPerCase) {
      ++dropped;
      return;
    }
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, at.value(), -1, oracle,
                      detail);
    violations.push_back(FuzzViolation{oracle, std::move(detail), at});
  };

  StatusOr<ScenarioSpec> expanded =
      ExpandScenario(fuzz_case.pack, fuzz_case.overrides, fuzz_case.seed);
  if (!expanded.ok()) {
    add(Seconds(0.0), "expand", std::string(expanded.status().message()));
    if (journal != nullptr) {
      *journal = local_journal.Snapshot();
    }
    return violations;
  }
  const ScenarioSpec& spec = *expanded;

  // Main run: full rig (safety supervisor + command link + fault plan),
  // audited by the soak invariants on every hardware tick.
  SdbMicrocontroller micro =
      MakeDefaultMicrocontroller(BuildScenarioCells(spec), spec.seed ^ kRigSalt);
  std::vector<SafetyLimits> limits;
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    limits.push_back(DeriveLimits(micro.pack().cell(i).params()));
  }
  SafetySupervisor safety(limits, FuzzRecovery());
  micro.AttachSafety(&safety);
  if (!fuzz_case.faults.empty()) {
    micro.InstallFaults(fuzz_case.faults);
  }
  CommandLinkServer server(&micro);
  CommandLinkClient client(
      [&](const std::vector<uint8_t>& bytes) { return server.Receive(bytes); });
  client.AttachFaultInjector(micro.fault_injector());
  RuntimeConfig runtime_config;
  runtime_config.directives = fuzz_case.directives;
  runtime_config.reintegration_horizon = Minutes(10.0);
  SdbRuntime runtime(&micro, runtime_config);
  runtime.AttachLink(&client);

  std::vector<bool> prev_faulted(micro.battery_count(), false);
  std::vector<double> prev_cycles(micro.battery_count(), 0.0);
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    prev_cycles[i] = micro.pack().cell(i).aging().cycle_count();
  }

  // Supply-funded energy the SimResult ledger cannot split out: the slice
  // of the supply fed straight to the load (sampled exactly as the driver
  // loop samples it) and the charge regulator's own losses.
  double supply_to_load_j = 0.0;
  double charge_circuit_loss_j = 0.0;

  // Per-battery envelopes for oracle 3: a trip is only unexpected if no
  // battery was ever commanded past its own 80% power envelope — the
  // blended policy can legitimately concentrate an in-envelope pack load
  // onto one battery, and protecting that battery is the supervisor's job.
  std::vector<Power> battery_envelope;
  for (const BatteryParams& battery : spec.batteries) {
    battery_envelope.push_back(Watts(0.8 * battery.max_discharge_current.value() *
                                     battery.nominal_voltage.value()));
  }
  bool overdrive = false;

  // Oracle 3 counts only trips struck while the battery still held real
  // charge: an undervoltage trip at the bottom of the discharge curve is
  // the deep-discharge protection working, not a spurious trip.
  std::vector<uint64_t> prev_trips(micro.battery_count(), 0);
  uint64_t unexpected_trips = 0;

  SimConfig sim_config = CappedSimConfig(spec, config);
  sim_config.on_tick = [&](const MicroTick& tick, Duration now) {
    const Duration at = now - tick.dt;
    const Power load_power = spec.load.Sample(at);
    const Power supply_power = spec.supply.Sample(at);
    supply_to_load_j += std::min(std::max(0.0, load_power.value()),
                                 std::max(0.0, supply_power.value())) *
                        tick.dt.value();
    charge_circuit_loss_j += tick.charge.circuit_loss.value();
    const std::vector<double>& ratios = runtime.last_discharge_ratios();
    for (size_t i = 0; i < ratios.size() && i < battery_envelope.size(); ++i) {
      if (ratios[i] * std::max(0.0, load_power.value()) >
          battery_envelope[i].value()) {
        overdrive = true;
      }
    }
    for (size_t i = 0; i < micro.battery_count(); ++i) {
      const Cell& cell = micro.pack().cell(i);
      double soc = cell.soc();
      if (!std::isfinite(soc) || soc < 0.0 || soc > 1.0) {
        add(now, "soc-range",
            "battery " + std::to_string(i) + " soc " + std::to_string(soc));
      }
      double cycles = cell.aging().cycle_count();
      if (cycles + 1e-12 < prev_cycles[i]) {
        add(now, "cycle-monotone",
            "battery " + std::to_string(i) + " cycles " + std::to_string(cycles) +
                " < " + std::to_string(prev_cycles[i]));
      }
      prev_cycles[i] = cycles;
      if (prev_faulted[i]) {
        double discharge_a = i < tick.discharge.currents.size()
                                 ? std::fabs(tick.discharge.currents[i].value())
                                 : 0.0;
        double charge_a = i < tick.charge.currents.size()
                              ? std::fabs(tick.charge.currents[i].value())
                              : 0.0;
        if (discharge_a > 1e-9 || charge_a > 1e-9) {
          add(now, "faulted-current",
              "battery " + std::to_string(i) + " carried " +
                  std::to_string(std::max(discharge_a, charge_a)) +
                  " A while faulted");
        }
      }
      prev_faulted[i] = safety.IsFaulted(i);
      uint64_t trips = safety.trip_count(i);
      if (trips > prev_trips[i] && soc > 0.15) {
        unexpected_trips += trips - prev_trips[i];
      }
      prev_trips[i] = trips;
    }
  };

  double e0 = micro.pack().TotalRemainingEnergy().value();
  Simulator sim(&runtime, sim_config);
  SimResult result = sim.Run(spec.load, spec.supply);
  double e1 = micro.pack().TotalRemainingEnergy().value();

  // Oracle 2: the energy ledger balances. Cells fund the pack-served slice
  // of the load plus discharge/transfer losses and their own charge-time
  // resistive loss; the supply funds what it feeds the load directly, what
  // the pack absorbs, and the charge regulator's losses. Rearranged so
  // both sides are observable:
  //   (e0 - e1) + charged + supply_to_load
  //     = delivered + total_losses - charge_circuit_loss
  double drawn = (e0 - e1) + result.charged.value() + supply_to_load_j;
  double accounted = result.delivered.value() + result.TotalLoss().value() -
                     charge_circuit_loss_j;
  double tolerance = std::max(2.0, std::fabs(drawn) * config.energy_tolerance_fraction);
  if (!std::isfinite(accounted) || std::fabs(drawn - accounted) > tolerance) {
    add(result.elapsed, "ledger",
        "drawn " + std::to_string(drawn) + " J vs accounted " +
            std::to_string(accounted) + " J");
  }

  // Oracle 3: no safety trip on an in-envelope, fault-free load where no
  // battery was individually commanded past its own envelope either.
  if (fuzz_case.faults.empty() && !overdrive &&
      spec.load.PeakPower().value() <= spec.envelope.value() &&
      unexpected_trips > 0) {
    add(result.elapsed, "safety-trip",
        std::to_string(unexpected_trips) +
            " trip(s) on in-envelope fault-free load (peak " +
            std::to_string(spec.load.PeakPower().value()) + " W, envelope " +
            std::to_string(spec.envelope.value()) + " W)");
  }

  // Oracle 4: the sampled policy must stay within the configured fraction
  // of the best panel policy's lifetime on the fault-free twin.
  const double panel[] = {0.1, 0.5, 0.9};
  Duration sampled_lifetime = PolicyLifetime(spec, fuzz_case.directives, config);
  Duration best = sampled_lifetime;
  double best_directive = fuzz_case.directives.discharging;
  for (double d : panel) {
    DirectiveParameters directives;
    directives.discharging = d;
    directives.charging = d;
    Duration lifetime = PolicyLifetime(spec, directives, config);
    if (lifetime.value() > best.value()) {
      best = lifetime;
      best_directive = d;
    }
  }
  if (best.value() > 0.0 &&
      sampled_lifetime.value() <
          (1.0 - config.max_lifetime_loss_fraction) * best.value()) {
    add(result.elapsed, "policy-regression",
        "dch=" + FormatG17(fuzz_case.directives.discharging) + " lifetime " +
            std::to_string(sampled_lifetime.value()) + " s vs " +
            std::to_string(best.value()) + " s at panel dch=" +
            FormatG17(best_directive));
  }

  if (dropped > 0) {
    violations.back().detail += " (+" + std::to_string(dropped) + " dropped)";
  }
  if (journal != nullptr) {
    *journal = local_journal.Snapshot();
  }
  return violations;
}

// --- Shrinking ---------------------------------------------------------------

FuzzCase ShrinkFuzzCaseWith(const FuzzCase& fuzz_case,
                            const std::function<bool(const FuzzCase&)>& fails,
                            int budget, int* steps) {
  FuzzCase current = fuzz_case;
  int accepted = 0;
  int spent = 0;
  auto try_candidate = [&](const FuzzCase& candidate) {
    if (spent >= budget) {
      return false;
    }
    ++spent;
    if (!fails(candidate)) {
      return false;
    }
    current = candidate;
    ++accepted;
    return true;
  };
  bool reduced = true;
  while (reduced && spent < budget) {
    reduced = false;
    // Pass 1: drop fault events one at a time.
    for (size_t i = 0; i < current.faults.events.size();) {
      FuzzCase candidate = current;
      candidate.faults.events.erase(candidate.faults.events.begin() +
                                    static_cast<long>(i));
      if (try_candidate(candidate)) {
        reduced = true;  // `current` shrank; retry the same index.
      } else {
        ++i;
      }
    }
    // Pass 2: revert parameter overrides to pack defaults.
    std::vector<std::string> keys;
    for (const auto& [name, value] : current.overrides) {
      keys.push_back(name);
    }
    for (const std::string& name : keys) {
      FuzzCase candidate = current;
      candidate.overrides.erase(name);
      if (try_candidate(candidate)) {
        reduced = true;
      }
    }
    // Pass 3: snap directives to the neutral 0.5.
    if (current.directives.discharging != 0.5) {
      FuzzCase candidate = current;
      candidate.directives.discharging = 0.5;
      reduced = try_candidate(candidate) || reduced;
    }
    if (current.directives.charging != 0.5) {
      FuzzCase candidate = current;
      candidate.directives.charging = 0.5;
      reduced = try_candidate(candidate) || reduced;
    }
  }
  if (steps != nullptr) {
    *steps = accepted;
  }
  return current;
}

FuzzCase ShrinkFuzzCase(const FuzzCase& fuzz_case, const FuzzConfig& config,
                        int* steps) {
  return ShrinkFuzzCaseWith(
      fuzz_case,
      [&config](const FuzzCase& candidate) {
        return !EvaluateFuzzCase(candidate, config).empty();
      },
      config.shrink_budget, steps);
}

// --- The sweep ---------------------------------------------------------------

namespace {

FuzzCaseReport BuildCaseReport(FuzzCase sampled, const FuzzConfig& config,
                               bool shrink) {
  FuzzCaseReport report;
  report.sampled = std::move(sampled);
  report.violations = EvaluateFuzzCase(report.sampled, config, &report.journal);
  report.failed = !report.violations.empty();
  if (report.failed) {
    FuzzCase minimal = shrink
                           ? ShrinkFuzzCase(report.sampled, config,
                                            &report.shrink_steps)
                           : report.sampled;
    report.reproducer = FormatFuzzCase(minimal);
    if (report.reproducer != FormatFuzzCase(report.sampled)) {
      // The journal should narrate the case the reproducer line replays, so
      // re-run the shrunk case once with capture. The violations (and the
      // fingerprint they feed) stay those of the sampled case.
      EvaluateFuzzCase(minimal, config, &report.journal);
    }
  }
  uint64_t h = MixU64(0, report.sampled.seed);
  h = MixU64(h, HashString(FormatFuzzCase(report.sampled)));
  h = MixU64(h, report.failed ? 1 : 0);
  h = MixU64(h, static_cast<uint64_t>(report.violations.size()));
  for (const FuzzViolation& violation : report.violations) {
    h = MixU64(h, HashString(violation.oracle));
  }
  h = MixU64(h, HashString(report.reproducer));
  report.fingerprint = h;
  return report;
}

FuzzReport MergeCaseReports(std::vector<FuzzCaseReport> slots) {
  FuzzReport report;
  report.cases = std::move(slots);
  uint64_t h = 0;
  for (const FuzzCaseReport& fuzz_case : report.cases) {
    if (fuzz_case.failed) {
      ++report.failures;
    }
    h = MixU64(h, fuzz_case.fingerprint);
  }
  report.fingerprint = h;
  return report;
}

}  // namespace

StatusOr<FuzzReport> RunFuzz(const FuzzConfig& config) {
  if (config.cases <= 0) {
    return InvalidArgumentError("fuzz wants at least one case");
  }
  for (const std::string& name : config.packs) {
    if (FindScenarioPack(name) == nullptr) {
      return InvalidArgumentError("unknown pack '" + name +
                                  "' in fuzz pack list (sdbsim workload --list)");
    }
  }
  std::vector<FuzzCaseReport> slots(config.cases);
  std::optional<ThreadPool> pool;
  if (config.jobs != 1) {
    pool.emplace(config.jobs);
  }
  const FuzzConfig& cfg = config;
  // Index-slot determinism: case k depends on (config, master_seed + k)
  // alone and writes only slot k, so any worker count is bit-identical.
  ParallelFor(pool.has_value() ? &*pool : nullptr, config.cases,
              [&slots, &cfg](int64_t index) {
                slots[index] = BuildCaseReport(
                    SampleFuzzCase(cfg, cfg.master_seed + static_cast<uint64_t>(index)),
                    cfg, cfg.shrink);
              });
  return MergeCaseReports(std::move(slots));
}

FuzzReport ReplayFuzzCases(const std::vector<FuzzCase>& cases,
                           const FuzzConfig& config) {
  std::vector<FuzzCaseReport> slots(cases.size());
  std::optional<ThreadPool> pool;
  if (config.jobs != 1 && cases.size() > 1) {
    pool.emplace(config.jobs);
  }
  const FuzzConfig& cfg = config;
  ParallelFor(pool.has_value() ? &*pool : nullptr,
              static_cast<int64_t>(cases.size()),
              [&slots, &cases, &cfg](int64_t index) {
                // Replay never re-shrinks: the line under replay is already
                // the minimal case and must fail (or pass) as-is.
                slots[index] = BuildCaseReport(cases[index], cfg, /*shrink=*/false);
              });
  return MergeCaseReports(std::move(slots));
}

}  // namespace sdb

#include "src/emu/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "src/core/checkpoint/rig_codec.h"
#include "src/core/checkpoint/snapshot.h"
#include "src/core/checkpoint/store.h"
#include "src/core/runtime.h"
#include "src/emu/simulator.h"
#include "src/emu/soak.h"
#include "src/hw/command_link.h"
#include "src/hw/microcontroller.h"
#include "src/hw/safety.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace sdb {

namespace {

constexpr size_t kMaxViolationsPerCase = 16;
constexpr uint64_t kSampleSalt = 0xF022BAD5EEDULL;
constexpr uint64_t kFaultSalt = 0xFA17F1A6ULL;
constexpr uint64_t kRigSalt = 0x2165EEDULL;
// The crash/flip/charge-phase dimensions each draw from their own salted
// stream, so sampling them (or disabling them) leaves every pre-existing
// draw — and therefore the shape of historical corpora — untouched.
constexpr uint64_t kCrashSalt = 0xC2A54D175EEDULL;
constexpr uint64_t kFlipSalt = 0xF11BD1CE5EEDULL;
constexpr uint64_t kChargeFaultSalt = 0xC4A26EFA5EEDULL;
constexpr uint64_t kFuzzTornSalt = 0xF0221025EEDULL;

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  // FNV-1a; folded into the fingerprint via MixU64.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h = (h ^ c) * 0x100000001B3ULL;
  }
  return h;
}

std::string FormatG17(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

const FaultClass kAllFaultClasses[] = {
    FaultClass::kLinkTimeout,       FaultClass::kLinkCorruptReply,
    FaultClass::kGaugeBias,         FaultClass::kGaugeNoise,
    FaultClass::kGaugeStuck,        FaultClass::kRegulatorCollapse,
    FaultClass::kOpenCircuit,       FaultClass::kThermalTrip,
    FaultClass::kMicroCrash,        FaultClass::kMicroBrownout,
};

bool ParseFaultClass(const std::string& name, FaultClass* out) {
  for (FaultClass kind : kAllFaultClasses) {
    if (FaultClassName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseCrashBarrier(const std::string& name, CrashBarrier* out) {
  for (CrashBarrier barrier :
       {CrashBarrier::kPreAllocate, CrashBarrier::kPostAllocate,
        CrashBarrier::kMidCheckpointWrite}) {
    if (CrashBarrierName(barrier) == name) {
      *out = barrier;
      return true;
    }
  }
  return false;
}

bool ParseTornWriteKind(const std::string& name, TornWriteKind* out) {
  for (TornWriteKind kind : {TornWriteKind::kNone, TornWriteKind::kTruncate,
                             TornWriteKind::kZeroRange, TornWriteKind::kBitFlip}) {
    if (TornWriteKindName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// The fuzz rig's recovery doctrine matches the soak harness: recovery on,
// dwells short enough to complete inside a capped horizon.
RecoveryConfig FuzzRecovery() {
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.base_dwell = Minutes(3.0);
  recovery.dwell_backoff = 2.0;
  recovery.max_dwell = Minutes(12.0);
  recovery.probe_duration = Minutes(2.0);
  return recovery;
}

SimConfig CappedSimConfig(const ScenarioSpec& spec, const FuzzConfig& config) {
  SimConfig sim = spec.sim;
  sim.max_duration = Seconds(
      std::min(sim.max_duration.value(), config.horizon_cap.value()));
  sim.stop_on_shortfall = false;
  return sim;
}

// One fault-free policy run of the spec under explicit directives; returns
// the achieved lifetime (first shortfall, or the whole run when the load
// was always served).
Duration PolicyLifetime(const ScenarioSpec& spec, DirectiveParameters directives,
                        const FuzzConfig& config) {
  SdbMicrocontroller micro =
      MakeDefaultMicrocontroller(BuildScenarioCells(spec), spec.seed ^ kRigSalt);
  RuntimeConfig runtime_config;
  runtime_config.directives = directives;
  SdbRuntime runtime(&micro, runtime_config);
  Simulator sim(&runtime, CappedSimConfig(spec, config));
  SimResult result = sim.Run(spec.load, spec.supply);
  return result.first_shortfall.value_or(result.elapsed);
}

std::vector<SafetyLimits> FuzzLimits(const SdbMicrocontroller& micro) {
  std::vector<SafetyLimits> limits;
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    limits.push_back(DeriveLimits(micro.pack().cell(i).params()));
  }
  return limits;
}

RuntimeConfig FuzzRuntimeConfig(const FuzzCase& fuzz_case) {
  RuntimeConfig config;
  config.directives = fuzz_case.directives;
  config.reintegration_horizon = Minutes(10.0);
  return config;
}

// The full rig a fuzz case plays against: microcontroller + supervisor +
// command link + runtime, faults installed before the injector attaches to
// the link. Heap-held by the crash-equivalence oracle, which rebuilds it
// across simulated process deaths — components point at each other, so a
// rig never moves.
struct FuzzRig {
  FuzzRig(const ScenarioSpec& spec, const FuzzCase& fuzz_case)
      : micro(MakeDefaultMicrocontroller(BuildScenarioCells(spec),
                                         spec.seed ^ kRigSalt)),
        safety(FuzzLimits(micro), FuzzRecovery()),
        server(&micro),
        client([this](const std::vector<uint8_t>& bytes) {
          return server.Receive(bytes);
        }),
        runtime(&micro, FuzzRuntimeConfig(fuzz_case)) {
    micro.AttachSafety(&safety);
    if (!fuzz_case.faults.empty()) {
      micro.InstallFaults(fuzz_case.faults);
    }
    client.AttachFaultInjector(micro.fault_injector());
    runtime.AttachLink(&client);
  }

  FuzzRig(const FuzzRig&) = delete;
  FuzzRig& operator=(const FuzzRig&) = delete;

  SdbMicrocontroller micro;
  SafetySupervisor safety;
  CommandLinkServer server;
  CommandLinkClient client;
  SdbRuntime runtime;
};

// Applies every directive flip whose time has passed. Called from on_tick
// by the main run and its crash twin alike, so both play the same policy
// timeline; after a warm restart the cursor is re-derived from the resume
// clock (the flips' effect itself rides in the restored RuntimeState).
void ApplyDueFlips(const FuzzCase& fuzz_case, FuzzRig& rig, Duration now,
                   size_t* cursor) {
  while (*cursor < fuzz_case.flips.size() &&
         fuzz_case.flips[*cursor].time.value() <= now.value()) {
    const DirectiveFlip& flip = fuzz_case.flips[*cursor];
    DirectiveParameters directives;
    directives.discharging = flip.discharging;
    directives.charging = flip.charging;
    rig.runtime.SetDirectives(directives);
    ++(*cursor);
  }
}

// The crash twin checkpoints the core rig sections plus the driver-loop
// state; the os-layer sections the crash soak carries (predictor,
// classifier) have no counterpart in the fuzz rig.
checkpoint::Snapshot SnapshotFuzzRig(const FuzzRig& rig, const SimLoopState& state) {
  checkpoint::Snapshot snap;
  snap.AddSection(checkpoint::kSectionMicro,
                  checkpoint::EncodeMicroState(rig.micro.SaveState()));
  snap.AddSection(checkpoint::kSectionSafety,
                  checkpoint::EncodeSupervisorState(rig.safety.SaveState()));
  snap.AddSection(checkpoint::kSectionLink,
                  checkpoint::EncodeLinkState(
                      {rig.client.SaveState(), rig.server.SaveState()}));
  snap.AddSection(checkpoint::kSectionRuntime,
                  checkpoint::EncodeRuntimeState(rig.runtime.SaveState()));
  snap.AddSection(checkpoint::kSectionSimLoop, EncodeSimLoopState(state));
  return snap;
}

Status MissingFuzzSection(const char* name) {
  return InvalidArgumentError(std::string("checkpoint: snapshot is missing the ") +
                              name + " section");
}

// Restores every component of a freshly-built rig from the snapshot and
// completes the boot-count resync handshake. Decodes everything before
// mutating anything, hardware first (mirrors the crash soak's RestoreRig).
Status RestoreFuzzRig(FuzzRig& rig, const checkpoint::Snapshot& snap,
                      SimLoopState* loop) {
  const checkpoint::Section* micro_s = snap.FindSection(checkpoint::kSectionMicro);
  const checkpoint::Section* safety_s = snap.FindSection(checkpoint::kSectionSafety);
  const checkpoint::Section* link_s = snap.FindSection(checkpoint::kSectionLink);
  const checkpoint::Section* runtime_s = snap.FindSection(checkpoint::kSectionRuntime);
  const checkpoint::Section* loop_s = snap.FindSection(checkpoint::kSectionSimLoop);
  if (micro_s == nullptr) return MissingFuzzSection("microcontroller");
  if (safety_s == nullptr) return MissingFuzzSection("safety");
  if (link_s == nullptr) return MissingFuzzSection("link");
  if (runtime_s == nullptr) return MissingFuzzSection("runtime");
  if (loop_s == nullptr) return MissingFuzzSection("sim-loop");

  StatusOr<MicroState> micro_state = checkpoint::DecodeMicroState(micro_s->bytes);
  SDB_RETURN_IF_ERROR(micro_state.status());
  StatusOr<SafetySupervisor::SupervisorState> safety_state =
      checkpoint::DecodeSupervisorState(safety_s->bytes);
  SDB_RETURN_IF_ERROR(safety_state.status());
  StatusOr<checkpoint::LinkState> link_state =
      checkpoint::DecodeLinkState(link_s->bytes);
  SDB_RETURN_IF_ERROR(link_state.status());
  StatusOr<RuntimeState> runtime_state =
      checkpoint::DecodeRuntimeState(runtime_s->bytes);
  SDB_RETURN_IF_ERROR(runtime_state.status());
  StatusOr<SimLoopState> loop_state = DecodeSimLoopState(loop_s->bytes);
  SDB_RETURN_IF_ERROR(loop_state.status());

  SDB_RETURN_IF_ERROR(rig.micro.RestoreState(*micro_state));
  rig.micro.RequireResync();
  SDB_RETURN_IF_ERROR(rig.safety.RestoreState(*safety_state));
  rig.server.RestoreState(link_state->server);
  rig.client.RestoreState(link_state->client);
  StatusOr<RestoreReport> resync = rig.runtime.RestoreAndResync(*runtime_state);
  SDB_RETURN_IF_ERROR(resync.status());
  *loop = std::move(*loop_state);
  return Status::Ok();
}

}  // namespace

// --- Reproducer lines --------------------------------------------------------

std::string FormatFuzzCase(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << "pack=" << fuzz_case.pack << " seed=" << fuzz_case.seed
     << " dch=" << FormatG17(fuzz_case.directives.discharging)
     << " chg=" << FormatG17(fuzz_case.directives.charging);
  for (const auto& [name, value] : fuzz_case.overrides) {
    os << " p:" << name << "=" << FormatG17(value);
  }
  if (!fuzz_case.faults.empty()) {
    os << " fseed=" << fuzz_case.faults.seed;
    for (const FaultEvent& event : fuzz_case.faults.events) {
      os << " fault=" << FaultClassName(event.kind) << ":"
         << FormatG17(event.start.value()) << ":" << FormatG17(event.end.value())
         << ":" << event.battery << ":" << FormatG17(event.magnitude) << ":"
         << FormatG17(event.probability);
    }
  }
  for (const CrashEvent& event : fuzz_case.crashes) {
    os << " crash=" << CrashBarrierName(event.barrier) << ":"
       << TornWriteKindName(event.torn) << ":" << FormatG17(event.time.value());
  }
  for (const DirectiveFlip& flip : fuzz_case.flips) {
    os << " flip=" << FormatG17(flip.time.value()) << ":"
       << FormatG17(flip.discharging) << ":" << FormatG17(flip.charging);
  }
  return os.str();
}

StatusOr<FuzzCase> ParseFuzzCase(const std::string& line) {
  FuzzCase fuzz_case;
  bool saw_pack = false;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("reproducer token without '=': '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "pack") {
      if (value.empty()) {
        return InvalidArgumentError("empty pack name");
      }
      fuzz_case.pack = value;
      saw_pack = true;
    } else if (key == "seed") {
      if (!ParseU64(value, &fuzz_case.seed)) {
        return InvalidArgumentError("bad seed '" + value + "'");
      }
    } else if (key == "dch") {
      if (!ParseDouble(value, &fuzz_case.directives.discharging)) {
        return InvalidArgumentError("bad dch '" + value + "'");
      }
    } else if (key == "chg") {
      if (!ParseDouble(value, &fuzz_case.directives.charging)) {
        return InvalidArgumentError("bad chg '" + value + "'");
      }
    } else if (key == "fseed") {
      if (!ParseU64(value, &fuzz_case.faults.seed)) {
        return InvalidArgumentError("bad fseed '" + value + "'");
      }
    } else if (key.rfind("p:", 0) == 0) {
      double parsed = 0.0;
      if (!ParseDouble(value, &parsed)) {
        return InvalidArgumentError("bad parameter value '" + token + "'");
      }
      fuzz_case.overrides[key.substr(2)] = parsed;
    } else if (key == "fault") {
      const std::vector<std::string> parts = SplitOn(value, ':');
      if (parts.size() != 6) {
        return InvalidArgumentError(
            "fault wants kind:start:end:battery:mag:prob, got '" + value + "'");
      }
      FaultEvent event;
      double start = 0.0;
      double end = 0.0;
      double battery = 0.0;
      if (!ParseFaultClass(parts[0], &event.kind)) {
        return InvalidArgumentError("unknown fault kind '" + parts[0] + "'");
      }
      if (!ParseDouble(parts[1], &start) || !ParseDouble(parts[2], &end) ||
          !ParseDouble(parts[3], &battery) ||
          !ParseDouble(parts[4], &event.magnitude) ||
          !ParseDouble(parts[5], &event.probability)) {
        return InvalidArgumentError("bad fault numbers in '" + value + "'");
      }
      event.start = Seconds(start);
      event.end = Seconds(end);
      event.battery = static_cast<int>(battery);
      fuzz_case.faults.Add(event);
    } else if (key == "crash") {
      const std::vector<std::string> parts = SplitOn(value, ':');
      if (parts.size() != 3) {
        return InvalidArgumentError("crash wants barrier:torn:time, got '" +
                                    value + "'");
      }
      CrashEvent event;
      double time = 0.0;
      if (!ParseCrashBarrier(parts[0], &event.barrier)) {
        return InvalidArgumentError("unknown crash barrier '" + parts[0] + "'");
      }
      if (!ParseTornWriteKind(parts[1], &event.torn)) {
        return InvalidArgumentError("unknown torn-write kind '" + parts[1] + "'");
      }
      if (!ParseDouble(parts[2], &time)) {
        return InvalidArgumentError("bad crash time in '" + value + "'");
      }
      event.time = Seconds(time);
      fuzz_case.crashes.push_back(event);
    } else if (key == "flip") {
      const std::vector<std::string> parts = SplitOn(value, ':');
      if (parts.size() != 3) {
        return InvalidArgumentError("flip wants time:dch:chg, got '" + value +
                                    "'");
      }
      DirectiveFlip flip;
      double time = 0.0;
      if (!ParseDouble(parts[0], &time) ||
          !ParseDouble(parts[1], &flip.discharging) ||
          !ParseDouble(parts[2], &flip.charging)) {
        return InvalidArgumentError("bad flip numbers in '" + value + "'");
      }
      flip.time = Seconds(time);
      fuzz_case.flips.push_back(flip);
    } else {
      return InvalidArgumentError("unknown reproducer key '" + key + "'");
    }
  }
  if (!saw_pack) {
    return InvalidArgumentError("reproducer line has no pack= token");
  }
  return fuzz_case;
}

std::string FormatFuzzCorpus(const std::vector<FuzzCase>& cases) {
  std::ostringstream os;
  os << "# sdb fuzz corpus: one reproducer per line (sdbsim fuzz --replay)\n";
  for (const FuzzCase& fuzz_case : cases) {
    os << FormatFuzzCase(fuzz_case) << "\n";
  }
  return os.str();
}

StatusOr<std::vector<FuzzCase>> ParseFuzzCorpus(const std::string& text) {
  std::vector<FuzzCase> cases;
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    StatusOr<FuzzCase> parsed = ParseFuzzCase(line);
    if (!parsed.ok()) {
      return InvalidArgumentError("corpus line " + std::to_string(line_number) +
                                  ": " + std::string(parsed.status().message()));
    }
    cases.push_back(*std::move(parsed));
  }
  return cases;
}

// --- Sampling ----------------------------------------------------------------

FuzzCase SampleFuzzCase(const FuzzConfig& config, uint64_t case_seed) {
  Rng rng(case_seed ^ kSampleSalt);
  std::vector<std::string> names = config.packs;
  if (names.empty()) {
    for (const ScenarioPack& pack : ScenarioPacks()) {
      names.push_back(pack.name);
    }
  }
  FuzzCase fuzz_case;
  fuzz_case.pack = names[rng.NextBounded(names.size())];
  fuzz_case.seed = case_seed;
  const ScenarioPack* pack = FindScenarioPack(fuzz_case.pack);
  SDB_CHECK(pack != nullptr);
  // Each knob is overridden with probability 0.4; the rest stay at pack
  // defaults so shrinking has something to revert toward.
  for (const PackParamSpec& spec : pack->params) {
    const bool override_it = rng.NextDouble() < 0.4;
    const double value = rng.Uniform(spec.min_value, spec.max_value);
    if (override_it) {
      fuzz_case.overrides[spec.name] = value;
    }
  }
  fuzz_case.directives.discharging = rng.Uniform(0.05, 0.95);
  fuzz_case.directives.charging = rng.Uniform(0.05, 0.95);
  if (rng.NextDouble() < config.fault_probability) {
    StatusOr<ScenarioSpec> spec =
        ExpandScenario(fuzz_case.pack, fuzz_case.overrides, fuzz_case.seed);
    SDB_CHECK(spec.ok());  // Sampled overrides are in-range by construction.
    const Duration horizon =
        Seconds(std::min(spec->sim.max_duration.value(), config.horizon_cap.value()));
    fuzz_case.faults =
        MakeRandomFaultPlan(case_seed ^ kFaultSalt,
                            static_cast<int>(spec->batteries.size()), horizon,
                            std::max(1, config.max_fault_events));
  }

  // The dimensions below draw from their own salted streams (see the salt
  // block up top) and need the expanded spec for windows and horizons.
  StatusOr<ScenarioSpec> spec =
      ExpandScenario(fuzz_case.pack, fuzz_case.overrides, fuzz_case.seed);
  SDB_CHECK(spec.ok());
  const Duration horizon =
      Seconds(std::min(spec->sim.max_duration.value(), config.horizon_cap.value()));

  // Charge-phase faults: when the scenario has a live supply window, aim one
  // fault drawn from the kinds that matter while charging at a supply-active
  // span, so recovery and replanning get exercised mid-charge too.
  Rng charge_rng(case_seed ^ kChargeFaultSalt);
  if (!spec->supply.empty() && charge_rng.NextDouble() < 0.5) {
    std::vector<const TraceSegment*> active;
    for (const TraceSegment& segment : spec->supply.segments()) {
      if (segment.power.value() > 0.0 && segment.start.value() < horizon.value()) {
        active.push_back(&segment);
      }
    }
    if (!active.empty()) {
      const TraceSegment& segment = *active[charge_rng.NextBounded(active.size())];
      const double span_start = segment.start.value();
      const double span_end =
          std::min(span_start + segment.duration.value(), horizon.value());
      const FaultClass kinds[] = {
          FaultClass::kRegulatorCollapse, FaultClass::kThermalTrip,
          FaultClass::kGaugeBias, FaultClass::kGaugeStuck};
      FaultEvent event;
      event.kind = kinds[charge_rng.NextBounded(std::size(kinds))];
      const double start = charge_rng.Uniform(span_start, span_end);
      event.start = Seconds(start);
      event.end = Seconds(std::min(
          span_end, start + std::max(30.0, 0.25 * (span_end - span_start))));
      event.battery =
          static_cast<int>(charge_rng.NextBounded(spec->batteries.size()));
      switch (event.kind) {
        case FaultClass::kRegulatorCollapse:
          event.magnitude = charge_rng.Uniform(0.5, 0.9);
          break;
        case FaultClass::kThermalTrip:
          event.magnitude = Celsius(charge_rng.Uniform(62.0, 75.0)).value();
          break;
        case FaultClass::kGaugeBias:
          event.magnitude = charge_rng.Uniform(-0.3, 0.3);
          break;
        default:
          event.magnitude = 0.0;
          break;
      }
      if (fuzz_case.faults.empty()) {
        fuzz_case.faults.seed = case_seed ^ kChargeFaultSalt;
      }
      fuzz_case.faults.Add(event);
    }
  }

  // Crash schedule (oracle 5): seeded kill points, torn checkpoint writes.
  Rng crash_rng(case_seed ^ kCrashSalt);
  if (crash_rng.NextDouble() < config.crash_probability) {
    fuzz_case.crashes =
        MakeRandomCrashPlan(case_seed ^ kCrashSalt, horizon,
                            std::max(1, config.max_crash_events))
            .events;
  }

  // Directive flips: when the case has faults, aim them just after a fault
  // window closes — the supervisor's CoolDown → Probing recovery window —
  // so replanning under new directives meets a still-recovering pack.
  Rng flip_rng(case_seed ^ kFlipSalt);
  if (flip_rng.NextDouble() < config.flip_probability) {
    const int count = 1 + static_cast<int>(flip_rng.NextBounded(
                              std::max(1, config.max_directive_flips)));
    for (int k = 0; k < count; ++k) {
      DirectiveFlip flip;
      if (!fuzz_case.faults.events.empty()) {
        const FaultEvent& fault = fuzz_case.faults.events[flip_rng.NextBounded(
            fuzz_case.faults.events.size())];
        flip.time = Seconds(std::min(
            fault.end.value() + flip_rng.Uniform(0.0, Minutes(10.0).value()),
            horizon.value()));
      } else {
        flip.time = Seconds(horizon.value() * flip_rng.Uniform(0.1, 0.9));
      }
      flip.discharging = flip_rng.Uniform(0.05, 0.95);
      flip.charging = flip_rng.Uniform(0.05, 0.95);
      fuzz_case.flips.push_back(flip);
    }
    std::sort(fuzz_case.flips.begin(), fuzz_case.flips.end(),
              [](const DirectiveFlip& a, const DirectiveFlip& b) {
                return a.time.value() < b.time.value();
              });
  }
  return fuzz_case;
}

// --- Oracles -----------------------------------------------------------------

std::vector<FuzzViolation> EvaluateFuzzCase(
    const FuzzCase& fuzz_case, const FuzzConfig& config,
    std::vector<obs::JournalEvent>* journal) {
  // Hermetic journaling: the case plays under its own journal (or none at
  // all), never the caller's — shrink evaluations stay silent under an
  // installed process journal, and a captured journal holds exactly this
  // case's events regardless of which worker thread ran it.
  obs::EventJournal local_journal;
  obs::JournalScope journal_scope(journal != nullptr ? &local_journal : nullptr);
  std::vector<FuzzViolation> violations;
  uint64_t dropped = 0;
  auto add = [&](Duration at, const char* oracle, std::string detail) {
    if (violations.size() >= kMaxViolationsPerCase) {
      ++dropped;
      return;
    }
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, at.value(), -1, oracle,
                      detail);
    violations.push_back(FuzzViolation{oracle, std::move(detail), at});
  };

  StatusOr<ScenarioSpec> expanded =
      ExpandScenario(fuzz_case.pack, fuzz_case.overrides, fuzz_case.seed);
  if (!expanded.ok()) {
    add(Seconds(0.0), "expand", std::string(expanded.status().message()));
    if (journal != nullptr) {
      *journal = local_journal.Snapshot();
    }
    return violations;
  }
  const ScenarioSpec& spec = *expanded;

  // Main run: full rig (safety supervisor + command link + fault plan),
  // audited by the soak invariants on every hardware tick.
  FuzzRig rig(spec, fuzz_case);

  std::vector<bool> prev_faulted(rig.micro.battery_count(), false);
  std::vector<double> prev_cycles(rig.micro.battery_count(), 0.0);
  for (size_t i = 0; i < rig.micro.battery_count(); ++i) {
    prev_cycles[i] = rig.micro.pack().cell(i).aging().cycle_count();
  }

  // Supply-funded energy the SimResult ledger cannot split out: the slice
  // of the supply fed straight to the load (sampled exactly as the driver
  // loop samples it) and the charge regulator's own losses.
  double supply_to_load_j = 0.0;
  double charge_circuit_loss_j = 0.0;

  // Per-battery envelopes for oracle 3: a trip is only unexpected if no
  // battery was ever commanded past its own 80% power envelope — the
  // blended policy can legitimately concentrate an in-envelope pack load
  // onto one battery, and protecting that battery is the supervisor's job.
  std::vector<Power> battery_envelope;
  for (const BatteryParams& battery : spec.batteries) {
    battery_envelope.push_back(Watts(0.8 * battery.max_discharge_current.value() *
                                     battery.nominal_voltage.value()));
  }
  bool overdrive = false;

  // Oracle 3 counts only trips struck while the battery still held real
  // charge: an undervoltage trip at the bottom of the discharge curve is
  // the deep-discharge protection working, not a spurious trip.
  std::vector<uint64_t> prev_trips(rig.micro.battery_count(), 0);
  uint64_t unexpected_trips = 0;

  size_t flip_cursor = 0;
  SimConfig sim_config = CappedSimConfig(spec, config);
  sim_config.on_tick = [&](const MicroTick& tick, Duration now) {
    ApplyDueFlips(fuzz_case, rig, now, &flip_cursor);
    const Duration at = now - tick.dt;
    const Power load_power = spec.load.Sample(at);
    const Power supply_power = spec.supply.Sample(at);
    supply_to_load_j += std::min(std::max(0.0, load_power.value()),
                                 std::max(0.0, supply_power.value())) *
                        tick.dt.value();
    charge_circuit_loss_j += tick.charge.circuit_loss.value();
    const std::vector<double>& ratios = rig.runtime.last_discharge_ratios();
    for (size_t i = 0; i < ratios.size() && i < battery_envelope.size(); ++i) {
      if (ratios[i] * std::max(0.0, load_power.value()) >
          battery_envelope[i].value()) {
        overdrive = true;
      }
    }
    for (size_t i = 0; i < rig.micro.battery_count(); ++i) {
      const Cell& cell = rig.micro.pack().cell(i);
      double soc = cell.soc();
      if (!std::isfinite(soc) || soc < 0.0 || soc > 1.0) {
        add(now, "soc-range",
            "battery " + std::to_string(i) + " soc " + std::to_string(soc));
      }
      double cycles = cell.aging().cycle_count();
      if (cycles + 1e-12 < prev_cycles[i]) {
        add(now, "cycle-monotone",
            "battery " + std::to_string(i) + " cycles " + std::to_string(cycles) +
                " < " + std::to_string(prev_cycles[i]));
      }
      prev_cycles[i] = cycles;
      if (prev_faulted[i]) {
        double discharge_a = i < tick.discharge.currents.size()
                                 ? std::fabs(tick.discharge.currents[i].value())
                                 : 0.0;
        double charge_a = i < tick.charge.currents.size()
                              ? std::fabs(tick.charge.currents[i].value())
                              : 0.0;
        if (discharge_a > 1e-9 || charge_a > 1e-9) {
          add(now, "faulted-current",
              "battery " + std::to_string(i) + " carried " +
                  std::to_string(std::max(discharge_a, charge_a)) +
                  " A while faulted");
        }
      }
      prev_faulted[i] = rig.safety.IsFaulted(i);
      uint64_t trips = rig.safety.trip_count(i);
      if (trips > prev_trips[i] && soc > 0.15) {
        unexpected_trips += trips - prev_trips[i];
      }
      prev_trips[i] = trips;
    }
  };

  double e0 = rig.micro.pack().TotalRemainingEnergy().value();
  Simulator sim(&rig.runtime, sim_config);
  SimResult result = sim.Run(spec.load, spec.supply);
  double e1 = rig.micro.pack().TotalRemainingEnergy().value();

  // Oracle 2: the energy ledger balances. Cells fund the pack-served slice
  // of the load plus discharge/transfer losses and their own charge-time
  // resistive loss; the supply funds what it feeds the load directly, what
  // the pack absorbs, and the charge regulator's losses. Rearranged so
  // both sides are observable:
  //   (e0 - e1) + charged + supply_to_load
  //     = delivered + total_losses - charge_circuit_loss
  double drawn = (e0 - e1) + result.charged.value() + supply_to_load_j;
  double accounted = result.delivered.value() + result.TotalLoss().value() -
                     charge_circuit_loss_j;
  double tolerance = std::max(2.0, std::fabs(drawn) * config.energy_tolerance_fraction);
  if (!std::isfinite(accounted) || std::fabs(drawn - accounted) > tolerance) {
    add(result.elapsed, "ledger",
        "drawn " + std::to_string(drawn) + " J vs accounted " +
            std::to_string(accounted) + " J");
  }

  // Oracle 3: no safety trip on an in-envelope, fault-free load where no
  // battery was individually commanded past its own envelope either.
  if (fuzz_case.faults.empty() && !overdrive &&
      spec.load.PeakPower().value() <= spec.envelope.value() &&
      unexpected_trips > 0) {
    add(result.elapsed, "safety-trip",
        std::to_string(unexpected_trips) +
            " trip(s) on in-envelope fault-free load (peak " +
            std::to_string(spec.load.PeakPower().value()) + " W, envelope " +
            std::to_string(spec.envelope.value()) + " W)");
  }

  // Oracle 4: the sampled policy must stay within the configured fraction
  // of the best panel policy's lifetime on the fault-free twin.
  const double panel[] = {0.1, 0.5, 0.9};
  Duration sampled_lifetime = PolicyLifetime(spec, fuzz_case.directives, config);
  Duration best = sampled_lifetime;
  double best_directive = fuzz_case.directives.discharging;
  for (double d : panel) {
    DirectiveParameters directives;
    directives.discharging = d;
    directives.charging = d;
    Duration lifetime = PolicyLifetime(spec, directives, config);
    if (lifetime.value() > best.value()) {
      best = lifetime;
      best_directive = d;
    }
  }
  if (best.value() > 0.0 &&
      sampled_lifetime.value() <
          (1.0 - config.max_lifetime_loss_fraction) * best.value()) {
    add(result.elapsed, "policy-regression",
        "dch=" + FormatG17(fuzz_case.directives.discharging) + " lifetime " +
            std::to_string(sampled_lifetime.value()) + " s vs " +
            std::to_string(best.value()) + " s at panel dch=" +
            FormatG17(best_directive));
  }

  // Oracle 5: crash equivalence. Replay the case with checkpointing on and
  // the scheduled deaths injected — killed at the named barriers, tearing
  // the checkpoint write when scheduled, warm-restarted from the last good
  // A/B slot (cold start when no slot survived). The final result must be
  // bit-identical to the never-crashed main run above; a failed restore of
  // a slot the store called good is a violation too.
  if (!fuzz_case.crashes.empty()) {
    std::vector<CrashEvent> crashes = fuzz_case.crashes;
    std::sort(crashes.begin(), crashes.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                return a.time.value() < b.time.value();
              });
    checkpoint::MemorySlotDevice device;
    const uint64_t digest =
        MixU64(MixU64(0, fuzz_case.seed), HashString(fuzz_case.pack));
    size_t crash_index = 0;
    auto twin = std::make_unique<FuzzRig>(spec, fuzz_case);
    auto store = std::make_unique<checkpoint::CheckpointStore>(&device, digest);
    bool cold_boot = true;
    SimLoopState resume_state;
    SimResult twin_result;
    bool restore_failed = false;
    for (;;) {
      size_t twin_cursor = 0;
      if (!cold_boot) {
        // Flips at or before the checkpoint were applied before the
        // snapshot and ride in the restored RuntimeState.
        while (twin_cursor < fuzz_case.flips.size() &&
               fuzz_case.flips[twin_cursor].time.value() <=
                   resume_state.t.value()) {
          ++twin_cursor;
        }
      }
      SimConfig twin_config = CappedSimConfig(spec, config);
      twin_config.checkpoint_period = config.crash_checkpoint_period;
      FuzzRig* twin_ptr = twin.get();
      checkpoint::CheckpointStore* store_ptr = store.get();
      twin_config.on_tick = [&fuzz_case, twin_ptr, &twin_cursor](
                                const MicroTick&, Duration now) {
        ApplyDueFlips(fuzz_case, *twin_ptr, now, &twin_cursor);
      };
      twin_config.on_barrier = [&crashes, &crash_index](CrashBarrier barrier,
                                                        Duration now) {
        if (crash_index < crashes.size()) {
          const CrashEvent& next = crashes[crash_index];
          if (next.barrier == barrier && now.value() >= next.time.value()) {
            ++crash_index;
            SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, now.value(), -1,
                              "crash-injected",
                              std::string(CrashBarrierName(barrier)));
            return false;
          }
        }
        return true;
      };
      twin_config.on_checkpoint = [&](const SimLoopState& state) {
        bool die = false;
        if (crash_index < crashes.size()) {
          const CrashEvent& next = crashes[crash_index];
          if (next.barrier == CrashBarrier::kMidCheckpointWrite &&
              state.t.value() >= next.time.value()) {
            die = true;
            if (next.torn != TornWriteKind::kNone) {
              const TornWriteKind torn = next.torn;
              const uint64_t torn_seed =
                  fuzz_case.seed ^ kFuzzTornSalt ^ crash_index;
              store_ptr->SetWriteMutatorOnce(
                  [torn, torn_seed](std::vector<uint8_t>& bytes) {
                    ApplyTornWrite(torn, torn_seed, bytes);
                  });
            }
            ++crash_index;
            SDB_JOURNAL_EVENT(
                obs::EventKind::kSimEvent, state.t.value(), -1,
                "crash-injected",
                std::string(CrashBarrierName(CrashBarrier::kMidCheckpointWrite)) +
                    (next.torn != TornWriteKind::kNone
                         ? std::string(":") +
                               std::string(TornWriteKindName(next.torn))
                         : std::string()));
          }
        }
        Status saved = store_ptr->Save(SnapshotFuzzRig(*twin_ptr, state), state.t);
        if (!saved.ok()) {
          add(state.t, "crash-save", saved.ToString());
        }
        return !die;
      };
      Simulator twin_sim(&twin->runtime, twin_config);
      twin_result = cold_boot ? twin_sim.Run(spec.load, spec.supply)
                              : twin_sim.Resume(resume_state, spec.load, spec.supply);
      if (!twin_result.crashed) {
        break;
      }
      // Process death: rig and store die; only the slot device survives.
      twin = std::make_unique<FuzzRig>(spec, fuzz_case);
      store = std::make_unique<checkpoint::CheckpointStore>(&device, digest);
      StatusOr<checkpoint::LoadResult> loaded = store->LoadLastGood();
      if (!loaded.ok()) {
        SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointRestore, -1.0, -1,
                          "cold-start", loaded.status().ToString());
        cold_boot = true;
        continue;
      }
      Status restored = RestoreFuzzRig(*twin, loaded->snapshot, &resume_state);
      if (!restored.ok()) {
        add(result.elapsed, "crash-restore", restored.ToString());
        restore_failed = true;
        break;
      }
      SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointRestore,
                        resume_state.t.value(), -1, "warm-restart",
                        std::string(loaded->fell_back ? "fallback slot"
                                                      : "newest slot"));
      store->AdoptLoaded(*loaded);
      cold_boot = false;
    }
    if (!restore_failed) {
      std::string divergence = DescribeSimResultDivergence(result, twin_result);
      if (!divergence.empty()) {
        add(twin_result.elapsed, "crash-divergence", divergence);
      }
    }
  }

  if (dropped > 0) {
    violations.back().detail += " (+" + std::to_string(dropped) + " dropped)";
  }
  if (journal != nullptr) {
    *journal = local_journal.Snapshot();
  }
  return violations;
}

// --- Shrinking ---------------------------------------------------------------

FuzzCase ShrinkFuzzCaseWith(const FuzzCase& fuzz_case,
                            const std::function<bool(const FuzzCase&)>& fails,
                            int budget, int* steps) {
  FuzzCase current = fuzz_case;
  int accepted = 0;
  int spent = 0;
  auto try_candidate = [&](const FuzzCase& candidate) {
    if (spent >= budget) {
      return false;
    }
    ++spent;
    if (!fails(candidate)) {
      return false;
    }
    current = candidate;
    ++accepted;
    return true;
  };
  bool reduced = true;
  while (reduced && spent < budget) {
    reduced = false;
    // Pass 1: drop fault events one at a time.
    for (size_t i = 0; i < current.faults.events.size();) {
      FuzzCase candidate = current;
      candidate.faults.events.erase(candidate.faults.events.begin() +
                                    static_cast<long>(i));
      if (try_candidate(candidate)) {
        reduced = true;  // `current` shrank; retry the same index.
      } else {
        ++i;
      }
    }
    // Pass 2: drop crash events one at a time.
    for (size_t i = 0; i < current.crashes.size();) {
      FuzzCase candidate = current;
      candidate.crashes.erase(candidate.crashes.begin() + static_cast<long>(i));
      if (try_candidate(candidate)) {
        reduced = true;
      } else {
        ++i;
      }
    }
    // Pass 3: drop directive flips one at a time.
    for (size_t i = 0; i < current.flips.size();) {
      FuzzCase candidate = current;
      candidate.flips.erase(candidate.flips.begin() + static_cast<long>(i));
      if (try_candidate(candidate)) {
        reduced = true;
      } else {
        ++i;
      }
    }
    // Pass 4: revert parameter overrides to pack defaults.
    std::vector<std::string> keys;
    for (const auto& [name, value] : current.overrides) {
      keys.push_back(name);
    }
    for (const std::string& name : keys) {
      FuzzCase candidate = current;
      candidate.overrides.erase(name);
      if (try_candidate(candidate)) {
        reduced = true;
      }
    }
    // Pass 5: snap directives to the neutral 0.5.
    if (current.directives.discharging != 0.5) {
      FuzzCase candidate = current;
      candidate.directives.discharging = 0.5;
      reduced = try_candidate(candidate) || reduced;
    }
    if (current.directives.charging != 0.5) {
      FuzzCase candidate = current;
      candidate.directives.charging = 0.5;
      reduced = try_candidate(candidate) || reduced;
    }
  }
  if (steps != nullptr) {
    *steps = accepted;
  }
  return current;
}

FuzzCase ShrinkFuzzCase(const FuzzCase& fuzz_case, const FuzzConfig& config,
                        int* steps) {
  return ShrinkFuzzCaseWith(
      fuzz_case,
      [&config](const FuzzCase& candidate) {
        return !EvaluateFuzzCase(candidate, config).empty();
      },
      config.shrink_budget, steps);
}

// --- The sweep ---------------------------------------------------------------

namespace {

FuzzCaseReport BuildCaseReport(FuzzCase sampled, const FuzzConfig& config,
                               bool shrink) {
  FuzzCaseReport report;
  report.sampled = std::move(sampled);
  report.violations = EvaluateFuzzCase(report.sampled, config, &report.journal);
  report.failed = !report.violations.empty();
  if (report.failed) {
    FuzzCase minimal = shrink
                           ? ShrinkFuzzCase(report.sampled, config,
                                            &report.shrink_steps)
                           : report.sampled;
    report.reproducer = FormatFuzzCase(minimal);
    if (report.reproducer != FormatFuzzCase(report.sampled)) {
      // The journal should narrate the case the reproducer line replays, so
      // re-run the shrunk case once with capture. The violations (and the
      // fingerprint they feed) stay those of the sampled case.
      EvaluateFuzzCase(minimal, config, &report.journal);
    }
  }
  uint64_t h = MixU64(0, report.sampled.seed);
  h = MixU64(h, HashString(FormatFuzzCase(report.sampled)));
  h = MixU64(h, report.failed ? 1 : 0);
  h = MixU64(h, static_cast<uint64_t>(report.violations.size()));
  for (const FuzzViolation& violation : report.violations) {
    h = MixU64(h, HashString(violation.oracle));
  }
  h = MixU64(h, HashString(report.reproducer));
  report.fingerprint = h;
  return report;
}

FuzzReport MergeCaseReports(std::vector<FuzzCaseReport> slots) {
  FuzzReport report;
  report.cases = std::move(slots);
  uint64_t h = 0;
  for (const FuzzCaseReport& fuzz_case : report.cases) {
    if (fuzz_case.failed) {
      ++report.failures;
    }
    h = MixU64(h, fuzz_case.fingerprint);
  }
  report.fingerprint = h;
  return report;
}

}  // namespace

StatusOr<FuzzReport> RunFuzz(const FuzzConfig& config) {
  if (config.cases <= 0) {
    return InvalidArgumentError("fuzz wants at least one case");
  }
  for (const std::string& name : config.packs) {
    if (FindScenarioPack(name) == nullptr) {
      return InvalidArgumentError("unknown pack '" + name +
                                  "' in fuzz pack list (sdbsim workload --list)");
    }
  }
  std::vector<FuzzCaseReport> slots(config.cases);
  std::optional<ThreadPool> pool;
  if (config.jobs != 1) {
    pool.emplace(config.jobs);
  }
  const FuzzConfig& cfg = config;
  // Index-slot determinism: case k depends on (config, master_seed + k)
  // alone and writes only slot k, so any worker count is bit-identical.
  ParallelFor(pool.has_value() ? &*pool : nullptr, config.cases,
              [&slots, &cfg](int64_t index) {
                slots[index] = BuildCaseReport(
                    SampleFuzzCase(cfg, cfg.master_seed + static_cast<uint64_t>(index)),
                    cfg, cfg.shrink);
              });
  return MergeCaseReports(std::move(slots));
}

FuzzReport ReplayFuzzCases(const std::vector<FuzzCase>& cases,
                           const FuzzConfig& config) {
  std::vector<FuzzCaseReport> slots(cases.size());
  std::optional<ThreadPool> pool;
  if (config.jobs != 1 && cases.size() > 1) {
    pool.emplace(config.jobs);
  }
  const FuzzConfig& cfg = config;
  ParallelFor(pool.has_value() ? &*pool : nullptr,
              static_cast<int64_t>(cases.size()),
              [&slots, &cases, &cfg](int64_t index) {
                // Replay never re-shrinks: the line under replay is already
                // the minimal case and must fail (or pass) as-is.
                slots[index] = BuildCaseReport(cases[index], cfg, /*shrink=*/false);
              });
  return MergeCaseReports(std::move(slots));
}

}  // namespace sdb

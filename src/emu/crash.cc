#include "src/emu/crash.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "src/chem/library.h"
#include "src/core/checkpoint/rig_codec.h"
#include "src/core/checkpoint/snapshot.h"
#include "src/core/checkpoint/store.h"
#include "src/core/checkpoint/wire.h"
#include "src/core/runtime.h"
#include "src/hw/command_link.h"
#include "src/hw/safety.h"
#include "src/os/predictor.h"
#include "src/os/workload_classifier.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

#include "src/emu/soak.h"

namespace sdb {

namespace {

constexpr int kCrashBatteries = 4;
constexpr size_t kMaxViolationsPerSchedule = 16;

// Every schedule derives its rig and plans from the schedule seed alone, so
// a report line ("seed 17 diverged") is all that is needed to replay it.
constexpr uint64_t kCrashMicroSalt = 0xC4A5B0075EEDULL;
constexpr uint64_t kCrashPlanSalt = 0xCAA5FF1A55EEDULL;
constexpr uint64_t kTornWriteSalt = 0x70A2217E5EEDULL;

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

bool SameBits(double a, double b) {
  uint64_t ab;
  uint64_t bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

// Lifecycle doctrine mirrors the fault soak: recovery on, dwell times short
// enough to finish inside the horizon.
RecoveryConfig CrashRecovery() {
  RecoveryConfig recovery;
  recovery.enabled = true;
  recovery.base_dwell = Minutes(3.0);
  recovery.dwell_backoff = 2.0;
  recovery.max_dwell = Minutes(12.0);
  recovery.probe_duration = Minutes(2.0);
  return recovery;
}

std::vector<Cell> MakeCrashCells() {
  std::vector<Cell> cells;
  cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeFastChargeTablet(MilliAmpHours(4000.0)), 0.8);
  cells.emplace_back(MakeHighEnergyTablet(MilliAmpHours(4000.0)), 0.8);
  return cells;
}

std::vector<SafetyLimits> MakeCrashLimits(const SdbMicrocontroller& micro) {
  std::vector<SafetyLimits> limits;
  for (size_t i = 0; i < micro.battery_count(); ++i) {
    limits.push_back(DeriveLimits(micro.pack().cell(i).params()));
  }
  return limits;
}

RuntimeConfig MakeCrashRuntimeConfig() {
  RuntimeConfig config;
  config.reintegration_horizon = Minutes(10.0);
  return config;
}

Duration TimeOfDay(Duration now) {
  return Seconds(std::fmod(now.value(), Hours(24.0).value()));
}

// The complete rig a crash schedule plays against. "Process death" destroys
// a CrashRig; warm restart constructs a fresh one from the same config and
// seeds, then restores every component from the snapshot. Heap-held by the
// harness: components point at each other, so the rig never moves.
class CrashRig {
 public:
  CrashRig(uint64_t seed, const FaultPlan& faults)
      : micro(MakeDefaultMicrocontroller(MakeCrashCells(), kCrashMicroSalt ^ seed)),
        safety(MakeCrashLimits(micro), CrashRecovery()),
        server(&micro),
        client([this](const std::vector<uint8_t>& bytes) { return server.Receive(bytes); }),
        runtime(&micro, MakeCrashRuntimeConfig()) {
    micro.AttachSafety(&safety);
    // Install before attaching the injector to the link, mirroring the fault
    // soak: one injector lives for the whole run (SimConfig.faults stays
    // empty, so a warm restart never re-installs a fresh plan over the
    // restored injector clock/RNG).
    if (!faults.events.empty()) {
      micro.InstallFaults(faults);
    }
    client.AttachFaultInjector(micro.fault_injector());
    runtime.AttachLink(&client);
    // A deterministic learned schedule (pure function of the seed) so the
    // predictor hands out real hints whose countdown state rides through
    // checkpoints: three observed days with one recurring high-power hour.
    const int high_hour = static_cast<int>(seed % 24);
    for (int day = 0; day < 3; ++day) {
      std::vector<Power> hours(24, Watts(0.3));
      hours[static_cast<size_t>(high_hour)] = Watts(8.0);
      predictor.ObserveDay(hours);
    }
  }

  CrashRig(const CrashRig&) = delete;
  CrashRig& operator=(const CrashRig&) = delete;

  SdbMicrocontroller micro;
  SafetySupervisor safety;
  CommandLinkServer server;
  CommandLinkClient client;
  SdbRuntime runtime;
  UserSchedulePredictor predictor;
  WorkloadClassifier classifier;
};

// kSectionPredictor payload.
std::vector<uint8_t> EncodePredictorState(const PredictorState& state) {
  checkpoint::ByteWriter writer;
  writer.PutU64(static_cast<uint64_t>(state.days));
  writer.PutU64(state.high_days.size());
  for (int64_t d : state.high_days) {
    writer.PutU64(static_cast<uint64_t>(d));
  }
  writer.PutF64Vector(state.power_sum_w);
  return writer.TakeBytes();
}

StatusOr<PredictorState> DecodePredictorState(const std::vector<uint8_t>& bytes) {
  checkpoint::ByteReader reader(bytes);
  PredictorState state;
  uint64_t days = 0;
  SDB_RETURN_IF_ERROR(reader.ReadU64(&days));
  state.days = static_cast<int64_t>(days);
  uint64_t count = 0;
  SDB_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining() / 8) {
    return InvalidArgumentError("checkpoint: predictor hour count exceeds payload");
  }
  state.high_days.resize(static_cast<size_t>(count));
  for (auto& d : state.high_days) {
    uint64_t v = 0;
    SDB_RETURN_IF_ERROR(reader.ReadU64(&v));
    d = static_cast<int64_t>(v);
  }
  SDB_RETURN_IF_ERROR(reader.ReadF64Vector(&state.power_sum_w));
  SDB_RETURN_IF_ERROR(reader.ExpectExhausted());
  return state;
}

// kSectionClassifier payload: the rolling sample window, oldest first.
std::vector<uint8_t> EncodeClassifierState(const std::vector<double>& samples_w) {
  checkpoint::ByteWriter writer;
  writer.PutF64Vector(samples_w);
  return writer.TakeBytes();
}

StatusOr<std::vector<double>> DecodeClassifierState(
    const std::vector<uint8_t>& bytes) {
  checkpoint::ByteReader reader(bytes);
  std::vector<double> samples;
  SDB_RETURN_IF_ERROR(reader.ReadF64Vector(&samples));
  SDB_RETURN_IF_ERROR(reader.ExpectExhausted());
  return samples;
}

// Digest of everything that shapes the rig and the run: a snapshot from a
// different seed, horizon or cadence must be rejected at load, not warmly
// restored into the wrong simulation.
uint64_t ConfigDigest(const CrashConfig& config, uint64_t seed) {
  uint64_t h = MixU64(0, 0x5DBC0F16D16E57ULL);
  h = MixU64(h, seed);
  h = MixU64(h, static_cast<uint64_t>(kCrashBatteries));
  h = MixDouble(h, config.horizon.value());
  h = MixDouble(h, config.tick.value());
  h = MixDouble(h, config.runtime_period.value());
  h = MixDouble(h, config.checkpoint_period.value());
  h = MixDouble(h, config.load.value());
  h = MixU64(h, static_cast<uint64_t>(config.max_faults));
  return h;
}

// Assembles the full-rig snapshot: every section the warm restart needs.
checkpoint::Snapshot SnapshotRig(const CrashRig& rig, const SimLoopState& state) {
  checkpoint::Snapshot snap;
  snap.AddSection(checkpoint::kSectionMicro,
                  checkpoint::EncodeMicroState(rig.micro.SaveState()));
  snap.AddSection(checkpoint::kSectionSafety,
                  checkpoint::EncodeSupervisorState(rig.safety.SaveState()));
  snap.AddSection(checkpoint::kSectionLink,
                  checkpoint::EncodeLinkState(
                      {rig.client.SaveState(), rig.server.SaveState()}));
  snap.AddSection(checkpoint::kSectionRuntime,
                  checkpoint::EncodeRuntimeState(rig.runtime.SaveState()));
  snap.AddSection(checkpoint::kSectionPredictor,
                  EncodePredictorState(rig.predictor.SaveState()));
  snap.AddSection(checkpoint::kSectionClassifier,
                  EncodeClassifierState(rig.classifier.SaveState()));
  snap.AddSection(checkpoint::kSectionSimLoop, EncodeSimLoopState(state));
  return snap;
}

Status MissingSection(const char* name) {
  return InvalidArgumentError(std::string("checkpoint: snapshot is missing the ") +
                              name + " section");
}

// Restores every component of a freshly-built rig from the snapshot, runs
// the boot-count resync handshake and hands back the loop resume point.
// Decodes everything before mutating anything, so a damaged snapshot that
// slipped past the CRC (it cannot, but defense in depth) leaves the rig in
// its freshly-built state.
Status RestoreRig(CrashRig& rig, const checkpoint::Snapshot& snap,
                  RestoreReport* resync_report, SimLoopState* loop) {
  const checkpoint::Section* micro_s = snap.FindSection(checkpoint::kSectionMicro);
  const checkpoint::Section* safety_s = snap.FindSection(checkpoint::kSectionSafety);
  const checkpoint::Section* link_s = snap.FindSection(checkpoint::kSectionLink);
  const checkpoint::Section* runtime_s = snap.FindSection(checkpoint::kSectionRuntime);
  const checkpoint::Section* pred_s = snap.FindSection(checkpoint::kSectionPredictor);
  const checkpoint::Section* class_s = snap.FindSection(checkpoint::kSectionClassifier);
  const checkpoint::Section* loop_s = snap.FindSection(checkpoint::kSectionSimLoop);
  if (micro_s == nullptr) return MissingSection("microcontroller");
  if (safety_s == nullptr) return MissingSection("safety");
  if (link_s == nullptr) return MissingSection("link");
  if (runtime_s == nullptr) return MissingSection("runtime");
  if (pred_s == nullptr) return MissingSection("predictor");
  if (class_s == nullptr) return MissingSection("classifier");
  if (loop_s == nullptr) return MissingSection("sim-loop");

  StatusOr<MicroState> micro_state = checkpoint::DecodeMicroState(micro_s->bytes);
  SDB_RETURN_IF_ERROR(micro_state.status());
  StatusOr<SafetySupervisor::SupervisorState> safety_state =
      checkpoint::DecodeSupervisorState(safety_s->bytes);
  SDB_RETURN_IF_ERROR(safety_state.status());
  StatusOr<checkpoint::LinkState> link_state =
      checkpoint::DecodeLinkState(link_s->bytes);
  SDB_RETURN_IF_ERROR(link_state.status());
  StatusOr<RuntimeState> runtime_state =
      checkpoint::DecodeRuntimeState(runtime_s->bytes);
  SDB_RETURN_IF_ERROR(runtime_state.status());
  StatusOr<PredictorState> pred_state = DecodePredictorState(pred_s->bytes);
  SDB_RETURN_IF_ERROR(pred_state.status());
  StatusOr<std::vector<double>> class_state = DecodeClassifierState(class_s->bytes);
  SDB_RETURN_IF_ERROR(class_state.status());
  StatusOr<SimLoopState> loop_state = DecodeSimLoopState(loop_s->bytes);
  SDB_RETURN_IF_ERROR(loop_state.status());

  // Hardware first: the emulated controller just power-cycled, so after its
  // state is back it must demand the boot-count handshake the runtime's
  // RestoreAndResync completes below.
  SDB_RETURN_IF_ERROR(rig.micro.RestoreState(*micro_state));
  rig.micro.RequireResync();
  SDB_RETURN_IF_ERROR(rig.safety.RestoreState(*safety_state));
  rig.server.RestoreState(link_state->server);
  rig.client.RestoreState(link_state->client);
  SDB_RETURN_IF_ERROR(rig.predictor.RestoreState(*pred_state));
  SDB_RETURN_IF_ERROR(rig.classifier.RestoreState(*class_state));
  StatusOr<RestoreReport> resync = rig.runtime.RestoreAndResync(*runtime_state);
  SDB_RETURN_IF_ERROR(resync.status());
  *resync_report = *resync;
  *loop = std::move(*loop_state);
  return Status::Ok();
}

CrashScheduleReport RunOneCrashSchedule(const CrashConfig& config, uint64_t seed) {
  // Hermetic: never emit into a journal installed by the caller, so an
  // outer process journal cannot depend on work distribution.
  obs::JournalScope silence(nullptr);
  CrashScheduleReport report;
  report.seed = seed;
  FaultPlan faults =
      MakeRandomFaultPlan(seed, kCrashBatteries, config.horizon, config.max_faults);
  CrashPlan crashes = MakeRandomCrashPlan(seed, config.horizon, config.max_crashes);
  report.planned_crashes = static_cast<int>(crashes.events.size());

  auto add_violation = [&](const char* check, std::string detail) {
    SDB_JOURNAL_EVENT(obs::EventKind::kOracleVerdict, -1.0, -1, check, detail);
    if (report.violations.size() >= kMaxViolationsPerSchedule) {
      return;
    }
    report.violations.push_back(CrashViolation{seed, check, std::move(detail)});
  };

  const PowerTrace load = PowerTrace::Constant(config.load, config.horizon);

  // Shared by baseline and crashing runs so both timelines do identical
  // work: feed the classifier every tick, refresh the predictor's workload
  // hint at every replan boundary.
  auto make_sim_config = [&config](CrashRig* rig) {
    SimConfig sim;
    sim.tick = config.tick;
    sim.runtime_period = config.runtime_period;
    sim.stop_on_shortfall = false;
    sim.on_tick = [rig](const MicroTick& tick, Duration) {
      rig->classifier.Observe(Watts(tick.discharge.delivered.value()));
    };
    return sim;
  };
  auto os_clues = [](CrashRig* rig, CrashBarrier barrier, Duration now) {
    if (barrier == CrashBarrier::kPreAllocate) {
      rig->runtime.SetWorkloadHint(rig->predictor.PredictNext(TimeOfDay(now)));
    }
  };

  // The never-crashed twin: same rig, same fault plan, no checkpointing.
  // Saving state is const, so its absence cannot perturb the baseline.
  std::vector<double> baseline_classifier;
  SimResult baseline;
  {
    auto rig = std::make_unique<CrashRig>(seed, faults);
    SimConfig sim_config = make_sim_config(rig.get());
    CrashRig* rig_ptr = rig.get();
    sim_config.on_barrier = [rig_ptr, &os_clues](CrashBarrier barrier, Duration now) {
      os_clues(rig_ptr, barrier, now);
      return true;
    };
    Simulator sim(&rig->runtime, sim_config);
    baseline = sim.Run(load);
    baseline_classifier = rig->classifier.SaveState();
  }

  // The crashing run records into a per-schedule journal; each schedule runs
  // start-to-finish on one worker, so the captured sequence is jobs-invariant.
  obs::EventJournal journal;
  obs::JournalScope journal_scope(&journal);

  // The slot device survives every simulated process death; the rig and the
  // store (in-memory program state) do not.
  checkpoint::MemorySlotDevice device;
  const uint64_t digest = ConfigDigest(config, seed);
  size_t crash_index = 0;
  auto rig = std::make_unique<CrashRig>(seed, faults);
  auto store = std::make_unique<checkpoint::CheckpointStore>(&device, digest);
  bool cold_boot = true;
  SimLoopState resume_state;
  SimResult result;
  std::vector<double> final_classifier;
  for (;;) {
    SimConfig sim_config = make_sim_config(rig.get());
    sim_config.checkpoint_period = config.checkpoint_period;
    CrashRig* rig_ptr = rig.get();
    checkpoint::CheckpointStore* store_ptr = store.get();
    sim_config.on_barrier = [&, rig_ptr](CrashBarrier barrier, Duration now) {
      os_clues(rig_ptr, barrier, now);
      if (crash_index < crashes.events.size()) {
        const CrashEvent& next = crashes.events[crash_index];
        if (next.barrier == barrier && now.value() >= next.time.value()) {
          ++crash_index;
          SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, now.value(), -1,
                            "crash-injected", std::string(CrashBarrierName(barrier)));
          return false;
        }
      }
      return true;
    };
    sim_config.on_checkpoint = [&, rig_ptr, store_ptr](const SimLoopState& state) {
      bool die = false;
      if (crash_index < crashes.events.size()) {
        const CrashEvent& next = crashes.events[crash_index];
        if (next.barrier == CrashBarrier::kMidCheckpointWrite &&
            state.t.value() >= next.time.value()) {
          die = true;
          if (next.torn != TornWriteKind::kNone) {
            const TornWriteKind torn = next.torn;
            const uint64_t torn_seed = seed ^ kTornWriteSalt ^ crash_index;
            store_ptr->SetWriteMutatorOnce([torn, torn_seed](std::vector<uint8_t>& bytes) {
              ApplyTornWrite(torn, torn_seed, bytes);
            });
            ++report.torn_writes;
          }
          ++crash_index;
          SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, state.t.value(), -1,
                            "crash-injected",
                            std::string(CrashBarrierName(CrashBarrier::kMidCheckpointWrite)) +
                                (next.torn != TornWriteKind::kNone
                                     ? std::string(":") + std::string(TornWriteKindName(next.torn))
                                     : std::string()));
        }
      }
      Status saved = store_ptr->Save(SnapshotRig(*rig_ptr, state), state.t);
      if (!saved.ok()) {
        add_violation("save", saved.ToString());
      }
      return !die;
    };
    Simulator sim(&rig->runtime, sim_config);
    result = cold_boot ? sim.Run(load) : sim.Resume(resume_state, load);
    if (!result.crashed) {
      final_classifier = rig->classifier.SaveState();
      break;
    }
    ++report.crashes_fired;

    // Process death: rig and store die with the process; only the slot
    // device (the "disk") survives into the next boot.
    rig = std::make_unique<CrashRig>(seed, faults);
    store = std::make_unique<checkpoint::CheckpointStore>(&device, digest);
    StatusOr<checkpoint::LoadResult> loaded = store->LoadLastGood();
    if (!loaded.ok()) {
      // No restorable snapshot (the only writes so far were torn): cold
      // start from scratch. Determinism makes the re-run bit-identical to
      // the original timeline, so the oracle still holds.
      ++report.cold_restarts;
      SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointRestore, -1.0, -1, "cold-start",
                        loaded.status().ToString());
      cold_boot = true;
      continue;
    }
    report.corrupt_slots += loaded->corrupt_slots;
    if (loaded->fell_back) {
      ++report.slot_fallbacks;
    }
    RestoreReport resync;
    Status restored = RestoreRig(*rig, loaded->snapshot, &resync, &resume_state);
    if (!restored.ok()) {
      add_violation("restore", restored.ToString());
      break;
    }
    ++report.warm_restarts;
    report.drift_fields += resync.drift_fields;
    report.resynced = report.resynced || resync.resynced;
    store->AdoptLoaded(*loaded);
    cold_boot = false;
  }

  report.completed =
      result.elapsed.value() >= config.horizon.value() - config.tick.value();
  if (!report.completed) {
    add_violation("incomplete",
                  "final run stopped at " + std::to_string(result.elapsed.value()) + " s");
  }
  std::string divergence = DescribeSimResultDivergence(baseline, result);
  report.identical = divergence.empty();
  if (!report.identical) {
    add_violation("result-divergence", divergence);
  }
  if (final_classifier != baseline_classifier) {
    add_violation("classifier-divergence",
                  "restored classifier window differs from baseline (" +
                      std::to_string(final_classifier.size()) + " vs " +
                      std::to_string(baseline_classifier.size()) + " samples)");
  }
  report.journal = journal.Snapshot();

  uint64_t h = MixU64(0, seed);
  h = MixU64(h, static_cast<uint64_t>(report.planned_crashes));
  h = MixU64(h, static_cast<uint64_t>(report.crashes_fired));
  h = MixU64(h, static_cast<uint64_t>(report.warm_restarts));
  h = MixU64(h, static_cast<uint64_t>(report.cold_restarts));
  h = MixU64(h, static_cast<uint64_t>(report.torn_writes));
  h = MixU64(h, static_cast<uint64_t>(report.corrupt_slots));
  h = MixU64(h, static_cast<uint64_t>(report.slot_fallbacks));
  h = MixU64(h, report.drift_fields);
  h = MixU64(h, report.resynced ? 1 : 0);
  h = MixU64(h, report.completed ? 1 : 0);
  h = MixU64(h, report.identical ? 1 : 0);
  h = MixU64(h, static_cast<uint64_t>(report.violations.size()));
  h = MixDouble(h, result.elapsed.value());
  h = MixDouble(h, result.delivered.value());
  h = MixDouble(h, result.battery_loss.value());
  h = MixDouble(h, result.circuit_loss.value());
  h = MixDouble(h, result.charged.value());
  h = MixU64(h, static_cast<uint64_t>(result.update_failures));
  for (double soc : result.final_soc) {
    h = MixDouble(h, soc);
  }
  h = MixU64(h, result.events.size());
  h = MixU64(h, result.hourly.size());
  h = MixU64(h, final_classifier.size());
  report.fingerprint = h;
  return report;
}

}  // namespace

void ApplyTornWrite(TornWriteKind kind, uint64_t seed, std::vector<uint8_t>& bytes) {
  if (bytes.empty()) {
    return;
  }
  Rng rng(seed);
  switch (kind) {
    case TornWriteKind::kNone:
      break;
    case TornWriteKind::kTruncate:
      bytes.resize(static_cast<size_t>(rng.NextBounded(bytes.size())));
      break;
    case TornWriteKind::kZeroRange: {
      size_t start = static_cast<size_t>(rng.NextBounded(bytes.size()));
      size_t length =
          1 + static_cast<size_t>(rng.NextBounded(bytes.size() - start));
      std::fill(bytes.begin() + static_cast<ptrdiff_t>(start),
                bytes.begin() + static_cast<ptrdiff_t>(start + length),
                static_cast<uint8_t>(0));
      break;
    }
    case TornWriteKind::kBitFlip: {
      size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] = static_cast<uint8_t>(bytes[pos] ^
                                        (1u << rng.NextBounded(8)));
      break;
    }
  }
}

std::string_view TornWriteKindName(TornWriteKind kind) {
  switch (kind) {
    case TornWriteKind::kNone:
      return "none";
    case TornWriteKind::kTruncate:
      return "truncate";
    case TornWriteKind::kZeroRange:
      return "zero-range";
    case TornWriteKind::kBitFlip:
      return "bit-flip";
  }
  return "unknown";
}

CrashPlan MakeRandomCrashPlan(uint64_t seed, Duration horizon, int max_crashes) {
  SDB_CHECK(max_crashes > 0);
  SDB_CHECK(horizon.value() > 0.0);
  Rng rng(seed ^ kCrashPlanSalt);
  CrashPlan plan;
  plan.seed = seed;
  const int count = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_crashes)));
  for (int k = 0; k < count; ++k) {
    CrashEvent event;
    event.time = Seconds(horizon.value() * rng.Uniform(0.05, 0.90));
    switch (rng.NextBounded(3)) {
      case 0:
        event.barrier = CrashBarrier::kPreAllocate;
        break;
      case 1:
        event.barrier = CrashBarrier::kPostAllocate;
        break;
      default:
        event.barrier = CrashBarrier::kMidCheckpointWrite;
        event.torn = static_cast<TornWriteKind>(rng.NextBounded(4));
        break;
    }
    plan.events.push_back(event);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.time.value() < b.time.value()) return true;
              if (b.time.value() < a.time.value()) return false;
              return static_cast<int>(a.barrier) < static_cast<int>(b.barrier);
            });
  return plan;
}

CrashReport RunCrashSoak(const CrashConfig& config) {
  SDB_CHECK(config.schedules > 0);
  SDB_CHECK(config.checkpoint_period.value() > 0.0);
  CrashReport report;
  report.schedules.resize(static_cast<size_t>(config.schedules));

  // Index-slot determinism: schedule k writes only slot k and depends on
  // (config, base_seed + k) alone, so any worker count produces the same bytes.
  std::optional<ThreadPool> pool;
  if (config.jobs != 1) {
    pool.emplace(config.jobs);
  }
  std::vector<CrashScheduleReport>& slots = report.schedules;
  const CrashConfig& cfg = config;
  ParallelFor(pool.has_value() ? &*pool : nullptr, config.schedules,
              [&slots, &cfg](int64_t index) {
                slots[static_cast<size_t>(index)] = RunOneCrashSchedule(
                    cfg, cfg.base_seed + static_cast<uint64_t>(index));
              });

  uint64_t h = 0;
  for (const CrashScheduleReport& schedule : report.schedules) {
    report.total_violations += schedule.violations.size();
    h = MixU64(h, schedule.fingerprint);
  }
  report.fingerprint = h;
  return report;
}

StatusOr<std::vector<CorpusCaseResult>> ValidateTornCorpus(
    const std::string& corpus_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(corpus_dir, ec)) {
    return NotFoundError("crash corpus: " + corpus_dir + " is not a directory");
  }
  std::vector<std::string> cases;
  for (fs::directory_iterator it(corpus_dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory()) {
      cases.push_back(it->path().filename().string());
    }
  }
  if (ec) {
    return UnavailableError("crash corpus: cannot walk " + corpus_dir + ": " +
                            ec.message());
  }
  if (cases.empty()) {
    return InvalidArgumentError("crash corpus: no case directories in " +
                                corpus_dir);
  }
  std::sort(cases.begin(), cases.end());

  std::vector<CorpusCaseResult> results;
  results.reserve(cases.size());
  for (const std::string& name : cases) {
    CorpusCaseResult result;
    result.name = name;
    checkpoint::FileSlotDevice device(corpus_dir + "/" + name);
    checkpoint::CheckpointStore store(&device, kTornCorpusDigest);
    StatusOr<checkpoint::LoadResult> loaded = store.LoadLastGood();
    if (loaded.ok()) {
      result.recovered = true;
      result.detected = loaded->corrupt_slots > 0;
      for (const checkpoint::SlotDiagnostic& diag : loaded->diagnostics) {
        if (diag.present && !diag.valid) {
          if (!result.detail.empty()) {
            result.detail += "; ";
          }
          result.detail += diag.error;
        }
      }
      if (!result.detected) {
        result.detail = "no slot was rejected (case holds no damage?)";
      }
    } else {
      // Both slots rejected (or unreadable): the damage was detected but the
      // case failed to keep a good alternate — a corpus-integrity failure.
      result.detected = true;
      result.recovered = false;
      result.detail = loaded.status().ToString();
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<uint8_t> EncodeSimLoopState(const SimLoopState& state) {
  checkpoint::ByteWriter writer;
  writer.PutF64(state.t.value());
  writer.PutF64(state.next_replan.value());
  writer.PutF64(state.next_checkpoint.value());
  writer.PutBool(state.transfer_was_active);
  const SimResult& partial = state.partial;
  writer.PutF64(partial.elapsed.value());
  writer.PutBool(partial.first_shortfall.has_value());
  writer.PutF64(partial.first_shortfall.has_value() ? partial.first_shortfall->value()
                                                    : 0.0);
  writer.PutF64(partial.delivered.value());
  writer.PutF64(partial.battery_loss.value());
  writer.PutF64(partial.circuit_loss.value());
  writer.PutF64(partial.charged.value());
  writer.PutF64Vector(partial.final_soc);
  writer.PutU64(partial.depletion_time.size());
  for (const std::optional<Duration>& depletion : partial.depletion_time) {
    writer.PutBool(depletion.has_value());
    writer.PutF64(depletion.has_value() ? depletion->value() : 0.0);
  }
  writer.PutU64(partial.events.size());
  for (const SimEvent& event : partial.events) {
    writer.PutU8(static_cast<uint8_t>(event.kind));
    writer.PutF64(event.time.value());
    writer.PutU64(static_cast<uint64_t>(static_cast<int64_t>(event.battery)));
  }
  writer.PutU64(partial.hourly.size());
  for (const HourlyStats& hour : partial.hourly) {
    writer.PutF64(hour.load_energy.value());
    writer.PutF64(hour.battery_loss.value());
    writer.PutF64(hour.circuit_loss.value());
    writer.PutBool(hour.degraded);
    writer.PutU64(hour.link_retries);
    writer.PutU64(hour.link_failures);
    writer.PutU64(hour.stale_updates);
  }
  writer.PutU64(static_cast<uint64_t>(static_cast<int64_t>(partial.update_failures)));
  return writer.TakeBytes();
}

StatusOr<SimLoopState> DecodeSimLoopState(const std::vector<uint8_t>& bytes) {
  checkpoint::ByteReader reader(bytes);
  SimLoopState state;
  double t = 0.0;
  double next_replan = 0.0;
  double next_checkpoint = 0.0;
  SDB_RETURN_IF_ERROR(reader.ReadF64(&t));
  SDB_RETURN_IF_ERROR(reader.ReadF64(&next_replan));
  SDB_RETURN_IF_ERROR(reader.ReadF64(&next_checkpoint));
  state.t = Seconds(t);
  state.next_replan = Seconds(next_replan);
  state.next_checkpoint = Seconds(next_checkpoint);
  SDB_RETURN_IF_ERROR(reader.ReadBool(&state.transfer_was_active));
  SimResult& partial = state.partial;
  double value = 0.0;
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  partial.elapsed = Seconds(value);
  bool has_shortfall = false;
  SDB_RETURN_IF_ERROR(reader.ReadBool(&has_shortfall));
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  if (has_shortfall) {
    partial.first_shortfall = Seconds(value);
  }
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  partial.delivered = Joules(value);
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  partial.battery_loss = Joules(value);
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  partial.circuit_loss = Joules(value);
  SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
  partial.charged = Joules(value);
  SDB_RETURN_IF_ERROR(reader.ReadF64Vector(&partial.final_soc));
  uint64_t count = 0;
  SDB_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining() / 9) {
    return InvalidArgumentError("checkpoint: depletion count exceeds payload");
  }
  partial.depletion_time.assign(static_cast<size_t>(count), std::nullopt);
  for (auto& depletion : partial.depletion_time) {
    bool has = false;
    SDB_RETURN_IF_ERROR(reader.ReadBool(&has));
    SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
    if (has) {
      depletion = Seconds(value);
    }
  }
  SDB_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining() / 17) {
    return InvalidArgumentError("checkpoint: event count exceeds payload");
  }
  partial.events.resize(static_cast<size_t>(count));
  for (SimEvent& event : partial.events) {
    uint8_t kind = 0;
    SDB_RETURN_IF_ERROR(reader.ReadU8(&kind));
    if (kind > static_cast<uint8_t>(SimEventKind::kTransferEnded)) {
      return InvalidArgumentError("checkpoint: sim event kind " +
                                  std::to_string(kind) + " out of range");
    }
    event.kind = static_cast<SimEventKind>(kind);
    SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
    event.time = Seconds(value);
    uint64_t battery = 0;
    SDB_RETURN_IF_ERROR(reader.ReadU64(&battery));
    event.battery = static_cast<int>(static_cast<int64_t>(battery));
  }
  SDB_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining() / 49) {
    return InvalidArgumentError("checkpoint: hourly count exceeds payload");
  }
  partial.hourly.resize(static_cast<size_t>(count));
  for (HourlyStats& hour : partial.hourly) {
    SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
    hour.load_energy = Joules(value);
    SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
    hour.battery_loss = Joules(value);
    SDB_RETURN_IF_ERROR(reader.ReadF64(&value));
    hour.circuit_loss = Joules(value);
    SDB_RETURN_IF_ERROR(reader.ReadBool(&hour.degraded));
    SDB_RETURN_IF_ERROR(reader.ReadU64(&hour.link_retries));
    SDB_RETURN_IF_ERROR(reader.ReadU64(&hour.link_failures));
    SDB_RETURN_IF_ERROR(reader.ReadU64(&hour.stale_updates));
  }
  uint64_t update_failures = 0;
  SDB_RETURN_IF_ERROR(reader.ReadU64(&update_failures));
  partial.update_failures = static_cast<int>(static_cast<int64_t>(update_failures));
  SDB_RETURN_IF_ERROR(reader.ExpectExhausted());
  return state;
}

std::string DescribeSimResultDivergence(const SimResult& baseline,
                                        const SimResult& restored) {
  if (!SameBits(baseline.elapsed.value(), restored.elapsed.value())) {
    return "elapsed: " + std::to_string(baseline.elapsed.value()) + " vs " +
           std::to_string(restored.elapsed.value());
  }
  if (baseline.first_shortfall.has_value() != restored.first_shortfall.has_value() ||
      (baseline.first_shortfall.has_value() &&
       !SameBits(baseline.first_shortfall->value(), restored.first_shortfall->value()))) {
    return "first_shortfall differs";
  }
  if (!SameBits(baseline.delivered.value(), restored.delivered.value())) {
    return "delivered: " + std::to_string(baseline.delivered.value()) + " vs " +
           std::to_string(restored.delivered.value());
  }
  if (!SameBits(baseline.battery_loss.value(), restored.battery_loss.value())) {
    return "battery_loss: " + std::to_string(baseline.battery_loss.value()) + " vs " +
           std::to_string(restored.battery_loss.value());
  }
  if (!SameBits(baseline.circuit_loss.value(), restored.circuit_loss.value())) {
    return "circuit_loss: " + std::to_string(baseline.circuit_loss.value()) + " vs " +
           std::to_string(restored.circuit_loss.value());
  }
  if (!SameBits(baseline.charged.value(), restored.charged.value())) {
    return "charged: " + std::to_string(baseline.charged.value()) + " vs " +
           std::to_string(restored.charged.value());
  }
  if (baseline.final_soc.size() != restored.final_soc.size()) {
    return "final_soc size differs";
  }
  for (size_t i = 0; i < baseline.final_soc.size(); ++i) {
    if (!SameBits(baseline.final_soc[i], restored.final_soc[i])) {
      return "final_soc[" + std::to_string(i) + "]: " +
             std::to_string(baseline.final_soc[i]) + " vs " +
             std::to_string(restored.final_soc[i]);
    }
  }
  if (baseline.depletion_time.size() != restored.depletion_time.size()) {
    return "depletion_time size differs";
  }
  for (size_t i = 0; i < baseline.depletion_time.size(); ++i) {
    const auto& a = baseline.depletion_time[i];
    const auto& b = restored.depletion_time[i];
    if (a.has_value() != b.has_value() ||
        (a.has_value() && !SameBits(a->value(), b->value()))) {
      return "depletion_time[" + std::to_string(i) + "] differs";
    }
  }
  if (baseline.events.size() != restored.events.size()) {
    return "event count: " + std::to_string(baseline.events.size()) + " vs " +
           std::to_string(restored.events.size());
  }
  for (size_t i = 0; i < baseline.events.size(); ++i) {
    const SimEvent& a = baseline.events[i];
    const SimEvent& b = restored.events[i];
    if (a.kind != b.kind || a.battery != b.battery ||
        !SameBits(a.time.value(), b.time.value())) {
      return "event[" + std::to_string(i) + "] differs";
    }
  }
  if (baseline.hourly.size() != restored.hourly.size()) {
    return "hourly count: " + std::to_string(baseline.hourly.size()) + " vs " +
           std::to_string(restored.hourly.size());
  }
  for (size_t i = 0; i < baseline.hourly.size(); ++i) {
    const HourlyStats& a = baseline.hourly[i];
    const HourlyStats& b = restored.hourly[i];
    if (!SameBits(a.load_energy.value(), b.load_energy.value()) ||
        !SameBits(a.battery_loss.value(), b.battery_loss.value()) ||
        !SameBits(a.circuit_loss.value(), b.circuit_loss.value()) ||
        a.degraded != b.degraded || a.link_retries != b.link_retries ||
        a.link_failures != b.link_failures || a.stale_updates != b.stale_updates) {
      return "hourly[" + std::to_string(i) + "] differs";
    }
  }
  if (baseline.update_failures != restored.update_failures) {
    return "update_failures: " + std::to_string(baseline.update_failures) + " vs " +
           std::to_string(restored.update_failures);
  }
  return std::string();
}

}  // namespace sdb

#include "src/emu/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace sdb {

std::string FormatPowerTraceCsv(const PowerTrace& trace) {
  std::ostringstream os;
  os << "seconds,watts\n";
  char buf[64];
  for (const TraceSegment& seg : trace.segments()) {
    std::snprintf(buf, sizeof(buf), "%.6g,%.6g\n", seg.duration.value(), seg.power.value());
    os << buf;
  }
  return os.str();
}

StatusOr<PowerTrace> ParsePowerTraceCsv(const std::string& text) {
  PowerTrace trace;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR (Windows files) and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) {
      continue;  // Blank line.
    }
    line = line.substr(start);
    if (line[0] == '#') {
      continue;  // Comment.
    }
    if (!header_seen) {
      if (line != "seconds,watts") {
        return InvalidArgumentError("trace CSV line 1: expected header 'seconds,watts'");
      }
      header_seen = true;
      continue;
    }
    if (line == "seconds,watts") {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": duplicate header");
    }
    size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": missing comma");
    }
    char* end = nullptr;
    std::string left = line.substr(0, comma);
    std::string right = line.substr(comma + 1);
    double seconds = std::strtod(left.c_str(), &end);
    if (end == left.c_str() || *end != '\0') {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": bad duration '" + left + "'");
    }
    double watts = std::strtod(right.c_str(), &end);
    if (end == right.c_str() || *end != '\0') {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": bad power '" + right + "'");
    }
    if (seconds <= 0.0) {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": duration must be positive");
    }
    if (watts < 0.0) {
      return InvalidArgumentError("trace CSV line " + std::to_string(line_no) +
                                  ": power must be non-negative");
    }
    trace.Append(Seconds(seconds), Watts(watts));
  }
  if (!header_seen) {
    return InvalidArgumentError("trace CSV: empty input");
  }
  return trace;
}

Status WritePowerTraceFile(const PowerTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return UnavailableError("cannot open for writing: " + path);
  }
  out << FormatPowerTraceCsv(trace);
  if (!out) {
    return UnavailableError("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<PowerTrace> ReadPowerTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open: " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return ParsePowerTraceCsv(os.str());
}

PowerTrace ResampleTrace(const PowerTrace& trace, Duration bucket) {
  SDB_CHECK(bucket.value() > 0.0);
  PowerTrace out;
  double total = trace.TotalDuration().value();
  double b = bucket.value();
  for (double t = 0.0; t < total; t += b) {
    double hi = std::min(total, t + b);
    double width = hi - t;
    if (width <= 0.0) {
      break;
    }
    Energy e = trace.EnergyBetween(Seconds(t), Seconds(hi));
    out.Append(Seconds(width), Watts(e.value() / width));
  }
  return out;
}

}  // namespace sdb

#include "src/emu/monte_carlo.h"

#include "src/util/check.h"

namespace sdb {

MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs, uint64_t base_seed) {
  SDB_CHECK(runs > 0);
  SDB_CHECK(scenario != nullptr);
  MonteCarloResult result;
  for (int r = 0; r < runs; ++r) {
    SimResult sim = scenario(base_seed + static_cast<uint64_t>(r));
    double life_h = sim.first_shortfall.has_value() ? ToHours(*sim.first_shortfall)
                                                    : ToHours(sim.elapsed);
    result.battery_life_h.Add(life_h);
    result.total_loss_j.Add(sim.TotalLoss().value());
    result.delivered_j.Add(sim.delivered.value());
    if (sim.first_shortfall.has_value()) {
      ++result.shortfall_runs;
    }
    ++result.runs;
  }
  return result;
}

}  // namespace sdb

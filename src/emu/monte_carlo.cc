#include "src/emu/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "src/chem/soa_kernel.h"
#include "src/core/telemetry.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace sdb {

namespace {

// Battery-life distribution across sweep runs, in hours. Bounds cover the
// scenarios we sweep (smartwatch days up to multi-day tablet runs).
obs::HistogramMetric* BatteryLifeHistogram() {
  static obs::HistogramMetric* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "sdb.mc.battery_life_h", {1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 36.0, 48.0, 72.0});
  return histogram;
}

// Accumulates one shard's seeds serially, in seed order.
MonteCarloResult RunShard(const ScenarioFn& scenario, uint64_t base_seed, int first_run,
                          int last_run) {
  SDB_TRACE_SPAN("mc", "mc.shard");
  MonteCarloResult shard;
  for (int r = first_run; r < last_run; ++r) {
    SimResult sim = scenario(base_seed + static_cast<uint64_t>(r));
    double life_h = sim.first_shortfall.has_value() ? ToHours(*sim.first_shortfall)
                                                    : ToHours(sim.elapsed);
    shard.battery_life_h.Add(life_h);
    shard.total_loss_j.Add(sim.TotalLoss().value());
    shard.delivered_j.Add(sim.delivered.value());
    BatteryLifeHistogram()->Observe(life_h);
    if (sim.first_shortfall.has_value()) {
      ++shard.shortfall_runs;
    }
    ++shard.runs;
  }
  return shard;
}

}  // namespace

MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs,
                               const MonteCarloOptions& options) {
  SDB_CHECK(runs > 0);
  SDB_CHECK(scenario != nullptr);
  SDB_TRACE_SPAN("mc", "mc.sweep");
  obs::Stopwatch stopwatch;
  uint64_t cell_steps_before = soa::TotalCellSteps();

  int num_shards = (runs + kMonteCarloShardSize - 1) / kMonteCarloShardSize;
  std::vector<MonteCarloResult> shards(static_cast<size_t>(num_shards));

  int jobs = options.jobs > 0 ? options.jobs : ThreadPool::DefaultThreadCount();
  Duration worker_wait;
  auto run_shard = [&](int64_t s) {
    int first = static_cast<int>(s) * kMonteCarloShardSize;
    int last = std::min(runs, first + kMonteCarloShardSize);
    shards[static_cast<size_t>(s)] = RunShard(scenario, options.base_seed, first, last);
  };
  if (jobs <= 1 || num_shards <= 1) {
    for (int64_t s = 0; s < num_shards; ++s) {
      run_shard(s);
    }
  } else {
    ThreadPool pool(jobs);
    ParallelFor(&pool, num_shards, run_shard);
    worker_wait = pool.stats().worker_wait;
  }

  // Seed-ordered reduction: shard s covers seeds strictly before shard s+1,
  // so folding in index order reproduces one fixed reduction tree.
  MonteCarloResult result;
  {
    SDB_TRACE_SPAN("mc", "mc.merge");
    for (const MonteCarloResult& shard : shards) {
      result.battery_life_h.Merge(shard.battery_life_h);
      result.total_loss_j.Merge(shard.total_loss_j);
      result.delivered_j.Merge(shard.delivered_j);
      result.shortfall_runs += shard.shortfall_runs;
      result.runs += shard.runs;
    }
  }

  Duration wall = Seconds(stopwatch.ElapsedSeconds());
  result.cell_steps = soa::TotalCellSteps() - cell_steps_before;
  result.cell_steps_per_s =
      wall.value() > 0.0 ? static_cast<double>(result.cell_steps) / wall.value() : 0.0;
  SweepCounters::Global().RecordSweep(static_cast<uint64_t>(num_shards),
                                      static_cast<uint64_t>(runs), worker_wait, wall);
  return result;
}

MonteCarloResult RunMonteCarlo(const ScenarioFn& scenario, int runs, uint64_t base_seed) {
  MonteCarloOptions options;
  options.base_seed = base_seed;
  return RunMonteCarlo(scenario, runs, options);
}

}  // namespace sdb

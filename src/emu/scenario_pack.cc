#include "src/emu/scenario_pack.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/chem/library.h"
#include "src/core/runtime.h"
#include "src/emu/workload.h"
#include "src/hw/microcontroller.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace sdb {

namespace {

// Resolved-parameter lookup; ResolvePackParams guarantees presence, so a
// miss here is a programming error in an expander.
double P(const PackParams& params, const char* name) {
  auto it = params.find(name);
  SDB_CHECK(it != params.end());
  return it->second;
}

uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t h = seed ^ (salt + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
  return h;
}

// Sustained-load envelope: what the pack can serve indefinitely with 20%
// margin. The fuzzer's safety oracle only applies to loads inside this.
Power DeriveEnvelope(const std::vector<BatteryParams>& batteries) {
  Power envelope = Watts(0.0);
  for (const BatteryParams& params : batteries) {
    envelope += Watts(0.8 * params.max_discharge_current.value() *
                      params.nominal_voltage.value());
  }
  return envelope;
}

void FinishSpec(ScenarioSpec& spec) {
  spec.envelope = DeriveEnvelope(spec.batteries);
  // Let the trace, not the driver default, bound the run (week-long packs
  // exceed the 72 h default cap).
  spec.sim.max_duration = spec.load.TotalDuration() + spec.sim.tick;
  spec.sim.stop_on_shortfall = false;
}

// --- smartwatch-day (paper §5.2, Fig. 13) -----------------------------------

ScenarioSpec ExpandSmartwatchDay(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "smartwatch-day";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeWatchLiIon(capacity));
  spec.batteries.push_back(MakeType4Bendable(capacity, 0));
  spec.initial_soc = {1.0, 1.0};

  double days = P(params, "days");
  SmartwatchDayConfig day;
  day.idle = MilliWatts(P(params, "idle_mw"));
  day.checks_per_hour = static_cast<int>(P(params, "checks_per_hour"));
  day.run_duration = Hours(P(params, "run_hours"));
  PowerTrace load;
  const int whole_days = static_cast<int>(std::ceil(days));
  for (int d = 0; d < whole_days; ++d) {
    day.seed = MixSeed(seed, 0x5A7C4DA1ULL + static_cast<uint64_t>(d));
    load = load.Concatenated(MakeSmartwatchDayTrace(day));
  }
  spec.load = std::move(load);
  spec.sim.tick = Seconds(10.0);
  spec.sim.runtime_period = Minutes(5.0);
  FinishSpec(spec);
  // Fractional final day: cap the horizon, keep the trace.
  spec.sim.max_duration = Days(days) + spec.sim.tick;
  return spec;
}

// --- fastcharge-tablet (paper §5.1, Fig. 11) --------------------------------

ScenarioSpec ExpandFastchargeTablet(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "fastcharge-tablet";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeFastChargeTablet(capacity));
  spec.batteries.push_back(MakeHighEnergyTablet(capacity));
  spec.initial_soc = {P(params, "initial_soc"), P(params, "initial_soc")};

  Duration horizon = Hours(P(params, "hours"));
  spec.load = MakeBurstyTrace(Watts(P(params, "load_w")),
                              Watts(2.0 * P(params, "load_w")), 0.25, horizon,
                              Minutes(1.0), MixSeed(seed, 0xFA57C4A6ULL));
  // The wall supply plugs in at supply_start_h: the pack carries the load
  // alone until then, so the charge phase starts mid-run (and charge-phase
  // faults have a window that is not the whole trace). 0 = plugged in from
  // the start, the historical shape.
  const Duration supply_start =
      Hours(std::min(P(params, "supply_start_h"), P(params, "hours")));
  PowerTrace supply;
  if (supply_start.value() > 0.0) {
    supply.Append(supply_start, Watts(0.0));
  }
  if (horizon.value() > supply_start.value()) {
    supply.Append(horizon - supply_start, Watts(P(params, "supply_w")));
  }
  spec.supply = std::move(supply);
  spec.sim.tick = Seconds(5.0);
  spec.sim.runtime_period = Minutes(1.0);
  FinishSpec(spec);
  return spec;
}

// --- phone-day (paper §4.3's Snapdragon 800 device) -------------------------

ScenarioSpec ExpandPhoneDay(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "phone-day";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeType2Standard(capacity, 0));
  spec.batteries.push_back(MakeFastChargeTablet(MilliAmpHours(
      std::max(100.0, 0.25 * P(params, "capacity_mah")))));
  spec.initial_soc = {1.0, 1.0};

  double days = P(params, "days");
  const int whole_days = static_cast<int>(std::ceil(days));
  PowerTrace load;
  for (int d = 0; d < whole_days; ++d) {
    load = load.Concatenated(
        MakePhoneDayTrace(MixSeed(seed, 0x0DA1ULL + static_cast<uint64_t>(d)))
            .Scaled(P(params, "scale")));
  }
  spec.load = std::move(load);
  spec.sim.tick = Seconds(10.0);
  spec.sim.runtime_period = Minutes(5.0);
  FinishSpec(spec);
  return spec;
}

// --- twoin1-docking-week (paper §5.3 grown to a docked work week) -----------

ScenarioSpec ExpandTwoInOneDockingWeek(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "twoin1-docking-week";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeTwoInOneInternal(capacity));
  spec.batteries.push_back(MakeTwoInOneExternal(capacity));
  spec.initial_soc = {1.0, 1.0};

  Rng rng(MixSeed(seed, 0xD0C10ULL));
  const int days = static_cast<int>(P(params, "days"));
  const double work_hours = P(params, "work_hours");
  const double evening_hours = P(params, "evening_hours");
  Power active = Watts(P(params, "active_w"));
  Power dock = Watts(P(params, "dock_w"));
  PowerTrace load;
  PowerTrace supply;
  for (int d = 0; d < days; ++d) {
    // Morning on battery: light use from 8:00, docked 9:00..9+work_hours,
    // evening use, then overnight idle. Minute-level jitter on activity.
    auto span = [&](double hours, Power mean_load, Power mean_supply) {
      if (hours <= 0.0) {
        return;
      }
      const int minutes = std::max(1, static_cast<int>(hours * 60.0));
      for (int m = 0; m < minutes; ++m) {
        double jitter = 1.0 + rng.Uniform(-0.15, 0.15);
        load.Append(Minutes(1.0), Watts(std::max(0.5, mean_load.value() * jitter)));
      }
      if (supply.TotalDuration().value() < load.TotalDuration().value()) {
        supply.Append(Hours(hours), mean_supply);
      }
    };
    span(1.0, Watts(0.6 * active.value()), Watts(0.0));   // Undocked morning.
    span(work_hours, active, dock);                       // Docked work block.
    span(evening_hours, Watts(0.7 * active.value()), Watts(0.0));
    double idle_hours = 24.0 - 1.0 - work_hours - evening_hours;
    span(std::max(0.0, idle_hours), Watts(1.0), Watts(0.0));
  }
  spec.load = std::move(load);
  spec.supply = std::move(supply);
  spec.sim.tick = Seconds(30.0);
  spec.sim.runtime_period = Minutes(10.0);
  FinishSpec(spec);
  return spec;
}

// --- ambient-sensor-nimh (arXiv 0802.3053) ----------------------------------

ScenarioSpec ExpandAmbientSensorNiMh(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "ambient-sensor-nimh";
  spec.seed = seed;
  spec.batteries.push_back(MakeNiMhAmbient(MilliAmpHours(P(params, "capacity_mah"))));
  spec.batteries.push_back(
      MakeNiMhAmbient(MilliAmpHours(2.0 * P(params, "capacity_mah"))));
  spec.initial_soc = {0.9, 0.9};

  Rng rng(MixSeed(seed, 0xA3B1E47ULL));
  Duration horizon = Days(P(params, "days"));
  Duration period = Seconds(P(params, "period_s"));
  Duration burst = Seconds(std::min(P(params, "burst_s"), P(params, "period_s")));
  Power idle = MilliWatts(P(params, "idle_mw"));
  PowerTrace load;
  double elapsed = 0.0;
  while (elapsed < horizon.value()) {
    // Sense/transmit burst with amplitude jitter, then the idle floor.
    double jitter = 1.0 + rng.Uniform(-0.2, 0.2);
    load.Append(burst, MilliWatts(P(params, "burst_mw") * jitter) + idle);
    double rest = std::min(period.value() - burst.value(),
                           horizon.value() - elapsed - burst.value());
    if (rest > 0.0) {
      load.Append(Seconds(rest), idle);
    }
    elapsed += period.value();
  }
  spec.load = std::move(load);
  spec.sim.tick = Seconds(5.0);
  spec.sim.runtime_period = Minutes(10.0);
  FinishSpec(spec);
  return spec;
}

// --- harvest-dual (arXiv 1801.03813) ----------------------------------------

ScenarioSpec ExpandHarvestDual(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "harvest-dual";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeType2Standard(capacity, 0));
  spec.batteries.push_back(MakeType2Standard(capacity, 1));
  spec.initial_soc = {0.6, 0.6};

  Rng rng(MixSeed(seed, 0x4A97E57ULL));
  Duration horizon = Hours(P(params, "hours"));
  Duration cycle = Minutes(P(params, "cycle_min"));
  const double tx_duty = P(params, "tx_duty");
  const double harvest_duty = P(params, "harvest_duty");
  Power idle = Watts(0.05);
  PowerTrace load;
  PowerTrace supply;
  double elapsed = 0.0;
  while (elapsed < horizon.value()) {
    double span = std::min(cycle.value(), horizon.value() - elapsed);
    // Transmission window at the front of each duty cycle.
    double tx_s = span * tx_duty;
    double tx_jitter = 1.0 + rng.Uniform(-0.25, 0.25);
    if (tx_s > 0.0) {
      load.Append(Seconds(tx_s), Watts(P(params, "tx_w") * tx_jitter) + idle);
    }
    if (span - tx_s > 0.0) {
      load.Append(Seconds(span - tx_s), idle);
    }
    // Harvest window at the back (the alternating-battery rhythm of the
    // dual-battery paper: one battery charges while the other serves).
    double harvest_s = span * harvest_duty;
    double harvest_jitter = 1.0 + rng.Uniform(-0.4, 0.2);
    if (span - harvest_s > 0.0) {
      supply.Append(Seconds(span - harvest_s), Watts(0.0));
    }
    if (harvest_s > 0.0) {
      supply.Append(Seconds(harvest_s),
                    Watts(std::max(0.0, P(params, "harvest_w") * harvest_jitter)));
    }
    elapsed += span;
  }
  spec.load = std::move(load);
  spec.supply = std::move(supply);
  spec.sim.tick = Seconds(5.0);
  spec.sim.runtime_period = Minutes(5.0);
  FinishSpec(spec);
  return spec;
}

// --- ev-burst (EV-like high-C bursts on power cells) ------------------------

ScenarioSpec ExpandEvBurst(const PackParams& params, uint64_t seed) {
  ScenarioSpec spec;
  spec.pack = "ev-burst";
  spec.seed = seed;
  Charge capacity = MilliAmpHours(P(params, "capacity_mah"));
  spec.batteries.push_back(MakeType1PowerCell(capacity));
  spec.batteries.push_back(MakeType1PowerCell(capacity));
  spec.initial_soc = {0.95, 0.95};

  Rng rng(MixSeed(seed, 0xE7B0457ULL));
  Duration horizon = Hours(P(params, "hours"));
  const double burst_every = P(params, "burst_every_s");
  const double burst_len = std::min(P(params, "burst_s"), burst_every);
  PowerTrace load;
  PowerTrace supply;
  double elapsed = 0.0;
  bool spiked = false;
  while (elapsed < horizon.value()) {
    double span = std::min(burst_every, horizon.value() - elapsed);
    double cruise_jitter = 1.0 + rng.Uniform(-0.1, 0.1);
    double accel = std::min(burst_len, span);
    // Acceleration burst, cruise, and optional regen feed-in after the burst.
    // The jitter draw stays unconditional so spike_w never shifts the RNG
    // stream: with spike_w=0 the trace is bit-identical to the historical one.
    double burst_w =
        P(params, "burst_w") * (1.0 + rng.Uniform(-0.15, 0.15));
    if (!spiked && P(params, "spike_w") > 0.0 &&
        elapsed >= 0.5 * horizon.value()) {
      // Trip bait: one mid-drive burst swaps in spike_w, typically well past
      // the pack envelope, to exercise the safety supervisor's trip path.
      burst_w = P(params, "spike_w");
      spiked = true;
    }
    load.Append(Seconds(accel), Watts(burst_w));
    if (span - accel > 0.0) {
      load.Append(Seconds(span - accel),
                  Watts(P(params, "cruise_w") * cruise_jitter));
    }
    double regen = P(params, "regen_w");
    if (regen > 0.0 && span > accel) {
      supply.Append(Seconds(accel), Watts(0.0));
      double regen_s = std::min(accel, span - accel);
      supply.Append(Seconds(regen_s), Watts(regen));
      if (span - accel - regen_s > 0.0) {
        supply.Append(Seconds(span - accel - regen_s), Watts(0.0));
      }
    }
    elapsed += span;
  }
  spec.load = std::move(load);
  spec.supply = std::move(supply);
  spec.sim.tick = Seconds(1.0);
  spec.sim.runtime_period = Seconds(30.0);
  FinishSpec(spec);
  return spec;
}

std::vector<ScenarioPack> BuildRegistry() {
  std::vector<ScenarioPack> packs;
  packs.push_back(ScenarioPack{
      "smartwatch-day",
      "paper §5.2 watch day: idle + message checks + one run (Fig. 13)",
      {
          {"capacity_mah", 200.0, 80.0, 500.0, "per-battery capacity (mAh)"},
          {"idle_mw", 50.0, 10.0, 150.0, "always-on baseline draw (mW)"},
          {"checks_per_hour", 6.0, 0.0, 30.0, "message-check bursts per hour"},
          {"run_hours", 1.0, 0.0, 4.0, "GPS+HR tracked run length (h)"},
          {"days", 1.0, 0.25, 7.0, "trace length (days)"},
      },
      &ExpandSmartwatchDay});
  packs.push_back(ScenarioPack{
      "fastcharge-tablet",
      "paper §5.1 tablet: bursty load + wall supply on fast/high-energy pair",
      {
          {"capacity_mah", 4000.0, 1000.0, 8000.0, "per-battery capacity (mAh)"},
          {"load_w", 8.0, 1.0, 25.0, "mean load while active (W)"},
          {"supply_w", 30.0, 10.0, 65.0, "wall supply (W)"},
          {"hours", 4.0, 1.0, 24.0, "trace length (h)"},
          {"initial_soc", 0.25, 0.05, 1.0, "starting state of charge"},
          {"supply_start_h", 0.0, 0.0, 24.0,
           "wall supply plugs in at this hour (h); 0 = from the start"},
      },
      &ExpandFastchargeTablet});
  packs.push_back(ScenarioPack{
      "phone-day",
      "paper §4.3 phone: screen sessions, standby, a midday video call",
      {
          {"capacity_mah", 3000.0, 1000.0, 6000.0, "main-battery capacity (mAh)"},
          {"days", 1.0, 0.25, 7.0, "trace length (days)"},
          {"scale", 1.0, 0.3, 3.0, "power multiplier on the whole trace"},
      },
      &ExpandPhoneDay});
  packs.push_back(ScenarioPack{
      "twoin1-docking-week",
      "2-in-1 work week: docked (mains) 9-to-5, mobile evenings (§5.3 grown)",
      {
          {"capacity_mah", 4000.0, 1500.0, 8000.0, "per-battery capacity (mAh)"},
          {"days", 5.0, 1.0, 14.0, "week length (days)"},
          {"work_hours", 8.0, 1.0, 16.0, "docked hours per day"},
          {"evening_hours", 3.0, 0.0, 8.0, "mobile evening hours per day"},
          {"active_w", 10.0, 4.0, 22.0, "mean draw while in use (W)"},
          {"dock_w", 40.0, 15.0, 60.0, "dock supply while docked (W)"},
      },
      &ExpandTwoInOneDockingWeek});
  packs.push_back(ScenarioPack{
      "ambient-sensor-nimh",
      "Ni-MH ambient-sensor node: duty-cycled sense/transmit bursts (0802.3053)",
      {
          {"capacity_mah", 500.0, 100.0, 3000.0, "small-cell capacity (mAh)"},
          {"days", 2.0, 0.25, 30.0, "deployment length (days)"},
          {"period_s", 300.0, 60.0, Hours(1.0).value(), "duty-cycle period (s)"},
          {"burst_s", 5.0, 0.5, 30.0, "burst length per period (s)"},
          {"burst_mw", 120.0, 5.0, 500.0, "sense/transmit burst draw (mW)"},
          {"idle_mw", 2.0, 0.2, 20.0, "sleep-mode floor (mW)"},
      },
      &ExpandAmbientSensorNiMh});
  packs.push_back(ScenarioPack{
      "harvest-dual",
      "dual-battery energy-harvesting duty cycle: tx bursts + harvest windows "
      "(1801.03813)",
      {
          {"capacity_mah", 800.0, 100.0, 3000.0, "per-battery capacity (mAh)"},
          {"hours", 12.0, 1.0, 168.0, "trace length (h)"},
          {"cycle_min", 30.0, 5.0, 240.0, "duty-cycle period (min)"},
          {"tx_w", 0.8, 0.05, 5.0, "transmit-window draw (W)"},
          {"tx_duty", 0.25, 0.05, 0.95, "transmit fraction of each cycle"},
          {"harvest_w", 0.6, 0.05, 10.0, "harvester feed while lit (W)"},
          {"harvest_duty", 0.4, 0.05, 0.95, "harvest fraction of each cycle"},
      },
      &ExpandHarvestDual});
  packs.push_back(ScenarioPack{
      "ev-burst",
      "EV-like high-C bursts on LiFePO4 power cells, optional regen feed-in",
      {
          {"capacity_mah", 5000.0, 1000.0, 20000.0, "per-cell capacity (mAh)"},
          {"hours", 1.0, 0.2, 8.0, "drive length (h)"},
          {"cruise_w", 15.0, 2.0, 60.0, "cruise draw (W)"},
          {"burst_w", 90.0, 10.0, 250.0, "acceleration burst draw (W)"},
          {"burst_s", 8.0, 1.0, 60.0, "burst length (s)"},
          {"burst_every_s", 120.0, 20.0, 900.0, "burst period (s)"},
          {"regen_w", 0.0, 0.0, 40.0, "regen feed-in after each burst (W)"},
          {"spike_w", 0.0, 0.0, 400.0,
           "one trip-bait spike replacing the first burst at/after mid-drive "
           "(W); 0 disables"},
      },
      &ExpandEvBurst});
  return packs;
}

}  // namespace

const std::vector<ScenarioPack>& ScenarioPacks() {
  static const std::vector<ScenarioPack>* kPacks =
      new std::vector<ScenarioPack>(BuildRegistry());
  return *kPacks;
}

const ScenarioPack* FindScenarioPack(std::string_view name) {
  for (const ScenarioPack& pack : ScenarioPacks()) {
    if (pack.name == name) {
      return &pack;
    }
  }
  return nullptr;
}

StatusOr<PackParams> ResolvePackParams(const ScenarioPack& pack,
                                       const PackParams& overrides) {
  PackParams resolved;
  for (const PackParamSpec& spec : pack.params) {
    resolved[spec.name] = spec.default_value;
  }
  for (const auto& [name, value] : overrides) {
    auto it = resolved.find(name);
    if (it == resolved.end()) {
      std::ostringstream os;
      os << "pack '" << pack.name << "' has no parameter '" << name << "' (has:";
      for (const PackParamSpec& spec : pack.params) {
        os << " " << spec.name;
      }
      os << ")";
      return InvalidArgumentError(os.str());
    }
    const PackParamSpec* spec = nullptr;
    for (const PackParamSpec& candidate : pack.params) {
      if (candidate.name == name) {
        spec = &candidate;
      }
    }
    SDB_CHECK(spec != nullptr);
    if (!std::isfinite(value) || value < spec->min_value || value > spec->max_value) {
      std::ostringstream os;
      os << "pack '" << pack.name << "' parameter '" << name << "' = " << value
         << " out of range [" << spec->min_value << ", " << spec->max_value << "]";
      return InvalidArgumentError(os.str());
    }
    it->second = value;
  }
  return resolved;
}

StatusOr<ScenarioSpec> ExpandScenario(const std::string& pack_name,
                                      const PackParams& overrides, uint64_t seed,
                                      const PowerTrace* load_override) {
  const ScenarioPack* pack = FindScenarioPack(pack_name);
  if (pack == nullptr) {
    std::ostringstream os;
    os << "unknown scenario pack '" << pack_name << "' (have:";
    for (const ScenarioPack& candidate : ScenarioPacks()) {
      os << " " << candidate.name;
    }
    os << ")";
    return NotFoundError(os.str());
  }
  StatusOr<PackParams> resolved = ResolvePackParams(*pack, overrides);
  if (!resolved.ok()) {
    return resolved.status();
  }
  ScenarioSpec spec = pack->expand(*resolved, seed);
  SDB_CHECK(spec.batteries.size() == spec.initial_soc.size());
  SDB_CHECK(!spec.load.empty());
  if (load_override != nullptr) {
    if (load_override->empty()) {
      return InvalidArgumentError("substituted trace for pack '" + pack_name +
                                  "' is empty");
    }
    // External-trace substitution: the recorded load replaces the synthetic
    // one; supply is clipped to the new horizon and the sim follows it.
    spec.load = *load_override;
    spec.sim.max_duration = spec.load.TotalDuration() + spec.sim.tick;
  }
  return spec;
}

std::vector<Cell> BuildScenarioCells(const ScenarioSpec& spec) {
  std::vector<Cell> cells;
  cells.reserve(spec.batteries.size());
  for (size_t i = 0; i < spec.batteries.size(); ++i) {
    cells.emplace_back(spec.batteries[i], spec.initial_soc[i]);
  }
  return cells;
}

SimResult RunScenario(const ScenarioSpec& spec, uint64_t seed_salt) {
  SdbMicrocontroller micro = MakeDefaultMicrocontroller(
      BuildScenarioCells(spec), MixSeed(spec.seed, 0x516A11ULL ^ seed_salt));
  RuntimeConfig config;
  config.directives = spec.directives;
  SdbRuntime runtime(&micro, config);
  Simulator sim(&runtime, spec.sim);
  return sim.Run(spec.load, spec.supply);
}

}  // namespace sdb

// Seeded fault-recovery soak harness (DESIGN.md §9): long randomized fault
// schedules played against a full SDB stack (pack + recovery-enabled safety
// supervisor + command link + runtime with reintegration ramping), with a
// set of invariants checked on every hardware tick:
//
//   1. every ground-truth SoC stays finite and inside [0, 1],
//   2. a battery that was safety-faulted at the start of a tick carries no
//      current during that tick (the hardware mask holds),
//   3. the runtime never programs a nonzero share for a battery it has
//      quarantined (audited at the wire, frame by frame),
//   4. per-battery cycle counts are monotone,
//   5. the energy ledger balances over the whole run, and
//   6. after every fault window closes, the allocation converges back to a
//      never-faulted baseline run of the same rig.
//
// Determinism: schedule k derives everything (fault plan, rig seeds) from
// base_seed + k alone, and results land in per-index slots, so the report —
// including its fingerprint — is bit-identical for any --jobs value.
#ifndef SRC_EMU_SOAK_H_
#define SRC_EMU_SOAK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/fault.h"
#include "src/obs/event.h"
#include "src/util/units.h"

namespace sdb {

struct SoakConfig {
  uint64_t base_seed = 1;
  int schedules = 20;          // Independent randomized fault schedules.
  Duration horizon = Hours(2.0);
  Duration tick = Seconds(10.0);
  Duration runtime_period = Minutes(10.0);
  Power load = Watts(6.0);
  int max_events = 6;          // Fault events per schedule: 1..max_events.
  // Worker threads: 1 = serial, 0 = auto (SDB_THREADS / hardware).
  int jobs = 1;
  // Energy-ledger tolerance: |drawn - accounted| <= max(2 J, drawn * frac).
  double energy_tolerance_fraction = 0.03;
  // Post-recovery convergence: largest per-battery difference between the
  // final programmed discharge shares of the faulted run and the
  // never-faulted baseline.
  double convergence_tolerance = 0.15;
};

// One invariant breach, with enough context to replay the schedule.
struct SoakViolation {
  uint64_t seed = 0;
  Duration time;
  std::string invariant;  // Short tag, e.g. "soc-range" or "ledger".
  std::string detail;
};

// Outcome of one randomized schedule.
struct SoakScheduleReport {
  uint64_t seed = 0;
  int events = 0;              // Fault events in the generated plan.
  bool completed = false;      // The run covered the full horizon.
  bool recovered = false;      // Healthy supervisor + non-degraded runtime at end.
  double max_share_delta = 0.0;  // Final shares vs the baseline run.
  uint64_t trips = 0;
  uint64_t recoveries = 0;
  uint64_t reboots = 0;
  uint64_t resyncs = 0;
  uint64_t replayed_commands = 0;
  std::vector<SoakViolation> violations;  // Bounded; see violations_dropped.
  uint64_t violations_dropped = 0;
  uint64_t fingerprint = 0;    // Bit-exact digest of this schedule's result.
  // Flight-recorder journal of the faulted run (safety trips, lifecycle,
  // quarantines, oracle verdicts, ...). Deterministic per seed; NOT part of
  // the fingerprint, which digests the explicit fields above.
  std::vector<obs::JournalEvent> journal;
};

struct SoakReport {
  std::vector<SoakScheduleReport> schedules;
  uint64_t total_violations = 0;
  uint64_t fingerprint = 0;    // Index-ordered merge of schedule digests.

  bool ok() const { return total_violations == 0; }
};

// Generates a randomized fault plan for `batteries` batteries: 1..max_events
// events with kinds drawn across the whole taxonomy, every window closing by
// 70% of the horizon so recovery and reconvergence have room to finish. Pure
// function of the arguments — same seed, same plan.
FaultPlan MakeRandomFaultPlan(uint64_t seed, int batteries, Duration horizon,
                              int max_events);

// Runs `config.schedules` randomized schedules (each paired with a
// never-faulted baseline of the same rig) and checks every invariant.
SoakReport RunSoak(const SoakConfig& config);

}  // namespace sdb

#endif  // SRC_EMU_SOAK_H_

#include "src/emu/simulator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sdb {

std::string_view CrashBarrierName(CrashBarrier barrier) {
  switch (barrier) {
    case CrashBarrier::kPreAllocate:
      return "pre-allocate";
    case CrashBarrier::kPostAllocate:
      return "post-allocate";
    case CrashBarrier::kMidCheckpointWrite:
      return "mid-checkpoint-write";
  }
  return "unknown";
}

Simulator::Simulator(SdbRuntime* runtime, SimConfig config)
    : runtime_(runtime), config_(config) {
  SDB_CHECK(runtime_ != nullptr);
  SDB_CHECK(config_.tick.value() > 0.0);
  SDB_CHECK(config_.runtime_period.value() >= config_.tick.value());
  SDB_CHECK(config_.checkpoint_period.value() >= 0.0);
}

void Simulator::SampleTimeline(obs::Timeline& timeline, Duration now,
                               const MicroTick& tick) const {
  const SdbMicrocontroller* micro = runtime_->microcontroller();
  const size_t n = micro->battery_count();
  std::vector<std::pair<std::string, double>> row;
  row.reserve(3 * n + 12);
  for (size_t i = 0; i < n; ++i) {
    const Cell& cell = micro->pack().cell(i);
    std::string prefix = "b" + std::to_string(i);
    row.emplace_back(prefix + ".soc", cell.soc());
    row.emplace_back(prefix + ".temp_k", cell.thermal().temperature().value());
    double share = i < tick.discharge.realised_shares.size()
                       ? tick.discharge.realised_shares[i]
                       : 0.0;
    row.emplace_back(prefix + ".share", share);
  }
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("sdb.runtime.", 0) == 0) {
      row.emplace_back(name, static_cast<double>(value));
    }
  }
  timeline.Sample(now.value(), row);
}

SimResult Simulator::Run(const PowerTrace& load, const PowerTrace& supply) {
  SDB_TRACE_SPAN("emu", "sim.run");
  SdbMicrocontroller* micro = runtime_->microcontroller();
  if (!config_.faults.empty()) {
    micro->InstallFaults(config_.faults);
  }
  SimLoopState start;
  start.partial.final_soc.assign(micro->battery_count(), 0.0);
  start.partial.depletion_time.assign(micro->battery_count(), std::nullopt);
  return RunLoop(std::move(start), load, supply);
}

SimResult Simulator::Resume(const SimLoopState& from, const PowerTrace& load,
                            const PowerTrace& supply) {
  SDB_TRACE_SPAN("emu", "sim.resume");
  return RunLoop(from, load, supply);
}

SimResult Simulator::RunLoop(SimLoopState state, const PowerTrace& load,
                             const PowerTrace& supply) {
  SdbMicrocontroller* micro = runtime_->microcontroller();
  const size_t n = micro->battery_count();

  SimResult result = std::move(state.partial);

  double horizon_s =
      std::min(std::max(load.TotalDuration(), supply.TotalDuration()).value(),
               config_.max_duration.value());
  double tick_s = config_.tick.value();
  double next_replan = state.next_replan.value();
  bool transfer_was_active = state.transfer_was_active;
  const double checkpoint_s = config_.checkpoint_period.value();
  double next_checkpoint = state.next_checkpoint.value();
  const bool checkpointing = checkpoint_s > 0.0 && config_.on_checkpoint != nullptr;

  double t = state.t.value();
  while (t < horizon_s) {
    // Publish the simulated clock so spans opened below carry it; tracing
    // only ever reads this — it never feeds back into the simulation.
    SDB_TRACE_SET_SIM_TIME(Seconds(t));

    // Checkpoint at the top of the iteration, before this tick's work, so
    // the saved loop state re-executes the tick it interrupted. The deadline
    // advances BEFORE the callback: the state it snapshots must aim the
    // resumed run at the NEXT checkpoint, not back at this one.
    if (checkpointing && t >= next_checkpoint) {
      next_checkpoint += checkpoint_s;
      SimLoopState snap;
      snap.t = Seconds(t);
      snap.next_replan = Seconds(next_replan);
      snap.next_checkpoint = Seconds(next_checkpoint);
      snap.transfer_was_active = transfer_was_active;
      snap.partial = result;
      if (!config_.on_checkpoint(snap)) {
        result.crashed = true;
        break;
      }
    }

    Power p_load = load.Sample(Seconds(t));
    Power p_supply = supply.Sample(Seconds(t));

    if (t >= next_replan) {
      if (config_.on_barrier != nullptr &&
          !config_.on_barrier(CrashBarrier::kPreAllocate, Seconds(t))) {
        result.crashed = true;
        break;
      }
      // A failed update is survivable — the runtime keeps the previous
      // ratios — but never silent: the result carries the count.
      Status update_status = runtime_->Update(p_load, p_supply);
      if (!update_status.ok()) {
        ++result.update_failures;
      }
      next_replan = t + config_.runtime_period.value();
      if (config_.on_barrier != nullptr &&
          !config_.on_barrier(CrashBarrier::kPostAllocate, Seconds(t))) {
        result.crashed = true;
        break;
      }
    }

    MicroTick tick = micro->Step(p_load, p_supply, Seconds(tick_s));
    runtime_->AdvanceTime(Seconds(tick_s));
    t += tick_s;
    if (config_.on_tick != nullptr) {
      config_.on_tick(tick, Seconds(t));
    }
    if (config_.timeline != nullptr && config_.timeline->Due(t)) {
      SampleTimeline(*config_.timeline, Seconds(t), tick);
    }

    // Energy ledger.
    double delivered_j = tick.discharge.delivered.value() * tick_s;
    double battery_loss_j =
        tick.discharge.battery_loss.value() + tick.charge.battery_loss.value() +
        tick.transfer.battery_loss.value();
    double circuit_loss_j =
        tick.discharge.circuit_loss.value() + tick.charge.circuit_loss.value() +
        tick.transfer.circuit_loss.value();
    result.delivered += Joules(delivered_j);
    result.battery_loss += Joules(battery_loss_j);
    result.circuit_loss += Joules(circuit_loss_j);
    result.charged += Joules(tick.charge.absorbed.value() * tick_s);

    size_t hour = static_cast<size_t>(ToHours(Seconds(t)));
    if (result.hourly.size() <= hour) {
      result.hourly.resize(hour + 1,
                           HourlyStats{Joules(0.0), Joules(0.0), Joules(0.0)});
    }
    HourlyStats& hourly = result.hourly[hour];
    hourly.load_energy += Joules(delivered_j);
    hourly.battery_loss += Joules(battery_loss_j);
    hourly.circuit_loss += Joules(circuit_loss_j);
    // Health snapshot: latch `degraded` if the runtime spent any tick of the
    // hour degraded; counters overwrite so the row holds hour-end values.
    const ResilienceCounters& resilience = runtime_->resilience();
    hourly.degraded = hourly.degraded || runtime_->degraded();
    hourly.link_retries = resilience.link_retries;
    hourly.link_failures = resilience.link_failures;
    hourly.stale_updates = resilience.stale_updates;

    // Events.
    for (size_t i = 0; i < n; ++i) {
      const Cell& cell = micro->pack().cell(i);
      if (!result.depletion_time[i].has_value() && cell.IsEmpty(1e-3)) {
        result.depletion_time[i] = Seconds(t);
        result.events.push_back(
            SimEvent{SimEventKind::kBatteryDepleted, Seconds(t), static_cast<int>(i)});
        SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, t, static_cast<int>(i),
                          "battery-depleted");
      }
    }
    if (transfer_was_active && !micro->transfer_active()) {
      result.events.push_back(SimEvent{SimEventKind::kTransferEnded, Seconds(t), -1});
      SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, t, -1, "transfer-ended");
    }
    transfer_was_active = micro->transfer_active();

    if (tick.discharge.shortfall && p_load.value() > 0.0) {
      if (!result.first_shortfall.has_value()) {
        result.first_shortfall = Seconds(t);
        result.events.push_back(SimEvent{SimEventKind::kLoadShortfall, Seconds(t), -1});
        SDB_JOURNAL_EVENT(obs::EventKind::kSimEvent, t, -1, "load-shortfall",
                          std::string(), tick.discharge.delivered.value(),
                          p_load.value());
      }
      if (config_.stop_on_shortfall) {
        break;
      }
    }
  }

  SDB_TRACE_CLEAR_SIM_TIME();
  result.elapsed = Seconds(t);
  for (size_t i = 0; i < n; ++i) {
    result.final_soc[i] = micro->pack().cell(i).soc();
  }
  return result;
}

SimResult Simulator::RunChargeOnly(Power supply, Duration timeout) {
  SDB_TRACE_SPAN("emu", "sim.run_charge_only");
  SdbMicrocontroller* micro = runtime_->microcontroller();
  const size_t n = micro->battery_count();
  SimResult result;
  result.delivered = Joules(0.0);
  result.battery_loss = Joules(0.0);
  result.circuit_loss = Joules(0.0);
  result.charged = Joules(0.0);
  result.final_soc.assign(n, 0.0);
  result.depletion_time.assign(n, std::nullopt);

  double tick_s = config_.tick.value();
  double next_replan = 0.0;
  double t = 0.0;
  while (t < timeout.value()) {
    SDB_TRACE_SET_SIM_TIME(Seconds(t));
    if (micro->pack().AllFull(1.0 - 1e-3)) {
      break;
    }
    if (t >= next_replan) {
      Status update_status = runtime_->Update(Watts(0.0), supply);
      if (!update_status.ok()) {
        ++result.update_failures;
      }
      next_replan = t + config_.runtime_period.value();
    }
    MicroTick tick = micro->Step(Watts(0.0), supply, Seconds(tick_s));
    t += tick_s;
    result.charged += Joules(tick.charge.absorbed.value() * tick_s);
    result.battery_loss += tick.charge.battery_loss;
    result.circuit_loss += tick.charge.circuit_loss;
    // A tick where nothing charged and nothing is full means the profiles
    // have terminated (CV tail done): stop early.
    if (!tick.charge.any_charging) {
      break;
    }
  }
  SDB_TRACE_CLEAR_SIM_TIME();
  result.elapsed = Seconds(t);
  for (size_t i = 0; i < n; ++i) {
    result.final_soc[i] = micro->pack().cell(i).soc();
  }
  return result;
}

}  // namespace sdb

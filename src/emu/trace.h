// Power traces: piecewise-constant power-vs-time series. The paper's
// devices were instrumented for 100 Hz power-draw measurements that were
// fed into the emulator (§4.3); our workload generators synthesise the same
// shape of input.
#ifndef SRC_EMU_TRACE_H_
#define SRC_EMU_TRACE_H_

#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// One constant-power segment.
struct TraceSegment {
  Duration start;
  Duration duration;
  Power power;
};

class PowerTrace {
 public:
  PowerTrace() = default;

  // Appends a segment at the current end of the trace.
  void Append(Duration duration, Power power);

  // Power at absolute time t (zero before the start and after the end).
  Power Sample(Duration t) const;

  Duration TotalDuration() const;

  // Energy of the whole trace.
  Energy TotalEnergy() const;

  // Energy within [from, to).
  Energy EnergyBetween(Duration from, Duration to) const;

  Power PeakPower() const;

  bool empty() const { return segments_.empty(); }
  const std::vector<TraceSegment>& segments() const { return segments_; }

  // A constant trace.
  static PowerTrace Constant(Power power, Duration duration);

  // Scales every segment's power by `factor`.
  PowerTrace Scaled(double factor) const;

  // Concatenates `other` after this trace.
  PowerTrace Concatenated(const PowerTrace& other) const;

 private:
  std::vector<TraceSegment> segments_;
};

}  // namespace sdb

#endif  // SRC_EMU_TRACE_H_

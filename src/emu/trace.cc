#include "src/emu/trace.h"

#include <algorithm>

#include "src/util/check.h"

namespace sdb {

void PowerTrace::Append(Duration duration, Power power) {
  SDB_CHECK(duration.value() > 0.0);
  SDB_CHECK(power.value() >= 0.0);
  Duration start = TotalDuration();
  segments_.push_back(TraceSegment{start, duration, power});
}

Power PowerTrace::Sample(Duration t) const {
  double ts = t.value();
  if (segments_.empty() || ts < 0.0) {
    return Watts(0.0);
  }
  // Binary search for the segment containing ts.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), ts,
      [](double value, const TraceSegment& seg) { return value < seg.start.value(); });
  if (it == segments_.begin()) {
    return Watts(0.0);
  }
  const TraceSegment& seg = *(it - 1);
  if (ts < seg.start.value() + seg.duration.value()) {
    return seg.power;
  }
  return Watts(0.0);
}

Duration PowerTrace::TotalDuration() const {
  if (segments_.empty()) {
    return Seconds(0.0);
  }
  const TraceSegment& last = segments_.back();
  return last.start + last.duration;
}

Energy PowerTrace::TotalEnergy() const {
  Energy total = Joules(0.0);
  for (const auto& seg : segments_) {
    total += Joules(seg.power.value() * seg.duration.value());
  }
  return total;
}

Energy PowerTrace::EnergyBetween(Duration from, Duration to) const {
  double lo = from.value();
  double hi = to.value();
  if (hi <= lo) {
    return Joules(0.0);
  }
  double total = 0.0;
  for (const auto& seg : segments_) {
    double s0 = seg.start.value();
    double s1 = s0 + seg.duration.value();
    double overlap = std::min(hi, s1) - std::max(lo, s0);
    if (overlap > 0.0) {
      total += seg.power.value() * overlap;
    }
  }
  return Joules(total);
}

Power PowerTrace::PeakPower() const {
  Power peak = Watts(0.0);
  for (const auto& seg : segments_) {
    peak = Max(peak, seg.power);
  }
  return peak;
}

PowerTrace PowerTrace::Constant(Power power, Duration duration) {
  PowerTrace trace;
  trace.Append(duration, power);
  return trace;
}

PowerTrace PowerTrace::Scaled(double factor) const {
  SDB_CHECK(factor >= 0.0);
  PowerTrace out;
  for (const auto& seg : segments_) {
    out.Append(seg.duration, Watts(seg.power.value() * factor));
  }
  return out;
}

PowerTrace PowerTrace::Concatenated(const PowerTrace& other) const {
  PowerTrace out = *this;
  for (const auto& seg : other.segments_) {
    out.Append(seg.duration, seg.power);
  }
  return out;
}

}  // namespace sdb

// Power-trace serialisation: the CSV interchange format for recorded
// device power draws (the paper fed 100 Hz instrumented measurements into
// its emulator; this is the equivalent ingestion path for real traces).
//
// Format: a header line `seconds,watts`, then one row per segment giving
// its duration and constant power. Lines starting with '#' are comments.
#ifndef SRC_EMU_TRACE_IO_H_
#define SRC_EMU_TRACE_IO_H_

#include <string>

#include "src/emu/trace.h"
#include "src/util/status.h"

namespace sdb {

// Renders a trace to CSV text.
std::string FormatPowerTraceCsv(const PowerTrace& trace);

// Parses CSV text into a trace. Rejects malformed rows, non-positive
// durations and negative powers with a descriptive error.
StatusOr<PowerTrace> ParsePowerTraceCsv(const std::string& text);

// File convenience wrappers.
Status WritePowerTraceFile(const PowerTrace& trace, const std::string& path);
StatusOr<PowerTrace> ReadPowerTraceFile(const std::string& path);

// Downsamples a trace to fixed-width segments of `bucket` (mean power per
// bucket) — useful to compact 100 Hz recordings before planning over them.
PowerTrace ResampleTrace(const PowerTrace& trace, Duration bucket);

}  // namespace sdb

#endif  // SRC_EMU_TRACE_IO_H_

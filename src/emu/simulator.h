// The multi-battery emulator's driver loop (paper §4.3): plays a load
// trace (and optionally a supply trace) against an SDB runtime +
// microcontroller, with the runtime re-planning at coarse steps, and keeps
// a full energy ledger plus the event log the application benches read.
#ifndef SRC_EMU_SIMULATOR_H_
#define SRC_EMU_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/runtime.h"
#include "src/emu/trace.h"
#include "src/hw/fault.h"
#include "src/util/units.h"

namespace sdb {

namespace obs {
class Timeline;
}  // namespace obs

// Named kill points inside the driver loop (DESIGN.md §16): where a
// seed-keyed crash schedule may simulate process death. The two allocate
// barriers bracket the runtime's re-plan; mid-checkpoint-write death is
// modelled through SimConfig::on_checkpoint returning false (optionally
// after arming a torn-write mutator on the checkpoint store).
enum class CrashBarrier {
  kPreAllocate,          // Replan boundary reached, Update() not yet run.
  kPostAllocate,         // Update() completed, ratios programmed.
  kMidCheckpointWrite,   // Death while the snapshot bytes hit the device.
};

std::string_view CrashBarrierName(CrashBarrier barrier);

struct SimLoopState;

struct SimConfig {
  Duration tick = Seconds(1.0);             // Hardware step.
  Duration runtime_period = Seconds(60.0);  // Policy re-plan period.
  // Stop early once the load can no longer be served (battery life reached).
  bool stop_on_shortfall = true;
  // Hard wall-clock cap regardless of the trace length.
  Duration max_duration = Hours(72.0);
  // Fault schedule, installed on the microcontroller at the start of each
  // Run (event times are relative to that Run). An empty plan leaves any
  // injector installed by the caller untouched, so scenarios that wire
  // their own link faults keep a single injector across the whole run.
  FaultPlan faults;
  // Per-tick observer, called after every hardware step with the tick's
  // outcome and the post-step simulated time. Lets harnesses (the soak
  // invariant checker) audit every tick without forking the driver loop.
  std::function<void(const MicroTick&, Duration now)> on_tick;
  // Optional metrics timeline, sampled by Run() on the timeline's own
  // sim-time cadence: per-battery SoC/temperature/realised share plus the
  // sdb.runtime.* counters. Not owned; nullptr disables sampling.
  obs::Timeline* timeline = nullptr;

  // --- Crash-consistency hooks (DESIGN.md §16) -----------------------------
  // All three default off, in which case the loop is bit-identical to the
  // pre-checkpoint driver (the hooks are never consulted).
  //
  // Checkpoint cadence: with a positive period, `on_checkpoint` fires at the
  // top of the first loop iteration (t = 0 — a restorable slot exists before
  // any tick) and then every `checkpoint_period` of simulated time. The
  // callback snapshots the rig however it likes (the loop state handed in is
  // what Resume() needs back); returning false simulates process death
  // during the snapshot write — the run stops with SimResult::crashed set.
  Duration checkpoint_period = Seconds(0.0);
  std::function<bool(const SimLoopState&)> on_checkpoint;
  // Kill points: consulted at the named barriers; returning false stops the
  // run with SimResult::crashed set (simulated power cut between ticks).
  std::function<bool(CrashBarrier, Duration now)> on_barrier;
};

enum class SimEventKind {
  kBatteryDepleted,
  kBatteryFull,
  kLoadShortfall,
  kTransferEnded,
};

struct SimEvent {
  SimEventKind kind;
  Duration time;
  int battery = -1;  // For per-battery events.
};

// Per-hour energy buckets (Fig. 13 plots hour-by-hour energy and losses),
// plus the runtime's health over the hour so fault replays are plottable
// straight from the hourly export.
struct HourlyStats {
  Energy load_energy;     // Energy the load consumed.
  Energy battery_loss;    // Resistive losses inside batteries.
  Energy circuit_loss;    // Conversion losses.
  bool degraded = false;  // Runtime spent any part of the hour degraded.
  // Cumulative ResilienceCounters values as of the end of the hour.
  uint64_t link_retries = 0;
  uint64_t link_failures = 0;
  uint64_t stale_updates = 0;
};

struct SimResult {
  Duration elapsed;
  std::optional<Duration> first_shortfall;  // "Battery life" under the trace.
  Energy delivered;
  Energy battery_loss;
  Energy circuit_loss;
  Energy charged;                            // Absorbed from external supply.
  std::vector<double> final_soc;
  std::vector<std::optional<Duration>> depletion_time;  // Per battery.
  std::vector<SimEvent> events;
  std::vector<HourlyStats> hourly;
  // Runtime Update() calls that returned non-OK and were absorbed (the
  // runtime keeps the previous ratios; common during link-fault windows).
  int update_failures = 0;
  // True when a crash hook (on_barrier / on_checkpoint) killed the run; the
  // other fields hold whatever had accumulated when the "power cut" hit.
  bool crashed = false;

  Energy TotalLoss() const { return battery_loss + circuit_loss; }
};

// Everything the driver loop itself needs to continue a run from a
// checkpoint: the clock, the replan/checkpoint deadlines, the
// transfer-edge latch, and the partial SimResult accumulated so far. The
// rig state (cells, gauges, runtime, link) is checkpointed separately; the
// pair together makes Resume() bit-identical to the never-crashed run.
struct SimLoopState {
  Duration t;
  Duration next_replan;
  // Deadline AFTER the checkpoint being written, so a resumed run continues
  // the cadence instead of immediately re-checkpointing (and re-crashing).
  Duration next_checkpoint;
  bool transfer_was_active = false;
  SimResult partial;
};

class Simulator {
 public:
  // `runtime` (and its microcontroller) must outlive the simulator.
  Simulator(SdbRuntime* runtime, SimConfig config = {});

  // Runs `load` against the pack with `supply` available externally
  // (empty supply == always on battery).
  SimResult Run(const PowerTrace& load, const PowerTrace& supply = PowerTrace());

  // Warm restart: continues a run from a checkpointed loop state, against a
  // rig the caller already restored. Does NOT reinstall config.faults — the
  // restored fault injector carries the plan's mid-run clock and RNG.
  SimResult Resume(const SimLoopState& from, const PowerTrace& load,
                   const PowerTrace& supply = PowerTrace());

  // Convenience: charge until the pack is full (or `timeout`), no load.
  SimResult RunChargeOnly(Power supply, Duration timeout);

 private:
  // Appends one timeline row at `now`: per-battery SoC/temperature/realised
  // share plus the sdb.runtime.* counters.
  void SampleTimeline(obs::Timeline& timeline, Duration now, const MicroTick& tick) const;
  // The driver loop shared by Run/Resume, starting from `state`.
  SimResult RunLoop(SimLoopState state, const PowerTrace& load, const PowerTrace& supply);

  SdbRuntime* runtime_;
  SimConfig config_;
};

}  // namespace sdb

#endif  // SRC_EMU_SIMULATOR_H_

// The multi-battery emulator's driver loop (paper §4.3): plays a load
// trace (and optionally a supply trace) against an SDB runtime +
// microcontroller, with the runtime re-planning at coarse steps, and keeps
// a full energy ledger plus the event log the application benches read.
#ifndef SRC_EMU_SIMULATOR_H_
#define SRC_EMU_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/emu/trace.h"
#include "src/hw/fault.h"
#include "src/util/units.h"

namespace sdb {

namespace obs {
class Timeline;
}  // namespace obs

struct SimConfig {
  Duration tick = Seconds(1.0);             // Hardware step.
  Duration runtime_period = Seconds(60.0);  // Policy re-plan period.
  // Stop early once the load can no longer be served (battery life reached).
  bool stop_on_shortfall = true;
  // Hard wall-clock cap regardless of the trace length.
  Duration max_duration = Hours(72.0);
  // Fault schedule, installed on the microcontroller at the start of each
  // Run (event times are relative to that Run). An empty plan leaves any
  // injector installed by the caller untouched, so scenarios that wire
  // their own link faults keep a single injector across the whole run.
  FaultPlan faults;
  // Per-tick observer, called after every hardware step with the tick's
  // outcome and the post-step simulated time. Lets harnesses (the soak
  // invariant checker) audit every tick without forking the driver loop.
  std::function<void(const MicroTick&, Duration now)> on_tick;
  // Optional metrics timeline, sampled by Run() on the timeline's own
  // sim-time cadence: per-battery SoC/temperature/realised share plus the
  // sdb.runtime.* counters. Not owned; nullptr disables sampling.
  obs::Timeline* timeline = nullptr;
};

enum class SimEventKind {
  kBatteryDepleted,
  kBatteryFull,
  kLoadShortfall,
  kTransferEnded,
};

struct SimEvent {
  SimEventKind kind;
  Duration time;
  int battery = -1;  // For per-battery events.
};

// Per-hour energy buckets (Fig. 13 plots hour-by-hour energy and losses),
// plus the runtime's health over the hour so fault replays are plottable
// straight from the hourly export.
struct HourlyStats {
  Energy load_energy;     // Energy the load consumed.
  Energy battery_loss;    // Resistive losses inside batteries.
  Energy circuit_loss;    // Conversion losses.
  bool degraded = false;  // Runtime spent any part of the hour degraded.
  // Cumulative ResilienceCounters values as of the end of the hour.
  uint64_t link_retries = 0;
  uint64_t link_failures = 0;
  uint64_t stale_updates = 0;
};

struct SimResult {
  Duration elapsed;
  std::optional<Duration> first_shortfall;  // "Battery life" under the trace.
  Energy delivered;
  Energy battery_loss;
  Energy circuit_loss;
  Energy charged;                            // Absorbed from external supply.
  std::vector<double> final_soc;
  std::vector<std::optional<Duration>> depletion_time;  // Per battery.
  std::vector<SimEvent> events;
  std::vector<HourlyStats> hourly;
  // Runtime Update() calls that returned non-OK and were absorbed (the
  // runtime keeps the previous ratios; common during link-fault windows).
  int update_failures = 0;

  Energy TotalLoss() const { return battery_loss + circuit_loss; }
};

class Simulator {
 public:
  // `runtime` (and its microcontroller) must outlive the simulator.
  Simulator(SdbRuntime* runtime, SimConfig config = {});

  // Runs `load` against the pack with `supply` available externally
  // (empty supply == always on battery).
  SimResult Run(const PowerTrace& load, const PowerTrace& supply = PowerTrace());

  // Convenience: charge until the pack is full (or `timeout`), no load.
  SimResult RunChargeOnly(Power supply, Duration timeout);

 private:
  // Appends one timeline row at `now`: per-battery SoC/temperature/realised
  // share plus the sdb.runtime.* counters.
  void SampleTimeline(obs::Timeline& timeline, Duration now, const MicroTick& tick) const;

  SdbRuntime* runtime_;
  SimConfig config_;
};

}  // namespace sdb

#endif  // SRC_EMU_SIMULATOR_H_

#include "src/hw/charge_circuit.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/chem/soa_kernel.h"
#include "src/obs/event.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

// Terminal power a battery absorbs when charged at `current`.
double ChargePowerAtCurrent(const Cell& cell, double j) {
  if (j <= 0.0) {
    return 0.0;
  }
  double ocv = cell.OpenCircuitVoltage().value();
  double r0 = cell.InternalResistance().value();
  return (ocv + j * r0) * j;
}

}  // namespace

SdbChargeCircuit::SdbChargeCircuit(ChargeCircuitConfig config,
                                   const std::vector<const BatteryParams*>& params, uint64_t seed)
    : config_(config), regulator_(config.regulator), rng_(seed) {
  SDB_CHECK(!params.empty());
  banks_.reserve(params.size());
  for (const BatteryParams* p : params) {
    SDB_CHECK(p != nullptr);
    banks_.emplace_back(std::vector<ChargeProfile>{MakeStandardProfile(*p),
                                                   MakeGentleProfile(*p),
                                                   MakeStorageProfile(*p)});
  }
}

Status SdbChargeCircuit::SelectProfile(size_t battery, size_t profile_index) {
  if (battery >= banks_.size()) {
    return OutOfRangeError("battery index out of range");
  }
  return banks_[battery].Select(profile_index);
}

const ChargeProfileBank& SdbChargeCircuit::bank(size_t battery) const {
  SDB_CHECK(battery < banks_.size());
  return banks_[battery];
}

double SdbChargeCircuit::SetpointErrorEnvelope(Current setpoint) const {
  double j = std::fabs(setpoint.value());
  double knee = config_.low_current_knee.value();
  if (j >= knee) {
    return config_.setpoint_error_high_current;
  }
  // The sense signal shrinks with the current: error grows toward zero amps.
  double t = knee > 0.0 ? j / knee : 1.0;
  return config_.setpoint_error_low_current -
         (config_.setpoint_error_low_current - config_.setpoint_error_high_current) * t;
}

double SdbChargeCircuit::EfficiencyVsTypical(Current charge_current, Voltage bus) const {
  double p = charge_current.value() * bus.value();
  double eff = regulator_.EfficiencyAt(Watts(p), bus, RegulatorMode::kBuck);
  return std::min(1.0, eff / config_.regulator.typical_efficiency);
}

ChargeTick SdbChargeCircuit::Step(BatteryPack& pack, const std::vector<double>& shares,
                                  Power supply, Duration dt) {
  SDB_TRACE_SPAN("hw", "circuit.charge_step");
  const size_t n = pack.size();
  SDB_CHECK(shares.size() == n);
  SDB_CHECK(n == banks_.size());
  ChargeTick tick;
  tick.supply_offered = supply;
  tick.currents.assign(n, Amps(0.0));
  tick.absorbed = Watts(0.0);
  tick.supply_used = Watts(0.0);
  tick.circuit_loss = Joules(0.0);
  tick.battery_loss = Joules(0.0);
  if (supply.value() <= 0.0) {
    return tick;
  }

  // Per-battery ceiling from the selected charge profile, expressed as
  // supply-side power (battery terminal power + regulator loss).
  std::vector<double> supply_cap(n, 0.0);
  std::vector<double> profile_j(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (pack.IsOpenCircuit(i)) {
      // Disconnected: accepts no charge, and spill-over routes around it.
      continue;
    }
    Cell& cell = pack.cell(i);
    double j = banks_[i].selected().CommandedCurrent(cell).value();
    if (j > 0.0) {
      // Apply the setpoint error (Fig. 6d).
      double err = SetpointErrorEnvelope(Amps(j));
      j *= 1.0 + rng_.Uniform(-err, err);
    }
    profile_j[i] = j;
    double p_batt = ChargePowerAtCurrent(cell, j);
    double bus = cell.OpenCircuitVoltage().value();
    supply_cap[i] =
        p_batt > 0.0 ? regulator_.InputFor(Watts(p_batt), Volts(bus)).value() : 0.0;
    if (shares[i] <= 0.0) {
      // A zero share is a deliberate exclusion (the safety mask programs 0
      // to quarantine a battery): offer spill-over no headroom here.
      supply_cap[i] = 0.0;
    }
  }

  // Proportional split with spill-over to batteries still below their cap.
  std::vector<double> alloc(n, 0.0);
  double sum_shares = 0.0;
  for (double s : shares) {
    SDB_CHECK(s >= -1e-12);
    sum_shares += std::max(0.0, s);
  }
  if (sum_shares <= 0.0) {
    return tick;
  }
  for (size_t i = 0; i < n; ++i) {
    alloc[i] = std::max(0.0, shares[i]) / sum_shares * supply.value();
  }
  for (int round = 0; round < 8; ++round) {
    double excess = 0.0;
    double headroom = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (alloc[i] > supply_cap[i]) {
        excess += alloc[i] - supply_cap[i];
        alloc[i] = supply_cap[i];
      } else {
        headroom += supply_cap[i] - alloc[i];
      }
    }
    if (excess <= 1e-12 || headroom <= 1e-12) {
      break;
    }
    double grant = std::min(1.0, excess / headroom);
    for (size_t i = 0; i < n; ++i) {
      if (alloc[i] < supply_cap[i]) {
        alloc[i] += (supply_cap[i] - alloc[i]) * grant;
      }
    }
  }

  // Convert supply-side power to battery-terminal power and step the cells.
  // Every cell's bus voltage and fixed-point inversion read only pre-step
  // state of that same cell, so all terminal powers can be computed before
  // any cell steps — which is what lets the batch path advance all lanes in
  // one kernel call, bit-identical to the scalar loop.
  std::vector<double> bus_v(n, 0.0);
  std::vector<double> p_batt(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (alloc[i] <= 0.0) {
      continue;
    }
    Cell& cell = pack.cell(i);
    double bus = cell.OpenCircuitVoltage().value();
    // Invert p + loss(p) = alloc by fixed-point iteration (loss is mild).
    double p = alloc[i] * 0.95;
    for (int k = 0; k < 4; ++k) {
      p = alloc[i] - regulator_.LossAt(Watts(p), Volts(bus)).value();
      p = std::max(0.0, p);
    }
    bus_v[i] = bus;
    p_batt[i] = p;
  }

  double absorbed_j = 0.0;
  double used_w = 0.0;
  double circuit_loss_j = 0.0;
  double battery_loss_j = 0.0;
  const bool batched = soa::BatchStepping();
  if (batched) {
    std::vector<soa::LaneRequest> lane_requests(n);
    for (size_t i = 0; i < n; ++i) {
      if (alloc[i] > 0.0) {
        lane_requests[i] = {soa::LaneOp::kChargePower, p_batt[i]};
      }
    }
    pack.StepLanes(lane_requests, dt);
  }
  for (size_t i = 0; i < n; ++i) {
    if (alloc[i] <= 0.0) {
      continue;
    }
    StepResult step = batched ? ToStepResult(pack.lane_result(i))
                              : pack.cell(i).StepChargePower(Watts(p_batt[i]), dt);
    double absorbed_w = -step.energy_at_terminals.value() / dt.value();
    if (absorbed_w <= 0.0) {
      continue;
    }
    tick.currents[i] = step.current;
    tick.any_charging = true;
    absorbed_j += absorbed_w * dt.value();
    double loss_w = regulator_.LossAt(Watts(absorbed_w), Volts(bus_v[i])).value();
    // The fixed-point inversion can overshoot the allocation by a hair;
    // never bill more than the supply share actually granted.
    double used_i = std::min(alloc[i], absorbed_w + loss_w);
    used_w += used_i;
    circuit_loss_j += (used_i - absorbed_w) * dt.value();
    battery_loss_j += step.energy_lost.value();
  }
  tick.absorbed = Watts(absorbed_j / dt.value());
  tick.supply_used = Watts(used_w);
  tick.circuit_loss = Joules(circuit_loss_j);
  tick.battery_loss = Joules(battery_loss_j);
  return tick;
}

TransferTick SdbChargeCircuit::StepTransfer(BatteryPack& pack, size_t from, size_t to,
                                            Power power, Duration dt) {
  SDB_TRACE_SPAN("hw", "circuit.transfer_step");
  SDB_CHECK(from < pack.size());
  SDB_CHECK(to < pack.size());
  SDB_CHECK(from != to);
  TransferTick tick;
  tick.moved = Joules(0.0);
  tick.drawn = Joules(0.0);
  tick.circuit_loss = Joules(0.0);
  tick.battery_loss = Joules(0.0);
  if (power.value() <= 0.0) {
    return tick;
  }
  Cell& src = pack.cell(from);
  Cell& dst = pack.cell(to);
  if (src.IsEmpty() || pack.IsOpenCircuit(from)) {
    tick.source_exhausted = true;
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, static_cast<int>(from),
                      "transfer-source-exhausted");
    return tick;
  }
  if (dst.IsFull() || pack.IsOpenCircuit(to)) {
    tick.destination_full = true;
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, static_cast<int>(to),
                      "transfer-destination-full");
    return tick;
  }

  // Both stages see the high-voltage transfer rail, not the cell voltage.
  double src_bus = config_.transfer_rail.value();
  double dst_bus = config_.transfer_rail.value();

  // Source draw capped by its instantaneous capability.
  double w_src = std::min(power.value(), src.MaxDischargePower().value() * 0.98);

  // Two regulator stages: source reverse-buck up to the rail, sink buck down.
  auto dst_power_for = [&](double w) {
    double p_bus = w - regulator_.LossAt(Watts(w), Volts(src_bus),
                                         RegulatorMode::kReverseBuck).value();
    p_bus = std::max(0.0, p_bus);
    double p_dst = p_bus - regulator_.LossAt(Watts(p_bus), Volts(dst_bus)).value();
    return std::max(0.0, p_dst);
  };
  double p_dst = dst_power_for(w_src);

  // Destination profile ceiling.
  double j_cmd = banks_[to].selected().CommandedCurrent(dst).value();
  double p_prof = ChargePowerAtCurrent(dst, j_cmd);
  if (p_prof <= 0.0) {
    tick.destination_full = true;
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, static_cast<int>(to),
                      "transfer-destination-full");
    return tick;
  }
  if (p_dst > p_prof) {
    // Scale the source draw back so the destination stays within profile.
    double scale = p_prof / p_dst;
    w_src *= scale;
    p_dst = dst_power_for(w_src);
  }
  if (w_src <= 0.0 || p_dst <= 0.0) {
    return tick;
  }

  StepResult out = src.StepDischargePower(Watts(w_src), dt);
  double drawn_w = out.energy_at_terminals.value() / dt.value();
  // If the source materially under-delivered (it is running dry), shrink
  // what reaches the destination and end the transfer.
  if (drawn_w < w_src * 0.99) {
    p_dst = dst_power_for(std::max(0.0, drawn_w));
    tick.source_exhausted = true;
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, static_cast<int>(from),
                      "transfer-source-exhausted", std::string(), drawn_w, w_src);
  }
  StepResult in = dst.StepChargePower(Watts(p_dst), dt);
  double moved_w = -in.energy_at_terminals.value() / dt.value();

  tick.drawn = Joules(drawn_w * dt.value());
  tick.moved = Joules(std::max(0.0, moved_w) * dt.value());
  tick.circuit_loss = Joules(std::max(0.0, (drawn_w - moved_w)) * dt.value());
  tick.battery_loss = out.energy_lost + in.energy_lost;
  if (dst.IsFull()) {
    tick.destination_full = true;
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, static_cast<int>(to),
                      "transfer-destination-full");
  }
  return tick;
}

ChargeCircuitState SdbChargeCircuit::SaveState() const {
  ChargeCircuitState state;
  state.rng = rng_.SaveState();
  state.selected_profiles.reserve(banks_.size());
  for (const ChargeProfileBank& bank : banks_) {
    state.selected_profiles.push_back(bank.selected_index());
  }
  return state;
}

Status SdbChargeCircuit::RestoreState(const ChargeCircuitState& state) {
  if (state.selected_profiles.size() != banks_.size()) {
    return InvalidArgumentError("charge circuit: snapshot has " +
                                std::to_string(state.selected_profiles.size()) +
                                " profile selections for " +
                                std::to_string(banks_.size()) + " batteries");
  }
  for (size_t i = 0; i < banks_.size(); ++i) {
    SDB_RETURN_IF_ERROR(
        banks_[i].Select(static_cast<size_t>(state.selected_profiles[i])));
  }
  rng_.RestoreState(state.rng);
  return Status::Ok();
}

}  // namespace sdb

// Switched-mode regulator loss models.
//
// The paper's discharge circuit is a modified switched-mode regulator that
// draws energy packets from multiple batteries (Fig. 4c, left); its charging
// circuit is a chain of synchronous *reversible* buck regulators (Fig. 4c,
// right). We do not simulate switching waveforms (the paper used LTSPICE for
// that); we model the loss surface those simulations and the prototype
// microbenchmarks exhibit:
//
//   P_loss(P_out) = P_quiescent + alpha * P_out + R_series * I_out^2
//
// which yields the Fig. 6(a) shape — ~1% loss at light load rising to
// ~1.6% at 10 W — and the Fig. 6(c) shape for charging efficiency.
#ifndef SRC_HW_REGULATOR_H_
#define SRC_HW_REGULATOR_H_

#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// Operating directions for a synchronous reversible buck regulator.
enum class RegulatorMode {
  kBuck,         // Input (high voltage) -> output (battery); used when charging.
  kReverseBuck,  // Battery -> input rail; used to charge one battery from another.
  kDisabled,
};

struct RegulatorConfig {
  Power quiescent = Watts(0.008);  // Controller + gate-drive overhead.
  double proportional = 0.006;     // Switching losses that scale with power.
  Resistance series_resistance = Ohms(0.012);  // FET + inductor resistance.
  // Reverse operation is slightly less efficient (body-diode conduction
  // intervals); multiplier on the total loss in reverse-buck mode.
  double reverse_penalty = 1.35;
  // Datasheet "typical" efficiency the Fig. 6(c) bench normalises against.
  double typical_efficiency = 0.96;
};

// A loss model for one regulator stage.
class RegulatorModel {
 public:
  explicit RegulatorModel(RegulatorConfig config);

  // Power lost moving `output` watts at `bus_voltage` in the given mode.
  Power LossAt(Power output, Voltage bus_voltage, RegulatorMode mode = RegulatorMode::kBuck) const;

  // Output / (output + loss).
  double EfficiencyAt(Power output, Voltage bus_voltage,
                      RegulatorMode mode = RegulatorMode::kBuck) const;

  // Input power needed to deliver `output` (inverts the loss model).
  Power InputFor(Power output, Voltage bus_voltage,
                 RegulatorMode mode = RegulatorMode::kBuck) const;

  const RegulatorConfig& config() const { return config_; }

 private:
  RegulatorConfig config_;
};

}  // namespace sdb

#endif  // SRC_HW_REGULATOR_H_

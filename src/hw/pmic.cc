#include "src/hw/pmic.h"

#include <algorithm>

#include "src/util/check.h"

namespace sdb {

namespace {
// Same charger-chip loss surface the SDB charge circuit uses, so baseline
// comparisons isolate policy, not component quality.
RegulatorConfig PmicChargerConfig() {
  return RegulatorConfig{.quiescent = Watts(0.008),
                         .proportional = 0.006,
                         .series_resistance = Ohms(0.15),
                         .reverse_penalty = 1.35,
                         .typical_efficiency = 0.97};
}
}  // namespace

TraditionalPmic::TraditionalPmic(BatteryPack pack)
    : pack_(std::move(pack)), charger_(PmicChargerConfig()) {
  SDB_CHECK(!pack_.empty());
  profiles_.reserve(pack_.size());
  for (size_t i = 0; i < pack_.size(); ++i) {
    profiles_.push_back(MakeStandardProfile(pack_.cell(i).params()));
  }
}

PmicTick TraditionalPmic::Step(Power load, Power external_supply, Duration dt) {
  PmicTick tick;
  tick.delivered = Watts(0.0);
  tick.battery_loss = Joules(0.0);
  tick.circuit_loss = Joules(0.0);

  double supply_w = std::max(0.0, external_supply.value());
  double load_w = std::max(0.0, load.value());
  double supply_to_load = std::min(supply_w, load_w);
  double load_from_pack = load_w - supply_to_load;
  double supply_to_charge = supply_w - supply_to_load;

  if (load_from_pack > 0.0) {
    PackStepResult result = pack_.StepParallelDischarge(Watts(load_from_pack), dt);
    tick.delivered = result.delivered + Watts(supply_to_load);
    tick.battery_loss += result.energy_lost;
    tick.shortfall = result.shortfall;
  } else {
    tick.delivered = Watts(supply_to_load);
  }

  if (supply_to_charge > 0.0) {
    // Fixed profile, cells charged independently; supply is first-come
    // first-served in cell order (how fixed-function chargers chain).
    double budget_w = supply_to_charge;
    for (size_t i = 0; i < pack_.size() && budget_w > 1e-12; ++i) {
      Cell& cell = pack_.cell(i);
      double j = profiles_[i].CommandedCurrent(cell).value();
      if (j <= 0.0) {
        continue;
      }
      double ocv = cell.OpenCircuitVoltage().value();
      double r0 = cell.InternalResistance().value();
      double p_want = (ocv + j * r0) * j;
      double p_in_want = charger_.InputFor(Watts(p_want), Volts(ocv)).value();
      double p_in = std::min(budget_w, p_in_want);
      double p_batt = p_in * (p_want / p_in_want);
      StepResult step = cell.StepChargePower(Watts(p_batt), dt);
      double absorbed_w = -step.energy_at_terminals.value() / dt.value();
      if (absorbed_w > 0.0) {
        tick.charging = true;
        double loss_w = charger_.LossAt(Watts(absorbed_w), Volts(ocv)).value();
        budget_w -= absorbed_w + loss_w;
        tick.circuit_loss += Joules(loss_w * dt.value());
        tick.battery_loss += step.energy_lost;
      }
    }
  }
  return tick;
}

AcpiBatteryInfo TraditionalPmic::Query() const {
  AcpiBatteryInfo info;
  double remaining_c = 0.0;
  double full_c = 0.0;
  double design_c = 0.0;
  double v_sum = 0.0;
  for (size_t i = 0; i < pack_.size(); ++i) {
    const Cell& cell = pack_.cell(i);
    remaining_c += cell.RemainingCharge().value();
    full_c += cell.EffectiveCapacity().value();
    design_c += cell.params().nominal_capacity.value();
    v_sum += cell.NoLoadVoltage().value();
    info.cycle_count = std::max(info.cycle_count, cell.aging().cycle_count());
  }
  info.soc = full_c > 0.0 ? remaining_c / full_c : 0.0;
  info.voltage = Volts(v_sum / static_cast<double>(pack_.size()));
  info.remaining_capacity = Coulombs(remaining_c);
  info.design_capacity = Coulombs(design_c);
  return info;
}

}  // namespace sdb

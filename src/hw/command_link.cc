#include "src/hw/command_link.h"

#include <cstring>

#include "src/hw/fault.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace sdb {

namespace {

// Span names must be string literals (the tracer stores pointers), so map
// each wire message type to its own literal.
const char* RoundtripSpanName(MessageType type) {
  switch (type) {
    case MessageType::kSetDischargeRatios:
      return "link.set_discharge_ratios";
    case MessageType::kSetChargeRatios:
      return "link.set_charge_ratios";
    case MessageType::kChargeOneFromAnother:
      return "link.charge_one_from_another";
    case MessageType::kQueryStatus:
      return "link.query_status";
    case MessageType::kSelectProfile:
      return "link.select_profile";
    case MessageType::kResync:
      return "link.resync";
    default:
      return "link.roundtrip";
  }
}

constexpr uint8_t kStartByte = 0xA5;
// Per-battery record size in a kStatusReport payload.
constexpr size_t kStatusRecordSize = 24;

void PutF32(std::vector<uint8_t>& out, float value) {
  uint8_t bytes[4];
  std::memcpy(bytes, &value, 4);
  out.insert(out.end(), bytes, bytes + 4);
}

float GetF32(const uint8_t* data) {
  float value;
  std::memcpy(&value, data, 4);
  return value;
}

uint8_t StatusToWireCode(const Status& status) {
  return status.ok() ? 0 : static_cast<uint8_t>(status.code());
}

Status WireCodeToStatus(uint8_t code) {
  if (code == 0) {
    return Status::Ok();
  }
  return Status(static_cast<StatusCode>(code), "remote error");
}

std::vector<double> DecodeRatios(const std::vector<uint8_t>& payload) {
  std::vector<double> ratios;
  for (size_t i = 0; i + 4 <= payload.size(); i += 4) {
    ratios.push_back(static_cast<double>(GetF32(payload.data() + i)));
  }
  return ratios;
}

std::vector<uint8_t> EncodeRatios(const std::vector<double>& ratios) {
  std::vector<uint8_t> payload;
  payload.reserve(ratios.size() * 4);
  for (double r : ratios) {
    PutF32(payload, static_cast<float>(r));
  }
  return payload;
}

std::vector<uint8_t> AckFrame(StatusCode code) {
  return EncodeFrame(Frame{MessageType::kAck, {static_cast<uint8_t>(code)}});
}

bool IsMutatingCommand(MessageType type) {
  switch (type) {
    case MessageType::kSetDischargeRatios:
    case MessageType::kSetChargeRatios:
    case MessageType::kChargeOneFromAnother:
    case MessageType::kSelectProfile:
      return true;
    default:
      return false;
  }
}

}  // namespace

uint16_t Crc16(const uint8_t* data, size_t size) {
  uint16_t crc = 0xFFFF;
  for (size_t i = 0; i < size; ++i) {
    crc ^= static_cast<uint16_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  SDB_CHECK(frame.payload.size() <= 255);
  std::vector<uint8_t> out;
  out.reserve(frame.payload.size() + 5);
  out.push_back(kStartByte);
  out.push_back(static_cast<uint8_t>(frame.payload.size()));
  out.push_back(static_cast<uint8_t>(frame.type));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  // CRC over length, type, payload.
  uint16_t crc = Crc16(out.data() + 1, out.size() - 1);
  out.push_back(static_cast<uint8_t>(crc >> 8));
  out.push_back(static_cast<uint8_t>(crc & 0xFF));
  return out;
}

std::optional<Frame> FrameDecoder::Feed(uint8_t byte) {
  switch (state_) {
    case State::kIdle:
      if (byte == kStartByte) {
        state_ = State::kLength;
      }
      return std::nullopt;
    case State::kLength:
      length_ = byte;
      payload_.clear();
      state_ = State::kType;
      return std::nullopt;
    case State::kType:
      type_ = byte;
      state_ = length_ > 0 ? State::kPayload : State::kCrcHigh;
      return std::nullopt;
    case State::kPayload:
      payload_.push_back(byte);
      if (payload_.size() == length_) {
        state_ = State::kCrcHigh;
      }
      return std::nullopt;
    case State::kCrcHigh:
      crc_ = static_cast<uint16_t>(byte) << 8;
      state_ = State::kCrcLow;
      return std::nullopt;
    case State::kCrcLow: {
      crc_ |= byte;
      state_ = State::kIdle;
      std::vector<uint8_t> covered;
      covered.push_back(length_);
      covered.push_back(type_);
      covered.insert(covered.end(), payload_.begin(), payload_.end());
      if (Crc16(covered.data(), covered.size()) != crc_) {
        ++crc_errors_;
        return std::nullopt;
      }
      ++frames_decoded_;
      return Frame{static_cast<MessageType>(type_), payload_};
    }
  }
  return std::nullopt;
}

void FrameDecoder::Feed(const std::vector<uint8_t>& bytes, std::vector<Frame>& out) {
  for (uint8_t b : bytes) {
    if (std::optional<Frame> frame = Feed(b)) {
      out.push_back(std::move(*frame));
    }
  }
}

CommandLinkServer::CommandLinkServer(SdbMicrocontroller* micro) : micro_(micro) {
  SDB_CHECK(micro_ != nullptr);
}

std::vector<uint8_t> CommandLinkServer::Receive(const std::vector<uint8_t>& bytes) {
  std::vector<Frame> frames;
  decoder_.Feed(bytes, frames);
  std::vector<uint8_t> response;
  for (const Frame& frame : frames) {
    std::vector<uint8_t> reply = Execute(frame);
    response.insert(response.end(), reply.begin(), reply.end());
  }
  return response;
}

std::vector<uint8_t> CommandLinkServer::Execute(const Frame& frame) {
  // A reboot since the last frame invalidates the replay cache: sequence
  // numbers from the previous boot must not suppress fresh commands.
  if (micro_->boot_count() != known_boot_) {
    known_boot_ = micro_->boot_count();
    have_last_ = false;
  }
  if (IsMutatingCommand(frame.type)) {
    return ExecuteCommand(frame);
  }
  switch (frame.type) {
    case MessageType::kQueryStatus: {
      if (micro_->in_reset()) {
        return AckFrame(StatusCode::kUnavailable);
      }
      std::vector<BatteryStatus> statuses = micro_->QueryBatteryStatus();
      Frame report{MessageType::kStatusReport, {}};
      for (const BatteryStatus& s : statuses) {
        PutF32(report.payload, static_cast<float>(s.soc));
        PutF32(report.payload, static_cast<float>(s.terminal_voltage.value()));
        PutF32(report.payload, static_cast<float>(s.cycle_count));
        PutF32(report.payload, static_cast<float>(s.full_capacity.value()));
        PutF32(report.payload, static_cast<float>(s.last_current.value()));
        PutF32(report.payload, static_cast<float>(s.temperature.value()));
      }
      return EncodeFrame(report);
    }
    case MessageType::kResync: {
      if (micro_->in_reset()) {
        return AckFrame(StatusCode::kUnavailable);
      }
      uint32_t boot = micro_->Resync();
      have_last_ = false;
      Frame ack{MessageType::kResyncAck, {}};
      ack.payload.push_back(static_cast<uint8_t>(boot & 0xFF));
      ack.payload.push_back(static_cast<uint8_t>((boot >> 8) & 0xFF));
      ack.payload.push_back(static_cast<uint8_t>((boot >> 16) & 0xFF));
      ack.payload.push_back(static_cast<uint8_t>((boot >> 24) & 0xFF));
      return EncodeFrame(ack);
    }
    default:
      return AckFrame(StatusCode::kInvalidArgument);
  }
}

std::vector<uint8_t> CommandLinkServer::ExecuteCommand(const Frame& frame) {
  if (frame.payload.size() < 2) {
    return AckFrame(StatusCode::kInvalidArgument);
  }
  const uint16_t seq =
      static_cast<uint16_t>(frame.payload[0] | (frame.payload[1] << 8));
  if (have_last_ && seq == last_seq_ && frame.type == last_type_ &&
      frame.payload == last_payload_) {
    // Idempotent replay: the command was already applied and the reply was
    // lost; answer from the cache without re-applying.
    ++replayed_commands_;
    return last_response_;
  }
  const std::vector<uint8_t> body(frame.payload.begin() + 2, frame.payload.end());
  Status status = Status::Ok();
  switch (frame.type) {
    case MessageType::kSetDischargeRatios:
      status = micro_->SetDischargeRatios(DecodeRatios(body));
      break;
    case MessageType::kSetChargeRatios:
      status = micro_->SetChargeRatios(DecodeRatios(body));
      break;
    case MessageType::kChargeOneFromAnother: {
      if (body.size() != 10) {
        status = InvalidArgumentError("bad transfer payload");
        break;
      }
      uint8_t from = body[0];
      uint8_t to = body[1];
      float power = GetF32(body.data() + 2);
      float duration = GetF32(body.data() + 6);
      status = micro_->ChargeOneFromAnother(from, to, Watts(power), Seconds(duration));
      break;
    }
    case MessageType::kSelectProfile: {
      if (body.size() != 2) {
        status = InvalidArgumentError("bad profile payload");
        break;
      }
      status = micro_->SelectChargeProfile(body[0], body[1]);
      break;
    }
    default:
      status = InvalidArgumentError("not a command");
      break;
  }
  std::vector<uint8_t> reply = EncodeFrame(Frame{MessageType::kAck, {StatusToWireCode(status)}});
  // Resync-required and in-reset rejections are not cached: after the
  // handshake the same sequence number must execute, not replay the refusal.
  if (status.code() != StatusCode::kFailedPrecondition &&
      status.code() != StatusCode::kUnavailable) {
    have_last_ = true;
    last_seq_ = seq;
    last_type_ = frame.type;
    last_payload_ = frame.payload;
    last_response_ = reply;
  }
  return reply;
}

CommandLinkClient::CommandLinkClient(Transport transport) : transport_(std::move(transport)) {
  SDB_CHECK(transport_ != nullptr);
}

StatusOr<Frame> CommandLinkClient::Roundtrip(const Frame& request) {
  SDB_TRACE_SPAN("hw", RoundtripSpanName(request.type));
  if (fault_ != nullptr && fault_->DropQuery()) {
    return UnavailableError("link timeout (injected)");
  }
  std::vector<uint8_t> response_bytes = transport_(EncodeFrame(request));
  if (fault_ != nullptr) {
    fault_->MaybeCorruptReply(response_bytes);
  }
  std::vector<Frame> frames;
  decoder_.Feed(response_bytes, frames);
  if (frames.empty()) {
    return UnavailableError("no response frame (link corruption?)");
  }
  return frames.front();
}

Status CommandLinkClient::RoundtripAck(const Frame& request) {
  StatusOr<Frame> response = Roundtrip(request);
  if (!response.ok()) {
    return response.status();
  }
  if (response->type != MessageType::kAck || response->payload.size() != 1) {
    return InternalError("malformed ack");
  }
  return WireCodeToStatus(response->payload[0]);
}

Status CommandLinkClient::SendCommand(Frame request) {
  const uint16_t seq = next_seq_;
  request.payload.insert(request.payload.begin(),
                         {static_cast<uint8_t>(seq & 0xFF),
                          static_cast<uint8_t>((seq >> 8) & 0xFF)});
  Status status = RoundtripAck(request);
  if (status.code() == StatusCode::kFailedPrecondition) {
    // The controller rebooted and refuses commands until the handshake
    // completes; resync and replay the refused command once.
    Status resync = Resync();
    if (!resync.ok()) {
      return resync;
    }
    status = RoundtripAck(request);
  }
  if (status.code() != StatusCode::kUnavailable) {
    // The server consumed this sequence number (applied or rejected the
    // command). On a transport failure the reply may have been lost after
    // the command applied, so the seq is reused and the retry hits the
    // server's idempotent-replay cache.
    ++next_seq_;
  }
  return status;
}

Status CommandLinkClient::Resync() {
  StatusOr<Frame> response = Roundtrip(Frame{MessageType::kResync, {}});
  if (!response.ok()) {
    return response.status();
  }
  if (response->type == MessageType::kAck && response->payload.size() == 1) {
    Status status = WireCodeToStatus(response->payload[0]);
    return status.ok() ? InternalError("malformed resync ack") : status;
  }
  if (response->type != MessageType::kResyncAck || response->payload.size() != 4) {
    return InternalError("malformed resync ack");
  }
  last_boot_count_ = static_cast<uint32_t>(response->payload[0]) |
                     (static_cast<uint32_t>(response->payload[1]) << 8) |
                     (static_cast<uint32_t>(response->payload[2]) << 16) |
                     (static_cast<uint32_t>(response->payload[3]) << 24);
  next_seq_ = 1;
  ++resyncs_;
  static obs::Counter* resync_counter =
      obs::MetricsRegistry::Global().GetCounter("sdb.hw.link_resyncs");
  resync_counter->Increment();
  return Status::Ok();
}

Status CommandLinkClient::SetDischargeRatios(const std::vector<double>& ratios) {
  return SendCommand(Frame{MessageType::kSetDischargeRatios, EncodeRatios(ratios)});
}

Status CommandLinkClient::SetChargeRatios(const std::vector<double>& ratios) {
  return SendCommand(Frame{MessageType::kSetChargeRatios, EncodeRatios(ratios)});
}

Status CommandLinkClient::ChargeOneFromAnother(uint8_t from, uint8_t to, Power power,
                                               Duration duration) {
  Frame request{MessageType::kChargeOneFromAnother, {from, to}};
  PutF32(request.payload, static_cast<float>(power.value()));
  PutF32(request.payload, static_cast<float>(duration.value()));
  return SendCommand(std::move(request));
}

Status CommandLinkClient::SelectChargeProfile(uint8_t battery, uint8_t profile) {
  return SendCommand(Frame{MessageType::kSelectProfile, {battery, profile}});
}

StatusOr<std::vector<BatteryStatus>> CommandLinkClient::QueryBatteryStatus() {
  StatusOr<Frame> response = Roundtrip(Frame{MessageType::kQueryStatus, {}});
  if (!response.ok()) {
    return response.status();
  }
  if (response->type == MessageType::kAck && response->payload.size() == 1) {
    // Queries fail with an error ack while the controller is held in reset.
    Status status = WireCodeToStatus(response->payload[0]);
    return status.ok() ? InternalError("malformed status report") : status;
  }
  if (response->type != MessageType::kStatusReport ||
      response->payload.size() % kStatusRecordSize != 0) {
    return InternalError("malformed status report");
  }
  std::vector<BatteryStatus> statuses;
  for (size_t offset = 0; offset < response->payload.size(); offset += kStatusRecordSize) {
    const uint8_t* record = response->payload.data() + offset;
    BatteryStatus s;
    s.soc = GetF32(record);
    s.terminal_voltage = Volts(GetF32(record + 4));
    s.cycle_count = GetF32(record + 8);
    s.full_capacity = Coulombs(GetF32(record + 12));
    s.last_current = Amps(GetF32(record + 16));
    s.temperature = Kelvin(GetF32(record + 20));
    statuses.push_back(s);
  }
  return statuses;
}

LinkServerState CommandLinkServer::SaveState() const {
  LinkServerState state;
  state.known_boot = known_boot_;
  state.have_last = have_last_;
  state.last_seq = last_seq_;
  state.last_type = static_cast<uint8_t>(last_type_);
  state.last_payload = last_payload_;
  state.last_response = last_response_;
  state.replayed_commands = replayed_commands_;
  return state;
}

void CommandLinkServer::RestoreState(const LinkServerState& state) {
  known_boot_ = state.known_boot;
  have_last_ = state.have_last;
  last_seq_ = state.last_seq;
  last_type_ = static_cast<MessageType>(state.last_type);
  last_payload_ = state.last_payload;
  last_response_ = state.last_response;
  replayed_commands_ = state.replayed_commands;
}

LinkClientState CommandLinkClient::SaveState() const {
  LinkClientState state;
  state.next_seq = next_seq_;
  state.last_boot_count = last_boot_count_;
  state.resyncs = resyncs_;
  return state;
}

void CommandLinkClient::RestoreState(const LinkClientState& state) {
  next_seq_ = state.next_seq;
  last_boot_count_ = state.last_boot_count;
  resyncs_ = state.resyncs;
}

}  // namespace sdb

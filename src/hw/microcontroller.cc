#include "src/hw/microcontroller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

std::vector<const BatteryParams*> CollectParams(const BatteryPack& pack) {
  std::vector<const BatteryParams*> params;
  params.reserve(pack.size());
  for (size_t i = 0; i < pack.size(); ++i) {
    params.push_back(&pack.cell(i).params());
  }
  return params;
}

}  // namespace

SdbMicrocontroller::SdbMicrocontroller(BatteryPack pack, DischargeCircuitConfig discharge_config,
                                       ChargeCircuitConfig charge_config,
                                       FuelGaugeConfig gauge_config, uint64_t seed)
    : pack_(std::move(pack)),
      discharge_circuit_(discharge_config, seed ^ 0x9E3779B97F4A7C15ULL),
      charge_circuit_(charge_config, CollectParams(pack_), seed ^ 0xD1B54A32D192ED03ULL) {
  SDB_CHECK(!pack_.empty());
  const size_t n = pack_.size();
  gauges_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    gauges_.emplace_back(gauge_config, seed + 17 * (i + 1), pack_.cell(i).soc());
  }
  // Default: split evenly, the closest analogue of a dumb parallel pack.
  charge_ratios_.assign(n, 1.0 / static_cast<double>(n));
  discharge_ratios_.assign(n, 1.0 / static_cast<double>(n));
}

Status SdbMicrocontroller::ValidateRatios(const std::vector<double>& ratios) const {
  if (ratios.size() != pack_.size()) {
    return InvalidArgumentError("ratio vector arity must match battery count");
  }
  double sum = 0.0;
  for (double r : ratios) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      return InvalidArgumentError("ratios must be finite and non-negative");
    }
    sum += r;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    return InvalidArgumentError("ratios must sum to 1");
  }
  return Status::Ok();
}

Status SdbMicrocontroller::CheckCommandGate() const {
  if (in_reset_) {
    return UnavailableError("microcontroller held in reset (brownout)");
  }
  if (awaiting_resync_) {
    return FailedPreconditionError("microcontroller rebooted: resync required");
  }
  return Status::Ok();
}

void SdbMicrocontroller::Reboot() {
  transfer_.reset();
  const size_t n = pack_.size();
  charge_ratios_.assign(n, 1.0 / static_cast<double>(n));
  discharge_ratios_.assign(n, 1.0 / static_cast<double>(n));
  awaiting_resync_ = true;
  ++boot_count_;
  static obs::Counter* reboots =
      obs::MetricsRegistry::Global().GetCounter("sdb.hw.micro_reboots");
  reboots->Increment();
  SDB_JOURNAL_EVENT(obs::EventKind::kMicroReboot, -1.0, -1, "watchdog-reboot",
                    std::string(), static_cast<double>(boot_count_));
}

void SdbMicrocontroller::RequireResync() {
  awaiting_resync_ = true;
  ++boot_count_;
  SDB_JOURNAL_EVENT(obs::EventKind::kMicroReboot, -1.0, -1, "warm-restart",
                    std::string(), static_cast<double>(boot_count_));
}

uint32_t SdbMicrocontroller::Resync() {
  awaiting_resync_ = false;
  SDB_JOURNAL_EVENT(obs::EventKind::kResync, -1.0, -1, "micro-resync", std::string(),
                    static_cast<double>(boot_count_));
  return boot_count_;
}

Status SdbMicrocontroller::SetChargeRatios(const std::vector<double>& ratios) {
  SDB_RETURN_IF_ERROR(CheckCommandGate());
  SDB_RETURN_IF_ERROR(ValidateRatios(ratios));
  charge_ratios_ = ratios;
  return Status::Ok();
}

Status SdbMicrocontroller::SetDischargeRatios(const std::vector<double>& ratios) {
  SDB_RETURN_IF_ERROR(CheckCommandGate());
  SDB_RETURN_IF_ERROR(ValidateRatios(ratios));
  discharge_ratios_ = ratios;
  return Status::Ok();
}

Status SdbMicrocontroller::ChargeOneFromAnother(size_t from, size_t to, Power power,
                                                Duration duration) {
  SDB_RETURN_IF_ERROR(CheckCommandGate());
  if (from >= pack_.size() || to >= pack_.size()) {
    return OutOfRangeError("battery index out of range");
  }
  if (from == to) {
    return InvalidArgumentError("cannot charge a battery from itself");
  }
  if (power.value() <= 0.0 || duration.value() <= 0.0) {
    return InvalidArgumentError("transfer power and duration must be positive");
  }
  transfer_ = ActiveTransfer{from, to, power, duration};
  return Status::Ok();
}

std::vector<BatteryStatus> SdbMicrocontroller::QueryBatteryStatus() const {
  std::vector<BatteryStatus> statuses;
  statuses.reserve(pack_.size());
  for (size_t i = 0; i < pack_.size(); ++i) {
    const Cell& cell = pack_.cell(i);
    BatteryStatus s;
    s.soc = gauges_[i].EstimatedSoc();
    s.terminal_voltage = gauges_[i].MeasuredVoltage();
    s.last_current = gauges_[i].MeasuredCurrent();
    s.cycle_count = cell.aging().cycle_count();
    s.full_capacity = cell.EffectiveCapacity();
    s.temperature = cell.thermal().temperature();
    if (fault_.has_value()) {
      if (std::optional<Temperature> floor = fault_->ReportedTemperatureFloor(i)) {
        s.temperature = Max(s.temperature, *floor);
      }
    }
    statuses.push_back(s);
  }
  return statuses;
}

Status SdbMicrocontroller::SelectChargeProfile(size_t battery, size_t profile_index) {
  SDB_RETURN_IF_ERROR(CheckCommandGate());
  return charge_circuit_.SelectProfile(battery, profile_index);
}

void SdbMicrocontroller::InstallFaults(FaultPlan plan) {
  fault_.emplace(std::move(plan));
  for (size_t i = 0; i < gauges_.size(); ++i) {
    gauges_[i].AttachFaultInjector(&*fault_, i);
  }
}

void SdbMicrocontroller::CancelTransfer() { transfer_.reset(); }

std::vector<double> SdbMicrocontroller::MaskFaulted(const std::vector<double>& ratios) const {
  bool safety_active = safety_ != nullptr && safety_->AnyUnhealthy();
  if (!safety_active && !pack_.AnyOpenCircuit()) {
    return ratios;
  }
  std::vector<double> masked = ratios;
  double sum = 0.0;
  for (size_t i = 0; i < masked.size(); ++i) {
    if ((safety_active && safety_->IsFaulted(i)) || pack_.IsOpenCircuit(i)) {
      masked[i] = 0.0;
    }
    sum += masked[i];
  }
  if (sum > 0.0) {
    for (auto& r : masked) {
      r /= sum;
    }
  }
  if (!safety_active) {
    return masked;
  }
  // Probation cap: a probing battery carries at most the configured share;
  // the excess spills onto the unconstrained batteries pro rata.
  const double cap = safety_->probe_share_cap();
  double excess = 0.0;
  double unclamped = 0.0;
  for (size_t i = 0; i < masked.size(); ++i) {
    if (safety_->IsProbing(i) && masked[i] > cap) {
      excess += masked[i] - cap;
      masked[i] = cap;
    } else if (!safety_->IsProbing(i)) {
      unclamped += masked[i];
    }
  }
  if (excess > 0.0 && unclamped > 0.0) {
    for (size_t i = 0; i < masked.size(); ++i) {
      if (!safety_->IsProbing(i)) {
        masked[i] += excess * (masked[i] / unclamped);
      }
    }
  }
  return masked;
}

MicroTick SdbMicrocontroller::Step(Power load, Power external_supply, Duration dt) {
  SDB_CHECK(dt.value() > 0.0);
  MicroTick tick;
  tick.dt = dt;
  const size_t n = pack_.size();

  // Watchdog: a crash or brownout window starting this tick reboots the
  // controller before anything else happens. Sync the pack's open-circuit
  // flags with the fault plan before any electrical step sees them.
  if (fault_.has_value()) {
    if (fault_->MicroRebootEdge()) {
      Reboot();
    }
    bool was_in_reset = in_reset_;
    in_reset_ = fault_->MicroHeldInReset();
    if (in_reset_ && !was_in_reset) {
      SDB_JOURNAL_EVENT(obs::EventKind::kMicroBrownout, -1.0, -1, "held-in-reset");
    }
    for (size_t i = 0; i < n; ++i) {
      pack_.SetOpenCircuit(i, fault_->OpenCircuit(i));
    }
  }

  // External supply covers the load first; the surplus charges the pack.
  double supply_w = std::max(0.0, external_supply.value());
  double load_w = std::max(0.0, load.value());
  double supply_to_load = std::min(supply_w, load_w);
  double load_from_pack = load_w - supply_to_load;
  double supply_to_charge = supply_w - supply_to_load;

  if (load_from_pack > 0.0) {
    std::vector<double> d_ratios = MaskFaulted(discharge_ratios_);
    // A collapsed regulator wastes a fraction of everything it converts:
    // the batteries must source load/eff, and the surplus is circuit loss.
    double eff = fault_.has_value() ? fault_->DischargeEfficiencyFactor() : 1.0;
    tick.discharge =
        discharge_circuit_.Step(pack_, d_ratios, Watts(load_from_pack / eff), dt);
    if (eff < 1.0) {
      double gross_w = tick.discharge.delivered.value();
      double net_w = gross_w * eff;
      tick.discharge.circuit_loss += Joules((gross_w - net_w) * dt.value());
      tick.discharge.delivered = Watts(net_w);
      tick.discharge.shortfall = net_w < load_from_pack * 0.995;
    }
    // Power the external source fed straight to the load still counts as
    // delivered to the load.
    tick.discharge.delivered += Watts(supply_to_load);
    tick.discharge.requested = load;
  } else {
    tick.discharge.requested = load;
    tick.discharge.delivered = Watts(supply_to_load);
    tick.discharge.currents.assign(n, Amps(0.0));
    tick.discharge.battery_power.assign(n, Watts(0.0));
    tick.discharge.realised_shares.assign(n, 0.0);
    tick.discharge.circuit_loss = Joules(0.0);
    tick.discharge.battery_loss = Joules(0.0);
  }

  if (supply_to_charge > 0.0) {
    std::vector<double> c_ratios = MaskFaulted(charge_ratios_);
    tick.charge = charge_circuit_.Step(pack_, c_ratios, Watts(supply_to_charge), dt);
  } else {
    tick.charge.supply_offered = Watts(0.0);
    tick.charge.absorbed = Watts(0.0);
    tick.charge.supply_used = Watts(0.0);
    tick.charge.circuit_loss = Joules(0.0);
    tick.charge.battery_loss = Joules(0.0);
    tick.charge.currents.assign(n, Amps(0.0));
  }

  // An open-circuit end idles an active transfer (without cancelling it):
  // the schedule resumes if the dropout clears before the window ends.
  bool transfer_blocked =
      transfer_.has_value() &&
      (pack_.IsOpenCircuit(transfer_->from) || pack_.IsOpenCircuit(transfer_->to));
  if (transfer_.has_value() && !transfer_blocked) {
    tick.transfer =
        charge_circuit_.StepTransfer(pack_, transfer_->from, transfer_->to, transfer_->power, dt);
    tick.transfer_active = true;
    transfer_->remaining -= dt;
    if (transfer_->remaining.value() <= 0.0 || tick.transfer.source_exhausted ||
        tick.transfer.destination_full) {
      transfer_.reset();
    }
  } else {
    tick.transfer = TransferTick{Joules(0.0), Joules(0.0), Joules(0.0), Joules(0.0), false, false};
  }

  // Protection: inspect every battery's realised electrical state.
  if (safety_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const Cell& cell = pack_.cell(i);
      double i_net = 0.0;
      if (i < tick.discharge.currents.size()) {
        i_net += tick.discharge.currents[i].value();
      }
      if (i < tick.charge.currents.size()) {
        i_net += tick.charge.currents[i].value();
      }
      StepResult observed;
      observed.current = Amps(i_net);
      observed.terminal_voltage =
          Volts(cell.NoLoadVoltage().value() - i_net * cell.InternalResistance().value());
      safety_->Inspect(i, cell, observed);
    }
    // Run the recovery lifecycle timers (no-op for latch-only supervisors).
    safety_->Advance(dt);
  }

  // Feed the fuel gauges with the net per-battery currents.
  for (size_t i = 0; i < n; ++i) {
    Cell& cell = pack_.cell(i);
    double i_net = 0.0;
    if (i < tick.discharge.currents.size()) {
      i_net += tick.discharge.currents[i].value();
    }
    if (i < tick.charge.currents.size()) {
      i_net += tick.charge.currents[i].value();
    }
    // Transfer-leg currents are already reflected in cell state; the gauges
    // re-anchor at full/empty below, like production coulomb counters.
    Voltage v = cell.NoLoadVoltage();
    gauges_[i].Observe(Amps(i_net), v, cell.EffectiveCapacity(), dt);
    if (cell.IsFull()) {
      gauges_[i].AnchorSoc(1.0);
    } else if (cell.IsEmpty()) {
      gauges_[i].AnchorSoc(0.0);
    }
  }

  // Advance the fault clock last so a runtime Update() between Steps sees
  // the injector at exactly the simulated time it has reached.
  if (fault_.has_value()) {
    fault_->Advance(dt);
  }
  return tick;
}

MicroState SdbMicrocontroller::SaveState() const {
  MicroState state;
  const size_t n = pack_.size();
  state.lanes.reserve(n);
  state.open_circuit.reserve(n);
  state.gauges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    state.lanes.push_back(pack_.cell(i).ExportLaneState());
    state.open_circuit.push_back(pack_.IsOpenCircuit(i));
    state.gauges.push_back(gauges_[i].SaveState());
  }
  state.discharge_circuit = discharge_circuit_.SaveState();
  state.charge_circuit = charge_circuit_.SaveState();
  state.charge_ratios = charge_ratios_;
  state.discharge_ratios = discharge_ratios_;
  if (transfer_.has_value()) {
    state.transfer_active = true;
    state.transfer_from = transfer_->from;
    state.transfer_to = transfer_->to;
    state.transfer_power = transfer_->power;
    state.transfer_remaining = transfer_->remaining;
  }
  state.awaiting_resync = awaiting_resync_;
  state.in_reset = in_reset_;
  state.boot_count = boot_count_;
  if (fault_.has_value()) {
    state.has_fault_state = true;
    state.fault = fault_->SaveState();
  }
  return state;
}

Status SdbMicrocontroller::RestoreState(const MicroState& state) {
  const size_t n = pack_.size();
  if (state.lanes.size() != n || state.open_circuit.size() != n ||
      state.gauges.size() != n || state.charge_ratios.size() != n ||
      state.discharge_ratios.size() != n) {
    return InvalidArgumentError("microcontroller: snapshot arity does not match pack size " +
                                std::to_string(n));
  }
  if (state.has_fault_state != fault_.has_value()) {
    return InvalidArgumentError(
        "microcontroller: snapshot fault-injector presence does not match installed plan");
  }
  if (state.transfer_active &&
      (state.transfer_from >= n || state.transfer_to >= n ||
       state.transfer_from == state.transfer_to)) {
    return InvalidArgumentError("microcontroller: snapshot transfer endpoints invalid");
  }
  // Validate the fallible restores before mutating anything else, so a
  // rejected snapshot leaves the controller unchanged.
  SDB_RETURN_IF_ERROR(charge_circuit_.RestoreState(state.charge_circuit));
  if (fault_.has_value()) {
    SDB_RETURN_IF_ERROR(fault_->RestoreState(state.fault));
  }
  for (size_t i = 0; i < n; ++i) {
    pack_.cell(i).ImportLaneState(state.lanes[i]);
    pack_.SetOpenCircuit(i, state.open_circuit[i]);
    gauges_[i].RestoreState(state.gauges[i]);
  }
  discharge_circuit_.RestoreState(state.discharge_circuit);
  charge_ratios_ = state.charge_ratios;
  discharge_ratios_ = state.discharge_ratios;
  if (state.transfer_active) {
    transfer_ = ActiveTransfer{static_cast<size_t>(state.transfer_from),
                               static_cast<size_t>(state.transfer_to), state.transfer_power,
                               state.transfer_remaining};
  } else {
    transfer_.reset();
  }
  awaiting_resync_ = state.awaiting_resync;
  in_reset_ = state.in_reset;
  boot_count_ = state.boot_count;
  return Status::Ok();
}

SdbMicrocontroller MakeDefaultMicrocontroller(std::vector<Cell> cells, uint64_t seed) {
  BatteryPack pack;
  for (auto& cell : cells) {
    pack.AddCell(std::move(cell));
  }
  return SdbMicrocontroller(std::move(pack), DischargeCircuitConfig{}, ChargeCircuitConfig{},
                            FuelGaugeConfig{}, seed);
}

}  // namespace sdb

// The SDB discharge circuit (paper §3.2.1, Fig. 4c left): a switched-mode
// regulator restructured to draw energy packets from N batteries in
// weighted round-robin, so a software-set ratio vector controls what
// fraction of the load each battery supplies.
//
// Modeled behaviours, calibrated to the prototype microbenchmarks:
//   * conversion loss ~1% at light load rising to ~1.6% at 10 W (Fig. 6a);
//   * proportion-setting error, worst (~0.55%) at extreme settings and
//     ~0.1% mid-range (Fig. 6b);
//   * spill-over: when a battery cannot meet its share (empty, or at its
//     power limit), the remainder is redistributed across the others.
#ifndef SRC_HW_DISCHARGE_CIRCUIT_H_
#define SRC_HW_DISCHARGE_CIRCUIT_H_

#include <vector>

#include "src/chem/pack.h"
#include "src/hw/regulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace sdb {

struct DischargeCircuitConfig {
  // Loss terms calibrated to Fig. 6(a): ~1.0% loss at 0.1-2 W, ~1.6% at 10 W.
  RegulatorConfig regulator{.quiescent = Watts(2.0e-5),
                            .proportional = 0.0097,
                            .series_resistance = Ohms(0.0086),
                            .reverse_penalty = 1.35,
                            .typical_efficiency = 0.96};
  // Proportion error envelope (fraction of the setting): worst at the edges
  // of the [0,1] setting range, best mid-range (Fig. 6b).
  double share_error_mid = 0.0010;
  double share_error_edge = 0.0040;
  // Safety margin kept below a battery's instantaneous max power.
  double power_margin = 0.98;
};

// Mutable circuit state for checkpoint/restore: the proportion-error noise
// stream plus the shortfall journal latch.
struct DischargeCircuitState {
  RngState rng;
  bool shortfall_latched = false;
};

struct DischargeTick {
  Power requested;                  // Load power asked for.
  Power delivered;                  // Power that reached the load.
  Energy circuit_loss;              // Dissipated in the switching circuitry.
  Energy battery_loss;              // Resistive loss inside the batteries.
  std::vector<Current> currents;    // Per battery.
  std::vector<Power> battery_power; // Terminal power drawn per battery.
  std::vector<double> realised_shares;  // After proportion error + spill.
  bool shortfall = false;
};

class SdbDischargeCircuit {
 public:
  SdbDischargeCircuit(DischargeCircuitConfig config, uint64_t seed);

  // Draws `load` from `pack` split by `shares` (non-negative, summing to 1
  // over the pack size) for one tick. Shares of unavailable batteries spill
  // to the rest; if the whole pack cannot meet the load, delivers what it
  // can and flags a shortfall.
  DischargeTick Step(BatteryPack& pack, const std::vector<double>& shares, Power load,
                     Duration dt);

  // The proportion error applied to a given setting (deterministic part of
  // the Fig. 6b envelope); exposed for the microbenchmark.
  double ShareErrorEnvelope(double setting) const;

  // Circuit loss moving `load` at the pack bus voltage (Fig. 6a).
  Power CircuitLossAt(Power load, Voltage bus) const;

  const DischargeCircuitConfig& config() const { return config_; }

  DischargeCircuitState SaveState() const;
  void RestoreState(const DischargeCircuitState& state);

 private:
  // Terminal power battery i can deliver in this tick.
  Power AvailablePower(const Cell& cell, Duration dt) const;

  // Journals the shortfall rising edge (kCircuitEvent) and tracks the latch
  // so a sustained shortfall produces one event, not one per tick.
  void JournalShortfallEdge(bool shortfall, Power load, Power delivered);

  DischargeCircuitConfig config_;
  RegulatorModel regulator_;
  Rng rng_;
  bool shortfall_latched_ = false;
};

}  // namespace sdb

#endif  // SRC_HW_DISCHARGE_CIRCUIT_H_

// Deterministic fault injection across the hw/os boundary.
//
// The paper's runtime lives between a flaky physical world (coulomb
// counters that drift, a serial command link, per-battery protection
// cutoffs) and OS policies that assume QueryBatteryStatus() always
// answers. This module schedules that flakiness explicitly: a FaultPlan is
// a list of timed fault events, and a FaultInjector evaluates the plan
// against simulated time so the hw-layer components (command link, fuel
// gauges, circuits, pack) can consult it from small hooks.
//
// All randomness draws from one explicitly-seeded util::Rng stream owned by
// the injector, so a faulted run is bit-for-bit reproducible and shards
// cleanly through the Monte-Carlo engine. With no injector attached (or an
// empty plan) every hook is a no-op that consumes no random draws, so
// healthy runs are unchanged down to the bit.
#ifndef SRC_HW_FAULT_H_
#define SRC_HW_FAULT_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// The fault taxonomy (DESIGN.md §7). Link faults apply to the whole wire;
// the rest target one battery (or all, when the event's battery is -1).
enum class FaultClass {
  kLinkTimeout,        // Command-link roundtrips fail (probability per call).
  kLinkCorruptReply,   // Response bytes take a random bit flip (CRC drops it).
  kGaugeBias,          // Reported SoC offset by `magnitude` (clamped to [0,1]).
  kGaugeNoise,         // Current-sense noise sigma multiplied by `magnitude`.
  kGaugeStuck,         // Gauge readings and integrator freeze.
  kRegulatorCollapse,  // Discharge efficiency multiplied by `magnitude` < 1.
  kOpenCircuit,        // Battery terminal disconnects (no charge/discharge).
  kThermalTrip,        // Pack thermistor reports at least `magnitude` kelvin.
  kMicroCrash,         // Controller watchdog-reboots once at window start.
  kMicroBrownout,      // Controller held in reset for the whole window.
};

std::string_view FaultClassName(FaultClass kind);

// One scheduled fault, active over [start, end) of the injector's clock.
struct FaultEvent {
  FaultClass kind = FaultClass::kLinkTimeout;
  Duration start;
  Duration end;
  // Target battery; -1 means every battery (and is the only sensible value
  // for the link-wide faults).
  int battery = -1;
  // Kind-specific strength: SoC offset, noise multiplier, efficiency
  // factor, or reported temperature in kelvin.
  double magnitude = 0.0;
  // Per-roundtrip chance for link faults (1 = every call in the window).
  double probability = 1.0;
};

// A schedule of fault events plus the seed for the injector's RNG stream.
struct FaultPlan {
  std::vector<FaultEvent> events;
  uint64_t seed = 0;

  bool empty() const { return events.empty(); }
  FaultPlan& Add(FaultEvent event) {
    events.push_back(event);
    return *this;
  }
};

// Mutable injector runtime state for checkpoint/restore. The plan itself is
// config (reinstalled from the scenario on restart); this carries only what
// evolves while the plan plays.
struct FaultInjectorState {
  RngState rng;
  Duration now;
  uint64_t dropped_queries = 0;
  uint64_t corrupted_replies = 0;
  uint64_t micro_reboots = 0;
  std::vector<bool> reboot_fired;
};

// Evaluates a FaultPlan against simulated time. The microcontroller owns
// one injector and advances its clock once per hardware tick; the hooks
// below are consulted by the link client, gauges and circuits.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Advances the injector clock (call once per hardware tick).
  void Advance(Duration dt);
  Duration now() const { return now_; }

  // --- Command link ---------------------------------------------------------

  // True when an active kLinkTimeout window decides this roundtrip dies.
  // Draws from the RNG only while a window is active.
  bool DropQuery();

  // Flips one random bit of `bytes` while a kLinkCorruptReply window is
  // active (and its probability fires). The frame CRC then rejects the
  // reply, so corruption surfaces as a link error, not as garbage data.
  void MaybeCorruptReply(std::vector<uint8_t>& bytes);

  // --- Fuel gauges ----------------------------------------------------------

  double GaugeSocBias(size_t battery) const;
  double GaugeNoiseScale(size_t battery) const;
  bool GaugeStuck(size_t battery) const;

  // --- Circuits and pack ----------------------------------------------------

  // Multiplier (0, 1] on the discharge path's conversion efficiency.
  double DischargeEfficiencyFactor() const;
  bool OpenCircuit(size_t battery) const;

  // Lowest temperature the pack thermistor will report for `battery` while
  // a kThermalTrip window is active.
  std::optional<Temperature> ReportedTemperatureFloor(size_t battery) const;

  // --- Microcontroller ------------------------------------------------------

  // True exactly once per crash/brownout event, on the first call at or
  // after the event's start: the microcontroller polls this every Step and
  // reboots when it fires. Stateful but RNG-free, so plans without these
  // kinds stay bit-identical.
  bool MicroRebootEdge();

  // True while a kMicroBrownout window is active: the controller is held in
  // reset and refuses every command until the window ends.
  bool MicroHeldInReset() const;

  // --- Counters (for tests and the sdbsim faults report) --------------------

  uint64_t dropped_queries() const { return dropped_queries_; }
  uint64_t corrupted_replies() const { return corrupted_replies_; }
  uint64_t micro_reboots() const { return micro_reboots_; }

  // Checkpoint/restore of the runtime state (the plan is config). Restore
  // rejects a fired-flag vector sized for a different plan.
  FaultInjectorState SaveState() const;
  Status RestoreState(const FaultInjectorState& state);

 private:
  // First active event of `kind` matching `battery` (events targeting -1
  // match every battery), or nullptr.
  const FaultEvent* Active(FaultClass kind, int battery) const;

  FaultPlan plan_;
  Rng rng_;
  Duration now_;
  uint64_t dropped_queries_ = 0;
  uint64_t corrupted_replies_ = 0;
  uint64_t micro_reboots_ = 0;
  // One fired flag per plan event, so each crash/brownout reboots once.
  std::vector<bool> reboot_fired_;
};

}  // namespace sdb

#endif  // SRC_HW_FAULT_H_

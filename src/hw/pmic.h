// Traditional power-management IC baseline (paper §2.2, Fig. 2): the
// battery pack is a black box behind a fixed charging profile and a
// query-only ACPI-style interface. No ratio control, no per-cell policies —
// this is what SDB replaces, and what the application benches compare
// against.
#ifndef SRC_HW_PMIC_H_
#define SRC_HW_PMIC_H_

#include <vector>

#include "src/chem/pack.h"
#include "src/hw/charge_profile.h"
#include "src/hw/regulator.h"
#include "src/util/units.h"

namespace sdb {

// The coarse aggregate state ACPI exposes (remaining capacity, voltage,
// cycle count of the pack as a whole).
struct AcpiBatteryInfo {
  double soc = 0.0;               // Pack-level state of charge.
  Voltage voltage;                // Pack terminal voltage (no load).
  Charge remaining_capacity;
  Charge design_capacity;
  double cycle_count = 0.0;       // Max across cells (what vendors report).
};

struct PmicTick {
  Power delivered;
  Energy battery_loss;
  Energy circuit_loss;
  bool shortfall = false;
  bool charging = false;
};

class TraditionalPmic {
 public:
  // The PMIC treats the cells as one parallel pack with a fixed standard
  // charge profile per cell.
  explicit TraditionalPmic(BatteryPack pack);

  // One tick: supply feeds load first, surplus charges the pack through the
  // fixed profile; any remaining load discharges the parallel chain.
  PmicTick Step(Power load, Power external_supply, Duration dt);

  // The only OS-visible interface a traditional design offers.
  AcpiBatteryInfo Query() const;

  const BatteryPack& pack() const { return pack_; }
  BatteryPack& mutable_pack() { return pack_; }

 private:
  BatteryPack pack_;
  std::vector<ChargeProfile> profiles_;
  RegulatorModel charger_;
};

}  // namespace sdb

#endif  // SRC_HW_PMIC_H_

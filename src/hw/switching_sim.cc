#include "src/hw/switching_sim.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

StatusOr<SwitchingSimResult> RunSwitchingSim(const std::vector<SwitchingSource>& sources,
                                             const std::vector<double>& shares,
                                             Resistance load_resistance, Duration duration,
                                             const SwitchingSimConfig& config) {
  const size_t n = sources.size();
  if (n == 0) {
    return InvalidArgumentError("switching sim needs at least one source");
  }
  if (shares.size() != n) {
    return InvalidArgumentError("share vector arity must match source count");
  }
  double share_sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) {
      return InvalidArgumentError("shares must be non-negative");
    }
    share_sum += s;
  }
  if (std::fabs(share_sum - 1.0) > 1e-6) {
    return InvalidArgumentError("shares must sum to 1");
  }
  for (const SwitchingSource& src : sources) {
    if (src.emf.value() <= config.output_setpoint.value()) {
      return InvalidArgumentError("buck topology needs EMF above the output setpoint");
    }
    if (src.series_resistance.value() < 0.0) {
      return InvalidArgumentError("negative source resistance");
    }
  }
  if (load_resistance.value() <= 0.0 || duration.value() <= 0.0) {
    return InvalidArgumentError("load resistance and duration must be positive");
  }
  if (config.switching_frequency.value() <= 0.0 || config.substeps_per_period < 8) {
    return InvalidArgumentError("invalid switching configuration");
  }

  // Numeric-kernel entry: unwrap the typed configuration once; the tight
  // waveform loop below runs on raw doubles.
  const double t_period = 1.0 / config.switching_frequency.value();
  const double dt = t_period / config.substeps_per_period;
  const double v_ref = config.output_setpoint.value();
  const double r_load = load_resistance.value();
  const double r_on = config.switch_on_resistance.value();
  const double inductance = config.inductance.value();
  const double capacitance = config.capacitance.value();
  const int periods = static_cast<int>(duration.value() / t_period);
  SDB_CHECK(periods > 1);

  // Simulation state.
  double i_l = 0.0;      // Inductor current.
  double v_c = 0.0;      // Output (capacitor) voltage.
  double integral = 0.0; // PI integral term.
  double duty_carry = 0.0;  // Sigma-delta remainder for on-time quantisation.
  std::vector<double> credit(n, 0.0);  // Weighted round-robin deficit counters.
  std::vector<double> per_source_energy(n, 0.0);

  SwitchingSimResult result;
  result.commanded_shares = shares;
  double settling_time_s = -1.0;
  double output_energy_j = 0.0;
  double input_energy_j = 0.0;
  double conduction_loss_j = 0.0;

  const int settled_start = periods / 2;
  double v_min = 1e9, v_max = -1e9, v_sum = 0.0;
  int v_samples = 0;
  bool counting = false;

  for (int period = 0; period < periods; ++period) {
    // Weighted round-robin packet scheduling: grant the period to the most
    // in-deficit source.
    size_t active = 0;
    double best = -1e18;
    for (size_t i = 0; i < n; ++i) {
      credit[i] += shares[i];
      if (credit[i] > best) {
        best = credit[i];
        active = i;
      }
    }
    credit[active] -= 1.0;
    const SwitchingSource& src = sources[active];
    double emf = src.emf.value();
    double r_src = src.series_resistance.value() + r_on;

    // Duty: ideal-buck feedforward plus PI correction with anti-windup (the
    // integral contribution is bounded to a small duty authority so the
    // startup transient cannot ring the loop into a limit cycle).
    double err = v_ref - v_c;
    integral += err * t_period;
    if (config.ki > 0.0) {
      double authority = 0.05 / config.ki;
      integral = Clamp(integral, -authority, authority);
    }
    // Volt-second balance with the diode drop and resistive sag included:
    //   d (emf - I R - v) = (1 - d)(v + Vd)  =>  d = (v + Vd)/(emf + Vd - I R).
    double i_load_est = v_ref / r_load;
    double vd = config.diode_drop.value();
    double d0 = (v_ref + vd) / std::max(emf + vd - i_load_est * r_src, 1e-3);
    double d = Clamp(d0 + config.kp * err + config.ki * integral, 0.02, 0.98);

    // Sigma-delta quantisation of the on-time: carrying the fractional
    // remainder across periods dithers the duty LSB away (otherwise a
    // single-source run limit-cycles at ~EMF/substeps volts of ripple).
    double on_exact = d * config.substeps_per_period + duty_carry;
    int on_steps = static_cast<int>(on_exact);
    duty_carry = on_exact - on_steps;
    on_steps = std::min(on_steps, config.substeps_per_period);
    counting = period >= settled_start;
    for (int step = 0; step < config.substeps_per_period; ++step) {
      bool on = step < on_steps;
      double v_l;
      if (on) {
        v_l = emf - i_l * r_src - v_c;
      } else if (i_l > 0.0) {
        v_l = -v_c - config.diode_drop.value();  // Freewheel through the diode.
      } else {
        v_l = 0.0;  // Discontinuous conduction: diode blocks.
        i_l = 0.0;
      }
      double i_next = i_l + v_l / inductance * dt;
      if (!on && i_next < 0.0) {
        i_next = 0.0;
      }
      double v_next = v_c + (i_l - v_c / r_load) / capacitance * dt;

      if (counting) {
        double out_p = v_c * v_c / r_load;
        output_energy_j += out_p * dt;
        if (on) {
          double in_p = emf * i_l;  // Energy leaving the source EMF.
          input_energy_j += in_p * dt;
          per_source_energy[active] += in_p * dt;
          conduction_loss_j += i_l * i_l * r_src * dt;
        } else if (i_l > 0.0) {
          conduction_loss_j += config.diode_drop.value() * i_l * dt;
        }
        v_min = std::min(v_min, v_c);
        v_max = std::max(v_max, v_c);
        v_sum += v_c;
        ++v_samples;
      }
      i_l = i_next;
      v_c = v_next;
    }

    if (settling_time_s < 0.0 && std::fabs(v_c - v_ref) < 0.02 * v_ref) {
      settling_time_s = (period + 1) * t_period;
    }
  }

  SDB_CHECK(v_samples > 0);
  result.mean_output = Volts(v_sum / v_samples);
  result.ripple_pp = Volts(v_max - v_min);
  result.settling_time = Seconds(settling_time_s);
  result.output_energy = Joules(output_energy_j);
  result.input_energy = Joules(input_energy_j);
  result.conduction_loss = Joules(conduction_loss_j);
  result.regulated = std::fabs(result.mean_output.value() - v_ref) < 0.03 * v_ref &&
                     result.ripple_pp.value() < 0.05 * v_ref && settling_time_s >= 0.0;

  result.realised_shares.assign(n, 0.0);
  double total_in = 0.0;
  for (double e : per_source_energy) {
    total_in += e;
  }
  for (size_t i = 0; i < n; ++i) {
    result.realised_shares[i] = total_in > 0.0 ? per_source_energy[i] / total_in : 0.0;
    result.worst_share_error =
        std::max(result.worst_share_error, std::fabs(result.realised_shares[i] - shares[i]));
  }
  result.efficiency = input_energy_j > 0.0 ? output_energy_j / input_energy_j : 0.0;
  return result;
}

}  // namespace sdb

// Waveform-level simulation of the SDB discharge multiplexer.
//
// The paper validated its modified switched-mode regulator — a buck stage
// whose input switch multiplexes N batteries in weighted round-robin — with
// LTSPICE runs "at various power loads to validate system correctness,
// stability, and responsiveness" (§3.2.1/§4.1). This module is that
// validation path: it integrates the actual L/C switching dynamics at tens
// of nanoseconds, schedules batteries packet-by-packet, and reports the
// quantities the paper's correctness argument rests on:
//   * output-voltage regulation and peak-to-peak ripple,
//   * realised per-battery energy shares vs the commanded weights,
//   * conduction losses (battery DCIR + switch R_on + freewheel diode).
// The averaged model in src/hw/discharge_circuit is then cross-checked
// against these waveforms in tests (the circuit-level analogue of Fig. 10).
#ifndef SRC_HW_SWITCHING_SIM_H_
#define SRC_HW_SWITCHING_SIM_H_

#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// One battery as the regulator sees it at millisecond scale: a Thevenin
// source with fixed EMF and series resistance.
struct SwitchingSource {
  Voltage emf;
  Resistance series_resistance;
};

struct SwitchingSimConfig {
  Frequency switching_frequency = KiloHertz(500.0);  // PWM frequency.
  Inductance inductance = MicroHenries(4.7);
  Capacitance capacitance = Farads(100e-6);
  Voltage output_setpoint = Volts(1.1);   // Core rail.
  Resistance switch_on_resistance = MilliOhms(12.0);
  Voltage diode_drop = Volts(0.35);       // Freewheel path.
  int substeps_per_period = 64;           // Integration resolution.
  // Feedback: duty = feedforward + kp * error (+ ki * integral).
  double kp = 0.05;
  double ki = 500.0;
};

struct SwitchingSimResult {
  // Regulation quality.
  Voltage mean_output;
  Voltage ripple_pp;                // Peak-to-peak over the settled window.
  Duration settling_time;           // Time to stay within 2% of setpoint.
  bool regulated = false;           // Output held near the setpoint.
  // Multiplexing accuracy.
  std::vector<double> commanded_shares;
  std::vector<double> realised_shares;  // Fraction of input energy per battery.
  double worst_share_error = 0.0;       // Max |realised - commanded|.
  // Energy ledger over the settled window.
  Energy output_energy;
  Energy input_energy;
  Energy conduction_loss;
  double efficiency = 0.0;
};

// Runs the switching simulation: `shares` weight the round-robin packet
// schedule across `sources`; `load_resistance` terminates the rail;
// `duration` total simulated time (the first half is treated as settling,
// metrics are taken over the second half). Returns an error for invalid
// inputs (empty sources, non-positive values, shares not summing to 1).
StatusOr<SwitchingSimResult> RunSwitchingSim(const std::vector<SwitchingSource>& sources,
                                             const std::vector<double>& shares,
                                             Resistance load_resistance, Duration duration,
                                             const SwitchingSimConfig& config = {});

}  // namespace sdb

#endif  // SRC_HW_SWITCHING_SIM_H_

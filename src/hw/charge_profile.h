// Charging profiles (paper §2.2 and Fig. 4): constant-current /
// constant-voltage (CC-CV) with a high-SoC taper. Traditional PMICs bake in
// one fixed profile; the SDB hardware holds several per battery and lets the
// microcontroller select among them dynamically (Fig. 4c, "multiple charge
// profiles").
#ifndef SRC_HW_CHARGE_PROFILE_H_
#define SRC_HW_CHARGE_PROFILE_H_

#include <string>
#include <vector>

#include "src/chem/cell.h"
#include "src/util/units.h"

namespace sdb {

struct ChargeProfile {
  std::string name;
  Current cc_current;       // Constant-current phase setpoint.
  Voltage cv_voltage;       // Constant-voltage phase target.
  double taper_soc = 0.80;  // Above this SoC, current is limited...
  Current taper_current;    // ...to this value (paper: "trickle beyond 80%").
  Current termination_current;  // Charging stops below this in CV phase.

  // The charge current this profile commands for the cell's present state.
  // Returns zero when the cell counts as full.
  Current CommandedCurrent(const Cell& cell) const;
};

// Standard profile for a battery: CC at a fraction of the max charge
// current, CV at the chemistry cutoff, taper above 80%.
ChargeProfile MakeStandardProfile(const BatteryParams& params, double cc_fraction = 1.0);

// Gentle overnight profile: half-rate CC, earlier taper — trades charge
// speed for longevity (paper Table 2, charge power vs. longevity).
ChargeProfile MakeGentleProfile(const BatteryParams& params);

// Storage profile: charges only to ~60% at a low rate — the long-term
// storage regime (high resting SoC accelerates calendar fade).
ChargeProfile MakeStorageProfile(const BatteryParams& params);

// The profile bank one battery's charger stage holds; the microcontroller
// selects by index (paper Fig. 4b/4c "charging profile select").
class ChargeProfileBank {
 public:
  explicit ChargeProfileBank(std::vector<ChargeProfile> profiles);

  size_t size() const { return profiles_.size(); }
  const ChargeProfile& profile(size_t index) const;

  size_t selected_index() const { return selected_; }
  const ChargeProfile& selected() const { return profile(selected_); }
  Status Select(size_t index);

 private:
  std::vector<ChargeProfile> profiles_;
  size_t selected_ = 0;
};

}  // namespace sdb

#endif  // SRC_HW_CHARGE_PROFILE_H_

// ACPI battery-interface emulation (paper §2.2: "these parameters are
// exposed through the Advanced Configuration and Power Interface... none of
// these APIs allow the OS to set the battery parameters").
//
// Models the _BIF (static battery information) and _BST (dynamic battery
// status) objects a firmware battery device exposes, derived from the
// traditional PMIC's aggregate view — the query-only world SDB extends.
#ifndef SRC_HW_ACPI_H_
#define SRC_HW_ACPI_H_

#include <cstdint>
#include <string>

#include "src/hw/pmic.h"

namespace sdb {

// _BIF: static information, in mWh/mW units (power_unit == 0 in ACPI).
struct AcpiBatteryInformation {
  uint32_t design_capacity_mwh = 0;
  uint32_t last_full_charge_capacity_mwh = 0;
  uint32_t design_voltage_mv = 0;
  uint32_t design_capacity_warning_mwh = 0;  // 10% of design.
  uint32_t design_capacity_low_mwh = 0;      // 4% of design.
  uint32_t cycle_count = 0;
  std::string model_number;
};

// _BST state bits.
enum AcpiBatteryState : uint32_t {
  kAcpiDischarging = 1u << 0,
  kAcpiCharging = 1u << 1,
  kAcpiCritical = 1u << 2,
};

// _BST: dynamic status.
struct AcpiBatteryStatus {
  uint32_t state = 0;
  uint32_t present_rate_mw = 0;       // Magnitude of current flow.
  uint32_t remaining_capacity_mwh = 0;
  uint32_t present_voltage_mv = 0;
};

// Wraps a traditional PMIC as an ACPI battery device. The adapter is
// read-only by construction — exactly the limitation SDB's APIs remove.
class AcpiBatteryDevice {
 public:
  // `pmic` must outlive the device.
  explicit AcpiBatteryDevice(const TraditionalPmic* pmic, std::string model = "SDB-BAT0");

  AcpiBatteryInformation ReadBif() const;

  // `last_tick` carries the flow direction/magnitude of the most recent
  // hardware step (ACPI reports instantaneous rate).
  AcpiBatteryStatus ReadBst(const PmicTick& last_tick) const;

 private:
  const TraditionalPmic* pmic_;
  std::string model_;
};

}  // namespace sdb

#endif  // SRC_HW_ACPI_H_

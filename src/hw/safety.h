// Battery protection supervisor: the safety interlocks every battery
// management system carries underneath whatever scheduling policy runs
// above it (the paper's PMIC context, §2.2). Monitors each cell for
// over-current, terminal over/under-voltage and over-temperature; trips a
// latched fault that removes the battery from scheduling until cleared.
#ifndef SRC_HW_SAFETY_H_
#define SRC_HW_SAFETY_H_

#include <string>
#include <vector>

#include "src/chem/cell.h"
#include "src/util/units.h"

namespace sdb {

enum class FaultKind {
  kNone = 0,
  kOverCurrentDischarge,
  kOverCurrentCharge,
  kOverVoltage,
  kUnderVoltage,
  kOverTemperature,
};

std::string_view FaultKindName(FaultKind kind);

struct SafetyLimits {
  Current max_discharge;    // Hard ceiling, above the datasheet rating.
  Current max_charge;
  Voltage min_voltage;      // Terminal voltage bounds.
  Voltage max_voltage;
  Temperature max_temperature;
};

// Limits derived from a battery's datasheet with standard protection
// margins (current +25%, voltage window widened by 150 mV, 60 C thermal).
SafetyLimits DeriveLimits(const BatteryParams& params);

struct FaultRecord {
  FaultKind kind = FaultKind::kNone;
  double observed_value = 0.0;
  double limit_value = 0.0;
};

class SafetySupervisor {
 public:
  // One limit set per battery.
  explicit SafetySupervisor(std::vector<SafetyLimits> limits);

  size_t battery_count() const { return limits_.size(); }

  // Checks one tick's electrical outcome for battery `index`; trips and
  // latches a fault if any limit is violated. Returns the fault observed
  // this call (kNone if healthy). Already-faulted batteries stay faulted.
  FaultKind Inspect(size_t index, const Cell& cell, const StepResult& step);

  bool IsFaulted(size_t index) const;
  const FaultRecord& fault(size_t index) const;
  bool AnyFaulted() const;

  // Operator/OS intervention: clear a latched fault after the condition
  // passes. Refuses (returns false) while the condition persists.
  bool ClearFault(size_t index, const Cell& cell);

 private:
  std::vector<SafetyLimits> limits_;
  std::vector<FaultRecord> faults_;
};

}  // namespace sdb

#endif  // SRC_HW_SAFETY_H_

// Battery protection supervisor: the safety interlocks every battery
// management system carries underneath whatever scheduling policy runs
// above it (the paper's PMIC context, §2.2). Monitors each cell for
// over-current, terminal over/under-voltage and over-temperature; trips a
// latched fault that removes the battery from scheduling.
//
// With recovery enabled (DESIGN.md §9) each battery runs a lifecycle state
// machine instead of latching forever:
//
//   Healthy -> Tripped -> CoolDown -> Probing -> Healthy
//
// Tripped batteries carry no current. Once the tripped condition re-enters
// its limit minus a hysteresis margin, a dwell timer runs (CoolDown); any
// excursion restarts it. After the dwell the battery reintegrates at a
// capped share (Probing); a re-trip during the probe escalates the next
// dwell with capped exponential backoff. Recovery is disabled by default,
// which reproduces the original latch-only behaviour exactly.
#ifndef SRC_HW_SAFETY_H_
#define SRC_HW_SAFETY_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/chem/cell.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

enum class FaultKind {
  kNone = 0,
  kOverCurrentDischarge,
  kOverCurrentCharge,
  kOverVoltage,
  kUnderVoltage,
  kOverTemperature,
};

std::string_view FaultKindName(FaultKind kind);

// Lifecycle stage of one battery under supervision.
enum class BatteryHealth {
  kHealthy = 0,
  kTripped,   // Fault latched; the battery is out of the schedulable set.
  kCoolDown,  // Condition cleared with margin; dwell timer running.
  kProbing,   // Reintegrated at a capped share; a re-trip escalates dwell.
};

std::string_view BatteryHealthName(BatteryHealth health);

struct SafetyLimits {
  Current max_discharge;    // Hard ceiling, above the datasheet rating.
  Current max_charge;
  Voltage min_voltage;      // Terminal voltage bounds.
  Voltage max_voltage;
  Temperature max_temperature;
};

// Limits derived from a battery's datasheet with standard protection
// margins (current +25%, voltage window widened by 150 mV, 60 C thermal).
SafetyLimits DeriveLimits(const BatteryParams& params);

// One observed-or-limit reading; the active alternative is determined by
// the FaultKind that tripped (currents for the over-current kinds, voltages
// for the voltage window, temperature for thermal).
using SafetyReading = std::variant<std::monostate, Current, Voltage, Temperature>;

// Raw SI magnitude of a reading (0 when empty) — for reports and logs.
double ReadingValue(const SafetyReading& reading);

struct FaultRecord {
  FaultKind kind = FaultKind::kNone;
  SafetyReading observed;
  SafetyReading limit;
};

// Recovery doctrine. Disabled by default: faults latch until ClearFault().
struct RecoveryConfig {
  bool enabled = false;
  // Hysteresis margins: a tripped condition only counts as cleared once the
  // value re-enters the limit minus a margin (fractional for currents,
  // absolute for the voltage window and temperature).
  double current_margin_fraction = 0.05;
  Voltage voltage_margin = Volts(0.05);
  Temperature temperature_margin = Kelvin(3.0);
  // CoolDown dwell: how long the cleared condition must hold before the
  // battery probes. Re-tripping during a probe multiplies the next dwell by
  // `dwell_backoff`, capped at `max_dwell`; a completed probe resets it.
  Duration base_dwell = Minutes(5.0);
  double dwell_backoff = 2.0;
  Duration max_dwell = Minutes(40.0);
  // Probing: largest share of the pack split the battery may carry while on
  // probation, and how long the probe lasts before it counts as recovered.
  double probe_share_cap = 0.25;
  Duration probe_duration = Minutes(2.0);
};

class SafetySupervisor {
 public:
  // One lifecycle transition, for reports and tests. `at` is the supervisor
  // clock (the sum of Advance deltas) when the transition was taken.
  struct Transition {
    size_t battery = 0;
    BatteryHealth from = BatteryHealth::kHealthy;
    BatteryHealth to = BatteryHealth::kHealthy;
    Duration at;
    FaultKind kind = FaultKind::kNone;
  };

  // Per-battery lifecycle bookkeeping; public so checkpoint snapshots can
  // carry it (SupervisorState below).
  struct LifecycleState {
    BatteryHealth health = BatteryHealth::kHealthy;
    Duration dwell_remaining;
    Duration probe_remaining;
    Duration next_dwell;           // Escalates on probe re-trips.
    bool condition_clear = false;  // Hysteresis check from the last Inspect.
    uint64_t trips = 0;
    uint64_t recoveries = 0;
  };

  // Complete mutable supervisor state for checkpoint/restore (limits and
  // recovery doctrine are config).
  struct SupervisorState {
    std::vector<FaultRecord> faults;
    std::vector<LifecycleState> lifecycle;
    std::vector<Transition> transitions;
    uint64_t transitions_dropped = 0;
    Duration clock;
  };

  // One limit set per battery. Default recovery config = latch-only.
  explicit SafetySupervisor(std::vector<SafetyLimits> limits,
                            RecoveryConfig recovery = {});

  size_t battery_count() const { return limits_.size(); }

  // Checks one tick's electrical outcome for battery `index`; trips and
  // latches a fault if any limit is violated. Returns the fault observed
  // this call (kNone if healthy). Tripped/cooling batteries stay faulted
  // and have their hysteresis condition re-evaluated; probing batteries are
  // inspected against the full limits again.
  FaultKind Inspect(size_t index, const Cell& cell, const StepResult& step);

  // Advances the lifecycle timers one hardware tick; the microcontroller
  // calls this after inspecting every battery. No-op while recovery is
  // disabled, so latch-only supervisors behave exactly as before.
  void Advance(Duration dt);

  // Tripped or cooling down: out of the schedulable set.
  bool IsFaulted(size_t index) const;
  bool IsProbing(size_t index) const;
  BatteryHealth health(size_t index) const;
  const FaultRecord& fault(size_t index) const;
  bool AnyFaulted() const;
  // Any battery not kHealthy — includes probing batteries, whose share must
  // still be capped even though they are back in the split.
  bool AnyUnhealthy() const;
  double probe_share_cap() const { return recovery_.probe_share_cap; }

  // Operator/OS intervention: clear a latched fault after the condition
  // passes. Refuses (returns false) while the condition persists. Resets
  // the lifecycle (including dwell escalation) to Healthy.
  bool ClearFault(size_t index, const Cell& cell);

  // Lifecycle bookkeeping.
  uint64_t trip_count(size_t index) const;
  uint64_t recovery_count(size_t index) const;
  const std::vector<Transition>& transitions() const { return transitions_; }
  uint64_t transitions_dropped() const { return transitions_dropped_; }

  // Checkpoint/restore of the lifecycle machine. Restore rejects snapshots
  // sized for a different battery count.
  SupervisorState SaveState() const;
  Status RestoreState(const SupervisorState& state);

 private:
  // Hysteresis: true when the latched condition for `index` has re-entered
  // its limit minus the configured margin.
  bool ConditionCleared(size_t index, const Cell& cell, const StepResult& step) const;
  void SetHealth(size_t index, BatteryHealth to);

  std::vector<SafetyLimits> limits_;
  std::vector<FaultRecord> faults_;
  RecoveryConfig recovery_;
  std::vector<LifecycleState> state_;
  std::vector<Transition> transitions_;
  uint64_t transitions_dropped_ = 0;
  Duration clock_;
};

}  // namespace sdb

#endif  // SRC_HW_SAFETY_H_

#include "src/hw/fault.h"

#include <string>

#include "src/obs/event.h"
#include "src/util/check.h"

namespace sdb {

std::string_view FaultClassName(FaultClass kind) {
  switch (kind) {
    case FaultClass::kLinkTimeout:
      return "link-timeout";
    case FaultClass::kLinkCorruptReply:
      return "link-corrupt-reply";
    case FaultClass::kGaugeBias:
      return "gauge-bias";
    case FaultClass::kGaugeNoise:
      return "gauge-noise";
    case FaultClass::kGaugeStuck:
      return "gauge-stuck";
    case FaultClass::kRegulatorCollapse:
      return "regulator-collapse";
    case FaultClass::kOpenCircuit:
      return "open-circuit";
    case FaultClass::kThermalTrip:
      return "thermal-trip";
    case FaultClass::kMicroCrash:
      return "micro-crash";
    case FaultClass::kMicroBrownout:
      return "micro-brownout";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xFA017EC7ED5EEDULL),
      now_(Seconds(0.0)),
      reboot_fired_(plan_.events.size(), false) {
  for (const FaultEvent& event : plan_.events) {
    SDB_CHECK(!(event.end < event.start));
    SDB_CHECK(event.probability >= 0.0 && event.probability <= 1.0);
  }
}

void FaultInjector::Advance(Duration dt) {
  SDB_CHECK(dt.value() >= 0.0);
  Duration prev = now_;
  now_ += dt;
#if SDB_JOURNAL
  if (obs::JournalActive()) {
    // Journal each window edge crossed by [prev, now_) exactly once, stamped
    // with the *scheduled* edge time (not the advance boundary) so journals
    // from different tick sizes still agree on when a fault began.
    for (const FaultEvent& event : plan_.events) {
      if (!(event.start < prev) && event.start < now_) {
        obs::EmitEvent(obs::EventKind::kFaultInjected, event.start.value(), event.battery,
                       std::string(FaultClassName(event.kind)), std::string(),
                       event.magnitude, event.probability);
      }
      if (prev < event.end && !(now_ < event.end)) {
        obs::EmitEvent(obs::EventKind::kFaultCleared, event.end.value(), event.battery,
                       std::string(FaultClassName(event.kind)), std::string(),
                       event.magnitude, event.probability);
      }
    }
  }
#endif
}

const FaultEvent* FaultInjector::Active(FaultClass kind, int battery) const {
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != kind) {
      continue;
    }
    if (event.battery != -1 && battery != -1 && event.battery != battery) {
      continue;
    }
    if (!(now_ < event.start) && now_ < event.end) {
      return &event;
    }
  }
  return nullptr;
}

bool FaultInjector::DropQuery() {
  const FaultEvent* event = Active(FaultClass::kLinkTimeout, -1);
  if (event == nullptr) {
    return false;
  }
  if (!rng_.Bernoulli(event->probability)) {
    return false;
  }
  ++dropped_queries_;
  return true;
}

void FaultInjector::MaybeCorruptReply(std::vector<uint8_t>& bytes) {
  const FaultEvent* event = Active(FaultClass::kLinkCorruptReply, -1);
  if (event == nullptr || bytes.empty()) {
    return;
  }
  if (!rng_.Bernoulli(event->probability)) {
    return;
  }
  size_t byte_index = static_cast<size_t>(rng_.NextBounded(bytes.size()));
  uint8_t bit = static_cast<uint8_t>(1u << rng_.NextBounded(8));
  bytes[byte_index] ^= bit;
  ++corrupted_replies_;
}

double FaultInjector::GaugeSocBias(size_t battery) const {
  const FaultEvent* event = Active(FaultClass::kGaugeBias, static_cast<int>(battery));
  return event != nullptr ? event->magnitude : 0.0;
}

double FaultInjector::GaugeNoiseScale(size_t battery) const {
  const FaultEvent* event = Active(FaultClass::kGaugeNoise, static_cast<int>(battery));
  return event != nullptr ? event->magnitude : 1.0;
}

bool FaultInjector::GaugeStuck(size_t battery) const {
  return Active(FaultClass::kGaugeStuck, static_cast<int>(battery)) != nullptr;
}

double FaultInjector::DischargeEfficiencyFactor() const {
  const FaultEvent* event = Active(FaultClass::kRegulatorCollapse, -1);
  if (event == nullptr) {
    return 1.0;
  }
  SDB_CHECK(event->magnitude > 0.0 && event->magnitude <= 1.0);
  return event->magnitude;
}

bool FaultInjector::OpenCircuit(size_t battery) const {
  return Active(FaultClass::kOpenCircuit, static_cast<int>(battery)) != nullptr;
}

bool FaultInjector::MicroRebootEdge() {
  bool fired = false;
  for (size_t k = 0; k < plan_.events.size(); ++k) {
    const FaultEvent& event = plan_.events[k];
    if (event.kind != FaultClass::kMicroCrash && event.kind != FaultClass::kMicroBrownout) {
      continue;
    }
    if (now_ < event.start || !(now_ < event.end) || reboot_fired_[k]) {
      continue;
    }
    reboot_fired_[k] = true;
    fired = true;
  }
  if (fired) {
    ++micro_reboots_;
  }
  return fired;
}

bool FaultInjector::MicroHeldInReset() const {
  return Active(FaultClass::kMicroBrownout, -1) != nullptr;
}

std::optional<Temperature> FaultInjector::ReportedTemperatureFloor(size_t battery) const {
  const FaultEvent* event = Active(FaultClass::kThermalTrip, static_cast<int>(battery));
  if (event == nullptr) {
    return std::nullopt;
  }
  return Kelvin(event->magnitude);
}

FaultInjectorState FaultInjector::SaveState() const {
  FaultInjectorState state;
  state.rng = rng_.SaveState();
  state.now = now_;
  state.dropped_queries = dropped_queries_;
  state.corrupted_replies = corrupted_replies_;
  state.micro_reboots = micro_reboots_;
  state.reboot_fired = reboot_fired_;
  return state;
}

Status FaultInjector::RestoreState(const FaultInjectorState& state) {
  if (state.reboot_fired.size() != reboot_fired_.size()) {
    return InvalidArgumentError(
        "fault injector: snapshot fired-flag count " +
        std::to_string(state.reboot_fired.size()) + " does not match plan (" +
        std::to_string(reboot_fired_.size()) + " event(s))");
  }
  rng_.RestoreState(state.rng);
  now_ = state.now;
  dropped_queries_ = state.dropped_queries;
  corrupted_replies_ = state.corrupted_replies;
  micro_reboots_ = state.micro_reboots;
  reboot_fired_ = state.reboot_fired;
  return Status::Ok();
}

}  // namespace sdb

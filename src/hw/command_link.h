// The wire protocol between the SDB Runtime and the microcontroller.
//
// The paper's prototype connects the OS to the controller board over a
// serial transport (a Bluetooth link standing in for the power-management
// serial bus, §4.1). This module implements that link: framed, checksummed
// messages carrying the four SDB APIs, an incremental decoder that resyncs
// after corruption, and client/server endpoints.
//
// Frame layout (little-endian payloads):
//   0xA5 | length (1 byte, payload size) | type (1 byte) | payload | crc16 (2 bytes)
// The CRC (CCITT-FALSE) covers length, type and payload.
//
// Mutating commands (the setters, transfers and profile selection) carry a
// 2-byte sequence number as the first payload bytes. The server keeps the
// last applied (sequence, request, response) and replays the cached
// response when the same command arrives again, so a retry after a lost
// reply is never double-applied. Reads (kQueryStatus) are sequence-free.
// After a microcontroller reboot every mutating command is refused until
// the client runs the kResync handshake (the client does this
// transparently and replays the refused command once).
#ifndef SRC_HW_COMMAND_LINK_H_
#define SRC_HW_COMMAND_LINK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/hw/microcontroller.h"
#include "src/util/status.h"

namespace sdb {

class FaultInjector;

enum class MessageType : uint8_t {
  kSetDischargeRatios = 0x01,
  kSetChargeRatios = 0x02,
  kChargeOneFromAnother = 0x03,
  kQueryStatus = 0x04,
  kSelectProfile = 0x05,
  kResync = 0x06,        // Post-reboot handshake; empty payload.
  kAck = 0x80,           // Payload: 1 status byte (0 == OK).
  kStatusReport = 0x81,  // Payload: per-battery status records.
  kResyncAck = 0x82,     // Payload: 4-byte boot count (LE).
};

struct Frame {
  MessageType type;
  std::vector<uint8_t> payload;
};

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
uint16_t Crc16(const uint8_t* data, size_t size);

// Serialises a frame to bytes.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Incremental frame decoder: feed bytes as they arrive; complete, valid
// frames pop out. Corrupt frames (bad CRC) are dropped and counted; the
// decoder hunts for the next start byte.
class FrameDecoder {
 public:
  // Feeds one byte; returns a frame when one completes.
  std::optional<Frame> Feed(uint8_t byte);

  // Feeds a buffer; appends completed frames to `out`.
  void Feed(const std::vector<uint8_t>& bytes, std::vector<Frame>& out);

  size_t crc_errors() const { return crc_errors_; }
  size_t frames_decoded() const { return frames_decoded_; }

 private:
  enum class State { kIdle, kLength, kType, kPayload, kCrcHigh, kCrcLow };
  State state_ = State::kIdle;
  uint8_t length_ = 0;
  uint8_t type_ = 0;
  std::vector<uint8_t> payload_;
  uint16_t crc_ = 0;
  size_t crc_errors_ = 0;
  size_t frames_decoded_ = 0;
};

// Mutable endpoint state for checkpoint/restore. The decoders are empty
// between the synchronous roundtrips both endpoints run, so they carry no
// state worth snapshotting.
struct LinkServerState {
  uint32_t known_boot = 0;
  bool have_last = false;
  uint16_t last_seq = 0;
  uint8_t last_type = 0;
  std::vector<uint8_t> last_payload;
  std::vector<uint8_t> last_response;
  uint64_t replayed_commands = 0;
};

struct LinkClientState {
  uint16_t next_seq = 1;
  uint32_t last_boot_count = 0;
  uint64_t resyncs = 0;
};

// Firmware-side endpoint: executes decoded command frames against the
// microcontroller and produces response bytes.
class CommandLinkServer {
 public:
  // `micro` must outlive the server.
  explicit CommandLinkServer(SdbMicrocontroller* micro);

  // Feeds raw bytes from the wire; returns response bytes to send back
  // (acks and status reports, one response per completed command frame).
  std::vector<uint8_t> Receive(const std::vector<uint8_t>& bytes);

  size_t crc_errors() const { return decoder_.crc_errors(); }
  // Commands answered from the idempotent-replay cache instead of being
  // applied a second time.
  uint64_t replayed_commands() const { return replayed_commands_; }

  // Checkpoint/restore of the replay cache + boot tracking.
  LinkServerState SaveState() const;
  void RestoreState(const LinkServerState& state);

 private:
  std::vector<uint8_t> Execute(const Frame& frame);
  // Sequence-checked execution of the mutating command types.
  std::vector<uint8_t> ExecuteCommand(const Frame& frame);

  SdbMicrocontroller* micro_;
  FrameDecoder decoder_;
  // Idempotent-replay cache: the last applied command and its response.
  // A reboot (observed through the micro's boot counter) invalidates it.
  uint32_t known_boot_ = 0;
  bool have_last_ = false;
  uint16_t last_seq_ = 0;
  MessageType last_type_ = MessageType::kAck;
  std::vector<uint8_t> last_payload_;
  std::vector<uint8_t> last_response_;
  uint64_t replayed_commands_ = 0;
};

// OS-side endpoint: the four APIs as serialised calls. `transport` delivers
// request bytes and returns response bytes (tests wire it straight to a
// CommandLinkServer, optionally through a lossy channel).
class CommandLinkClient {
 public:
  using Transport = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  explicit CommandLinkClient(Transport transport);

  Status SetDischargeRatios(const std::vector<double>& ratios);
  Status SetChargeRatios(const std::vector<double>& ratios);
  Status ChargeOneFromAnother(uint8_t from, uint8_t to, Power power, Duration duration);
  StatusOr<std::vector<BatteryStatus>> QueryBatteryStatus();
  Status SelectChargeProfile(uint8_t battery, uint8_t profile);

  // Attaches a fault injector (non-owning; detach with nullptr). While
  // attached, every roundtrip may be dropped (injected timeout) or have its
  // reply corrupted before decoding.
  void AttachFaultInjector(FaultInjector* injector) { fault_ = injector; }

  // Post-reboot handshake: resets the sequence stream and records the
  // controller's boot count. Run transparently when a command is refused
  // with FailedPrecondition, but callable directly.
  Status Resync();
  uint32_t last_boot_count() const { return last_boot_count_; }
  uint64_t resyncs() const { return resyncs_; }

  // Warm-restart reconciliation: adopt the controller's boot count without
  // a wire roundtrip (the restore path resyncs the micro directly and
  // counts the handshake itself).
  void AdoptBootCount(uint32_t boot_count) { last_boot_count_ = boot_count; }

  // Checkpoint/restore of the sequence stream + boot tracking.
  LinkClientState SaveState() const;
  void RestoreState(const LinkClientState& state);

 private:
  // Sends a frame and decodes the single expected response frame.
  StatusOr<Frame> Roundtrip(const Frame& request);
  Status RoundtripAck(const Frame& request);
  // Prefixes the sequence number, sends, and transparently resyncs +
  // replays once when the controller reports a pending reboot.
  Status SendCommand(Frame request);

  Transport transport_;
  FrameDecoder decoder_;
  FaultInjector* fault_ = nullptr;
  uint16_t next_seq_ = 1;
  uint32_t last_boot_count_ = 0;
  uint64_t resyncs_ = 0;
};

}  // namespace sdb

#endif  // SRC_HW_COMMAND_LINK_H_

#include "src/hw/discharge_circuit.h"

#include <algorithm>
#include <cmath>

#include "src/chem/soa_kernel.h"
#include "src/obs/event.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

SdbDischargeCircuit::SdbDischargeCircuit(DischargeCircuitConfig config, uint64_t seed)
    : config_(config), regulator_(config.regulator), rng_(seed) {
  SDB_CHECK(config_.share_error_mid >= 0.0);
  SDB_CHECK(config_.share_error_edge >= config_.share_error_mid);
  SDB_CHECK(config_.power_margin > 0.0 && config_.power_margin <= 1.0);
}

double SdbDischargeCircuit::ShareErrorEnvelope(double setting) const {
  // Cubic rise toward the edges of the setting range (Fig. 6b shape).
  double distance = std::fabs(setting - 0.5) / 0.5;  // 0 mid, 1 at the edges.
  return config_.share_error_mid +
         (config_.share_error_edge - config_.share_error_mid) * distance * distance * distance;
}

Power SdbDischargeCircuit::CircuitLossAt(Power load, Voltage bus) const {
  return regulator_.LossAt(load, bus, RegulatorMode::kBuck);
}

void SdbDischargeCircuit::JournalShortfallEdge(bool shortfall, Power load,
                                               Power delivered) {
  if (shortfall && !shortfall_latched_) {
    SDB_JOURNAL_EVENT(obs::EventKind::kCircuitEvent, -1.0, -1, "discharge-shortfall",
                      std::string(), delivered.value(), load.value());
  }
  shortfall_latched_ = shortfall;
}

Power SdbDischargeCircuit::AvailablePower(const Cell& cell, Duration dt) const {
  if (cell.IsEmpty()) {
    return Watts(0.0);
  }
  double e = cell.NoLoadVoltage().value();
  double r = cell.InternalResistance().value();
  if (e <= 0.0 || r <= 0.0) {
    return Watts(0.0);
  }
  // Current ceiling: datasheet limit, SoC drain limit, and max-power point.
  double i_cap = std::min(cell.params().max_discharge_current.value(),
                          cell.RemainingCharge().value() / dt.value());
  i_cap = std::min(i_cap, e / (2.0 * r));
  double p = (e - r * i_cap) * i_cap;
  return Watts(std::max(0.0, p * config_.power_margin));
}

DischargeTick SdbDischargeCircuit::Step(BatteryPack& pack, const std::vector<double>& shares,
                                        Power load, Duration dt) {
  SDB_TRACE_SPAN("hw", "circuit.discharge_step");
  SDB_CHECK(shares.size() == pack.size());
  const size_t n = pack.size();
  DischargeTick tick;
  tick.requested = load;
  tick.currents.assign(n, Amps(0.0));
  tick.battery_power.assign(n, Watts(0.0));
  tick.realised_shares.assign(n, 0.0);
  tick.circuit_loss = Joules(0.0);
  tick.battery_loss = Joules(0.0);
  tick.delivered = Watts(0.0);
  if (load.value() <= 0.0) {
    JournalShortfallEdge(false, load, Watts(0.0));
    return tick;
  }

  // Bus voltage estimate: mean no-load voltage of non-empty batteries.
  double bus_v = 0.0;
  int live = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!pack.cell(i).IsEmpty() && !pack.IsOpenCircuit(i)) {
      bus_v += pack.cell(i).NoLoadVoltage().value();
      ++live;
    }
  }
  if (live == 0) {
    tick.shortfall = true;
    JournalShortfallEdge(true, load, Watts(0.0));
    return tick;
  }
  bus_v /= live;

  // Gross power the batteries must source: load + conversion loss.
  double circuit_loss_w = CircuitLossAt(load, Volts(bus_v)).value();
  double gross = load.value() + circuit_loss_w;

  // Apply the proportion-setting error and renormalise.
  std::vector<double> realised(n, 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    SDB_CHECK(shares[i] >= -1e-12);
    double s = std::max(0.0, shares[i]);
    if (s > 0.0) {
      double err = ShareErrorEnvelope(s);
      s *= 1.0 + rng_.Uniform(-err, err);
    }
    realised[i] = s;
    sum += s;
  }
  if (sum <= 0.0) {
    tick.shortfall = true;
    JournalShortfallEdge(true, load, Watts(0.0));
    return tick;
  }
  for (auto& s : realised) {
    s /= sum;
  }

  // Allocate per-battery power with spill-over: clamp to availability and
  // redistribute the excess across unclamped batteries.
  std::vector<double> avail(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    // A disconnected battery offers nothing, and a zero-share battery was
    // deliberately excluded (the safety mask programs 0 to quarantine a
    // battery) — spill-over routes around both.
    avail[i] = (pack.IsOpenCircuit(i) || realised[i] <= 0.0)
                   ? 0.0
                   : AvailablePower(pack.cell(i), dt).value();
  }
  std::vector<double> request(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    request[i] = realised[i] * gross;
  }
  for (int round = 0; round < 8; ++round) {
    double excess = 0.0;
    double headroom = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (request[i] > avail[i]) {
        excess += request[i] - avail[i];
        request[i] = avail[i];
      } else {
        headroom += avail[i] - request[i];
      }
    }
    if (excess <= 1e-12 || headroom <= 1e-12) {
      break;
    }
    double grant = std::min(1.0, headroom > 0.0 ? excess / headroom : 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (request[i] < avail[i]) {
        request[i] += (avail[i] - request[i]) * grant;
      }
    }
  }

  // Step the cells and account energies. The batched path packs all cells
  // into SoA lanes and advances them in one kernel call; the scalar loop is
  // kept behind the switch for differential testing (both are bit-identical
  // — they share soa::StepLaneOnce).
  double terminal_j = 0.0;
  double battery_loss_j = 0.0;
  if (soa::BatchStepping()) {
    std::vector<soa::LaneRequest> lane_requests(n);
    for (size_t i = 0; i < n; ++i) {
      if (request[i] > 0.0) {
        lane_requests[i] = {soa::LaneOp::kDischargePower, request[i]};
      }
    }
    pack.StepLanes(lane_requests, dt);
    for (size_t i = 0; i < n; ++i) {
      if (request[i] <= 0.0) {
        continue;
      }
      const soa::RawStepResult& step = pack.lane_result(i);
      tick.currents[i] = Amps(step.current_a);
      tick.battery_power[i] = Watts(step.energy_terminals_j / dt.value());
      terminal_j += step.energy_terminals_j;
      battery_loss_j += step.energy_lost_j;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (request[i] <= 0.0) {
        continue;
      }
      StepResult step = pack.cell(i).StepDischargePower(Watts(request[i]), dt);
      tick.currents[i] = step.current;
      tick.battery_power[i] = Watts(step.energy_at_terminals.value() / dt.value());
      terminal_j += step.energy_at_terminals.value();
      battery_loss_j += step.energy_lost.value();
    }
  }
  double total_terminal_w = terminal_j / dt.value();
  for (size_t i = 0; i < n; ++i) {
    tick.realised_shares[i] =
        total_terminal_w > 0.0 ? tick.battery_power[i].value() / total_terminal_w : 0.0;
  }

  // Conversion loss scales down if the batteries under-delivered.
  double scale = gross > 0.0 ? std::min(1.0, total_terminal_w / gross) : 0.0;
  double actual_circuit_loss_w = circuit_loss_w * scale;
  double delivered_w = std::max(0.0, total_terminal_w - actual_circuit_loss_w);

  tick.delivered = Watts(delivered_w);
  tick.circuit_loss = Joules(actual_circuit_loss_w * dt.value());
  tick.battery_loss = Joules(battery_loss_j);
  tick.shortfall = delivered_w < load.value() * 0.995;
  JournalShortfallEdge(tick.shortfall, load, tick.delivered);
  return tick;
}

DischargeCircuitState SdbDischargeCircuit::SaveState() const {
  DischargeCircuitState state;
  state.rng = rng_.SaveState();
  state.shortfall_latched = shortfall_latched_;
  return state;
}

void SdbDischargeCircuit::RestoreState(const DischargeCircuitState& state) {
  rng_.RestoreState(state.rng);
  shortfall_latched_ = state.shortfall_latched;
}

}  // namespace sdb

#include "src/hw/safety.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kOverCurrentDischarge:
      return "over-current-discharge";
    case FaultKind::kOverCurrentCharge:
      return "over-current-charge";
    case FaultKind::kOverVoltage:
      return "over-voltage";
    case FaultKind::kUnderVoltage:
      return "under-voltage";
    case FaultKind::kOverTemperature:
      return "over-temperature";
  }
  return "unknown";
}

SafetyLimits DeriveLimits(const BatteryParams& params) {
  SafetyLimits limits;
  limits.max_discharge = Amps(params.max_discharge_current.value() * 1.25);
  limits.max_charge = Amps(params.max_charge_current.value() * 1.25);
  limits.min_voltage = Volts(params.ocv_vs_soc.min_y() - 0.15);
  limits.max_voltage = Volts(params.charge_cutoff_voltage.value() + 0.15);
  limits.max_temperature = Celsius(60.0);
  return limits;
}

SafetySupervisor::SafetySupervisor(std::vector<SafetyLimits> limits)
    : limits_(std::move(limits)), faults_(limits_.size()) {
  SDB_CHECK(!limits_.empty());
}

FaultKind SafetySupervisor::Inspect(size_t index, const Cell& cell, const StepResult& step) {
  SDB_CHECK(index < limits_.size());
  if (faults_[index].kind != FaultKind::kNone) {
    return faults_[index].kind;
  }
  const SafetyLimits& lim = limits_[index];
  double i = step.current.value();
  double v = step.terminal_voltage.value();
  double temp = cell.thermal().temperature().value();

  FaultRecord record;
  if (i > lim.max_discharge.value()) {
    record = {FaultKind::kOverCurrentDischarge, i, lim.max_discharge.value()};
  } else if (-i > lim.max_charge.value()) {
    record = {FaultKind::kOverCurrentCharge, -i, lim.max_charge.value()};
  } else if (v > lim.max_voltage.value()) {
    record = {FaultKind::kOverVoltage, v, lim.max_voltage.value()};
  } else if (v < lim.min_voltage.value() && !cell.IsEmpty()) {
    // An empty cell resting at its floor voltage is not a fault; a loaded
    // cell collapsing below the floor is.
    record = {FaultKind::kUnderVoltage, v, lim.min_voltage.value()};
  } else if (temp > lim.max_temperature.value()) {
    record = {FaultKind::kOverTemperature, temp, lim.max_temperature.value()};
  } else {
    return FaultKind::kNone;
  }
  faults_[index] = record;
  return record.kind;
}

bool SafetySupervisor::IsFaulted(size_t index) const {
  SDB_CHECK(index < faults_.size());
  return faults_[index].kind != FaultKind::kNone;
}

const FaultRecord& SafetySupervisor::fault(size_t index) const {
  SDB_CHECK(index < faults_.size());
  return faults_[index];
}

bool SafetySupervisor::AnyFaulted() const {
  for (const auto& f : faults_) {
    if (f.kind != FaultKind::kNone) {
      return true;
    }
  }
  return false;
}

bool SafetySupervisor::ClearFault(size_t index, const Cell& cell) {
  SDB_CHECK(index < faults_.size());
  if (faults_[index].kind == FaultKind::kNone) {
    return true;
  }
  // The thermal condition must have passed before a thermal fault clears;
  // electrical faults clear once no current flows (the latch removed it).
  if (faults_[index].kind == FaultKind::kOverTemperature &&
      cell.thermal().temperature().value() > limits_[index].max_temperature.value()) {
    return false;
  }
  faults_[index] = FaultRecord{};
  return true;
}

}  // namespace sdb

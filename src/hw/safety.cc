#include "src/hw/safety.h"

#include <cmath>
#include <string>

#include "src/obs/event.h"
#include "src/util/check.h"

namespace sdb {

namespace {

// Bounds the transition log so multi-day soaks cannot grow it unboundedly.
constexpr size_t kMaxTransitions = 4096;

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kOverCurrentDischarge:
      return "over-current-discharge";
    case FaultKind::kOverCurrentCharge:
      return "over-current-charge";
    case FaultKind::kOverVoltage:
      return "over-voltage";
    case FaultKind::kUnderVoltage:
      return "under-voltage";
    case FaultKind::kOverTemperature:
      return "over-temperature";
  }
  return "unknown";
}

std::string_view BatteryHealthName(BatteryHealth health) {
  switch (health) {
    case BatteryHealth::kHealthy:
      return "healthy";
    case BatteryHealth::kTripped:
      return "tripped";
    case BatteryHealth::kCoolDown:
      return "cool-down";
    case BatteryHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

double ReadingValue(const SafetyReading& reading) {
  return std::visit(
      [](const auto& r) -> double {
        if constexpr (std::is_same_v<std::decay_t<decltype(r)>, std::monostate>) {
          return 0.0;
        } else {
          return r.value();
        }
      },
      reading);
}

SafetyLimits DeriveLimits(const BatteryParams& params) {
  SafetyLimits limits;
  limits.max_discharge = params.max_discharge_current * 1.25;
  limits.max_charge = params.max_charge_current * 1.25;
  limits.min_voltage = Volts(params.ocv_vs_soc.min_y() - 0.15);
  limits.max_voltage = params.charge_cutoff_voltage + Volts(0.15);
  limits.max_temperature = Celsius(60.0);
  return limits;
}

SafetySupervisor::SafetySupervisor(std::vector<SafetyLimits> limits, RecoveryConfig recovery)
    : limits_(std::move(limits)),
      faults_(limits_.size()),
      recovery_(recovery),
      state_(limits_.size()),
      clock_(Seconds(0.0)) {
  SDB_CHECK(!limits_.empty());
  SDB_CHECK(recovery_.dwell_backoff >= 1.0);
  SDB_CHECK(recovery_.probe_share_cap > 0.0 && recovery_.probe_share_cap <= 1.0);
  for (auto& s : state_) {
    s.next_dwell = recovery_.base_dwell;
  }
}

void SafetySupervisor::SetHealth(size_t index, BatteryHealth to) {
  LifecycleState& s = state_[index];
  if (s.health == to) {
    return;
  }
  if (transitions_.size() < kMaxTransitions) {
    transitions_.push_back(Transition{index, s.health, to, clock_, faults_[index].kind});
  } else {
    ++transitions_dropped_;
  }
  // Stamped from the thread-local sim clock (not clock_): latch-only
  // supervisors never advance their own clock, but the simulator still
  // publishes the timeline the transition happened on.
  SDB_JOURNAL_EVENT(obs::EventKind::kLifecycle, -1.0, static_cast<int>(index),
                    std::string(BatteryHealthName(to)),
                    std::string(BatteryHealthName(s.health)));
  s.health = to;
}

FaultKind SafetySupervisor::Inspect(size_t index, const Cell& cell, const StepResult& step) {
  SDB_CHECK(index < limits_.size());
  LifecycleState& s = state_[index];
  if (faults_[index].kind != FaultKind::kNone && s.health != BatteryHealth::kProbing) {
    // Latched (Tripped or CoolDown): re-evaluate the hysteresis condition
    // for Advance() to act on, but stay faulted.
    s.condition_clear = recovery_.enabled && ConditionCleared(index, cell, step);
    return faults_[index].kind;
  }
  const SafetyLimits& lim = limits_[index];
  const Current i = step.current;
  const Voltage v = step.terminal_voltage;
  const Temperature temp = cell.thermal().temperature();

  FaultRecord record;
  if (i > lim.max_discharge) {
    record = {FaultKind::kOverCurrentDischarge, i, lim.max_discharge};
  } else if (-i > lim.max_charge) {
    record = {FaultKind::kOverCurrentCharge, -i, lim.max_charge};
  } else if (v > lim.max_voltage) {
    record = {FaultKind::kOverVoltage, v, lim.max_voltage};
  } else if (v < lim.min_voltage && !cell.IsEmpty()) {
    // An empty cell resting at its floor voltage is not a fault; a loaded
    // cell collapsing below the floor is.
    record = {FaultKind::kUnderVoltage, v, lim.min_voltage};
  } else if (temp > lim.max_temperature) {
    record = {FaultKind::kOverTemperature, temp, lim.max_temperature};
  } else {
    return FaultKind::kNone;
  }
  if (s.health == BatteryHealth::kProbing) {
    // Re-trip on probation: the next cool-down dwells longer (capped).
    s.next_dwell = Min(s.next_dwell * recovery_.dwell_backoff, recovery_.max_dwell);
  }
  faults_[index] = record;
  s.condition_clear = false;
  ++s.trips;
  SDB_JOURNAL_EVENT(obs::EventKind::kSafetyTrip, -1.0, static_cast<int>(index),
                    std::string(FaultKindName(record.kind)), std::string(),
                    ReadingValue(record.observed), ReadingValue(record.limit));
  SetHealth(index, BatteryHealth::kTripped);
  return record.kind;
}

bool SafetySupervisor::ConditionCleared(size_t index, const Cell& cell,
                                        const StepResult& step) const {
  const SafetyLimits& lim = limits_[index];
  const double f = 1.0 - recovery_.current_margin_fraction;
  switch (faults_[index].kind) {
    case FaultKind::kOverCurrentDischarge:
      return step.current <= lim.max_discharge * f;
    case FaultKind::kOverCurrentCharge:
      return -step.current <= lim.max_charge * f;
    case FaultKind::kOverVoltage:
      return step.terminal_voltage <= lim.max_voltage - recovery_.voltage_margin;
    case FaultKind::kUnderVoltage:
      return cell.IsEmpty() ||
             step.terminal_voltage >= lim.min_voltage + recovery_.voltage_margin;
    case FaultKind::kOverTemperature:
      return cell.thermal().temperature() <=
             lim.max_temperature - recovery_.temperature_margin;
    case FaultKind::kNone:
      return true;
  }
  return false;
}

void SafetySupervisor::Advance(Duration dt) {
  if (!recovery_.enabled) {
    return;
  }
  SDB_CHECK(dt.value() >= 0.0);
  clock_ += dt;
  for (size_t i = 0; i < state_.size(); ++i) {
    LifecycleState& s = state_[i];
    switch (s.health) {
      case BatteryHealth::kHealthy:
        break;
      case BatteryHealth::kTripped:
        if (s.condition_clear) {
          s.dwell_remaining = s.next_dwell;
          SetHealth(i, BatteryHealth::kCoolDown);
        }
        break;
      case BatteryHealth::kCoolDown:
        if (!s.condition_clear) {
          // Hysteresis excursion: the dwell restarts from Tripped.
          SetHealth(i, BatteryHealth::kTripped);
          break;
        }
        s.dwell_remaining -= dt;
        if (s.dwell_remaining.value() <= 0.0) {
          s.probe_remaining = recovery_.probe_duration;
          SetHealth(i, BatteryHealth::kProbing);
        }
        break;
      case BatteryHealth::kProbing:
        s.probe_remaining -= dt;
        if (s.probe_remaining.value() <= 0.0) {
          faults_[i] = FaultRecord{};
          s.next_dwell = recovery_.base_dwell;
          ++s.recoveries;
          SetHealth(i, BatteryHealth::kHealthy);
        }
        break;
    }
  }
}

bool SafetySupervisor::IsFaulted(size_t index) const {
  SDB_CHECK(index < faults_.size());
  return state_[index].health == BatteryHealth::kTripped ||
         state_[index].health == BatteryHealth::kCoolDown;
}

bool SafetySupervisor::IsProbing(size_t index) const {
  SDB_CHECK(index < state_.size());
  return state_[index].health == BatteryHealth::kProbing;
}

BatteryHealth SafetySupervisor::health(size_t index) const {
  SDB_CHECK(index < state_.size());
  return state_[index].health;
}

const FaultRecord& SafetySupervisor::fault(size_t index) const {
  SDB_CHECK(index < faults_.size());
  return faults_[index];
}

bool SafetySupervisor::AnyFaulted() const {
  for (size_t i = 0; i < state_.size(); ++i) {
    if (IsFaulted(i)) {
      return true;
    }
  }
  return false;
}

bool SafetySupervisor::AnyUnhealthy() const {
  for (const auto& s : state_) {
    if (s.health != BatteryHealth::kHealthy) {
      return true;
    }
  }
  return false;
}

uint64_t SafetySupervisor::trip_count(size_t index) const {
  SDB_CHECK(index < state_.size());
  return state_[index].trips;
}

uint64_t SafetySupervisor::recovery_count(size_t index) const {
  SDB_CHECK(index < state_.size());
  return state_[index].recoveries;
}

bool SafetySupervisor::ClearFault(size_t index, const Cell& cell) {
  SDB_CHECK(index < faults_.size());
  if (faults_[index].kind == FaultKind::kNone &&
      state_[index].health == BatteryHealth::kHealthy) {
    return true;
  }
  // The thermal condition must have passed before a thermal fault clears;
  // electrical faults clear once no current flows (the latch removed it).
  if (faults_[index].kind == FaultKind::kOverTemperature &&
      cell.thermal().temperature() > limits_[index].max_temperature) {
    return false;
  }
  faults_[index] = FaultRecord{};
  state_[index].next_dwell = recovery_.base_dwell;
  state_[index].condition_clear = false;
  SetHealth(index, BatteryHealth::kHealthy);
  return true;
}

SafetySupervisor::SupervisorState SafetySupervisor::SaveState() const {
  SupervisorState state;
  state.faults = faults_;
  state.lifecycle = state_;
  state.transitions = transitions_;
  state.transitions_dropped = transitions_dropped_;
  state.clock = clock_;
  return state;
}

Status SafetySupervisor::RestoreState(const SupervisorState& state) {
  if (state.faults.size() != faults_.size() ||
      state.lifecycle.size() != state_.size()) {
    return InvalidArgumentError(
        "safety supervisor: snapshot sized for " +
        std::to_string(state.faults.size()) + " batteries, supervisor has " +
        std::to_string(faults_.size()));
  }
  faults_ = state.faults;
  state_ = state.lifecycle;
  transitions_ = state.transitions;
  transitions_dropped_ = state.transitions_dropped;
  clock_ = state.clock;
  return Status::Ok();
}

}  // namespace sdb

#include "src/hw/regulator.h"

#include <algorithm>

#include "src/util/check.h"

namespace sdb {

RegulatorModel::RegulatorModel(RegulatorConfig config) : config_(config) {
  SDB_CHECK(config_.quiescent.value() >= 0.0);
  SDB_CHECK(config_.proportional >= 0.0 && config_.proportional < 1.0);
  SDB_CHECK(config_.series_resistance.value() >= 0.0);
  SDB_CHECK(config_.reverse_penalty >= 1.0);
}

Power RegulatorModel::LossAt(Power output, Voltage bus_voltage, RegulatorMode mode) const {
  if (mode == RegulatorMode::kDisabled || output.value() <= 0.0) {
    return Watts(0.0);
  }
  double v = bus_voltage.value();
  SDB_CHECK(v > 0.0);
  double p = output.value();
  double i = p / v;
  double loss = config_.quiescent.value() + config_.proportional * p +
                config_.series_resistance.value() * i * i;
  if (mode == RegulatorMode::kReverseBuck) {
    loss *= config_.reverse_penalty;
  }
  return Watts(loss);
}

double RegulatorModel::EfficiencyAt(Power output, Voltage bus_voltage, RegulatorMode mode) const {
  double p = output.value();
  if (p <= 0.0) {
    return 0.0;
  }
  double loss = LossAt(output, bus_voltage, mode).value();
  return p / (p + loss);
}

Power RegulatorModel::InputFor(Power output, Voltage bus_voltage, RegulatorMode mode) const {
  return output + LossAt(output, bus_voltage, mode);
}

}  // namespace sdb

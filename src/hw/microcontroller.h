// The SDB microcontroller (paper §3, Fig. 3): the hardware-side endpoint of
// the four OS-facing APIs. Mechanism only — all policy lives in the
// OS-resident SDB Runtime (src/core), exactly the split the paper argues
// for: "we only implement the mechanisms in hardware, and all policies are
// managed and set by the OS."
//
// APIs (paper §3.3):
//   Charge(c1..cN)                  -> SetChargeRatios
//   Discharge(d1..dN)               -> SetDischargeRatios
//   ChargeOneFromAnother(X,Y,W,T)   -> ChargeOneFromAnother
//   QueryBatteryStatus()            -> QueryBatteryStatus
#ifndef SRC_HW_MICROCONTROLLER_H_
#define SRC_HW_MICROCONTROLLER_H_

#include <optional>
#include <vector>

#include "src/chem/pack.h"
#include "src/hw/charge_circuit.h"
#include "src/hw/discharge_circuit.h"
#include "src/hw/fault.h"
#include "src/hw/fuel_gauge.h"
#include "src/hw/safety.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

// What QueryBatteryStatus returns per battery — the paper lists state of
// charge, terminal voltage and cycle count; we add the capacity estimate the
// gauge derives. These are gauge *estimates*, not emulator ground truth.
struct BatteryStatus {
  double soc = 0.0;
  Voltage terminal_voltage;
  double cycle_count = 0.0;
  Charge full_capacity;
  Current last_current;
  Temperature temperature;  // Pack thermistor reading.
};

// Everything that happened during one hardware tick, for the simulator's
// energy ledger.
struct MicroTick {
  DischargeTick discharge;
  ChargeTick charge;
  TransferTick transfer;
  bool transfer_active = false;
  Duration dt;
};

// Complete volatile microcontroller + pack state for checkpoint/restore:
// ground-truth cell lanes, gauge estimators, circuit RNG streams, ratio
// tuples, the in-flight transfer, the reboot/resync latch and the fault
// injector's clock. Configuration (cell parameters, circuit configs, the
// fault *plan*) is not carried — a restore re-applies this state onto a
// freshly constructed rig built from the same config and seeds.
struct MicroState {
  std::vector<soa::LaneState> lanes;  // Per-cell ground truth.
  std::vector<bool> open_circuit;
  std::vector<FuelGaugeState> gauges;
  DischargeCircuitState discharge_circuit;
  ChargeCircuitState charge_circuit;
  std::vector<double> charge_ratios;
  std::vector<double> discharge_ratios;
  // Flattened std::optional<ActiveTransfer> (wire-friendly).
  bool transfer_active = false;
  uint64_t transfer_from = 0;
  uint64_t transfer_to = 0;
  Power transfer_power;
  Duration transfer_remaining;
  bool awaiting_resync = false;
  bool in_reset = false;
  uint32_t boot_count = 0;
  bool has_fault_state = false;  // False when no fault plan was installed.
  FaultInjectorState fault;
};

class SdbMicrocontroller {
 public:
  // Takes ownership of the pack. `seed` drives all measurement noise.
  SdbMicrocontroller(BatteryPack pack, DischargeCircuitConfig discharge_config,
                     ChargeCircuitConfig charge_config, FuelGaugeConfig gauge_config,
                     uint64_t seed);

  size_t battery_count() const { return pack_.size(); }

  // --- The four SDB APIs ----------------------------------------------------

  // Ratios must be non-negative and sum to 1 (tolerance 1e-6).
  Status SetChargeRatios(const std::vector<double>& ratios);
  Status SetDischargeRatios(const std::vector<double>& ratios);

  // Schedules a battery-to-battery transfer of `power` for `duration`; runs
  // during subsequent Step calls and stops early if the source empties or
  // the destination fills. A new call replaces any active transfer.
  Status ChargeOneFromAnother(size_t from, size_t to, Power power, Duration duration);

  std::vector<BatteryStatus> QueryBatteryStatus() const;

  // --- Auxiliary commands ---------------------------------------------------

  Status SelectChargeProfile(size_t battery, size_t profile_index);
  void CancelTransfer();

  // --- Watchdog / reboot model ----------------------------------------------
  //
  // A kMicroCrash or kMicroBrownout fault reboots the controller: the
  // in-flight transfer is dropped, the volatile ratio tuples reset to the
  // uniform safe default, and mutating commands are refused with
  // FailedPrecondition until the OS completes the resync handshake (Resync()
  // directly, or the sequence-numbered handshake over CommandLink).

  bool awaiting_resync() const { return awaiting_resync_; }
  // True while a brownout window holds the controller in reset: every
  // command (queries included) fails, while the power circuits keep running
  // the safe-default split.
  bool in_reset() const { return in_reset_; }
  // Increments on every reboot; the link server uses it to invalidate its
  // idempotent-replay cache across reboots.
  uint32_t boot_count() const { return boot_count_; }
  // Completes the resync handshake and re-opens the command surface.
  // Returns the boot counter the OS should record.
  uint32_t Resync();

  // Warm-restart hook: marks the controller as freshly power-cycled —
  // mutating commands are refused until Resync() — and bumps the boot
  // counter, WITHOUT resetting the ratio tuples or dropping the transfer
  // (unlike a watchdog Reboot(); the restore path reinstates those from the
  // snapshot and then completes the handshake itself).
  void RequireResync();

  // Attaches a protection supervisor (non-owning; must outlive the
  // microcontroller, or detach with nullptr). While attached, every tick's
  // per-battery outcome is inspected and faulted batteries are removed from
  // the charge/discharge splits until their faults clear.
  void AttachSafety(SafetySupervisor* supervisor) { safety_ = supervisor; }
  SafetySupervisor* safety() { return safety_; }
  bool transfer_active() const { return transfer_.has_value(); }

  // Installs a fault plan: the microcontroller owns the injector, advances
  // its clock once per Step, and re-attaches every fuel gauge to it.
  // Replaces any previously installed plan — pointers handed out by
  // fault_injector() before this call are invalidated.
  void InstallFaults(FaultPlan plan);

  // The active injector (nullptr when no plan is installed). Attach link
  // clients to this so wire faults share the plan's clock and RNG stream.
  FaultInjector* fault_injector() { return fault_.has_value() ? &*fault_ : nullptr; }

  const std::vector<double>& charge_ratios() const { return charge_ratios_; }
  const std::vector<double>& discharge_ratios() const { return discharge_ratios_; }

  // --- Simulation interface -------------------------------------------------

  // Advances the hardware one tick: external supply (if any) feeds the load
  // first and the surplus charges the pack per the charge ratios; any load
  // not covered by the supply is drawn from the pack per the discharge
  // ratios; an active transfer runs on top.
  MicroTick Step(Power load, Power external_supply, Duration dt);

  // Ground-truth access for the emulator and tests (not visible to the OS).
  const BatteryPack& pack() const { return pack_; }
  BatteryPack& mutable_pack() { return pack_; }

  // Checkpoint/restore of the full volatile state (see MicroState). Restore
  // rejects snapshots whose arity does not match this controller's pack, or
  // whose fault-injector state does not match the installed plan; it must be
  // called on a rig built from the same configuration and seeds.
  MicroState SaveState() const;
  Status RestoreState(const MicroState& state);

 private:
  struct ActiveTransfer {
    size_t from;
    size_t to;
    Power power;
    Duration remaining;
  };

  Status ValidateRatios(const std::vector<double>& ratios) const;
  // Refuses mutating commands while in reset or awaiting resync.
  Status CheckCommandGate() const;
  // Watchdog reboot: drops in-flight commands, resets volatile state to the
  // safe defaults and demands a resync before new commands are accepted.
  void Reboot();
  // Zeroes faulted batteries' shares and renormalises (all-zero when every
  // battery is faulted); caps probing batteries at the supervisor's probe
  // share, spilling the excess onto the unconstrained batteries.
  std::vector<double> MaskFaulted(const std::vector<double>& ratios) const;

  BatteryPack pack_;
  SdbDischargeCircuit discharge_circuit_;
  SdbChargeCircuit charge_circuit_;
  std::vector<FuelGauge> gauges_;
  std::vector<double> charge_ratios_;
  std::vector<double> discharge_ratios_;
  std::optional<ActiveTransfer> transfer_;
  SafetySupervisor* safety_ = nullptr;
  std::optional<FaultInjector> fault_;
  bool awaiting_resync_ = false;
  bool in_reset_ = false;
  uint32_t boot_count_ = 0;
};

// Convenience: builds a microcontroller with default circuit/gauge configs
// over the given cells.
SdbMicrocontroller MakeDefaultMicrocontroller(std::vector<Cell> cells, uint64_t seed = 42);

}  // namespace sdb

#endif  // SRC_HW_MICROCONTROLLER_H_

#include "src/hw/fuel_gauge.h"

#include <cmath>

#include "src/hw/fault.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

FuelGauge::FuelGauge(FuelGaugeConfig config, uint64_t seed, double initial_soc_estimate)
    : config_(config), rng_(seed), soc_estimate_(Clamp(initial_soc_estimate, 0.0, 1.0)) {
  SDB_CHECK(config_.current_lsb.value() >= 0.0);
  SDB_CHECK(config_.voltage_lsb.value() >= 0.0);
  SDB_CHECK(config_.current_noise.value() >= 0.0);
}

double FuelGauge::Quantise(double value, double lsb) const {
  if (lsb <= 0.0) {
    return value;
  }
  return std::round(value / lsb) * lsb;
}

void FuelGauge::Observe(Current true_current, Voltage true_voltage, Charge true_capacity,
                        Duration dt) {
  double dt_s = dt.value();
  SDB_CHECK(dt_s > 0.0);
  if (fault_ != nullptr && fault_->GaugeStuck(battery_)) {
    // A stuck gauge freezes its readings and its integrator; the skipped
    // RNG draw is fine — the stream stays a pure function of the plan.
    return;
  }
  double sigma = config_.current_noise.value();
  if (fault_ != nullptr) {
    sigma *= fault_->GaugeNoiseScale(battery_);
  }
  double noisy_i = true_current.value() + rng_.Gaussian(0.0, sigma);
  last_current_ = Amps(Quantise(noisy_i, config_.current_lsb.value()));
  last_voltage_ = Volts(Quantise(true_voltage.value(), config_.voltage_lsb.value()));

  double cap = true_capacity.value();
  SDB_CHECK(cap > 0.0);
  double delta = last_current_.value() * dt_s / cap;
  double drift = config_.soc_drift_per_hour * ToHours(dt);
  soc_estimate_ = Clamp(soc_estimate_ - delta - drift, 0.0, 1.0);
}

double FuelGauge::EstimatedSoc() const {
  if (fault_ == nullptr) {
    return soc_estimate_;
  }
  return Clamp(soc_estimate_ + fault_->GaugeSocBias(battery_), 0.0, 1.0);
}

void FuelGauge::AnchorSoc(double soc) {
  if (fault_ != nullptr && fault_->GaugeStuck(battery_)) {
    return;
  }
  soc_estimate_ = Clamp(soc, 0.0, 1.0);
}

void FuelGauge::AttachFaultInjector(const FaultInjector* injector, size_t battery) {
  fault_ = injector;
  battery_ = battery;
}

FuelGaugeState FuelGauge::SaveState() const {
  FuelGaugeState state;
  state.rng = rng_.SaveState();
  state.soc_estimate = soc_estimate_;
  state.last_current = last_current_;
  state.last_voltage = last_voltage_;
  return state;
}

void FuelGauge::RestoreState(const FuelGaugeState& state) {
  rng_.RestoreState(state.rng);
  soc_estimate_ = state.soc_estimate;
  last_current_ = state.last_current;
  last_voltage_ = state.last_voltage;
}

}  // namespace sdb

// Per-battery fuel gauge: a coulomb counter plus voltage/current sensing
// with realistic quantisation and noise (paper §2.2; the prototype used a
// custom coulomb-counter module, Fig. 7).
//
// The SDB runtime sees *estimates* from this gauge, never the emulator's
// ground truth — policies must tolerate measurement error, and the
// fuel-gauge ablation bench quantifies how much error they tolerate.
#ifndef SRC_HW_FUEL_GAUGE_H_
#define SRC_HW_FUEL_GAUGE_H_

#include "src/chem/cell.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace sdb {

class FaultInjector;

struct FuelGaugeConfig {
  Current current_lsb = Amps(0.001);     // Current ADC quantisation step.
  Voltage voltage_lsb = Volts(0.002);    // Voltage ADC quantisation step.
  Current current_noise = Amps(0.0005);  // Gaussian sensing noise (1 sigma).
  double soc_drift_per_hour = 0.0;       // Integrator drift (fraction of capacity).
};

// Complete mutable gauge state for checkpoint/restore: the noise stream and
// the integrator resume bit-identically.
struct FuelGaugeState {
  RngState rng;
  double soc_estimate = 0.0;
  Current last_current;
  Voltage last_voltage;
};

class FuelGauge {
 public:
  FuelGauge(FuelGaugeConfig config, uint64_t seed, double initial_soc_estimate);

  // Feeds one tick's true current (discharge positive) and the true terminal
  // voltage; the gauge quantises, adds noise and integrates.
  void Observe(Current true_current, Voltage true_voltage, Charge true_capacity, Duration dt);

  // Latest estimates. EstimatedSoc folds in any injected bias.
  double EstimatedSoc() const;
  Current MeasuredCurrent() const { return last_current_; }
  Voltage MeasuredVoltage() const { return last_voltage_; }

  // Re-anchors the integrator (e.g. at a charge-complete event, like real
  // gauges re-learning full capacity).
  void AnchorSoc(double soc);

  // Attaches the fault injector (non-owning; detach with nullptr) and this
  // gauge's battery index within the pack. While attached, Observe and
  // EstimatedSoc consult the injector for bias/noise/stuck windows.
  void AttachFaultInjector(const FaultInjector* injector, size_t battery);

  // Checkpoint/restore of everything mutable (attachments excluded).
  FuelGaugeState SaveState() const;
  void RestoreState(const FuelGaugeState& state);

 private:
  double Quantise(double value, double lsb) const;

  FuelGaugeConfig config_;
  Rng rng_;
  double soc_estimate_;
  Current last_current_;
  Voltage last_voltage_;
  const FaultInjector* fault_ = nullptr;
  size_t battery_ = 0;
};

}  // namespace sdb

#endif  // SRC_HW_FUEL_GAUGE_H_

#include "src/hw/acpi.h"

#include <cmath>

#include "src/util/check.h"

namespace sdb {

namespace {

uint32_t ToMilliWattHours(double joules) {
  return static_cast<uint32_t>(std::lround(joules / 3.6));
}

}  // namespace

AcpiBatteryDevice::AcpiBatteryDevice(const TraditionalPmic* pmic, std::string model)
    : pmic_(pmic), model_(std::move(model)) {
  SDB_CHECK(pmic_ != nullptr);
}

AcpiBatteryInformation AcpiBatteryDevice::ReadBif() const {
  AcpiBatteryInformation bif;
  AcpiBatteryInfo info = pmic_->Query();

  // Energy figures from charge x nominal voltage, as firmware reports them.
  double v_nominal = 0.0;
  double design_j = 0.0;
  double full_j = 0.0;
  const BatteryPack& pack = pmic_->pack();
  for (size_t i = 0; i < pack.size(); ++i) {
    const BatteryParams& p = pack.cell(i).params();
    v_nominal += p.nominal_voltage.value();
    design_j += p.NominalEnergy().value();
    full_j += pack.cell(i).EffectiveCapacity().value() * p.nominal_voltage.value();
  }
  v_nominal /= static_cast<double>(pack.size());

  bif.design_capacity_mwh = ToMilliWattHours(design_j);
  bif.last_full_charge_capacity_mwh = ToMilliWattHours(full_j);
  bif.design_voltage_mv = static_cast<uint32_t>(std::lround(v_nominal * 1000.0));
  bif.design_capacity_warning_mwh = bif.design_capacity_mwh / 10;
  bif.design_capacity_low_mwh = bif.design_capacity_mwh * 4 / 100;
  bif.cycle_count = static_cast<uint32_t>(info.cycle_count);
  bif.model_number = model_;
  return bif;
}

AcpiBatteryStatus AcpiBatteryDevice::ReadBst(const PmicTick& last_tick) const {
  AcpiBatteryStatus bst;
  AcpiBatteryInfo info = pmic_->Query();

  double remaining_j = 0.0;
  const BatteryPack& pack = pmic_->pack();
  for (size_t i = 0; i < pack.size(); ++i) {
    remaining_j += pack.cell(i).RemainingCharge().value() *
                   pack.cell(i).params().nominal_voltage.value();
  }
  bst.remaining_capacity_mwh = ToMilliWattHours(remaining_j);
  bst.present_voltage_mv = static_cast<uint32_t>(std::lround(info.voltage.value() * 1000.0));

  if (last_tick.charging) {
    bst.state |= kAcpiCharging;
  } else if (last_tick.delivered.value() > 0.0) {
    bst.state |= kAcpiDischarging;
  }
  if (info.soc < 0.04) {
    bst.state |= kAcpiCritical;
  }
  double rate_w = last_tick.charging ? last_tick.delivered.value()
                                     : std::fabs(last_tick.delivered.value());
  bst.present_rate_mw = static_cast<uint32_t>(std::lround(rate_w * 1000.0));
  return bst;
}

}  // namespace sdb

#include "src/hw/charge_profile.h"

#include <algorithm>

#include "src/util/check.h"

namespace sdb {

Current ChargeProfile::CommandedCurrent(const Cell& cell) const {
  if (cell.IsFull()) {
    return Amps(0.0);
  }
  double setpoint = cc_current.value();

  // CV phase: cap the current so the terminal voltage does not exceed the CV
  // target. Charging terminal voltage is approximately OCV + J * R0.
  double ocv = cell.OpenCircuitVoltage().value();
  double r0 = cell.InternalResistance().value();
  double headroom_v = cv_voltage.value() - ocv;
  if (headroom_v <= 0.0) {
    return Amps(0.0);
  }
  double j_cv = headroom_v / r0;
  setpoint = std::min(setpoint, j_cv);

  // High-SoC taper (paper: high currents damage the anode beyond ~80% SoC).
  if (cell.soc() >= taper_soc) {
    setpoint = std::min(setpoint, taper_current.value());
  }

  setpoint = std::min(setpoint, cell.params().max_charge_current.value());
  if (setpoint <= termination_current.value()) {
    return Amps(0.0);
  }
  return Amps(setpoint);
}

ChargeProfile MakeStandardProfile(const BatteryParams& params, double cc_fraction) {
  SDB_CHECK(cc_fraction > 0.0 && cc_fraction <= 1.0);
  ChargeProfile profile;
  profile.name = "standard";
  profile.cc_current = Amps(params.max_charge_current.value() * cc_fraction);
  profile.cv_voltage = params.charge_cutoff_voltage;
  profile.taper_soc = 0.80;
  profile.taper_current = Amps(std::min(params.max_charge_current.value() * 0.4,
                                        params.CRate(0.3).value()));
  profile.termination_current = params.CRate(0.02);
  return profile;
}

ChargeProfile MakeGentleProfile(const BatteryParams& params) {
  ChargeProfile profile = MakeStandardProfile(params, 0.5);
  profile.name = "gentle";
  profile.taper_soc = 0.70;
  profile.taper_current = params.CRate(0.15);
  return profile;
}

ChargeProfile MakeStorageProfile(const BatteryParams& params) {
  ChargeProfile profile = MakeStandardProfile(params, 0.3);
  profile.name = "storage";
  // CV at the ~60%-SoC open-circuit voltage: charging stops there.
  profile.cv_voltage = Volts(params.ocv_vs_soc.Evaluate(0.6));
  profile.taper_soc = 0.5;
  profile.taper_current = params.CRate(0.1);
  return profile;
}

ChargeProfileBank::ChargeProfileBank(std::vector<ChargeProfile> profiles)
    : profiles_(std::move(profiles)) {
  SDB_CHECK(!profiles_.empty());
}

const ChargeProfile& ChargeProfileBank::profile(size_t index) const {
  SDB_CHECK(index < profiles_.size());
  return profiles_[index];
}

Status ChargeProfileBank::Select(size_t index) {
  if (index >= profiles_.size()) {
    return OutOfRangeError("charge profile index out of range");
  }
  selected_ = index;
  return Status::Ok();
}

}  // namespace sdb

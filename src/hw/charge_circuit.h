// The SDB charging circuit (paper §3.2.2, Fig. 4c right): one synchronous
// reversible buck regulator per battery — O(N) instead of the naive O(N^2)
// regulator mesh — supporting:
//   * proportional charging of all batteries from an external supply,
//   * per-battery dynamic charge profiles (selected by the microcontroller),
//   * battery-to-battery transfer by running the source's regulator in
//     reverse-buck mode and the sink's in buck mode.
//
// Loss and setpoint-accuracy behaviour is calibrated to the prototype
// microbenchmarks: ~94-99% of the charger chip's typical efficiency across
// 0.8-2.2 A (Fig. 6c) and <= 0.5% charge-current setpoint error (Fig. 6d).
#ifndef SRC_HW_CHARGE_CIRCUIT_H_
#define SRC_HW_CHARGE_CIRCUIT_H_

#include <vector>

#include "src/chem/pack.h"
#include "src/hw/charge_profile.h"
#include "src/hw/regulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace sdb {

struct ChargeCircuitConfig {
  // Loss terms calibrated to Fig. 6(c): ~100% of typical efficiency at
  // 0.8 A falling to ~94% at 2.2 A.
  RegulatorConfig regulator{.quiescent = Watts(0.008),
                            .proportional = 0.006,
                            .series_resistance = Ohms(0.15),
                            .reverse_penalty = 1.35,
                            .typical_efficiency = 0.97};
  // Charge-current setpoint error bounds (fraction of setpoint, Fig. 6d):
  // worst at very low currents where the sense resistor signal is small.
  double setpoint_error_high_current = 0.0008;
  double setpoint_error_low_current = 0.0050;
  Current low_current_knee = Amps(0.5);
  // Battery-to-battery transfers run over the charger's input rail (the
  // "power in" node of Fig. 4c), which sits well above cell voltage, so the
  // regulator stages see proportionally less current.
  Voltage transfer_rail = Volts(6.0);
};

// Mutable circuit state for checkpoint/restore: the setpoint-error noise
// stream and the per-battery profile selections.
struct ChargeCircuitState {
  RngState rng;
  std::vector<uint64_t> selected_profiles;  // One index per battery.
};

struct ChargeTick {
  Power supply_offered;            // External power made available.
  Power absorbed;                  // Total power into battery terminals.
  Power supply_used;               // Drawn from the external source.
  Energy circuit_loss;             // Regulator losses.
  Energy battery_loss;             // Resistive losses inside batteries.
  std::vector<Current> currents;   // Per battery (negative = charging).
  bool any_charging = false;
};

struct TransferTick {
  Energy moved;          // Into the destination battery's terminals.
  Energy drawn;          // Out of the source battery's terminals.
  Energy circuit_loss;   // Two regulator stages.
  Energy battery_loss;   // Source + destination internal losses.
  bool source_exhausted = false;
  bool destination_full = false;
};

class SdbChargeCircuit {
 public:
  // Builds one regulator stage + profile bank (standard, gentle) per cell of
  // `pack_size` batteries described by `params`.
  SdbChargeCircuit(ChargeCircuitConfig config, const std::vector<const BatteryParams*>& params,
                   uint64_t seed);

  size_t battery_count() const { return banks_.size(); }

  // Charge-profile selection (paper Fig. 4 "charging profile select").
  Status SelectProfile(size_t battery, size_t profile_index);
  const ChargeProfileBank& bank(size_t battery) const;

  // Splits `supply` across the pack in proportion to `shares`, each battery
  // limited by its selected charge profile; surplus spills to batteries that
  // still accept charge. Returns what actually happened.
  ChargeTick Step(BatteryPack& pack, const std::vector<double>& shares, Power supply,
                  Duration dt);

  // Moves `power` from battery `from` to battery `to` for one tick
  // (ChargeOneFromAnother's per-tick workhorse).
  TransferTick StepTransfer(BatteryPack& pack, size_t from, size_t to, Power power, Duration dt);

  // The setpoint error envelope at a commanded current (Fig. 6d).
  double SetpointErrorEnvelope(Current setpoint) const;

  // End-to-end charging efficiency as a fraction of the chip's datasheet
  // "typical" value (Fig. 6c's y-axis).
  double EfficiencyVsTypical(Current charge_current, Voltage bus) const;

  const ChargeCircuitConfig& config() const { return config_; }

  ChargeCircuitState SaveState() const;
  // Restore aborts (SDB_CHECK) when the battery count disagrees; profile
  // indices are validated through the banks' own Select.
  Status RestoreState(const ChargeCircuitState& state);

 private:
  ChargeCircuitConfig config_;
  RegulatorModel regulator_;
  std::vector<ChargeProfileBank> banks_;
  Rng rng_;
};

}  // namespace sdb

#endif  // SRC_HW_CHARGE_CIRCUIT_H_

#include "src/obs/trace.h"

#include <chrono>

namespace sdb {
namespace obs {

namespace {

constexpr size_t kDefaultCapacity = 65536;

thread_local double tls_sim_time_s = -1.0;

std::atomic<uint32_t> next_trace_tid{0};
thread_local uint32_t tls_trace_tid = 0;
thread_local bool tls_trace_tid_set = false;

}  // namespace

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void SetSimTime(Duration sim_time) { tls_sim_time_s = sim_time.value(); }

void ClearSimTime() { tls_sim_time_s = -1.0; }

double CurrentSimTimeSeconds() { return tls_sim_time_s; }

uint32_t CurrentTraceTid() {
  if (!tls_trace_tid_set) {
    tls_trace_tid = next_trace_tid.fetch_add(1, std::memory_order_relaxed);
    tls_trace_tid_set = true;
  }
  return tls_trace_tid;
}

Tracer::Tracer() : events_(kDefaultCapacity) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  // Preserve the newest spans that still fit and account the rest as drops,
  // so recorded() - dropped() continues to equal the buffered span count
  // across a mid-trace resize.
  RingBuffer<TraceEvent> resized(capacity);
  size_t keep = events_.size() < capacity ? events_.size() : capacity;
  size_t evicted = events_.size() - keep;
  for (size_t i = evicted; i < events_.size(); ++i) {
    resized.Push(events_.At(i));
  }
  if (evicted > 0) {
    dropped_.fetch_add(evicted, std::memory_order_relaxed);
  }
  events_ = std::move(resized);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.Clear();
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.full()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  events_.Push(event);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_.At(i));
  }
  return out;
}

}  // namespace obs
}  // namespace sdb

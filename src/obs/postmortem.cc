#include "src/obs/postmortem.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.h"

namespace sdb {
namespace obs {

namespace {

std::string WriteFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return "cannot open " + path.string();
  }
  out << content;
  if (!out) {
    return "short write to " + path.string();
  }
  return "";
}

// Field extraction over our own single-line manifest JSON; same tolerance
// rules as EventFromJsonl (missing fields keep their defaults).
bool FindManifestString(const std::string& text, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  pos += needle.size();
  size_t end = pos;
  while (end < text.size() && !(text[end] == '"' && text[end - 1] != '\\')) {
    ++end;
  }
  if (end >= text.size()) {
    return false;
  }
  std::string raw = text.substr(pos, end - pos);
  // The manifest only escapes quotes/backslashes in practice; unescape both.
  std::string plain;
  plain.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      plain.push_back(raw[++i]);
    } else {
      plain.push_back(raw[i]);
    }
  }
  *out = plain;
  return true;
}

bool FindManifestNumber(const std::string& text, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

std::string DigestConfig(const std::string& config_text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : config_text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

std::string GitShaForManifest() {
  for (const char* var : {"SDB_GIT_SHA", "GITHUB_SHA"}) {
    const char* sha = std::getenv(var);
    if (sha != nullptr && sha[0] != '\0') {
      return sha;
    }
  }
  return "unknown";
}

std::string ManifestToJson(const PostmortemManifest& manifest) {
  std::ostringstream os;
  os << "{\"tool\":\"" << JsonEscape(manifest.tool) << "\""
     << ",\"trigger\":\"" << JsonEscape(manifest.trigger) << "\""
     << ",\"git_sha\":\"" << JsonEscape(manifest.git_sha) << "\""
     << ",\"seed\":" << manifest.seed << ",\"jobs\":" << manifest.jobs
     << ",\"config_digest\":\"" << JsonEscape(manifest.config_digest) << "\""
     << ",\"reproducer\":\"" << JsonEscape(manifest.reproducer) << "\"}";
  return os.str();
}

std::string WritePostmortemBundle(const std::string& dir,
                                  const PostmortemManifest& manifest,
                                  const std::vector<JournalEvent>& events,
                                  const std::string& metrics_json,
                                  size_t last_n) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return "cannot create bundle directory " + dir + ": " + ec.message();
  }
  std::filesystem::path root(dir);
  if (std::string err = WriteFile(root / "manifest.json", ManifestToJson(manifest) + "\n");
      !err.empty()) {
    return err;
  }
  std::ostringstream lines;
  size_t start = events.size() > last_n ? events.size() - last_n : 0;
  for (size_t i = start; i < events.size(); ++i) {
    lines << EventToJsonl(events[i]) << "\n";
  }
  if (std::string err = WriteFile(root / "events.jsonl", lines.str()); !err.empty()) {
    return err;
  }
  if (std::string err = WriteFile(root / "metrics.json", metrics_json + "\n");
      !err.empty()) {
    return err;
  }
  if (!manifest.reproducer.empty()) {
    if (std::string err = WriteFile(root / "reproducer.txt", manifest.reproducer + "\n");
        !err.empty()) {
      return err;
    }
  }
  return "";
}

std::string ReadPostmortemManifest(const std::string& dir, PostmortemManifest* manifest) {
  std::ifstream in(std::filesystem::path(dir) / "manifest.json");
  if (!in) {
    return "cannot open " + dir + "/manifest.json";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // Structural sanity before field extraction: the manifest is one JSON
  // object. An empty or non-object file is a corrupt bundle, not a manifest
  // with defaults.
  size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || text[first] != '{') {
    return dir + "/manifest.json is not a JSON object (corrupt bundle?)";
  }
  PostmortemManifest parsed;
  std::string missing;
  auto require_string = [&](const char* key, std::string* out) {
    if (!FindManifestString(text, key, out)) {
      missing += std::string(missing.empty() ? "" : ", ") + key;
    }
  };
  require_string("tool", &parsed.tool);
  require_string("trigger", &parsed.trigger);
  require_string("config_digest", &parsed.config_digest);
  // Optional fields keep their defaults (a reproducer only exists for fuzz).
  FindManifestString(text, "git_sha", &parsed.git_sha);
  FindManifestString(text, "reproducer", &parsed.reproducer);
  double seed = 0.0;
  double jobs = 1.0;
  if (!FindManifestNumber(text, "seed", &seed)) {
    missing += std::string(missing.empty() ? "" : ", ") + "seed";
  }
  if (!FindManifestNumber(text, "jobs", &jobs)) {
    missing += std::string(missing.empty() ? "" : ", ") + "jobs";
  }
  if (!missing.empty()) {
    return dir + "/manifest.json is missing key(s): " + missing +
           " (corrupt or foreign bundle)";
  }
  parsed.seed = static_cast<uint64_t>(seed);
  parsed.jobs = static_cast<int>(jobs);
  *manifest = std::move(parsed);
  return "";
}

std::string ReadPostmortemEvents(const std::string& dir,
                                 std::vector<JournalEvent>* events, size_t* skipped) {
  std::ifstream in(std::filesystem::path(dir) / "events.jsonl");
  if (!in) {
    return "cannot open " + dir + "/events.jsonl";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // A well-formed journal ends with a newline; a file cut mid-line is a
  // torn write (crash, full disk) and its tail is not trustworthy.
  bool torn_tail = !text.empty() && text.back() != '\n';
  events->clear();
  size_t bad = 0;
  size_t lines = 0;
  bool last_parsed = true;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    JournalEvent event;
    last_parsed = EventFromJsonl(line, &event);
    if (last_parsed) {
      events->push_back(std::move(event));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) {
    *skipped = bad;
  }
  if (torn_tail && !last_parsed) {
    return dir + "/events.jsonl ends mid-line (truncated write); " +
           std::to_string(events->size()) + " event(s) recovered before the tear";
  }
  if (lines > 0 && events->empty()) {
    return dir + "/events.jsonl has no parseable event lines (" +
           std::to_string(bad) + " malformed)";
  }
  return "";
}

}  // namespace obs
}  // namespace sdb

#include "src/obs/timeline.h"

#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace sdb {
namespace obs {

Timeline::Timeline(double period_s) : period_s_(period_s) {
  SDB_CHECK(period_s > 0.0);
}

bool Timeline::Due(double t_s) const {
  return times_.empty() || t_s >= next_t_s_;
}

void Timeline::Sample(double t_s, const std::vector<std::pair<std::string, double>>& row) {
  if (columns_.empty()) {
    columns_.reserve(row.size());
    for (const auto& [name, value] : row) {
      (void)value;
      columns_.push_back(name);
    }
  }
  std::vector<double> values(columns_.size(), 0.0);
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (const auto& [name, value] : row) {
      if (name == columns_[i]) {
        values[i] = value;
        break;
      }
    }
  }
  times_.push_back(t_s);
  rows_.push_back(std::move(values));
  next_t_s_ = t_s + period_s_;
}

std::string Timeline::ToCsv() const {
  std::ostringstream os;
  os << "t_s";
  for (const std::string& name : columns_) {
    os << "," << name;
  }
  os << "\n";
  for (size_t i = 0; i < times_.size(); ++i) {
    os << JsonNumber(times_[i]);
    for (double v : rows_[i]) {
      os << "," << JsonNumber(v);
    }
    os << "\n";
  }
  return os.str();
}

std::string Timeline::ToJson() const {
  std::ostringstream os;
  os << "{\"period_s\":" << JsonNumber(period_s_) << ",\"columns\":[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\"" << JsonEscape(columns_[i]) << "\"";
  }
  os << "],\"t_s\":[";
  for (size_t i = 0; i < times_.size(); ++i) {
    os << (i == 0 ? "" : ",") << JsonNumber(times_[i]);
  }
  os << "],\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    os << (i == 0 ? "" : ",") << "[";
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      os << (j == 0 ? "" : ",") << JsonNumber(rows_[i][j]);
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

void Timeline::Clear() {
  next_t_s_ = 0.0;
  columns_.clear();
  times_.clear();
  rows_.clear();
}

}  // namespace obs
}  // namespace sdb

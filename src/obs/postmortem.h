// Post-mortem bundle writer/reader: when a run trips something worth a
// flight-recorder dump (soak invariant violation, fuzz oracle failure,
// safety trip, SDB_CHECK failure — or unconditionally via --flight-out), the
// harness writes a small directory:
//
//   <dir>/manifest.json    run manifest: tool, trigger, seed, git sha,
//                          config digest, jobs, reproducer
//   <dir>/events.jsonl     last-N journal events, one JSON object per line
//   <dir>/metrics.json     MetricsRegistry snapshot (ToJson) at dump time
//   <dir>/reproducer.txt   the one-line fuzz reproducer (fuzz runs only)
//
// Everything except metrics.json is derived from deterministic inputs, so a
// bundle produced from the same seed is byte-identical across runs and
// across --jobs (`sdbsim blackbox` renders and filters one).
//
// This layer sits below sdb_util (no sdb::Status available), so fallible
// calls return an error message string — empty means success.
#ifndef SRC_OBS_POSTMORTEM_H_
#define SRC_OBS_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/event.h"

namespace sdb {
namespace obs {

// Everything needed to attribute a bundle to one run.
struct PostmortemManifest {
  std::string tool;              // "sdbsim fuzz", "sdbsim soak", ...
  std::string trigger = "none";  // "fuzz-oracle", "soak-violation",
                                 // "safety-trip", "check-failure", "none".
  std::string git_sha = "unknown";
  uint64_t seed = 0;
  int jobs = 1;
  std::string config_digest;  // DigestConfig over the flag/config string.
  std::string reproducer;     // One-line fuzz reproducer ("" when n/a).
};

// FNV-1a over `config_text`, rendered as 16 hex digits — the manifest's
// config digest. Deterministic, layout-independent.
std::string DigestConfig(const std::string& config_text);

// Build identifier: SDB_GIT_SHA env, else GITHUB_SHA, else "unknown".
std::string GitShaForManifest();

// Single-line JSON form of the manifest (fixed field order).
std::string ManifestToJson(const PostmortemManifest& manifest);

// Writes the bundle into `dir` (created, parents included, if missing):
// manifest.json, events.jsonl (the newest `last_n` of `events`),
// metrics.json (verbatim `metrics_json`), and reproducer.txt when the
// manifest carries a reproducer. Returns "" on success, else a message.
std::string WritePostmortemBundle(const std::string& dir,
                                  const PostmortemManifest& manifest,
                                  const std::vector<JournalEvent>& events,
                                  const std::string& metrics_json,
                                  size_t last_n = 256);

// Readers for `sdbsim blackbox`. The manifest must be a JSON object with
// the required keys (tool, trigger, seed, jobs, config_digest) — anything
// else is reported as a corrupt bundle, not silently defaulted; git_sha and
// reproducer stay optional. Interior event lines that fail to parse are
// skipped (count via *skipped when non-null), but a file that ends mid-line
// (torn write) or holds no parseable line at all is an error. Both return
// "" on success, else a message.
std::string ReadPostmortemManifest(const std::string& dir,
                                   PostmortemManifest* manifest);
std::string ReadPostmortemEvents(const std::string& dir,
                                 std::vector<JournalEvent>* events,
                                 size_t* skipped = nullptr);

}  // namespace obs
}  // namespace sdb

#endif  // SRC_OBS_POSTMORTEM_H_

#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace sdb {
namespace obs {

namespace {

// Prometheus metric names only allow [a-zA-Z0-9_:]; our "sdb.layer.noun"
// naming doctrine uses dots, so the text exporter maps every other
// character to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!valid) {
      c = '_';
    }
  }
  return out;
}

}  // namespace

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), counts_(upper_bounds_.size() + 1) {
  SDB_CHECK(!upper_bounds_.empty());
  SDB_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void HistogramMetric::Observe(double v) {
  // The first bound >= v is the "le" bucket; past-the-end is the overflow
  // bucket.
  size_t bucket =
      static_cast<size_t>(std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v) -
                          upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t HistogramMetric::bucket_count(size_t i) const {
  SDB_CHECK(i < counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

void HistogramMetric::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(std::move(upper_bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.upper_bounds = histogram->upper_bounds();
    h.counts.reserve(h.upper_bounds.size() + 1);
    for (size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      h.counts.push_back(histogram->bucket_count(i));
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    os << PromName(name) << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << PromName(name) << " " << JsonNumber(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    // Prometheus histogram form: `_bucket` lines carry *cumulative* counts,
    // the "+Inf" bucket equals `_count`, and `_sum`/`_count` close out the
    // series.
    std::string prom = PromName(name);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << prom << "_bucket{le=\"" << JsonNumber(h.upper_bounds[i]) << "\"} " << cumulative
         << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << prom << "_sum " << JsonNumber(h.sum) << "\n";
    os << prom << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << JsonNumber(value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":{\"upper_bounds\":[";
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      os << (i == 0 ? "" : ",") << JsonNumber(h.upper_bounds[i]);
    }
    os << "],\"counts\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      os << (i == 0 ? "" : ",") << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << JsonNumber(h.sum) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace obs
}  // namespace sdb

// The process-wide metrics registry: named counters, gauges and
// fixed-bucket histograms behind lock-cheap handles.
//
// Registration (name -> handle) takes the registry mutex once; after that
// every Increment/Set/Observe is a relaxed atomic on the handle, so hot
// paths (runtime updates, sweep shards, link roundtrips) can report without
// contending. Handles are stable for the life of the process: re-registering
// a name returns the same handle, so value history survives re-registration.
//
// Naming doctrine (DESIGN.md §8): "sdb.<layer>.<noun>[_unit]", e.g.
// "sdb.runtime.link_retries", "sdb.sweep.wall_s". Counters count events,
// gauges carry accumulated or last-set doubles (suffix the unit), histograms
// bucket a distribution under fixed, registration-time bounds.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sdb {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A double that can be set outright or accumulated (for totals like
// seconds-of-backoff that are not integer event counts).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `upper_bounds` (ascending) define the buckets at
// registration time; an implicit overflow bucket catches everything above
// the last bound. Observations are relaxed atomics, so concurrent shards
// can fill the same histogram and the totals stay exact (bucket counts are
// order-independent).
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Bucket i counts observations <= upper_bounds[i]; the final entry is the
  // overflow bucket.
  uint64_t bucket_count(size_t i) const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // upper_bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;  // One per bound, plus the overflow bucket.
  uint64_t count = 0;
  double sum = 0.0;
};

// Point-in-time copy of every registered metric, keyed by name (ordered, so
// exports are deterministic given the same registrations).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every subsystem reports through.
  static MetricsRegistry& Global();

  // Idempotent: the first call for a name creates the metric, later calls
  // return the same handle (value history included). Names are namespaced
  // per metric kind; registering "x" as both a counter and a gauge is two
  // metrics. Handles stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `upper_bounds` only applies on first registration; later calls return
  // the existing histogram unchanged.
  HistogramMetric* GetHistogram(const std::string& name, std::vector<double> upper_bounds);

  MetricsSnapshot Snapshot() const;

  // Prometheus text exporter, one metric per line ("name value") with names
  // escaped to [a-zA-Z0-9_:] (dots become underscores); histograms expand to
  // cumulative `name_bucket{le="..."}` lines where the "+Inf" bucket equals
  // `name_count`, followed by `name_sum` and `name_count`.
  std::string ToText() const;
  // JSON exporter: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  // Zeroes every registered metric, keeping registrations (and handed-out
  // handles) intact. For tests and for bench harnesses that want a clean
  // window; production code never resets.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

// Escapes a string for embedding in a JSON string literal (shared by the
// metrics and trace exporters).
std::string JsonEscape(std::string_view s);

// Formats a double for JSON/text export: shortest round-trippable form,
// with non-finite values clamped to 0 (JSON has no NaN/inf).
std::string JsonNumber(double v);

}  // namespace obs
}  // namespace sdb

#endif  // SRC_OBS_METRICS_H_

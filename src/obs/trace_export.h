// Chrome trace-event JSON exporter: turns the tracer's span buffer into a
// file loadable by Perfetto (https://ui.perfetto.dev) or chrome://tracing.
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <ostream>

#include "src/obs/trace.h"

namespace sdb {
namespace obs {

// Writes the tracer's buffered spans as complete ("ph":"X") trace events.
// Timestamps/durations are wall microseconds (the only monotonic axis shared
// by every layer); each event carries the simulated time at which it closed
// as args.sim_t_s (absent when the span ran outside a simulated timeline).
// Events are emitted sorted by (wall_start, tid) so output is stable for a
// given buffer.
void ExportChromeTrace(const Tracer& tracer, std::ostream& os);

}  // namespace obs
}  // namespace sdb

#endif  // SRC_OBS_TRACE_EXPORT_H_

#include "src/obs/event.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sdb {
namespace obs {

namespace {

thread_local EventJournal* tls_journal = nullptr;

// The taxonomy in declaration order; indexed by the enum value.
constexpr const char* kKindNames[] = {
    "fault-injected", "fault-cleared",  "safety-trip",      "lifecycle",
    "quarantine",     "reintegrate",    "resync",           "micro-reboot",
    "micro-brownout", "directive-change", "policy-decision", "degraded-enter",
    "degraded-exit",  "oracle-verdict", "sim-event",        "circuit-event",
    "check-failure",  "checkpoint-save", "checkpoint-restore",
    "corruption-detected",
};
constexpr size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

// Reverses JsonEscape for the escapes it produces. Unknown escapes pass
// through verbatim so a hand-edited bundle still loads.
std::string JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    char next = s[++i];
    switch (next) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'u':
        if (i + 4 < s.size()) {
          char buf[5] = {s[i + 1], s[i + 2], s[i + 3], s[i + 4], '\0'};
          out.push_back(static_cast<char>(std::strtol(buf, nullptr, 16)));
          i += 4;
        }
        break;
      default:
        out.push_back('\\');
        out.push_back(next);
    }
  }
  return out;
}

// Finds `"key":` at top level of one of our own JSONL lines and returns the
// character index just past the colon, or npos.
size_t FindField(const std::string& line, const char* key) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool ParseStringField(const std::string& line, const char* key, std::string* out) {
  size_t pos = FindField(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  ++pos;
  size_t end = pos;
  while (end < line.size() && !(line[end] == '"' && line[end - 1] != '\\')) {
    ++end;
  }
  if (end >= line.size()) {
    return false;
  }
  *out = JsonUnescape(std::string_view(line).substr(pos, end - pos));
  return true;
}

bool ParseNumberField(const std::string& line, const char* key, double* out) {
  size_t pos = FindField(line, key);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + pos, nullptr);
  return true;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  size_t index = static_cast<size_t>(kind);
  return index < kKindCount ? kKindNames[index] : "unknown";
}

std::string EventToJsonl(const JournalEvent& event) {
  std::ostringstream os;
  os << "{\"seq\":" << event.seq << ",\"t_s\":" << JsonNumber(event.t_s)
     << ",\"kind\":\"" << EventKindName(event.kind) << "\""
     << ",\"battery\":" << event.battery << ",\"what\":\"" << JsonEscape(event.what)
     << "\",\"detail\":\"" << JsonEscape(event.detail) << "\",\"value\":"
     << JsonNumber(event.value) << ",\"limit\":" << JsonNumber(event.limit) << "}";
  return os.str();
}

bool EventFromJsonl(const std::string& line, JournalEvent* event) {
  JournalEvent parsed;
  double seq = 0.0;
  double battery = 0.0;
  std::string kind;
  if (!ParseNumberField(line, "seq", &seq) ||
      !ParseNumberField(line, "t_s", &parsed.t_s) ||
      !ParseStringField(line, "kind", &kind) ||
      !ParseNumberField(line, "battery", &battery) ||
      !ParseStringField(line, "what", &parsed.what) ||
      !ParseStringField(line, "detail", &parsed.detail) ||
      !ParseNumberField(line, "value", &parsed.value) ||
      !ParseNumberField(line, "limit", &parsed.limit)) {
    return false;
  }
  parsed.seq = static_cast<uint64_t>(seq);
  parsed.battery = static_cast<int>(battery);
  parsed.kind = EventKind::kSimEvent;
  for (size_t i = 0; i < kKindCount; ++i) {
    if (kind == kKindNames[i]) {
      parsed.kind = static_cast<EventKind>(i);
      break;
    }
  }
  *event = std::move(parsed);
  return true;
}

EventJournal::EventJournal(size_t capacity) : events_(capacity) {}

void EventJournal::Emit(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  if (event.t_s < 0.0) {
    event.t_s = CurrentSimTimeSeconds();
  }
  if (events_.full()) {
    ++dropped_;
  }
  events_.Push(std::move(event));
  ++recorded_;
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_.At(i));
  }
  return out;
}

uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.Clear();
  recorded_ = 0;
  dropped_ = 0;
  next_seq_ = 0;
}

EventJournal* InstalledJournal() { return tls_journal; }

JournalScope::JournalScope(EventJournal* journal) : previous_(tls_journal) {
  tls_journal = journal;
}

JournalScope::~JournalScope() { tls_journal = previous_; }

void EmitEvent(JournalEvent event) {
  if (tls_journal != nullptr) {
    tls_journal->Emit(std::move(event));
  }
}

void EmitEvent(EventKind kind, double t_s, int battery, std::string what,
               std::string detail, double value, double limit) {
  if (tls_journal == nullptr) {
    return;
  }
  JournalEvent event;
  event.kind = kind;
  event.t_s = t_s;
  event.battery = battery;
  event.what = std::move(what);
  event.detail = std::move(detail);
  event.value = value;
  event.limit = limit;
  tls_journal->Emit(std::move(event));
}

}  // namespace obs
}  // namespace sdb

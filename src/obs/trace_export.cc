#include "src/obs/trace_export.h"

#include <algorithm>
#include <vector>

#include "src/obs/metrics.h"

namespace sdb {
namespace obs {

void ExportChromeTrace(const Tracer& tracer, std::ostream& os) {
  std::vector<TraceEvent> events = tracer.Snapshot();
  std::stable_sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.wall_start_ns != b.wall_start_ns) {
      return a.wall_start_ns < b.wall_start_ns;
    }
    return a.tid < b.tid;
  });
  // Re-base timestamps so the trace starts near zero (viewers cope better
  // with small numbers than with nanoseconds-since-boot).
  uint64_t base_ns = events.empty() ? 0 : events.front().wall_start_ns;

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "" : ",");
    first = false;
    double ts_us = static_cast<double>(e.wall_start_ns - base_ns) * 1e-3;
    double dur_us = static_cast<double>(e.wall_dur_ns) * 1e-3;
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.category)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << JsonNumber(ts_us)
       << ",\"dur\":" << JsonNumber(dur_us);
    if (e.sim_t_s >= 0.0) {
      os << ",\"args\":{\"sim_t_s\":" << JsonNumber(e.sim_t_s) << "}";
    }
    os << "}";
  }
  os << "]}\n";
}

}  // namespace obs
}  // namespace sdb

// Metrics timeline: samples named scalar series on a sim-time cadence into
// an exportable JSON/CSV time series (per-battery SoC/temperature/share
// alongside sdb.runtime.* registry counters), so dashboards and bench trend
// plots get real trajectories instead of end-state scalars.
//
// Same determinism doctrine as the journal (DESIGN.md §15): sampling reads
// state, never mutates it, and records no wall time — two runs of the same
// seed export byte-identical series.
#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sdb {
namespace obs {

// Columnar time series with a fixed schema: the first Sample() call pins the
// column set (in the order given); later samples are matched by name, with
// absent columns recorded as 0 and unknown names ignored. That keeps every
// row rectangular even when a sampler's metric set grows mid-run.
class Timeline {
 public:
  explicit Timeline(double period_s = 60.0);

  // True when the next cadence point is at or before `t_s` (always true
  // before the first sample).
  bool Due(double t_s) const;

  // Records one row at sim time `t_s` and advances the cadence clock.
  void Sample(double t_s, const std::vector<std::pair<std::string, double>>& row);

  double period_s() const { return period_s_; }
  size_t size() const { return times_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<double>& times() const { return times_; }
  // rows()[i] is the row sampled at times()[i], parallel to columns().
  const std::vector<std::vector<double>>& rows() const { return rows_; }

  // "t_s,<col>,..." header plus one line per sample; numbers round-trip.
  std::string ToCsv() const;
  // {"period_s":..,"columns":[..],"t_s":[..],"rows":[[..],..]}
  std::string ToJson() const;

  void Clear();

 private:
  double period_s_;
  double next_t_s_ = 0.0;
  std::vector<std::string> columns_;
  std::vector<double> times_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace obs
}  // namespace sdb

#endif  // SRC_OBS_TIMELINE_H_

// Deterministic flight-recorder event journal: a bounded ring of typed,
// sim-time-stamped structured events (fault windows, safety trips, lifecycle
// transitions, quarantine/reintegration, reboots, policy decisions, oracle
// verdicts) emitted by the core runtime, the hardware models, and the
// emulator harnesses.
//
// Determinism rule (DESIGN.md §8/§15): the journal draws no RNG and mutates
// no simulation state. Emission sites only *read* component clocks or the
// thread-local sim clock; whether the journal is installed, absent, or
// compiled out with -DSDB_JOURNAL=0, every simulated result is bit-identical.
// Events carry no wall time at all — a journal captured from the same seed is
// byte-identical across runs and across --jobs, which is what makes
// post-mortem bundles diffable.
//
// Ownership model: journals are plain objects installed per-thread with a
// RAII JournalScope (mirroring obs::SetSimTime). Each parallel harness case
// runs its whole sim on one worker thread, so installing a per-case journal
// yields an event sequence independent of worker count. Costs when no
// journal is installed: one thread-local load per emission site.
#ifndef SRC_OBS_EVENT_H_
#define SRC_OBS_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/ring_buffer.h"

#ifndef SDB_JOURNAL
#define SDB_JOURNAL 1
#endif

namespace sdb {
namespace obs {

// The typed event taxonomy. Names (EventKindName) are the stable wire form
// used in JSONL bundles and `sdbsim blackbox` filters.
enum class EventKind : uint8_t {
  kFaultInjected,    // An injected fault window opened.
  kFaultCleared,     // An injected fault window closed.
  kSafetyTrip,       // Supervisor latched a FaultRecord (observed/limit).
  kLifecycle,        // Health transition (tripped/cool-down/probing/healthy).
  kQuarantine,       // Runtime excluded a battery from allocation.
  kReintegrate,      // Runtime readmitted a battery.
  kResync,           // Reboot handshake completed (runtime or micro side).
  kMicroReboot,      // Watchdog reboot fired.
  kMicroBrownout,    // Controller entered held-in-reset.
  kDirectiveChange,  // OS changed a charging/discharging directive.
  kPolicyDecision,   // Programmed ratio vector changed (with input ratios).
  kDegradedEnter,    // Runtime entered degraded mode.
  kDegradedExit,     // Runtime left degraded mode.
  kOracleVerdict,    // Soak invariant violation / fuzz oracle failure.
  kSimEvent,         // Simulator event (depleted, shortfall, transfer end).
  kCircuitEvent,     // Circuit-level edge (shortfall, transfer exhaustion).
  kCheckFailure,     // SDB_CHECK failed (via the check-failure handler).
  kCheckpointSave,     // A snapshot was written to an A/B slot.
  kCheckpointRestore,  // A warm restart loaded last-good state.
  kCorruptionDetected, // A slot failed CRC/version/digest validation.
};

// Stable kebab-case name for a kind ("safety-trip"); "unknown" for values
// outside the taxonomy.
const char* EventKindName(EventKind kind);

// One journal entry. `seq` is assigned by the journal at emit time and is
// monotone per journal (so eviction is detectable in a bundle); `t_s` is
// simulated seconds (< 0 when the emitter ran outside any sim timeline).
// `value`/`limit` are kind-specific numeric payloads (e.g. the observed
// reading and the limit it violated for kSafetyTrip).
struct JournalEvent {
  EventKind kind = EventKind::kSimEvent;
  uint64_t seq = 0;
  double t_s = -1.0;
  int battery = -1;    // -1 for pack/system-wide events.
  std::string what;    // Short tag: fault class, health state, oracle name.
  std::string detail;  // Free-form context (ratio vectors, messages).
  double value = 0.0;
  double limit = 0.0;
};

// Serializes one event as a single JSONL line (no trailing newline). Field
// order is fixed, numbers round-trip (%.17g), so equal events give equal
// bytes — the bundle byte-identity contract rests on this.
std::string EventToJsonl(const JournalEvent& event);

// Parses a line written by EventToJsonl. Returns false (leaving `event`
// default) on malformed input. Tolerant of unknown kinds ("unknown").
bool EventFromJsonl(const std::string& line, JournalEvent* event);

// Bounded journal: keeps the most recent `capacity` events, counts drops.
// Thread-safe, though the intended pattern is single-writer (the thread the
// JournalScope installed it on) with snapshots taken after the run joins.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit EventJournal(size_t capacity = kDefaultCapacity);

  // Stamps seq (and t_s from the thread-local sim clock when negative) and
  // appends, evicting the oldest event when full.
  void Emit(JournalEvent event);

  // Buffered events, oldest first.
  std::vector<JournalEvent> Snapshot() const;

  // Events accepted since construction / lost to ring eviction.
  uint64_t recorded() const;
  uint64_t dropped() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  RingBuffer<JournalEvent> events_;
};

// The journal installed on the calling thread (nullptr when none).
EventJournal* InstalledJournal();

// RAII install: routes this thread's EmitEvent calls into `journal` for the
// scope's lifetime, restoring the previous journal on exit (scopes nest).
class JournalScope {
 public:
  explicit JournalScope(EventJournal* journal);
  ~JournalScope();
  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

 private:
  EventJournal* previous_;
};

// True when an emission on this thread would land somewhere. Sites guard
// event construction behind this so the uninstalled path never allocates.
inline bool JournalActive() { return InstalledJournal() != nullptr; }

// Emits into the calling thread's installed journal; no-op when none.
void EmitEvent(JournalEvent event);
void EmitEvent(EventKind kind, double t_s, int battery, std::string what,
               std::string detail = std::string(), double value = 0.0,
               double limit = 0.0);

}  // namespace obs
}  // namespace sdb

#if SDB_JOURNAL
// Emission macro for instrumentation sites: skips argument evaluation (and
// any string construction) unless a journal is installed on this thread.
// Compiled out entirely with -DSDB_JOURNAL=0.
#define SDB_JOURNAL_EVENT(...)                 \
  do {                                         \
    if (::sdb::obs::JournalActive()) {         \
      ::sdb::obs::EmitEvent(__VA_ARGS__);      \
    }                                          \
  } while (0)
#else
#define SDB_JOURNAL_EVENT(...) \
  do {                         \
  } while (0)
#endif  // SDB_JOURNAL

#endif  // SRC_OBS_EVENT_H_

// Deterministic span tracer: scoped RAII spans collected into a bounded ring
// buffer, recording both simulated time and wall time.
//
// Determinism rule (DESIGN.md §8): tracing draws no RNG and mutates no
// simulation state. Spans only *read* the thread-local sim clock that the
// simulator publishes via SetSimTime; whether tracing is compiled in, enabled
// at runtime, or off entirely, every simulated result is bit-identical.
// Sim time is the primary (deterministic) correlation key; wall time is the
// secondary axis — the measurement itself.
//
// Costs when disabled: a single relaxed atomic load per span site. Compile
// out entirely with -DSDB_TRACING=0 (the macros become no-ops).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/ring_buffer.h"
#include "src/util/units.h"

#ifndef SDB_TRACING
#define SDB_TRACING 1
#endif

// The thread-local sim clock below is shared infrastructure: spans and the
// event journal (src/obs/event.h) both stamp from it, so the publish macros
// compile out only when BOTH observability halves are off.
#ifndef SDB_JOURNAL
#define SDB_JOURNAL 1
#endif

namespace sdb {
namespace obs {

// Nanoseconds from a process-local monotonic clock. This is the one sanctioned
// wall-clock read in the codebase (lint rule R4 forbids raw
// std::chrono::steady_clock::now() outside src/obs/).
uint64_t MonotonicNanos();

// Small helper over MonotonicNanos for code that wants elapsed wall seconds
// (thread-pool stats, bench harnesses).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNanos()) {}
  void Reset() { start_ns_ = MonotonicNanos(); }
  double ElapsedSeconds() const {
    return static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
  }

 private:
  uint64_t start_ns_;
};

// A completed span. `name` and `category` must be string literals (the
// tracer stores the pointers, not copies). `sim_t_s` < 0 means the span ran
// outside any simulated timeline (e.g. sweep orchestration).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint32_t tid = 0;
  uint64_t wall_start_ns = 0;
  uint64_t wall_dur_ns = 0;
  double sim_t_s = -1.0;
};

// Publishes the current simulated time for spans opened on this thread.
// Thread-local, so parallel Monte-Carlo shards (one sim per worker) don't
// interleave clocks. Reading it never changes it: tracing stays side-effect
// free with respect to the simulation.
void SetSimTime(Duration sim_time);
void ClearSimTime();
// The value spans will stamp; < 0 when unset.
double CurrentSimTimeSeconds();

// Stable small id for the calling thread (dense, assigned on first use);
// used as the "tid" track in trace exports.
uint32_t CurrentTraceTid();

// Process-wide collector. Recording takes a mutex (spans close at most a few
// hundred thousand times per second in our hottest sweeps, and the disabled
// path never reaches it); the buffer keeps the most recent `capacity` spans.
class Tracer {
 public:
  static Tracer& Global();

  // Runtime toggle. Spans opened while disabled record nothing.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Re-sizes the ring, keeping the newest spans that fit; spans evicted by
  // a shrink are counted into dropped(). recorded() is untouched, so the
  // accounting identity recorded() - dropped() == buffered count survives a
  // mid-trace resize.
  void SetCapacity(size_t capacity);
  void Clear();

  void Record(const TraceEvent& event);

  // Buffered spans, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // Spans accepted since process start / lost to ring eviction.
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  RingBuffer<TraceEvent> events_;
};

// RAII span: captures wall + sim time at open, records into the global
// tracer at close. Checks the runtime toggle once, at open.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (Tracer::Global().enabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = MonotonicNanos();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceEvent event;
      event.name = name_;
      event.category = category_;
      event.tid = CurrentTraceTid();
      event.wall_start_ns = start_ns_;
      event.wall_dur_ns = MonotonicNanos() - start_ns_;
      event.sim_t_s = CurrentSimTimeSeconds();
      Tracer::Global().Record(event);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace sdb

#if SDB_TRACING
#define SDB_OBS_CONCAT_INNER(a, b) a##b
#define SDB_OBS_CONCAT(a, b) SDB_OBS_CONCAT_INNER(a, b)
// Opens a span covering the rest of the enclosing scope. `category` groups
// spans by layer ("core", "hw", "chem", "mc"); `name` is the specific site
// ("runtime.update"). Both must be string literals.
#define SDB_TRACE_SPAN(category, name) \
  ::sdb::obs::TraceSpan SDB_OBS_CONCAT(sdb_trace_span_, __LINE__)(category, name)
#else
#define SDB_TRACE_SPAN(category, name) \
  do {                                 \
  } while (0)
#endif  // SDB_TRACING

#if SDB_TRACING || SDB_JOURNAL
// Publishes the simulated clock for spans and journal events on this thread.
#define SDB_TRACE_SET_SIM_TIME(t) ::sdb::obs::SetSimTime(t)
// Marks the thread as outside any simulated timeline again.
#define SDB_TRACE_CLEAR_SIM_TIME() ::sdb::obs::ClearSimTime()
#else
#define SDB_TRACE_SET_SIM_TIME(t) \
  do {                            \
  } while (0)
#define SDB_TRACE_CLEAR_SIM_TIME() \
  do {                             \
  } while (0)
#endif  // SDB_TRACING || SDB_JOURNAL

#endif  // SRC_OBS_TRACE_H_

// Runtime telemetry: a rolling record of every scheduling decision the SDB
// Runtime makes — timestamps, directive parameters, programmed ratio
// vectors, CCB/RBL metrics and per-battery SoC — exportable as CSV. This is
// the observability layer an OS vendor would ship with SDB (and what the
// paper's own evaluation plots are made of).
#ifndef SRC_CORE_TELEMETRY_H_
#define SRC_CORE_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/battery_view.h"
#include "src/core/policy_db.h"
#include "src/obs/metrics.h"
#include "src/util/units.h"

namespace sdb {

struct TelemetrySample {
  Duration time;
  DirectiveParameters directives;
  std::vector<double> discharge_ratios;
  std::vector<double> charge_ratios;
  double ccb = 1.0;
  Energy rbl;
  std::vector<double> soc;
  // True when the runtime took this decision in degraded mode (batteries
  // masked from the allocator, or the status feed gone stale).
  bool degraded = false;
};

// Counters for the runtime's fault-resilience machinery. Unlike the
// per-decision TelemetrySample stream these are cumulative over the
// runtime's lifetime, so a test (or an OS health daemon) can assert "the
// link flaked N times and we recovered" without replaying the log.
struct ResilienceCounters {
  uint64_t link_retries = 0;     // Query retries attempted after a link error.
  uint64_t link_failures = 0;    // Roundtrips that exhausted every retry.
  uint64_t stale_updates = 0;    // Updates planned from cached status.
  uint64_t degraded_entries = 0; // Transitions healthy -> degraded.
  uint64_t degraded_exits = 0;   // Transitions degraded -> healthy.
  uint64_t masked_faults = 0;    // Battery-updates with a fault masked out.
  uint64_t quarantines = 0;      // Batteries newly excluded from planning.
  uint64_t reintegrations = 0;   // Batteries returned to the allocation.
  uint64_t resyncs = 0;          // Post-reboot handshakes completed.
  Duration backoff_total;        // Simulated time spent in retry backoff.
};

class TelemetryRecorder {
 public:
  // Keeps at most `capacity` samples (oldest evicted first).
  explicit TelemetryRecorder(size_t capacity = 100000);

  void Record(TelemetrySample sample);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // Samples evicted since construction (or the last Clear) because the
  // buffer was full; nonzero means ToCsv() is missing the start of the run.
  size_t dropped() const { return dropped_; }
  const TelemetrySample& sample(size_t i) const;
  const TelemetrySample& latest() const;

  // CSV with one row per sample:
  //   t_s,charge_directive,discharge_directive,ccb,rbl_j,
  //   d0..dN-1,c0..cN-1,soc0..socN-1
  std::string ToCsv() const;

  // Largest swing in any battery's discharge ratio between consecutive
  // samples — a stability indicator for policy oscillation analysis.
  double MaxRatioSwing() const;

  void Clear();

 private:
  size_t capacity_;
  size_t dropped_ = 0;
  std::vector<TelemetrySample> samples_;
};

// Aggregate counters for the parallel sweep engine (RunMonteCarlo and the
// bench harnesses' ParallelFor loops). Unlike TelemetrySample — which logs
// per-decision policy state — these measure the execution engine itself, so
// a claimed sweep speedup is observable, not asserted.
struct SweepCounterSnapshot {
  uint64_t sweeps = 0;          // Sweep invocations recorded.
  uint64_t tasks_executed = 0;  // Shard tasks dispatched to the pool.
  uint64_t runs_executed = 0;   // Individual seeded simulations.
  Duration worker_wait;         // Pool workers blocked on an empty queue.
  Duration wall;                // Wall clock summed across sweeps.
};

// Process-wide, thread-safe; sweeps running on different pools all land here.
// Since the obs migration this is a facade over MetricsRegistry::Global()
// ("sdb.sweep.*" metrics) — the legacy API stays so existing callers and
// tests are untouched, but the registry is the single source of truth.
class SweepCounters {
 public:
  static SweepCounters& Global();

  void RecordSweep(uint64_t tasks, uint64_t runs, Duration worker_wait, Duration wall);
  SweepCounterSnapshot Snapshot() const;
  void Reset();

 private:
  SweepCounters();

  obs::Counter* sweeps_;
  obs::Counter* tasks_executed_;
  obs::Counter* runs_executed_;
  obs::Gauge* worker_wait_s_;
  obs::Gauge* wall_s_;
};

}  // namespace sdb

#endif  // SRC_CORE_TELEMETRY_H_

// The Lagrangian current allocator shared by the RBL policies and the RBL
// metric (paper §3.3, "the RBL-Discharge algorithm ... balances
// R'_i = R_i + delta_i * y_i ... where lambda is a Lagrangian multiplier").
//
// We cast the balancing as marginal-cost equalisation. Per battery, the
// cost of carrying current y is
//
//   cost_i(y) = R_i * y^2            (instantaneous resistive loss)
//             + H * g_i * y^3        (future loss: drawing charge raises the
//                                     DCIR at g_i ohm/coulomb for a horizon
//                                     of H seconds)
//
// so the marginal cost mc_i(y) = 2 R_i y + 3 H g_i y^2 is strictly
// increasing. The optimum shares a multiplier lambda with mc_i(y_i) =
// lambda for every battery below its cap — found by monotone bisection.
// With g == 0 this reduces to the classic loss-minimising y_i ∝ 1/R_i.
#ifndef SRC_CORE_ALLOCATOR_H_
#define SRC_CORE_ALLOCATOR_H_

#include <vector>

#include "src/util/units.h"

namespace sdb {

struct MarginalCostProblem {
  std::vector<Resistance> resistance;            // R_i > 0 for eligible batteries.
  std::vector<ResistancePerCharge> dcir_growth;  // g_i >= 0 (ohm per coulomb drawn).
  std::vector<Current> current_cap;              // y_max_i >= 0.
  Current total_current;                         // Target sum of y_i.
  Duration horizon = Seconds(600.0);             // H in the future-loss term.
};

// Returns currents y_i >= 0 with sum == min(total, sum of caps), equalising
// marginal costs among uncapped batteries. Batteries with zero cap get zero.
std::vector<Current> SolveMarginalCostAllocation(const MarginalCostProblem& problem);

// Normalises a non-negative vector to sum to 1; all-zero input becomes a
// uniform vector over entries whose `eligible` flag is set (or truly uniform
// when no flags are given).
std::vector<double> NormalizeShares(std::vector<double> weights,
                                    const std::vector<bool>* eligible = nullptr);

// Degraded-mode exclusion: zeroes the shares of excluded batteries and
// renormalises the rest to sum to 1. When every surviving share is zero the
// result is uniform over the non-excluded batteries; when every battery is
// excluded the result is all zeros (the caller must not program ratios).
std::vector<double> ApplyDegradedExclusion(std::vector<double> shares,
                                           const std::vector<bool>& excluded);

// Reintegration ramp: scales each share by ramp[i] in [0, 1] and
// renormalises over batteries with ramp > 0, so a battery returning from a
// fault re-enters the split gradually instead of at full share. When every
// ramp is exactly 1 the shares are returned bit-identically unchanged.
std::vector<double> ApplyReintegrationRamp(std::vector<double> shares,
                                           const std::vector<double>& ramp);

}  // namespace sdb

#endif  // SRC_CORE_ALLOCATOR_H_

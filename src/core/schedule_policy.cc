#include "src/core/schedule_policy.h"

#include "src/util/check.h"

namespace sdb {

ScheduleDischargePolicy::ScheduleDischargePolicy(PlanResult plan, DischargePolicy* fallback)
    : plan_(std::move(plan)), fallback_(fallback) {
  SDB_CHECK(plan_.step.value() > 0.0);
}

bool ScheduleDischargePolicy::Exhausted() const {
  size_t step = static_cast<size_t>(elapsed_.value() / plan_.step.value());
  return step >= plan_.share_schedule.size();
}

std::vector<double> ScheduleDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  SDB_CHECK(views.size() == 2);
  if (plan_.share_schedule.empty() || (Exhausted() && fallback_ != nullptr)) {
    if (fallback_ != nullptr) {
      return fallback_->Allocate(views, load);
    }
    return {0.5, 0.5};
  }
  size_t step = static_cast<size_t>(elapsed_.value() / plan_.step.value());
  if (step >= plan_.share_schedule.size()) {
    step = plan_.share_schedule.size() - 1;  // Hold the last planned share.
  }
  double share = plan_.share_schedule[step];
  return {share, 1.0 - share};
}

}  // namespace sdb

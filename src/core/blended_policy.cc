#include "src/core/blended_policy.h"

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

BlendedDischargePolicy::BlendedDischargePolicy(DischargePolicy* a, DischargePolicy* b,
                                               double weight_a)
    : a_(a), b_(b), weight_(Clamp(weight_a, 0.0, 1.0)) {
  SDB_CHECK(a_ != nullptr && b_ != nullptr);
}

void BlendedDischargePolicy::set_weight(double weight_a) { weight_ = Clamp(weight_a, 0.0, 1.0); }

std::vector<double> BlendedDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  if (weight_ >= 1.0) {
    return a_->Allocate(views, load);
  }
  if (weight_ <= 0.0) {
    return b_->Allocate(views, load);
  }
  return BlendShares(a_->Allocate(views, load), b_->Allocate(views, load), weight_);
}

BlendedChargePolicy::BlendedChargePolicy(ChargePolicy* a, ChargePolicy* b, double weight_a)
    : a_(a), b_(b), weight_(Clamp(weight_a, 0.0, 1.0)) {
  SDB_CHECK(a_ != nullptr && b_ != nullptr);
}

void BlendedChargePolicy::set_weight(double weight_a) { weight_ = Clamp(weight_a, 0.0, 1.0); }

std::vector<double> BlendedChargePolicy::Allocate(const BatteryViews& views, Power supply) {
  if (weight_ >= 1.0) {
    return a_->Allocate(views, supply);
  }
  if (weight_ <= 0.0) {
    return b_->Allocate(views, supply);
  }
  return BlendShares(a_->Allocate(views, supply), b_->Allocate(views, supply), weight_);
}

}  // namespace sdb

#include "src/core/rbl_policy.h"

#include <algorithm>

#include "src/core/allocator.h"
#include "src/util/check.h"

namespace sdb {

namespace {

// Mean OCV across available batteries; used to turn a power request into a
// target total current.
Voltage BusVoltage(const BatteryViews& views, bool for_charge) {
  Voltage sum;
  int count = 0;
  for (const auto& v : views) {
    bool available = for_charge ? !v.is_full : !v.is_empty;
    if (available && v.ocv.value() > 0.0) {
      sum += v.ocv;
      ++count;
    }
  }
  return count > 0 ? sum / count : Volts(0.0);
}

// Converts a current allocation into power fractions at each battery's OCV.
std::vector<double> CurrentsToPowerShares(const BatteryViews& views,
                                          const std::vector<Current>& currents) {
  std::vector<double> shares(views.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    shares[i] = (currents[i] * views[i].ocv).value();
    total += shares[i];
  }
  if (total <= 0.0) {
    return std::vector<double>(views.size(), 0.0);
  }
  for (auto& s : shares) {
    s /= total;
  }
  return shares;
}

}  // namespace

RblDischargePolicy::RblDischargePolicy(RblPolicyConfig config) : config_(config) {
  SDB_CHECK(config_.delta_horizon.value() >= 0.0);
  SDB_CHECK(config_.current_margin > 0.0 && config_.current_margin <= 1.0);
}

std::vector<double> RblDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  Voltage v_bus = BusVoltage(views, /*for_charge=*/false);
  if (views.empty() || v_bus.value() <= 0.0) {
    return std::vector<double>(views.size(), 0.0);
  }
  MarginalCostProblem problem;
  problem.total_current = Max(load, Watts(0.0)) / v_bus;
  problem.horizon = config_.delta_horizon;
  for (const auto& v : views) {
    problem.resistance.push_back(Max(v.dcir, Ohms(1e-6)));
    problem.dcir_growth.push_back(v.DischargeDcirGrowthPerCoulomb());
    problem.current_cap.push_back(v.is_empty ? Amps(0.0)
                                             : v.max_discharge * config_.current_margin);
  }
  if (problem.total_current.value() <= 0.0) {
    // Nothing to draw: fall back to the loss-optimal proportions so callers
    // always get a meaningful ratio vector to program.
    problem.total_current = Amps(1.0);
  }
  std::vector<Current> currents = SolveMarginalCostAllocation(problem);
  return CurrentsToPowerShares(views, currents);
}

RblChargePolicy::RblChargePolicy(RblPolicyConfig config) : config_(config) {}

std::vector<double> RblChargePolicy::Allocate(const BatteryViews& views, Power supply) {
  Voltage v_bus = BusVoltage(views, /*for_charge=*/true);
  if (views.empty() || v_bus.value() <= 0.0) {
    return std::vector<double>(views.size(), 0.0);
  }
  MarginalCostProblem problem;
  problem.total_current = Max(supply, Watts(0.0)) / v_bus;
  // Charging toward full *lowers* DCIR (slope < 0 means resistance falls as
  // SoC rises), so the future-loss term does not apply; RBL-Charge is the
  // pure instantaneous-loss minimiser over charge acceptance limits.
  problem.horizon = Seconds(0.0);
  for (const auto& v : views) {
    problem.resistance.push_back(Max(v.dcir, Ohms(1e-6)));
    problem.dcir_growth.push_back(ResistancePerCharge(0.0));
    problem.current_cap.push_back(v.is_full ? Amps(0.0) : v.max_charge);
  }
  if (problem.total_current.value() <= 0.0) {
    problem.total_current = Amps(1.0);
  }
  std::vector<Current> currents = SolveMarginalCostAllocation(problem);
  return CurrentsToPowerShares(views, currents);
}

}  // namespace sdb

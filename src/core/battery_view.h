// The policy layer's view of one battery: gauge estimates fused with the
// manufacturer characteristic curves (the paper's runtime "calculates these
// power values ... based on the DCIR-SoC curves given by the manufacturer",
// §3.3). Policies never touch Cell objects directly — only these views —
// so they run identically against hardware, the emulator, or test fixtures.
//
// Every physical quantity is carried as an sdb::Quantity type; only SoC,
// wear and cycle counts are raw doubles (they are dimensionless).
#ifndef SRC_CORE_BATTERY_VIEW_H_
#define SRC_CORE_BATTERY_VIEW_H_

#include <string>
#include <vector>

#include "src/util/units.h"

namespace sdb {

struct BatteryView {
  size_t index = 0;
  std::string name;

  double soc = 0.0;              // Gauge estimate (dimensionless fraction).
  Voltage ocv;                   // From the manufacturer OCV curve at `soc`.
  Resistance dcir;               // From the manufacturer DCIR curve at `soc`.
  Resistance dcir_slope;         // d(DCIR)/d(SoC) at `soc` (typically < 0).
  Charge capacity;               // Full-charge capacity estimate.
  Energy remaining_energy;
  double wear_ratio = 0.0;       // lambda_i = cc_i / chi_i.
  double rated_cycles = 0.0;     // chi_i.
  Current max_discharge;         // Datasheet sustained limit.
  Current max_charge;            // Current charge acceptance (profile-limited).
  Temperature temperature = Kelvin(298.15);
  bool is_empty = false;
  bool is_full = false;

  // Resistance growth per coulomb drawn: |dR/dSoC| / capacity when draining
  // raises resistance; zero otherwise. This is the delta_i of the paper's
  // RBL derivation, normalised to charge units.
  ResistancePerCharge DischargeDcirGrowthPerCoulomb() const {
    if (capacity.value() <= 0.0) {
      return ResistancePerCharge(0.0);
    }
    Resistance growth = -dcir_slope;  // Draining lowers SoC; R rises when slope < 0.
    return growth.value() > 0.0 ? growth / capacity : ResistancePerCharge(0.0);
  }
};

using BatteryViews = std::vector<BatteryView>;

}  // namespace sdb

#endif  // SRC_CORE_BATTERY_VIEW_H_

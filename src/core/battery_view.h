// The policy layer's view of one battery: gauge estimates fused with the
// manufacturer characteristic curves (the paper's runtime "calculates these
// power values ... based on the DCIR-SoC curves given by the manufacturer",
// §3.3). Policies never touch Cell objects directly — only these views —
// so they run identically against hardware, the emulator, or test fixtures.
#ifndef SRC_CORE_BATTERY_VIEW_H_
#define SRC_CORE_BATTERY_VIEW_H_

#include <string>
#include <vector>

#include "src/util/units.h"

namespace sdb {

struct BatteryView {
  size_t index = 0;
  std::string name;

  double soc = 0.0;              // Gauge estimate.
  double ocv_v = 0.0;            // From the manufacturer OCV curve at `soc`.
  double dcir_ohm = 0.0;         // From the manufacturer DCIR curve at `soc`.
  double dcir_slope = 0.0;       // d(DCIR)/d(SoC) at `soc` (typically < 0).
  double capacity_c = 0.0;       // Full-charge capacity estimate (coulombs).
  double remaining_energy_j = 0.0;
  double wear_ratio = 0.0;       // lambda_i = cc_i / chi_i.
  double rated_cycles = 0.0;     // chi_i.
  double max_discharge_a = 0.0;  // Datasheet sustained limit.
  double max_charge_a = 0.0;     // Current charge acceptance (profile-limited).
  double temperature_k = 298.15;
  bool is_empty = false;
  bool is_full = false;

  // Resistance growth per coulomb drawn: |dR/dSoC| / capacity when draining
  // raises resistance; zero otherwise. This is the delta_i of the paper's
  // RBL derivation, normalised to charge units.
  double DischargeDcirGrowthPerCoulomb() const {
    if (capacity_c <= 0.0) {
      return 0.0;
    }
    double growth = -dcir_slope;  // Draining lowers SoC; R rises when slope < 0.
    return growth > 0.0 ? growth / capacity_c : 0.0;
  }
};

using BatteryViews = std::vector<BatteryView>;

}  // namespace sdb

#endif  // SRC_CORE_BATTERY_VIEW_H_

// Policy interfaces: a policy maps battery views + a power request to the
// ratio vector handed to the SDB microcontroller's Charge()/Discharge()
// APIs. The paper ships four instantaneously-"optimal" algorithms
// (CCB-Charge, RBL-Charge, CCB-Discharge, RBL-Discharge) that the runtime
// blends under OS directive parameters (§3.3); workload-aware policies
// (§5.2) layer future knowledge on top.
#ifndef SRC_CORE_POLICY_H_
#define SRC_CORE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/battery_view.h"
#include "src/util/units.h"

namespace sdb {

class DischargePolicy {
 public:
  virtual ~DischargePolicy() = default;

  // Returns per-battery power fractions (non-negative, summing to 1 unless
  // every battery is unavailable, in which case all-zero).
  virtual std::vector<double> Allocate(const BatteryViews& views, Power load) = 0;

  virtual std::string_view name() const = 0;
};

class ChargePolicy {
 public:
  virtual ~ChargePolicy() = default;

  // Returns per-battery charge power fractions for an external supply.
  virtual std::vector<double> Allocate(const BatteryViews& views, Power supply) = 0;

  virtual std::string_view name() const = 0;
};

// Blends two ratio vectors: weight * a + (1 - weight) * b, renormalised.
std::vector<double> BlendShares(const std::vector<double>& a, const std::vector<double>& b,
                                double weight);

}  // namespace sdb

#endif  // SRC_CORE_POLICY_H_

// A discharge policy that replays a precomputed share schedule — the bridge
// from the offline optimizer (src/core/optimizer) back into the runtime:
// plan once with full trace knowledge, then hand the plan to the same
// machinery that executes the heuristics.
//
// The schedule is indexed by elapsed time; call Advance() as simulated time
// passes (the runtime's AdvanceTime path drives this in practice).
#ifndef SRC_CORE_SCHEDULE_POLICY_H_
#define SRC_CORE_SCHEDULE_POLICY_H_

#include "src/core/optimizer.h"
#include "src/core/policy.h"

namespace sdb {

class ScheduleDischargePolicy final : public DischargePolicy {
 public:
  // Two-battery schedule: `plan.share_schedule[k]` is battery 0's power
  // fraction during step k. `fallback` (may be null) handles time beyond the
  // schedule; without one, the last step's share is held.
  ScheduleDischargePolicy(PlanResult plan, DischargePolicy* fallback = nullptr);

  // Advances the policy's clock.
  void Advance(Duration dt) { elapsed_ += dt; }
  void ResetClock() { elapsed_ = Seconds(0.0); }
  Duration elapsed() const { return elapsed_; }

  // True once the clock has run past the planned schedule.
  bool Exhausted() const;

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "Schedule-Discharge"; }

 private:
  PlanResult plan_;
  DischargePolicy* fallback_;
  Duration elapsed_ = Seconds(0.0);
};

}  // namespace sdb

#endif  // SRC_CORE_SCHEDULE_POLICY_H_

#include "src/core/charge_planner.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

double PredictedFadeForCharge(const BatteryParams& params, double soc_delta, double c_rate) {
  SDB_CHECK(soc_delta >= 0.0);
  if (soc_delta <= 0.0 || c_rate <= 0.0) {
    return 0.0;
  }
  // Fraction of a counted cycle this charge represents (cycles trip at 80%
  // of capacity), times the fade-per-cycle law at the implied current.
  double cycle_fraction = soc_delta / 0.8;
  double i = params.CRate(c_rate).value();
  double ratio = i / params.fade_reference_current.value();
  double fade_per_cycle =
      params.base_fade_per_cycle * (1.0 + params.fade_current_stress * ratio * ratio);
  return cycle_fraction * fade_per_cycle;
}

namespace {

// Charge time for a goal at a ladder rate, including the CV-tail overhead.
Duration TimeToTarget(const ChargeGoal& goal, double c_rate, double cv_overhead) {
  double soc_delta = std::max(0.0, goal.target_soc - goal.current_soc);
  if (soc_delta <= 0.0 || c_rate <= 0.0) {
    return Seconds(0.0);
  }
  double hours = soc_delta / c_rate * cv_overhead;
  return Hours(hours);
}

double MaxCRate(const ChargeGoal& goal) {
  return goal.params->max_charge_current.value() /
         Amps(ToAmpHours(goal.params->nominal_capacity)).value();
}

}  // namespace

StatusOr<ChargePlan> PlanCharge(const std::vector<ChargeGoal>& goals, Duration deadline,
                                const ChargePlannerConfig& config) {
  if (goals.empty()) {
    return InvalidArgumentError("no charge goals");
  }
  if (deadline.value() <= 0.0) {
    return InvalidArgumentError("deadline must be positive");
  }
  if (config.rate_fractions.empty()) {
    return InvalidArgumentError("rate ladder must not be empty");
  }
  for (const ChargeGoal& goal : goals) {
    if (goal.params == nullptr) {
      return InvalidArgumentError("goal missing battery params");
    }
    if (goal.target_soc < goal.current_soc - 1e-9) {
      return InvalidArgumentError(goal.params->name + ": target below current SoC");
    }
  }

  double budget_s = deadline.value() * config.deadline_margin;
  const size_t n = goals.size();

  // Start everyone at the gentlest ladder step.
  std::vector<size_t> rung(n, 0);
  auto entry_for = [&](size_t i) {
    const ChargeGoal& goal = goals[i];
    double c_rate = MaxCRate(goal) * config.rate_fractions[rung[i]];
    ChargePlanEntry entry;
    entry.c_rate = c_rate;
    entry.current = goal.params->CRate(c_rate);
    entry.time_to_target = TimeToTarget(goal, c_rate, config.cv_overhead);
    entry.predicted_fade = PredictedFadeForCharge(
        *goal.params, std::max(0.0, goal.target_soc - goal.current_soc), c_rate);
    return entry;
  };

  // Greedy escalation: while the bottleneck misses the deadline, raise the
  // bottleneck battery one rung (it is the only move that helps).
  for (int guard = 0; guard < 1000; ++guard) {
    size_t bottleneck = 0;
    double worst = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double t = entry_for(i).time_to_target.value();
      if (t > worst) {
        worst = t;
        bottleneck = i;
      }
    }
    if (worst <= budget_s) {
      break;
    }
    if (rung[bottleneck] + 1 >= config.rate_fractions.size()) {
      break;  // Already flat out.
    }
    ++rung[bottleneck];
  }

  ChargePlan plan;
  plan.entries.reserve(n);
  double completion = 0.0;
  double peak_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ChargePlanEntry entry = entry_for(i);
    completion = std::max(completion, entry.time_to_target.value());
    // Supply needed at start: charge power at the planned current.
    double ocv = goals[i].params->ocv_vs_soc.Evaluate(goals[i].current_soc);
    double r = goals[i].params->dcir_vs_soc.Evaluate(goals[i].current_soc);
    double j = entry.current.value();
    peak_w += (ocv + j * r) * j;
    plan.entries.push_back(entry);
  }
  plan.completion = Seconds(completion);
  plan.peak_supply = Watts(peak_w);
  plan.meets_deadline = completion <= deadline.value();
  return plan;
}

}  // namespace sdb

#include "src/core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

// Safety margin below the electrical max-power point, matching the
// discharge circuit's headroom.
constexpr double kPowerMargin = 0.98;

// Electrical outcome of one battery carrying `power` for `dt` at state of
// charge `soc`.
struct LegOutcome {
  bool feasible = false;
  double current_a = 0.0;
  double loss_j = 0.0;
  double next_soc = 0.0;
};

LegOutcome SolveLeg(const BatteryParams& params, double soc, double power_w, double dt_s) {
  LegOutcome out;
  if (power_w <= 0.0) {
    out.feasible = true;
    out.next_soc = soc;
    return out;
  }
  if (soc <= 1e-6) {
    return out;
  }
  double ocv = params.ocv_vs_soc.Evaluate(soc);
  double r = params.dcir_vs_soc.Evaluate(soc);
  double p_max = kPowerMargin * ocv * ocv / (4.0 * r);
  if (power_w > p_max) {
    return out;
  }
  QuadraticRoots roots = SolveQuadratic(r, -ocv, power_w);
  if (roots.count == 0) {
    return out;
  }
  double i = roots.lo;
  if (i > params.max_discharge_current.value()) {
    return out;
  }
  double cap = params.nominal_capacity.value();
  double delta_soc = i * dt_s / cap;
  if (delta_soc > soc) {
    return out;  // Would run dry mid-step; the planner treats this as the end.
  }
  out.feasible = true;
  out.current_a = i;
  out.loss_j = i * i * r * dt_s;
  out.next_soc = soc - delta_soc;
  return out;
}

// Bilinear interpolation of a G x G value grid at continuous (a, b) in
// [0, 1] x [0, 1].
double InterpolateGrid(const std::vector<double>& grid, int g, double a, double b) {
  double fa = Clamp(a, 0.0, 1.0) * (g - 1);
  double fb = Clamp(b, 0.0, 1.0) * (g - 1);
  int ia = std::min(static_cast<int>(fa), g - 2);
  int ib = std::min(static_cast<int>(fb), g - 2);
  double ta = fa - ia;
  double tb = fb - ib;
  auto at = [&](int x, int y) { return grid[x * g + y]; };
  return (1.0 - ta) * ((1.0 - tb) * at(ia, ib) + tb * at(ia, ib + 1)) +
         ta * ((1.0 - tb) * at(ia + 1, ib) + tb * at(ia + 1, ib + 1));
}

}  // namespace

PlanResult PlanOptimalDischarge(const PlannerBattery& battery_a, const PlannerBattery& battery_b,
                                const PowerTrace& load, const PlanConfig& config) {
  SDB_CHECK(battery_a.params != nullptr && battery_b.params != nullptr);
  SDB_CHECK(config.soc_grid >= 2);
  SDB_CHECK(config.action_grid >= 2);
  const int g = config.soc_grid;
  const int actions = config.action_grid;
  const double dt = config.step.value();
  SDB_CHECK(dt > 0.0);
  const int steps = static_cast<int>(std::ceil(load.TotalDuration().value() / dt));

  PlanResult result;
  result.step = config.step;
  result.serviced = Seconds(0.0);
  result.predicted_loss = Joules(0.0);
  if (steps == 0) {
    result.full_trace_served = true;
    return result;
  }

  // Per-step mid-point loads.
  std::vector<double> loads(steps);
  for (int t = 0; t < steps; ++t) {
    loads[t] = load.Sample(Seconds((t + 0.5) * dt)).value();
  }

  // Backward induction. values[t] holds V_t over the SoC grid; V_steps = 0.
  std::vector<std::vector<double>> values(steps + 1,
                                          std::vector<double>(g * g, 0.0));
  std::vector<double> soc_axis(g);
  for (int i = 0; i < g; ++i) {
    soc_axis[i] = static_cast<double>(i) / (g - 1);
  }

  for (int t = steps - 1; t >= 0; --t) {
    const std::vector<double>& next = values[t + 1];
    std::vector<double>& current = values[t];
    double p = loads[t];
    for (int ia = 0; ia < g; ++ia) {
      for (int ib = 0; ib < g; ++ib) {
        double best = 0.0;
        for (int k = 0; k < actions; ++k) {
          double share = static_cast<double>(k) / (actions - 1);
          LegOutcome leg_a =
              SolveLeg(*battery_a.params, soc_axis[ia], share * p, dt);
          if (!leg_a.feasible) {
            continue;
          }
          LegOutcome leg_b =
              SolveLeg(*battery_b.params, soc_axis[ib], (1.0 - share) * p, dt);
          if (!leg_b.feasible) {
            continue;
          }
          double value = dt - config.loss_weight_s_per_j * (leg_a.loss_j + leg_b.loss_j) +
                         InterpolateGrid(next, g, leg_a.next_soc, leg_b.next_soc);
          best = std::max(best, value);
        }
        current[ia * g + ib] = best;
      }
    }
  }

  // Forward pass: follow the argmax from the initial state.
  double soc_a = Clamp(battery_a.initial_soc, 0.0, 1.0);
  double soc_b = Clamp(battery_b.initial_soc, 0.0, 1.0);
  double serviced_s = 0.0;
  double loss_j = 0.0;
  result.share_schedule.reserve(steps);
  for (int t = 0; t < steps; ++t) {
    double p = loads[t];
    double best_value = -1.0;
    double best_share = 0.0;
    LegOutcome best_a, best_b;
    for (int k = 0; k < actions; ++k) {
      double share = static_cast<double>(k) / (actions - 1);
      LegOutcome leg_a = SolveLeg(*battery_a.params, soc_a, share * p, dt);
      if (!leg_a.feasible) {
        continue;
      }
      LegOutcome leg_b = SolveLeg(*battery_b.params, soc_b, (1.0 - share) * p, dt);
      if (!leg_b.feasible) {
        continue;
      }
      double value = dt - config.loss_weight_s_per_j * (leg_a.loss_j + leg_b.loss_j) +
                     InterpolateGrid(values[t + 1], g, leg_a.next_soc, leg_b.next_soc);
      if (value > best_value) {
        best_value = value;
        best_share = share;
        best_a = leg_a;
        best_b = leg_b;
      }
    }
    if (best_value < 0.0) {
      result.full_trace_served = false;
      result.serviced = Seconds(serviced_s);
      result.predicted_loss = Joules(loss_j);
      return result;
    }
    result.share_schedule.push_back(best_share);
    soc_a = best_a.next_soc;
    soc_b = best_b.next_soc;
    serviced_s += dt;
    loss_j += best_a.loss_j + best_b.loss_j;
  }
  result.full_trace_served = true;
  result.serviced = Seconds(serviced_s);
  result.predicted_loss = Joules(loss_j);
  return result;
}

PlanResult EvaluateFixedShare(const PlannerBattery& battery_a, const PlannerBattery& battery_b,
                              const PowerTrace& load, double share_a, const PlanConfig& config) {
  SDB_CHECK(battery_a.params != nullptr && battery_b.params != nullptr);
  share_a = Clamp(share_a, 0.0, 1.0);
  const double dt = config.step.value();
  const int steps = static_cast<int>(std::ceil(load.TotalDuration().value() / dt));

  PlanResult result;
  result.step = config.step;
  double soc_a = Clamp(battery_a.initial_soc, 0.0, 1.0);
  double soc_b = Clamp(battery_b.initial_soc, 0.0, 1.0);
  double serviced_s = 0.0;
  double loss_j = 0.0;
  for (int t = 0; t < steps; ++t) {
    double p = load.Sample(Seconds((t + 0.5) * dt)).value();
    // Mimic the hardware's spill-over: try the nominal split; if one leg
    // cannot carry its portion, push the remainder onto the other.
    struct Attempt {
      double pa;
      double pb;
    };
    Attempt attempts[] = {{share_a * p, (1.0 - share_a) * p}, {0.0, p}, {p, 0.0}};
    bool served = false;
    for (const Attempt& attempt : attempts) {
      LegOutcome leg_a = SolveLeg(*battery_a.params, soc_a, attempt.pa, dt);
      LegOutcome leg_b = SolveLeg(*battery_b.params, soc_b, attempt.pb, dt);
      if (leg_a.feasible && leg_b.feasible) {
        soc_a = leg_a.next_soc;
        soc_b = leg_b.next_soc;
        loss_j += leg_a.loss_j + leg_b.loss_j;
        served = true;
        break;
      }
    }
    if (!served) {
      result.full_trace_served = false;
      result.serviced = Seconds(serviced_s);
      result.predicted_loss = Joules(loss_j);
      result.share_schedule.assign(t, share_a);
      return result;
    }
    serviced_s += dt;
  }
  result.full_trace_served = true;
  result.serviced = Seconds(serviced_s);
  result.predicted_loss = Joules(loss_j);
  result.share_schedule.assign(steps, share_a);
  return result;
}


namespace {

// Trilinear interpolation over a G x G x G grid at continuous (a, b, c).
double InterpolateGrid3(const std::vector<double>& grid, int g, double a, double b, double c) {
  double fa = Clamp(a, 0.0, 1.0) * (g - 1);
  double fb = Clamp(b, 0.0, 1.0) * (g - 1);
  double fc = Clamp(c, 0.0, 1.0) * (g - 1);
  int ia = std::min(static_cast<int>(fa), g - 2);
  int ib = std::min(static_cast<int>(fb), g - 2);
  int ic = std::min(static_cast<int>(fc), g - 2);
  double ta = fa - ia;
  double tb = fb - ib;
  double tc = fc - ic;
  auto at = [&](int x, int y, int z) { return grid[(x * g + y) * g + z]; };
  auto lerp2 = [&](int x) {
    double v00 = at(x, ib, ic) * (1.0 - tc) + at(x, ib, ic + 1) * tc;
    double v01 = at(x, ib + 1, ic) * (1.0 - tc) + at(x, ib + 1, ic + 1) * tc;
    return v00 * (1.0 - tb) + v01 * tb;
  };
  return lerp2(ia) * (1.0 - ta) + lerp2(ia + 1) * ta;
}

struct SimplexAction {
  double share_a;
  double share_b;  // share_c == 1 - a - b.
};

std::vector<SimplexAction> MakeSimplexActions(int share_grid) {
  std::vector<SimplexAction> actions;
  for (int i = 0; i < share_grid; ++i) {
    for (int j = 0; i + j < share_grid; ++j) {
      double a = static_cast<double>(i) / (share_grid - 1);
      double b = static_cast<double>(j) / (share_grid - 1);
      actions.push_back(SimplexAction{a, b});
    }
  }
  return actions;
}

}  // namespace

Plan3Result PlanOptimalDischarge3(const PlannerBattery& battery_a,
                                  const PlannerBattery& battery_b,
                                  const PlannerBattery& battery_c, const PowerTrace& load,
                                  const Plan3Config& config) {
  SDB_CHECK(battery_a.params != nullptr && battery_b.params != nullptr &&
            battery_c.params != nullptr);
  SDB_CHECK(config.soc_grid >= 2);
  SDB_CHECK(config.share_grid >= 2);
  const int g = config.soc_grid;
  const double dt = config.step.value();
  SDB_CHECK(dt > 0.0);
  const int steps = static_cast<int>(std::ceil(load.TotalDuration().value() / dt));
  const std::vector<SimplexAction> actions = MakeSimplexActions(config.share_grid);

  Plan3Result result;
  result.step = config.step;
  result.serviced = Seconds(0.0);
  result.predicted_loss = Joules(0.0);
  if (steps == 0) {
    result.full_trace_served = true;
    return result;
  }

  std::vector<double> loads(steps);
  for (int t = 0; t < steps; ++t) {
    loads[t] = load.Sample(Seconds((t + 0.5) * dt)).value();
  }
  std::vector<double> soc_axis(g);
  for (int i = 0; i < g; ++i) {
    soc_axis[i] = static_cast<double>(i) / (g - 1);
  }

  const BatteryParams* params[3] = {battery_a.params, battery_b.params, battery_c.params};
  auto legs_for = [&](double p, double sa, double sb, double sc, double ia, double ib,
                      double ic, LegOutcome out[3]) {
    out[0] = SolveLeg(*params[0], ia, sa * p, dt);
    if (!out[0].feasible) {
      return false;
    }
    out[1] = SolveLeg(*params[1], ib, sb * p, dt);
    if (!out[1].feasible) {
      return false;
    }
    out[2] = SolveLeg(*params[2], ic, sc * p, dt);
    return out[2].feasible;
  };

  // Backward induction over the G^3 grid.
  std::vector<std::vector<double>> values(steps + 1, std::vector<double>(g * g * g, 0.0));
  for (int t = steps - 1; t >= 0; --t) {
    const std::vector<double>& next = values[t + 1];
    std::vector<double>& current = values[t];
    double p = loads[t];
    for (int ia = 0; ia < g; ++ia) {
      for (int ib = 0; ib < g; ++ib) {
        for (int ic = 0; ic < g; ++ic) {
          double best = 0.0;
          for (const SimplexAction& action : actions) {
            double sc = 1.0 - action.share_a - action.share_b;
            LegOutcome legs[3];
            if (!legs_for(p, action.share_a, action.share_b, sc, soc_axis[ia], soc_axis[ib],
                          soc_axis[ic], legs)) {
              continue;
            }
            double loss = legs[0].loss_j + legs[1].loss_j + legs[2].loss_j;
            double value = dt - config.loss_weight_s_per_j * loss +
                           InterpolateGrid3(next, g, legs[0].next_soc, legs[1].next_soc,
                                            legs[2].next_soc);
            best = std::max(best, value);
          }
          current[(ia * g + ib) * g + ic] = best;
        }
      }
    }
  }

  // Forward pass.
  double soc[3] = {Clamp(battery_a.initial_soc, 0.0, 1.0),
                   Clamp(battery_b.initial_soc, 0.0, 1.0),
                   Clamp(battery_c.initial_soc, 0.0, 1.0)};
  double serviced_s = 0.0;
  double loss_j = 0.0;
  for (int t = 0; t < steps; ++t) {
    double p = loads[t];
    double best_value = -1.0;
    SimplexAction best_action{0.0, 0.0};
    LegOutcome best_legs[3];
    for (const SimplexAction& action : actions) {
      double sc = 1.0 - action.share_a - action.share_b;
      LegOutcome legs[3];
      if (!legs_for(p, action.share_a, action.share_b, sc, soc[0], soc[1], soc[2], legs)) {
        continue;
      }
      double loss = legs[0].loss_j + legs[1].loss_j + legs[2].loss_j;
      double value = dt - config.loss_weight_s_per_j * loss +
                     InterpolateGrid3(values[t + 1], g, legs[0].next_soc, legs[1].next_soc,
                                      legs[2].next_soc);
      if (value > best_value) {
        best_value = value;
        best_action = action;
        best_legs[0] = legs[0];
        best_legs[1] = legs[1];
        best_legs[2] = legs[2];
      }
    }
    if (best_value < 0.0) {
      result.full_trace_served = false;
      result.serviced = Seconds(serviced_s);
      result.predicted_loss = Joules(loss_j);
      return result;
    }
    result.share_a_schedule.push_back(best_action.share_a);
    result.share_b_schedule.push_back(best_action.share_b);
    for (int i = 0; i < 3; ++i) {
      soc[i] = best_legs[i].next_soc;
      loss_j += best_legs[i].loss_j;
    }
    serviced_s += dt;
  }
  result.full_trace_served = true;
  result.serviced = Seconds(serviced_s);
  result.predicted_loss = Joules(loss_j);
  return result;
}

}  // namespace sdb

#include "src/core/policy_db.h"

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

void PolicyDatabase::Register(std::string situation, DirectiveParameters params) {
  SDB_CHECK(!situation.empty());
  params.charging = Clamp(params.charging, 0.0, 1.0);
  params.discharging = Clamp(params.discharging, 0.0, 1.0);
  entries_[std::move(situation)] = params;
}

StatusOr<DirectiveParameters> PolicyDatabase::Lookup(const std::string& situation) const {
  auto it = entries_.find(situation);
  if (it == entries_.end()) {
    return NotFoundError("unknown policy situation: " + situation);
  }
  return it->second;
}

bool PolicyDatabase::Contains(const std::string& situation) const {
  return entries_.count(situation) > 0;
}

PolicyDatabase MakeDefaultPolicyDatabase() {
  PolicyDatabase db;
  db.Register("overnight", {.charging = 0.05, .discharging = 0.3});
  db.Register("preflight", {.charging = 1.0, .discharging = 0.7});
  db.Register("interactive", {.charging = 0.5, .discharging = 0.6});
  db.Register("low-battery", {.charging = 0.8, .discharging = 1.0});
  db.Register("performance", {.charging = 0.6, .discharging = 0.9});
  return db;
}

}  // namespace sdb

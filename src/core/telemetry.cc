#include "src/core/telemetry.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace sdb {

TelemetryRecorder::TelemetryRecorder(size_t capacity) : capacity_(capacity) {
  SDB_CHECK(capacity_ > 0);
}

void TelemetryRecorder::Record(TelemetrySample sample) {
  if (samples_.size() >= capacity_) {
    samples_.erase(samples_.begin());
    ++dropped_;
  }
  samples_.push_back(std::move(sample));
}

const TelemetrySample& TelemetryRecorder::sample(size_t i) const {
  SDB_CHECK(i < samples_.size());
  return samples_[i];
}

const TelemetrySample& TelemetryRecorder::latest() const {
  SDB_CHECK(!samples_.empty());
  return samples_.back();
}

std::string TelemetryRecorder::ToCsv() const {
  std::ostringstream os;
  size_t n = samples_.empty() ? 0 : samples_.front().discharge_ratios.size();
  os << "t_s,charge_directive,discharge_directive,ccb,rbl_j";
  for (size_t i = 0; i < n; ++i) {
    os << ",d" << i;
  }
  for (size_t i = 0; i < n; ++i) {
    os << ",c" << i;
  }
  for (size_t i = 0; i < n; ++i) {
    os << ",soc" << i;
  }
  os << ",degraded\n";
  for (const TelemetrySample& s : samples_) {
    os << s.time.value() << "," << s.directives.charging << "," << s.directives.discharging
       << "," << s.ccb << "," << s.rbl.value();
    for (double d : s.discharge_ratios) {
      os << "," << d;
    }
    for (double c : s.charge_ratios) {
      os << "," << c;
    }
    for (double soc : s.soc) {
      os << "," << soc;
    }
    os << "," << (s.degraded ? 1 : 0) << "\n";
  }
  return os.str();
}

double TelemetryRecorder::MaxRatioSwing() const {
  double swing = 0.0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    const auto& prev = samples_[i - 1].discharge_ratios;
    const auto& curr = samples_[i].discharge_ratios;
    for (size_t b = 0; b < prev.size() && b < curr.size(); ++b) {
      swing = std::max(swing, std::fabs(curr[b] - prev[b]));
    }
  }
  return swing;
}

void TelemetryRecorder::Clear() {
  samples_.clear();
  dropped_ = 0;
}

SweepCounters::SweepCounters() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  sweeps_ = registry.GetCounter("sdb.sweep.sweeps");
  tasks_executed_ = registry.GetCounter("sdb.sweep.tasks_executed");
  runs_executed_ = registry.GetCounter("sdb.sweep.runs_executed");
  worker_wait_s_ = registry.GetGauge("sdb.sweep.worker_wait_s");
  wall_s_ = registry.GetGauge("sdb.sweep.wall_s");
}

SweepCounters& SweepCounters::Global() {
  static SweepCounters* counters = new SweepCounters();
  return *counters;
}

void SweepCounters::RecordSweep(uint64_t tasks, uint64_t runs, Duration worker_wait,
                                Duration wall) {
  sweeps_->Increment();
  tasks_executed_->Increment(tasks);
  runs_executed_->Increment(runs);
  worker_wait_s_->Add(worker_wait.value());
  wall_s_->Add(wall.value());
}

SweepCounterSnapshot SweepCounters::Snapshot() const {
  SweepCounterSnapshot snap;
  snap.sweeps = sweeps_->value();
  snap.tasks_executed = tasks_executed_->value();
  snap.runs_executed = runs_executed_->value();
  snap.worker_wait = Seconds(worker_wait_s_->value());
  snap.wall = Seconds(wall_s_->value());
  return snap;
}

void SweepCounters::Reset() {
  sweeps_->Reset();
  tasks_executed_->Reset();
  runs_executed_->Reset();
  worker_wait_s_->Reset();
  wall_s_->Reset();
}

}  // namespace sdb

// The parameter-to-policy database of the paper's software architecture
// (Fig. 5): named user situations map to the directive parameters the SDB
// Runtime blends policies with. The OS power manager (src/os) sets the
// active situation from workload, schedule and charging context.
#ifndef SRC_CORE_POLICY_DB_H_
#define SRC_CORE_POLICY_DB_H_

#include <map>
#include <string>

#include "src/util/status.h"

namespace sdb {

// The two knobs the paper exposes (§3.3): each in [0,1], where high values
// prioritise RBL (useful charge now) and low values prioritise CCB
// (longevity / wear balance).
struct DirectiveParameters {
  double charging = 0.5;
  double discharging = 0.5;
};

class PolicyDatabase {
 public:
  PolicyDatabase() = default;

  // Registers or replaces a named situation.
  void Register(std::string situation, DirectiveParameters params);

  StatusOr<DirectiveParameters> Lookup(const std::string& situation) const;

  bool Contains(const std::string& situation) const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, DirectiveParameters> entries_;
};

// The stock situations the paper's scenarios imply:
//   "overnight"   — no hurry; protect longevity (low charge directive).
//   "preflight"   — charge as fast as possible (§7's boarding example).
//   "interactive" — balanced daytime use.
//   "low-battery" — stretch remaining charge (high discharge directive).
//   "performance" — feed high-power turbo workloads.
PolicyDatabase MakeDefaultPolicyDatabase();

}  // namespace sdb

#endif  // SRC_CORE_POLICY_DB_H_

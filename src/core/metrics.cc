#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/core/allocator.h"
#include "src/util/check.h"

namespace sdb {

double ComputeCcb(const BatteryViews& views) {
  if (views.empty()) {
    return 1.0;
  }
  double min_wear = views[0].wear_ratio;
  double max_wear = views[0].wear_ratio;
  for (const auto& v : views) {
    min_wear = std::min(min_wear, v.wear_ratio);
    max_wear = std::max(max_wear, v.wear_ratio);
  }
  // Unworn batteries would divide by zero; treat near-zero wear as balanced
  // with a floor of one tolerable-cycle-equivalent of wear.
  constexpr double kWearFloor = 1e-3;
  min_wear = std::max(min_wear, kWearFloor);
  max_wear = std::max(max_wear, kWearFloor);
  return max_wear / min_wear;
}

WearSpread ComputeWearSpread(const BatteryViews& views) {
  WearSpread spread;
  if (views.empty()) {
    return spread;
  }
  spread.min_wear = views[0].wear_ratio;
  spread.max_wear = views[0].wear_ratio;
  double sum = 0.0;
  for (const auto& v : views) {
    spread.min_wear = std::min(spread.min_wear, v.wear_ratio);
    spread.max_wear = std::max(spread.max_wear, v.wear_ratio);
    sum += v.wear_ratio;
  }
  spread.mean_wear = sum / static_cast<double>(views.size());
  return spread;
}

Energy EstimateRbl(const BatteryViews& views, Power anticipated_load) {
  Energy total_energy;
  Voltage v_sum;
  int live = 0;
  for (const auto& v : views) {
    total_energy += v.remaining_energy;
    if (!v.is_empty) {
      v_sum += v.ocv;
      ++live;
    }
  }
  double p = anticipated_load.value();
  if (p <= 0.0 || live == 0 || total_energy.value() <= 0.0) {
    return total_energy;
  }
  Voltage v_bus = v_sum / live;

  // Split the anticipated load to minimise instantaneous loss and discount
  // the remaining energy by the resulting loss fraction.
  MarginalCostProblem problem;
  problem.total_current = anticipated_load / v_bus;
  problem.horizon = Seconds(0.0);  // Instantaneous discount.
  for (const auto& v : views) {
    problem.resistance.push_back(Max(v.dcir, Ohms(1e-6)));
    problem.dcir_growth.push_back(ResistancePerCharge(0.0));
    problem.current_cap.push_back(v.is_empty ? Amps(0.0) : v.max_discharge);
  }
  std::vector<Current> currents = SolveMarginalCostAllocation(problem);
  double loss_w = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    loss_w += (problem.resistance[i] * currents[i] * currents[i]).value();
  }
  double useful_fraction = p / (p + loss_w);
  return total_energy * useful_fraction;
}

Power InstantaneousLoss(const BatteryViews& views, const std::vector<double>& shares,
                        Power load) {
  SDB_CHECK(shares.size() == views.size());
  double loss = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    double p_i = shares[i] * load.value();
    if (p_i <= 0.0 || views[i].ocv.value() <= 0.0) {
      continue;
    }
    double y = p_i / views[i].ocv.value();
    loss += views[i].dcir.value() * y * y;
  }
  return Watts(loss);
}

}  // namespace sdb

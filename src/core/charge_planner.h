// Deadline-aware charge planning (the paper's §7 example: "if the OS knows
// that the user is about to board a plane then it might make sense to
// charge as quickly as possible and take the hit to longevity" — and,
// conversely, overnight it should charge as gently as the deadline allows).
//
// Given per-battery capacity gaps, acceptance limits, fade coefficients and
// a deadline, the planner picks per-battery charge C-rates that reach the
// target state of charge in time while minimising predicted cycle wear. The
// wear model is the same current-stress fade law the aging module applies,
// so "minimise wear" here means exactly "maximise Fig. 1(b) longevity".
#ifndef SRC_CORE_CHARGE_PLANNER_H_
#define SRC_CORE_CHARGE_PLANNER_H_

#include <vector>

#include "src/chem/battery_params.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {

struct ChargeGoal {
  const BatteryParams* params = nullptr;
  double current_soc = 0.0;
  double target_soc = 1.0;
};

struct ChargePlanEntry {
  double c_rate = 0.0;          // Planned charging rate.
  Current current;              // The same, in amps.
  Duration time_to_target;      // Time this battery needs at that rate.
  double predicted_fade = 0.0;  // Capacity fraction lost for the charge.
};

struct ChargePlan {
  std::vector<ChargePlanEntry> entries;
  Duration completion;     // max over batteries.
  Power peak_supply;       // Supply power the plan needs at the start.
  bool meets_deadline = false;
};

struct ChargePlannerConfig {
  // Rate ladder searched per battery, as fractions of the battery's maximum
  // charge rate. Sorted ascending.
  std::vector<double> rate_fractions = {0.15, 0.25, 0.4, 0.6, 0.8, 1.0};
  // Headroom on the deadline (plan to finish slightly early).
  double deadline_margin = 0.95;
  // CC/CV overhead: the tail above the taper threshold charges slower than
  // the CC phase; effective charge time is inflated by this factor.
  double cv_overhead = 1.15;
};

// Plans the gentlest per-battery rates that still meet `deadline`, greedily
// raising the rate of whichever battery is the bottleneck, one ladder step
// at a time, choosing the battery whose marginal wear increase is smallest.
// Returns an error if even maximum rates cannot meet the deadline (the plan
// with max rates is still returned inside the StatusOr's error-free path in
// that case, flagged meets_deadline == false).
StatusOr<ChargePlan> PlanCharge(const std::vector<ChargeGoal>& goals, Duration deadline,
                                const ChargePlannerConfig& config = {});

// Predicted capacity fraction lost if `params` is charged through
// `soc_delta` of its capacity at `c_rate` (the planner's wear model).
double PredictedFadeForCharge(const BatteryParams& params, double soc_delta, double c_rate);

}  // namespace sdb

#endif  // SRC_CORE_CHARGE_PLANNER_H_

// CCB-Charge and CCB-Discharge (paper §3.3): schedule batteries so the
// Cycle Count Balance — max wear ratio over min wear ratio — stays as close
// to 1 as possible. Both steer throughput toward the least-worn batteries
// (wear normalised to each battery's tolerable cycle count), so wear ratios
// converge.
#ifndef SRC_CORE_CCB_POLICY_H_
#define SRC_CORE_CCB_POLICY_H_

#include "src/core/policy.h"

namespace sdb {

struct CcbPolicyConfig {
  // Wear band (in wear-ratio units) added to every battery's headroom so the
  // policy degrades to an even split when wear is already balanced.
  double wear_band = 0.02;
};

class CcbDischargePolicy final : public DischargePolicy {
 public:
  explicit CcbDischargePolicy(CcbPolicyConfig config = {});

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "CCB-Discharge"; }

 private:
  CcbPolicyConfig config_;
};

class CcbChargePolicy final : public ChargePolicy {
 public:
  explicit CcbChargePolicy(CcbPolicyConfig config = {});

  std::vector<double> Allocate(const BatteryViews& views, Power supply) override;
  std::string_view name() const override { return "CCB-Charge"; }

 private:
  CcbPolicyConfig config_;
};

}  // namespace sdb

#endif  // SRC_CORE_CCB_POLICY_H_

// The SDB Runtime (paper §3.3, Fig. 5): the OS-resident component that owns
// all charging/discharging scheduling decisions. It takes clues from the
// rest of the OS (directive parameters, workload hints), maintains the two
// N-tuples (c1..cN) and (d1..dN) of power ratios, and programs the SDB
// microcontroller through the four APIs.
#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/core/blended_policy.h"
#include "src/core/ccb_policy.h"
#include "src/core/metrics.h"
#include "src/core/policy_db.h"
#include "src/core/telemetry.h"
#include "src/core/rbl_policy.h"
#include "src/core/workload_aware.h"
#include "src/hw/microcontroller.h"

namespace sdb {

class CommandLinkClient;

struct RuntimeConfig {
  DirectiveParameters directives;  // Initial charge/discharge directives.
  RblPolicyConfig rbl;
  CcbPolicyConfig ccb;
  ReservePolicyConfig reserve;
  // Steady load assumed when reporting the RBL metric.
  Power anticipated_load = Watts(1.0);
  // Thermal derating (paper §3.3: ratio changes can be triggered by "a
  // change in device temperature"): between these temperatures a battery's
  // usable current ramps linearly down to zero.
  Temperature derate_start = Celsius(45.0);
  Temperature derate_cutoff = Celsius(60.0);
  // Fault resilience: a failed QueryBatteryStatus over the command link is
  // retried up to `link_retries` times with doubling backoff (simulated
  // time, accumulated in ResilienceCounters::backoff_total). While the link
  // stays down the runtime plans from its last good status for up to
  // `stale_updates_tolerated` updates before declaring itself degraded.
  int link_retries = 3;
  Duration retry_backoff_base = Seconds(0.01);
  Duration retry_backoff_cap = Seconds(0.08);
  int stale_updates_tolerated = 5;
  // Reintegration ramp: when a quarantined battery returns, its share of
  // the splits grows linearly from zero over this horizon (of simulated
  // time advanced through AdvanceTime) instead of snapping back to full.
  // Zero disables ramping — a returning battery rejoins at full share.
  Duration reintegration_horizon = Seconds(0.0);
};

// Complete mutable runtime state for checkpoint/restore: policy directives,
// the workload-hint window, planning caches (last ratios / statuses), the
// degraded-mode and quarantine masks, reintegration ramp progress, and the
// resilience counters. Policy configuration is not carried — a restore
// re-applies this onto a runtime constructed from the same RuntimeConfig.
struct RuntimeState {
  DirectiveParameters directives;
  bool has_hint = false;  // Flattened std::optional<WorkloadHint>.
  WorkloadHint hint;
  double last_ccb = 1.0;
  Energy last_rbl;
  Duration elapsed;
  std::vector<double> last_discharge_ratios;
  std::vector<double> last_charge_ratios;
  std::vector<BatteryStatus> last_statuses;
  int64_t consecutive_stale = 0;
  bool degraded = false;
  std::vector<bool> excluded;
  std::vector<bool> prev_excluded;
  std::vector<double> ramp;
  uint64_t last_link_resyncs = 0;
  ResilienceCounters resilience;
};

// What RestoreAndResync did beyond restoring state: whether the boot-count
// handshake ran (or was deferred because the controller is held in reset)
// and how many checkpointed status fields disagreed with what the hardware
// reports now (adopted from hardware, counted as drift).
struct RestoreReport {
  bool resynced = false;
  bool resync_deferred = false;
  uint64_t drift_fields = 0;
};

class SdbRuntime {
 public:
  // `micro` must outlive the runtime.
  SdbRuntime(SdbMicrocontroller* micro, RuntimeConfig config = {});

  // --- Clues from the rest of the OS ---------------------------------------

  void SetChargingDirective(double value);
  void SetDischargingDirective(double value);
  void SetDirectives(DirectiveParameters params);
  DirectiveParameters directives() const;

  // Announces (or clears) an anticipated high-power workload; the discharge
  // schedule preserves the most suitable battery for it (§5.2).
  void SetWorkloadHint(std::optional<WorkloadHint> hint);
  const std::optional<WorkloadHint>& workload_hint() const { return reserve_.hint(); }

  // Counts the hint's start time down as simulated time passes; the hint is
  // dropped once the anticipated workload window has fully elapsed.
  void AdvanceTime(Duration dt);

  // --- The scheduling step ---------------------------------------------------

  // Rebuilds battery views from QueryBatteryStatus + manufacturer curves,
  // recomputes both ratio vectors for the expected load/supply, and programs
  // the microcontroller. Call at coarse time steps (the paper's runtime
  // "calculates these power values at coarse granular time steps").
  [[nodiscard]] Status Update(Power expected_load, Power expected_supply);

  // Passthrough for battery-to-battery transfers.
  [[nodiscard]] Status RequestTransfer(size_t from, size_t to, Power power, Duration duration);

  // Optional observability: when attached, every Update() appends a sample
  // (timestamped by AdvanceTime's clock). `recorder` must outlive the
  // runtime or be detached with nullptr.
  void AttachTelemetry(TelemetryRecorder* recorder) { telemetry_ = recorder; }

  // Routes the four SDB APIs over a serial command link instead of direct
  // calls, which brings the link's failure modes (timeouts, corrupt
  // replies) into scope: queries retry with backoff and fall back to the
  // last good status, and setter failures keep the previous ratios. `link`
  // must outlive the runtime or be detached with nullptr.
  void AttachLink(CommandLinkClient* link) { link_ = link; }

  // Replaces the built-in reserve(blend(RBL, CCB)) discharge scheduling with
  // an arbitrary policy (an MPC or schedule-replay policy, say). The policy
  // must outlive the runtime or be detached with nullptr. `on_advance`, when
  // given, receives every AdvanceTime delta so clock-driven policies stay in
  // sync with simulated time.
  void OverrideDischargePolicy(DischargePolicy* policy,
                               std::function<void(Duration)> on_advance = nullptr) {
    discharge_override_ = policy;
    override_advance_ = std::move(on_advance);
  }

  // --- Introspection ----------------------------------------------------------

  BatteryViews BuildViews() const;
  double LastCcb() const { return last_ccb_; }
  Energy LastRbl() const { return last_rbl_; }
  const std::vector<double>& last_discharge_ratios() const { return last_discharge_ratios_; }
  const std::vector<double>& last_charge_ratios() const { return last_charge_ratios_; }

  // Degraded mode: true while any battery is masked from the allocator or
  // the status feed has been stale past the configured tolerance.
  bool degraded() const { return degraded_; }
  const std::vector<bool>& excluded_batteries() const { return excluded_; }
  // Per-battery reintegration ramp in [0, 1]: 1 = full participant, < 1 =
  // recently returned from quarantine and still ramping back in.
  const std::vector<double>& reintegration_ramp() const { return ramp_; }
  const ResilienceCounters& resilience() const { return resilience_; }

  SdbMicrocontroller* microcontroller() { return micro_; }

  // --- Checkpoint / warm restart --------------------------------------------

  // Snapshots / reinstates the full mutable runtime state (see RuntimeState).
  // Restore rejects snapshots whose per-battery vectors do not match this
  // runtime's battery count.
  RuntimeState SaveState() const;
  [[nodiscard]] Status RestoreState(const RuntimeState& state);

  // Warm-restart entry point: restores `state`, then (a) completes the
  // boot-count resync handshake directly against the microcontroller — never
  // over the command link, whose fault injection would consume RNG — and
  // adopts the boot count into the attached link client; (b) reconciles
  // drift between the checkpointed battery statuses and what the hardware
  // reports now, adopting the hardware values. A controller held in reset
  // defers the handshake to the first post-restore Update.
  [[nodiscard]] StatusOr<RestoreReport> RestoreAndResync(const RuntimeState& state);

 private:
  // QueryBatteryStatus with retry-with-backoff over the attached link (or a
  // direct, infallible microcontroller call when no link is attached).
  [[nodiscard]] StatusOr<std::vector<BatteryStatus>> QueryStatusWithRetry();
  BatteryViews BuildViewsFrom(const std::vector<BatteryStatus>& statuses) const;

  SdbMicrocontroller* micro_;
  RuntimeConfig config_;

  RblDischargePolicy rbl_discharge_;
  CcbDischargePolicy ccb_discharge_;
  BlendedDischargePolicy blended_discharge_;
  ReserveDischargePolicy reserve_;
  RblChargePolicy rbl_charge_;
  CcbChargePolicy ccb_charge_;
  BlendedChargePolicy blended_charge_;

  double last_ccb_ = 1.0;
  Energy last_rbl_ = Joules(0.0);
  TelemetryRecorder* telemetry_ = nullptr;
  DischargePolicy* discharge_override_ = nullptr;
  std::function<void(Duration)> override_advance_;
  Duration elapsed_ = Seconds(0.0);
  std::vector<double> last_discharge_ratios_;
  std::vector<double> last_charge_ratios_;

  CommandLinkClient* link_ = nullptr;
  std::vector<BatteryStatus> last_statuses_;  // Last good query result.
  int consecutive_stale_ = 0;
  bool degraded_ = false;
  std::vector<bool> excluded_;
  std::vector<bool> prev_excluded_;   // Exclusion mask from the last Update.
  std::vector<double> ramp_;          // Reintegration ramp, 1.0 = full share.
  uint64_t last_link_resyncs_ = 0;    // Client resync count already absorbed.
  ResilienceCounters resilience_;
};

}  // namespace sdb

#endif  // SRC_CORE_RUNTIME_H_

// RBL-Discharge and RBL-Charge (paper §3.3): maximise the instantaneous
// Remaining Battery Lifetime by minimising total resistive loss, with the
// paper's DCIR-slope correction — batteries whose resistance will grow
// fastest as they drain are taxed a future-loss term (see
// src/core/allocator.h for the exact objective).
#ifndef SRC_CORE_RBL_POLICY_H_
#define SRC_CORE_RBL_POLICY_H_

#include "src/core/policy.h"

namespace sdb {

struct RblPolicyConfig {
  // Horizon of the future-loss (delta) term. Zero recovers the classic
  // instantaneous y_i ∝ 1/R_i split; the ablation bench sweeps this.
  Duration delta_horizon = Seconds(600.0);
  // Fraction of a battery's max current the policy will plan to (headroom
  // for the hardware's own clamping).
  double current_margin = 0.95;
};

class RblDischargePolicy final : public DischargePolicy {
 public:
  explicit RblDischargePolicy(RblPolicyConfig config = {});

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "RBL-Discharge"; }

 private:
  RblPolicyConfig config_;
};

class RblChargePolicy final : public ChargePolicy {
 public:
  explicit RblChargePolicy(RblPolicyConfig config = {});

  std::vector<double> Allocate(const BatteryViews& views, Power supply) override;
  std::string_view name() const override { return "RBL-Charge"; }

 private:
  RblPolicyConfig config_;
};

}  // namespace sdb

#endif  // SRC_CORE_RBL_POLICY_H_

#include "src/core/workload_aware.h"

#include <algorithm>

#include "src/core/allocator.h"
#include "src/util/check.h"

namespace sdb {

ReserveDischargePolicy::ReserveDischargePolicy(DischargePolicy* fallback,
                                               ReservePolicyConfig config)
    : fallback_(fallback), config_(config) {
  SDB_CHECK(fallback_ != nullptr);
  SDB_CHECK(config_.reserve_margin >= 1.0);
  SDB_CHECK(config_.bias >= 0.0 && config_.bias <= 1.0);
}

int ReserveDischargePolicy::ReservedIndex(const BatteryViews& views, Power load) const {
  (void)load;
  if (!hint_.has_value()) {
    return -1;
  }
  double need_w = hint_->expected_power.value();

  std::vector<double> deliverable(views.size(), 0.0);
  double total_deliverable = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    const BatteryView& v = views[i];
    if (v.is_empty || v.ocv.value() <= 0.0) {
      continue;
    }
    deliverable[i] =
        std::max(0.0, ((v.ocv - v.dcir * v.max_discharge) * v.max_discharge).value());
    total_deliverable += deliverable[i];
  }

  // First choice: a battery that can sustain the hinted power alone, picked
  // for lowest loss fraction at that power (§5.2: preserve the *efficient*
  // battery for the run).
  int best = -1;
  double best_loss_fraction = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    if (deliverable[i] < need_w) {
      continue;
    }
    const BatteryView& v = views[i];
    double y = need_w / v.ocv.value();
    double loss_fraction = y * v.dcir.value() / v.ocv.value();
    if (best < 0 || loss_fraction < best_loss_fraction) {
      best = static_cast<int>(i);
      best_loss_fraction = loss_fraction;
    }
  }
  if (best >= 0) {
    return best;
  }

  // Otherwise: the workload needs several batteries at once. Reserve the
  // battery whose absence would make it infeasible (the scarce capability —
  // e.g. the high power-density cell ahead of an EV hill climb). If even the
  // whole pack cannot serve it, reserving is pointless.
  if (total_deliverable < need_w) {
    return -1;
  }
  int critical = -1;
  for (size_t i = 0; i < views.size(); ++i) {
    if (deliverable[i] <= 0.0) {
      continue;
    }
    if (total_deliverable - deliverable[i] < need_w) {
      // Among critical batteries, protect the scarcest one — the others are
      // big enough to be drawn on in the meantime.
      if (critical < 0 || views[i].remaining_energy < views[critical].remaining_energy) {
        critical = static_cast<int>(i);
      }
    }
  }
  return critical;
}

std::vector<double> ReserveDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  std::vector<double> base = fallback_->Allocate(views, load);
  if (hint_.has_value() && hint_->time_until.value() <= 0.0) {
    // The anticipated workload has arrived: stop reserving and let the
    // fallback route it to the battery we preserved for exactly this.
    return base;
  }
  int reserved = ReservedIndex(views, load);
  if (reserved < 0) {
    return base;
  }
  const BatteryView& r = views[reserved];

  // Energy the hinted workload will need from the reserved battery,
  // inflated by the margin and by that battery's own loss fraction.
  Energy need = hint_->expected_power * hint_->duration * config_.reserve_margin;
  if (r.remaining_energy >= need * 1.5) {
    // Comfortably above the reserve; no need to distort the split.
    return base;
  }

  // Re-run the fallback with the reserved battery masked out; if the others
  // cannot carry any load, keep the original split.
  BatteryViews masked = views;
  masked[reserved].is_empty = true;
  masked[reserved].max_discharge = Amps(0.0);
  std::vector<double> shifted = fallback_->Allocate(masked, load);
  double shifted_sum = 0.0;
  for (double s : shifted) {
    shifted_sum += s;
  }
  if (shifted_sum <= 0.0) {
    return base;
  }
  return BlendShares(shifted, base, config_.bias);
}

}  // namespace sdb

// Section codecs for the rig's checkpointable components (DESIGN.md §16):
// the microcontroller (pack lanes, gauges, circuits, fault injector), the
// safety supervisor, the command-link endpoints and the SDB Runtime. Each
// Encode* produces one section payload for the snapshot container; each
// Decode* is its truncation-checked inverse (kInvalidArgument on damage).
//
// The os-layer sections (predictor, classifier) and the simulator loop
// section are encoded at the emu layer (src/emu/crash.cc) — core cannot
// depend on os/emu.
#ifndef SRC_CORE_CHECKPOINT_RIG_CODEC_H_
#define SRC_CORE_CHECKPOINT_RIG_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/core/runtime.h"
#include "src/hw/command_link.h"
#include "src/hw/microcontroller.h"
#include "src/hw/safety.h"
#include "src/util/status.h"

namespace sdb {
namespace checkpoint {

// kSectionMicro.
std::vector<uint8_t> EncodeMicroState(const MicroState& state);
StatusOr<MicroState> DecodeMicroState(const std::vector<uint8_t>& bytes);

// kSectionSafety.
std::vector<uint8_t> EncodeSupervisorState(const SafetySupervisor::SupervisorState& state);
StatusOr<SafetySupervisor::SupervisorState> DecodeSupervisorState(
    const std::vector<uint8_t>& bytes);

// kSectionLink: client + server endpoint state in one section.
struct LinkState {
  LinkClientState client;
  LinkServerState server;
};
std::vector<uint8_t> EncodeLinkState(const LinkState& state);
StatusOr<LinkState> DecodeLinkState(const std::vector<uint8_t>& bytes);

// kSectionRuntime.
std::vector<uint8_t> EncodeRuntimeState(const RuntimeState& state);
StatusOr<RuntimeState> DecodeRuntimeState(const std::vector<uint8_t>& bytes);

}  // namespace checkpoint
}  // namespace sdb

#endif  // SRC_CORE_CHECKPOINT_RIG_CODEC_H_

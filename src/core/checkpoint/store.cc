#include "src/core/checkpoint/store.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace sdb {
namespace checkpoint {

namespace {

// Process-wide mirrors of the per-store activity, so checkpoint health is
// visible through MetricsRegistry::Snapshot() (same pattern as the runtime's
// ResilienceMetrics).
struct CheckpointMetrics {
  obs::Counter* saves;
  obs::Counter* restores;
  obs::Counter* corrupt_slots;
  obs::Counter* slot_fallbacks;
};

CheckpointMetrics& GlobalCheckpointMetrics() {
  static CheckpointMetrics* metrics = new CheckpointMetrics{
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.saves"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.restores"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.corrupt_slots"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.slot_fallbacks"),
  };
  return *metrics;
}

const char* SlotName(int slot) { return slot == 0 ? "A" : "B"; }

}  // namespace

Status MemorySlotDevice::Write(int slot, const std::vector<uint8_t>& bytes) {
  SDB_CHECK(slot >= 0 && slot < kSlotCount);
  slots_[slot] = bytes;
  present_[slot] = true;
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> MemorySlotDevice::Read(int slot) const {
  SDB_CHECK(slot >= 0 && slot < kSlotCount);
  if (!present_[slot]) {
    return NotFoundError("checkpoint: slot " + std::string(SlotName(slot)) +
                         " never written");
  }
  return slots_[slot];
}

FileSlotDevice::FileSlotDevice(std::string dir) : dir_(std::move(dir)) {}

std::string FileSlotDevice::SlotPath(int slot) const {
  SDB_CHECK(slot >= 0 && slot < kSlotCount);
  return dir_ + (slot == 0 ? "/snap.a" : "/snap.b");
}

Status FileSlotDevice::Write(int slot, const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // Best effort; open decides.
  std::ofstream out(SlotPath(slot), std::ios::binary | std::ios::trunc);
  if (!out) {
    return UnavailableError("checkpoint: cannot open " + SlotPath(slot) +
                            " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return UnavailableError("checkpoint: short write to " + SlotPath(slot));
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> FileSlotDevice::Read(int slot) const {
  std::ifstream in(SlotPath(slot), std::ios::binary);
  if (!in) {
    return NotFoundError("checkpoint: no snapshot at " + SlotPath(slot));
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return UnavailableError("checkpoint: read error on " + SlotPath(slot));
  }
  return bytes;
}

CheckpointStore::CheckpointStore(SlotDevice* device, uint64_t config_digest)
    : device_(device), config_digest_(config_digest) {
  SDB_CHECK(device_ != nullptr);
}

void CheckpointStore::SetWriteMutatorOnce(WriteMutator mutator) {
  mutator_ = std::move(mutator);
}

Status CheckpointStore::Save(Snapshot snapshot, Duration sim_now) {
  snapshot.version = kFormatVersion;
  snapshot.config_digest = config_digest_;
  snapshot.generation = next_generation_;
  std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  if (mutator_) {
    // One-shot torn/bit-flip injection on the encoded image.
    WriteMutator mutator = std::move(mutator_);
    mutator_ = nullptr;
    mutator(bytes);
  }
  const int slot = next_slot_;
  SDB_RETURN_IF_ERROR(device_->Write(slot, bytes));
  next_slot_ = 1 - next_slot_;
  ++next_generation_;
  ++saves_;
  GlobalCheckpointMetrics().saves->Increment();
  SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointSave, sim_now.value(), -1, SlotName(slot),
                    std::string(), static_cast<double>(snapshot.generation),
                    static_cast<double>(bytes.size()));
  return Status::Ok();
}

void CheckpointStore::AdoptLoaded(const LoadResult& loaded) {
  SDB_CHECK(loaded.slot >= 0 && loaded.slot < SlotDevice::kSlotCount);
  next_generation_ = loaded.snapshot.generation + 1;
  next_slot_ = 1 - loaded.slot;
}

StatusOr<LoadResult> CheckpointStore::LoadLastGood() const {
  LoadResult result;
  Status first_error = Status::Ok();
  int present = 0;
  for (int slot = 0; slot < SlotDevice::kSlotCount; ++slot) {
    SlotDiagnostic& diag = result.diagnostics[slot];
    StatusOr<std::vector<uint8_t>> bytes = device_->Read(slot);
    if (!bytes.ok()) {
      if (bytes.status().code() != StatusCode::kNotFound) {
        diag.present = true;  // IO error: the slot exists but is unreadable.
        diag.error = bytes.status().ToString();
      }
      continue;
    }
    diag.present = true;
    ++present;
    StatusOr<Snapshot> decoded = DecodeSnapshot(*bytes);
    Status schema = decoded.ok()
                        ? ValidateSchema(*decoded, config_digest_)
                        : decoded.status();
    if (!schema.ok()) {
      diag.error = schema.ToString();
      ++result.corrupt_slots;
      GlobalCheckpointMetrics().corrupt_slots->Increment();
      SDB_JOURNAL_EVENT(obs::EventKind::kCorruptionDetected, -1.0, -1,
                        SlotName(slot), schema.ToString());
      if (first_error.ok()) {
        first_error = schema;
      }
      continue;
    }
    diag.valid = true;
    diag.generation = decoded->generation;
    if (result.slot < 0 || decoded->generation > result.snapshot.generation) {
      result.snapshot = std::move(*decoded);
      result.slot = slot;
    }
  }
  if (result.slot < 0) {
    if (present == 0) {
      return NotFoundError("checkpoint: no snapshot in either slot");
    }
    return first_error;
  }
  // Fallback = some slot was corrupt yet a valid one remained; the A/B
  // protocol guarantees the survivor is the previous complete snapshot.
  result.fell_back = result.corrupt_slots > 0;
  GlobalCheckpointMetrics().restores->Increment();
  if (result.fell_back) {
    GlobalCheckpointMetrics().slot_fallbacks->Increment();
  }
  SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointRestore, -1.0, -1,
                    SlotName(result.slot), std::string(),
                    static_cast<double>(result.snapshot.generation),
                    static_cast<double>(result.corrupt_slots));
  return result;
}

}  // namespace checkpoint
}  // namespace sdb

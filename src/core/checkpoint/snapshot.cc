#include "src/core/checkpoint/snapshot.h"

#include <string>

#include "src/core/checkpoint/wire.h"
#include "src/util/crc32.h"

namespace sdb {
namespace checkpoint {

namespace {

// Offset of the first byte the CRC covers (everything after the crc field).
constexpr size_t kCrcCoverageStart = 16;

}  // namespace

const Section* Snapshot::FindSection(uint32_t id) const {
  for (const Section& section : sections) {
    if (section.id == id) {
      return &section;
    }
  }
  return nullptr;
}

void Snapshot::AddSection(uint32_t id, std::vector<uint8_t> bytes) {
  sections.push_back(Section{id, std::move(bytes)});
}

std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot) {
  ByteWriter payload;
  for (const Section& section : snapshot.sections) {
    payload.PutU32(section.id);
    payload.PutU64(section.bytes.size());
    payload.PutBytes(section.bytes.data(), section.bytes.size());
  }

  ByteWriter out;
  out.PutU64(kMagic);
  out.PutU16(snapshot.version);
  out.PutU16(0);  // reserved
  out.PutU32(0);  // crc32 placeholder, stamped below
  out.PutU64(snapshot.config_digest);
  out.PutU64(snapshot.generation);
  out.PutU64(payload.size());
  out.PutBytes(payload.bytes().data(), payload.size());

  std::vector<uint8_t> bytes = out.TakeBytes();
  uint32_t crc = Crc32(bytes.data() + kCrcCoverageStart,
                       bytes.size() - kCrcCoverageStart);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return bytes;
}

StatusOr<Snapshot> DecodeSnapshot(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kHeaderSize) {
    return InvalidArgumentError("checkpoint: snapshot shorter than header (" +
                                std::to_string(bytes.size()) + " byte(s))");
  }
  ByteReader header(bytes.data(), kHeaderSize);
  uint64_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  uint32_t stored_crc = 0;
  Snapshot snapshot;
  uint64_t payload_size = 0;
  SDB_RETURN_IF_ERROR(header.ReadU64(&magic));
  SDB_RETURN_IF_ERROR(header.ReadU16(&version));
  SDB_RETURN_IF_ERROR(header.ReadU16(&reserved));
  SDB_RETURN_IF_ERROR(header.ReadU32(&stored_crc));
  SDB_RETURN_IF_ERROR(header.ReadU64(&snapshot.config_digest));
  SDB_RETURN_IF_ERROR(header.ReadU64(&snapshot.generation));
  SDB_RETURN_IF_ERROR(header.ReadU64(&payload_size));
  snapshot.version = version;
  if (magic != kMagic) {
    return InvalidArgumentError("checkpoint: bad magic");
  }
  // The reserved field sits outside the CRC range (which starts after the
  // crc word), so damage there is invisible to the checksum; a writer of
  // this format always emits zero, so anything else is corruption.
  if (reserved != 0) {
    return InvalidArgumentError("checkpoint: nonzero reserved header bytes");
  }
  if (payload_size != bytes.size() - kHeaderSize) {
    return InvalidArgumentError(
        "checkpoint: payload size mismatch (header says " +
        std::to_string(payload_size) + ", file holds " +
        std::to_string(bytes.size() - kHeaderSize) + ")");
  }
  uint32_t actual_crc = Crc32(bytes.data() + kCrcCoverageStart,
                              bytes.size() - kCrcCoverageStart);
  if (actual_crc != stored_crc) {
    return InvalidArgumentError("checkpoint: CRC mismatch (torn or corrupt write)");
  }

  ByteReader payload(bytes.data() + kHeaderSize, bytes.size() - kHeaderSize);
  while (payload.remaining() > 0) {
    uint32_t id = 0;
    uint64_t size = 0;
    SDB_RETURN_IF_ERROR(payload.ReadU32(&id));
    SDB_RETURN_IF_ERROR(payload.ReadU64(&size));
    if (size > payload.remaining()) {
      return InvalidArgumentError("checkpoint: section " + std::to_string(id) +
                                  " overruns payload");
    }
    Section section;
    section.id = id;
    const uint8_t* start = bytes.data() + kHeaderSize + payload.position();
    section.bytes.assign(start, start + size);
    SDB_RETURN_IF_ERROR(payload.Skip(static_cast<size_t>(size)));
    snapshot.sections.push_back(std::move(section));
  }
  return snapshot;
}

Status ValidateSchema(const Snapshot& snapshot, uint64_t expected_config_digest) {
  if (snapshot.version != kFormatVersion) {
    return FailedPreconditionError(
        "checkpoint: format version " + std::to_string(snapshot.version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  if (snapshot.config_digest != expected_config_digest) {
    return FailedPreconditionError(
        "checkpoint: config digest mismatch (snapshot is from a different rig)");
  }
  return Status::Ok();
}

}  // namespace checkpoint
}  // namespace sdb

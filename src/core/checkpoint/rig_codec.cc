#include "src/core/checkpoint/rig_codec.h"

#include <utility>

#include "src/core/checkpoint/wire.h"

namespace sdb {
namespace checkpoint {

namespace {

// --- Shared leaf codecs ------------------------------------------------------

void PutRng(ByteWriter& w, const RngState& rng) {
  for (uint64_t word : rng.state) {
    w.PutU64(word);
  }
  w.PutBool(rng.has_cached_gaussian);
  w.PutF64(rng.cached_gaussian);
}

Status ReadRng(ByteReader& r, RngState* rng) {
  for (uint64_t& word : rng->state) {
    SDB_RETURN_IF_ERROR(r.ReadU64(&word));
  }
  SDB_RETURN_IF_ERROR(r.ReadBool(&rng->has_cached_gaussian));
  return r.ReadF64(&rng->cached_gaussian);
}

void PutLane(ByteWriter& w, const soa::LaneState& lane) {
  w.PutF64(lane.electrical.soc);
  w.PutF64(lane.electrical.v_rc_v);
  w.PutF64(lane.electrical.resistance_scale);
  w.PutU32(lane.electrical.ocv_hint);
  w.PutU32(lane.electrical.dcir_hint);
  w.PutF64(lane.electrical.rc_decay_dt_s);
  w.PutF64(lane.electrical.rc_decay);
  w.PutF64(lane.electrical.ocv_x);
  w.PutF64(lane.electrical.ocv_cache);
  w.PutF64(lane.aging.capacity_factor);
  w.PutF64(lane.aging.cycle_count);
  w.PutF64(lane.aging.cumulative_charge_c);
  w.PutF64(lane.aging.weighted_current_sum);
  w.PutF64(lane.aging.weighted_charge_sum);
  w.PutF64(lane.aging.total_charge_in_c);
  w.PutF64(lane.aging.total_charge_out_c);
  w.PutF64(lane.thermal.temp_k);
  w.PutF64(lane.thermal.total_heat_j);
  w.PutF64(lane.thermal.decay_dt_s);
  w.PutF64(lane.thermal.decay);
  w.PutF64(lane.total_loss_j);
}

Status ReadLane(ByteReader& r, soa::LaneState* lane) {
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.soc));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.v_rc_v));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.resistance_scale));
  SDB_RETURN_IF_ERROR(r.ReadU32(&lane->electrical.ocv_hint));
  SDB_RETURN_IF_ERROR(r.ReadU32(&lane->electrical.dcir_hint));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.rc_decay_dt_s));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.rc_decay));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.ocv_x));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->electrical.ocv_cache));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.capacity_factor));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.cycle_count));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.cumulative_charge_c));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.weighted_current_sum));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.weighted_charge_sum));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.total_charge_in_c));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->aging.total_charge_out_c));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->thermal.temp_k));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->thermal.total_heat_j));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->thermal.decay_dt_s));
  SDB_RETURN_IF_ERROR(r.ReadF64(&lane->thermal.decay));
  return r.ReadF64(&lane->total_loss_j);
}

void PutU8Vector(ByteWriter& w, const std::vector<uint8_t>& v) {
  w.PutU64(v.size());
  w.PutBytes(v.data(), v.size());
}

Status ReadU8Vector(ByteReader& r, std::vector<uint8_t>* out) {
  uint64_t count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&count));
  if (count > r.remaining()) {
    return InvalidArgumentError("checkpoint: byte-vector length exceeds payload");
  }
  out->assign(static_cast<size_t>(count), 0);
  for (auto& b : *out) {
    SDB_RETURN_IF_ERROR(r.ReadU8(&b));
  }
  return Status::Ok();
}

void PutU64Vector(ByteWriter& w, const std::vector<uint64_t>& v) {
  w.PutU64(v.size());
  for (uint64_t x : v) {
    w.PutU64(x);
  }
}

Status ReadU64Vector(ByteReader& r, std::vector<uint64_t>* out) {
  uint64_t count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&count));
  if (count > r.remaining() / 8) {
    return InvalidArgumentError("checkpoint: vector length exceeds payload");
  }
  out->assign(static_cast<size_t>(count), 0);
  for (auto& x : *out) {
    SDB_RETURN_IF_ERROR(r.ReadU64(&x));
  }
  return Status::Ok();
}

// SafetyReading variant: alternative index + raw magnitude. The index comes
// back through the same table, so an out-of-range byte is corruption.
void PutReading(ByteWriter& w, const SafetyReading& reading) {
  w.PutU8(static_cast<uint8_t>(reading.index()));
  w.PutF64(ReadingValue(reading));
}

Status ReadReading(ByteReader& r, SafetyReading* reading) {
  uint8_t index = 0;
  double value = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadU8(&index));
  SDB_RETURN_IF_ERROR(r.ReadF64(&value));
  switch (index) {
    case 0:
      *reading = std::monostate{};
      return Status::Ok();
    case 1:
      *reading = Amps(value);
      return Status::Ok();
    case 2:
      *reading = Volts(value);
      return Status::Ok();
    case 3:
      *reading = Kelvin(value);
      return Status::Ok();
    default:
      return InvalidArgumentError("checkpoint: safety reading alternative out of range");
  }
}

Status ReadEnumU8(ByteReader& r, uint8_t max_inclusive, const char* what, uint8_t* out) {
  SDB_RETURN_IF_ERROR(r.ReadU8(out));
  if (*out > max_inclusive) {
    return InvalidArgumentError(std::string("checkpoint: ") + what + " enum byte out of range");
  }
  return Status::Ok();
}

void PutStatus(ByteWriter& w, const BatteryStatus& s) {
  w.PutF64(s.soc);
  w.PutF64(s.terminal_voltage.value());
  w.PutF64(s.cycle_count);
  w.PutF64(s.full_capacity.value());
  w.PutF64(s.last_current.value());
  w.PutF64(s.temperature.value());
}

Status ReadStatus(ByteReader& r, BatteryStatus* s) {
  double soc = 0.0, tv = 0.0, cycles = 0.0, cap = 0.0, amps = 0.0, temp = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&soc));
  SDB_RETURN_IF_ERROR(r.ReadF64(&tv));
  SDB_RETURN_IF_ERROR(r.ReadF64(&cycles));
  SDB_RETURN_IF_ERROR(r.ReadF64(&cap));
  SDB_RETURN_IF_ERROR(r.ReadF64(&amps));
  SDB_RETURN_IF_ERROR(r.ReadF64(&temp));
  s->soc = soc;
  s->terminal_voltage = Volts(tv);
  s->cycle_count = cycles;
  s->full_capacity = Coulombs(cap);
  s->last_current = Amps(amps);
  s->temperature = Kelvin(temp);
  return Status::Ok();
}

}  // namespace

// --- Microcontroller ---------------------------------------------------------

std::vector<uint8_t> EncodeMicroState(const MicroState& state) {
  ByteWriter w;
  w.PutU64(state.lanes.size());
  for (const soa::LaneState& lane : state.lanes) {
    PutLane(w, lane);
  }
  w.PutBoolVector(state.open_circuit);
  w.PutU64(state.gauges.size());
  for (const FuelGaugeState& gauge : state.gauges) {
    PutRng(w, gauge.rng);
    w.PutF64(gauge.soc_estimate);
    w.PutF64(gauge.last_current.value());
    w.PutF64(gauge.last_voltage.value());
  }
  PutRng(w, state.discharge_circuit.rng);
  w.PutBool(state.discharge_circuit.shortfall_latched);
  PutRng(w, state.charge_circuit.rng);
  PutU64Vector(w, state.charge_circuit.selected_profiles);
  w.PutF64Vector(state.charge_ratios);
  w.PutF64Vector(state.discharge_ratios);
  w.PutBool(state.transfer_active);
  w.PutU64(state.transfer_from);
  w.PutU64(state.transfer_to);
  w.PutF64(state.transfer_power.value());
  w.PutF64(state.transfer_remaining.value());
  w.PutBool(state.awaiting_resync);
  w.PutBool(state.in_reset);
  w.PutU32(state.boot_count);
  w.PutBool(state.has_fault_state);
  if (state.has_fault_state) {
    PutRng(w, state.fault.rng);
    w.PutF64(state.fault.now.value());
    w.PutU64(state.fault.dropped_queries);
    w.PutU64(state.fault.corrupted_replies);
    w.PutU64(state.fault.micro_reboots);
    w.PutBoolVector(state.fault.reboot_fired);
  }
  return w.TakeBytes();
}

StatusOr<MicroState> DecodeMicroState(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  MicroState state;
  uint64_t lane_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&lane_count));
  // 21 fields x 8 bytes is a lower bound per lane; reject corrupt counts
  // before allocating.
  if (lane_count > r.remaining() / 64) {
    return InvalidArgumentError("checkpoint: lane count exceeds payload");
  }
  state.lanes.resize(static_cast<size_t>(lane_count));
  for (auto& lane : state.lanes) {
    SDB_RETURN_IF_ERROR(ReadLane(r, &lane));
  }
  SDB_RETURN_IF_ERROR(r.ReadBoolVector(&state.open_circuit));
  uint64_t gauge_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&gauge_count));
  if (gauge_count > r.remaining() / 64) {
    return InvalidArgumentError("checkpoint: gauge count exceeds payload");
  }
  state.gauges.resize(static_cast<size_t>(gauge_count));
  for (auto& gauge : state.gauges) {
    SDB_RETURN_IF_ERROR(ReadRng(r, &gauge.rng));
    double current = 0.0, volts = 0.0;
    SDB_RETURN_IF_ERROR(r.ReadF64(&gauge.soc_estimate));
    SDB_RETURN_IF_ERROR(r.ReadF64(&current));
    SDB_RETURN_IF_ERROR(r.ReadF64(&volts));
    gauge.last_current = Amps(current);
    gauge.last_voltage = Volts(volts);
  }
  SDB_RETURN_IF_ERROR(ReadRng(r, &state.discharge_circuit.rng));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.discharge_circuit.shortfall_latched));
  SDB_RETURN_IF_ERROR(ReadRng(r, &state.charge_circuit.rng));
  SDB_RETURN_IF_ERROR(ReadU64Vector(r, &state.charge_circuit.selected_profiles));
  SDB_RETURN_IF_ERROR(r.ReadF64Vector(&state.charge_ratios));
  SDB_RETURN_IF_ERROR(r.ReadF64Vector(&state.discharge_ratios));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.transfer_active));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.transfer_from));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.transfer_to));
  double transfer_w = 0.0, transfer_s = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&transfer_w));
  SDB_RETURN_IF_ERROR(r.ReadF64(&transfer_s));
  state.transfer_power = Watts(transfer_w);
  state.transfer_remaining = Seconds(transfer_s);
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.awaiting_resync));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.in_reset));
  SDB_RETURN_IF_ERROR(r.ReadU32(&state.boot_count));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.has_fault_state));
  if (state.has_fault_state) {
    SDB_RETURN_IF_ERROR(ReadRng(r, &state.fault.rng));
    double now_s = 0.0;
    SDB_RETURN_IF_ERROR(r.ReadF64(&now_s));
    state.fault.now = Seconds(now_s);
    SDB_RETURN_IF_ERROR(r.ReadU64(&state.fault.dropped_queries));
    SDB_RETURN_IF_ERROR(r.ReadU64(&state.fault.corrupted_replies));
    SDB_RETURN_IF_ERROR(r.ReadU64(&state.fault.micro_reboots));
    SDB_RETURN_IF_ERROR(r.ReadBoolVector(&state.fault.reboot_fired));
  }
  SDB_RETURN_IF_ERROR(r.ExpectExhausted());
  return state;
}

// --- Safety supervisor -------------------------------------------------------

std::vector<uint8_t> EncodeSupervisorState(const SafetySupervisor::SupervisorState& state) {
  ByteWriter w;
  w.PutU64(state.faults.size());
  for (const FaultRecord& fault : state.faults) {
    w.PutU8(static_cast<uint8_t>(fault.kind));
    PutReading(w, fault.observed);
    PutReading(w, fault.limit);
  }
  w.PutU64(state.lifecycle.size());
  for (const SafetySupervisor::LifecycleState& s : state.lifecycle) {
    w.PutU8(static_cast<uint8_t>(s.health));
    w.PutF64(s.dwell_remaining.value());
    w.PutF64(s.probe_remaining.value());
    w.PutF64(s.next_dwell.value());
    w.PutBool(s.condition_clear);
    w.PutU64(s.trips);
    w.PutU64(s.recoveries);
  }
  w.PutU64(state.transitions.size());
  for (const SafetySupervisor::Transition& t : state.transitions) {
    w.PutU64(t.battery);
    w.PutU8(static_cast<uint8_t>(t.from));
    w.PutU8(static_cast<uint8_t>(t.to));
    w.PutF64(t.at.value());
    w.PutU8(static_cast<uint8_t>(t.kind));
  }
  w.PutU64(state.transitions_dropped);
  w.PutF64(state.clock.value());
  return w.TakeBytes();
}

StatusOr<SafetySupervisor::SupervisorState> DecodeSupervisorState(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  SafetySupervisor::SupervisorState state;
  uint64_t fault_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&fault_count));
  if (fault_count > r.remaining() / 19) {
    return InvalidArgumentError("checkpoint: fault-record count exceeds payload");
  }
  state.faults.resize(static_cast<size_t>(fault_count));
  for (auto& fault : state.faults) {
    uint8_t kind = 0;
    SDB_RETURN_IF_ERROR(
        ReadEnumU8(r, static_cast<uint8_t>(FaultKind::kOverTemperature), "fault kind", &kind));
    fault.kind = static_cast<FaultKind>(kind);
    SDB_RETURN_IF_ERROR(ReadReading(r, &fault.observed));
    SDB_RETURN_IF_ERROR(ReadReading(r, &fault.limit));
  }
  uint64_t lifecycle_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&lifecycle_count));
  if (lifecycle_count > r.remaining() / 42) {
    return InvalidArgumentError("checkpoint: lifecycle count exceeds payload");
  }
  state.lifecycle.resize(static_cast<size_t>(lifecycle_count));
  for (auto& s : state.lifecycle) {
    uint8_t health = 0;
    SDB_RETURN_IF_ERROR(
        ReadEnumU8(r, static_cast<uint8_t>(BatteryHealth::kProbing), "health", &health));
    s.health = static_cast<BatteryHealth>(health);
    double dwell = 0.0, probe = 0.0, next = 0.0;
    SDB_RETURN_IF_ERROR(r.ReadF64(&dwell));
    SDB_RETURN_IF_ERROR(r.ReadF64(&probe));
    SDB_RETURN_IF_ERROR(r.ReadF64(&next));
    s.dwell_remaining = Seconds(dwell);
    s.probe_remaining = Seconds(probe);
    s.next_dwell = Seconds(next);
    SDB_RETURN_IF_ERROR(r.ReadBool(&s.condition_clear));
    SDB_RETURN_IF_ERROR(r.ReadU64(&s.trips));
    SDB_RETURN_IF_ERROR(r.ReadU64(&s.recoveries));
  }
  uint64_t transition_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&transition_count));
  if (transition_count > r.remaining() / 19) {
    return InvalidArgumentError("checkpoint: transition count exceeds payload");
  }
  state.transitions.resize(static_cast<size_t>(transition_count));
  for (auto& t : state.transitions) {
    uint64_t battery = 0;
    SDB_RETURN_IF_ERROR(r.ReadU64(&battery));
    t.battery = static_cast<size_t>(battery);
    uint8_t from = 0, to = 0, kind = 0;
    SDB_RETURN_IF_ERROR(
        ReadEnumU8(r, static_cast<uint8_t>(BatteryHealth::kProbing), "health", &from));
    SDB_RETURN_IF_ERROR(
        ReadEnumU8(r, static_cast<uint8_t>(BatteryHealth::kProbing), "health", &to));
    t.from = static_cast<BatteryHealth>(from);
    t.to = static_cast<BatteryHealth>(to);
    double at = 0.0;
    SDB_RETURN_IF_ERROR(r.ReadF64(&at));
    t.at = Seconds(at);
    SDB_RETURN_IF_ERROR(
        ReadEnumU8(r, static_cast<uint8_t>(FaultKind::kOverTemperature), "fault kind", &kind));
    t.kind = static_cast<FaultKind>(kind);
  }
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.transitions_dropped));
  double clock_s = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&clock_s));
  state.clock = Seconds(clock_s);
  SDB_RETURN_IF_ERROR(r.ExpectExhausted());
  return state;
}

// --- Command link ------------------------------------------------------------

std::vector<uint8_t> EncodeLinkState(const LinkState& state) {
  ByteWriter w;
  w.PutU16(state.client.next_seq);
  w.PutU32(state.client.last_boot_count);
  w.PutU64(state.client.resyncs);
  w.PutU32(state.server.known_boot);
  w.PutBool(state.server.have_last);
  w.PutU16(state.server.last_seq);
  w.PutU8(state.server.last_type);
  PutU8Vector(w, state.server.last_payload);
  PutU8Vector(w, state.server.last_response);
  w.PutU64(state.server.replayed_commands);
  return w.TakeBytes();
}

StatusOr<LinkState> DecodeLinkState(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  LinkState state;
  SDB_RETURN_IF_ERROR(r.ReadU16(&state.client.next_seq));
  SDB_RETURN_IF_ERROR(r.ReadU32(&state.client.last_boot_count));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.client.resyncs));
  SDB_RETURN_IF_ERROR(r.ReadU32(&state.server.known_boot));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.server.have_last));
  SDB_RETURN_IF_ERROR(r.ReadU16(&state.server.last_seq));
  SDB_RETURN_IF_ERROR(r.ReadU8(&state.server.last_type));
  SDB_RETURN_IF_ERROR(ReadU8Vector(r, &state.server.last_payload));
  SDB_RETURN_IF_ERROR(ReadU8Vector(r, &state.server.last_response));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.server.replayed_commands));
  SDB_RETURN_IF_ERROR(r.ExpectExhausted());
  return state;
}

// --- Runtime -----------------------------------------------------------------

std::vector<uint8_t> EncodeRuntimeState(const RuntimeState& state) {
  ByteWriter w;
  w.PutF64(state.directives.charging);
  w.PutF64(state.directives.discharging);
  w.PutBool(state.has_hint);
  w.PutF64(state.hint.time_until.value());
  w.PutF64(state.hint.expected_power.value());
  w.PutF64(state.hint.duration.value());
  w.PutF64(state.last_ccb);
  w.PutF64(state.last_rbl.value());
  w.PutF64(state.elapsed.value());
  w.PutF64Vector(state.last_discharge_ratios);
  w.PutF64Vector(state.last_charge_ratios);
  w.PutU64(state.last_statuses.size());
  for (const BatteryStatus& s : state.last_statuses) {
    PutStatus(w, s);
  }
  w.PutU64(static_cast<uint64_t>(state.consecutive_stale));
  w.PutBool(state.degraded);
  w.PutBoolVector(state.excluded);
  w.PutBoolVector(state.prev_excluded);
  w.PutF64Vector(state.ramp);
  w.PutU64(state.last_link_resyncs);
  w.PutU64(state.resilience.link_retries);
  w.PutU64(state.resilience.link_failures);
  w.PutU64(state.resilience.stale_updates);
  w.PutU64(state.resilience.degraded_entries);
  w.PutU64(state.resilience.degraded_exits);
  w.PutU64(state.resilience.masked_faults);
  w.PutU64(state.resilience.quarantines);
  w.PutU64(state.resilience.reintegrations);
  w.PutU64(state.resilience.resyncs);
  w.PutF64(state.resilience.backoff_total.value());
  return w.TakeBytes();
}

StatusOr<RuntimeState> DecodeRuntimeState(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  RuntimeState state;
  SDB_RETURN_IF_ERROR(r.ReadF64(&state.directives.charging));
  SDB_RETURN_IF_ERROR(r.ReadF64(&state.directives.discharging));
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.has_hint));
  double hint_until = 0.0, hint_power = 0.0, hint_duration = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&hint_until));
  SDB_RETURN_IF_ERROR(r.ReadF64(&hint_power));
  SDB_RETURN_IF_ERROR(r.ReadF64(&hint_duration));
  state.hint.time_until = Seconds(hint_until);
  state.hint.expected_power = Watts(hint_power);
  state.hint.duration = Seconds(hint_duration);
  SDB_RETURN_IF_ERROR(r.ReadF64(&state.last_ccb));
  double rbl_j = 0.0, elapsed_s = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&rbl_j));
  SDB_RETURN_IF_ERROR(r.ReadF64(&elapsed_s));
  state.last_rbl = Joules(rbl_j);
  state.elapsed = Seconds(elapsed_s);
  SDB_RETURN_IF_ERROR(r.ReadF64Vector(&state.last_discharge_ratios));
  SDB_RETURN_IF_ERROR(r.ReadF64Vector(&state.last_charge_ratios));
  uint64_t status_count = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&status_count));
  if (status_count > r.remaining() / 48) {
    return InvalidArgumentError("checkpoint: status count exceeds payload");
  }
  state.last_statuses.resize(static_cast<size_t>(status_count));
  for (auto& s : state.last_statuses) {
    SDB_RETURN_IF_ERROR(ReadStatus(r, &s));
  }
  uint64_t stale = 0;
  SDB_RETURN_IF_ERROR(r.ReadU64(&stale));
  state.consecutive_stale = static_cast<int64_t>(stale);
  SDB_RETURN_IF_ERROR(r.ReadBool(&state.degraded));
  SDB_RETURN_IF_ERROR(r.ReadBoolVector(&state.excluded));
  SDB_RETURN_IF_ERROR(r.ReadBoolVector(&state.prev_excluded));
  SDB_RETURN_IF_ERROR(r.ReadF64Vector(&state.ramp));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.last_link_resyncs));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.link_retries));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.link_failures));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.stale_updates));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.degraded_entries));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.degraded_exits));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.masked_faults));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.quarantines));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.reintegrations));
  SDB_RETURN_IF_ERROR(r.ReadU64(&state.resilience.resyncs));
  double backoff_s = 0.0;
  SDB_RETURN_IF_ERROR(r.ReadF64(&backoff_s));
  state.resilience.backoff_total = Seconds(backoff_s);
  SDB_RETURN_IF_ERROR(r.ExpectExhausted());
  return state;
}

}  // namespace checkpoint
}  // namespace sdb

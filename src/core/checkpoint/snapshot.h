// Versioned, checksummed snapshot container (DESIGN.md §16).
//
// Wire format, little-endian throughout:
//
//   header (40 bytes)
//     u64  magic            "SDBCKPT1" (bytes, read as LE u64)
//     u16  version          kFormatVersion
//     u16  reserved         0
//     u32  crc32            zlib-compatible CRC over every byte AFTER this
//                           field (config_digest .. end of payload)
//     u64  config_digest    caller-defined digest of the rig configuration
//     u64  generation       monotone save counter (A/B slot arbitration)
//     u64  payload_size     bytes of section payload that follow
//   payload: sections, each
//     u32  id               SectionId
//     u64  size             payload bytes
//     ...  bytes
//
// DecodeSnapshot performs structural validation only (magic, truncation,
// CRC, section walk) and fails with kInvalidArgument; schema validation
// (version skew, config-digest mismatch) is ValidateSchema and fails with
// kFailedPrecondition. The split keeps "this file is damaged" distinct from
// "this file is from a different build/rig", which the A/B store reports
// separately.
#ifndef SRC_CORE_CHECKPOINT_SNAPSHOT_H_
#define SRC_CORE_CHECKPOINT_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace sdb {
namespace checkpoint {

inline constexpr uint16_t kFormatVersion = 1;
inline constexpr uint64_t kMagic = 0x3154504B43424453ULL;  // "SDBCKPT1" LE.
inline constexpr size_t kHeaderSize = 40;

// Section ids are append-only; decoders skip unknown ids so older readers
// tolerate newer writers within one format version.
enum SectionId : uint32_t {
  kSectionMicro = 1,       // Pack lanes, gauges, circuits, injector, controller.
  kSectionSafety = 2,      // Supervisor lifecycle + fault latches.
  kSectionLink = 3,        // Command-link client + server replay cache.
  kSectionRuntime = 4,     // SdbRuntime policy/degraded/ramp state.
  kSectionPredictor = 5,   // UserSchedulePredictor day statistics.
  kSectionClassifier = 6,  // WorkloadClassifier sample window.
  kSectionSimLoop = 7,     // Simulator loop state (emu resume point).
};

struct Section {
  uint32_t id = 0;
  std::vector<uint8_t> bytes;
};

struct Snapshot {
  uint16_t version = kFormatVersion;
  uint64_t config_digest = 0;
  uint64_t generation = 0;
  std::vector<Section> sections;

  const Section* FindSection(uint32_t id) const;
  void AddSection(uint32_t id, std::vector<uint8_t> bytes);
};

// Serializes the snapshot, stamping the CRC.
std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot);

// Structural validation + parse. kInvalidArgument on damage of any kind
// (bad magic, truncation, CRC mismatch, mis-sized section walk).
StatusOr<Snapshot> DecodeSnapshot(const std::vector<uint8_t>& bytes);

// Schema validation: the snapshot must carry the running format version and
// the expected rig digest. kFailedPrecondition otherwise.
Status ValidateSchema(const Snapshot& snapshot, uint64_t expected_config_digest);

}  // namespace checkpoint
}  // namespace sdb

#endif  // SRC_CORE_CHECKPOINT_SNAPSHOT_H_

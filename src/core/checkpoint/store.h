// Double-buffered A/B snapshot store (DESIGN.md §16).
//
// Protocol: saves alternate between two slots, each write stamped with a
// monotone generation, so a crash mid-write can only damage the slot being
// written — the other slot still holds the previous complete snapshot.
// LoadLastGood validates both slots (structure via DecodeSnapshot, schema
// via ValidateSchema) and adopts the highest-generation valid one; a slot
// that is present but invalid is counted, journaled (kCorruptionDetected)
// and reported in per-slot diagnostics, never silently loaded.
//
// Torn/partial/bit-flipped-write injection hooks in through the write
// mutator: the harness mutates the encoded bytes after the CRC is stamped
// and before the device write, exactly what a power cut mid-write produces.
#ifndef SRC_CORE_CHECKPOINT_STORE_H_
#define SRC_CORE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/checkpoint/snapshot.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace sdb {
namespace checkpoint {

// Storage backend holding exactly two snapshot slots (0 = A, 1 = B).
class SlotDevice {
 public:
  static constexpr int kSlotCount = 2;

  virtual ~SlotDevice() = default;

  // Replaces slot contents. The device itself is not expected to be atomic:
  // the A/B protocol above provides crash consistency.
  virtual Status Write(int slot, const std::vector<uint8_t>& bytes) = 0;

  // kNotFound when the slot has never been written.
  virtual StatusOr<std::vector<uint8_t>> Read(int slot) const = 0;
};

// In-memory device for tests and the crash soak (simulated process death
// keeps the "disk" alive across the simulated restart).
class MemorySlotDevice : public SlotDevice {
 public:
  Status Write(int slot, const std::vector<uint8_t>& bytes) override;
  StatusOr<std::vector<uint8_t>> Read(int slot) const override;

 private:
  std::vector<uint8_t> slots_[kSlotCount];
  bool present_[kSlotCount] = {false, false};
};

// Files `<dir>/snap.a` and `<dir>/snap.b`. The directory must exist (or be
// creatable); IO failures surface as kUnavailable.
class FileSlotDevice : public SlotDevice {
 public:
  explicit FileSlotDevice(std::string dir);

  Status Write(int slot, const std::vector<uint8_t>& bytes) override;
  StatusOr<std::vector<uint8_t>> Read(int slot) const override;

  std::string SlotPath(int slot) const;

 private:
  std::string dir_;
};

// What LoadLastGood learned about one slot.
struct SlotDiagnostic {
  bool present = false;
  bool valid = false;
  uint64_t generation = 0;  // Meaningful only when valid.
  std::string error;        // Decode/schema error for present-but-invalid.
};

struct LoadResult {
  Snapshot snapshot;
  int slot = -1;            // Slot the snapshot was loaded from.
  int corrupt_slots = 0;    // Present-but-invalid slots encountered.
  bool fell_back = false;   // The newest-written slot was bad; used the other.
  SlotDiagnostic diagnostics[SlotDevice::kSlotCount];
};

class CheckpointStore {
 public:
  using WriteMutator = std::function<void(std::vector<uint8_t>&)>;

  // `device` must outlive the store. `config_digest` identifies the rig;
  // snapshots from other digests are rejected at load.
  CheckpointStore(SlotDevice* device, uint64_t config_digest);

  // Applied to the encoded bytes of the NEXT save only, then cleared
  // (torn-write injection fires on one scheduled checkpoint).
  void SetWriteMutatorOnce(WriteMutator mutator);

  // Stamps generation + digest, encodes, and writes the slot not holding
  // the newest snapshot. `sim_now` is simulated time for the journal.
  Status Save(Snapshot snapshot, Duration sim_now);

  // Validates both slots and returns the highest-generation valid one.
  // kNotFound when no slot was ever written; the first slot's decode error
  // otherwise (typed: kInvalidArgument for damage, kFailedPrecondition for
  // schema skew) when slots exist but none validates.
  StatusOr<LoadResult> LoadLastGood() const;

  // After a warm restart: continue the generation sequence from the loaded
  // snapshot and aim the next save at the other slot, so the surviving
  // last-good image is never the one overwritten first.
  void AdoptLoaded(const LoadResult& loaded);

  uint64_t saves() const { return saves_; }

 private:
  SlotDevice* device_;
  uint64_t config_digest_;
  uint64_t next_generation_ = 1;
  int next_slot_ = 0;
  uint64_t saves_ = 0;
  WriteMutator mutator_;
};

}  // namespace checkpoint
}  // namespace sdb

#endif  // SRC_CORE_CHECKPOINT_STORE_H_

// Little-endian byte codec for checkpoint snapshots (DESIGN.md §16).
//
// ByteWriter appends fixed-width scalars to a growing buffer; ByteReader is
// its truncation-checked inverse: every read returns a Status and a reader
// can never run past the end of the buffer, so a torn or hostile snapshot
// is rejected with a typed error instead of undefined behaviour.
#ifndef SRC_CORE_CHECKPOINT_WIRE_H_
#define SRC_CORE_CHECKPOINT_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace sdb {
namespace checkpoint {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(const uint8_t* data, size_t size) {
    out_.insert(out_.end(), data, data + size);
  }
  void PutF64Vector(const std::vector<double>& v) {
    PutU64(v.size());
    for (double x : v) {
      PutF64(x);
    }
  }
  void PutBoolVector(const std::vector<bool>& v) {
    PutU64(v.size());
    for (bool x : v) {
      PutBool(x);
    }
  }

  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> TakeBytes() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Status ReadU8(uint8_t* out) {
    SDB_RETURN_IF_ERROR(Need(1));
    *out = data_[pos_++];
    return Status::Ok();
  }
  Status ReadU16(uint16_t* out) { return ReadLittleEndian(out, 2); }
  Status ReadU32(uint32_t* out) { return ReadLittleEndian(out, 4); }
  Status ReadU64(uint64_t* out) { return ReadLittleEndian(out, 8); }
  Status ReadBool(bool* out) {
    uint8_t v = 0;
    SDB_RETURN_IF_ERROR(ReadU8(&v));
    *out = v != 0;
    return Status::Ok();
  }
  Status ReadF64(double* out) {
    uint64_t bits = 0;
    SDB_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }
  Status ReadF64Vector(std::vector<double>* out) {
    uint64_t count = 0;
    SDB_RETURN_IF_ERROR(ReadU64(&count));
    // Each element costs 8 bytes, so a count the buffer cannot hold is a
    // corrupt length field, caught here before any allocation.
    if (count > remaining() / 8) {
      return InvalidArgumentError("checkpoint: vector length exceeds payload");
    }
    out->assign(static_cast<size_t>(count), 0.0);
    for (auto& x : *out) {
      SDB_RETURN_IF_ERROR(ReadF64(&x));
    }
    return Status::Ok();
  }
  Status ReadBoolVector(std::vector<bool>* out) {
    uint64_t count = 0;
    SDB_RETURN_IF_ERROR(ReadU64(&count));
    if (count > remaining()) {
      return InvalidArgumentError("checkpoint: vector length exceeds payload");
    }
    out->assign(static_cast<size_t>(count), false);
    for (size_t i = 0; i < count; ++i) {
      bool v = false;
      SDB_RETURN_IF_ERROR(ReadBool(&v));
      (*out)[i] = v;
    }
    return Status::Ok();
  }

  Status Skip(size_t n) {
    SDB_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::Ok();
  }

  // All payload consumed? Trailing garbage marks a corrupt section.
  Status ExpectExhausted() const {
    if (remaining() != 0) {
      return InvalidArgumentError("checkpoint: " + std::to_string(remaining()) +
                                  " trailing byte(s) after section payload");
    }
    return Status::Ok();
  }

 private:
  Status Need(size_t n) const {
    if (remaining() < n) {
      return InvalidArgumentError("checkpoint: truncated payload (need " +
                                  std::to_string(n) + " byte(s), have " +
                                  std::to_string(remaining()) + ")");
    }
    return Status::Ok();
  }

  template <typename T>
  Status ReadLittleEndian(T* out, int width) {
    SDB_RETURN_IF_ERROR(Need(static_cast<size_t>(width)));
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    *out = static_cast<T>(v);
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace checkpoint
}  // namespace sdb

#endif  // SRC_CORE_CHECKPOINT_WIRE_H_

// Directive-parameter blending (paper §3.3): the runtime weighs the four
// "optimal" algorithms by the Charging / Discharging Directive Parameters
// the OS hands it. Weight 1 is pure RBL (maximise useful charge now),
// weight 0 is pure CCB (balance wear / protect longevity).
#ifndef SRC_CORE_BLENDED_POLICY_H_
#define SRC_CORE_BLENDED_POLICY_H_

#include "src/core/policy.h"

namespace sdb {

class BlendedDischargePolicy final : public DischargePolicy {
 public:
  // Both policies must outlive the blend. `weight_a` in [0,1] favours `a`.
  BlendedDischargePolicy(DischargePolicy* a, DischargePolicy* b, double weight_a);

  void set_weight(double weight_a);
  double weight() const { return weight_; }

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "Blended-Discharge"; }

 private:
  DischargePolicy* a_;
  DischargePolicy* b_;
  double weight_;
};

class BlendedChargePolicy final : public ChargePolicy {
 public:
  BlendedChargePolicy(ChargePolicy* a, ChargePolicy* b, double weight_a);

  void set_weight(double weight_a);
  double weight() const { return weight_; }

  std::vector<double> Allocate(const BatteryViews& views, Power supply) override;
  std::string_view name() const override { return "Blended-Charge"; }

 private:
  ChargePolicy* a_;
  ChargePolicy* b_;
  double weight_;
};

}  // namespace sdb

#endif  // SRC_CORE_BLENDED_POLICY_H_

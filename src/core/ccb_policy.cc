#include "src/core/ccb_policy.h"

#include <algorithm>

#include "src/core/allocator.h"
#include "src/util/check.h"

namespace sdb {

namespace {

// Headroom-weighted shares: weight_i = (max wear − wear_i + band), zeroed
// for unavailable batteries, normalised. More headroom (less wear relative
// to chi_i) means a larger share, driving CCB toward 1.
std::vector<double> WearHeadroomShares(const BatteryViews& views, double band,
                                       bool for_charge) {
  std::vector<double> weights(views.size(), 0.0);
  std::vector<bool> eligible(views.size(), false);
  double max_wear = 0.0;
  for (const auto& v : views) {
    max_wear = std::max(max_wear, v.wear_ratio);
  }
  for (size_t i = 0; i < views.size(); ++i) {
    const BatteryView& v = views[i];
    bool available = for_charge ? (!v.is_full && v.max_charge.value() > 0.0)
                                : (!v.is_empty && v.max_discharge.value() > 0.0);
    eligible[i] = available;
    if (available) {
      weights[i] = max_wear - v.wear_ratio + band;
    }
  }
  return NormalizeShares(std::move(weights), &eligible);
}

}  // namespace

CcbDischargePolicy::CcbDischargePolicy(CcbPolicyConfig config) : config_(config) {
  SDB_CHECK(config_.wear_band > 0.0);
}

std::vector<double> CcbDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  (void)load;  // CCB shares depend on wear, not on the load level.
  return WearHeadroomShares(views, config_.wear_band, /*for_charge=*/false);
}

CcbChargePolicy::CcbChargePolicy(CcbPolicyConfig config) : config_(config) {
  SDB_CHECK(config_.wear_band > 0.0);
}

std::vector<double> CcbChargePolicy::Allocate(const BatteryViews& views, Power supply) {
  (void)supply;
  return WearHeadroomShares(views, config_.wear_band, /*for_charge=*/true);
}

}  // namespace sdb

// The two key metrics every SDB charging/discharging policy optimises
// (paper §3.3):
//
//   * CCB — Cycle Count Balance: max_i(lambda_i) / min_j(lambda_j), the
//     ratio between the most- and least-worn battery, wear normalised to
//     each battery's tolerable cycle count. Longevity is maximised by
//     keeping CCB near 1.
//   * RBL — Remaining Battery Lifetime: the useful charge left assuming no
//     future charging, i.e. remaining chemical energy discounted by the
//     resistive losses the anticipated load will incur.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include "src/core/battery_view.h"
#include "src/util/units.h"

namespace sdb {

// CCB >= 1; returns 1 for empty input or when every battery is unworn.
double ComputeCcb(const BatteryViews& views);

// Wear statistics backing CCB.
struct WearSpread {
  double min_wear = 0.0;
  double max_wear = 0.0;
  double mean_wear = 0.0;
};
WearSpread ComputeWearSpread(const BatteryViews& views);

// RBL at an anticipated steady load: remaining energy minus the resistive
// loss it would suffer if the load were split to minimise losses. Returns
// energy (joules).
Energy EstimateRbl(const BatteryViews& views, Power anticipated_load);

// Instantaneous resistive loss if `load` is split across the views with the
// given power shares — the objective RBL-Discharge minimises.
Power InstantaneousLoss(const BatteryViews& views, const std::vector<double>& shares,
                        Power load);

}  // namespace sdb

#endif  // SRC_CORE_METRICS_H_

#include "src/core/mpc_policy.h"

#include "src/util/check.h"

namespace sdb {

MpcDischargePolicy::MpcDischargePolicy(const BatteryParams* battery_a,
                                       const BatteryParams* battery_b, ForecastFn forecast,
                                       MpcConfig config)
    : battery_a_(battery_a), battery_b_(battery_b), forecast_(std::move(forecast)),
      config_(config) {
  SDB_CHECK(battery_a_ != nullptr && battery_b_ != nullptr);
  SDB_CHECK(forecast_ != nullptr);
  SDB_CHECK(config_.replan_period.value() > 0.0);
  SDB_CHECK(config_.horizon.value() >= config_.plan.step.value());
}

void MpcDischargePolicy::Advance(Duration dt) { elapsed_ += dt; }

std::vector<double> MpcDischargePolicy::Allocate(const BatteryViews& views, Power load) {
  SDB_CHECK(views.size() == 2);
  if (elapsed_.value() >= next_replan_.value() || !has_plan_) {
    next_replan_ = elapsed_ + config_.replan_period;
    ++replans_;
    PowerTrace outlook = forecast_(elapsed_, config_.horizon);
    if (!outlook.empty()) {
      PlannerBattery a{battery_a_, views[0].soc};
      PlannerBattery b{battery_b_, views[1].soc};
      PlanResult plan = PlanOptimalDischarge(a, b, outlook, config_.plan);
      if (!plan.share_schedule.empty()) {
        planned_share_a_ = plan.share_schedule.front();
        has_plan_ = true;
      } else {
        has_plan_ = false;
      }
    } else {
      has_plan_ = false;
    }
  }
  if (!has_plan_) {
    return fallback_.Allocate(views, load);
  }
  return {planned_share_a_, 1.0 - planned_share_a_};
}

}  // namespace sdb

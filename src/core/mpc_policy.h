// Model-predictive discharge scheduling: the online middle ground between
// the myopic RBL heuristic and the offline DP plan. At each re-plan the
// policy pulls a load *forecast* for the next few hours (from the schedule
// predictor, a workload hint, or an oracle in evaluation), runs the same
// dynamic program the offline optimizer uses over that receding horizon,
// and executes only the first planned step — the §3.3 "knowledge of the
// future workload" idea turned into a deployable policy.
#ifndef SRC_CORE_MPC_POLICY_H_
#define SRC_CORE_MPC_POLICY_H_

#include <functional>

#include "src/core/optimizer.h"
#include "src/core/policy.h"
#include "src/core/rbl_policy.h"

namespace sdb {

struct MpcConfig {
  Duration horizon = Hours(6.0);        // Forecast window per re-plan.
  Duration replan_period = Minutes(5.0);  // How often the DP re-runs.
  PlanConfig plan;                      // DP resolution (grid/action/step).

  MpcConfig() {
    plan.soc_grid = 31;
    plan.action_grid = 11;
    plan.step = Minutes(5.0);
  }
};

class MpcDischargePolicy final : public DischargePolicy {
 public:
  // Returns the forecast load trace covering [now, now + horizon), with
  // t = 0 meaning "now".
  using ForecastFn = std::function<PowerTrace(Duration now, Duration horizon)>;

  // Two-battery policy over the given manufacturer data; `forecast` supplies
  // the load outlook. Falls back to RBL-Discharge when the DP finds no
  // feasible first step (or the forecast is empty).
  MpcDischargePolicy(const BatteryParams* battery_a, const BatteryParams* battery_b,
                     ForecastFn forecast, MpcConfig config = {});

  // Advances the policy's clock (drives both forecasting and re-planning).
  void Advance(Duration dt);
  Duration elapsed() const { return elapsed_; }

  // Number of DP re-plans executed so far (for overhead accounting).
  int replans() const { return replans_; }

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "MPC-Discharge"; }

 private:
  const BatteryParams* battery_a_;
  const BatteryParams* battery_b_;
  ForecastFn forecast_;
  MpcConfig config_;
  RblDischargePolicy fallback_;

  Duration elapsed_ = Seconds(0.0);
  Duration next_replan_ = Seconds(0.0);
  bool has_plan_ = false;
  double planned_share_a_ = 0.5;
  int replans_ = 0;
};

}  // namespace sdb

#endif  // SRC_CORE_MPC_POLICY_H_

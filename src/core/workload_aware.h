// Workload-aware policies (paper §5.2 and §3.3's closing observation):
// instantaneously-optimal algorithms are not globally optimal — with
// knowledge of an impending workload the runtime can make temporarily
// sub-optimal choices that pay off later, e.g. preserving the efficient
// battery for a high-power run, or preserving the fast-charging battery for
// a user who depends on quick top-ups.
#ifndef SRC_CORE_WORKLOAD_AWARE_H_
#define SRC_CORE_WORKLOAD_AWARE_H_

#include <optional>

#include "src/core/policy.h"
#include "src/util/units.h"

namespace sdb {

// A hint from the OS about an anticipated high-power workload (from the
// user's calendar/assistant per §7, or a learned schedule per §5.2).
struct WorkloadHint {
  Duration time_until;   // When the workload is expected to start.
  Power expected_power;  // Sustained power it will need.
  Duration duration;     // How long it lasts.
};

struct ReservePolicyConfig {
  // Energy multiplier on the hinted workload's needs kept in reserve.
  double reserve_margin = 1.15;
  // How strongly to bias away from the reserved battery while reserving
  // (1 == draw nothing from it unless others cannot carry the load).
  double bias = 1.0;
};

// Preserves the battery best able to serve the hinted workload (highest
// usable power per unit loss) by shifting load onto the other batteries
// until the reserve target is met; otherwise defers to a fallback policy.
class ReserveDischargePolicy final : public DischargePolicy {
 public:
  // `fallback` must outlive the policy.
  ReserveDischargePolicy(DischargePolicy* fallback, ReservePolicyConfig config = {});

  void SetHint(std::optional<WorkloadHint> hint) { hint_ = hint; }
  const std::optional<WorkloadHint>& hint() const { return hint_; }

  // Index of the battery the policy would currently reserve (-1 if none).
  int ReservedIndex(const BatteryViews& views, Power load) const;

  std::vector<double> Allocate(const BatteryViews& views, Power load) override;
  std::string_view name() const override { return "Reserve-Discharge"; }

 private:
  DischargePolicy* fallback_;
  ReservePolicyConfig config_;
  std::optional<WorkloadHint> hint_;
};

}  // namespace sdb

#endif  // SRC_CORE_WORKLOAD_AWARE_H_

#include "src/core/policy.h"

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

std::vector<double> BlendShares(const std::vector<double>& a, const std::vector<double>& b,
                                double weight) {
  SDB_CHECK(a.size() == b.size());
  weight = Clamp(weight, 0.0, 1.0);
  std::vector<double> out(a.size(), 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = weight * a[i] + (1.0 - weight) * b[i];
    sum += out[i];
  }
  if (sum > 0.0) {
    for (auto& s : out) {
      s /= sum;
    }
  }
  return out;
}

}  // namespace sdb

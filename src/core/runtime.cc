#include "src/core/runtime.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

// Chemical energy still extractable at `soc` per the manufacturer OCV curve.
double RemainingEnergyJ(const BatteryParams& params, double soc, double capacity_c) {
  if (soc <= 0.0) {
    return 0.0;
  }
  constexpr int kPanels = 16;
  double h = soc / kPanels;
  double sum = 0.0;
  for (int i = 0; i <= kPanels; ++i) {
    double weight = (i == 0 || i == kPanels) ? 0.5 : 1.0;
    sum += weight * params.ocv_vs_soc.Evaluate(i * h);
  }
  return sum * h * capacity_c;
}

}  // namespace

SdbRuntime::SdbRuntime(SdbMicrocontroller* micro, RuntimeConfig config)
    : micro_(micro),
      config_(config),
      rbl_discharge_(config.rbl),
      ccb_discharge_(config.ccb),
      blended_discharge_(&rbl_discharge_, &ccb_discharge_, config.directives.discharging),
      reserve_(&blended_discharge_, config.reserve),
      rbl_charge_(config.rbl),
      ccb_charge_(config.ccb),
      blended_charge_(&rbl_charge_, &ccb_charge_, config.directives.charging) {
  SDB_CHECK(micro_ != nullptr);
  last_discharge_ratios_.assign(micro_->battery_count(), 0.0);
  last_charge_ratios_.assign(micro_->battery_count(), 0.0);
}

void SdbRuntime::SetChargingDirective(double value) {
  blended_charge_.set_weight(Clamp(value, 0.0, 1.0));
}

void SdbRuntime::SetDischargingDirective(double value) {
  blended_discharge_.set_weight(Clamp(value, 0.0, 1.0));
}

void SdbRuntime::SetDirectives(DirectiveParameters params) {
  SetChargingDirective(params.charging);
  SetDischargingDirective(params.discharging);
}

DirectiveParameters SdbRuntime::directives() const {
  return DirectiveParameters{.charging = blended_charge_.weight(),
                             .discharging = blended_discharge_.weight()};
}

void SdbRuntime::SetWorkloadHint(std::optional<WorkloadHint> hint) {
  reserve_.SetHint(std::move(hint));
}

void SdbRuntime::AdvanceTime(Duration dt) {
  elapsed_ += dt;
  if (override_advance_ != nullptr) {
    override_advance_(dt);
  }
  const auto& hint = reserve_.hint();
  if (!hint.has_value()) {
    return;
  }
  WorkloadHint updated = *hint;
  updated.time_until -= dt;
  if (updated.time_until.value() <= -updated.duration.value()) {
    // The anticipated window has fully passed; stop reserving.
    reserve_.SetHint(std::nullopt);
    return;
  }
  reserve_.SetHint(updated);
}

BatteryViews SdbRuntime::BuildViews() const {
  std::vector<BatteryStatus> statuses = micro_->QueryBatteryStatus();
  BatteryViews views;
  views.reserve(statuses.size());
  for (size_t i = 0; i < statuses.size(); ++i) {
    // Manufacturer data (curves, limits) + gauge estimates (SoC, capacity).
    const BatteryParams& params = micro_->pack().cell(i).params();
    const BatteryStatus& status = statuses[i];
    BatteryView v;
    v.index = i;
    v.name = params.name;
    v.soc = status.soc;
    v.ocv_v = params.ocv_vs_soc.Evaluate(v.soc);
    v.dcir_ohm = params.dcir_vs_soc.Evaluate(v.soc);
    v.dcir_slope = params.dcir_vs_soc.Derivative(v.soc);
    v.capacity_c = status.full_capacity.value();
    v.remaining_energy_j = RemainingEnergyJ(params, v.soc, v.capacity_c);
    v.rated_cycles = params.rated_cycle_count;
    v.wear_ratio = params.rated_cycle_count > 0.0
                       ? status.cycle_count / params.rated_cycle_count
                       : 0.0;
    v.max_discharge_a = params.max_discharge_current.value();
    // Charge acceptance tapers above 80% SoC (the profile's trickle rule).
    v.max_charge_a = params.max_charge_current.value();
    if (v.soc >= 0.8) {
      v.max_charge_a = std::min(v.max_charge_a, params.CRate(0.3).value());
    }
    // Thermal derating: a hot battery is throttled and finally excluded.
    v.temperature_k = status.temperature.value();
    double t_lo = config_.derate_start.value();
    double t_hi = config_.derate_cutoff.value();
    if (v.temperature_k > t_lo) {
      double scale = Clamp((t_hi - v.temperature_k) / (t_hi - t_lo), 0.0, 1.0);
      v.max_discharge_a *= scale;
      v.max_charge_a *= scale;
    }
    v.is_empty = v.soc <= 1e-3;
    v.is_full = v.soc >= 1.0 - 1e-3;
    views.push_back(std::move(v));
  }
  return views;
}

Status SdbRuntime::Update(Power expected_load, Power expected_supply) {
  BatteryViews views = BuildViews();
  if (views.empty()) {
    return FailedPreconditionError("no batteries");
  }

  last_ccb_ = ComputeCcb(views);
  last_rbl_ = EstimateRbl(views, config_.anticipated_load);

  std::vector<double> d = discharge_override_ != nullptr
                              ? discharge_override_->Allocate(views, expected_load)
                              : reserve_.Allocate(views, expected_load);
  double d_sum = 0.0;
  for (double x : d) {
    d_sum += x;
  }
  if (d_sum > 0.0) {
    for (auto& x : d) {
      x /= d_sum;
    }
    SDB_RETURN_IF_ERROR(micro_->SetDischargeRatios(d));
    last_discharge_ratios_ = d;
  }

  std::vector<double> c = blended_charge_.Allocate(views, expected_supply);
  double c_sum = 0.0;
  for (double x : c) {
    c_sum += x;
  }
  if (c_sum > 0.0) {
    for (auto& x : c) {
      x /= c_sum;
    }
    SDB_RETURN_IF_ERROR(micro_->SetChargeRatios(c));
    last_charge_ratios_ = c;
  }

  if (telemetry_ != nullptr) {
    TelemetrySample sample;
    sample.time = elapsed_;
    sample.directives = directives();
    sample.discharge_ratios = last_discharge_ratios_;
    sample.charge_ratios = last_charge_ratios_;
    sample.ccb = last_ccb_;
    sample.rbl = last_rbl_;
    sample.soc.reserve(views.size());
    for (const BatteryView& v : views) {
      sample.soc.push_back(v.soc);
    }
    telemetry_->Record(std::move(sample));
  }
  return Status::Ok();
}

Status SdbRuntime::RequestTransfer(size_t from, size_t to, Power power, Duration duration) {
  return micro_->ChargeOneFromAnother(from, to, power, duration);
}

}  // namespace sdb

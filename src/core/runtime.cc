#include "src/core/runtime.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/core/allocator.h"
#include "src/hw/command_link.h"
#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

// Registry mirrors of ResilienceCounters: every increment of the per-runtime
// struct also lands on the process-wide "sdb.runtime.*" metrics, so health
// is visible through MetricsRegistry::Snapshot() without holding a runtime
// pointer. The legacy struct stays the per-instance view.
struct ResilienceMetrics {
  obs::Counter* link_retries;
  obs::Counter* link_failures;
  obs::Counter* stale_updates;
  obs::Counter* degraded_entries;
  obs::Counter* degraded_exits;
  obs::Counter* masked_faults;
  obs::Counter* quarantines;
  obs::Counter* reintegrations;
  obs::Counter* resyncs;
  obs::Gauge* backoff_total_s;
};

ResilienceMetrics& GlobalResilienceMetrics() {
  static ResilienceMetrics* metrics = new ResilienceMetrics{
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.link_retries"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.link_failures"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.stale_updates"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.degraded_entries"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.degraded_exits"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.masked_faults"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.quarantines"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.reintegrations"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.resyncs"),
      obs::MetricsRegistry::Global().GetGauge("sdb.runtime.backoff_total_s"),
  };
  return *metrics;
}

// Warm-restart observability: how often restores resync'd (or deferred the
// handshake into a brownout window) and how many status fields the hardware
// disagreed with the checkpoint about.
struct RestoreMetrics {
  obs::Counter* restore_resyncs;
  obs::Counter* reconcile_deferred;
  obs::Counter* drift_fields;
};

RestoreMetrics& GlobalRestoreMetrics() {
  static RestoreMetrics* metrics = new RestoreMetrics{
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.restore_resyncs"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.reconcile_deferred"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.checkpoint.drift_fields"),
  };
  return *metrics;
}

// Field-wise drift between a checkpointed battery status and the hardware's
// current report (exact compares: both sides come from the same gauge state,
// so any difference is real divergence, not float noise).
uint64_t CountStatusDrift(const BatteryStatus& saved, const BatteryStatus& hw) {
  uint64_t drift = 0;
  drift += saved.soc != hw.soc ? 1 : 0;
  drift += saved.terminal_voltage.value() != hw.terminal_voltage.value() ? 1 : 0;
  drift += saved.cycle_count != hw.cycle_count ? 1 : 0;
  drift += saved.full_capacity.value() != hw.full_capacity.value() ? 1 : 0;
  drift += saved.last_current.value() != hw.last_current.value() ? 1 : 0;
  drift += saved.temperature.value() != hw.temperature.value() ? 1 : 0;
  return drift;
}

// Chemical energy still extractable at `soc` per the manufacturer OCV curve.
Energy RemainingEnergy(const BatteryParams& params, double soc, Charge capacity) {
  if (soc <= 0.0) {
    return Joules(0.0);
  }
  constexpr int kPanels = 16;
  double h = soc / kPanels;
  double sum = 0.0;
  for (int i = 0; i <= kPanels; ++i) {
    double weight = (i == 0 || i == kPanels) ? 0.5 : 1.0;
    sum += weight * params.ocv_vs_soc.Evaluate(i * h);
  }
  return Joules(sum * h * capacity.value());
}

#if SDB_JOURNAL
// Renders a ratio vector in its JSONL wire form ("[0.5,0.5]"). Policy-switch
// detection compares these strings — JsonNumber round-trips doubles exactly,
// so this is change detection on the journaled representation itself.
std::string FormatRatios(const std::vector<double>& ratios) {
  std::string out = "[";
  for (size_t i = 0; i < ratios.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += obs::JsonNumber(ratios[i]);
  }
  out += "]";
  return out;
}
#endif  // SDB_JOURNAL

// Journals a policy-switch decision when the programmed ratio vector changed,
// carrying both the previous and new ratios plus the blend weight that
// produced them.
void JournalPolicyDecision(double t_s, const char* side, const std::vector<double>& prev,
                           const std::vector<double>& next, double weight) {
#if SDB_JOURNAL
  if (!obs::JournalActive()) {
    return;
  }
  std::string prev_str = FormatRatios(prev);
  std::string next_str = FormatRatios(next);
  if (prev_str == next_str) {
    return;
  }
  obs::EmitEvent(obs::EventKind::kPolicyDecision, t_s, -1, side,
                 prev_str + " -> " + next_str, weight);
#else
  (void)t_s;
  (void)side;
  (void)prev;
  (void)next;
  (void)weight;
#endif
}

}  // namespace

SdbRuntime::SdbRuntime(SdbMicrocontroller* micro, RuntimeConfig config)
    : micro_(micro),
      config_(config),
      rbl_discharge_(config.rbl),
      ccb_discharge_(config.ccb),
      blended_discharge_(&rbl_discharge_, &ccb_discharge_, config.directives.discharging),
      reserve_(&blended_discharge_, config.reserve),
      rbl_charge_(config.rbl),
      ccb_charge_(config.ccb),
      blended_charge_(&rbl_charge_, &ccb_charge_, config.directives.charging) {
  SDB_CHECK(micro_ != nullptr);
  last_discharge_ratios_.assign(micro_->battery_count(), 0.0);
  last_charge_ratios_.assign(micro_->battery_count(), 0.0);
  prev_excluded_.assign(micro_->battery_count(), false);
  ramp_.assign(micro_->battery_count(), 1.0);
}

void SdbRuntime::SetChargingDirective(double value) {
  double clamped = Clamp(value, 0.0, 1.0);
#if SDB_JOURNAL
  // Change detection on the journaled representation (JsonNumber round-trips
  // doubles exactly), so a repeated set of the same weight stays silent.
  if (obs::JournalActive() &&
      obs::JsonNumber(clamped) != obs::JsonNumber(blended_charge_.weight())) {
    obs::EmitEvent(obs::EventKind::kDirectiveChange, elapsed_.value(), -1, "charging",
                   std::string(), clamped, blended_charge_.weight());
  }
#endif
  blended_charge_.set_weight(clamped);
}

void SdbRuntime::SetDischargingDirective(double value) {
  double clamped = Clamp(value, 0.0, 1.0);
#if SDB_JOURNAL
  if (obs::JournalActive() &&
      obs::JsonNumber(clamped) != obs::JsonNumber(blended_discharge_.weight())) {
    obs::EmitEvent(obs::EventKind::kDirectiveChange, elapsed_.value(), -1, "discharging",
                   std::string(), clamped, blended_discharge_.weight());
  }
#endif
  blended_discharge_.set_weight(clamped);
}

void SdbRuntime::SetDirectives(DirectiveParameters params) {
  SetChargingDirective(params.charging);
  SetDischargingDirective(params.discharging);
}

DirectiveParameters SdbRuntime::directives() const {
  return DirectiveParameters{.charging = blended_charge_.weight(),
                             .discharging = blended_discharge_.weight()};
}

void SdbRuntime::SetWorkloadHint(std::optional<WorkloadHint> hint) {
  reserve_.SetHint(std::move(hint));
}

void SdbRuntime::AdvanceTime(Duration dt) {
  elapsed_ += dt;
  if (override_advance_ != nullptr) {
    override_advance_(dt);
  }
  // Grow the reintegration ramp of every battery that is back in the
  // allocation but not yet at full share.
  if (config_.reintegration_horizon.value() > 0.0) {
    const double step = dt.value() / config_.reintegration_horizon.value();
    for (size_t i = 0; i < ramp_.size(); ++i) {
      if (ramp_[i] < 1.0 && !(i < excluded_.size() && excluded_[i])) {
        ramp_[i] = Clamp(ramp_[i] + step, 0.0, 1.0);
      }
    }
  }
  const auto& hint = reserve_.hint();
  if (!hint.has_value()) {
    return;
  }
  WorkloadHint updated = *hint;
  updated.time_until -= dt;
  if (updated.time_until.value() <= -updated.duration.value()) {
    // The anticipated window has fully passed; stop reserving.
    reserve_.SetHint(std::nullopt);
    return;
  }
  reserve_.SetHint(updated);
}

BatteryViews SdbRuntime::BuildViews() const {
  return BuildViewsFrom(micro_->QueryBatteryStatus());
}

BatteryViews SdbRuntime::BuildViewsFrom(const std::vector<BatteryStatus>& statuses) const {
  BatteryViews views;
  views.reserve(statuses.size());
  for (size_t i = 0; i < statuses.size(); ++i) {
    // Manufacturer data (curves, limits) + gauge estimates (SoC, capacity).
    const BatteryParams& params = micro_->pack().cell(i).params();
    const BatteryStatus& status = statuses[i];
    BatteryView v;
    v.index = i;
    v.name = params.name;
    v.soc = status.soc;
    v.ocv = Volts(params.ocv_vs_soc.Evaluate(v.soc));
    v.dcir = Ohms(params.dcir_vs_soc.Evaluate(v.soc));
    v.dcir_slope = Ohms(params.dcir_vs_soc.Derivative(v.soc));
    v.capacity = status.full_capacity;
    v.remaining_energy = RemainingEnergy(params, v.soc, v.capacity);
    v.rated_cycles = params.rated_cycle_count;
    v.wear_ratio = params.rated_cycle_count > 0.0
                       ? status.cycle_count / params.rated_cycle_count
                       : 0.0;
    v.max_discharge = params.max_discharge_current;
    // Charge acceptance tapers above 80% SoC (the profile's trickle rule).
    v.max_charge = params.max_charge_current;
    if (v.soc >= 0.8) {
      v.max_charge = Min(v.max_charge, params.CRate(0.3));
    }
    // Thermal derating: a hot battery is throttled and finally excluded.
    v.temperature = status.temperature;
    double t_lo = config_.derate_start.value();
    double t_hi = config_.derate_cutoff.value();
    if (v.temperature.value() > t_lo) {
      double scale = Clamp((t_hi - v.temperature.value()) / (t_hi - t_lo), 0.0, 1.0);
      v.max_discharge *= scale;
      v.max_charge *= scale;
    }
    v.is_empty = v.soc <= 1e-3;
    v.is_full = v.soc >= 1.0 - 1e-3;
    views.push_back(std::move(v));
  }
  return views;
}

StatusOr<std::vector<BatteryStatus>> SdbRuntime::QueryStatusWithRetry() {
  if (link_ == nullptr) {
    return micro_->QueryBatteryStatus();
  }
  SDB_TRACE_SPAN("core", "runtime.query_status");
  StatusOr<std::vector<BatteryStatus>> result = link_->QueryBatteryStatus();
  Duration backoff = config_.retry_backoff_base;
  for (int attempt = 0; !result.ok() && attempt < config_.link_retries; ++attempt) {
    SDB_TRACE_SPAN("core", "runtime.link_retry");
    ++resilience_.link_retries;
    resilience_.backoff_total += backoff;
    GlobalResilienceMetrics().link_retries->Increment();
    GlobalResilienceMetrics().backoff_total_s->Add(backoff.value());
    backoff = Min(backoff + backoff, config_.retry_backoff_cap);
    result = link_->QueryBatteryStatus();
  }
  if (!result.ok()) {
    ++resilience_.link_failures;
    GlobalResilienceMetrics().link_failures->Increment();
  }
  return result;
}

Status SdbRuntime::Update(Power expected_load, Power expected_supply) {
  SDB_TRACE_SPAN("core", "runtime.update");
  // Direct-wired controllers surface a reboot as awaiting_resync; complete
  // the handshake before issuing commands. (Link-attached runtimes resync
  // transparently inside the client; the count is absorbed below.)
  if (link_ == nullptr && micro_->awaiting_resync() && !micro_->in_reset()) {
    SDB_TRACE_SPAN("core", "runtime.resync");
    micro_->Resync();
    ++resilience_.resyncs;
    GlobalResilienceMetrics().resyncs->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kResync, elapsed_.value(), -1, "direct-resync");
  }
  // Query the battery status, retrying over a flaky link; while the link
  // stays down, plan from the last good status rather than crashing the
  // scheduling step. (The error path used to be silently ignored here.)
  StatusOr<std::vector<BatteryStatus>> statuses = QueryStatusWithRetry();
  if (statuses.ok()) {
    last_statuses_ = std::move(*statuses);
    consecutive_stale_ = 0;
  } else if (last_statuses_.empty()) {
    // No status has ever been seen: there is nothing to plan from.
    return statuses.status();
  } else {
    ++consecutive_stale_;
    ++resilience_.stale_updates;
    GlobalResilienceMetrics().stale_updates->Increment();
  }

  BatteryViews views = BuildViewsFrom(last_statuses_);
  if (views.empty()) {
    return FailedPreconditionError("no batteries");
  }

  {
    SDB_TRACE_SPAN("core", "runtime.policy_eval");
    last_ccb_ = ComputeCcb(views);
    last_rbl_ = EstimateRbl(views, config_.anticipated_load);
  }

  // Degraded mode: exclude batteries the supervisor latched, ones whose
  // status is implausible, and ones past the thermal cutoff.
  excluded_.assign(views.size(), false);
  size_t masked = 0;
  const SafetySupervisor* safety = micro_->safety();
  for (size_t i = 0; i < views.size(); ++i) {
    const BatteryView& v = views[i];
    bool implausible = !std::isfinite(v.soc) || v.soc < 0.0 || v.soc > 1.0 ||
                       !(v.ocv.value() > 0.0);
    bool tripped = !(v.temperature < config_.derate_cutoff);
    if ((safety != nullptr && safety->IsFaulted(i)) || implausible || tripped) {
      excluded_[i] = true;
      ++masked;
    }
  }
  resilience_.masked_faults += masked;
  GlobalResilienceMetrics().masked_faults->Increment(masked);

  // Quarantine / reintegration edges against the previous Update's mask.
  const bool ramping = config_.reintegration_horizon.value() > 0.0;
  for (size_t i = 0; i < excluded_.size(); ++i) {
    const bool was = i < prev_excluded_.size() && prev_excluded_[i];
    if (excluded_[i] && !was) {
      SDB_TRACE_SPAN("core", "runtime.quarantine");
      ++resilience_.quarantines;
      GlobalResilienceMetrics().quarantines->Increment();
      SDB_JOURNAL_EVENT(obs::EventKind::kQuarantine, elapsed_.value(),
                        static_cast<int>(i),
                        (safety != nullptr && safety->IsFaulted(i)) ? "safety"
                                                                    : "telemetry");
      if (ramping) {
        ramp_[i] = 0.0;  // A future return starts from zero share.
      }
    } else if (!excluded_[i] && was) {
      SDB_TRACE_SPAN("core", "runtime.reintegrate");
      ++resilience_.reintegrations;
      GlobalResilienceMetrics().reintegrations->Increment();
      SDB_JOURNAL_EVENT(obs::EventKind::kReintegrate, elapsed_.value(),
                        static_cast<int>(i), ramping ? "ramped" : "immediate");
      if (!ramping) {
        ramp_[i] = 1.0;  // No ramp: rejoin at full share immediately.
      }
    }
  }
  prev_excluded_ = excluded_;

  bool now_degraded =
      masked > 0 || consecutive_stale_ > config_.stale_updates_tolerated;
  if (now_degraded && !degraded_) {
    ++resilience_.degraded_entries;
    GlobalResilienceMetrics().degraded_entries->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kDegradedEnter, elapsed_.value(), -1,
                      std::string(), std::string(), static_cast<double>(masked));
  } else if (!now_degraded && degraded_) {
    ++resilience_.degraded_exits;
    GlobalResilienceMetrics().degraded_exits->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kDegradedExit, elapsed_.value(), -1,
                      std::string(), std::string(), static_cast<double>(masked));
  }
  degraded_ = now_degraded;

  SDB_TRACE_SPAN("core", "runtime.allocate");
  std::vector<double> d = discharge_override_ != nullptr
                              ? discharge_override_->Allocate(views, expected_load)
                              : reserve_.Allocate(views, expected_load);
  if (masked > 0) {
    d = ApplyDegradedExclusion(std::move(d), excluded_);
  }
  if (ramping) {
    d = ApplyReintegrationRamp(std::move(d), ramp_);
  }
  double d_sum = 0.0;
  for (double x : d) {
    d_sum += x;
  }
  if (d_sum > 0.0) {
    for (auto& x : d) {
      x /= d_sum;
    }
    if (link_ != nullptr) {
      if (link_->SetDischargeRatios(d).ok()) {
        JournalPolicyDecision(elapsed_.value(), "discharge", last_discharge_ratios_, d,
                              blended_discharge_.weight());
        last_discharge_ratios_ = d;
      }
      // A failed set keeps the previous ratios programmed; the next healthy
      // Update reprograms them.
    } else {
      SDB_RETURN_IF_ERROR(micro_->SetDischargeRatios(d));
      JournalPolicyDecision(elapsed_.value(), "discharge", last_discharge_ratios_, d,
                            blended_discharge_.weight());
      last_discharge_ratios_ = d;
    }
  }

  std::vector<double> c = blended_charge_.Allocate(views, expected_supply);
  if (masked > 0) {
    c = ApplyDegradedExclusion(std::move(c), excluded_);
  }
  if (ramping) {
    c = ApplyReintegrationRamp(std::move(c), ramp_);
  }
  double c_sum = 0.0;
  for (double x : c) {
    c_sum += x;
  }
  if (c_sum > 0.0) {
    for (auto& x : c) {
      x /= c_sum;
    }
    if (link_ != nullptr) {
      if (link_->SetChargeRatios(c).ok()) {
        JournalPolicyDecision(elapsed_.value(), "charge", last_charge_ratios_, c,
                              blended_charge_.weight());
        last_charge_ratios_ = c;
      }
    } else {
      SDB_RETURN_IF_ERROR(micro_->SetChargeRatios(c));
      JournalPolicyDecision(elapsed_.value(), "charge", last_charge_ratios_, c,
                            blended_charge_.weight());
      last_charge_ratios_ = c;
    }
  }

  if (telemetry_ != nullptr) {
    TelemetrySample sample;
    sample.time = elapsed_;
    sample.directives = directives();
    sample.discharge_ratios = last_discharge_ratios_;
    sample.charge_ratios = last_charge_ratios_;
    sample.ccb = last_ccb_;
    sample.rbl = last_rbl_;
    sample.soc.reserve(views.size());
    for (const BatteryView& v : views) {
      sample.soc.push_back(v.soc);
    }
    sample.degraded = degraded_;
    telemetry_->Record(std::move(sample));
  }

  // Absorb resync handshakes the link client ran transparently this Update.
  if (link_ != nullptr && link_->resyncs() > last_link_resyncs_) {
    uint64_t fresh = link_->resyncs() - last_link_resyncs_;
    last_link_resyncs_ = link_->resyncs();
    resilience_.resyncs += fresh;
    GlobalResilienceMetrics().resyncs->Increment(fresh);
  }
  return Status::Ok();
}

Status SdbRuntime::RequestTransfer(size_t from, size_t to, Power power, Duration duration) {
  return micro_->ChargeOneFromAnother(from, to, power, duration);
}

RuntimeState SdbRuntime::SaveState() const {
  RuntimeState state;
  state.directives = directives();
  if (reserve_.hint().has_value()) {
    state.has_hint = true;
    state.hint = *reserve_.hint();
  }
  state.last_ccb = last_ccb_;
  state.last_rbl = last_rbl_;
  state.elapsed = elapsed_;
  state.last_discharge_ratios = last_discharge_ratios_;
  state.last_charge_ratios = last_charge_ratios_;
  state.last_statuses = last_statuses_;
  state.consecutive_stale = consecutive_stale_;
  state.degraded = degraded_;
  state.excluded = excluded_;
  state.prev_excluded = prev_excluded_;
  state.ramp = ramp_;
  state.last_link_resyncs = last_link_resyncs_;
  state.resilience = resilience_;
  return state;
}

Status SdbRuntime::RestoreState(const RuntimeState& state) {
  const size_t n = micro_->battery_count();
  if (state.last_discharge_ratios.size() != n || state.last_charge_ratios.size() != n ||
      state.prev_excluded.size() != n || state.ramp.size() != n) {
    return InvalidArgumentError("runtime: snapshot arity does not match battery count " +
                                std::to_string(n));
  }
  // last_statuses_/excluded_ may legitimately be empty (no Update yet), but a
  // non-empty vector must match the pack.
  if (!state.last_statuses.empty() && state.last_statuses.size() != n) {
    return InvalidArgumentError("runtime: snapshot status arity does not match battery count");
  }
  if (!state.excluded.empty() && state.excluded.size() != n) {
    return InvalidArgumentError("runtime: snapshot exclusion arity does not match battery count");
  }
  // Route directives through the setters so the blend weights land in the
  // policies; the journal change-detection makes repeated sets silent.
  SetDirectives(state.directives);
  reserve_.SetHint(state.has_hint ? std::optional<WorkloadHint>(state.hint) : std::nullopt);
  last_ccb_ = state.last_ccb;
  last_rbl_ = state.last_rbl;
  elapsed_ = state.elapsed;
  last_discharge_ratios_ = state.last_discharge_ratios;
  last_charge_ratios_ = state.last_charge_ratios;
  last_statuses_ = state.last_statuses;
  consecutive_stale_ = static_cast<int>(state.consecutive_stale);
  degraded_ = state.degraded;
  excluded_ = state.excluded;
  prev_excluded_ = state.prev_excluded;
  ramp_ = state.ramp;
  last_link_resyncs_ = state.last_link_resyncs;
  resilience_ = state.resilience;
  return Status::Ok();
}

StatusOr<RestoreReport> SdbRuntime::RestoreAndResync(const RuntimeState& state) {
  SDB_RETURN_IF_ERROR(RestoreState(state));
  RestoreReport report;
  // Boot-count handshake, directly against the controller: restore happens
  // before the wire is live, and a link roundtrip would consume fault-plan
  // RNG that the uncrashed timeline never drew.
  if (micro_->awaiting_resync()) {
    if (micro_->in_reset()) {
      // Brownout window: the handshake defers to the first Update after the
      // controller comes back (the direct-resync path there).
      report.resync_deferred = true;
      GlobalRestoreMetrics().reconcile_deferred->Increment();
    } else {
      uint32_t boot = micro_->Resync();
      if (link_ != nullptr) {
        link_->AdoptBootCount(boot);
      }
      ++resilience_.resyncs;
      GlobalResilienceMetrics().resyncs->Increment();
      GlobalRestoreMetrics().restore_resyncs->Increment();
      report.resynced = true;
      SDB_JOURNAL_EVENT(obs::EventKind::kResync, elapsed_.value(), -1, "restore-resync",
                        std::string(), static_cast<double>(boot));
    }
  }
  // Drift reconciliation: the checkpointed statuses were written by the
  // pre-crash gauges; ask the hardware what it reports now (a direct const
  // query — no RNG, no wire) and adopt its values, counting disagreements.
  if (!last_statuses_.empty() && !micro_->in_reset()) {
    std::vector<BatteryStatus> hw = micro_->QueryBatteryStatus();
    if (hw.size() == last_statuses_.size()) {
      uint64_t drift = 0;
      for (size_t i = 0; i < hw.size(); ++i) {
        drift += CountStatusDrift(last_statuses_[i], hw[i]);
      }
      if (drift > 0) {
        report.drift_fields = drift;
        GlobalRestoreMetrics().drift_fields->Increment(drift);
        SDB_JOURNAL_EVENT(obs::EventKind::kCheckpointRestore, elapsed_.value(), -1,
                          "drift-reconciled", std::string(), static_cast<double>(drift));
        last_statuses_ = std::move(hw);
      }
    }
  }
  return report;
}

}  // namespace sdb

#include "src/core/runtime.h"

#include <algorithm>
#include <cmath>

#include "src/core/allocator.h"
#include "src/hw/command_link.h"
#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/numeric.h"

namespace sdb {

namespace {

// Registry mirrors of ResilienceCounters: every increment of the per-runtime
// struct also lands on the process-wide "sdb.runtime.*" metrics, so health
// is visible through MetricsRegistry::Snapshot() without holding a runtime
// pointer. The legacy struct stays the per-instance view.
struct ResilienceMetrics {
  obs::Counter* link_retries;
  obs::Counter* link_failures;
  obs::Counter* stale_updates;
  obs::Counter* degraded_entries;
  obs::Counter* degraded_exits;
  obs::Counter* masked_faults;
  obs::Counter* quarantines;
  obs::Counter* reintegrations;
  obs::Counter* resyncs;
  obs::Gauge* backoff_total_s;
};

ResilienceMetrics& GlobalResilienceMetrics() {
  static ResilienceMetrics* metrics = new ResilienceMetrics{
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.link_retries"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.link_failures"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.stale_updates"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.degraded_entries"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.degraded_exits"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.masked_faults"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.quarantines"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.reintegrations"),
      obs::MetricsRegistry::Global().GetCounter("sdb.runtime.resyncs"),
      obs::MetricsRegistry::Global().GetGauge("sdb.runtime.backoff_total_s"),
  };
  return *metrics;
}

// Chemical energy still extractable at `soc` per the manufacturer OCV curve.
Energy RemainingEnergy(const BatteryParams& params, double soc, Charge capacity) {
  if (soc <= 0.0) {
    return Joules(0.0);
  }
  constexpr int kPanels = 16;
  double h = soc / kPanels;
  double sum = 0.0;
  for (int i = 0; i <= kPanels; ++i) {
    double weight = (i == 0 || i == kPanels) ? 0.5 : 1.0;
    sum += weight * params.ocv_vs_soc.Evaluate(i * h);
  }
  return Joules(sum * h * capacity.value());
}

#if SDB_JOURNAL
// Renders a ratio vector in its JSONL wire form ("[0.5,0.5]"). Policy-switch
// detection compares these strings — JsonNumber round-trips doubles exactly,
// so this is change detection on the journaled representation itself.
std::string FormatRatios(const std::vector<double>& ratios) {
  std::string out = "[";
  for (size_t i = 0; i < ratios.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += obs::JsonNumber(ratios[i]);
  }
  out += "]";
  return out;
}
#endif  // SDB_JOURNAL

// Journals a policy-switch decision when the programmed ratio vector changed,
// carrying both the previous and new ratios plus the blend weight that
// produced them.
void JournalPolicyDecision(double t_s, const char* side, const std::vector<double>& prev,
                           const std::vector<double>& next, double weight) {
#if SDB_JOURNAL
  if (!obs::JournalActive()) {
    return;
  }
  std::string prev_str = FormatRatios(prev);
  std::string next_str = FormatRatios(next);
  if (prev_str == next_str) {
    return;
  }
  obs::EmitEvent(obs::EventKind::kPolicyDecision, t_s, -1, side,
                 prev_str + " -> " + next_str, weight);
#else
  (void)t_s;
  (void)side;
  (void)prev;
  (void)next;
  (void)weight;
#endif
}

}  // namespace

SdbRuntime::SdbRuntime(SdbMicrocontroller* micro, RuntimeConfig config)
    : micro_(micro),
      config_(config),
      rbl_discharge_(config.rbl),
      ccb_discharge_(config.ccb),
      blended_discharge_(&rbl_discharge_, &ccb_discharge_, config.directives.discharging),
      reserve_(&blended_discharge_, config.reserve),
      rbl_charge_(config.rbl),
      ccb_charge_(config.ccb),
      blended_charge_(&rbl_charge_, &ccb_charge_, config.directives.charging) {
  SDB_CHECK(micro_ != nullptr);
  last_discharge_ratios_.assign(micro_->battery_count(), 0.0);
  last_charge_ratios_.assign(micro_->battery_count(), 0.0);
  prev_excluded_.assign(micro_->battery_count(), false);
  ramp_.assign(micro_->battery_count(), 1.0);
}

void SdbRuntime::SetChargingDirective(double value) {
  double clamped = Clamp(value, 0.0, 1.0);
#if SDB_JOURNAL
  // Change detection on the journaled representation (JsonNumber round-trips
  // doubles exactly), so a repeated set of the same weight stays silent.
  if (obs::JournalActive() &&
      obs::JsonNumber(clamped) != obs::JsonNumber(blended_charge_.weight())) {
    obs::EmitEvent(obs::EventKind::kDirectiveChange, elapsed_.value(), -1, "charging",
                   std::string(), clamped, blended_charge_.weight());
  }
#endif
  blended_charge_.set_weight(clamped);
}

void SdbRuntime::SetDischargingDirective(double value) {
  double clamped = Clamp(value, 0.0, 1.0);
#if SDB_JOURNAL
  if (obs::JournalActive() &&
      obs::JsonNumber(clamped) != obs::JsonNumber(blended_discharge_.weight())) {
    obs::EmitEvent(obs::EventKind::kDirectiveChange, elapsed_.value(), -1, "discharging",
                   std::string(), clamped, blended_discharge_.weight());
  }
#endif
  blended_discharge_.set_weight(clamped);
}

void SdbRuntime::SetDirectives(DirectiveParameters params) {
  SetChargingDirective(params.charging);
  SetDischargingDirective(params.discharging);
}

DirectiveParameters SdbRuntime::directives() const {
  return DirectiveParameters{.charging = blended_charge_.weight(),
                             .discharging = blended_discharge_.weight()};
}

void SdbRuntime::SetWorkloadHint(std::optional<WorkloadHint> hint) {
  reserve_.SetHint(std::move(hint));
}

void SdbRuntime::AdvanceTime(Duration dt) {
  elapsed_ += dt;
  if (override_advance_ != nullptr) {
    override_advance_(dt);
  }
  // Grow the reintegration ramp of every battery that is back in the
  // allocation but not yet at full share.
  if (config_.reintegration_horizon.value() > 0.0) {
    const double step = dt.value() / config_.reintegration_horizon.value();
    for (size_t i = 0; i < ramp_.size(); ++i) {
      if (ramp_[i] < 1.0 && !(i < excluded_.size() && excluded_[i])) {
        ramp_[i] = Clamp(ramp_[i] + step, 0.0, 1.0);
      }
    }
  }
  const auto& hint = reserve_.hint();
  if (!hint.has_value()) {
    return;
  }
  WorkloadHint updated = *hint;
  updated.time_until -= dt;
  if (updated.time_until.value() <= -updated.duration.value()) {
    // The anticipated window has fully passed; stop reserving.
    reserve_.SetHint(std::nullopt);
    return;
  }
  reserve_.SetHint(updated);
}

BatteryViews SdbRuntime::BuildViews() const {
  return BuildViewsFrom(micro_->QueryBatteryStatus());
}

BatteryViews SdbRuntime::BuildViewsFrom(const std::vector<BatteryStatus>& statuses) const {
  BatteryViews views;
  views.reserve(statuses.size());
  for (size_t i = 0; i < statuses.size(); ++i) {
    // Manufacturer data (curves, limits) + gauge estimates (SoC, capacity).
    const BatteryParams& params = micro_->pack().cell(i).params();
    const BatteryStatus& status = statuses[i];
    BatteryView v;
    v.index = i;
    v.name = params.name;
    v.soc = status.soc;
    v.ocv = Volts(params.ocv_vs_soc.Evaluate(v.soc));
    v.dcir = Ohms(params.dcir_vs_soc.Evaluate(v.soc));
    v.dcir_slope = Ohms(params.dcir_vs_soc.Derivative(v.soc));
    v.capacity = status.full_capacity;
    v.remaining_energy = RemainingEnergy(params, v.soc, v.capacity);
    v.rated_cycles = params.rated_cycle_count;
    v.wear_ratio = params.rated_cycle_count > 0.0
                       ? status.cycle_count / params.rated_cycle_count
                       : 0.0;
    v.max_discharge = params.max_discharge_current;
    // Charge acceptance tapers above 80% SoC (the profile's trickle rule).
    v.max_charge = params.max_charge_current;
    if (v.soc >= 0.8) {
      v.max_charge = Min(v.max_charge, params.CRate(0.3));
    }
    // Thermal derating: a hot battery is throttled and finally excluded.
    v.temperature = status.temperature;
    double t_lo = config_.derate_start.value();
    double t_hi = config_.derate_cutoff.value();
    if (v.temperature.value() > t_lo) {
      double scale = Clamp((t_hi - v.temperature.value()) / (t_hi - t_lo), 0.0, 1.0);
      v.max_discharge *= scale;
      v.max_charge *= scale;
    }
    v.is_empty = v.soc <= 1e-3;
    v.is_full = v.soc >= 1.0 - 1e-3;
    views.push_back(std::move(v));
  }
  return views;
}

StatusOr<std::vector<BatteryStatus>> SdbRuntime::QueryStatusWithRetry() {
  if (link_ == nullptr) {
    return micro_->QueryBatteryStatus();
  }
  SDB_TRACE_SPAN("core", "runtime.query_status");
  StatusOr<std::vector<BatteryStatus>> result = link_->QueryBatteryStatus();
  Duration backoff = config_.retry_backoff_base;
  for (int attempt = 0; !result.ok() && attempt < config_.link_retries; ++attempt) {
    SDB_TRACE_SPAN("core", "runtime.link_retry");
    ++resilience_.link_retries;
    resilience_.backoff_total += backoff;
    GlobalResilienceMetrics().link_retries->Increment();
    GlobalResilienceMetrics().backoff_total_s->Add(backoff.value());
    backoff = Min(backoff + backoff, config_.retry_backoff_cap);
    result = link_->QueryBatteryStatus();
  }
  if (!result.ok()) {
    ++resilience_.link_failures;
    GlobalResilienceMetrics().link_failures->Increment();
  }
  return result;
}

Status SdbRuntime::Update(Power expected_load, Power expected_supply) {
  SDB_TRACE_SPAN("core", "runtime.update");
  // Direct-wired controllers surface a reboot as awaiting_resync; complete
  // the handshake before issuing commands. (Link-attached runtimes resync
  // transparently inside the client; the count is absorbed below.)
  if (link_ == nullptr && micro_->awaiting_resync() && !micro_->in_reset()) {
    SDB_TRACE_SPAN("core", "runtime.resync");
    micro_->Resync();
    ++resilience_.resyncs;
    GlobalResilienceMetrics().resyncs->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kResync, elapsed_.value(), -1, "direct-resync");
  }
  // Query the battery status, retrying over a flaky link; while the link
  // stays down, plan from the last good status rather than crashing the
  // scheduling step. (The error path used to be silently ignored here.)
  StatusOr<std::vector<BatteryStatus>> statuses = QueryStatusWithRetry();
  if (statuses.ok()) {
    last_statuses_ = std::move(*statuses);
    consecutive_stale_ = 0;
  } else if (last_statuses_.empty()) {
    // No status has ever been seen: there is nothing to plan from.
    return statuses.status();
  } else {
    ++consecutive_stale_;
    ++resilience_.stale_updates;
    GlobalResilienceMetrics().stale_updates->Increment();
  }

  BatteryViews views = BuildViewsFrom(last_statuses_);
  if (views.empty()) {
    return FailedPreconditionError("no batteries");
  }

  {
    SDB_TRACE_SPAN("core", "runtime.policy_eval");
    last_ccb_ = ComputeCcb(views);
    last_rbl_ = EstimateRbl(views, config_.anticipated_load);
  }

  // Degraded mode: exclude batteries the supervisor latched, ones whose
  // status is implausible, and ones past the thermal cutoff.
  excluded_.assign(views.size(), false);
  size_t masked = 0;
  const SafetySupervisor* safety = micro_->safety();
  for (size_t i = 0; i < views.size(); ++i) {
    const BatteryView& v = views[i];
    bool implausible = !std::isfinite(v.soc) || v.soc < 0.0 || v.soc > 1.0 ||
                       !(v.ocv.value() > 0.0);
    bool tripped = !(v.temperature < config_.derate_cutoff);
    if ((safety != nullptr && safety->IsFaulted(i)) || implausible || tripped) {
      excluded_[i] = true;
      ++masked;
    }
  }
  resilience_.masked_faults += masked;
  GlobalResilienceMetrics().masked_faults->Increment(masked);

  // Quarantine / reintegration edges against the previous Update's mask.
  const bool ramping = config_.reintegration_horizon.value() > 0.0;
  for (size_t i = 0; i < excluded_.size(); ++i) {
    const bool was = i < prev_excluded_.size() && prev_excluded_[i];
    if (excluded_[i] && !was) {
      SDB_TRACE_SPAN("core", "runtime.quarantine");
      ++resilience_.quarantines;
      GlobalResilienceMetrics().quarantines->Increment();
      SDB_JOURNAL_EVENT(obs::EventKind::kQuarantine, elapsed_.value(),
                        static_cast<int>(i),
                        (safety != nullptr && safety->IsFaulted(i)) ? "safety"
                                                                    : "telemetry");
      if (ramping) {
        ramp_[i] = 0.0;  // A future return starts from zero share.
      }
    } else if (!excluded_[i] && was) {
      SDB_TRACE_SPAN("core", "runtime.reintegrate");
      ++resilience_.reintegrations;
      GlobalResilienceMetrics().reintegrations->Increment();
      SDB_JOURNAL_EVENT(obs::EventKind::kReintegrate, elapsed_.value(),
                        static_cast<int>(i), ramping ? "ramped" : "immediate");
      if (!ramping) {
        ramp_[i] = 1.0;  // No ramp: rejoin at full share immediately.
      }
    }
  }
  prev_excluded_ = excluded_;

  bool now_degraded =
      masked > 0 || consecutive_stale_ > config_.stale_updates_tolerated;
  if (now_degraded && !degraded_) {
    ++resilience_.degraded_entries;
    GlobalResilienceMetrics().degraded_entries->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kDegradedEnter, elapsed_.value(), -1,
                      std::string(), std::string(), static_cast<double>(masked));
  } else if (!now_degraded && degraded_) {
    ++resilience_.degraded_exits;
    GlobalResilienceMetrics().degraded_exits->Increment();
    SDB_JOURNAL_EVENT(obs::EventKind::kDegradedExit, elapsed_.value(), -1,
                      std::string(), std::string(), static_cast<double>(masked));
  }
  degraded_ = now_degraded;

  SDB_TRACE_SPAN("core", "runtime.allocate");
  std::vector<double> d = discharge_override_ != nullptr
                              ? discharge_override_->Allocate(views, expected_load)
                              : reserve_.Allocate(views, expected_load);
  if (masked > 0) {
    d = ApplyDegradedExclusion(std::move(d), excluded_);
  }
  if (ramping) {
    d = ApplyReintegrationRamp(std::move(d), ramp_);
  }
  double d_sum = 0.0;
  for (double x : d) {
    d_sum += x;
  }
  if (d_sum > 0.0) {
    for (auto& x : d) {
      x /= d_sum;
    }
    if (link_ != nullptr) {
      if (link_->SetDischargeRatios(d).ok()) {
        JournalPolicyDecision(elapsed_.value(), "discharge", last_discharge_ratios_, d,
                              blended_discharge_.weight());
        last_discharge_ratios_ = d;
      }
      // A failed set keeps the previous ratios programmed; the next healthy
      // Update reprograms them.
    } else {
      SDB_RETURN_IF_ERROR(micro_->SetDischargeRatios(d));
      JournalPolicyDecision(elapsed_.value(), "discharge", last_discharge_ratios_, d,
                            blended_discharge_.weight());
      last_discharge_ratios_ = d;
    }
  }

  std::vector<double> c = blended_charge_.Allocate(views, expected_supply);
  if (masked > 0) {
    c = ApplyDegradedExclusion(std::move(c), excluded_);
  }
  if (ramping) {
    c = ApplyReintegrationRamp(std::move(c), ramp_);
  }
  double c_sum = 0.0;
  for (double x : c) {
    c_sum += x;
  }
  if (c_sum > 0.0) {
    for (auto& x : c) {
      x /= c_sum;
    }
    if (link_ != nullptr) {
      if (link_->SetChargeRatios(c).ok()) {
        JournalPolicyDecision(elapsed_.value(), "charge", last_charge_ratios_, c,
                              blended_charge_.weight());
        last_charge_ratios_ = c;
      }
    } else {
      SDB_RETURN_IF_ERROR(micro_->SetChargeRatios(c));
      JournalPolicyDecision(elapsed_.value(), "charge", last_charge_ratios_, c,
                            blended_charge_.weight());
      last_charge_ratios_ = c;
    }
  }

  if (telemetry_ != nullptr) {
    TelemetrySample sample;
    sample.time = elapsed_;
    sample.directives = directives();
    sample.discharge_ratios = last_discharge_ratios_;
    sample.charge_ratios = last_charge_ratios_;
    sample.ccb = last_ccb_;
    sample.rbl = last_rbl_;
    sample.soc.reserve(views.size());
    for (const BatteryView& v : views) {
      sample.soc.push_back(v.soc);
    }
    sample.degraded = degraded_;
    telemetry_->Record(std::move(sample));
  }

  // Absorb resync handshakes the link client ran transparently this Update.
  if (link_ != nullptr && link_->resyncs() > last_link_resyncs_) {
    uint64_t fresh = link_->resyncs() - last_link_resyncs_;
    last_link_resyncs_ = link_->resyncs();
    resilience_.resyncs += fresh;
    GlobalResilienceMetrics().resyncs->Increment(fresh);
  }
  return Status::Ok();
}

Status SdbRuntime::RequestTransfer(size_t from, size_t to, Power power, Duration duration) {
  return micro_->ChargeOneFromAnother(from, to, power, duration);
}

}  // namespace sdb

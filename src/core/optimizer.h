// Offline globally-optimal discharge planning.
//
// The paper is explicit that its RBL algorithms are optimal "only in an
// instantaneous sense ... if we had knowledge of the future workload, we
// could improve upon the above instantaneously-optimal algorithms by making
// temporarily sub-optimal choices from which the system can profit later"
// (§3.3). This module makes that claim measurable: given the *entire*
// future load trace, a dynamic program over a discretised (SoC_A, SoC_B)
// grid computes the discharge-ratio schedule that maximises serviced time
// and, among maximal schedules, minimises resistive losses.
//
// The DP plans on the same abstraction the runtime's policies see
// (manufacturer OCV/DCIR curves + coulomb counting); the resulting schedule
// is then replayed against the full emulator by the bench. Complexity is
// O(T * G^2 * A) for T steps, G SoC grid levels per battery and A candidate
// splits — a 24 h day at 5-minute steps with an 81x81 grid solves in well
// under a second.
#ifndef SRC_CORE_OPTIMIZER_H_
#define SRC_CORE_OPTIMIZER_H_

#include <vector>

#include "src/chem/battery_params.h"
#include "src/emu/trace.h"
#include "src/util/units.h"

namespace sdb {

struct PlannerBattery {
  const BatteryParams* params = nullptr;
  double initial_soc = 1.0;
};

struct PlanConfig {
  int soc_grid = 81;            // Grid levels per battery (>= 2).
  int action_grid = 21;         // Candidate splits of the load (>= 2).
  Duration step = Minutes(5.0); // Planning time step.
  // Loss tie-break weight: one joule of loss costs this many seconds of
  // objective. Small enough never to trade away serviced time.
  double loss_weight_s_per_j = 1e-4;
};

struct PlanResult {
  Duration serviced;               // How long the plan can carry the load.
  Energy predicted_loss;           // Resistive loss along the optimal path.
  std::vector<double> share_schedule;  // Battery A's power share per step.
  Duration step;                   // The planning step (copied from config).
  bool full_trace_served = false;
};

// Plans the two-battery discharge schedule for `load`. Both params must
// outlive the call.
PlanResult PlanOptimalDischarge(const PlannerBattery& battery_a, const PlannerBattery& battery_b,
                                const PowerTrace& load, const PlanConfig& config = {});

// Evaluates a *fixed* share (battery A's fraction) on the planner's own
// model — the myopic baseline the bench compares against.
PlanResult EvaluateFixedShare(const PlannerBattery& battery_a, const PlannerBattery& battery_b,
                              const PowerTrace& load, double share_a,
                              const PlanConfig& config = {});

// --- Three-battery planning ---------------------------------------------------

struct Plan3Config {
  int soc_grid = 21;             // Grid levels per battery (state space G^3).
  int share_grid = 6;            // Simplex resolution: shares in k/(share_grid-1).
  Duration step = Minutes(5.0);
  double loss_weight_s_per_j = 1e-4;
};

struct Plan3Result {
  Duration serviced;
  Energy predicted_loss;
  // Battery A's and B's power shares per step (C carries the remainder).
  std::vector<double> share_a_schedule;
  std::vector<double> share_b_schedule;
  Duration step;
  bool full_trace_served = false;
};

// Three-battery generalisation of PlanOptimalDischarge. State space is
// G^3, so keep `soc_grid` modest (21 levels and a 24 h / 5 min trace solve
// in a couple of seconds).
Plan3Result PlanOptimalDischarge3(const PlannerBattery& battery_a,
                                  const PlannerBattery& battery_b,
                                  const PlannerBattery& battery_c, const PowerTrace& load,
                                  const Plan3Config& config = {});

}  // namespace sdb

#endif  // SRC_CORE_OPTIMIZER_H_

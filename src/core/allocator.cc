#include "src/core/allocator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

namespace {

// y at which battery i's marginal cost reaches lambda (inverse of
// mc(y) = 2 R y + 3 H g y^2).
double CurrentAtMultiplier(double r, double hg3, double lambda) {
  if (lambda <= 0.0) {
    return 0.0;
  }
  if (hg3 <= 0.0) {
    return lambda / (2.0 * r);
  }
  // Positive root of hg3 * y^2 + 2 r y - lambda = 0.
  double disc = 4.0 * r * r + 4.0 * hg3 * lambda;
  return (-2.0 * r + std::sqrt(disc)) / (2.0 * hg3);
}

}  // namespace

std::vector<Current> SolveMarginalCostAllocation(const MarginalCostProblem& problem) {
  // Numeric-kernel entry: unwrap the typed problem into raw SI magnitudes
  // once, run the bisection on doubles, and re-wrap the solution.
  const size_t n = problem.resistance.size();
  SDB_CHECK(problem.dcir_growth.size() == n);
  SDB_CHECK(problem.current_cap.size() == n);
  std::vector<Current> result(n, Amps(0.0));
  const double total = problem.total_current.value();
  const double horizon = problem.horizon.value();
  if (total <= 0.0 || n == 0) {
    return result;
  }

  std::vector<double> resistance(n), growth(n), cap(n);
  double cap_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    resistance[i] = problem.resistance[i].value();
    growth[i] = problem.dcir_growth[i].value();
    cap[i] = problem.current_cap[i].value();
    SDB_CHECK(cap[i] >= 0.0);
    if (cap[i] > 0.0) {
      SDB_CHECK(resistance[i] > 0.0);
      SDB_CHECK(growth[i] >= 0.0);
    }
    cap_sum += cap[i];
  }
  if (cap_sum <= total) {
    return problem.current_cap;  // Everything is saturated.
  }

  auto hg3 = [&](size_t i) { return 3.0 * horizon * growth[i]; };
  auto total_at = [&](double lambda) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (cap[i] <= 0.0) {
        continue;
      }
      double y = CurrentAtMultiplier(resistance[i], hg3(i), lambda);
      sum += std::min(y, cap[i]);
    }
    return sum;
  };

  // Bracket lambda: above lambda_hi every eligible battery is saturated.
  double lambda_hi = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (cap[i] <= 0.0) {
      continue;
    }
    double mc = 2.0 * resistance[i] * cap[i] + hg3(i) * cap[i] * cap[i];
    lambda_hi = std::max(lambda_hi, mc);
  }
  lambda_hi *= 1.0 + 1e-9;

  double lo = 0.0;
  double hi = lambda_hi;
  for (int iter = 0; iter < 120; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (total_at(mid) < total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double lambda = 0.5 * (lo + hi);
  for (size_t i = 0; i < n; ++i) {
    if (cap[i] <= 0.0) {
      continue;
    }
    double y = CurrentAtMultiplier(resistance[i], hg3(i), lambda);
    result[i] = Amps(std::min(y, cap[i]));
  }
  return result;
}

std::vector<double> NormalizeShares(std::vector<double> weights,
                                    const std::vector<bool>* eligible) {
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    SDB_CHECK(weights[i] >= 0.0);
    if (eligible != nullptr && !(*eligible)[i]) {
      weights[i] = 0.0;
    }
    sum += weights[i];
  }
  if (sum > 0.0) {
    for (auto& w : weights) {
      w /= sum;
    }
    return weights;
  }
  // Fall back to uniform over eligible entries.
  size_t count = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (eligible == nullptr || (*eligible)[i]) {
      ++count;
    }
  }
  if (count == 0) {
    return weights;  // All zero; caller handles the degenerate case.
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (eligible == nullptr || (*eligible)[i]) ? 1.0 / static_cast<double>(count) : 0.0;
  }
  return weights;
}

std::vector<double> ApplyDegradedExclusion(std::vector<double> shares,
                                           const std::vector<bool>& excluded) {
  SDB_CHECK(shares.size() == excluded.size());
  std::vector<bool> eligible(excluded.size());
  for (size_t i = 0; i < excluded.size(); ++i) {
    eligible[i] = !excluded[i];
    // Tolerate policy rounding: tiny negative shares are treated as zero.
    shares[i] = std::max(0.0, shares[i]);
  }
  return NormalizeShares(std::move(shares), &eligible);
}

std::vector<double> ApplyReintegrationRamp(std::vector<double> shares,
                                           const std::vector<double>& ramp) {
  SDB_CHECK(shares.size() == ramp.size());
  bool all_full = true;
  for (double r : ramp) {
    SDB_CHECK(r >= 0.0 && r <= 1.0);
    all_full = all_full && r == 1.0;
  }
  if (all_full) {
    return shares;  // Bit-identical pass-through when nothing is ramping.
  }
  std::vector<bool> eligible(ramp.size());
  for (size_t i = 0; i < ramp.size(); ++i) {
    eligible[i] = ramp[i] > 0.0;
    shares[i] = std::max(0.0, shares[i]) * ramp[i];
  }
  return NormalizeShares(std::move(shares), &eligible);
}

}  // namespace sdb

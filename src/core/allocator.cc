#include "src/core/allocator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sdb {

namespace {

// y at which battery i's marginal cost reaches lambda (inverse of
// mc(y) = 2 R y + 3 H g y^2).
double CurrentAtMultiplier(double r, double hg3, double lambda) {
  if (lambda <= 0.0) {
    return 0.0;
  }
  if (hg3 <= 0.0) {
    return lambda / (2.0 * r);
  }
  // Positive root of hg3 * y^2 + 2 r y - lambda = 0.
  double disc = 4.0 * r * r + 4.0 * hg3 * lambda;
  return (-2.0 * r + std::sqrt(disc)) / (2.0 * hg3);
}

}  // namespace

std::vector<double> SolveMarginalCostAllocation(const MarginalCostProblem& problem) {
  const size_t n = problem.resistance_ohm.size();
  SDB_CHECK(problem.dcir_growth_per_c.size() == n);
  SDB_CHECK(problem.current_cap_a.size() == n);
  std::vector<double> result(n, 0.0);
  double total = problem.total_current_a;
  if (total <= 0.0 || n == 0) {
    return result;
  }

  double cap_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    SDB_CHECK(problem.current_cap_a[i] >= 0.0);
    if (problem.current_cap_a[i] > 0.0) {
      SDB_CHECK(problem.resistance_ohm[i] > 0.0);
      SDB_CHECK(problem.dcir_growth_per_c[i] >= 0.0);
    }
    cap_sum += problem.current_cap_a[i];
  }
  if (cap_sum <= total) {
    return problem.current_cap_a;  // Everything is saturated.
  }

  auto hg3 = [&](size_t i) { return 3.0 * problem.horizon_s * problem.dcir_growth_per_c[i]; };
  auto total_at = [&](double lambda) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (problem.current_cap_a[i] <= 0.0) {
        continue;
      }
      double y = CurrentAtMultiplier(problem.resistance_ohm[i], hg3(i), lambda);
      sum += std::min(y, problem.current_cap_a[i]);
    }
    return sum;
  };

  // Bracket lambda: above lambda_hi every eligible battery is saturated.
  double lambda_hi = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double cap = problem.current_cap_a[i];
    if (cap <= 0.0) {
      continue;
    }
    double mc = 2.0 * problem.resistance_ohm[i] * cap + hg3(i) * cap * cap;
    lambda_hi = std::max(lambda_hi, mc);
  }
  lambda_hi *= 1.0 + 1e-9;

  double lo = 0.0;
  double hi = lambda_hi;
  for (int iter = 0; iter < 120; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (total_at(mid) < total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double lambda = 0.5 * (lo + hi);
  for (size_t i = 0; i < n; ++i) {
    if (problem.current_cap_a[i] <= 0.0) {
      continue;
    }
    double y = CurrentAtMultiplier(problem.resistance_ohm[i], hg3(i), lambda);
    result[i] = std::min(y, problem.current_cap_a[i]);
  }
  return result;
}

std::vector<double> NormalizeShares(std::vector<double> weights,
                                    const std::vector<bool>* eligible) {
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    SDB_CHECK(weights[i] >= 0.0);
    if (eligible != nullptr && !(*eligible)[i]) {
      weights[i] = 0.0;
    }
    sum += weights[i];
  }
  if (sum > 0.0) {
    for (auto& w : weights) {
      w /= sum;
    }
    return weights;
  }
  // Fall back to uniform over eligible entries.
  size_t count = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (eligible == nullptr || (*eligible)[i]) {
      ++count;
    }
  }
  if (count == 0) {
    return weights;  // All zero; caller handles the degenerate case.
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (eligible == nullptr || (*eligible)[i]) ? 1.0 / static_cast<double>(count) : 0.0;
  }
  return weights;
}

}  // namespace sdb

#!/usr/bin/env python3
"""Regenerates the committed torn-write corpus under tests/core/testdata/.

Each case directory holds an A/B slot pair (snap.a, snap.b) in the
SDBCKPT1 container format: one slot carries a specific class of damage
(torn tail, flipped bit, zeroed extent, schema skew, ...) and the other
a valid snapshot, so `sdbsim crash --corpus` / ValidateTornCorpus must
both detect the damage and recover from the survivor.

The script is fully deterministic (no randomness, no timestamps): running
it twice produces byte-identical files, so the corpus is committed and
any diff after a rerun is a format change that needs review.

Usage: tools/ci/make_torn_corpus.py [--out DIR]
"""

import argparse
import pathlib
import shutil
import struct
import zlib

MAGIC = 0x3154504B43424453  # "SDBCKPT1" little-endian.
FORMAT_VERSION = 1
# Must match kTornCorpusDigest in src/emu/crash.h.
CORPUS_DIGEST = 0xC0DE50AB0B5EED

SECTION_MICRO = 1
SECTION_RUNTIME = 4


def pattern_bytes(length, salt):
    """Deterministic pseudo-random-looking payload filler."""
    out = bytearray()
    state = (salt * 2654435761) & 0xFFFFFFFF
    for _ in range(length):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out.append((state >> 16) & 0xFF)
    return bytes(out)


def encode_snapshot(generation, digest=CORPUS_DIGEST, version=FORMAT_VERSION,
                    reserved=0):
    payload = b""
    for section_id, body in (
        (SECTION_MICRO, pattern_bytes(96, generation * 7 + 1)),
        (SECTION_RUNTIME, pattern_bytes(48, generation * 7 + 2)),
    ):
        payload += struct.pack("<IQ", section_id, len(body)) + body
    tail = struct.pack("<QQQ", digest, generation, len(payload)) + payload
    crc = zlib.crc32(tail) & 0xFFFFFFFF
    header = struct.pack("<QHHI", MAGIC, version, reserved, crc)
    return header + tail


def flip_bit(image, byte_pos, bit):
    out = bytearray(image)
    out[byte_pos] ^= 1 << bit
    return bytes(out)


def zero_range(image, start, length):
    out = bytearray(image)
    out[start:start + length] = b"\x00" * length
    return bytes(out)


def build_cases():
    """Returns {case_name: {slot_file: image_bytes}}.

    Slot A holds generation 1, slot B generation 2 (matching the store's
    A-first write order); the damaged side alternates so both fallback
    directions are exercised.
    """
    a = encode_snapshot(1)
    b = encode_snapshot(2)
    cases = {}

    # Torn tail: the end of the image never hit the device.
    cases["case01-truncate-tail"] = {"snap.a": a[: len(a) // 2], "snap.b": b}
    # A single payload bit landed wrong: CRC mismatch.
    cases["case02-bitflip-payload"] = {"snap.a": a, "snap.b": flip_bit(b, len(b) - 5, 3)}
    # A flipped bit inside the checksummed header fields (config digest).
    cases["case03-bitflip-header"] = {"snap.a": flip_bit(a, 17, 0), "snap.b": b}
    # A middle extent never flushed and reads back as zeros.
    cases["case04-zero-extent"] = {"snap.a": a, "snap.b": zero_range(b, 48, 24)}
    # Wrong magic: not a snapshot at all.
    cases["case05-bad-magic"] = {"snap.a": flip_bit(a, 0, 1), "snap.b": b}
    # Newer format version, CRC intact: schema skew, not corruption.
    cases["case06-newer-version"] = {
        "snap.a": encode_snapshot(1, version=FORMAT_VERSION + 1),
        "snap.b": b,
    }
    # Valid snapshot from a different rig (config digest mismatch).
    cases["case07-foreign-digest"] = {
        "snap.a": a,
        "snap.b": encode_snapshot(2, digest=CORPUS_DIGEST ^ 0xA5A5),
    }
    # Unstructured garbage where a snapshot should be.
    cases["case08-garbage"] = {"snap.a": pattern_bytes(200, 99), "snap.b": b}
    # Nonzero reserved header bytes (outside the CRC range; the decoder
    # must reject them structurally).
    cases["case09-reserved-nonzero"] = {
        "snap.a": encode_snapshot(1, reserved=0x4141),
        "snap.b": b,
    }
    # Image shorter than the fixed header.
    cases["case10-short-header"] = {"snap.a": a, "snap.b": b[:10]}
    return cases


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = (
        pathlib.Path(__file__).resolve().parents[2]
        / "tests" / "core" / "testdata" / "torn_corpus"
    )
    parser.add_argument("--out", type=pathlib.Path, default=default_out)
    args = parser.parse_args()

    if args.out.exists():
        shutil.rmtree(args.out)
    for name, slots in sorted(build_cases().items()):
        case_dir = args.out / name
        case_dir.mkdir(parents=True)
        for slot_file, image in sorted(slots.items()):
            (case_dir / slot_file).write_bytes(image)
        print(f"wrote {case_dir}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate BENCH_*.json reports and gate throughput regressions.

Every perf-bearing bench emits a flat JSON report via bench/bench_report.h:

  {"bench": "monte_carlo", "git_sha": "...", "jobs": 2, "runs": 8,
   "reps": 3, "wall_s": 0.7, "metrics": {"cell_steps_per_s": 3.1e7, ...}}

Schema mode (no --baseline) checks the report is well-formed: every
top-level key present with the right type, every metric a finite number,
and — for benches that declare required metrics below — the headline
metrics present and positive.

Gate mode (--baseline) additionally compares the candidate against a
checked-in baseline report (bench/baselines/): for each gated metric the
candidate must reach at least (1 - threshold) of the baseline value.
The default gated metric is `batch_speedup`, the in-process batch/scalar
ratio, because it is machine-portable: both sides of the ratio are
measured in the same process on the same machine, so a CI runner that is
2x slower than the baseline machine still reproduces the ratio, while
absolute cell-steps/s would flag every hardware change as a regression
(DESIGN.md section 12). Gate absolute metrics with --gate only when the
baseline was produced on the same hardware.

Usage:
  check_bench_json.py BENCH_monte_carlo.json --schema-only
  check_bench_json.py BENCH_monte_carlo.json --baseline bench/baselines/BENCH_monte_carlo.json \
      [--threshold 0.10] [--gate batch_speedup] [--gate cell_steps_per_s]

--schema-only makes schema mode explicit (fixture smoke tests use it) and
refuses to combine with --baseline so a gating invocation cannot silently
degrade into a schema check.
"""

import argparse
import json
import math
import sys

# Metrics that must be present and strictly positive, per bench id.
REQUIRED_METRICS = {
    "monte_carlo": ["cell_steps_per_s", "scalar_cell_steps_per_s", "batch_speedup",
                    "mc_cell_steps_per_s"],
    "weekly_wear": [],
    "fig13_smartwatch": [],
}


def fail(msg):
    sys.exit(f"check_bench_json: FAIL: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot parse: {e}")


def check_schema(doc, path):
    for key, kind in (("bench", str), ("git_sha", str), ("jobs", int), ("runs", int),
                      ("reps", int), ("wall_s", (int, float)), ("metrics", dict)):
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
        if not isinstance(doc[key], kind):
            fail(f"{path}: key '{key}' has type {type(doc[key]).__name__}")
    if not doc["bench"]:
        fail(f"{path}: empty bench id")
    if doc["jobs"] < 1:
        fail(f"{path}: jobs must be >= 1, got {doc['jobs']}")
    if not math.isfinite(doc["wall_s"]) or doc["wall_s"] < 0.0:
        fail(f"{path}: wall_s must be finite and >= 0, got {doc['wall_s']}")
    # "build" (sdb_threads / tracing / journal flags) is validated when
    # present; older reports without it stay acceptable.
    if "build" in doc:
        build = doc["build"]
        if not isinstance(build, dict):
            fail(f"{path}: key 'build' has type {type(build).__name__}")
        for key in ("sdb_threads", "tracing", "journal"):
            if key not in build:
                fail(f"{path}: build block missing key '{key}'")
            if not isinstance(build[key], int):
                fail(f"{path}: build key '{key}' has type {type(build[key]).__name__}")
        if build["sdb_threads"] < 0:
            fail(f"{path}: build sdb_threads must be >= 0, got {build['sdb_threads']}")
        for key in ("tracing", "journal"):
            if build[key] not in (0, 1):
                fail(f"{path}: build key '{key}' must be 0 or 1, got {build[key]}")
    for name, value in doc["metrics"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            fail(f"{path}: metric '{name}' is not a finite number: {value!r}")
    for name in REQUIRED_METRICS.get(doc["bench"], []):
        if name not in doc["metrics"]:
            fail(f"{path}: bench '{doc['bench']}' missing required metric '{name}'")
        if doc["metrics"][name] <= 0.0:
            fail(f"{path}: required metric '{name}' must be > 0, got {doc['metrics'][name]}")
    print(f"check_bench_json: {path}: schema OK "
          f"(bench={doc['bench']}, {len(doc['metrics'])} metrics)")


def check_gates(candidate, baseline, gates, threshold, cand_path, base_path):
    if candidate["bench"] != baseline["bench"]:
        fail(f"bench mismatch: candidate '{candidate['bench']}' vs "
             f"baseline '{baseline['bench']}'")
    failed = []
    for gate in gates:
        base = baseline["metrics"].get(gate)
        cand = candidate["metrics"].get(gate)
        if base is None:
            fail(f"{base_path}: baseline has no metric '{gate}'")
        if cand is None:
            fail(f"{cand_path}: candidate has no metric '{gate}'")
        floor = base * (1.0 - threshold)
        verdict = "OK" if cand >= floor else "REGRESSED"
        print(f"check_bench_json: {gate}: candidate {cand:.6g} vs baseline {base:.6g} "
              f"(floor {floor:.6g}, threshold {threshold:.0%}) {verdict}")
        if cand < floor:
            failed.append(gate)
    if failed:
        fail(f"regressed metrics: {', '.join(failed)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="candidate BENCH_*.json")
    parser.add_argument("--baseline", help="checked-in baseline BENCH_*.json to gate against")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop vs baseline (default 0.10)")
    parser.add_argument("--gate", action="append", default=[],
                        help="metric to gate (repeatable; default: batch_speedup)")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate the report shape only; rejects --baseline")
    args = parser.parse_args()

    if args.schema_only and args.baseline:
        parser.error("--schema-only and --baseline are mutually exclusive")
    candidate = load(args.report)
    check_schema(candidate, args.report)
    if args.baseline:
        baseline = load(args.baseline)
        check_schema(baseline, args.baseline)
        gates = args.gate or ["batch_speedup"]
        check_gates(candidate, baseline, gates, args.threshold, args.report, args.baseline)
    print("check_bench_json: PASS")


if __name__ == "__main__":
    main()

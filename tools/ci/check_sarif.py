#!/usr/bin/env python3
"""Validates an sdb_lint SARIF log against the SARIF 2.1.0 structure CI
relies on (stdlib only — no jsonschema in the image).

Checks the invariants the upload pipeline and code-scanning UI need:
  * version == "2.1.0" and a sarif-2.1.0 $schema reference,
  * exactly one run, driver name "sdb_lint", non-empty rule catalogue with
    unique ids and shortDescription text,
  * every result references a declared rule (ruleId and, when present, a
    consistent ruleIndex), has message.text, an allowed level, and at least
    one physical location with a uri and a startLine >= 1.

Usage: check_sarif.py REPORT.sarif
Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

ALLOWED_LEVELS = {"none", "note", "warning", "error"}


def fail(msg: str) -> None:
    print(f"check_sarif: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as fh:
            log = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_sarif: cannot read {argv[1]}: {exc}", file=sys.stderr)
        return 2

    if log.get("version") != "2.1.0":
        fail(f"version is {log.get('version')!r}, want '2.1.0'")
    if "sarif-2.1.0" not in log.get("$schema", ""):
        fail(f"$schema {log.get('$schema')!r} does not reference sarif-2.1.0")
    runs = log.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("runs must be a list with exactly one run")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "sdb_lint":
        fail(f"tool.driver.name is {driver.get('name')!r}, want 'sdb_lint'")
    rules = driver.get("rules")
    if not isinstance(rules, list) or not rules:
        fail("tool.driver.rules must be a non-empty list")
    rule_ids = []
    for i, rule in enumerate(rules):
        rule_id = rule.get("id")
        if not rule_id:
            fail(f"rules[{i}] has no id")
        if rule_id in rule_ids:
            fail(f"duplicate rule id {rule_id!r}")
        rule_ids.append(rule_id)
        if not rule.get("shortDescription", {}).get("text"):
            fail(f"rule {rule_id!r} has no shortDescription.text")

    results = run.get("results")
    if not isinstance(results, list):
        fail("run.results must be a list (empty on a clean run)")
    for i, result in enumerate(results):
        where = f"results[{i}]"
        rule_id = result.get("ruleId")
        if rule_id not in rule_ids:
            fail(f"{where}: ruleId {rule_id!r} not in the rule catalogue")
        if "ruleIndex" in result and rule_ids[result["ruleIndex"]] != rule_id:
            fail(f"{where}: ruleIndex {result['ruleIndex']} does not match {rule_id!r}")
        if result.get("level") not in ALLOWED_LEVELS:
            fail(f"{where}: level {result.get('level')!r} not in {sorted(ALLOWED_LEVELS)}")
        if not result.get("message", {}).get("text"):
            fail(f"{where}: missing message.text")
        locations = result.get("locations")
        if not isinstance(locations, list) or not locations:
            fail(f"{where}: missing locations")
        physical = locations[0].get("physicalLocation", {})
        if not physical.get("artifactLocation", {}).get("uri"):
            fail(f"{where}: missing physicalLocation.artifactLocation.uri")
        start_line = physical.get("region", {}).get("startLine")
        if not isinstance(start_line, int) or start_line < 1:
            fail(f"{where}: region.startLine must be an int >= 1, got {start_line!r}")

    print(
        f"check_sarif: OK ({len(rule_ids)} rules, {len(results)} results)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Gate the cost of compiled-in-but-disabled observability.

Compares google-benchmark JSON files from bench_policy_overhead:

  baseline    built with every obs layer compiled out
              (-DSDB_TRACING=OFF -DSDB_JOURNAL=OFF)
  candidates  one or more builds with obs layers compiled in but dormant
              (e.g. journal-only, then tracing + journal)

For each benchmark the min real_time across repetitions is used (min of
repetitions is the standard noise filter for shared CI runners). The gate
fails when any candidate's geometric-mean slowdown over the baseline
exceeds the threshold (default 5%); per-benchmark numbers are printed
either way so a regression is attributable from the CI log alone.

Usage:
  check_overhead.py BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]
      [--threshold 0.05]
"""

import argparse
import json
import math
import sys


def min_times(path):
    """Return {benchmark name: min real_time over repetitions}."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        # With --benchmark_repetitions, aggregate rows (mean/median/stddev)
        # carry run_type "aggregate"; keep only the raw iterations.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        t = float(bench["real_time"])
        if name not in times or t < times[name]:
            times[name] = t
    if not times:
        sys.exit(f"error: no iteration rows in {path}")
    return times


def gate_candidate(base, cand_path, threshold):
    """Print the per-benchmark comparison; return the geomean overhead."""
    cand = min_times(cand_path)
    common = sorted(set(base) & set(cand))
    if not common:
        sys.exit(f"error: baseline and {cand_path} share no benchmark names")
    missing = sorted(set(base) ^ set(cand))
    if missing:
        print(f"warning: benchmarks present in only one file: {', '.join(missing)}")

    log_sum = 0.0
    print(f"\n{cand_path} vs baseline:")
    print(f"{'benchmark':<40} {'baseline':>12} {'candidate':>12} {'ratio':>8}")
    for name in common:
        ratio = cand[name] / base[name]
        log_sum += math.log(ratio)
        print(f"{name:<40} {base[name]:>12.1f} {cand[name]:>12.1f} {ratio:>8.3f}")
    geomean = math.exp(log_sum / len(common))
    overhead = geomean - 1.0
    print(f"geomean slowdown: {overhead * 100:+.2f}% "
          f"(threshold {threshold * 100:.1f}%)")
    return overhead


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="JSON from the all-obs-off build")
    parser.add_argument("candidates", nargs="+",
                        help="JSON from builds with obs compiled in")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max allowed geomean slowdown (default 0.05 = 5%%)")
    args = parser.parse_args()

    base = min_times(args.baseline)
    failed = []
    for cand_path in args.candidates:
        if gate_candidate(base, cand_path, args.threshold) > args.threshold:
            failed.append(cand_path)
    if failed:
        sys.exit("FAIL: disabled-obs overhead exceeds the threshold for: "
                 + ", ".join(failed))
    print("\nOK: every candidate is within the overhead budget")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Gate the cost of compiled-in-but-disabled tracing.

Compares two google-benchmark JSON files from bench_policy_overhead:

  baseline  built with -DSDB_TRACING=OFF (span macros compiled out)
  candidate built with tracing compiled in, tracer runtime-disabled

For each benchmark the min real_time across repetitions is used (min of
repetitions is the standard noise filter for shared CI runners). The gate
fails when the geometric-mean slowdown of candidate over baseline exceeds
the threshold (default 5%); per-benchmark numbers are printed either way so
a regression is attributable from the CI log alone.

Usage:
  check_overhead.py BASELINE.json CANDIDATE.json [--threshold 0.05]
"""

import argparse
import json
import math
import sys


def min_times(path):
    """Return {benchmark name: min real_time over repetitions}."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        # With --benchmark_repetitions, aggregate rows (mean/median/stddev)
        # carry run_type "aggregate"; keep only the raw iterations.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        t = float(bench["real_time"])
        if name not in times or t < times[name]:
            times[name] = t
    if not times:
        sys.exit(f"error: no iteration rows in {path}")
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="JSON from the -DSDB_TRACING=OFF build")
    parser.add_argument("candidate", help="JSON from the tracing-compiled-in build")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max allowed geomean slowdown (default 0.05 = 5%%)")
    args = parser.parse_args()

    base = min_times(args.baseline)
    cand = min_times(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        sys.exit("error: baseline and candidate share no benchmark names")
    missing = sorted(set(base) ^ set(cand))
    if missing:
        print(f"warning: benchmarks present in only one file: {', '.join(missing)}")

    log_sum = 0.0
    print(f"{'benchmark':<40} {'baseline':>12} {'candidate':>12} {'ratio':>8}")
    for name in common:
        ratio = cand[name] / base[name]
        log_sum += math.log(ratio)
        print(f"{name:<40} {base[name]:>12.1f} {cand[name]:>12.1f} {ratio:>8.3f}")
    geomean = math.exp(log_sum / len(common))
    overhead = geomean - 1.0
    print(f"\ngeomean slowdown: {overhead * 100:+.2f}% "
          f"(threshold {args.threshold * 100:.1f}%)")
    if overhead > args.threshold:
        sys.exit("FAIL: disabled-tracing overhead exceeds the threshold")
    print("OK: disabled tracing is within the overhead budget")


if __name__ == "__main__":
    main()

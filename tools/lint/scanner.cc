#include "tools/lint/scanner.h"

#include <cctype>
#include <cstring>

namespace sdb_lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// One shared state machine drives both entry points. `emit` receives every
// surviving code character (space-substituted where elided); `token` is
// called for each string/char literal so Lex() can keep a placeholder.
//
// States are handled inline rather than as an enum so the raw-string scan
// (which needs the delimiter) stays local.
template <typename EmitChar, typename EmitLiteral>
void Scan(const std::string& text, EmitChar emit, EmitLiteral literal) {
  size_t i = 0;
  const size_t n = text.size();
  auto at = [&](size_t k) { return k < n ? text[k] : '\0'; };
  char prev_code = '\0';  // Last non-elided, non-space code character.
  while (i < n) {
    char c = text[i];
    char next = at(i + 1);
    if (c == '/' && next == '/') {  // Line comment.
      while (i < n && text[i] != '\n') {
        ++i;
      }
      continue;  // The '\n' itself is emitted by the main loop.
    }
    if (c == '/' && next == '*') {  // Block comment.
      i += 2;
      while (i < n && !(text[i] == '*' && at(i + 1) == '/')) {
        if (text[i] == '\n') {
          emit('\n');
        }
        ++i;
      }
      i = i < n ? i + 2 : n;
      continue;
    }
    // Raw string literal: [encoding-prefix] R"delim( ... )delim". The
    // prefix characters (u8, u, U, L) were already emitted as identifier
    // text by the time we see R" — that is fine, they lex as part of an
    // identifier token which no rule matches.
    if (c == 'R' && next == '"' && !IsIdentChar(prev_code)) {
      size_t delim_start = i + 2;
      size_t paren = text.find('(', delim_start);
      if (paren != std::string::npos && paren - delim_start <= 16) {
        std::string delim = text.substr(delim_start, paren - delim_start);
        std::string closer = ")" + delim + "\"";
        size_t end = text.find(closer, paren + 1);
        size_t stop = end == std::string::npos ? n : end + closer.size();
        int start_line_breaks = 0;
        for (size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') {
            ++start_line_breaks;
          }
        }
        literal("\"\"");
        emit('"');
        emit('"');
        for (int k = 0; k < start_line_breaks; ++k) {
          emit('\n');
        }
        i = stop;
        prev_code = '"';
        continue;
      }
      // No opening paren in range: fall through and treat as ordinary code.
    }
    if (c == '"') {  // Ordinary string literal.
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\') {
          ++i;
        } else if (text[i] == '\n') {
          emit('\n');
        }
        ++i;
      }
      i = i < n ? i + 1 : n;
      literal("\"\"");
      emit('"');
      emit('"');
      prev_code = '"';
      continue;
    }
    // Char literal — but a '\'' directly after an identifier/number
    // character is a digit separator (1'000'000), not a literal opener.
    if (c == '\'' && !IsIdentChar(prev_code)) {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') {
          ++i;
        } else if (text[i] == '\n') {
          emit('\n');
        }
        ++i;
      }
      i = i < n ? i + 1 : n;
      literal("''");
      emit('\'');
      emit('\'');
      prev_code = '\'';
      continue;
    }
    emit(c);
    if (!std::isspace(static_cast<unsigned char>(c))) {
      prev_code = c;
    }
    ++i;
  }
}

// Two-character operators kept as single tokens.
const char* const kTwoCharOps[] = {"==", "!=", "->", "::", "<=", ">=",
                                   "&&", "||", "<<", ">>"};

}  // namespace

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t emitted_since_literal = 0;
  Scan(
      text,
      [&](char c) {
        out.push_back(c);
        ++emitted_since_literal;
      },
      [&](const char*) { emitted_since_literal = 0; });
  (void)emitted_since_literal;
  return out;
}

std::vector<Token> Lex(const std::string& text) {
  // Sanitize first (string literals collapse to "" / ''), then split into
  // tokens. Sanitizing up front means the tokenizer below never has to
  // re-handle comments or literal contents.
  std::string code = StripCommentsAndStrings(text);
  std::vector<Token> tokens;
  int line = 1;
  int brace = 0;
  int paren = 0;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.line = line;
    t.brace_depth = brace;
    t.paren_depth = paren;
    if (c == '"' || c == '\'') {
      // Collapsed literal placeholder from StripCommentsAndStrings.
      t.kind = Token::Kind::kString;
      t.text = (c == '"') ? "\"\"" : "''";
      i += 2;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(code[i + 1])))) {
      // pp-number: digits, identifier chars, separators, '.', and a sign
      // directly after a decimal/hex exponent marker.
      size_t start = i;
      while (i < n) {
        char d = code[i];
        if (IsIdentChar(d) || d == '\'' || d == '.') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          char e = code[i - 1];
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      t.kind = Token::Kind::kNumber;
      t.text = code.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(code[i])) {
        ++i;
      }
      t.kind = Token::Kind::kIdentifier;
      t.text = code.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuation. Track depths; the token records the depth *outside*
    // itself, so '(' and its matching ')' carry the same paren_depth.
    if (i + 1 < n) {
      char pair[3] = {c, code[i + 1], '\0'};
      bool two = false;
      for (const char* op : kTwoCharOps) {
        if (std::strcmp(pair, op) == 0) {
          two = true;
          break;
        }
      }
      if (two) {
        t.text = pair;
        i += 2;
        tokens.push_back(std::move(t));
        continue;
      }
    }
    t.text = std::string(1, c);
    if (c == '{') {
      ++brace;
    } else if (c == '}') {
      brace = brace > 0 ? brace - 1 : 0;
      t.brace_depth = brace;
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      paren = paren > 0 ? paren - 1 : 0;
      t.paren_depth = paren;
    }
    ++i;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

bool IsFloatLiteral(const std::string& text) {
  std::string s;
  s.reserve(text.size());
  for (char c : text) {
    if (c != '\'') {
      s.push_back(c);
    }
  }
  if (s.empty()) {
    return false;
  }
  bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (hex) {
    return s.find('p') != std::string::npos || s.find('P') != std::string::npos;
  }
  if (s.find('.') != std::string::npos) {
    return true;
  }
  if (s.find('e') != std::string::npos || s.find('E') != std::string::npos) {
    return true;
  }
  char last = s.back();
  return last == 'f' || last == 'F';
}

}  // namespace sdb_lint

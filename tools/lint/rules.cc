#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>

namespace sdb_lint {
namespace {

namespace fs = std::filesystem;

const char* const kUnitSuffixes[] = {"_v",  "_a",   "_w",   "_s",   "_c",   "_j",  "_k",  "_f",
                                     "_h",  "_hz",  "_wh",  "_mah", "_ohm", "_ghz", "_uh"};

const char* const kQuantityTokens[] = {"voltage", "current",     "resistance", "inductance",
                                       "watts",   "volts",       "amps",       "joules",
                                       "ohms",    "temperature", "frequency"};

// Tokens that mark an identifier as dimensionless even when a quantity word
// or unit suffix appears (current_soc, power_margin, capacity_factor, ...).
const char* const kDimensionlessTokens[] = {
    "fraction", "frac",       "factor", "margin", "error",  "ratio",  "weight",
    "scale",    "share",      "soc",    "efficiency", "penalty", "coeff", "count",
    "duty",     "exponent",   "cv",     "alpha",  "jitter", "index",  "percent",
    "threshold"};

std::vector<std::string> TokenizeIdentifier(const std::string& identifier) {
  std::vector<std::string> tokens;
  std::string token;
  for (char c : identifier) {
    if (c == '_') {
      if (!token.empty()) {
        tokens.push_back(token);
        token.clear();
      }
    } else {
      token.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!token.empty()) {
    tokens.push_back(token);
  }
  return tokens;
}

bool HasToken(const std::string& identifier, const char* const* list, size_t n) {
  std::vector<std::string> tokens = TokenizeIdentifier(identifier);
  for (size_t i = 0; i < n; ++i) {
    if (std::find(tokens.begin(), tokens.end(), list[i]) != tokens.end()) {
      return true;
    }
  }
  return false;
}

// Applies `re` to every line of `text`, invoking `fn(line_no, match)` per
// match. Shared driver for all the line-regex rules.
template <typename Fn>
void ForEachLineMatch(const std::string& text, const std::regex& re, Fn fn) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    auto begin = std::sregex_iterator(line.begin(), line.end(), re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      fn(line_no, *it);
    }
  }
}

}  // namespace

bool IsDimensionlessName(const std::string& identifier) {
  return HasToken(identifier, kDimensionlessTokens,
                  sizeof(kDimensionlessTokens) / sizeof(kDimensionlessTokens[0]));
}

bool HasUnitSuffix(std::string identifier) {
  while (!identifier.empty() && identifier.back() == '_') {
    identifier.pop_back();
  }
  std::transform(identifier.begin(), identifier.end(), identifier.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const char* suffix : kUnitSuffixes) {
    size_t len = std::strlen(suffix);
    if (identifier.size() > len &&
        identifier.compare(identifier.size() - len, len, suffix) == 0) {
      return true;
    }
  }
  return false;
}

bool HasQuantityToken(const std::string& identifier) {
  return HasToken(identifier, kQuantityTokens,
                  sizeof(kQuantityTokens) / sizeof(kQuantityTokens[0]));
}

// R1: double/float declarations with dimensional identifiers.
void ScanHeaderDecls(const std::string& file, const std::string& text,
                     std::vector<Finding>* findings) {
  static const std::regex decl_re(
      R"((?:^|[^\w])(?:double|float)\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:=|;|,|\)))");
  ForEachLineMatch(text, decl_re, [&](int line_no, const std::smatch& m) {
    std::string identifier = m[1].str();
    if (IsDimensionlessName(identifier)) {
      return;
    }
    if (HasUnitSuffix(identifier) || HasQuantityToken(identifier)) {
      findings->push_back(
          {file, line_no, "R1", identifier,
           "raw double '" + identifier +
               "' carries a physical dimension; use an sdb::Quantity type"});
    }
  });
}

// R2: unit-suffixed double assigned from a .value() unwrap.
void ScanValueRoundTrips(const std::string& file, const std::string& text,
                         std::vector<Finding>* findings) {
  static const std::regex roundtrip_re(
      R"((?:^|[^\w])(?:double|float)\s+([A-Za-z_][A-Za-z0-9_]*)\s*=[^;]*\.value\(\))");
  ForEachLineMatch(text, roundtrip_re, [&](int line_no, const std::smatch& m) {
    std::string identifier = m[1].str();
    if (!IsDimensionlessName(identifier) && HasUnitSuffix(identifier)) {
      findings->push_back({file, line_no, "R2", identifier,
                           "unit-suffixed double '" + identifier +
                               "' unwraps a Quantity outside a numeric kernel"});
    }
  });
}

// R3: magic unit-conversion literals.
void ScanMagicLiterals(const std::string& file, const std::string& text,
                       std::vector<Finding>* findings) {
  static const std::regex magic_re(R"((?:^|[^\w.])(3600(?:\.0*)?|273\.15)(?:[^\w.]|$))");
  ForEachLineMatch(text, magic_re, [&](int line_no, const std::smatch& m) {
    findings->push_back({file, line_no, "R3", "",
                         "magic literal " + m[1].str() +
                             "; use the unit helpers in src/util/units.h"});
  });
}

// R4: raw monotonic-clock reads outside the sanctioned src/obs/ site.
void ScanRawClockReads(const std::string& file, const std::string& text,
                       std::vector<Finding>* findings) {
  static const std::regex clock_re(R"((?:^|[^\w])steady_clock(?:[^\w]|$))");
  ForEachLineMatch(text, clock_re, [&](int line_no, const std::smatch&) {
    findings->push_back({file, line_no, "R4", "",
                         "raw steady_clock read; use sdb::obs::Stopwatch or "
                         "sdb::obs::MonotonicNanos (src/obs/trace.h)"});
  });
}

// R5: nondeterministic randomness sources. Seeded runs must be bit-identical
// at any --jobs; a single std::random_device or wall-clock seed breaks the
// goldens and the soak fingerprints without any test noticing.
void ScanNondeterministicRandomness(const std::string& file, const std::string& text,
                                    std::vector<Finding>* findings) {
  static const std::regex engine_re(
      R"((?:^|[^\w])(?:std\s*::\s*)?(random_device|mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b)(?:[^\w]|$))");
  static const std::regex rand_re(R"((?:^|[^\w])(s?rand)\s*\()");
  static const std::regex time_seed_re(R"((?:^|[^\w])(time)\s*\(\s*(?:nullptr|NULL|0)\s*\))");
  ForEachLineMatch(text, engine_re, [&](int line_no, const std::smatch& m) {
    findings->push_back({file, line_no, "R5", m[1].str(),
                         "nondeterministic/unsanctioned RNG '" + m[1].str() +
                             "'; draw from an explicitly seeded sdb::Rng (src/util/rng.h)"});
  });
  ForEachLineMatch(text, rand_re, [&](int line_no, const std::smatch& m) {
    findings->push_back({file, line_no, "R5", m[1].str(),
                         "C library " + m[1].str() +
                             "() is hidden global state; draw from an explicitly seeded "
                             "sdb::Rng (src/util/rng.h)"});
  });
  ForEachLineMatch(text, time_seed_re, [&](int line_no, const std::smatch& m) {
    findings->push_back({file, line_no, "R5", m[1].str(),
                         "wall-clock seed time(...) makes runs unreproducible; seed "
                         "sdb::Rng from configuration instead"});
  });
}

// R6: unordered associative containers in src/. Iteration order is
// unspecified and differs across standard libraries, so any result-affecting
// loop over one silently breaks bit-identity (the doctrine every golden pin
// and soak fingerprint rests on).
void ScanUnorderedContainers(const std::string& file, const std::string& text,
                             std::vector<Finding>* findings) {
  static const std::regex unordered_re(
      R"((?:^|[^\w])(?:std\s*::\s*)?(unordered_(?:map|set|multimap|multiset))(?:[^\w]|$))");
  ForEachLineMatch(text, unordered_re, [&](int line_no, const std::smatch& m) {
    findings->push_back({file, line_no, "R6", m[1].str(),
                         "std::" + m[1].str() +
                             " iteration order is unspecified; use an ordered container "
                             "or a sorted snapshot (allowlist 'unordered:<file>' only for "
                             "proven-commutative use)"});
  });
}

void HarvestMustUse(const std::string& sanitized_header, MustUseIndex* index) {
  static const std::regex status_decl_re(
      R"((?:^|[^\w:])(?:sdb\s*::\s*)?Status(?:Or<.*>)?\s+([A-Za-z_]\w*)\s*\()");
  static const std::regex other_decl_re(
      R"((?:^|[^\w])(?:void|bool|int|unsigned|long|float|double|auto|char|size_t|u?int(?:8|16|32|64)_t)\s+([A-Za-z_]\w*)\s*\()");
  ForEachLineMatch(sanitized_header, status_decl_re,
                   [&](int, const std::smatch& m) { index->names.insert(m[1].str()); });
  ForEachLineMatch(sanitized_header, other_decl_re,
                   [&](int, const std::smatch& m) { index->ambiguous.insert(m[1].str()); });
}

namespace {

// Skips backward over a balanced (...) group; on entry tokens[j] is the
// closing ')'. Returns the index of the token before the matching '('.
int SkipParenGroupBackward(const std::vector<Token>& tokens, int j) {
  int depth = 0;
  while (j >= 0) {
    if (tokens[j].text == ")") {
      ++depth;
    } else if (tokens[j].text == "(") {
      --depth;
      if (depth == 0) {
        return j - 1;
      }
    }
    --j;
  }
  return -1;
}

// Walks backward from the must-use identifier at `i` over its qualifier
// chain (obj. link-> ns:: chained().calls()) and returns the index of the
// token just before the whole chain, or -1 at start of file.
int ChainStart(const std::vector<Token>& tokens, int i) {
  int j = i - 1;
  while (j >= 0) {
    const std::string& t = tokens[j].text;
    if (t != "::" && t != "." && t != "->") {
      break;
    }
    --j;  // Onto the qualifier itself.
    if (j >= 0 && tokens[j].text == ")") {
      j = SkipParenGroupBackward(tokens, j);
    }
    if (j >= 0 && tokens[j].kind == Token::Kind::kIdentifier) {
      --j;
    } else {
      break;
    }
  }
  return j;
}

}  // namespace

void ScanDiscardedStatus(const std::string& file, const std::vector<Token>& tokens,
                         const MustUseIndex& index, std::vector<Finding>* findings) {
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier || !index.names.count(tok.text) ||
        index.ambiguous.count(tok.text)) {
      continue;
    }
    if (i + 1 >= n || tokens[i + 1].text != "(") {
      continue;
    }
    // Find the call's closing paren; the statement must end right after it.
    int depth = 0;
    int k = i + 1;
    for (; k < n; ++k) {
      if (tokens[k].text == "(") {
        ++depth;
      } else if (tokens[k].text == ")") {
        --depth;
        if (depth == 0) {
          break;
        }
      }
    }
    if (k + 1 >= n || tokens[k + 1].text != ";") {
      continue;  // Result feeds into a larger expression (or ran off the file).
    }
    // The call (with any obj./ptr->/ns:: qualifiers) must start a statement.
    int j = ChainStart(tokens, i);
    bool statement_start;
    if (j < 0) {
      statement_start = true;
    } else {
      const std::string& before = tokens[j].text;
      if (before == ")") {
        // `(void)Call();` is the sanctioned explicit discard.
        bool void_cast = j >= 2 && tokens[j - 1].text == "void" && tokens[j - 2].text == "(";
        statement_start = !void_cast;  // e.g. `if (...) Call();`
      } else {
        statement_start = before == ";" || before == "{" || before == "}" ||
                          before == "else" || before == "do";
      }
    }
    if (!statement_start) {
      continue;
    }
    findings->push_back({file, tok.line, "R7", tok.text,
                         "result of must-check API '" + tok.text +
                             "' is discarded; handle the Status (or cast to (void) with a "
                             "comment saying why failure is impossible)"});
  }
}

void ScanFloatEquality(const std::string& file, const std::vector<Token>& tokens,
                       std::vector<Finding>* findings) {
  const int n = static_cast<int>(tokens.size());
  auto is_float_operand = [](const Token& t) {
    if (t.kind == Token::Kind::kNumber) {
      return IsFloatLiteral(t.text);
    }
    if (t.kind == Token::Kind::kIdentifier) {
      return HasUnitSuffix(t.text) && !IsDimensionlessName(t.text);
    }
    return false;
  };
  auto is_non_float_marker = [](const Token& t) {
    // A pointer/bool compare is never a float compare, whatever the other
    // operand's name looks like (battery_a_ != nullptr).
    return t.text == "nullptr" || t.text == "NULL" || t.text == "true" || t.text == "false";
  };
  for (int i = 0; i < n; ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == Token::Kind::kPunct && (tok.text == "==" || tok.text == "!=")) {
      if ((i > 0 && is_non_float_marker(tokens[i - 1])) ||
          (i + 1 < n && is_non_float_marker(tokens[i + 1]))) {
        continue;
      }
      bool flagged = false;
      if (i > 0 && is_float_operand(tokens[i - 1])) {
        flagged = true;
      }
      if (i + 1 < n && is_float_operand(tokens[i + 1])) {
        flagged = true;
      }
      if (flagged) {
        findings->push_back({file, tok.line, "R8", tok.text,
                             "exact floating-point '" + tok.text +
                                 "' comparison; compare with a tolerance, or allowlist "
                                 "'floatcmp:<file>' for an intentionally bit-exact check"});
      }
      continue;
    }
    // EXPECT_EQ/ASSERT_EQ/EXPECT_NE/ASSERT_NE with a top-level
    // float-literal argument is the same defect through a macro.
    if (tok.kind == Token::Kind::kIdentifier &&
        (tok.text == "EXPECT_EQ" || tok.text == "ASSERT_EQ" || tok.text == "EXPECT_NE" ||
         tok.text == "ASSERT_NE") &&
        i + 1 < n && tokens[i + 1].text == "(") {
      int open_depth = tokens[i + 1].paren_depth;
      for (int k = i + 2; k < n; ++k) {
        if (tokens[k].text == ")" && tokens[k].paren_depth == open_depth) {
          break;
        }
        if (tokens[k].kind == Token::Kind::kNumber && IsFloatLiteral(tokens[k].text) &&
            tokens[k].paren_depth == open_depth + 1) {
          findings->push_back(
              {file, tok.line, "R8", tok.text,
               "exact floating-point equality via " + tok.text +
                   " with a float literal; use EXPECT_NEAR/EXPECT_DOUBLE_EQ, or "
                   "allowlist 'floatcmp:<file>' for an intentionally bit-exact check"});
          break;
        }
      }
    }
  }
}

bool LoadAllowlist(const fs::path& path, Allowlist* allowlist, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open allowlist " + path.string();
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    size_t start = 0;
    while (start < line.size() && std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty()) {
      continue;
    }
    struct Directive {
      const char* prefix;
      std::map<std::string, int> Allowlist::* field;
    };
    static const Directive kDirectives[] = {
        {"kernel:", &Allowlist::kernel_files},       {"clock:", &Allowlist::clock_files},
        {"rng:", &Allowlist::rng_files},             {"unordered:", &Allowlist::unordered_files},
        {"floatcmp:", &Allowlist::floatcmp_files},
    };
    bool matched = false;
    for (const Directive& d : kDirectives) {
      size_t len = std::strlen(d.prefix);
      if (line.rfind(d.prefix, 0) == 0) {
        (allowlist->*(d.field))[line.substr(len)] = line_no;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    if (line.find(':') != std::string::npos) {
      allowlist->entries[line] = line_no;
    } else {
      *error = path.string() + ":" + std::to_string(line_no) + ": malformed entry '" + line +
               "' (want <file>:<identifier> or a directive: kernel:/clock:/rng:/unordered:/"
               "floatcmp:<file>)";
      return false;
    }
  }
  return true;
}

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<Finding> ScanTree(const fs::path& root) {
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  // R1–R3 and R6 police src/ only; R4/R5/R7/R8 also cover tests/, bench/
  // and tools/ so harnesses cannot quietly grow their own timing, RNG or
  // exact-compare paths. tools/lint/testdata/ holds seeded-violation
  // fixtures for tests/lint/ and is never part of the repo scan.
  for (const char* dir : {"src", "bench", "tools", "tests"}) {
    if (!fs::exists(root / dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.rfind("tools/lint/testdata/", 0) == 0) {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: harvest the must-use API index from every src/ header.
  MustUseIndex must_use;
  for (const fs::path& path : files) {
    std::string rel = fs::relative(path, root).generic_string();
    if (rel.rfind("src/", 0) == 0 && path.extension() == ".h") {
      HarvestMustUse(StripCommentsAndStrings(ReadFile(path)), &must_use);
    }
  }

  // Pass 2: run every rule in scope over each file.
  for (const fs::path& path : files) {
    std::string rel = fs::relative(path, root).generic_string();
    std::string raw = ReadFile(path);
    std::string text = StripCommentsAndStrings(raw);
    bool in_src = rel.rfind("src/", 0) == 0;
    if (in_src) {
      if (path.extension() == ".h") {
        ScanHeaderDecls(rel, text, &findings);
      }
      ScanValueRoundTrips(rel, text, &findings);
      if (rel != "src/util/units.h") {
        ScanMagicLiterals(rel, text, &findings);
      }
      ScanUnorderedContainers(rel, text, &findings);
    }
    if (rel.rfind("src/obs/", 0) != 0) {
      ScanRawClockReads(rel, text, &findings);
    }
    if (rel != "src/util/rng.h" && rel != "src/util/rng.cc") {
      ScanNondeterministicRandomness(rel, text, &findings);
    }
    std::vector<Token> tokens = Lex(raw);
    ScanDiscardedStatus(rel, tokens, must_use, &findings);
    ScanFloatEquality(rel, tokens, &findings);
  }
  return findings;
}

}  // namespace sdb_lint
